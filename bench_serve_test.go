package bench

// BenchmarkServeLatency measures the query service's latency-vs-
// concurrency SLO curve: an httptest server over one shared pipeline,
// hit by c concurrent clients rotating the figure endpoints. p50 and
// p99 are reported per concurrency level via b.ReportMetric, so the
// curve lands in BENCH.json next to the batch numbers. `make bench`
// additionally appends a socket-level sweep measured by cmd/edgeload
// against a real edgeserve process.

import (
	"io"
	"net/http"
	"net/http/httptest"
	"sort"
	"strconv"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/serve"
	"repro/internal/simnet"
)

var serveBenchURLs = []string{
	"/v1/figures/active",
	"/v1/figures/fig3",
	"/v1/figures/fig8",
	"/v1/figures/fig2",
	"/v1/experiments",
}

func BenchmarkServeLatency(b *testing.B) {
	cfg := core.Config{
		Seed: 42, Scale: simnet.Scale{ADSL: 8, FTTH: 4},
		Stride: 240, Workers: 2,
	}
	s := serve.New(core.New(cfg), serve.Options{Workers: 8, Queue: 64})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	// Warm the shared day cache once so the curve measures the serving
	// path, not first-touch aggregation.
	warm := &http.Client{}
	for _, u := range serveBenchURLs {
		resp, err := warm.Get(ts.URL + u)
		if err != nil {
			b.Fatal(err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
	}

	for _, c := range []int{1, 2, 4, 8, 16} {
		b.Run("c="+strconv.Itoa(c), func(b *testing.B) {
			var (
				mu        sync.Mutex
				latencies []float64
				next      atomic.Int64
				wg        sync.WaitGroup
			)
			b.ResetTimer()
			for w := 0; w < c; w++ {
				wg.Add(1)
				go func() {
					defer wg.Done()
					client := &http.Client{}
					for {
						i := int(next.Add(1)) - 1
						if i >= b.N {
							return
						}
						url := ts.URL + serveBenchURLs[i%len(serveBenchURLs)]
						t0 := time.Now()
						resp, err := client.Get(url)
						if err != nil {
							b.Error(err)
							return
						}
						io.Copy(io.Discard, resp.Body)
						resp.Body.Close()
						ms := float64(time.Since(t0).Microseconds()) / 1000
						if resp.StatusCode != http.StatusOK {
							b.Errorf("GET %s: status %d", url, resp.StatusCode)
							return
						}
						mu.Lock()
						latencies = append(latencies, ms)
						mu.Unlock()
					}
				}()
			}
			wg.Wait()
			b.StopTimer()
			sort.Float64s(latencies)
			b.ReportMetric(pctile(latencies, 0.50), "p50-ms")
			b.ReportMetric(pctile(latencies, 0.99), "p99-ms")
		})
	}
}

// pctile reads a nearest-rank order statistic from sorted values.
func pctile(sorted []float64, q float64) float64 {
	if len(sorted) == 0 {
		return 0
	}
	i := int(q*float64(len(sorted))+0.5) - 1
	if i < 0 {
		i = 0
	}
	if i >= len(sorted) {
		i = len(sorted) - 1
	}
	return sorted[i]
}
