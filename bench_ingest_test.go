package bench

import (
	"context"
	"fmt"
	"path/filepath"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/flowrec"
	"repro/internal/ingest"
	"repro/internal/simnet"
)

// Ingest-daemon throughput: records/second through the full live loop
// — WAL append, live aggregation, incremental checkpoints, rollover
// seal — with a checkpoint-interval ablation. Checkpointing is the
// knob that trades recovery replay length against steady-state cost:
// every checkpoint folds the live aggregator, gob-encodes the merged
// partial, and rewrites the cursor, so small intervals buy short
// recoveries with constant-factor throughput loss.

// benchIngestDays buffers a stream once so the measured loop replays
// records from memory, not the generator.
func benchIngestStream(b *testing.B, w *simnet.World, days []time.Time) []simnet.StreamRecord {
	b.Helper()
	src := w.Stream(days)
	var recs []simnet.StreamRecord
	var sr simnet.StreamRecord
	for src.Next(&sr) {
		recs = append(recs, sr)
	}
	if len(recs) == 0 {
		b.Fatal("stream produced no records")
	}
	return recs
}

func BenchmarkIngestThroughput(b *testing.B) {
	days := []time.Time{
		simnet.SpanStart.AddDate(0, 0, 7),
		simnet.SpanStart.AddDate(0, 0, 8),
	}
	w := simnet.NewWorld(7, simnet.Scale{ADSL: 16, FTTH: 8})
	recs := benchIngestStream(b, w, days)
	ctx := context.Background()

	for _, every := range []int{256, 1024, 4096, 16384} {
		b.Run(fmt.Sprintf("checkpoint=%d", every), func(b *testing.B) {
			b.ReportAllocs()
			var records uint64
			for i := 0; i < b.N; i++ {
				b.StopTimer()
				dir := b.TempDir()
				store, err := flowrec.OpenStoreFormat(filepath.Join(dir, "lake"), flowrec.FormatV1)
				if err != nil {
					b.Fatal(err)
				}
				in, err := ingest.Open(ingest.Config{
					Storage:         core.NewDiskStorage(store, filepath.Join(dir, "agg")),
					WALDir:          filepath.Join(dir, "lake", flowrec.WALDirName),
					CheckpointEvery: every,
				})
				if err != nil {
					b.Fatal(err)
				}
				b.StartTimer()
				for j := range recs {
					if err := in.Ingest(ctx, &recs[j].Rec, recs[j].At); err != nil {
						b.Fatal(err)
					}
				}
				if err := in.SealAll(ctx); err != nil {
					b.Fatal(err)
				}
				if err := in.Close(ctx); err != nil {
					b.Fatal(err)
				}
				records += uint64(len(recs))
			}
			if secs := b.Elapsed().Seconds(); secs > 0 {
				b.ReportMetric(float64(records)/secs, "records/sec")
			}
			b.ReportMetric(float64(len(recs)), "records/op")
		})
	}
}
