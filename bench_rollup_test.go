package bench

import (
	"context"
	"fmt"
	"os"
	"path/filepath"
	"testing"
	"time"

	"repro/internal/analytics"
	"repro/internal/core"
	"repro/internal/flowrec"
	"repro/internal/simnet"
)

// Rollup-tier benchmarks: the speedup the tier buys on the queries it
// exists for, and the size/accuracy trade of carrying sketches in the
// windows. EXPERIMENTS.md records the measured numbers.

// benchYear is the window the tier benchmark folds: one full calendar
// year, so planTiers promotes the whole request to a single year file.
var benchYearDays = core.RangeDays(
	time.Date(2016, 1, 1, 0, 0, 0, 0, time.UTC),
	time.Date(2016, 12, 31, 0, 0, 0, 0, time.UTC), 1)

// genBenchStore materialises days into a fresh v2 store.
func genBenchStore(b *testing.B, days []time.Time) *flowrec.Store {
	b.Helper()
	store, err := flowrec.OpenStoreFormat(b.TempDir(), flowrec.FormatV2)
	if err != nil {
		b.Fatal(err)
	}
	gen := core.New(core.Config{Seed: 5, Scale: simnet.Scale{ADSL: 8, FTTH: 4}})
	if _, err := gen.GenerateStore(context.Background(), core.NewDiskStorage(store, ""), days); err != nil {
		b.Fatal(err)
	}
	return store
}

// BenchmarkFig3YearDayScanVsRollup runs the same one-year Figure-3
// query three ways — scanning and folding every day file, folding
// cached per-day aggregates, and answering from the year rollup — and
// checks all three return identical rows. The ns/op ratio between
// dayscan and rollup is the headline speedup the tier buys; dayagg
// isolates how much of it is aggregate caching vs the pre-folded merge.
func BenchmarkFig3YearDayScanVsRollup(b *testing.B) {
	ctx := context.Background()
	store := genBenchStore(b, benchYearDays)
	aggDir, rollDir := b.TempDir(), b.TempDir()
	warm := core.New(core.Config{Store: store, AggCacheDir: aggDir, RollupDir: rollDir})
	if _, err := warm.Aggregate(ctx, benchYearDays); err != nil {
		b.Fatal(err)
	}
	if _, err := warm.BuildRollups(ctx, benchYearDays); err != nil {
		b.Fatal(err)
	}
	want, err := warm.MonthlySeriesTier(ctx, benchYearDays, analytics.ColsSubscribers)
	if err != nil {
		b.Fatal(err)
	}

	variants := []struct {
		name string
		cfg  core.Config
	}{
		{"dayscan", core.Config{Store: store}},
		{"dayagg", core.Config{Store: store, AggCacheDir: aggDir}},
		{"rollup", core.Config{Store: store, RollupDir: rollDir}},
	}
	for _, v := range variants {
		b.Run(v.name, func(b *testing.B) {
			b.ReportAllocs()
			var got []analytics.MonthlyMean
			for i := 0; i < b.N; i++ {
				// A fresh pipeline per iteration: the in-memory day cache
				// must not serve iteration 2, only the tier under test.
				p := core.New(v.cfg)
				var err error
				if got, err = p.MonthlySeriesTier(context.Background(), benchYearDays, analytics.ColsSubscribers); err != nil {
					b.Fatal(err)
				}
			}
			if fmt.Sprint(got) != fmt.Sprint(want) {
				b.Fatalf("%s: rows differ from the exact day fold", v.name)
			}
		})
	}
}

// BenchmarkRollupSketchAblation builds one month rollup with and
// without sketches from warmed day aggregates and reports, besides the
// fold time, the persisted window's size (rollup_KB) and — for the
// sketch build — the HLL distinct-client error against the exact count
// (clients_err_pct). This is the error-vs-compression trade the
// -sketch gate offers.
func BenchmarkRollupSketchAblation(b *testing.B) {
	ctx := context.Background()
	monthDays := core.MonthDays(2016, time.June)
	store := genBenchStore(b, monthDays)

	// Separate warmed aggregate caches: sketch-mode pipelines refuse
	// sketch-free cached aggregates, so each variant gets its own.
	aggExact, aggSketch := b.TempDir(), b.TempDir()
	warm := core.New(core.Config{Store: store, AggCacheDir: aggExact})
	aggs, err := warm.Aggregate(ctx, monthDays)
	if err != nil {
		b.Fatal(err)
	}
	distinct := make(map[uint32]bool)
	for _, a := range aggs {
		for id := range a.Subs {
			distinct[id] = true
		}
	}
	warmSk := core.New(core.Config{Store: store, AggCacheDir: aggSketch, Sketch: true})
	if _, err := warmSk.Aggregate(ctx, monthDays); err != nil {
		b.Fatal(err)
	}

	for _, sketch := range []bool{false, true} {
		name, aggDir := "exact", aggExact
		if sketch {
			name, aggDir = "sketch", aggSketch
		}
		b.Run(name, func(b *testing.B) {
			b.ReportAllocs()
			var last *analytics.Rollup
			var size int64
			for i := 0; i < b.N; i++ {
				rollDir := b.TempDir()
				p := core.New(core.Config{Store: store, AggCacheDir: aggDir, RollupDir: rollDir, Sketch: sketch})
				rolls, err := p.Rollups(context.Background(), monthDays)
				if err != nil {
					b.Fatal(err)
				}
				if len(rolls) != 1 {
					b.Fatalf("%d windows, want 1 month", len(rolls))
				}
				last = rolls[0]
				fi, err := os.Stat(filepath.Join(rollDir, "month-2016-06-01-v1.gob.gz"))
				if err != nil {
					b.Fatal(err)
				}
				size = fi.Size()
			}
			b.ReportMetric(float64(size)/1024, "rollup_KB")
			if sketch {
				if last.Agg.Sketches == nil {
					b.Fatal("sketch build carried no sketches")
				}
				est := last.Agg.Sketches.Clients.Estimate()
				errPct := 100 * (est - float64(len(distinct))) / float64(len(distinct))
				if errPct < 0 {
					errPct = -errPct
				}
				b.ReportMetric(errPct, "clients_err_pct")
			}
		})
	}
}
