package bench

import (
	"context"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/simnet"
)

// BenchmarkPipelineScale sweeps the subscriber population across three
// sizes and measures the full generate→aggregate cost of one day at
// each — the scaling curve `make bench` publishes into BENCH.json.
// records/sec is the figure of merit: it should stay roughly flat as N
// grows (the pipeline is record-bound, not population-bound), and a
// regression here is a scale regression no single-size benchmark
// catches.
func BenchmarkPipelineScale(b *testing.B) {
	day := time.Date(2016, 5, 10, 0, 0, 0, 0, time.UTC)
	scales := []struct {
		name  string
		scale simnet.Scale
	}{
		{"N=36", simnet.Scale{ADSL: 24, FTTH: 12}},
		{"N=150", simnet.Scale{ADSL: 100, FTTH: 50}},
		{"N=600", simnet.Scale{ADSL: 400, FTTH: 200}},
	}
	for _, sc := range scales {
		b.Run(sc.name, func(b *testing.B) {
			b.ReportAllocs()
			var recs uint64
			start := time.Now()
			for i := 0; i < b.N; i++ {
				// A fresh pipeline per iteration defeats the day cache,
				// so the full generate→aggregate path is what is timed.
				p := core.New(core.Config{Seed: 1, Scale: sc.scale, Workers: 1})
				aggs, err := p.Aggregate(context.Background(), []time.Time{day})
				if err != nil {
					b.Fatal(err)
				}
				if len(aggs) != 1 || aggs[0].Flows == 0 {
					b.Fatal("scale run aggregated no flows")
				}
				recs += aggs[0].Flows
			}
			elapsed := time.Since(start).Seconds()
			if elapsed > 0 {
				b.ReportMetric(float64(recs)/elapsed, "records/sec")
			}
			b.ReportMetric(float64(recs)/float64(b.N), "records/op")
		})
	}
}
