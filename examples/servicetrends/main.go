// Servicetrends: the rise-and-fall stories of sections 4.2-4.4 on a
// reduced window — P2P's decline, Netflix's post-launch climb, and the
// SnapChat boom-and-bust — measured from flow records through the full
// aggregation pipeline, one sampled day per fortnight over 2015-2017.
//
//	go run ./examples/servicetrends
package main

import (
	"context"
	"fmt"
	"log"
	"os"
	"time"

	"repro/internal/analytics"
	"repro/internal/classify"
	"repro/internal/core"
	"repro/internal/report"
	"repro/internal/simnet"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("servicetrends: ")

	p := core.New(core.Config{
		Seed:  4,
		Scale: simnet.Scale{ADSL: 100, FTTH: 50},
	})
	days := core.RangeDays(
		time.Date(2015, 1, 5, 0, 0, 0, 0, time.UTC),
		time.Date(2017, 12, 18, 0, 0, 0, 0, time.UTC), 14)

	aggs, err := p.Aggregate(context.Background(), days)
	if err != nil {
		log.Fatal(err)
	}

	for _, svc := range []classify.Service{analytics.P2PService, "Netflix", "SnapChat"} {
		series := analytics.ServiceSeries(aggs, svc)
		// Quarterly means keep the table readable.
		type acc struct {
			pop, vol, n float64
		}
		byQ := map[string]*acc{}
		var order []string
		for _, pt := range series {
			q := fmt.Sprintf("%d-Q%d", pt.Day.Year(), (int(pt.Day.Month())-1)/3+1)
			a := byQ[q]
			if a == nil {
				a = &acc{}
				byQ[q] = a
				order = append(order, q)
			}
			// ADSL series; FTTH reads similarly.
			a.pop += pt.PopPct[0]
			a.vol += pt.VolPerUser[0]
			a.n++
		}
		var rows [][]string
		for _, q := range order {
			a := byQ[q]
			rows = append(rows, []string{q, report.Pct(a.pop / a.n), report.MB(a.vol / a.n)})
		}
		fmt.Printf("\n%s (ADSL):\n", svc)
		if err := report.Table(os.Stdout, []string{"quarter", "popularity", "MB/user/day"}, rows); err != nil {
			log.Fatal(err)
		}
	}
	fmt.Println("\nexpected shapes: P2P fades; Netflix appears Q4'15 and climbs;")
	fmt.Println("SnapChat volume crests in 2016 and collapses while popularity stays.")
}
