// Liveprobe: the packet path, end to end. The simulated world renders
// one day of traffic as raw Ethernet frames — real TLS ClientHellos,
// HTTP requests, QUIC public headers, DNS lookups — and the passive
// probe consumes them exactly as it would a mirrored ISP link:
// decoding layers, tracking flows, running DPI, resolving names via
// DN-Hunter, estimating server RTTs, anonymizing clients.
//
//	go run ./examples/liveprobe
package main

import (
	"fmt"
	"log"
	"os"
	"sort"
	"time"

	"repro/internal/flowrec"
	"repro/internal/probe"
	"repro/internal/report"
	"repro/internal/simnet"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("liveprobe: ")

	world := simnet.NewWorld(7, simnet.Scale{ADSL: 10, FTTH: 5})
	day := time.Date(2016, 12, 7, 0, 0, 0, 0, time.UTC)

	var records []*flowrec.Record
	pr := probe.New(probe.Config{
		Subscriber:       world.SubscriberLookup,
		AnonKey:          world.AnonKey(),
		SPDYVisibleSince: simnet.SPDYVisibleSince(),
		OnRecord: func(r *flowrec.Record) {
			c := *r
			records = append(records, &c)
		},
	})

	start := time.Now()
	world.EmitDayPackets(day, simnet.PacketOptions{}, pr.Feed)
	pr.Flush()
	fmt.Printf("probe processed %s in %v\n\n", pr.Stats, time.Since(start).Round(time.Millisecond))

	// Protocol mix measured from the wire.
	byWeb := make(map[flowrec.WebProto]int)
	for _, r := range records {
		byWeb[r.Web]++
	}
	var webs []flowrec.WebProto
	for w := range byWeb {
		webs = append(webs, w)
	}
	sort.Slice(webs, func(i, j int) bool { return byWeb[webs[i]] > byWeb[webs[j]] })
	var rows [][]string
	for _, w := range webs {
		rows = append(rows, []string{w.String(), fmt.Sprint(byWeb[w])})
	}
	fmt.Println("flows per application protocol (from DPI):")
	if err := report.Table(os.Stdout, []string{"protocol", "flows"}, rows); err != nil {
		log.Fatal(err)
	}

	// Name sources: how the probe learned each server name.
	bySrc := make(map[flowrec.NameSource]int)
	for _, r := range records {
		if r.ServerName != "" {
			bySrc[r.NameSrc]++
		}
	}
	fmt.Printf("\nserver names: %d via SNI, %d via HTTP Host, %d via DN-Hunter (DNS)\n",
		bySrc[flowrec.NameSNI], bySrc[flowrec.NameHTTPHost], bySrc[flowrec.NameDNS])

	// A few sample records, the way Tstat logs read.
	fmt.Println("\nsample flow records:")
	shown := 0
	for _, r := range records {
		if r.ServerName == "" || r.RTTSamples == 0 {
			continue
		}
		fmt.Printf("  %s\n", r)
		shown++
		if shown == 5 {
			break
		}
	}
}
