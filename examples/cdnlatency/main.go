// Cdnlatency: the "sub-millisecond Internet" of section 6 — how close
// each service's servers are (per-flow minimum RTT CDFs, Figure 10)
// and how the Facebook/Instagram infrastructure migrated off shared
// CDN addresses (Figure 11), comparing April 2014 against April 2017.
//
//	go run ./examples/cdnlatency
package main

import (
	"context"
	"fmt"
	"log"
	"os"
	"time"

	"repro/internal/analytics"
	"repro/internal/asn"
	"repro/internal/classify"
	"repro/internal/core"
	"repro/internal/report"
	"repro/internal/simnet"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("cdnlatency: ")

	p := core.New(core.Config{
		Seed:  11,
		Scale: simnet.Scale{ADSL: 80, FTTH: 40},
	})

	apr14 := core.MonthDays(2014, time.April)
	apr17 := core.MonthDays(2017, time.April)
	a14, err := p.Aggregate(context.Background(), apr14)
	if err != nil {
		log.Fatal(err)
	}
	a17, err := p.Aggregate(context.Background(), apr17)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("share of TCP flows served within an RTT bound (per-flow minimum):")
	var rows [][]string
	for _, svc := range []classify.Service{"Facebook", "Instagram", "YouTube", "Google", "WhatsApp"} {
		d14 := analytics.RTTDist(a14, svc)
		d17 := analytics.RTTDist(a17, svc)
		rows = append(rows, []string{
			string(svc),
			report.F(d14.P(1)), report.F(d17.P(1)),
			report.F(d14.P(3.5)), report.F(d17.P(3.5)),
			report.F(d14.P(100)), report.F(d17.P(100)),
		})
	}
	err = report.Table(os.Stdout, []string{
		"service", "<=1ms '14", "<=1ms '17", "<=3.5ms '14", "<=3.5ms '17", "<=100ms '14", "<=100ms '17",
	}, rows)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("\nwho serves Facebook's bytes (server addresses by AS):")
	rows = rows[:0]
	for label, aggs := range map[string][]*analytics.DayAgg{"2014-04": a14, "2017-04": a17} {
		pts := analytics.ASNBreakdown(aggs, "Facebook", p.RIBs)
		tot := map[asn.Org]float64{}
		for _, pt := range pts {
			for org, n := range pt.ByOrg {
				tot[org] += float64(n) / float64(len(pts))
			}
		}
		rows = append(rows, []string{
			label,
			report.F(tot[asn.OrgFacebook]),
			report.F(tot[asn.OrgAkamai]),
			report.F(tot[asn.OrgOther]),
		})
	}
	if rows[0][0] > rows[1][0] { // map order: print 2014 first
		rows[0], rows[1] = rows[1], rows[0]
	}
	err = report.Table(os.Stdout, []string{"month", "FACEBOOK/day", "AKAMAI/day", "OTHER/day"}, rows)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nexpected: the Akamai column collapses to ~0 by 2017 (own-CDN migration),")
	fmt.Println("and the 2017 RTT mass sits at the 3 ms ISP-edge tier; YouTube goes sub-ms.")

}
