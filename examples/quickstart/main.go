// Quickstart: generate one simulated week of ISP edge traffic, run the
// two-stage analytics over it, and print the headline numbers — total
// traffic, active-subscriber share, and the day's top services.
//
//	go run ./examples/quickstart
package main

import (
	"context"
	"fmt"
	"log"
	"os"
	"sort"
	"time"

	"repro/internal/analytics"
	"repro/internal/classify"
	"repro/internal/core"
	"repro/internal/report"
	"repro/internal/simnet"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("quickstart: ")

	// A pipeline over a small simulated population. Same seed, same
	// dataset — rerun it and the numbers will not move.
	p := core.New(core.Config{
		Seed:  2018,
		Scale: simnet.Scale{ADSL: 60, FTTH: 30},
	})

	// One week of November 2016: FB-Zero is three weeks old, QUIC is
	// back after its 2015 outage, Netflix has been in Italy a year.
	week := core.RangeDays(
		time.Date(2016, 11, 21, 0, 0, 0, 0, time.UTC),
		time.Date(2016, 11, 27, 0, 0, 0, 0, time.UTC), 1)

	aggs, err := p.Aggregate(context.Background(), week)
	if err != nil {
		log.Fatal(err)
	}

	var flows, down, up uint64
	for _, a := range aggs {
		flows += a.Flows
		down += a.TotalDown
		up += a.TotalUp
	}
	fmt.Printf("week of %s: %d flows, %.1f GB down, %.1f GB up\n",
		week[0].Format("2006-01-02"), flows,
		float64(down)/(1<<30), float64(up)/(1<<30))

	act := analytics.ActiveSeries(aggs)
	var pct float64
	for _, a := range act {
		pct += a.ActivePct
	}
	fmt.Printf("active subscribers (>=10 flows, >15kB down, >5kB up): %.1f%% on average\n\n",
		pct/float64(len(act)))

	// Top services by byte share.
	type row struct {
		svc   classify.Service
		share float64
	}
	var rows []row
	for _, svc := range classify.FigureServices {
		pts := analytics.ServiceByteShare(aggs, svc)
		var s float64
		for _, pt := range pts {
			s += pt.SharePct
		}
		rows = append(rows, row{svc, s / float64(len(pts))})
	}
	sort.Slice(rows, func(i, j int) bool { return rows[i].share > rows[j].share })
	var cells [][]string
	for _, r := range rows[:8] {
		cells = append(cells, []string{string(r.svc), report.Pct(r.share)})
	}
	fmt.Println("top services by share of downloaded bytes:")
	if err := report.Table(os.Stdout, []string{"service", "byte share"}, cells); err != nil {
		log.Fatal(err)
	}
}
