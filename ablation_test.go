package bench

import (
	"context"
	"testing"
	"time"

	"repro/internal/analytics"
	"repro/internal/core"
	"repro/internal/flowrec"
	"repro/internal/simnet"
)

// Ablation benchmarks for the design choices DESIGN.md calls out:
// day-parallel aggregation, the flow fast path vs the full packet
// path, and the binary codec vs CSV.

// BenchmarkAggregationWorkers measures stage-one scaling across worker
// counts — the design reason for making days independent.
func BenchmarkAggregationWorkers(b *testing.B) {
	days := core.MonthDays(2016, time.March)[:8]
	for _, workers := range []int{1, 2, 4, 8} {
		b.Run(map[int]string{1: "w1", 2: "w2", 4: "w4", 8: "w8"}[workers], func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				p := core.New(core.Config{
					Seed:    3,
					Scale:   simnet.Scale{ADSL: 40, FTTH: 20},
					Workers: workers,
				})
				if _, err := p.Aggregate(context.Background(), days); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkAggregationShards measures stage-one scaling across
// shards-per-day — the within-day axis of parallelism, orthogonal to
// workers. Workers is pinned to 1 so each day's fold runs alone and
// the shard fan-out is the only variable; on a single-core box the
// interesting number is the s1 overhead (should be ~zero: s1 takes
// the serial-fold path, no channels).
func BenchmarkAggregationShards(b *testing.B) {
	days := core.MonthDays(2016, time.March)[:8]
	for _, shards := range []int{1, 2, 4, 8} {
		b.Run(map[int]string{1: "s1", 2: "s2", 4: "s4", 8: "s8"}[shards], func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				p := core.New(core.Config{
					Seed:         3,
					Scale:        simnet.Scale{ADSL: 40, FTTH: 20},
					Workers:      1,
					ShardsPerDay: shards,
				})
				if _, err := p.Aggregate(context.Background(), days); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkFlowFastPath measures record generation without packets.
func BenchmarkFlowFastPath(b *testing.B) {
	w := simnet.NewWorld(1, simnet.Scale{ADSL: 40, FTTH: 20})
	day := time.Date(2016, 5, 10, 0, 0, 0, 0, time.UTC)
	b.ReportAllocs()
	var records int
	for i := 0; i < b.N; i++ {
		records = 0
		w.EmitDay(day, func(*flowrec.Record) { records++ })
	}
	b.ReportMetric(float64(records), "records")
}

// BenchmarkPacketPath measures the same day through packet rendering
// and the full probe — the cost of measuring off the wire instead of
// trusting the generator (the paper's deployment did not have the
// choice).
func BenchmarkPacketPath(b *testing.B) {
	w := simnet.NewWorld(1, simnet.Scale{ADSL: 4, FTTH: 2})
	day := time.Date(2016, 5, 10, 0, 0, 0, 0, time.UTC)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		pr := newBenchProbe(w)
		w.EmitDayPackets(day, simnet.PacketOptions{MaxFlowBytes: 16 << 10}, pr.Feed)
		pr.Flush()
	}
}

// BenchmarkCodecBinaryVsCSV contrasts the two record codecs.
func BenchmarkCodecBinaryVsCSV(b *testing.B) {
	w := simnet.NewWorld(1, simnet.Scale{ADSL: 10, FTTH: 5})
	day := time.Date(2016, 5, 10, 0, 0, 0, 0, time.UTC)
	var records []*flowrec.Record
	w.EmitDay(day, func(r *flowrec.Record) {
		c := *r
		records = append(records, &c)
	})
	b.Run("binary", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			cw := countWriter{}
			enc, err := flowrec.NewEncoder(&cw)
			if err != nil {
				b.Fatal(err)
			}
			for _, r := range records {
				if err := enc.Encode(r); err != nil {
					b.Fatal(err)
				}
			}
			if err := enc.Flush(); err != nil {
				b.Fatal(err)
			}
			b.ReportMetric(float64(cw.n)/float64(len(records)), "bytes/record")
		}
	})
	b.Run("csv", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			cw := countWriter{}
			enc, err := flowrec.NewCSVWriter(&cw)
			if err != nil {
				b.Fatal(err)
			}
			for _, r := range records {
				if err := enc.Write(r); err != nil {
					b.Fatal(err)
				}
			}
			if err := enc.Flush(); err != nil {
				b.Fatal(err)
			}
			b.ReportMetric(float64(cw.n)/float64(len(records)), "bytes/record")
		}
	})
}

type countWriter struct{ n int }

func (c *countWriter) Write(p []byte) (int, error) {
	c.n += len(p)
	return len(p), nil
}

// BenchmarkWeeklyReach measures the extension analysis (it walks
// per-subscriber maps across a 4-week window).
func BenchmarkWeeklyReach(b *testing.B) {
	p := core.New(core.Config{Seed: 3, Scale: simnet.Scale{ADSL: 40, FTTH: 20}, Workers: 4})
	days := core.RangeDays(
		time.Date(2017, 10, 2, 0, 0, 0, 0, time.UTC),
		time.Date(2017, 10, 15, 0, 0, 0, 0, time.UTC), 1)
	aggs, err := p.Aggregate(context.Background(), days)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		analytics.WeeklyPopularity(aggs, "Netflix")
	}
}
