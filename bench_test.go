// Package bench is the reproduction's benchmark harness: one
// testing.B benchmark per table and figure of the paper, each running
// the full pipeline — synthetic world → flow records → per-day
// aggregation → figure computation → rendered rows — at a reduced
// scale. `go test -bench=. -benchmem` regenerates every result;
// cmd/edgereport prints the full-size versions, and EXPERIMENTS.md
// records the paper-vs-measured comparison.
package bench

import (
	"context"
	"io"
	"testing"

	"repro/internal/core"
	"repro/internal/simnet"
)

// benchPipeline builds a small, deterministic pipeline. Scale and
// stride trade absolute runtime for identical code paths: every layer
// the full runs use is exercised.
func benchPipeline() *core.Pipeline {
	return core.New(core.Config{
		Seed:    1,
		Scale:   simnet.Scale{ADSL: 24, FTTH: 12},
		Stride:  60,
		Workers: 4,
	})
}

// runExperiment is the common body: a fresh pipeline per iteration so
// aggregation work is measured, not cache hits.
func runExperiment(b *testing.B, id string) {
	b.Helper()
	e, ok := core.Lookup(id)
	if !ok {
		b.Fatalf("unknown experiment %q", id)
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		p := benchPipeline()
		if err := e.Run(context.Background(), p, io.Discard); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkTable1Classify regenerates Table 1 (domain→service rules).
func BenchmarkTable1Classify(b *testing.B) { runExperiment(b, "table1") }

// BenchmarkActiveSubscribers reproduces the section 3 headline (~80%
// of subscribers pass the activity filter each day).
func BenchmarkActiveSubscribers(b *testing.B) { runExperiment(b, "active") }

// BenchmarkFig2DailyCCDF regenerates Figure 2: CCDFs of daily traffic
// per active subscriber, April 2014 vs April 2017, down/up × tech.
func BenchmarkFig2DailyCCDF(b *testing.B) { runExperiment(b, "fig2") }

// BenchmarkFig3MonthlyTrend regenerates Figure 3: average
// per-subscription daily traffic across the 54 months.
func BenchmarkFig3MonthlyTrend(b *testing.B) { runExperiment(b, "fig3") }

// BenchmarkFig4HourlyRatio regenerates Figure 4: the Apr 2017/Apr 2014
// download ratio per 10-minute bin, Bézier-smoothed.
func BenchmarkFig4HourlyRatio(b *testing.B) { runExperiment(b, "fig4") }

// BenchmarkFig5Popularity regenerates Figure 5: popularity and byte
// share of the seventeen services over time.
func BenchmarkFig5Popularity(b *testing.B) { runExperiment(b, "fig5") }

// BenchmarkFig6VideoAndP2P regenerates Figure 6: P2P decline, Netflix
// launch and Ultra-HD split, YouTube's steady dominance.
func BenchmarkFig6VideoAndP2P(b *testing.B) { runExperiment(b, "fig6") }

// BenchmarkFig7SocialApps regenerates Figure 7: SnapChat boom-bust,
// WhatsApp saturation with holiday peaks, Instagram's volume climb.
func BenchmarkFig7SocialApps(b *testing.B) { runExperiment(b, "fig7") }

// BenchmarkFig8ProtocolShare regenerates Figure 8: the web protocol
// mix across five years with events A-F.
func BenchmarkFig8ProtocolShare(b *testing.B) { runExperiment(b, "fig8") }

// BenchmarkFig9Autoplay regenerates Figure 9: Facebook's per-user
// daily traffic through 2014 (video auto-play rollout).
func BenchmarkFig9Autoplay(b *testing.B) { runExperiment(b, "fig9") }

// BenchmarkFig10RTTCDF regenerates Figure 10: per-flow minimum RTT
// CDFs for Facebook/Instagram/YouTube/Google, 2014 vs 2017.
func BenchmarkFig10RTTCDF(b *testing.B) { runExperiment(b, "fig10") }

// BenchmarkFig11Infrastructure regenerates Figure 11: per-day server
// footprints, ASN breakdowns and domain shares for Facebook,
// Instagram and YouTube.
func BenchmarkFig11Infrastructure(b *testing.B) { runExperiment(b, "fig11") }

// BenchmarkEndToEndDay measures the raw generate→aggregate cost of a
// single day at default scale — the unit every full-span run is made
// of.
func BenchmarkEndToEndDay(b *testing.B) {
	days := core.MonthDays(2016, 5)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		// A fresh pipeline per iteration defeats the day cache, so the
		// full generate→aggregate path is what gets timed.
		p := core.New(core.Config{Seed: 1, Workers: 1})
		if _, err := p.Aggregate(context.Background(), days[i%len(days):i%len(days)+1]); err != nil {
			b.Fatal(err)
		}
	}
}
