// Command edgereport regenerates the paper's tables and figures from
// the simulated five-year dataset (or from a flow store previously
// written by edgegen/edgeprobe) and prints them as text tables.
//
// Usage:
//
//	edgereport [flags] [experiment ...]
//
// With no experiment arguments it runs the full registry in paper
// order. Available experiments: table1, active, fig2 ... fig11.
//
//	edgereport -stride 7 fig3 fig8
//	edgereport -store /data/lake fig2
//	edgereport -scale large -seed 7
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro/internal/classify"
	"repro/internal/core"
	"repro/internal/faultinject"
	"repro/internal/flowrec"
	"repro/internal/metrics"
	"repro/internal/prof"
	"repro/internal/simnet"
)

func main() {
	var (
		seed       = flag.Uint64("seed", 1, "world seed (same seed, same dataset)")
		stride     = flag.Int("stride", 7, "day sampling stride for full-span experiments")
		scale      = flag.String("scale", "default", "population scale: small, default, large")
		workers    = flag.Int("workers", 0, "parallel aggregation workers (0 = NumCPU)")
		shards     = flag.Int("shards", 0, "per-day shard aggregators; results are byte-identical for any value (0 = auto, 1 = serial fold)")
		store      = flag.String("store", "", "read records from this flow store instead of simulating (v1/v2/v3 day files auto-detected, experiments decode only the columns they declare)")
		rules      = flag.String("rules", "", "classification rules file (default: built-in list)")
		aggDir     = flag.String("aggcache", "", "persist per-day aggregates to this directory across runs")
		rollupDir  = flag.String("rollup", "", "persist week/month/year rollups to this directory; long-span experiments answer from the coarsest tier that fits")
		sketch     = flag.Bool("sketch", false, "carry mergeable sketches (HLL clients/server IPs, SpaceSaving services/domains, t-digest RTT) in aggregates and rollups")
		export     = flag.String("export", "", "write the figure data tables (CSV) to this directory and exit")
		list       = flag.Bool("list", false, "list experiments and exit")
		stats      = flag.Bool("stats", false, "print the pipeline metrics table after the run")
		cpuprofile = flag.String("cpuprofile", "", "write a CPU profile to this file")
		memprofile = flag.String("memprofile", "", "write a heap profile to this file at exit")
		faults     = flag.String("faults", "", `fault-injection spec, e.g. "readday:p=0.01,transient" (see README)`)
		degrade    = flag.Bool("degrade", true, "report failed days and continue instead of aborting the run")
		dayTimeout = flag.Duration("day-timeout", 0, "deadline per aggregated day, all retries included (0 = none)")
		memlimit   = flag.String("memlimit", "", `stage-one memory budget, e.g. "512M" (0 = unbounded; over budget, aggregation spills partials to disk and external-merges them)`)
	)
	flag.Parse()
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	stopProf, err := prof.Start(*cpuprofile, *memprofile)
	if err != nil {
		fmt.Fprintf(os.Stderr, "edgereport: %v\n", err)
		os.Exit(1)
	}
	defer func() {
		if err := stopProf(); err != nil {
			fmt.Fprintf(os.Stderr, "edgereport: %v\n", err)
		}
	}()
	if *stats {
		defer func() {
			fmt.Println("\n== pipeline metrics ==")
			metrics.WriteText(os.Stdout)
		}()
	}

	if *list {
		for _, e := range core.AllExperiments() {
			fmt.Printf("%-8s %s\n", e.ID, e.Title)
		}
		return
	}

	membudget, err := core.ParseMemLimit(*memlimit)
	if err != nil {
		fmt.Fprintf(os.Stderr, "edgereport: %v\n", err)
		os.Exit(2)
	}
	cfg := core.Config{
		Seed: *seed, Stride: *stride, Workers: *workers, ShardsPerDay: *shards,
		AggCacheDir: *aggDir, RollupDir: *rollupDir, Sketch: *sketch,
		Degrade: *degrade, DayTimeout: *dayTimeout, MemBudget: membudget,
	}
	if *faults != "" {
		plan, perr := faultinject.Parse(*faults)
		if perr != nil {
			fmt.Fprintf(os.Stderr, "edgereport: %v\n", perr)
			os.Exit(2)
		}
		cfg.Faults = plan
	}
	switch *scale {
	case "small":
		cfg.Scale = simnet.Scale{ADSL: 60, FTTH: 30}
	case "default":
		cfg.Scale = simnet.Scale{}
	case "large":
		cfg.Scale = simnet.Scale{ADSL: 1000, FTTH: 500}
	default:
		fmt.Fprintf(os.Stderr, "edgereport: unknown scale %q\n", *scale)
		os.Exit(2)
	}
	if *store != "" {
		s, err := flowrec.OpenStore(*store)
		if err != nil {
			fmt.Fprintf(os.Stderr, "edgereport: %v\n", err)
			os.Exit(1)
		}
		cfg.Store = s
	}
	if *rules != "" {
		f, err := os.Open(*rules)
		if err != nil {
			fmt.Fprintf(os.Stderr, "edgereport: %v\n", err)
			os.Exit(1)
		}
		parsed, perr := classify.ParseRules(f)
		f.Close()
		if perr != nil {
			fmt.Fprintf(os.Stderr, "edgereport: %v\n", perr)
			os.Exit(1)
		}
		cls, cerr := classify.New(parsed)
		if cerr != nil {
			fmt.Fprintf(os.Stderr, "edgereport: %v\n", cerr)
			os.Exit(1)
		}
		cfg.Classifier = cls
	}
	p := core.New(cfg)

	if *export != "" {
		if err := p.ExportData(ctx, *export); err != nil {
			fmt.Fprintf(os.Stderr, "edgereport: %v\n", err)
			os.Exit(1)
		}
		fmt.Printf("figure data tables written to %s\n", *export)
		return
	}

	ids := flag.Args()
	if len(ids) == 0 {
		for _, e := range core.Experiments() {
			ids = append(ids, e.ID)
		}
	}
	start := time.Now()
	for _, id := range ids {
		e, ok := core.Lookup(id)
		if !ok {
			fmt.Fprintf(os.Stderr, "edgereport: unknown experiment %q (try -list)\n", id)
			os.Exit(2)
		}
		t0 := time.Now()
		if err := e.Run(ctx, p, os.Stdout); err != nil {
			fmt.Fprintf(os.Stderr, "edgereport: %s: %v\n", id, err)
			os.Exit(1)
		}
		fmt.Printf("[%s done in %v]\n", id, time.Since(t0).Round(time.Millisecond))
	}
	// Degraded runs still produce every healthy day; the failed days
	// are accounted for here rather than silently missing from plots.
	if errs := p.DayErrors(); len(errs) > 0 {
		fmt.Fprintf(os.Stderr, "\nedgereport: %d day(s) failed and were skipped:\n", len(errs))
		for _, de := range errs {
			fmt.Fprintf(os.Stderr, "  %s: %v\n", de.Day.Format("2006-01-02"), de.Err)
		}
	}
	fmt.Printf("\nall done in %v\n", time.Since(start).Round(time.Millisecond))
}
