// Command edgeserve is the long-running query service over the lake:
// it assembles the same pipeline as edgereport (store, agg cache,
// rollup tier, fault plan) and serves the experiment registry, the
// paper's figures and ad-hoc scans over HTTP. Concurrent queries
// share one pipeline's caches under admission control, so many
// readers cannot OOM one lake.
//
// Usage:
//
//	edgeserve -store /data/lake -aggcache /data/agg -rollup /data/rollups
//	edgeserve -addr 127.0.0.1:8080 -query-workers 8 -queue 16
//	edgeserve -scale small -stride 240          # simulation-fed, no lake
//
// Endpoints: /v1/healthz, /v1/metrics, /v1/experiments,
// /v1/figures/{name}, /v1/scan, and the token-gated POST
// /v1/admin/{compact,rollups/prewarm} (see README for the parameter
// table). Responses are cached per lake generation and carry strong
// ETags; repeated dashboard queries answer from memory, 304 when the
// client already holds the bytes.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro/internal/classify"
	"repro/internal/core"
	"repro/internal/faultinject"
	"repro/internal/flowrec"
	"repro/internal/metrics"
	"repro/internal/prof"
	"repro/internal/serve"
	"repro/internal/simnet"
)

func main() {
	var (
		addr       = flag.String("addr", "127.0.0.1:8080", "listen address (host:port; port 0 picks a free port)")
		addrFile   = flag.String("addr-file", "", "write the bound address to this file once listening (for scripts racing startup)")
		qWorkers   = flag.Int("query-workers", 0, "concurrent query executors (0 = NumCPU)")
		queue      = flag.Int("queue", 0, "queued requests before 429 shedding (0 = 2x query-workers)")
		qTimeout   = flag.Duration("query-timeout", 30*time.Second, "per-query deadline, queue wait included; expiry answers 504")
		scanDays   = flag.Int("scan-max-days", serve.MaxScanDays, "largest /v1/scan day span")
		cacheBytes = flag.Int64("cache", 0, "response-cache budget in bytes (0 = 64MiB default, negative disables)")
		adminToken = flag.String("admin-token", "", "bearer token for POST /v1/admin endpoints (empty = admin disabled)")
		seed       = flag.Uint64("seed", 1, "world seed for simulation-fed serving")
		stride     = flag.Int("stride", 7, "default day sampling stride for full-span figures")
		scale      = flag.String("scale", "default", "population scale: small, default, large")
		workers    = flag.Int("workers", 0, "pipeline aggregation workers per query (0 = NumCPU)")
		shards     = flag.Int("shards", 0, "per-day shard aggregators (0 = auto, 1 = serial fold)")
		store      = flag.String("store", "", "serve this flow store (v1/v2/v3 day files auto-detected)")
		rules      = flag.String("rules", "", "classification rules file (default: built-in list)")
		aggDir     = flag.String("aggcache", "", "per-day aggregate cache directory (shared with edged for hot-day serving)")
		rollupDir  = flag.String("rollup", "", "rollup directory; coarse queries answer from the coarsest tier that fits")
		sketch     = flag.Bool("sketch", false, "carry mergeable sketches in aggregates and rollups")
		degrade    = flag.Bool("degrade", true, "serve partial figures past damaged days instead of failing the query")
		dayTimeout = flag.Duration("day-timeout", 0, "deadline per aggregated day inside a query (0 = none)")
		memlimit   = flag.String("memlimit", "", `stage-one memory budget per query, e.g. "512M" (0 = unbounded)`)
		faults     = flag.String("faults", "", `fault-injection spec, e.g. "readday:p=0.01,transient" (see README)`)
		stats      = flag.Bool("stats", false, "print the metrics table on shutdown")
		cpuprofile = flag.String("cpuprofile", "", "write a CPU profile to this file")
		memprofile = flag.String("memprofile", "", "write a heap profile to this file at exit")
	)
	flag.Parse()

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	stopProf, err := prof.Start(*cpuprofile, *memprofile)
	if err != nil {
		fatal(err)
	}
	defer func() {
		if err := stopProf(); err != nil {
			fmt.Fprintf(os.Stderr, "edgeserve: %v\n", err)
		}
	}()
	if *stats {
		defer func() {
			fmt.Println("\n== pipeline metrics ==")
			metrics.WriteText(os.Stdout)
		}()
	}

	membudget, err := core.ParseMemLimit(*memlimit)
	if err != nil {
		fatal(err)
	}
	cfg := core.Config{
		Seed: *seed, Stride: *stride, Workers: *workers, ShardsPerDay: *shards,
		AggCacheDir: *aggDir, RollupDir: *rollupDir, Sketch: *sketch,
		Degrade: *degrade, DayTimeout: *dayTimeout, MemBudget: membudget,
	}
	switch *scale {
	case "small":
		cfg.Scale = simnet.Scale{ADSL: 60, FTTH: 30}
	case "default":
		cfg.Scale = simnet.Scale{}
	case "large":
		cfg.Scale = simnet.Scale{ADSL: 1000, FTTH: 500}
	default:
		fatal(fmt.Errorf("unknown scale %q", *scale))
	}
	if *faults != "" {
		plan, perr := faultinject.Parse(*faults)
		if perr != nil {
			fatal(perr)
		}
		cfg.Faults = plan
	}
	if *store != "" {
		s, serr := flowrec.OpenStore(*store)
		if serr != nil {
			fatal(serr)
		}
		cfg.Store = s
	}
	if *rules != "" {
		f, ferr := os.Open(*rules)
		if ferr != nil {
			fatal(ferr)
		}
		parsed, perr := classify.ParseRules(f)
		f.Close()
		if perr != nil {
			fatal(perr)
		}
		if cfg.Classifier, err = classify.New(parsed); err != nil {
			fatal(err)
		}
	}

	srv := serve.New(core.New(cfg), serve.Options{
		Workers:      *qWorkers,
		Queue:        *queue,
		QueryTimeout: *qTimeout,
		MaxScanDays:  *scanDays,
		CacheBytes:   *cacheBytes,
		AdminToken:   *adminToken,
	})

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		fatal(err)
	}
	bound := ln.Addr().String()
	if *addrFile != "" {
		// Written atomically so a watcher never reads a half-written
		// address.
		tmp := *addrFile + ".tmp"
		if err := os.WriteFile(tmp, []byte(bound), 0o644); err != nil {
			fatal(err)
		}
		if err := os.Rename(tmp, *addrFile); err != nil {
			fatal(err)
		}
	}
	fmt.Fprintf(os.Stderr, "edgeserve: listening on %s\n", bound)

	hs := &http.Server{Handler: srv.Handler()}
	done := make(chan error, 1)
	go func() { done <- hs.Serve(ln) }()

	select {
	case err := <-done:
		if err != nil && !errors.Is(err, http.ErrServerClosed) {
			fatal(err)
		}
	case <-ctx.Done():
		// Graceful drain: in-flight queries get a grace window, new
		// connections are refused immediately.
		shCtx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		if err := hs.Shutdown(shCtx); err != nil {
			fmt.Fprintf(os.Stderr, "edgeserve: shutdown: %v\n", err)
		}
		fmt.Fprintln(os.Stderr, "edgeserve: drained, bye")
	}
}

func fatal(err error) {
	fmt.Fprintf(os.Stderr, "edgeserve: %v\n", err)
	os.Exit(1)
}
