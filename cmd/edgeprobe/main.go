// Command edgeprobe exercises the packet path end to end: it renders
// days of the simulated world as raw packet streams (Ethernet/IPv4/
// TCP|UDP frames with real TLS, HTTP, QUIC and DNS payload bytes),
// feeds them through the passive probe — parsing, flow tracking, DPI,
// DN-Hunter, RTT estimation, anonymization — and writes the exported
// flow records to a store that edgereport can analyse.
//
// It is the software equivalent of the paper's deployment: what
// edgegen fabricates directly, edgeprobe measures off the wire.
//
// Usage:
//
//	edgeprobe -out /data/probelake -from 2016-12-01 -to 2016-12-07
//	edgeprobe -out /data/probelake -pcap-in capture.pcap      # replay a trace
//	edgeprobe -out /data/probelake -from 2016-12-01 -pcap-out day.pcap
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"sync"
	"time"

	"repro/internal/core"
	"repro/internal/faultinject"
	"repro/internal/flowrec"
	"repro/internal/metrics"
	"repro/internal/pcap"
	"repro/internal/probe"
	"repro/internal/prof"
	"repro/internal/retry"
	"repro/internal/simnet"
)

func main() {
	var (
		seed       = flag.Uint64("seed", 1, "world seed")
		out        = flag.String("out", "", "store directory (required)")
		from       = flag.String("from", "", "first day (YYYY-MM-DD)")
		to         = flag.String("to", "", "last day (YYYY-MM-DD)")
		adsl       = flag.Int("adsl", 12, "ADSL subscriber count")
		ftth       = flag.Int("ftth", 6, "FTTH subscriber count")
		capKiB     = flag.Int("flowcap", 96, "materialised payload cap per flow direction (KiB)")
		format     = flag.String("format", "v1", "day-file format: v1 (row codec), v2 (columnar) or v3 (columnar, per-block compression); readers auto-detect")
		shards     = flag.Int("shards", 1, "parallel probe workers per day (flow-hash packet fan-out); record order in the store varies with the count, record content does not")
		pcapIn     = flag.String("pcap-in", "", "replay packets from this pcap file instead of simulating")
		pcapOut    = flag.String("pcap-out", "", "also dump the simulated packet stream to this pcap file")
		rollupDir  = flag.String("rollup", "", "after the capture, prewarm week/month/year rollups over the store into this directory")
		sketch     = flag.Bool("sketch", false, "carry mergeable sketches in the prewarmed rollups")
		stats      = flag.Bool("stats", false, "print the pipeline metrics table after the run")
		cpuprofile = flag.String("cpuprofile", "", "write a CPU profile to this file")
		memprofile = flag.String("memprofile", "", "write a heap profile to this file at exit")
		faults     = flag.String("faults", "", `fault-injection spec for the output store, e.g. "writeday:p=0.1,transient" (see README)`)
	)
	flag.Parse()
	stopProf, err := prof.Start(*cpuprofile, *memprofile)
	if err != nil {
		fmt.Fprintf(os.Stderr, "edgeprobe: %v\n", err)
		os.Exit(1)
	}
	defer func() {
		if err := stopProf(); err != nil {
			fmt.Fprintf(os.Stderr, "edgeprobe: %v\n", err)
		}
	}()
	if *stats {
		defer func() {
			fmt.Println("\n== pipeline metrics ==")
			metrics.WriteText(os.Stdout)
		}()
	}
	if *out == "" {
		fmt.Fprintln(os.Stderr, "edgeprobe: -out is required")
		os.Exit(2)
	}
	parse := func(s string, def time.Time) time.Time {
		if s == "" {
			return def
		}
		t, err := time.Parse("2006-01-02", s)
		if err != nil {
			fmt.Fprintf(os.Stderr, "edgeprobe: bad date %q: %v\n", s, err)
			os.Exit(2)
		}
		return t.UTC()
	}
	start := parse(*from, simnet.SpanStart)
	end := parse(*to, start)

	world := simnet.NewWorld(*seed, simnet.Scale{ADSL: *adsl, FTTH: *ftth})
	sf, err := flowrec.ParseFormat(*format)
	if err != nil {
		fmt.Fprintf(os.Stderr, "edgeprobe: %v\n", err)
		os.Exit(2)
	}
	store, err := flowrec.OpenStoreFormat(*out, sf)
	if err != nil {
		fmt.Fprintf(os.Stderr, "edgeprobe: %v\n", err)
		os.Exit(1)
	}
	// The probe writes through the storage interface so the chaos
	// layer can exercise the capture->store path; a torn or transient
	// write retries by re-simulating the day (deterministic, and the
	// rewrite truncates the partial file).
	// Carrying the rollup directory on the write side drops stale
	// windows covering any day this capture rewrites.
	var dst core.Storage = core.NewDiskStorage(store, "").WithRollupDir(*rollupDir)
	var plan *faultinject.Plan
	if *faults != "" {
		var perr error
		if plan, perr = faultinject.Parse(*faults); perr != nil {
			fmt.Fprintf(os.Stderr, "edgeprobe: %v\n", perr)
			os.Exit(2)
		}
		dst = faultinject.Wrap(dst, plan)
	}
	pol := retry.Policy{Attempts: 3, Base: 25 * time.Millisecond, Max: 500 * time.Millisecond, Seed: *seed}

	if *pcapIn != "" {
		if err := replayPcap(world, store, *pcapIn); err != nil {
			fmt.Fprintf(os.Stderr, "edgeprobe: %v\n", err)
			os.Exit(1)
		}
		if *rollupDir != "" {
			prewarmRollups(store, *rollupDir, *sketch)
		}
		return
	}

	t0 := time.Now()
	var totalFlows, totalPkts uint64
	for _, day := range core.RangeDays(start, end, 1) {
		// An "outage" rule models the capture box being down: the whole
		// day is skipped, leaving a gap in the lake (nil-safe on plan).
		if plan.DayOutage(day) {
			fmt.Printf("%s: probe outage (injected), day skipped\n", day.Format("2006-01-02"))
			continue
		}
		var dayStats probe.Stats
		err := pol.Do(context.Background(), uint64(day.Unix()), func() error {
			_, werr := dst.WriteDay(day, func(write func(*flowrec.Record) error) error {
				// With -shards > 1 records arrive concurrently from the
				// shard workers, but the day writer is single-lane: the
				// mutex funnels them back into one stream.
				var mu sync.Mutex
				var recErr error
				cfg := probe.Config{
					Subscriber:       world.SubscriberLookup,
					AnonKey:          world.AnonKey(),
					SPDYVisibleSince: simnet.SPDYVisibleSince(),
					OnRecord: func(r *flowrec.Record) {
						// Clamp to the partition day: flows crossing
						// midnight land in the day they started, as in
						// Tstat logs.
						mu.Lock()
						if recErr == nil && r.Day().Equal(day) {
							recErr = write(r)
						}
						mu.Unlock()
					},
				}
				var feed func(probe.Packet)
				var finish func()
				if *shards > 1 {
					// Flow-hash packet fan-out across independent probes,
					// the deployment's DPDK-queue layout. Safe here: the
					// simulator hands every packet its own buffer.
					sp := probe.NewSharded(*shards, cfg)
					feed = sp.Feed
					finish = func() { sp.Close(); dayStats = sp.Stats() }
				} else {
					pr := probe.New(cfg)
					feed = pr.Feed
					finish = func() { pr.Flush(); dayStats = pr.Stats }
				}
				var pw *pcap.Writer
				if *pcapOut != "" {
					f, err := os.Create(*pcapOut)
					if err != nil {
						fmt.Fprintf(os.Stderr, "edgeprobe: %v\n", err)
						os.Exit(1)
					}
					defer f.Close()
					if pw, err = pcap.NewWriter(f, 0); err != nil {
						fmt.Fprintf(os.Stderr, "edgeprobe: %v\n", err)
						os.Exit(1)
					}
					inner := feed
					feed = func(p probe.Packet) {
						if err := pw.WritePacket(p.TS, p.Data); err != nil {
							fmt.Fprintf(os.Stderr, "edgeprobe: pcap: %v\n", err)
							os.Exit(1)
						}
						inner(p)
					}
					*pcapOut = "" // one file covers the first day only
				}
				world.EmitDayPackets(day, simnet.PacketOptions{MaxFlowBytes: uint64(*capKiB) << 10}, feed)
				finish()
				if pw != nil {
					if err := pw.Flush(); err != nil {
						fmt.Fprintf(os.Stderr, "edgeprobe: pcap: %v\n", err)
						os.Exit(1)
					}
				}
				return recErr
			})
			return werr
		})
		if err != nil {
			fmt.Fprintf(os.Stderr, "edgeprobe: %s: %v\n", day.Format("2006-01-02"), err)
			os.Exit(1)
		}
		totalFlows += dayStats.FlowsExported
		totalPkts += dayStats.Packets
		fmt.Printf("%s: %s\n", day.Format("2006-01-02"), dayStats)
	}
	fmt.Printf("probe path done: %d packets -> %d flows in %v\n",
		totalPkts, totalFlows, time.Since(t0).Round(time.Millisecond))
	if *rollupDir != "" {
		prewarmRollups(store, *rollupDir, *sketch)
	}
}

// prewarmRollups folds every day in the freshly written store into
// week/month/year rollup files, so the first analysis run against the
// capture answers from the tier instead of re-folding day aggregates.
// The probe pipeline carries no analytics wiring of its own; a second,
// read-side pipeline does the folding.
func prewarmRollups(store *flowrec.Store, dir string, sketch bool) {
	t0 := time.Now()
	days, err := core.NewDiskStorage(store, "").Days()
	if err != nil {
		fmt.Fprintf(os.Stderr, "edgeprobe: rollup prewarm: %v\n", err)
		os.Exit(1)
	}
	p := core.New(core.Config{Store: store, RollupDir: dir, Sketch: sketch})
	nw, err := p.BuildRollups(context.Background(), days)
	if err != nil {
		fmt.Fprintf(os.Stderr, "edgeprobe: rollup prewarm: %v\n", err)
		os.Exit(1)
	}
	fmt.Printf("prewarmed %d rollup windows into %s in %v\n",
		nw, dir, time.Since(t0).Round(time.Millisecond))
}

// replayPcap feeds a capture file through the probe and stores the
// exported flows, partitioned by day.
func replayPcap(world *simnet.World, store *flowrec.Store, path string) error {
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	defer f.Close()
	r, err := pcap.NewReader(f)
	if err != nil {
		return err
	}
	if r.LinkType != pcap.LinkTypeEthernet {
		return fmt.Errorf("%w: %d", pcap.ErrWrongLink, r.LinkType)
	}

	writers := make(map[time.Time]*flowrec.DayWriter)
	var werr error
	pr := probe.New(probe.Config{
		Subscriber:       world.SubscriberLookup,
		AnonKey:          world.AnonKey(),
		SPDYVisibleSince: simnet.SPDYVisibleSince(),
		OnRecord: func(rec *flowrec.Record) {
			if werr != nil {
				return
			}
			day := rec.Day()
			w, ok := writers[day]
			if !ok {
				w, werr = store.CreateDay(day)
				if werr != nil {
					return
				}
				writers[day] = w
			}
			werr = w.Write(rec)
		},
	})
	var pkts uint64
	for {
		ts, data, err := r.ReadPacket()
		if err != nil {
			if errors.Is(err, io.EOF) {
				break
			}
			return err
		}
		pkts++
		pr.Feed(probe.Packet{TS: ts, Data: data})
	}
	pr.Flush()
	for _, w := range writers {
		if err := w.Close(); err != nil && werr == nil {
			werr = err
		}
	}
	if werr != nil {
		return werr
	}
	fmt.Printf("replayed %d packets -> %s\n", pkts, pr.Stats)
	return nil
}
