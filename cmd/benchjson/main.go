// Command benchjson converts `go test -bench` text output on stdin
// into a machine-readable JSON summary on stdout, so benchmark runs
// can be diffed across commits without scraping the text format.
//
// Repeated runs of the same benchmark (-count=N) are averaged, and
// the per-run samples kept, so noisy metrics stay inspectable.
//
// Usage:
//
//	go test -bench=. -benchmem -count=5 . | benchjson > BENCH.json
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"sort"
	"strconv"
	"strings"
)

// result accumulates every sample of one benchmark across -count runs.
type result struct {
	Name     string  `json:"name"`
	Runs     int     `json:"runs"`
	NsPerOp  float64 `json:"ns_per_op"`
	BPerOp   float64 `json:"bytes_per_op,omitempty"`
	AllocsOp float64 `json:"allocs_per_op,omitempty"`
	// Extra holds custom b.ReportMetric units — decoded_B/op,
	// records/sec, blocks_skipped/op — averaged like the standard
	// columns, so scaling curves survive into the JSON.
	Extra     map[string]float64 `json:"extra,omitempty"`
	NsSamples []float64          `json:"ns_samples,omitempty"`
}

func main() {
	sloFile := flag.String("slo", "", "embed this edgeload JSON result array as the serve_slo field")
	sloCached := flag.String("slo-cached", "", "second edgeload sweep (response cache + ETags on); serve_slo becomes {cold, cached}")
	flag.Parse()
	byName := make(map[string]*result)
	var order []string
	goos, goarch, pkg := "", "", ""

	sc := bufio.NewScanner(os.Stdin)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		line := sc.Text()
		switch {
		case strings.HasPrefix(line, "goos:"):
			goos = strings.TrimSpace(strings.TrimPrefix(line, "goos:"))
			continue
		case strings.HasPrefix(line, "goarch:"):
			goarch = strings.TrimSpace(strings.TrimPrefix(line, "goarch:"))
			continue
		case strings.HasPrefix(line, "pkg:"):
			pkg = strings.TrimSpace(strings.TrimPrefix(line, "pkg:"))
			continue
		case !strings.HasPrefix(line, "Benchmark"):
			continue
		}
		fields := strings.Fields(line)
		// BenchmarkName-8  N  12345 ns/op  [678 B/op  9 allocs/op ...]
		if len(fields) < 4 || fields[3] != "ns/op" {
			continue
		}
		name := strings.TrimSuffix(fields[0], fmt.Sprintf("-%d", cpuSuffix(fields[0])))
		ns, err := strconv.ParseFloat(fields[2], 64)
		if err != nil {
			continue
		}
		r := byName[name]
		if r == nil {
			r = &result{Name: name}
			byName[name] = r
			order = append(order, name)
		}
		r.Runs++
		r.NsSamples = append(r.NsSamples, ns)
		r.NsPerOp += ns
		for i := 4; i+1 < len(fields); i += 2 {
			v, err := strconv.ParseFloat(fields[i], 64)
			if err != nil {
				continue
			}
			switch fields[i+1] {
			case "B/op":
				r.BPerOp += v
			case "allocs/op":
				r.AllocsOp += v
			default:
				if r.Extra == nil {
					r.Extra = make(map[string]float64)
				}
				r.Extra[fields[i+1]] += v
			}
		}
	}
	if err := sc.Err(); err != nil {
		fmt.Fprintf(os.Stderr, "benchjson: %v\n", err)
		os.Exit(1)
	}

	sort.Strings(order)
	results := make([]*result, 0, len(order))
	for _, name := range order {
		r := byName[name]
		n := float64(r.Runs)
		r.NsPerOp /= n
		r.BPerOp /= n
		r.AllocsOp /= n
		for k := range r.Extra {
			r.Extra[k] /= n
		}
		results = append(results, r)
	}
	out := struct {
		GOOS       string          `json:"goos,omitempty"`
		GOARCH     string          `json:"goarch,omitempty"`
		Pkg        string          `json:"pkg,omitempty"`
		Benchmarks []*result       `json:"benchmarks"`
		ServeSLO   json.RawMessage `json:"serve_slo,omitempty"`
	}{GOOS: goos, GOARCH: goarch, Pkg: pkg, Benchmarks: results}
	if *sloFile != "" {
		slo, err := os.ReadFile(*sloFile)
		if err != nil || !json.Valid(slo) {
			fmt.Fprintf(os.Stderr, "benchjson: -slo %s: %v\n", *sloFile, err)
			os.Exit(1)
		}
		out.ServeSLO = slo
		if *sloCached != "" {
			cached, err := os.ReadFile(*sloCached)
			if err != nil || !json.Valid(cached) {
				fmt.Fprintf(os.Stderr, "benchjson: -slo-cached %s: %v\n", *sloCached, err)
				os.Exit(1)
			}
			// Two sweeps of the same workload — one against a cold
			// cacheless server, one with the response cache and ETag
			// revalidation — keyed so the curves diff against each other.
			both, err := json.Marshal(map[string]json.RawMessage{
				"cold": slo, "cached": cached,
			})
			if err != nil {
				fmt.Fprintf(os.Stderr, "benchjson: %v\n", err)
				os.Exit(1)
			}
			out.ServeSLO = both
		}
	}

	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	if err := enc.Encode(out); err != nil {
		fmt.Fprintf(os.Stderr, "benchjson: %v\n", err)
		os.Exit(1)
	}
}

// cpuSuffix extracts the trailing -N GOMAXPROCS marker of a benchmark
// name, or 0 when there is none (GOMAXPROCS=1 runs have no suffix).
func cpuSuffix(name string) int {
	i := strings.LastIndexByte(name, '-')
	if i < 0 {
		return 0
	}
	n, err := strconv.Atoi(name[i+1:])
	if err != nil {
		return 0
	}
	return n
}
