// Command edgequery runs ad-hoc queries over an on-disk flow store —
// the "specific queries on historical collections" of section 2.2.
// It filters by day range, service, protocol and subscriber, and
// prints matching records as CSV or a per-service summary.
//
// Usage:
//
//	edgequery -store /data/lake -from 2016-11-01 -to 2016-11-07 -summary
//	edgequery -store /data/lake -from 2016-11-05 -service Netflix -csv -
//	edgequery -store /data/lake -from 2016-11-05 -proto FB-ZERO -summary
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"sort"
	"strings"
	"sync"
	"time"

	"repro/internal/analytics"
	"repro/internal/classify"
	"repro/internal/core"
	"repro/internal/faultinject"
	"repro/internal/flowrec"
	"repro/internal/metrics"
	"repro/internal/report"
	"repro/internal/retry"
)

func main() {
	var (
		storeDir = flag.String("store", "", "flow store directory (required)")
		from     = flag.String("from", "", "first day YYYY-MM-DD (required)")
		to       = flag.String("to", "", "last day (default: same as -from)")
		service  = flag.String("service", "", "only flows of this service (e.g. Netflix)")
		proto    = flag.String("proto", "", "only flows with this protocol label (e.g. QUIC, FB-ZERO)")
		subID    = flag.Int64("sub", -1, "only this subscription id")
		tech     = flag.String("tech", "", "only this access technology (adsl or ftth); pushed down into the scan")
		srvPort  = flag.String("srvport", "", "only this server port or inclusive range lo-hi (e.g. 443 or 6881-6999); pushed down into the scan")
		rules    = flag.String("rules", "", "classification rules file (default: built-in list)")
		csvOut   = flag.String("csv", "", "write matching records as CSV to this file ('-' = stdout)")
		summary  = flag.Bool("summary", false, "print per-service volume summary")
		rollup   = flag.String("rollup", "", "answer from week/month/year rollups in this directory (built on demand) instead of scanning records; prints one row per window")
		sketch   = flag.Bool("sketch", false, "with -rollup: carry mergeable sketches and print per-window distinct-client estimates and top services")
		shards   = flag.Int("shards", 1, "parallel scan shards per day; CSV output forces 1 (record order must be preserved)")
		stats    = flag.Bool("stats", false, "print the pipeline metrics table after the run")
		faults   = flag.String("faults", "", `fault-injection spec, e.g. "readday:p=0.2,transient" (see README)`)
	)
	flag.Parse()
	if *stats {
		defer func() {
			fmt.Println("\n== pipeline metrics ==")
			metrics.WriteText(os.Stdout)
		}()
	}
	if *storeDir == "" || *from == "" {
		fmt.Fprintln(os.Stderr, "edgequery: -store and -from are required")
		os.Exit(2)
	}
	start, err := time.Parse("2006-01-02", *from)
	if err != nil {
		fatal(err)
	}
	end := start
	if *to != "" {
		if end, err = time.Parse("2006-01-02", *to); err != nil {
			fatal(err)
		}
	}

	cls := classify.Default()
	if *rules != "" {
		f, err := os.Open(*rules)
		if err != nil {
			fatal(err)
		}
		parsed, err := classify.ParseRules(f)
		f.Close()
		if err != nil {
			fatal(err)
		}
		if cls, err = classify.New(parsed); err != nil {
			fatal(err)
		}
	}

	store, err := flowrec.OpenStore(*storeDir)
	if err != nil {
		fatal(err)
	}

	// -rollup answers from the tier instead of scanning records: the
	// pipeline folds per-day aggregates into calendar windows (loaded
	// from the rollup directory when current, built and persisted when
	// not) and the query prints one row per window. Days outside any
	// whole calendar window stay on the day tier and are reported so
	// the window totals are never mistaken for full-range totals.
	if *rollup != "" {
		cfg := core.Config{Store: store, RollupDir: *rollup, Sketch: *sketch, Classifier: cls}
		if *faults != "" {
			plan, perr := faultinject.Parse(*faults)
			if perr != nil {
				fatal(perr)
			}
			cfg.Faults = plan
		}
		if err := rollupQuery(core.New(cfg), start.UTC(), end.UTC(), *sketch); err != nil {
			fatal(err)
		}
		return
	}

	var src core.Storage = core.NewDiskStorage(store, "")
	if *faults != "" {
		plan, perr := faultinject.Parse(*faults)
		if perr != nil {
			fatal(perr)
		}
		src = faultinject.Wrap(src, plan)
	}
	pol := retry.Policy{Attempts: 3, Base: 25 * time.Millisecond, Max: 500 * time.Millisecond, Seed: 1}

	var cw *flowrec.CSVWriter
	if *csvOut != "" {
		out := os.Stdout
		if *csvOut != "-" {
			f, err := os.Create(*csvOut)
			if err != nil {
				fatal(err)
			}
			defer f.Close()
			out = f
		}
		if cw, err = flowrec.NewCSVWriter(out); err != nil {
			fatal(err)
		}
	}

	// -tech and -srvport compile into a predicate the store evaluates
	// during the scan: a v2 (columnar) store skips whole blocks whose
	// min/max stats cannot match, a v1 store filters after decode —
	// either way only matching records reach this process's tallies.
	pred, err := buildPred(*tech, *srvPort)
	if err != nil {
		fatal(err)
	}

	match := func(svc classify.Service, r *flowrec.Record) bool {
		if *service != "" && svc != classify.Service(*service) {
			return false
		}
		if *proto != "" && r.Web.String() != *proto {
			return false
		}
		if *subID >= 0 && r.SubID != uint32(*subID) {
			return false
		}
		return true
	}
	// CSV rows must come out in store order, so the parallel scan only
	// serves the summary path.
	scanShards := *shards
	if cw != nil || scanShards < 1 {
		scanShards = 1
	}

	bySvc := make(map[classify.Service]*sum)
	var matched, scanned uint64

	for _, day := range core.RangeDays(start.UTC(), end.UTC(), 1) {
		// Each attempt accumulates into day-local state, merged only on
		// success, so a transient fault retried mid-file cannot double
		// count records or emit duplicate CSV rows.
		var dayScanned, dayMatched uint64
		dayBySvc := make(map[classify.Service]*sum)
		var dayRecs []*flowrec.Record
		err := pol.Do(context.Background(), uint64(day.Unix()), func() error {
			dayScanned, dayMatched = 0, 0
			dayBySvc = make(map[classify.Service]*sum)
			dayRecs = dayRecs[:0]
			if scanShards > 1 {
				return scanSharded(src, cls, day, scanShards, pred, match, &dayScanned, &dayMatched, dayBySvc)
			}
			// The summary only reads the tally columns; CSV output needs
			// every field, so it scans full-width (Cols zero = all).
			sc := flowrec.ColScan{Pred: pred}
			if cw == nil {
				sc.Cols = summaryCols
			}
			return src.ReadDayCols(day, sc, func(r *flowrec.Record) error {
				dayScanned++
				svc := analytics.ServiceOf(cls, r)
				if !match(svc, r) {
					return nil
				}
				dayMatched++
				if cw != nil {
					c := *r // the decoder reuses its record buffer
					dayRecs = append(dayRecs, &c)
				}
				s := dayBySvc[svc]
				if s == nil {
					s = &sum{}
					dayBySvc[svc] = s
				}
				s.flows++
				s.down += r.BytesDown
				s.up += r.BytesUp
				return nil
			})
		})
		if err != nil {
			// Missing days are probe outages: mention and move on.
			fmt.Fprintf(os.Stderr, "edgequery: %s: %v\n", day.Format("2006-01-02"), err)
			continue
		}
		scanned += dayScanned
		matched += dayMatched
		for svc, ds := range dayBySvc {
			s := bySvc[svc]
			if s == nil {
				s = &sum{}
				bySvc[svc] = s
			}
			s.flows += ds.flows
			s.down += ds.down
			s.up += ds.up
		}
		for _, r := range dayRecs {
			if err := cw.Write(r); err != nil {
				fatal(err)
			}
		}
	}
	if cw != nil {
		if err := cw.Flush(); err != nil {
			fatal(err)
		}
	}

	fmt.Fprintf(os.Stderr, "scanned %d records, matched %d\n", scanned, matched)
	if *summary {
		type row struct {
			svc classify.Service
			s   *sum
		}
		var rows []row
		for svc, s := range bySvc {
			rows = append(rows, row{svc, s})
		}
		sort.Slice(rows, func(i, j int) bool { return rows[i].s.down > rows[j].s.down })
		var cells [][]string
		for _, r := range rows {
			name := string(r.svc)
			if name == "" {
				name = "(unclassified)"
			}
			cells = append(cells, []string{
				name,
				fmt.Sprint(r.s.flows),
				report.MB(float64(r.s.down)),
				report.MB(float64(r.s.up)),
			})
		}
		if err := report.Table(os.Stdout, []string{"service", "flows", "down MB", "up MB"}, cells); err != nil {
			fatal(err)
		}
	}
}

// sum is a per-service volume tally.
type sum struct {
	flows    uint64
	down, up uint64
}

// summaryCols is the projection the summary path needs: service
// classification (Web, ServerName), the filter fields (SubID), shard
// routing (Client) and the tallied volumes. The predicate's own
// columns are added by the reader automatically.
var summaryCols = flowrec.Cols(
	flowrec.ColClient, flowrec.ColWeb, flowrec.ColServerName,
	flowrec.ColSubID, flowrec.ColBytesDown, flowrec.ColBytesUp,
)

// buildPred compiles the -tech and -srvport flags into a pushdown
// predicate, nil when neither is set.
func buildPred(tech, srvPort string) (*flowrec.Pred, error) {
	var p flowrec.Pred
	switch tech {
	case "":
	case "adsl":
		p.HasTech, p.Tech = true, flowrec.TechADSL
	case "ftth":
		p.HasTech, p.Tech = true, flowrec.TechFTTH
	default:
		return nil, fmt.Errorf("bad -tech %q (want adsl or ftth)", tech)
	}
	if srvPort != "" {
		var lo, hi uint16
		if n, _ := fmt.Sscanf(srvPort, "%d-%d", &lo, &hi); n == 2 {
		} else if n, _ := fmt.Sscanf(srvPort, "%d", &lo); n == 1 {
			hi = lo
		} else {
			return nil, fmt.Errorf("bad -srvport %q (want port or lo-hi)", srvPort)
		}
		if hi < lo {
			return nil, fmt.Errorf("bad -srvport %q: empty range", srvPort)
		}
		p.HasSrvPort, p.SrvPortLo, p.SrvPortHi = true, lo, hi
	}
	if !p.HasTech && !p.HasSrvPort {
		return nil, nil
	}
	return &p, nil
}

// scanSharded fans one day's records out over k shard workers (hash of
// the anonymized client address, like the stage-one shard aggregators)
// and merges the per-shard summaries. Tallies are order-independent,
// so the result matches the serial scan exactly for any k.
func scanSharded(src core.Storage, cls *classify.Classifier, day time.Time, k int,
	pred *flowrec.Pred, match func(classify.Service, *flowrec.Record) bool,
	scanned, matched *uint64, bySvc map[classify.Service]*sum) error {
	type state struct {
		scanned, matched uint64
		bySvc            map[classify.Service]*sum
	}
	states := make([]*state, k)
	chans := make([]chan []flowrec.Record, k)
	var wg sync.WaitGroup
	for i := range states {
		states[i] = &state{bySvc: make(map[classify.Service]*sum)}
		chans[i] = make(chan []flowrec.Record, 4)
		wg.Add(1)
		go func(st *state, in <-chan []flowrec.Record) {
			defer wg.Done()
			for batch := range in {
				for j := range batch {
					r := &batch[j]
					st.scanned++
					svc := analytics.ServiceOf(cls, r)
					if !match(svc, r) {
						continue
					}
					st.matched++
					s := st.bySvc[svc]
					if s == nil {
						s = &sum{}
						st.bySvc[svc] = s
					}
					s.flows++
					s.down += r.BytesDown
					s.up += r.BytesUp
				}
			}
		}(states[i], chans[i])
	}
	const batchLen = 512
	bufs := make([][]flowrec.Record, k)
	flush := func(i int) {
		if len(bufs[i]) == 0 {
			return
		}
		chans[i] <- bufs[i]
		bufs[i] = nil
	}
	// The sharded path is summary-only, so it scans the summary
	// projection; a v2 store also reuses k as its block-decode width.
	err := src.ReadDayCols(day, flowrec.ColScan{Cols: summaryCols, Pred: pred, Workers: k}, func(r *flowrec.Record) error {
		i := r.Shard(k)
		if bufs[i] == nil {
			bufs[i] = make([]flowrec.Record, 0, batchLen)
		}
		bufs[i] = append(bufs[i], *r) // the decoder reuses its record buffer
		if len(bufs[i]) == batchLen {
			flush(i)
		}
		return nil
	})
	// Always drain and join, even on a read error.
	for i := range chans {
		flush(i)
		close(chans[i])
	}
	wg.Wait()
	if err != nil {
		return err
	}
	for _, st := range states {
		*scanned += st.scanned
		*matched += st.matched
		for svc, s := range st.bySvc {
			d := bySvc[svc]
			if d == nil {
				d = &sum{}
				bySvc[svc] = d
			}
			d.flows += s.flows
			d.down += s.down
			d.up += s.up
		}
	}
	return nil
}

// rollupQuery prints the rollup-tier answer for [start, end]: one row
// per calendar window (grain, start, source days, totals), and in
// sketch mode the window's estimated distinct clients and top services
// by downloaded bytes. Edge days outside any whole calendar window are
// counted on stderr rather than silently folded away.
func rollupQuery(p *core.Pipeline, start, end time.Time, sketch bool) error {
	days := core.RangeDays(start, end, 1)
	rolls, err := p.Rollups(context.Background(), days)
	if err != nil {
		return err
	}
	covered := make(map[string]bool)
	var cells [][]string
	for _, r := range rolls {
		for _, d := range r.Requested {
			covered[d.Format("2006-01-02")] = true
		}
		row := []string{
			string(r.Grain),
			r.Start.Format("2006-01-02"),
			fmt.Sprint(len(r.SourceDays)),
			fmt.Sprint(r.Agg.Flows),
			report.MB(float64(r.Agg.TotalDown)),
			report.MB(float64(r.Agg.TotalUp)),
		}
		if sketch {
			clients, topSvc := "-", "-"
			if s := r.Agg.Sketches; s != nil {
				clients = fmt.Sprintf("%.0f ±%.1f%%", s.Clients.Estimate(), 100*s.Clients.RelErr())
				var names []string
				for _, c := range s.Services.Top(3) {
					if c.Key == "" {
						c.Key = "(unclassified)"
					}
					names = append(names, c.Key)
				}
				topSvc = strings.Join(names, " ")
			}
			row = append(row, clients, topSvc)
		}
		cells = append(cells, row)
	}
	headers := []string{"window", "start", "days", "flows", "down MB", "up MB"}
	if sketch {
		headers = append(headers, "est clients", "top services")
	}
	if err := report.Table(os.Stdout, headers, cells); err != nil {
		return err
	}
	var leftover int
	for _, d := range days {
		if !covered[d.Format("2006-01-02")] {
			leftover++
		}
	}
	if leftover > 0 {
		fmt.Fprintf(os.Stderr, "%d edge day(s) outside whole calendar windows stayed on the day tier and are not in the table\n", leftover)
	}
	return nil
}

func fatal(err error) {
	fmt.Fprintf(os.Stderr, "edgequery: %v\n", err)
	os.Exit(1)
}
