// Command edgequery runs ad-hoc queries over an on-disk flow store —
// the "specific queries on historical collections" of section 2.2.
// It filters by day range, service, protocol and subscriber, and
// prints matching records as CSV or a per-service summary.
//
// Usage:
//
//	edgequery -store /data/lake -from 2016-11-01 -to 2016-11-07 -summary
//	edgequery -store /data/lake -from 2016-11-05 -service Netflix -csv -
//	edgequery -store /data/lake -from 2016-11-05 -proto FB-ZERO -summary
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"sort"
	"time"

	"repro/internal/analytics"
	"repro/internal/classify"
	"repro/internal/core"
	"repro/internal/faultinject"
	"repro/internal/flowrec"
	"repro/internal/report"
	"repro/internal/retry"
)

func main() {
	var (
		storeDir = flag.String("store", "", "flow store directory (required)")
		from     = flag.String("from", "", "first day YYYY-MM-DD (required)")
		to       = flag.String("to", "", "last day (default: same as -from)")
		service  = flag.String("service", "", "only flows of this service (e.g. Netflix)")
		proto    = flag.String("proto", "", "only flows with this protocol label (e.g. QUIC, FB-ZERO)")
		subID    = flag.Int64("sub", -1, "only this subscription id")
		rules    = flag.String("rules", "", "classification rules file (default: built-in list)")
		csvOut   = flag.String("csv", "", "write matching records as CSV to this file ('-' = stdout)")
		summary  = flag.Bool("summary", false, "print per-service volume summary")
		faults   = flag.String("faults", "", `fault-injection spec, e.g. "readday:p=0.2,transient" (see README)`)
	)
	flag.Parse()
	if *storeDir == "" || *from == "" {
		fmt.Fprintln(os.Stderr, "edgequery: -store and -from are required")
		os.Exit(2)
	}
	start, err := time.Parse("2006-01-02", *from)
	if err != nil {
		fatal(err)
	}
	end := start
	if *to != "" {
		if end, err = time.Parse("2006-01-02", *to); err != nil {
			fatal(err)
		}
	}

	cls := classify.Default()
	if *rules != "" {
		f, err := os.Open(*rules)
		if err != nil {
			fatal(err)
		}
		parsed, err := classify.ParseRules(f)
		f.Close()
		if err != nil {
			fatal(err)
		}
		if cls, err = classify.New(parsed); err != nil {
			fatal(err)
		}
	}

	store, err := flowrec.OpenStore(*storeDir)
	if err != nil {
		fatal(err)
	}
	var src core.Storage = core.NewDiskStorage(store, "")
	if *faults != "" {
		plan, perr := faultinject.Parse(*faults)
		if perr != nil {
			fatal(perr)
		}
		src = faultinject.Wrap(src, plan)
	}
	pol := retry.Policy{Attempts: 3, Base: 25 * time.Millisecond, Max: 500 * time.Millisecond, Seed: 1}

	var cw *flowrec.CSVWriter
	if *csvOut != "" {
		out := os.Stdout
		if *csvOut != "-" {
			f, err := os.Create(*csvOut)
			if err != nil {
				fatal(err)
			}
			defer f.Close()
			out = f
		}
		if cw, err = flowrec.NewCSVWriter(out); err != nil {
			fatal(err)
		}
	}

	type sum struct {
		flows    uint64
		down, up uint64
	}
	bySvc := make(map[classify.Service]*sum)
	var matched, scanned uint64

	for _, day := range core.RangeDays(start.UTC(), end.UTC(), 1) {
		// Each attempt accumulates into day-local state, merged only on
		// success, so a transient fault retried mid-file cannot double
		// count records or emit duplicate CSV rows.
		var dayScanned, dayMatched uint64
		dayBySvc := make(map[classify.Service]*sum)
		var dayRecs []*flowrec.Record
		err := pol.Do(context.Background(), uint64(day.Unix()), func() error {
			dayScanned, dayMatched = 0, 0
			dayBySvc = make(map[classify.Service]*sum)
			dayRecs = dayRecs[:0]
			return src.ReadDay(day, func(r *flowrec.Record) error {
				dayScanned++
				svc := analytics.ServiceOf(cls, r)
				if *service != "" && svc != classify.Service(*service) {
					return nil
				}
				if *proto != "" && r.Web.String() != *proto {
					return nil
				}
				if *subID >= 0 && r.SubID != uint32(*subID) {
					return nil
				}
				dayMatched++
				if cw != nil {
					c := *r // the decoder reuses its record buffer
					dayRecs = append(dayRecs, &c)
				}
				s := dayBySvc[svc]
				if s == nil {
					s = &sum{}
					dayBySvc[svc] = s
				}
				s.flows++
				s.down += r.BytesDown
				s.up += r.BytesUp
				return nil
			})
		})
		if err != nil {
			// Missing days are probe outages: mention and move on.
			fmt.Fprintf(os.Stderr, "edgequery: %s: %v\n", day.Format("2006-01-02"), err)
			continue
		}
		scanned += dayScanned
		matched += dayMatched
		for svc, ds := range dayBySvc {
			s := bySvc[svc]
			if s == nil {
				s = &sum{}
				bySvc[svc] = s
			}
			s.flows += ds.flows
			s.down += ds.down
			s.up += ds.up
		}
		for _, r := range dayRecs {
			if err := cw.Write(r); err != nil {
				fatal(err)
			}
		}
	}
	if cw != nil {
		if err := cw.Flush(); err != nil {
			fatal(err)
		}
	}

	fmt.Fprintf(os.Stderr, "scanned %d records, matched %d\n", scanned, matched)
	if *summary {
		type row struct {
			svc classify.Service
			s   *sum
		}
		var rows []row
		for svc, s := range bySvc {
			rows = append(rows, row{svc, s})
		}
		sort.Slice(rows, func(i, j int) bool { return rows[i].s.down > rows[j].s.down })
		var cells [][]string
		for _, r := range rows {
			name := string(r.svc)
			if name == "" {
				name = "(unclassified)"
			}
			cells = append(cells, []string{
				name,
				fmt.Sprint(r.s.flows),
				report.MB(float64(r.s.down)),
				report.MB(float64(r.s.up)),
			})
		}
		if err := report.Table(os.Stdout, []string{"service", "flows", "down MB", "up MB"}, cells); err != nil {
			fatal(err)
		}
	}
}

func fatal(err error) {
	fmt.Fprintf(os.Stderr, "edgequery: %v\n", err)
	os.Exit(1)
}
