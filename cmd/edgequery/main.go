// Command edgequery runs ad-hoc queries over an on-disk flow store —
// the "specific queries on historical collections" of section 2.2.
// It filters by day range, service, protocol and subscriber, and
// prints matching records as CSV or a per-service summary.
//
// Usage:
//
//	edgequery -store /data/lake -from 2016-11-01 -to 2016-11-07 -summary
//	edgequery -store /data/lake -from 2016-11-05 -service Netflix -csv -
//	edgequery -store /data/lake -from 2016-11-05 -proto FB-ZERO -summary
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"sort"
	"sync"
	"time"

	"repro/internal/analytics"
	"repro/internal/classify"
	"repro/internal/core"
	"repro/internal/faultinject"
	"repro/internal/flowrec"
	"repro/internal/metrics"
	"repro/internal/report"
	"repro/internal/retry"
)

func main() {
	var (
		storeDir = flag.String("store", "", "flow store directory (required)")
		from     = flag.String("from", "", "first day YYYY-MM-DD (required)")
		to       = flag.String("to", "", "last day (default: same as -from)")
		service  = flag.String("service", "", "only flows of this service (e.g. Netflix)")
		proto    = flag.String("proto", "", "only flows with this protocol label (e.g. QUIC, FB-ZERO)")
		subID    = flag.Int64("sub", -1, "only this subscription id")
		rules    = flag.String("rules", "", "classification rules file (default: built-in list)")
		csvOut   = flag.String("csv", "", "write matching records as CSV to this file ('-' = stdout)")
		summary  = flag.Bool("summary", false, "print per-service volume summary")
		shards   = flag.Int("shards", 1, "parallel scan shards per day; CSV output forces 1 (record order must be preserved)")
		stats    = flag.Bool("stats", false, "print the pipeline metrics table after the run")
		faults   = flag.String("faults", "", `fault-injection spec, e.g. "readday:p=0.2,transient" (see README)`)
	)
	flag.Parse()
	if *stats {
		defer func() {
			fmt.Println("\n== pipeline metrics ==")
			metrics.WriteText(os.Stdout)
		}()
	}
	if *storeDir == "" || *from == "" {
		fmt.Fprintln(os.Stderr, "edgequery: -store and -from are required")
		os.Exit(2)
	}
	start, err := time.Parse("2006-01-02", *from)
	if err != nil {
		fatal(err)
	}
	end := start
	if *to != "" {
		if end, err = time.Parse("2006-01-02", *to); err != nil {
			fatal(err)
		}
	}

	cls := classify.Default()
	if *rules != "" {
		f, err := os.Open(*rules)
		if err != nil {
			fatal(err)
		}
		parsed, err := classify.ParseRules(f)
		f.Close()
		if err != nil {
			fatal(err)
		}
		if cls, err = classify.New(parsed); err != nil {
			fatal(err)
		}
	}

	store, err := flowrec.OpenStore(*storeDir)
	if err != nil {
		fatal(err)
	}
	var src core.Storage = core.NewDiskStorage(store, "")
	if *faults != "" {
		plan, perr := faultinject.Parse(*faults)
		if perr != nil {
			fatal(perr)
		}
		src = faultinject.Wrap(src, plan)
	}
	pol := retry.Policy{Attempts: 3, Base: 25 * time.Millisecond, Max: 500 * time.Millisecond, Seed: 1}

	var cw *flowrec.CSVWriter
	if *csvOut != "" {
		out := os.Stdout
		if *csvOut != "-" {
			f, err := os.Create(*csvOut)
			if err != nil {
				fatal(err)
			}
			defer f.Close()
			out = f
		}
		if cw, err = flowrec.NewCSVWriter(out); err != nil {
			fatal(err)
		}
	}

	match := func(svc classify.Service, r *flowrec.Record) bool {
		if *service != "" && svc != classify.Service(*service) {
			return false
		}
		if *proto != "" && r.Web.String() != *proto {
			return false
		}
		if *subID >= 0 && r.SubID != uint32(*subID) {
			return false
		}
		return true
	}
	// CSV rows must come out in store order, so the parallel scan only
	// serves the summary path.
	scanShards := *shards
	if cw != nil || scanShards < 1 {
		scanShards = 1
	}

	bySvc := make(map[classify.Service]*sum)
	var matched, scanned uint64

	for _, day := range core.RangeDays(start.UTC(), end.UTC(), 1) {
		// Each attempt accumulates into day-local state, merged only on
		// success, so a transient fault retried mid-file cannot double
		// count records or emit duplicate CSV rows.
		var dayScanned, dayMatched uint64
		dayBySvc := make(map[classify.Service]*sum)
		var dayRecs []*flowrec.Record
		err := pol.Do(context.Background(), uint64(day.Unix()), func() error {
			dayScanned, dayMatched = 0, 0
			dayBySvc = make(map[classify.Service]*sum)
			dayRecs = dayRecs[:0]
			if scanShards > 1 {
				return scanSharded(src, cls, day, scanShards, match, &dayScanned, &dayMatched, dayBySvc)
			}
			return src.ReadDay(day, func(r *flowrec.Record) error {
				dayScanned++
				svc := analytics.ServiceOf(cls, r)
				if !match(svc, r) {
					return nil
				}
				dayMatched++
				if cw != nil {
					c := *r // the decoder reuses its record buffer
					dayRecs = append(dayRecs, &c)
				}
				s := dayBySvc[svc]
				if s == nil {
					s = &sum{}
					dayBySvc[svc] = s
				}
				s.flows++
				s.down += r.BytesDown
				s.up += r.BytesUp
				return nil
			})
		})
		if err != nil {
			// Missing days are probe outages: mention and move on.
			fmt.Fprintf(os.Stderr, "edgequery: %s: %v\n", day.Format("2006-01-02"), err)
			continue
		}
		scanned += dayScanned
		matched += dayMatched
		for svc, ds := range dayBySvc {
			s := bySvc[svc]
			if s == nil {
				s = &sum{}
				bySvc[svc] = s
			}
			s.flows += ds.flows
			s.down += ds.down
			s.up += ds.up
		}
		for _, r := range dayRecs {
			if err := cw.Write(r); err != nil {
				fatal(err)
			}
		}
	}
	if cw != nil {
		if err := cw.Flush(); err != nil {
			fatal(err)
		}
	}

	fmt.Fprintf(os.Stderr, "scanned %d records, matched %d\n", scanned, matched)
	if *summary {
		type row struct {
			svc classify.Service
			s   *sum
		}
		var rows []row
		for svc, s := range bySvc {
			rows = append(rows, row{svc, s})
		}
		sort.Slice(rows, func(i, j int) bool { return rows[i].s.down > rows[j].s.down })
		var cells [][]string
		for _, r := range rows {
			name := string(r.svc)
			if name == "" {
				name = "(unclassified)"
			}
			cells = append(cells, []string{
				name,
				fmt.Sprint(r.s.flows),
				report.MB(float64(r.s.down)),
				report.MB(float64(r.s.up)),
			})
		}
		if err := report.Table(os.Stdout, []string{"service", "flows", "down MB", "up MB"}, cells); err != nil {
			fatal(err)
		}
	}
}

// sum is a per-service volume tally.
type sum struct {
	flows    uint64
	down, up uint64
}

// scanSharded fans one day's records out over k shard workers (hash of
// the anonymized client address, like the stage-one shard aggregators)
// and merges the per-shard summaries. Tallies are order-independent,
// so the result matches the serial scan exactly for any k.
func scanSharded(src core.Storage, cls *classify.Classifier, day time.Time, k int,
	match func(classify.Service, *flowrec.Record) bool,
	scanned, matched *uint64, bySvc map[classify.Service]*sum) error {
	type state struct {
		scanned, matched uint64
		bySvc            map[classify.Service]*sum
	}
	states := make([]*state, k)
	chans := make([]chan []flowrec.Record, k)
	var wg sync.WaitGroup
	for i := range states {
		states[i] = &state{bySvc: make(map[classify.Service]*sum)}
		chans[i] = make(chan []flowrec.Record, 4)
		wg.Add(1)
		go func(st *state, in <-chan []flowrec.Record) {
			defer wg.Done()
			for batch := range in {
				for j := range batch {
					r := &batch[j]
					st.scanned++
					svc := analytics.ServiceOf(cls, r)
					if !match(svc, r) {
						continue
					}
					st.matched++
					s := st.bySvc[svc]
					if s == nil {
						s = &sum{}
						st.bySvc[svc] = s
					}
					s.flows++
					s.down += r.BytesDown
					s.up += r.BytesUp
				}
			}
		}(states[i], chans[i])
	}
	const batchLen = 512
	bufs := make([][]flowrec.Record, k)
	flush := func(i int) {
		if len(bufs[i]) == 0 {
			return
		}
		chans[i] <- bufs[i]
		bufs[i] = nil
	}
	err := src.ReadDay(day, func(r *flowrec.Record) error {
		i := r.Shard(k)
		if bufs[i] == nil {
			bufs[i] = make([]flowrec.Record, 0, batchLen)
		}
		bufs[i] = append(bufs[i], *r) // the decoder reuses its record buffer
		if len(bufs[i]) == batchLen {
			flush(i)
		}
		return nil
	})
	// Always drain and join, even on a read error.
	for i := range chans {
		flush(i)
		close(chans[i])
	}
	wg.Wait()
	if err != nil {
		return err
	}
	for _, st := range states {
		*scanned += st.scanned
		*matched += st.matched
		for svc, s := range st.bySvc {
			d := bySvc[svc]
			if d == nil {
				d = &sum{}
				bySvc[svc] = d
			}
			d.flows += s.flows
			d.down += s.down
			d.up += s.up
		}
	}
	return nil
}

func fatal(err error) {
	fmt.Fprintf(os.Stderr, "edgequery: %v\n", err)
	os.Exit(1)
}
