// Command edgeload is the deterministic load generator for edgeserve:
// it drives a mixed figure/scan query workload at one or more
// concurrency levels and reports the latency SLO curve (p50/p90/p99,
// throughput, shed and error counts) as a table and machine-readable
// JSON. The request *sequence* is deterministic — request i always
// issues the same query, whatever the interleaving — so two runs
// against the same lake exercise identical work.
//
// Usage:
//
//	edgeload -addr http://127.0.0.1:8080 -c 1,2,4,8,16 -n 200
//	edgeload -addr http://127.0.0.1:8080 -smoke        # CI liveness check
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

func main() {
	var (
		addr    = flag.String("addr", "", "edgeserve base URL, e.g. http://127.0.0.1:8080 (required)")
		levels  = flag.String("c", "1,2,4,8", "comma-separated concurrency levels to sweep")
		n       = flag.Int("n", 100, "requests per concurrency level")
		seed    = flag.Uint64("seed", 1, "rotates the deterministic query sequence's starting offset")
		mix     = flag.String("mix", "figures", "workload mix: figures, scan, or mixed")
		scanArg = flag.String("scan-query", "from=2014-04-01&to=2014-04-07", "query string for scan requests in the mix")
		timeout = flag.Duration("timeout", 60*time.Second, "per-request client timeout")
		jsonOut = flag.String("json", "-", "write the JSON result array here ('-' = stdout, '' = none)")
		smoke   = flag.Bool("smoke", false, "probe each endpoint once and exit 0/1 (the make serve-smoke check)")
	)
	flag.Parse()
	if *addr == "" {
		fmt.Fprintln(os.Stderr, "edgeload: -addr is required")
		os.Exit(2)
	}
	base := strings.TrimSuffix(*addr, "/")
	client := &http.Client{Timeout: *timeout}

	if *smoke {
		os.Exit(runSmoke(client, base))
	}

	queries := queryMix(*mix, *scanArg)
	var results []LevelResult
	for _, lvl := range parseLevels(*levels) {
		res := runLevel(client, base, queries, lvl, *n, *seed)
		results = append(results, res)
		fmt.Fprintf(os.Stderr, "c=%-3d n=%-5d ok=%-5d shed=%-4d err=%-3d p50=%.1fms p90=%.1fms p99=%.1fms rps=%.1f\n",
			res.Concurrency, res.Requests, res.OK, res.Shed, res.Errors,
			res.P50Ms, res.P90Ms, res.P99Ms, res.RPS)
	}
	if *jsonOut != "" {
		out := os.Stdout
		if *jsonOut != "-" {
			f, err := os.Create(*jsonOut)
			if err != nil {
				fatal(err)
			}
			defer f.Close()
			out = f
		}
		enc := json.NewEncoder(out)
		enc.SetIndent("", "  ")
		if err := enc.Encode(results); err != nil {
			fatal(err)
		}
	}
}

// LevelResult is one concurrency level's measurement.
type LevelResult struct {
	Concurrency int     `json:"concurrency"`
	Requests    int     `json:"requests"`
	OK          int     `json:"ok"`
	Shed        int     `json:"shed"`   // 429s: admission control working as intended
	Errors      int     `json:"errors"` // anything else non-200
	P50Ms       float64 `json:"p50_ms"` // over OK requests only
	P90Ms       float64 `json:"p90_ms"`
	P99Ms       float64 `json:"p99_ms"`
	MeanMs      float64 `json:"mean_ms"`
	RPS         float64 `json:"rps"`
	WallMs      float64 `json:"wall_ms"`
}

// queryMix builds the deterministic request rotation.
func queryMix(mix, scanQuery string) []string {
	figures := []string{
		"/v1/figures/active",
		"/v1/figures/fig3",
		"/v1/figures/fig8",
		"/v1/figures/fig2?quantiles=0.5,0.9,0.99",
		"/v1/figures/fig10",
		"/v1/experiments",
	}
	scans := []string{"/v1/scan?" + scanQuery}
	switch mix {
	case "figures":
		return figures
	case "scan":
		return scans
	case "mixed":
		return append(append([]string{}, figures...), scans...)
	}
	fmt.Fprintf(os.Stderr, "edgeload: unknown -mix %q (want figures, scan or mixed)\n", mix)
	os.Exit(2)
	return nil
}

// runLevel fires n requests from lvl workers pulling a shared index:
// request i always carries query (seed+i) mod len(queries), whatever
// worker picks it up.
func runLevel(client *http.Client, base string, queries []string, lvl, n int, seed uint64) LevelResult {
	res := LevelResult{Concurrency: lvl, Requests: n}
	latencies := make([]float64, 0, n)
	var mu sync.Mutex
	var next atomic.Int64
	var wg sync.WaitGroup
	t0 := time.Now()
	for w := 0; w < lvl; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				q := queries[(seed+uint64(i))%uint64(len(queries))]
				rt0 := time.Now()
				status, err := get(client, base+q)
				ms := float64(time.Since(rt0).Microseconds()) / 1000
				mu.Lock()
				switch {
				case err != nil:
					res.Errors++
				case status == http.StatusOK:
					res.OK++
					latencies = append(latencies, ms)
				case status == http.StatusTooManyRequests:
					res.Shed++
				default:
					res.Errors++
				}
				mu.Unlock()
			}
		}()
	}
	wg.Wait()
	wall := time.Since(t0)
	res.WallMs = float64(wall.Microseconds()) / 1000
	if res.WallMs > 0 {
		res.RPS = float64(res.OK) / wall.Seconds()
	}
	sort.Float64s(latencies)
	res.P50Ms = percentile(latencies, 0.50)
	res.P90Ms = percentile(latencies, 0.90)
	res.P99Ms = percentile(latencies, 0.99)
	var sum float64
	for _, v := range latencies {
		sum += v
	}
	if len(latencies) > 0 {
		res.MeanMs = sum / float64(len(latencies))
	}
	return res
}

// get issues one request and fully drains the body (keep-alive reuse
// keeps the load shape about connections honest).
func get(client *http.Client, url string) (int, error) {
	resp, err := client.Get(url)
	if err != nil {
		return 0, err
	}
	defer resp.Body.Close()
	_, _ = io.Copy(io.Discard, resp.Body)
	return resp.StatusCode, nil
}

// percentile reads an exact order statistic from sorted values
// (nearest-rank), 0 when empty.
func percentile(sorted []float64, q float64) float64 {
	if len(sorted) == 0 {
		return 0
	}
	i := int(q*float64(len(sorted))+0.5) - 1
	if i < 0 {
		i = 0
	}
	if i >= len(sorted) {
		i = len(sorted) - 1
	}
	return sorted[i]
}

// runSmoke probes every endpoint class once: the 200s must be 200,
// and the error mapping must answer 400/404 (not 500, not a hang).
func runSmoke(client *http.Client, base string) int {
	checks := []struct {
		path string
		want int
	}{
		{"/v1/healthz", http.StatusOK},
		{"/v1/experiments", http.StatusOK},
		{"/v1/figures/active", http.StatusOK},
		{"/v1/figures/fig3", http.StatusOK},
		{"/v1/figures/fig3?format=csv", http.StatusOK},
		{"/v1/metrics", http.StatusOK},
		{"/v1/metrics?format=text", http.StatusOK},
		{"/v1/figures/fig3?bogus=1", http.StatusBadRequest},
		{"/v1/figures/nosuchfigure", http.StatusNotFound},
	}
	failed := 0
	for _, c := range checks {
		status, err := get(client, base+c.path)
		switch {
		case err != nil:
			fmt.Fprintf(os.Stderr, "edgeload: smoke %s: %v\n", c.path, err)
			failed++
		case status != c.want:
			fmt.Fprintf(os.Stderr, "edgeload: smoke %s: got %d, want %d\n", c.path, status, c.want)
			failed++
		}
	}
	if failed > 0 {
		return 1
	}
	fmt.Fprintf(os.Stderr, "edgeload: smoke ok (%d checks)\n", len(checks))
	return 0
}

func parseLevels(s string) []int {
	var out []int
	for _, part := range strings.Split(s, ",") {
		v, err := strconv.Atoi(strings.TrimSpace(part))
		if err != nil || v < 1 {
			fmt.Fprintf(os.Stderr, "edgeload: bad -c element %q\n", part)
			os.Exit(2)
		}
		out = append(out, v)
	}
	return out
}

func fatal(err error) {
	fmt.Fprintf(os.Stderr, "edgeload: %v\n", err)
	os.Exit(1)
}
