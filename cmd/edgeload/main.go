// Command edgeload is the deterministic load generator for edgeserve:
// it drives a mixed figure/scan query workload at one or more
// concurrency levels and reports the latency SLO curve (p50/p90/p99,
// throughput, shed and error counts) as a table and machine-readable
// JSON. The request *sequence* is deterministic — request i always
// issues the same query, whatever the interleaving — so two runs
// against the same lake exercise identical work.
//
// With -etag the generator behaves like a dashboard that caches: it
// remembers the ETag of every URL it has fetched and sends
// If-None-Match on repeats, so revalidated queries come back 304 with
// no body — the not_modified column shows how much of the workload
// the server never had to re-send.
//
// Usage:
//
//	edgeload -addr http://127.0.0.1:8080 -c 1,2,4,8,16 -n 200
//	edgeload -addr http://127.0.0.1:8080 -c 1,4,16 -n 200 -etag
//	edgeload -addr http://127.0.0.1:8080 -smoke        # CI liveness check
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

func main() {
	var (
		addr    = flag.String("addr", "", "edgeserve base URL, e.g. http://127.0.0.1:8080 (required)")
		levels  = flag.String("c", "1,2,4,8", "comma-separated concurrency levels to sweep")
		n       = flag.Int("n", 100, "requests per concurrency level")
		seed    = flag.Uint64("seed", 1, "rotates the deterministic query sequence's starting offset")
		mix     = flag.String("mix", "figures", "workload mix: figures, scan, or mixed")
		scanArg = flag.String("scan-query", "from=2014-04-01&to=2014-04-07", "query string for scan requests in the mix")
		timeout = flag.Duration("timeout", 60*time.Second, "per-request client timeout")
		jsonOut = flag.String("json", "-", "write the JSON result array here ('-' = stdout, '' = none)")
		etag    = flag.Bool("etag", false, "remember ETags and send If-None-Match on repeats (dashboard mode)")
		token   = flag.String("admin-token", "", "admin bearer token; -smoke then also probes the admin endpoints")
		smoke   = flag.Bool("smoke", false, "probe each endpoint class once and exit 0/1 (the make serve-smoke check)")
	)
	flag.Parse()
	if *addr == "" {
		fmt.Fprintln(os.Stderr, "edgeload: -addr is required")
		os.Exit(2)
	}
	base := strings.TrimSuffix(*addr, "/")
	client := &http.Client{Timeout: *timeout}

	if *smoke {
		os.Exit(runSmoke(client, base, *token))
	}

	queries := queryMix(*mix, *scanArg)
	var results []LevelResult
	for _, lvl := range parseLevels(*levels) {
		res := runLevel(client, base, queries, lvl, *n, *seed, *etag)
		results = append(results, res)
		fmt.Fprintf(os.Stderr, "c=%-3d n=%-5d ok=%-5d 304=%-4d shed=%-4d err=%-3d p50=%.1fms p90=%.1fms p99=%.1fms rps=%.1f\n",
			res.Concurrency, res.Requests, res.OK, res.NotModified, res.Shed, res.Errors,
			res.P50Ms, res.P90Ms, res.P99Ms, res.RPS)
	}
	if *jsonOut != "" {
		out := os.Stdout
		if *jsonOut != "-" {
			f, err := os.Create(*jsonOut)
			if err != nil {
				fatal(err)
			}
			defer f.Close()
			out = f
		}
		enc := json.NewEncoder(out)
		enc.SetIndent("", "  ")
		if err := enc.Encode(results); err != nil {
			fatal(err)
		}
	}
}

// LevelResult is one concurrency level's measurement. Latency
// percentiles cover answered requests (200s and 304s — a revalidation
// is a served answer); RPS counts both.
type LevelResult struct {
	Concurrency int     `json:"concurrency"`
	Requests    int     `json:"requests"`
	OK          int     `json:"ok"`
	NotModified int     `json:"not_modified,omitempty"` // 304s in -etag mode
	Shed        int     `json:"shed"`                   // 429s: admission control working as intended
	Errors      int     `json:"errors"`                 // anything else non-200/304
	P50Ms       float64 `json:"p50_ms"`
	P90Ms       float64 `json:"p90_ms"`
	P99Ms       float64 `json:"p99_ms"`
	MeanMs      float64 `json:"mean_ms"`
	RPS         float64 `json:"rps"`
	WallMs      float64 `json:"wall_ms"`
}

// queryMix builds the deterministic request rotation.
func queryMix(mix, scanQuery string) []string {
	figures := []string{
		"/v1/figures/active",
		"/v1/figures/fig3",
		"/v1/figures/fig8",
		"/v1/figures/fig2?quantiles=0.5,0.9,0.99",
		"/v1/figures/fig10",
		"/v1/experiments",
	}
	scans := []string{"/v1/scan?" + scanQuery}
	switch mix {
	case "figures":
		return figures
	case "scan":
		return scans
	case "mixed":
		return append(append([]string{}, figures...), scans...)
	}
	fmt.Fprintf(os.Stderr, "edgeload: unknown -mix %q (want figures, scan or mixed)\n", mix)
	os.Exit(2)
	return nil
}

// runLevel fires n requests from lvl workers pulling a shared index:
// request i always carries query (seed+i) mod len(queries), whatever
// worker picks it up. In etag mode workers share one ETag memory per
// URL, like browser tabs sharing an HTTP cache.
func runLevel(client *http.Client, base string, queries []string, lvl, n int, seed uint64, etag bool) LevelResult {
	res := LevelResult{Concurrency: lvl, Requests: n}
	latencies := make([]float64, 0, n)
	var mu sync.Mutex
	etags := make(map[string]string)
	var next atomic.Int64
	var wg sync.WaitGroup
	t0 := time.Now()
	for w := 0; w < lvl; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				q := queries[(seed+uint64(i))%uint64(len(queries))]
				inm := ""
				if etag {
					mu.Lock()
					inm = etags[q]
					mu.Unlock()
				}
				rt0 := time.Now()
				status, gotTag, err := get(client, base+q, inm)
				ms := float64(time.Since(rt0).Microseconds()) / 1000
				mu.Lock()
				switch {
				case err != nil:
					res.Errors++
				case status == http.StatusOK:
					res.OK++
					latencies = append(latencies, ms)
					if etag && gotTag != "" {
						etags[q] = gotTag
					}
				case status == http.StatusNotModified:
					res.NotModified++
					latencies = append(latencies, ms)
				case status == http.StatusTooManyRequests:
					res.Shed++
				default:
					res.Errors++
				}
				mu.Unlock()
			}
		}()
	}
	wg.Wait()
	wall := time.Since(t0)
	res.WallMs = float64(wall.Microseconds()) / 1000
	if res.WallMs > 0 {
		res.RPS = float64(res.OK+res.NotModified) / wall.Seconds()
	}
	sort.Float64s(latencies)
	res.P50Ms = percentile(latencies, 0.50)
	res.P90Ms = percentile(latencies, 0.90)
	res.P99Ms = percentile(latencies, 0.99)
	var sum float64
	for _, v := range latencies {
		sum += v
	}
	if len(latencies) > 0 {
		res.MeanMs = sum / float64(len(latencies))
	}
	return res
}

// get issues one GET (with optional If-None-Match) and fully drains
// the body (keep-alive reuse keeps the load shape about connections
// honest). Returns the status and the response ETag.
func get(client *http.Client, url, inm string) (int, string, error) {
	req, err := http.NewRequest(http.MethodGet, url, nil)
	if err != nil {
		return 0, "", err
	}
	if inm != "" {
		req.Header.Set("If-None-Match", inm)
	}
	resp, err := client.Do(req)
	if err != nil {
		return 0, "", err
	}
	defer resp.Body.Close()
	_, _ = io.Copy(io.Discard, resp.Body)
	return resp.StatusCode, resp.Header.Get("ETag"), nil
}

// percentile reads an exact order statistic from sorted values
// (nearest-rank), 0 when empty.
func percentile(sorted []float64, q float64) float64 {
	if len(sorted) == 0 {
		return 0
	}
	i := int(q*float64(len(sorted))+0.5) - 1
	if i < 0 {
		i = 0
	}
	if i >= len(sorted) {
		i = len(sorted) - 1
	}
	return sorted[i]
}

// smokeDo issues one method+path probe with optional bearer token and
// If-None-Match, draining the body.
func smokeDo(client *http.Client, method, url, token, inm string) (int, string, error) {
	req, err := http.NewRequest(method, url, nil)
	if err != nil {
		return 0, "", err
	}
	if token != "" {
		req.Header.Set("Authorization", "Bearer "+token)
	}
	if inm != "" {
		req.Header.Set("If-None-Match", inm)
	}
	resp, err := client.Do(req)
	if err != nil {
		return 0, "", err
	}
	defer resp.Body.Close()
	_, _ = io.Copy(io.Discard, resp.Body)
	return resp.StatusCode, resp.Header.Get("ETag"), nil
}

// runSmoke probes every endpoint class once: the 200s must be 200,
// and the error mapping must answer 400/404/401 (not 500, not a
// hang). It also proves the conditional-request path end to end: a
// figure fetched twice must come back 304 the second time. With
// -admin-token it exercises the admin gate in both directions.
func runSmoke(client *http.Client, base, token string) int {
	type smokeCheck struct {
		method string
		path   string
		token  string
		want   int
	}
	checks := []smokeCheck{
		{http.MethodGet, "/v1/healthz", "", http.StatusOK},
		{http.MethodGet, "/v1/experiments", "", http.StatusOK},
		{http.MethodGet, "/v1/figures/active", "", http.StatusOK},
		{http.MethodGet, "/v1/figures/fig3", "", http.StatusOK},
		{http.MethodGet, "/v1/figures/fig3?format=csv", "", http.StatusOK},
		{http.MethodGet, "/v1/metrics", "", http.StatusOK},
		{http.MethodGet, "/v1/metrics?format=text", "", http.StatusOK},
		{http.MethodGet, "/v1/metrics?format=xml", "", http.StatusBadRequest},
		{http.MethodGet, "/v1/figures/fig3?bogus=1", "", http.StatusBadRequest},
		{http.MethodGet, "/v1/figures/nosuchfigure", "", http.StatusNotFound},
	}
	if token == "" {
		// No token configured server-side either (the two travel
		// together in make serve-smoke): admin must be refused, not
		// open by default.
		checks = append(checks,
			smokeCheck{http.MethodPost, "/v1/admin/rollups/prewarm", "", http.StatusForbidden})
	} else {
		checks = append(checks,
			smokeCheck{http.MethodPost, "/v1/admin/rollups/prewarm", "", http.StatusUnauthorized},
			smokeCheck{http.MethodPost, "/v1/admin/rollups/prewarm", token, http.StatusOK},
		)
	}
	failed := 0
	for _, c := range checks {
		status, _, err := smokeDo(client, c.method, base+c.path, c.token, "")
		switch {
		case err != nil:
			fmt.Fprintf(os.Stderr, "edgeload: smoke %s %s: %v\n", c.method, c.path, err)
			failed++
		case status != c.want:
			fmt.Fprintf(os.Stderr, "edgeload: smoke %s %s: got %d, want %d\n", c.method, c.path, status, c.want)
			failed++
		}
	}
	// The conditional round trip: 200 with an ETag, then 304 on
	// If-None-Match with that tag.
	const figure = "/v1/figures/fig3"
	status, tag, err := smokeDo(client, http.MethodGet, base+figure, "", "")
	switch {
	case err != nil || status != http.StatusOK:
		fmt.Fprintf(os.Stderr, "edgeload: smoke etag fetch %s: status %d err %v\n", figure, status, err)
		failed++
	case tag == "":
		fmt.Fprintf(os.Stderr, "edgeload: smoke %s: no ETag on 200\n", figure)
		failed++
	default:
		status, _, err = smokeDo(client, http.MethodGet, base+figure, "", tag)
		if err != nil || status != http.StatusNotModified {
			fmt.Fprintf(os.Stderr, "edgeload: smoke If-None-Match %s: got %d err %v, want 304\n", figure, status, err)
			failed++
		}
	}
	if failed > 0 {
		return 1
	}
	fmt.Fprintf(os.Stderr, "edgeload: smoke ok (%d checks)\n", len(checks)+2)
	return 0
}

func parseLevels(s string) []int {
	var out []int
	for _, part := range strings.Split(s, ",") {
		v, err := strconv.Atoi(strings.TrimSpace(part))
		if err != nil || v < 1 {
			fmt.Fprintf(os.Stderr, "edgeload: bad -c element %q\n", part)
			os.Exit(2)
		}
		out = append(out, v)
	}
	return out
}

func fatal(err error) {
	fmt.Fprintf(os.Stderr, "edgeload: %v\n", err)
	os.Exit(1)
}
