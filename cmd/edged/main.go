// Command edged is the live half of the reproduction: a long-running
// ingest daemon that consumes the simulated probe's continuous flow
// stream, folds each record into checkpointed live aggregates (served
// to queries as "today so far"), seals finished days into the lake at
// rollover, and compacts sealed days to the columnar format in the
// background. Kill it at any point and restart it over the same
// directories: it recovers from its write-ahead log and resume
// cursor, losing nothing and double-counting nothing.
//
// Usage:
//
//	edged -out /data/lake -from 2014-04-01 -to 2014-04-30
//	edged -out /data/lake -stride 7 -checkpoint-every 2048
//	edged -out /data/lake -faults "seal:p=0.2,transient" -stats
//
// While edged runs, `edgereport -store <out> -aggcache <out>/.agg`
// answers for sealed days from the lake and for the live day from the
// latest checkpoint.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"path/filepath"
	"syscall"
	"time"

	"repro/internal/core"
	"repro/internal/faultinject"
	"repro/internal/flowrec"
	"repro/internal/ingest"
	"repro/internal/metrics"
	"repro/internal/retry"
	"repro/internal/simnet"
)

func main() {
	var (
		seed      = flag.Uint64("seed", 1, "world seed")
		out       = flag.String("out", "", "lake directory (required); sealed days land here")
		aggDir    = flag.String("agg", "", "checkpoint/aggregate cache directory (default <out>/.agg)")
		walDir    = flag.String("wal", "", "write-ahead log directory (default <out>/.wal)")
		from      = flag.String("from", "", "first day (YYYY-MM-DD, default span start)")
		to        = flag.String("to", "", "last day (YYYY-MM-DD, default span end)")
		stride    = flag.Int("stride", 1, "ingest every Nth day of the range")
		adsl      = flag.Int("adsl", 0, "ADSL subscriber count (0 = default)")
		ftth      = flag.Int("ftth", 0, "FTTH subscriber count (0 = default)")
		ckEvery   = flag.Int("checkpoint-every", 4096, "checkpoint a day after this many new records")
		ckIntv    = flag.Duration("checkpoint-interval", 30*time.Second, "also checkpoint all open days this often (wall clock; 0 disables)")
		grace     = flag.Duration("grace", 8*time.Hour, "how long past midnight a day stays open for late flows (stream clock)")
		sealEmpty = flag.Bool("seal-empty-days", false, "seal valid empty day files for silent calendar days (leave off with -stride > 1)")
		compactTo = flag.String("compact", "v3", "background-compact sealed days to this format (v1, v2, v3; empty disables)")
		pace      = flag.Int("pace", 0, "throttle to this many records/second (0 = full speed)")
		retries   = flag.Int("retries", 3, "attempts for transient checkpoint/seal failures")
		stats     = flag.Bool("stats", false, "print the metrics table on exit")
		verbose   = flag.Bool("v", false, "log seals, recoveries and degradations to stderr")
		faults    = flag.String("faults", "", `fault-injection spec, e.g. "checkpoint:p=0.1,transient;seal:p=0.05,transient" (see README)`)
	)
	flag.Parse()
	if *out == "" {
		fmt.Fprintln(os.Stderr, "edged: -out is required")
		os.Exit(2)
	}
	ctx, stopSig := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stopSig()
	if *stats {
		defer func() {
			fmt.Println("\n== ingest metrics ==")
			metrics.WriteText(os.Stdout)
		}()
	}

	parse := func(s string, def time.Time) time.Time {
		if s == "" {
			return def
		}
		t, err := time.Parse("2006-01-02", s)
		if err != nil {
			fmt.Fprintf(os.Stderr, "edged: bad date %q: %v\n", s, err)
			os.Exit(2)
		}
		return t.UTC()
	}
	days := core.RangeDays(parse(*from, simnet.SpanStart), parse(*to, simnet.SpanEnd), *stride)
	if *aggDir == "" {
		*aggDir = filepath.Join(*out, ".agg")
	}
	if *walDir == "" {
		*walDir = filepath.Join(*out, flowrec.WALDirName)
	}

	// Days seal in the row format (cheap sequential write off the WAL);
	// the background compactor rewrites them columnar.
	store, err := flowrec.OpenStoreFormat(*out, flowrec.FormatV1)
	if err != nil {
		fmt.Fprintf(os.Stderr, "edged: %v\n", err)
		os.Exit(1)
	}
	cfg := ingest.Config{
		Storage:         core.NewDiskStorage(store, *aggDir),
		WALDir:          *walDir,
		CheckpointEvery: *ckEvery,
		Grace:           *grace,
		SealEmptyDays:   *sealEmpty,
		Retry:           retry.Policy{Attempts: *retries, Base: 50 * time.Millisecond, Max: 2 * time.Second, Seed: *seed},
	}
	if *compactTo != "" {
		cf, err := flowrec.ParseFormat(*compactTo)
		if err != nil {
			fmt.Fprintf(os.Stderr, "edged: %v\n", err)
			os.Exit(2)
		}
		cfg.Compactor, cfg.CompactFormat = store, cf
	}
	if *faults != "" {
		plan, err := faultinject.Parse(*faults)
		if err != nil {
			fmt.Fprintf(os.Stderr, "edged: %v\n", err)
			os.Exit(2)
		}
		cfg.Faults = plan
		cfg.Storage = faultinject.Wrap(core.NewDiskStorage(store, *aggDir), plan)
	}
	logf := func(string, ...interface{}) {}
	if *verbose {
		logf = func(format string, args ...interface{}) {
			fmt.Fprintf(os.Stderr, format+"\n", args...)
		}
	}
	cfg.Logf = logf

	in, err := ingest.Open(cfg)
	if err != nil {
		fmt.Fprintf(os.Stderr, "edged: %v\n", err)
		os.Exit(1)
	}
	if in.Resume() > 0 {
		logf("edged: recovered; resuming stream at seq %d over %d open day(s)", in.Resume(), len(in.OpenDays()))
	}

	scale := simnet.Scale{ADSL: *adsl, FTTH: *ftth}
	w := simnet.NewWorld(*seed, scale)
	src := w.Stream(days)
	src.Seek(in.Resume())

	var (
		sr       simnet.StreamRecord
		n        uint64
		lastCkpt = time.Now()
		tick     time.Time
	)
	exit := 0
	for src.Next(&sr) {
		if err := in.Ingest(ctx, &sr.Rec, sr.At); err != nil {
			// Ingest errors are WAL-level: the record is not durable.
			// Surface and stop rather than silently dropping flow data.
			fmt.Fprintf(os.Stderr, "edged: ingest: %v\n", err)
			exit = 1
			break
		}
		n++
		if ctx.Err() != nil {
			logf("edged: signal received after %d records; checkpointing and exiting", n)
			break
		}
		if *ckIntv > 0 && time.Since(lastCkpt) >= *ckIntv {
			in.CheckpointAll(ctx)
			lastCkpt = time.Now()
		}
		if *pace > 0 && n%uint64(*pace) == 0 {
			// Coarse throttle: after each batch of -pace records, sleep
			// out the remainder of the second.
			if d := time.Second - time.Since(tick); d > 0 && !tick.IsZero() {
				time.Sleep(d)
			}
			tick = time.Now()
		}
	}

	if exit == 0 && ctx.Err() == nil {
		// Stream exhausted: a bounded run seals everything it ingested.
		if err := in.SealAll(context.Background()); err != nil {
			fmt.Fprintf(os.Stderr, "edged: seal: %v\n", err)
			exit = 1
		}
	}
	// Graceful shutdown either way: checkpoint open days, flush the
	// WAL, persist the resume cursor, drain the compactor. A restart
	// picks up exactly here.
	if err := in.Close(context.Background()); err != nil {
		fmt.Fprintf(os.Stderr, "edged: close: %v\n", err)
		exit = 1
	}
	logf("edged: %d record(s) ingested, watermark %s", n, in.Watermark().Format(time.RFC3339))
	os.Exit(exit)
}
