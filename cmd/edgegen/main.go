// Command edgegen materialises a slice of the simulated five-year
// dataset into an on-disk flow store (day-partitioned, gzip-compressed
// binary logs), which edgereport can then analyse with -store.
//
// Usage:
//
//	edgegen -out /data/lake -from 2014-04-01 -to 2014-04-30
//	edgegen -out /data/lake -stride 7            # whole span, weekly
//	edgegen -out /data/lake -from 2016-11-01 -to 2016-11-30 -csv dump.csv
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro/internal/core"
	"repro/internal/faultinject"
	"repro/internal/flowrec"
	"repro/internal/metrics"
	"repro/internal/prof"
	"repro/internal/simnet"
)

func main() {
	var (
		seed       = flag.Uint64("seed", 1, "world seed")
		out        = flag.String("out", "", "store directory (required)")
		from       = flag.String("from", "", "first day (YYYY-MM-DD, default span start)")
		to         = flag.String("to", "", "last day (YYYY-MM-DD, default span end)")
		stride     = flag.Int("stride", 1, "generate every Nth day")
		adsl       = flag.Int("adsl", 0, "ADSL subscriber count (0 = default)")
		ftth       = flag.Int("ftth", 0, "FTTH subscriber count (0 = default)")
		csv        = flag.String("csv", "", "also dump the first generated day as CSV to this file")
		format     = flag.String("format", "v1", "day-file format: v1 (row codec), v2 (columnar) or v3 (columnar, per-block compression); readers auto-detect")
		compact    = flag.Bool("compact", false, "skip generation; recompact the existing store's days into -format (parallel, atomic per day)")
		memlimit   = flag.String("memlimit", "", `stage-one memory budget for the -agg prewarm, e.g. "512M" (0 = unbounded; over budget, aggregation spills partials to disk)`)
		aggDir     = flag.String("agg", "", "after generating, prewarm a per-day aggregate cache in this directory")
		rollupDir  = flag.String("rollup", "", "after generating, prewarm week/month/year rollups in this directory")
		sketch     = flag.Bool("sketch", false, "carry mergeable sketches in the prewarmed aggregates and rollups")
		shards     = flag.Int("shards", 0, "per-day shard aggregators for the -agg prewarm (0 = auto, 1 = serial fold)")
		stats      = flag.Bool("stats", false, "print the pipeline metrics table after the run")
		cpuprofile = flag.String("cpuprofile", "", "write a CPU profile to this file")
		memprofile = flag.String("memprofile", "", "write a heap profile to this file at exit")
		faults     = flag.String("faults", "", `fault-injection spec, e.g. "writeday:p=0.1,torn" (see README)`)
	)
	flag.Parse()
	ctx, stopSig := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stopSig()
	stopProf, err := prof.Start(*cpuprofile, *memprofile)
	if err != nil {
		fmt.Fprintf(os.Stderr, "edgegen: %v\n", err)
		os.Exit(1)
	}
	defer func() {
		if err := stopProf(); err != nil {
			fmt.Fprintf(os.Stderr, "edgegen: %v\n", err)
		}
	}()
	if *stats {
		defer func() {
			fmt.Println("\n== pipeline metrics ==")
			metrics.WriteText(os.Stdout)
		}()
	}
	if *out == "" {
		fmt.Fprintln(os.Stderr, "edgegen: -out is required")
		os.Exit(2)
	}
	parse := func(s string, def time.Time) time.Time {
		if s == "" {
			return def
		}
		t, err := time.Parse("2006-01-02", s)
		if err != nil {
			fmt.Fprintf(os.Stderr, "edgegen: bad date %q: %v\n", s, err)
			os.Exit(2)
		}
		return t.UTC()
	}
	start := parse(*from, simnet.SpanStart)
	end := parse(*to, simnet.SpanEnd)
	days := core.RangeDays(start, end, *stride)

	sf, err := flowrec.ParseFormat(*format)
	if err != nil {
		fmt.Fprintf(os.Stderr, "edgegen: %v\n", err)
		os.Exit(2)
	}
	membudget, err := core.ParseMemLimit(*memlimit)
	if err != nil {
		fmt.Fprintf(os.Stderr, "edgegen: %v\n", err)
		os.Exit(2)
	}
	store, err := flowrec.OpenStoreFormat(*out, sf)
	if err != nil {
		fmt.Fprintf(os.Stderr, "edgegen: %v\n", err)
		os.Exit(1)
	}

	if *compact {
		// Recompaction path: rewrite the lake's sealed days into the
		// requested format in place and exit. No generation, no prewarm.
		have, err := store.Days()
		if err != nil {
			fmt.Fprintf(os.Stderr, "edgegen: %v\n", err)
			os.Exit(1)
		}
		var pick []time.Time
		for _, d := range have {
			if !d.Before(start) && !d.After(end) {
				pick = append(pick, d)
			}
		}
		t0 := time.Now()
		nd, nr, err := store.CompactStore(pick, sf, 0)
		fmt.Printf("compacted %d days (%d records) in %s to %s in %v\n",
			nd, nr, *out, sf, time.Since(t0).Round(time.Millisecond))
		if err != nil {
			fmt.Fprintf(os.Stderr, "edgegen: compact: %v\n", err)
			os.Exit(1)
		}
		return
	}
	cfg := core.Config{Seed: *seed, Scale: simnet.Scale{ADSL: *adsl, FTTH: *ftth}}
	// The write side carries the cache directories so regenerating a day
	// drops its stale aggregate and the stale rollup windows covering it
	// — the prewarm below would otherwise accept them (a cached agg has
	// no freshness signal, and a stale rollup's manifest still matches).
	var dst core.Storage = core.NewDiskStorage(store, *aggDir).WithRollupDir(*rollupDir)
	if *faults != "" {
		plan, perr := faultinject.Parse(*faults)
		if perr != nil {
			fmt.Fprintf(os.Stderr, "edgegen: %v\n", perr)
			os.Exit(2)
		}
		cfg.Faults = plan // emission-side faults (outage, drop)
		dst = faultinject.Wrap(dst, plan)
	}
	p := core.New(cfg)

	t0 := time.Now()
	n, err := p.GenerateStore(ctx, dst, days)
	if err != nil {
		fmt.Fprintf(os.Stderr, "edgegen: %v\n", err)
		os.Exit(1)
	}
	fmt.Printf("wrote %d flow records across %d days to %s in %v\n",
		n, len(days), *out, time.Since(t0).Round(time.Millisecond))

	if *csv != "" && len(days) > 0 {
		if err := dumpCSV(p, store, days[0], *csv); err != nil {
			fmt.Fprintf(os.Stderr, "edgegen: csv: %v\n", err)
			os.Exit(1)
		}
		fmt.Printf("CSV dump of %s written to %s\n", days[0].Format("2006-01-02"), *csv)
	}

	// Prewarm: run stage one over the freshly written lake so the first
	// edgereport against it starts from cached aggregates (sharded runs
	// cache mergeable partials). The generation pipeline carries no
	// store wiring, so a second pipeline reads what the first wrote.
	if *aggDir != "" || *rollupDir != "" {
		t1 := time.Now()
		warmCfg := cfg
		warmCfg.Store = store
		warmCfg.AggCacheDir = *aggDir
		warmCfg.RollupDir = *rollupDir
		warmCfg.Sketch = *sketch
		warmCfg.ShardsPerDay = *shards
		warmCfg.MemBudget = membudget
		warmCfg.Faults = nil // chaos is a generation-side concern; the prewarm reads clean
		warm := core.New(warmCfg)
		if *aggDir != "" {
			aggs, err := warm.Aggregate(ctx, days)
			if err != nil {
				fmt.Fprintf(os.Stderr, "edgegen: agg prewarm: %v\n", err)
				os.Exit(1)
			}
			fmt.Printf("prewarmed %d day aggregates into %s in %v\n",
				len(aggs), *aggDir, time.Since(t1).Round(time.Millisecond))
		}
		if *rollupDir != "" {
			t2 := time.Now()
			nw, err := warm.BuildRollups(ctx, days)
			if err != nil {
				fmt.Fprintf(os.Stderr, "edgegen: rollup prewarm: %v\n", err)
				os.Exit(1)
			}
			fmt.Printf("prewarmed %d rollup windows into %s in %v\n",
				nw, *rollupDir, time.Since(t2).Round(time.Millisecond))
		}
	}
}

func dumpCSV(p *core.Pipeline, store *flowrec.Store, day time.Time, path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	w, err := flowrec.NewCSVWriter(f)
	if err != nil {
		return err
	}
	err = store.ReadDay(day, func(r *flowrec.Record) error { return w.Write(r) })
	if err != nil {
		return err
	}
	return w.Flush()
}
