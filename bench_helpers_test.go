package bench

import (
	"repro/internal/flowrec"
	"repro/internal/probe"
	"repro/internal/simnet"
)

// newBenchProbe wires a probe against a world the way cmd/edgeprobe
// does, discarding records.
func newBenchProbe(w *simnet.World) *probe.Probe {
	return probe.New(probe.Config{
		Subscriber:       w.SubscriberLookup,
		AnonKey:          w.AnonKey(),
		SPDYVisibleSince: simnet.SPDYVisibleSince(),
		OnRecord:         func(*flowrec.Record) {},
	})
}
