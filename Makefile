GO ?= go

.PHONY: ci vet build test race claims bench

## ci: the full gate — what a PR must pass.
ci: vet build race claims

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

## test: quick suite, no race detector.
test:
	$(GO) test ./...

## race: full suite under the race detector.
race:
	$(GO) test -race ./...

## claims: the paper-claims regression suite alone.
claims:
	$(GO) test -run=TestClaim ./internal/core

## bench: one benchmark per table/figure.
bench:
	$(GO) test -bench=. -benchmem -run=^$$ .
