GO ?= go

.PHONY: ci vet build test race claims bench benchbuild

## ci: the full gate — what a PR must pass.
ci: vet build benchbuild race claims

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

## test: quick suite, no race detector.
test:
	$(GO) test ./...

## race: full suite under the race detector.
race:
	$(GO) test -race ./...

## claims: the paper-claims regression suite alone.
claims:
	$(GO) test -run=TestClaim ./internal/core

## benchbuild: compile the benchmark harness without running it.
benchbuild:
	$(GO) test -c -o /dev/null .

## bench: one benchmark per table/figure, 5 runs each, with a
## machine-readable summary in BENCH.json alongside the raw text.
bench:
	$(GO) test -bench=. -benchmem -run=^$$ -count=5 . | tee BENCH.txt
	$(GO) run ./cmd/benchjson < BENCH.txt > BENCH.json
	@echo "wrote BENCH.txt and BENCH.json"
