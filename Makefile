GO ?= go

.PHONY: ci vet fmt build test race claims bench benchbuild allocbudget chaos streamequiv servequiv servequiv-update cacheequiv serve-smoke fuzzsmoke golden cover

## ci: the full gate — what a PR must pass.
ci: fmt vet build benchbuild allocbudget race claims chaos streamequiv servequiv cacheequiv serve-smoke fuzzsmoke cover

vet:
	$(GO) vet ./...

## fmt: fail if any file is not gofmt-clean (prints the offenders).
fmt:
	@out=$$(gofmt -l .); if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; fi

build:
	$(GO) build ./...

## test: quick suite, no race detector.
test:
	$(GO) test ./...

## race: full suite under the race detector, with test order shuffled
## so inter-test state dependence fails loudly rather than by luck.
race:
	$(GO) test -race -shuffle=on ./...

## cover: per-package coverage summary (part of ci).
cover:
	$(GO) test -cover ./...

## claims: the paper-claims regression suite alone.
claims:
	$(GO) test -run=TestClaim ./internal/core

## benchbuild: compile the benchmark harness without running it.
benchbuild:
	$(GO) test -c -o /dev/null .

## allocbudget: fail if Figure 3's allocs/op regress more than 10%
## over the checked-in budget (alloc_budget.txt). allocs/op is
## deterministic enough to gate on (±0.01% run to run); ns/op is not.
## After a deliberate allocation change, re-measure and commit the new
## budget alongside the change.
allocbudget:
	@got=$$($(GO) test -run '^$$' -bench '^BenchmarkFig3MonthlyTrend$$' -benchmem -benchtime=2x . \
		| awk '/^BenchmarkFig3MonthlyTrend/ {for (i=2; i<=NF; i++) if ($$i == "allocs/op") print $$(i-1)}'); \
	budget=$$(cat alloc_budget.txt); \
	if [ -z "$$got" ]; then echo "allocbudget: benchmark produced no allocs/op"; exit 1; fi; \
	if awk -v g="$$got" -v b="$$budget" 'BEGIN { exit !(g > b * 1.10) }'; then \
		echo "allocbudget: Fig3 allocs/op $$got exceeds budget $$budget by >10%"; exit 1; fi; \
	echo "allocbudget ok: Fig3 $$got allocs/op (budget $$budget)"

## chaos: every figure under every fault class (fault-injection suite).
chaos:
	$(GO) test -run '^TestChaos|^TestDegradedTotals' ./internal/core

## streamequiv: the streamed≡batch gate — every experiment over a lake
## built by the live ingest loop (chaos faults + crash/restart on the
## way) must match the batch build byte for byte, plus the ingest
## package's crash-recovery property suite.
streamequiv:
	$(GO) test -run '^TestStreamedEqualsBatchExperiments|^TestHotDay' ./internal/core
	$(GO) test ./internal/ingest

## servequiv: the serve-equivalence gate — every /v1/figures response
## must match the golden HTTP corpus byte for byte, equal the batch
## derivation number for number, and appear in the rendered batch
## figure text.
servequiv:
	$(GO) test ./internal/serve -run '^TestServeEquivalenceGolden$$|^TestServedFigures' -count=1

## servequiv-update: regenerate the served-figure golden corpus
## (internal/serve/testdata/golden). Review the diff before committing
## — every change here is a deliberate change to a served figure.
servequiv-update:
	$(GO) test ./internal/serve -run '^TestServeEquivalenceGolden$$' -update-servequiv -count=1
	@echo "regenerated internal/serve/testdata/golden"

## cacheequiv: the cache-equivalence gate — response-cache hits are
## byte-identical to their first computation, every mutation path
## (WriteDay, live-ingest checkpoint/seal, admin compact) invalidates
## against a fresh batch pipeline, the ETag/If-None-Match round trip
## holds, and a mid-stream damaged day terminates a streamed CSV with
## the error trailer. Plus the four serve-contract regressions
## (queue-wait deadline, failed-day tallies, metrics format, healthz
## day-count caching).
cacheequiv:
	$(GO) test ./internal/serve -run '^TestResponseCache|^TestETag|^TestStreaming|^TestAdmin|^TestDeadlineIncludesQueueWait$$|^TestScanSummaryExcludesFailedDay$$|^TestMetricsFormatStrict$$|^TestHealthzCachedDayCount$$' -count=1

## serve-smoke: boot a real edgeserve process on a free port, probe
## every endpoint class with edgeload -smoke (200s, a 400, a 404, the
## admin token gate in both directions, and an ETag 304 round trip),
## and shut it down — the daemon-side liveness gate.
serve-smoke:
	@set -e; tmp=$$(mktemp -d); trap 'kill $$pid 2>/dev/null || true; rm -rf $$tmp' EXIT; \
	$(GO) build -o $$tmp/edgeserve ./cmd/edgeserve; \
	$(GO) build -o $$tmp/edgeload ./cmd/edgeload; \
	$$tmp/edgeserve -addr 127.0.0.1:0 -addr-file $$tmp/addr -scale small -stride 240 \
		-rollup $$tmp/rollup -admin-token smoke-token 2>$$tmp/log & pid=$$!; \
	for i in $$(seq 100); do [ -f $$tmp/addr ] && break; sleep 0.1; done; \
	[ -f $$tmp/addr ] || { echo "serve-smoke: edgeserve never bound"; cat $$tmp/log; exit 1; }; \
	$$tmp/edgeload -addr "http://$$(cat $$tmp/addr)" -admin-token smoke-token -smoke; \
	kill $$pid; wait $$pid 2>/dev/null || true; \
	echo "serve-smoke ok"

## fuzzsmoke: a short fuzz pass over every fuzz target. Each target
## gets -fuzztime seconds of mutation on top of its checked-in corpus;
## crashes fail the gate.
FUZZTIME ?= 10s
FUZZ_TARGETS := \
	internal/flowrec:FuzzDecodeRecord \
	internal/wire:FuzzParsePacket \
	internal/dpi:FuzzTLSClientHello \
	internal/dpi:FuzzDNSDecode \
	internal/dpi:FuzzHTTPRequest \
	internal/dpi:FuzzQUICHeader \
	internal/dpi:FuzzBitTorrent \
	internal/dpi:FuzzLayerParser \
	internal/dpi:FuzzTCPOptions \
	internal/serve:FuzzParseQuery

fuzzsmoke:
	@set -e; for t in $(FUZZ_TARGETS); do \
		pkg=$${t%%:*}; fn=$${t##*:}; \
		echo "fuzz $$pkg $$fn"; \
		$(GO) test -run '^$$' -fuzz "^$$fn$$" -fuzztime=$(FUZZTIME) -parallel=4 ./$$pkg >/dev/null || exit 1; \
	done

## golden: regenerate the golden-figure corpus (testdata/golden) from
## the current code. Review the diff before committing — every change
## here is a deliberate change to a published figure.
golden:
	$(GO) test ./internal/core -run '^TestGoldenFigures$$' -update-golden -count=1
	@echo "regenerated internal/core/testdata/golden"

## bench: one benchmark per table/figure, 5 runs each, plus the served
## SLO curves — edgeload sweeping concurrency against a live edgeserve
## twice: once cold (response cache disabled) and once cached (cache on,
## ETag revalidation) — with a machine-readable summary in BENCH.json
## alongside the raw text (the sweeps land in its serve_slo field as
## {cold, cached}).
bench:
	$(GO) test -bench=. -benchmem -run=^$$ -count=5 . | tee BENCH.txt
	@scale=$$(grep '^BenchmarkPipelineScale' BENCH.txt || true); \
	{ echo ""; echo "== scaling curve (population sweep, records/sec) =="; \
	  echo "$$scale"; } >> BENCH.txt
	@set -e; tmp=$$(mktemp -d); trap 'kill $$pid 2>/dev/null || true; rm -rf $$tmp' EXIT; \
	$(GO) build -o $$tmp/edgeserve ./cmd/edgeserve; \
	$(GO) build -o $$tmp/edgeload ./cmd/edgeload; \
	$$tmp/edgeserve -addr 127.0.0.1:0 -addr-file $$tmp/addr-cold -scale small -stride 240 \
		-cache -1 2>/dev/null & pid=$$!; \
	for i in $$(seq 100); do [ -f $$tmp/addr-cold ] && break; sleep 0.1; done; \
	[ -f $$tmp/addr-cold ] || { echo "bench: edgeserve (cold) never bound"; exit 1; }; \
	$$tmp/edgeload -addr "http://$$(cat $$tmp/addr-cold)" -c 1,2,4,8,16 -n 200 -json $$tmp/slo-cold.json 2>$$tmp/table-cold; \
	kill $$pid; wait $$pid 2>/dev/null || true; \
	$$tmp/edgeserve -addr 127.0.0.1:0 -addr-file $$tmp/addr-hot -scale small -stride 240 2>/dev/null & pid=$$!; \
	for i in $$(seq 100); do [ -f $$tmp/addr-hot ] && break; sleep 0.1; done; \
	[ -f $$tmp/addr-hot ] || { echo "bench: edgeserve (cached) never bound"; exit 1; }; \
	$$tmp/edgeload -addr "http://$$(cat $$tmp/addr-hot)" -c 1,2,4,8,16 -n 200 -etag -json $$tmp/slo-cached.json 2>$$tmp/table-cached; \
	kill $$pid; wait $$pid 2>/dev/null || true; \
	{ echo ""; echo "== served SLO curve, cold cache (edgeload, p50/p99 vs concurrency) =="; \
	  cat $$tmp/table-cold; \
	  echo ""; echo "== served SLO curve, response cache + ETags (edgeload -etag) =="; \
	  cat $$tmp/table-cached; } >> BENCH.txt; \
	$(GO) run ./cmd/benchjson -slo $$tmp/slo-cold.json -slo-cached $$tmp/slo-cached.json < BENCH.txt > BENCH.json
	@echo "wrote BENCH.txt and BENCH.json"
