package bench

import (
	"testing"
	"time"

	"repro/internal/analytics"
	"repro/internal/flowrec"
	"repro/internal/metrics"
	"repro/internal/simnet"
)

// BenchmarkReadDayV1vsV2 compares the two day-file formats on the
// access pattern the columnar store exists for: a narrow experiment
// (Figure 3 reads only the subscriber columns) scanning a full day.
// The v1 row codec must decode every byte of every record; v2 decodes
// just the requested column streams and skips whole blocks on stats.
// Besides ns/op, each sub-benchmark reports decoded_B/op — the bytes
// the codec actually materialised — which is where the formats
// separate; EXPERIMENTS.md records the measured gap.
func BenchmarkReadDayV1vsV2(b *testing.B) {
	day := time.Date(2016, 11, 12, 0, 0, 0, 0, time.UTC)
	world := simnet.NewWorld(1, simnet.Scale{ADSL: 24, FTTH: 12})
	write := func(dir string, format flowrec.Format) *flowrec.Store {
		store, err := flowrec.OpenStoreFormat(dir, format)
		if err != nil {
			b.Fatal(err)
		}
		w, err := store.CreateDay(day)
		if err != nil {
			b.Fatal(err)
		}
		world.EmitDay(day, func(r *flowrec.Record) {
			if err := w.Write(r); err != nil {
				b.Fatal(err)
			}
		})
		if err := w.Close(); err != nil {
			b.Fatal(err)
		}
		return store
	}
	stores := map[string]*flowrec.Store{
		"v1": write(b.TempDir(), flowrec.FormatV1),
		"v2": write(b.TempDir(), flowrec.FormatV2),
	}

	// The Figure 3 contract: subscriber columns only, no predicate.
	sc := flowrec.ColScan{Cols: analytics.ColsSubscribers}
	decoded := metrics.GetCounter("store.decoded_bytes")
	for _, name := range []string{"v1", "v2"} {
		store := stores[name]
		b.Run(name, func(b *testing.B) {
			b.ReportAllocs()
			start := decoded.Load()
			var rows int
			for i := 0; i < b.N; i++ {
				rows = 0
				err := store.ReadDayCols(day, sc, func(r *flowrec.Record) error {
					rows++
					return nil
				})
				if err != nil {
					b.Fatal(err)
				}
				if rows == 0 {
					b.Fatal("day scan returned no records")
				}
			}
			b.ReportMetric(float64(decoded.Load()-start)/float64(b.N), "decoded_B/op")
			b.ReportMetric(float64(rows), "rows/op")
		})
	}
}
