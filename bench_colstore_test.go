package bench

import (
	"sort"
	"testing"
	"time"

	"repro/internal/analytics"
	"repro/internal/flowrec"
	"repro/internal/metrics"
	"repro/internal/simnet"
)

// benchDay materialises one simulated day into dir in the given
// format and returns the store.
func benchDay(b *testing.B, world *simnet.World, day time.Time, dir string, format flowrec.Format) *flowrec.Store {
	b.Helper()
	store, err := flowrec.OpenStoreFormat(dir, format)
	if err != nil {
		b.Fatal(err)
	}
	w, err := store.CreateDay(day)
	if err != nil {
		b.Fatal(err)
	}
	world.EmitDay(day, func(r *flowrec.Record) {
		if err := w.Write(r); err != nil {
			b.Fatal(err)
		}
	})
	if err := w.Close(); err != nil {
		b.Fatal(err)
	}
	return store
}

// scanDay runs one measured day scan, reporting decoded_B/op and
// rows/op alongside the standard metrics.
func scanDay(b *testing.B, store *flowrec.Store, day time.Time, sc flowrec.ColScan) {
	b.Helper()
	b.ReportAllocs()
	decoded := metrics.GetCounter("store.decoded_bytes")
	start := decoded.Load()
	var rows int
	for i := 0; i < b.N; i++ {
		rows = 0
		err := store.ReadDayCols(day, sc, func(r *flowrec.Record) error {
			rows++
			return nil
		})
		if err != nil {
			b.Fatal(err)
		}
		if rows == 0 {
			b.Fatal("day scan returned no records")
		}
	}
	b.ReportMetric(float64(decoded.Load()-start)/float64(b.N), "decoded_B/op")
	b.ReportMetric(float64(rows), "rows/op")
}

// BenchmarkReadDayFormats compares the three day-file formats on the
// access pattern the columnar store exists for: a narrow experiment
// (Figure 3 reads only the subscriber columns) scanning a full day.
// The v1 row codec must decode every byte of every record; v2 decodes
// just the requested column streams; v3 additionally compresses per
// block, so pruned columns are skipped without inflating them.
// Besides ns/op, each sub-benchmark reports decoded_B/op — the bytes
// the codec actually materialised — which is where the formats
// separate; EXPERIMENTS.md records the measured gap.
func BenchmarkReadDayFormats(b *testing.B) {
	day := time.Date(2016, 11, 12, 0, 0, 0, 0, time.UTC)
	world := simnet.NewWorld(1, simnet.Scale{ADSL: 24, FTTH: 12})
	names := []string{"v1", "v2", "v3"}
	stores := map[string]*flowrec.Store{
		"v1": benchDay(b, world, day, b.TempDir(), flowrec.FormatV1),
		"v2": benchDay(b, world, day, b.TempDir(), flowrec.FormatV2),
		"v3": benchDay(b, world, day, b.TempDir(), flowrec.FormatV3),
	}

	// The Figure 3 contract: subscriber columns only, no predicate.
	sc := flowrec.ColScan{Cols: analytics.ColsSubscribers}
	for _, name := range names {
		store := stores[name]
		b.Run(name, func(b *testing.B) { scanDay(b, store, day, sc) })
	}

	// Full Figure-3 column set decoded across parallel workers: v2
	// inflates one gzip stream serially before fanning out block
	// decode; v3 fans out the block decompression itself.
	parScan := flowrec.ColScan{Cols: analytics.ColsSubscribers, Workers: 4}
	for _, name := range []string{"v2", "v3"} {
		store := stores[name]
		b.Run(name+"/workers=4", func(b *testing.B) { scanDay(b, store, day, parScan) })
	}
}

// BenchmarkPushdownScan measures a pushdown-heavy scan: a Start-range
// predicate selecting the last two hours of a time-ordered day, so
// most blocks are excluded by their stats. v2 still pays gzip
// inflation for every skipped block's bytes; v3 Discards them without
// touching flate — the gap this format exists for.
func BenchmarkPushdownScan(b *testing.B) {
	day := time.Date(2016, 11, 12, 0, 0, 0, 0, time.UTC)
	world := simnet.NewWorld(1, simnet.Scale{ADSL: 100, FTTH: 50})
	// Write the day time-ordered — the order a real probe logs in, and
	// what makes per-block Start stats selective.
	var recs []flowrec.Record
	world.EmitDay(day, func(r *flowrec.Record) { recs = append(recs, *r) })
	sort.SliceStable(recs, func(i, j int) bool { return recs[i].Start.Before(recs[j].Start) })
	write := func(dir string, format flowrec.Format) *flowrec.Store {
		store, err := flowrec.OpenStoreFormat(dir, format)
		if err != nil {
			b.Fatal(err)
		}
		w, err := store.CreateDay(day)
		if err != nil {
			b.Fatal(err)
		}
		for i := range recs {
			if err := w.Write(&recs[i]); err != nil {
				b.Fatal(err)
			}
		}
		if err := w.Close(); err != nil {
			b.Fatal(err)
		}
		return store
	}
	stores := map[string]*flowrec.Store{
		"v2": write(b.TempDir(), flowrec.FormatV2),
		"v3": write(b.TempDir(), flowrec.FormatV3),
	}
	sc := flowrec.ColScan{
		Cols: analytics.ColsSubscribers,
		Pred: &flowrec.Pred{StartMin: day.Add(22 * time.Hour)},
	}
	skipped := metrics.GetCounter("store.blocks_skipped")
	for _, name := range []string{"v2", "v3"} {
		store := stores[name]
		b.Run(name, func(b *testing.B) {
			start := skipped.Load()
			scanDay(b, store, day, sc)
			b.ReportMetric(float64(skipped.Load()-start)/float64(b.N), "blocks_skipped/op")
		})
	}
}
