package analytics

// SketchSet bundles the mergeable approximate summaries an aggregate
// carries in sketch mode (RunConfig.Sketch / core's -sketch flag). The
// exact accumulators answer every figure of the reproduction, but they
// scale with the day's cardinality: Subs with subscriber count,
// ServerIPs with address count, RTTMinMs with up to 60k samples per
// service. At the paper's deployment scale (tens of thousands of
// subscribers, 247G flows) a year rollup folding exact state would
// carry every key of every day. The sketch set is the fixed-size
// alternative: a few KiB per day regardless of cardinality, closed
// under Merge like everything else in the Partial monoid, and carried
// alongside — never instead of — the exact state, so exact mode and
// golden figures are untouched when the gate is off.
//
// Sketches are excluded from CanonicalBytes: byte-identity is an exact
// mode contract, and sketch answers are asserted against documented
// error bounds instead (see DESIGN.md §12 and the rollup-equivalence
// test tier).

import (
	"time"

	"repro/internal/analytics/sketch"
	"repro/internal/classify"
	"repro/internal/flowrec"
	"repro/internal/wire"
)

// SketchSet is gob-encodable; all sketches expose exported state only.
type SketchSet struct {
	// Clients counts distinct subscriber IDs (active or not).
	Clients *sketch.HLL
	// ServerIPs counts distinct server addresses the inventory tracks.
	ServerIPs *sketch.HLL
	// Services tracks per-service downloaded-byte heavy hitters.
	Services *sketch.SpaceSaving
	// Domains tracks per-second-level-domain downloaded-byte heavy
	// hitters across all classified services.
	Domains *sketch.SpaceSaving
	// RTT summarises per-flow minimum RTT (ms) per Figure-10 service.
	RTT map[classify.Service]*sketch.TDigest
}

// SketchTopK is the heavy-hitter capacity: error is bounded by
// total-weight/SketchTopK, i.e. ~1.6% of total bytes at 64.
const SketchTopK = 64

// NewSketchSet returns an empty, ready-to-feed sketch set.
func NewSketchSet() *SketchSet {
	return &SketchSet{
		Clients:   sketch.NewHLL(),
		ServerIPs: sketch.NewHLL(),
		Services:  sketch.NewSpaceSaving(SketchTopK),
		Domains:   sketch.NewSpaceSaving(SketchTopK),
		RTT:       make(map[classify.Service]*sketch.TDigest),
	}
}

// Clone returns an independent deep copy; nil clones to nil.
func (s *SketchSet) Clone() *SketchSet {
	if s == nil {
		return nil
	}
	c := &SketchSet{
		Clients:   s.Clients.Clone(),
		ServerIPs: s.ServerIPs.Clone(),
		Services:  s.Services.Clone(),
		Domains:   s.Domains.Clone(),
	}
	if s.RTT != nil {
		c.RTT = make(map[classify.Service]*sketch.TDigest, len(s.RTT))
		for svc, d := range s.RTT {
			c.RTT[svc] = d.Clone()
		}
	}
	return c
}

// Merge folds o into s. o is never modified, and s shares no state
// with it afterwards — the same aliasing contract as Partial.Merge.
func (s *SketchSet) Merge(o *SketchSet) {
	if o == nil {
		return
	}
	if o.Clients != nil {
		if s.Clients == nil {
			s.Clients = sketch.NewHLL()
		}
		s.Clients.Merge(o.Clients)
	}
	if o.ServerIPs != nil {
		if s.ServerIPs == nil {
			s.ServerIPs = sketch.NewHLL()
		}
		s.ServerIPs.Merge(o.ServerIPs)
	}
	if o.Services != nil {
		if s.Services == nil {
			s.Services = sketch.NewSpaceSaving(o.Services.K)
		}
		s.Services.Merge(o.Services)
	}
	if o.Domains != nil {
		if s.Domains == nil {
			s.Domains = sketch.NewSpaceSaving(o.Domains.K)
		}
		s.Domains.Merge(o.Domains)
	}
	for svc, d := range o.RTT {
		if s.RTT == nil {
			s.RTT = make(map[classify.Service]*sketch.TDigest, len(o.RTT))
		}
		if cur := s.RTT[svc]; cur == nil {
			s.RTT[svc] = d.Clone()
		} else {
			cur.Merge(d)
		}
	}
}

// observe feeds one record into the sketch set, mirroring the exact
// accumulators' gating (the want* flags) so a sketch never summarises
// pruned-away zero values.
func (s *SketchSet) observe(a *Aggregator, rec *flowrec.Record, svc classify.Service, id classify.ServiceID) {
	if a.wantSubs {
		s.Clients.AddHash(sketch.HashUint64(uint64(rec.SubID)))
	}
	s.Services.Add(string(svc), rec.BytesDown)
	if a.wantRTT && rec.RTTSamples > 0 && a.rttWant[id] {
		d := s.RTT[svc]
		if d == nil {
			d = sketch.NewTDigest(0)
			s.RTT[svc] = d
		}
		d.Add(float64(rec.RTTMin) / float64(time.Millisecond))
	}
	if a.wantIPs && id != a.p2pID && rec.Web != flowrec.WebDNS && rec.Web != flowrec.WebOther {
		s.ServerIPs.AddHash(addrHash(rec.Server))
		if id != classify.UnknownID && rec.ServerName != "" {
			s.Domains.Add(SecondLevelDomain(rec.ServerName), rec.BytesDown)
		}
	}
}

// addrHash hashes a server address for the distinct-IP HLL.
func addrHash(a wire.Addr) uint64 {
	return sketch.Hash64(a[:])
}
