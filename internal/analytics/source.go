package analytics

import (
	"context"
	"errors"
	"time"

	"repro/internal/flowrec"
)

// DayReader is the read surface StoreSource needs: *flowrec.Store
// satisfies it, and so does any storage wrapper (core.Storage, the
// fault injector) — stage one does not care what sits below.
type DayReader interface {
	ReadDay(day time.Time, fn func(*flowrec.Record) error) error
}

// StoreSource reads records from a day-partitioned store.
type StoreSource struct {
	Store DayReader
}

// Records implements Source.
func (s StoreSource) Records(day time.Time, fn func(*flowrec.Record)) error {
	err := s.Store.ReadDay(day, func(r *flowrec.Record) error {
		fn(r)
		return nil
	})
	if errors.Is(err, flowrec.ErrNoDay) {
		return ErrNoData
	}
	return err
}

// RecordsContext implements ContextSource: the read aborts between
// record batches once ctx is done, so cancellation and per-day
// deadlines interrupt a day mid-file instead of after it.
func (s StoreSource) RecordsContext(ctx context.Context, day time.Time, fn func(*flowrec.Record)) error {
	if ctx == nil || ctx.Done() == nil {
		return s.Records(day, fn)
	}
	n := 0
	err := s.Store.ReadDay(day, func(r *flowrec.Record) error {
		// Checking every record would put a branch on the hot decode
		// loop; every 4096 keeps abort latency well under a
		// millisecond at store read rates.
		if n&4095 == 0 {
			if cerr := ctx.Err(); cerr != nil {
				return cerr
			}
		}
		n++
		fn(r)
		return nil
	})
	if errors.Is(err, flowrec.ErrNoDay) {
		return ErrNoData
	}
	return err
}

// FuncSource adapts a generator function (e.g. a simulation world's
// EmitDay) to the Source interface.
type FuncSource func(day time.Time, fn func(*flowrec.Record)) error

// Records implements Source.
func (f FuncSource) Records(day time.Time, fn func(*flowrec.Record)) error {
	return f(day, fn)
}

// ContextSource is the optional cancellable extension of Source.
// RunReport uses it when the source offers it; plain Sources are
// cancelled at day granularity only.
type ContextSource interface {
	RecordsContext(ctx context.Context, day time.Time, fn func(*flowrec.Record)) error
}

// records reads one day through the most capable interface src offers.
func records(ctx context.Context, src Source, day time.Time, fn func(*flowrec.Record)) error {
	if cs, ok := src.(ContextSource); ok {
		return cs.RecordsContext(ctx, day, fn)
	}
	return src.Records(day, fn)
}
