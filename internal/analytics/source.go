package analytics

import (
	"errors"
	"time"

	"repro/internal/flowrec"
)

// StoreSource reads records from the on-disk day-partitioned store.
type StoreSource struct {
	Store *flowrec.Store
}

// Records implements Source.
func (s StoreSource) Records(day time.Time, fn func(*flowrec.Record)) error {
	err := s.Store.ReadDay(day, func(r *flowrec.Record) error {
		fn(r)
		return nil
	})
	if errors.Is(err, flowrec.ErrNoDay) {
		return ErrNoData
	}
	return err
}

// FuncSource adapts a generator function (e.g. a simulation world's
// EmitDay) to the Source interface.
type FuncSource func(day time.Time, fn func(*flowrec.Record)) error

// Records implements Source.
func (f FuncSource) Records(day time.Time, fn func(*flowrec.Record)) error {
	return f(day, fn)
}
