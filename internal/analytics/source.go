package analytics

import (
	"context"
	"errors"
	"time"

	"repro/internal/flowrec"
)

// DayReader is the read surface StoreSource needs: *flowrec.Store
// satisfies it, and so does any storage wrapper (core.Storage, the
// fault injector) — stage one does not care what sits below.
type DayReader interface {
	ReadDay(day time.Time, fn func(*flowrec.Record) error) error
}

// StoreSource reads records from a day-partitioned store.
type StoreSource struct {
	Store DayReader
}

// Records implements Source.
func (s StoreSource) Records(day time.Time, fn func(*flowrec.Record)) error {
	err := s.Store.ReadDay(day, func(r *flowrec.Record) error {
		fn(r)
		return nil
	})
	if errors.Is(err, flowrec.ErrNoDay) {
		return ErrNoData
	}
	return err
}

// RecordsContext implements ContextSource: the read aborts between
// record batches once ctx is done, so cancellation and per-day
// deadlines interrupt a day mid-file instead of after it.
func (s StoreSource) RecordsContext(ctx context.Context, day time.Time, fn func(*flowrec.Record)) error {
	if ctx == nil || ctx.Done() == nil {
		return s.Records(day, fn)
	}
	n := 0
	err := s.Store.ReadDay(day, func(r *flowrec.Record) error {
		// Checking every record would put a branch on the hot decode
		// loop; every 4096 keeps abort latency well under a
		// millisecond at store read rates.
		if n&4095 == 0 {
			if cerr := ctx.Err(); cerr != nil {
				return cerr
			}
		}
		n++
		fn(r)
		return nil
	})
	if errors.Is(err, flowrec.ErrNoDay) {
		return ErrNoData
	}
	return err
}

// FuncSource adapts a generator function (e.g. a simulation world's
// EmitDay) to the Source interface.
type FuncSource func(day time.Time, fn func(*flowrec.Record)) error

// Records implements Source.
func (f FuncSource) Records(day time.Time, fn func(*flowrec.Record)) error {
	return f(day, fn)
}

// ContextSource is the optional cancellable extension of Source.
// RunReport uses it when the source offers it; plain Sources are
// cancelled at day granularity only.
type ContextSource interface {
	RecordsContext(ctx context.Context, day time.Time, fn func(*flowrec.Record)) error
}

// ColumnSource is the optional column-projection extension of Source:
// a source that can decode just the requested columns (and push the
// predicate down) implements it, and stage one routes scans through
// it. Records delivered must match sc.Pred and populate at least
// sc.Cols; delivering more columns is fine — pruning is an
// optimisation, the aggregator's column gating is the correctness
// boundary.
type ColumnSource interface {
	RecordsCols(ctx context.Context, day time.Time, sc flowrec.ColScan, fn func(*flowrec.Record)) error
}

// colsDayReader is the projected-read surface a store may offer;
// *flowrec.Store does, and so do core.Storage wrappers (including the
// fault injector).
type colsDayReader interface {
	ReadDayCols(day time.Time, sc flowrec.ColScan, fn func(*flowrec.Record) error) error
}

// RecordsCols implements ColumnSource. When the underlying store can
// project columns, the scan is pushed all the way down; otherwise the
// day is read in full and only the predicate is applied here, so
// callers observe identical records either way.
func (s StoreSource) RecordsCols(ctx context.Context, day time.Time, sc flowrec.ColScan, fn func(*flowrec.Record)) error {
	cr, ok := s.Store.(colsDayReader)
	if !ok {
		pred := sc.Pred
		return s.RecordsContext(ctx, day, func(r *flowrec.Record) {
			if pred.Match(r) {
				fn(r)
			}
		})
	}
	n := 0
	checkCtx := ctx != nil && ctx.Done() != nil
	err := cr.ReadDayCols(day, sc, func(r *flowrec.Record) error {
		if checkCtx && n&4095 == 0 {
			if cerr := ctx.Err(); cerr != nil {
				return cerr
			}
		}
		n++
		fn(r)
		return nil
	})
	if errors.Is(err, flowrec.ErrNoDay) {
		return ErrNoData
	}
	return err
}

// records reads one day through the most capable interface src offers.
func records(ctx context.Context, src Source, day time.Time, fn func(*flowrec.Record)) error {
	if cs, ok := src.(ContextSource); ok {
		return cs.RecordsContext(ctx, day, fn)
	}
	return src.Records(day, fn)
}

// scanFor builds the ColScan for a run's column contract: zero cols
// means no projection at all (a plain full read), anything else is
// normalised and decoded with the given block-decode parallelism.
func scanFor(cols flowrec.ColumnSet, workers int) flowrec.ColScan {
	if cols == 0 {
		return flowrec.ColScan{}
	}
	return flowrec.ColScan{Cols: NormalizeCols(cols), Workers: workers}
}

// recordsCols is records with a column projection: sources that
// support projection get the scan pushed down; everything else falls
// back to a full read with the predicate applied locally.
func recordsCols(ctx context.Context, src Source, day time.Time, sc flowrec.ColScan, fn func(*flowrec.Record)) error {
	if sc.Cols == 0 && sc.Pred == nil {
		return records(ctx, src, day, fn)
	}
	if cs, ok := src.(ColumnSource); ok {
		return cs.RecordsCols(ctx, day, sc, fn)
	}
	pred := sc.Pred
	return records(ctx, src, day, func(r *flowrec.Record) {
		if pred.Match(r) {
			fn(r)
		}
	})
}
