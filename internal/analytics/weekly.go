package analytics

import (
	"sort"
	"time"

	"repro/internal/classify"
	"repro/internal/flowrec"
)

// Weekly popularity: section 4.3 contrasts daily reach with weekly
// reach ("more than 18% (12%) of FTTH (ADSL) subscribers access
// Netflix at least once" weekly, against ~10% daily). Computing it
// needs consecutive days, because a subscriber counts once per window
// however many days they showed up.

// WeeklyPoint is one window of WeeklyPopularity.
type WeeklyPoint struct {
	// WeekStart is the first day of the window.
	WeekStart time.Time
	// DailyPct is the mean daily popularity inside the window, per
	// tech — the Figure 6-style number.
	DailyPct [2]float64
	// WeeklyPct is the share of the window's active subscribers that
	// visited the service on at least one day.
	WeeklyPct [2]float64
}

// WeeklyPopularity reduces consecutive day aggregates to 7-day
// windows. Partial trailing windows are dropped.
func WeeklyPopularity(aggs []*DayAgg, svc classify.Service) []WeeklyPoint {
	thr := classify.VisitThreshold(svc)
	sorted := append([]*DayAgg(nil), aggs...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i].Day.Before(sorted[j].Day) })

	var out []WeeklyPoint
	for start := 0; start+7 <= len(sorted); start += 7 {
		window := sorted[start : start+7]
		var dailySum [2]float64
		// Per subscriber: active on any day, visited on any day.
		type seen struct {
			tech    flowrec.AccessTech
			active  bool
			visited bool
		}
		subs := make(map[uint32]*seen)
		for _, agg := range window {
			var act, vis [2]float64
			for id, sd := range agg.Subs {
				s := subs[id]
				if s == nil {
					s = &seen{tech: sd.Tech}
					subs[id] = s
				}
				if !sd.Active() {
					continue
				}
				s.active = true
				ti := techIndex(sd.Tech)
				act[ti]++
				if use := sd.PerSvc[svc]; use != nil && use.Down+use.Up >= thr {
					s.visited = true
					vis[ti]++
				}
			}
			for ti := 0; ti < 2; ti++ {
				if act[ti] > 0 {
					dailySum[ti] += 100 * vis[ti] / act[ti]
				}
			}
		}
		pt := WeeklyPoint{WeekStart: window[0].Day}
		var activeCount, visitedCount [2]float64
		for _, s := range subs {
			if !s.active {
				continue
			}
			ti := techIndex(s.tech)
			activeCount[ti]++
			if s.visited {
				visitedCount[ti]++
			}
		}
		for ti := 0; ti < 2; ti++ {
			pt.DailyPct[ti] = dailySum[ti] / 7
			if activeCount[ti] > 0 {
				pt.WeeklyPct[ti] = 100 * visitedCount[ti] / activeCount[ti]
			}
		}
		out = append(out, pt)
	}
	return out
}

// QUICVersionShare counts QUIC flows per version tag over the given
// days — the per-protocol drill-down the paper says its data would
// allow ("e.g., as in [10]") but omits for brevity.
func QUICVersionShare(aggs []*DayAgg) map[string]uint64 {
	out := make(map[string]uint64)
	for _, agg := range aggs {
		for v, n := range agg.QUICVersions {
			out[v] += n
		}
	}
	return out
}
