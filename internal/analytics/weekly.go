package analytics

import (
	"time"

	"repro/internal/classify"
	"repro/internal/flowrec"
)

// Weekly popularity: section 4.3 contrasts daily reach with weekly
// reach ("more than 18% (12%) of FTTH (ADSL) subscribers access
// Netflix at least once" weekly, against ~10% daily). Computing it
// needs consecutive days, because a subscriber counts once per window
// however many days they showed up.

// WeeklyPoint is one window of WeeklyPopularity.
type WeeklyPoint struct {
	// WeekStart is the first day of the window.
	WeekStart time.Time
	// DailyPct is the mean daily popularity inside the window, per
	// tech — the Figure 6-style number.
	DailyPct [2]float64
	// WeeklyPct is the share of the window's active subscribers that
	// visited the service on at least one day.
	WeeklyPct [2]float64
}

// WeeklyPopularity reduces day aggregates to 7-day windows cut by
// calendar date, anchored at the earliest day present: windows are
// [anchor, anchor+6], [anchor+7, anchor+13], … whatever slice position
// the days arrive in. A window any of whose 7 dates has no aggregate is
// skipped — a probe outage must not silently shift every later window
// off its calendar week (the old slice-index cut did exactly that).
// Several aggregates on one date union per-date, so re-delivered days
// do not double-count subscribers.
func WeeklyPopularity(aggs []*DayAgg, svc classify.Service) []WeeklyPoint {
	thr := classify.VisitThreshold(svc)
	if len(aggs) == 0 {
		return nil
	}
	byDay := make(map[time.Time][]*DayAgg, len(aggs))
	var first, last time.Time
	for _, agg := range aggs {
		d := agg.Day
		byDay[d] = append(byDay[d], agg)
		if first.IsZero() || d.Before(first) {
			first = d
		}
		if d.After(last) {
			last = d
		}
	}

	// daySeen is one subscriber's union over one date's aggregates.
	type daySeen struct {
		tech    flowrec.AccessTech
		active  bool
		visited bool
	}
	// seen is one subscriber's union over the window.
	type seen struct {
		tech    flowrec.AccessTech
		active  bool
		visited bool
	}

	var out []WeeklyPoint
	for ws := first; !ws.AddDate(0, 0, 6).After(last); ws = ws.AddDate(0, 0, 7) {
		window := make([][]*DayAgg, 7)
		complete := true
		for i := range window {
			window[i] = byDay[ws.AddDate(0, 0, i)]
			if len(window[i]) == 0 {
				complete = false
				break
			}
		}
		if !complete {
			continue // gap in the lake: no window, no shift
		}

		var dailySum [2]float64
		subs := make(map[uint32]*seen)
		for _, dayAggs := range window {
			day := make(map[uint32]*daySeen)
			for _, agg := range dayAggs {
				for id, sd := range agg.Subs {
					ds := day[id]
					if ds == nil {
						ds = &daySeen{tech: sd.Tech}
						day[id] = ds
					}
					if !sd.Active() {
						continue
					}
					ds.active = true
					if use := sd.PerSvc[svc]; use != nil && use.Down+use.Up >= thr {
						ds.visited = true
					}
				}
			}
			var act, vis [2]float64
			for id, ds := range day {
				s := subs[id]
				if s == nil {
					s = &seen{tech: ds.tech}
					subs[id] = s
				}
				if !ds.active {
					continue
				}
				s.active = true
				ti := techIndex(ds.tech)
				act[ti]++
				if ds.visited {
					s.visited = true
					vis[ti]++
				}
			}
			for ti := 0; ti < 2; ti++ {
				if act[ti] > 0 {
					dailySum[ti] += 100 * vis[ti] / act[ti]
				}
			}
		}

		pt := WeeklyPoint{WeekStart: ws}
		var activeCount, visitedCount [2]float64
		for _, s := range subs {
			if !s.active {
				continue
			}
			ti := techIndex(s.tech)
			activeCount[ti]++
			if s.visited {
				visitedCount[ti]++
			}
		}
		for ti := 0; ti < 2; ti++ {
			pt.DailyPct[ti] = dailySum[ti] / 7
			if activeCount[ti] > 0 {
				pt.WeeklyPct[ti] = 100 * visitedCount[ti] / activeCount[ti]
			}
		}
		out = append(out, pt)
	}
	return out
}

// QUICVersionShare counts QUIC flows per version tag over the given
// days — the per-protocol drill-down the paper says its data would
// allow ("e.g., as in [10]") but omits for brevity.
func QUICVersionShare(aggs []*DayAgg) map[string]uint64 {
	out := make(map[string]uint64)
	for _, agg := range aggs {
		for v, n := range agg.QUICVersions {
			out[v] += n
		}
	}
	return out
}
