package analytics

// Property tests for the DayAgg merge monoid (merge.go, shard.go):
// K-shard aggregation must be byte-identical to the serial fold for
// any K, Merge must be associative and order-insensitive, a gob
// round-trip of partials (the agg-cache path) must change nothing,
// and — the metamorphic property the deterministic bottom-k RTT
// reservoir exists for — shuffling a day's input records must not
// move a single byte of the result.

import (
	"bytes"
	"context"
	"encoding/gob"
	"fmt"
	"testing"
	"time"

	"repro/internal/flowrec"
	"repro/internal/stats"
	"repro/internal/wire"
)

// genDayRecords fabricates a deterministic, deliberately messy day:
// many subscribers across both technologies, classified and unknown
// names, P2P and DNS flows, QUIC versions, RTT samples heavy enough
// to overflow a small reservoir's cap on some services — every DayAgg
// field gets exercised.
func genDayRecords(seed uint64, n int) []flowrec.Record {
	rng := stats.NewRand(seed)
	names := []string{
		"www.netflix.com", "scontent.xx.fbcdn.net", "www.youtube.com",
		"www.google.com", "instagram.com", "mmx-ds.cdn.whatsapp.net",
		"cdn.example.org", "static.example.net", "weird-host", "",
	}
	quicVers := []string{"Q035", "Q039", "Q043"}
	out := make([]flowrec.Record, n)
	for i := range out {
		sub := uint32(1 + rng.Intn(97))
		tech := flowrec.TechADSL
		if sub%3 == 0 {
			tech = flowrec.TechFTTH
		}
		r := flowrec.Record{
			Client:     wire.AddrFrom(10, 0, byte(sub>>8), byte(sub)),
			Server:     wire.AddrFrom(93, byte(rng.Intn(5)), byte(rng.Intn(7)), byte(rng.Intn(11))),
			CliPort:    uint16(1024 + rng.Intn(60000)),
			SrvPort:    443,
			SubID:      sub,
			Tech:       tech,
			Proto:      flowrec.ProtoTCP,
			Web:        flowrec.WebTLS,
			ServerName: names[rng.Intn(len(names))],
			NameSrc:    flowrec.NameSNI,
			Start:      testDay.Add(time.Duration(rng.Intn(24*3600)) * time.Second),
			BytesDown:  uint64(rng.Intn(5 << 20)),
			BytesUp:    uint64(rng.Intn(1 << 20)),
		}
		switch rng.Intn(10) {
		case 0:
			r.Web = flowrec.WebQUIC
			r.Proto = flowrec.ProtoUDP
			r.QUICVer = quicVers[rng.Intn(len(quicVers))]
		case 1:
			r.Web = flowrec.WebP2P
			r.ServerName = ""
		case 2:
			r.Web = flowrec.WebDNS
			r.Proto = flowrec.ProtoUDP
		case 3:
			r.Web = flowrec.WebHTTP2
		}
		if rng.Bool(0.7) {
			r.RTTSamples = uint32(1 + rng.Intn(9))
			r.RTTMin = time.Duration(1+rng.Intn(200)) * time.Millisecond
		}
		out[i] = r
	}
	return out
}

// sliceSource serves a fixed record slice as a day source, handing the
// callback a reused buffer record exactly like the store decoder does
// — any aliasing bug in the shard fan-out shows up as corruption.
type sliceSource struct{ recs []flowrec.Record }

func (s sliceSource) Records(day time.Time, fn func(*flowrec.Record)) error {
	if len(s.recs) == 0 {
		return ErrNoData
	}
	var buf flowrec.Record
	for i := range s.recs {
		buf = s.recs[i]
		fn(&buf)
	}
	return nil
}

func canon(t *testing.T, agg *DayAgg) []byte {
	t.Helper()
	b, err := CanonicalBytes(agg)
	if err != nil {
		t.Fatalf("CanonicalBytes: %v", err)
	}
	return b
}

func foldSerial(recs []flowrec.Record) *DayAgg {
	a := NewAggregator(testDay, nil)
	for i := range recs {
		a.Add(&recs[i])
	}
	return a.Result()
}

// TestShardMergeEquivalence is the tentpole property: for shards in
// {1, 2, 3, 8}, the sharded aggregation is byte-identical to the
// serial fold, across several generated days.
func TestShardMergeEquivalence(t *testing.T) {
	for _, seed := range []uint64{1, 7, 42} {
		recs := genDayRecords(seed, 4000)
		want := canon(t, foldSerial(recs))
		for _, k := range []int{1, 2, 3, 8} {
			agg, err := shardDay(context.Background(), sliceSource{recs}, testDay, nil, k, nil, 0, false, nil)
			if err != nil {
				t.Fatalf("seed %d shards %d: %v", seed, k, err)
			}
			if got := canon(t, agg); !bytes.Equal(got, want) {
				t.Errorf("seed %d: %d-shard aggregate differs from serial fold", seed, k)
			}
		}
	}
}

// TestShardedRunReport drives the sharding through the public
// RunReport surface, auto-resolution included.
func TestShardedRunReport(t *testing.T) {
	recs := genDayRecords(3, 3000)
	want := canon(t, foldSerial(recs))
	for _, k := range []int{0, 2, 5} {
		aggs, dayErrs, err := RunReport(context.Background(), sliceSource{recs},
			[]time.Time{testDay}, nil, RunConfig{Workers: 2, ShardsPerDay: k})
		if err != nil || len(dayErrs) > 0 {
			t.Fatalf("shards %d: err=%v dayErrs=%v", k, err, dayErrs)
		}
		if len(aggs) != 1 {
			t.Fatalf("shards %d: %d aggs", k, len(aggs))
		}
		if got := canon(t, aggs[0]); !bytes.Equal(got, want) {
			t.Errorf("ShardsPerDay=%d differs from serial fold", k)
		}
	}
}

// shardPartials splits recs over k aggregators by client-hash shard
// and returns the k partials.
func shardPartials(recs []flowrec.Record, k int) []*Partial {
	aggs := make([]*Aggregator, k)
	for i := range aggs {
		aggs[i] = NewAggregator(testDay, nil)
	}
	for i := range recs {
		aggs[recs[i].Shard(k)].Add(&recs[i])
	}
	parts := make([]*Partial, k)
	for i, a := range aggs {
		parts[i] = a.Partial()
	}
	return parts
}

// clonePartials deep-copies partials through gob, so destructive use
// of one copy cannot contaminate another merge order.
func clonePartials(t *testing.T, parts []*Partial) []*Partial {
	t.Helper()
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(parts); err != nil {
		t.Fatalf("encode partials: %v", err)
	}
	var out []*Partial
	if err := gob.NewDecoder(&buf).Decode(&out); err != nil {
		t.Fatalf("decode partials: %v", err)
	}
	return out
}

// TestMergeOrderInsensitive merges the same shard partials under
// random permutations and groupings; every order must finish to the
// same canonical bytes, and must match the serial fold.
func TestMergeOrderInsensitive(t *testing.T) {
	const k = 5
	recs := genDayRecords(11, 3000)
	want := canon(t, foldSerial(recs))
	parts := shardPartials(recs, k)

	rng := stats.NewRand(99)
	for trial := 0; trial < 6; trial++ {
		perm := []int{0, 1, 2, 3, 4}
		for i := len(perm) - 1; i > 0; i-- {
			j := rng.Intn(i + 1)
			perm[i], perm[j] = perm[j], perm[i]
		}
		cp := clonePartials(t, parts)
		merged := NewPartial(testDay)
		for _, i := range perm {
			if err := merged.Merge(cp[i]); err != nil {
				t.Fatal(err)
			}
		}
		if got := canon(t, merged.Finish()); !bytes.Equal(got, want) {
			t.Errorf("trial %d: permutation %v differs from serial fold", trial, perm)
		}
	}
}

// TestMergeAssociative checks (a·b)·c == a·(b·c) for shard partials —
// the property that lets the reduce tree take any shape.
func TestMergeAssociative(t *testing.T) {
	recs := genDayRecords(23, 2400)
	parts := shardPartials(recs, 3)

	left := clonePartials(t, parts)
	lm := NewPartial(testDay)
	for _, p := range []*Partial{left[0], left[1]} {
		if err := lm.Merge(p); err != nil {
			t.Fatal(err)
		}
	}
	if err := lm.Merge(left[2]); err != nil {
		t.Fatal(err)
	}

	right := clonePartials(t, parts)
	rm := NewPartial(testDay)
	if err := rm.Merge(right[1]); err != nil {
		t.Fatal(err)
	}
	if err := rm.Merge(right[2]); err != nil {
		t.Fatal(err)
	}
	outer := NewPartial(testDay)
	if err := outer.Merge(right[0]); err != nil {
		t.Fatal(err)
	}
	if err := outer.Merge(rm); err != nil {
		t.Fatal(err)
	}

	if !bytes.Equal(canon(t, lm.Finish()), canon(t, outer.Finish())) {
		t.Error("(a·b)·c != a·(b·c)")
	}
}

// TestMergeIdentityAndDayMismatch covers the monoid identity and the
// one refusal Merge makes.
func TestMergeIdentityAndDayMismatch(t *testing.T) {
	recs := genDayRecords(5, 500)
	parts := shardPartials(recs, 1)
	want := canon(t, foldSerial(recs))

	id := NewPartial(testDay)
	if err := id.Merge(parts[0]); err != nil {
		t.Fatal(err)
	}
	if got := canon(t, id.Finish()); !bytes.Equal(got, want) {
		t.Error("identity · p differs from p")
	}

	p := NewPartial(testDay)
	q := NewPartial(testDay.AddDate(0, 0, 1))
	q.Agg.Flows = 1
	if err := p.Merge(q); err == nil {
		t.Error("merging different days should fail")
	}
}

// TestPartialGobRoundTrip is the agg-cache property: partials that
// went through gob (as the partial cache stores them) must merge to
// the same bytes as live partials.
func TestPartialGobRoundTrip(t *testing.T) {
	recs := genDayRecords(17, 3000)
	want := canon(t, foldSerial(recs))
	parts := clonePartials(t, shardPartials(recs, 4))
	agg, err := MergePartials(testDay, parts)
	if err != nil {
		t.Fatal(err)
	}
	if got := canon(t, agg); !bytes.Equal(got, want) {
		t.Error("gob round-tripped partials merge differently")
	}
}

// TestInputOrderMetamorphic shuffles a day's records under a fixed
// stats.Rand seed and asserts the aggregate is unchanged, byte for
// byte. Two DayAgg paths depend on more than plain commutative sums
// for this to hold: the RTT reservoir keeps the bottom-k by a
// seed-free hash of flow identity (not arrival order), and every map
// key set is a pure function of the record set. Everything else is
// counters, which commute trivially.
func TestInputOrderMetamorphic(t *testing.T) {
	recs := genDayRecords(31, 5000)
	want := canon(t, foldSerial(recs))
	for _, seed := range []uint64{1, 2, 3} {
		shuffled := append([]flowrec.Record(nil), recs...)
		rng := stats.NewRand(seed)
		for i := len(shuffled) - 1; i > 0; i-- {
			j := rng.Intn(i + 1)
			shuffled[i], shuffled[j] = shuffled[j], shuffled[i]
		}
		if got := canon(t, foldSerial(shuffled)); !bytes.Equal(got, want) {
			t.Errorf("shuffle seed %d changed the aggregate", seed)
		}
		// And the sharded path over the shuffle too.
		agg, err := shardDay(context.Background(), sliceSource{shuffled}, testDay, nil, 3, nil, 0, false, nil)
		if err != nil {
			t.Fatal(err)
		}
		if got := canon(t, agg); !bytes.Equal(got, want) {
			t.Errorf("shuffle seed %d changed the 3-shard aggregate", seed)
		}
	}
}

// TestRTTPartialOverCap forces both sides of a merge past the
// reservoir cap and checks the merged bottom-k equals the bottom-k of
// the union — with a tiny cap so the trim path actually runs.
func TestRTTPartialOverCap(t *testing.T) {
	const cap = 8
	all := newRTTReservoir(cap)
	left := newRTTReservoir(cap)
	right := newRTTReservoir(cap)
	rng := stats.NewRand(77)
	for i := 0; i < 100; i++ {
		s := rttSample{hash: rng.Uint64(), ms: float64(rng.Intn(300))}
		all.add(s)
		if i%2 == 0 {
			left.add(s)
		} else {
			right.add(s)
		}
	}
	want := all.partial()
	lp, rp := left.partial(), right.partial()
	lp.merge(rp)
	if lp.Seen != want.Seen {
		t.Errorf("Seen = %d, want %d", lp.Seen, want.Seen)
	}
	if fmt.Sprint(lp.Hash) != fmt.Sprint(want.Hash) || fmt.Sprint(lp.Ms) != fmt.Sprint(want.Ms) {
		t.Errorf("merged bottom-%d differs from union bottom-%d", cap, cap)
	}
}

// TestResolveShards pins the auto-sizing contract.
func TestResolveShards(t *testing.T) {
	if got := ResolveShards(4, 1); got != 4 {
		t.Errorf("explicit 4 -> %d", got)
	}
	if got := ResolveShards(1, 1); got != 1 {
		t.Errorf("explicit 1 -> %d", got)
	}
	if got := ResolveShards(0, 1<<20); got != 1 {
		t.Errorf("auto with huge worker pool -> %d, want 1", got)
	}
	if got := ResolveShards(0, 1); got < 1 || got > maxAutoShards {
		t.Errorf("auto -> %d, want within [1,%d]", got, maxAutoShards)
	}
}

// TestHourlyRatioEmpty pins the empty-input contract: no aggregates,
// no curve — not 144 zero points and not NaN.
func TestHourlyRatioEmpty(t *testing.T) {
	if pts := HourlyRatio(nil, nil, flowrec.TechADSL, 25); len(pts) != 0 {
		t.Errorf("HourlyRatio(nil, nil) = %d points, want 0", len(pts))
	}
}

// TestDailyVolumeDistEmpty: zero active days must quantile to 0, not
// NaN, so report tables never render NaN cells.
func TestDailyVolumeDistEmpty(t *testing.T) {
	dist := DailyVolumeDist(nil, flowrec.TechADSL, Down)
	if m := dist.Median(); m != 0 {
		t.Errorf("empty Median = %v, want 0", m)
	}
	if m := dist.Mean(); m != 0 {
		t.Errorf("empty Mean = %v, want 0", m)
	}
}
