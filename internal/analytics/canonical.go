package analytics

// Canonical, byte-stable encoding of a DayAgg. gob encodes Go maps in
// iteration order, which is randomized — two structurally equal
// aggregates gob-encode to different bytes. The merge-equivalence and
// golden-figure tests need "byte-identical" to mean something, so
// CanonicalBytes projects a DayAgg onto a fully sorted, slice-only
// image first and gob-encodes that. Nil and empty maps canonicalise
// identically, so a gob round-trip (which decodes empty maps as nil)
// does not change an aggregate's canonical bytes.

import (
	"bytes"
	"encoding/gob"
	"sort"

	"repro/internal/classify"
	"repro/internal/wire"
)

type canonSvcUse struct {
	Svc      classify.Service
	Down, Up uint64
}

type canonSub struct {
	ID     uint32
	Tech   uint8
	Flows  int
	Down   uint64
	Up     uint64
	PerSvc []canonSvcUse
}

type canonKV struct {
	Key string
	Val uint64
}

type canonSvcBytes struct {
	Svc classify.Service
	Val uint64
}

type canonRTT struct {
	Svc classify.Service
	Ms  []float64
}

type canonIP struct {
	Addr     wire.Addr
	Bytes    uint64
	Services []classify.Service
}

type canonDomain struct {
	Svc     classify.Service
	Domains []canonKV
}

// CanonicalVersion is the canonical-encoding schema epoch. Version 2
// marks the DayAgg that can carry sketches: Sketches, like Cols, is
// deliberately excluded from the projection (approximation state never
// participates in byte-identity), and the explicit version field makes
// encodings from different epochs compare unequal instead of
// accidentally equal.
const CanonicalVersion = 2

type canonAgg struct {
	Version      int
	Day          int64 // unix seconds, UTC midnight
	Subs         []canonSub
	ProtoBytes   []uint64
	DownBins     [][]uint64
	ServiceBytes []canonSvcBytes
	RTT          []canonRTT
	ServerIPs    []canonIP
	DomainBytes  []canonDomain
	QUICVersions []canonKV
	TotalDown    uint64
	TotalUp      uint64
	Flows        uint64
}

func sortedServices[V any](m map[classify.Service]V) []classify.Service {
	keys := make([]classify.Service, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })
	return keys
}

// CanonicalBytes returns a deterministic encoding of the aggregate:
// structurally equal DayAggs yield equal bytes, on every run, in any
// map iteration order. Used wherever "byte-identical aggregates" is
// asserted — the K-shard merge-equivalence property, the golden
// corpus — and cheap enough to run on every CI aggregate.
func CanonicalBytes(d *DayAgg) ([]byte, error) {
	c := canonAgg{
		Version:    CanonicalVersion,
		Day:        d.Day.Unix(),
		ProtoBytes: d.ProtoBytes[:],
		TotalDown:  d.TotalDown,
		TotalUp:    d.TotalUp,
		Flows:      d.Flows,
	}
	for t := range d.DownBins {
		c.DownBins = append(c.DownBins, d.DownBins[t][:])
	}

	subIDs := make([]uint32, 0, len(d.Subs))
	for id := range d.Subs {
		subIDs = append(subIDs, id)
	}
	sort.Slice(subIDs, func(i, j int) bool { return subIDs[i] < subIDs[j] })
	for _, id := range subIDs {
		sd := d.Subs[id]
		cs := canonSub{ID: id, Tech: uint8(sd.Tech), Flows: sd.Flows, Down: sd.Down, Up: sd.Up}
		for _, svc := range sortedServices(sd.PerSvc) {
			use := sd.PerSvc[svc]
			cs.PerSvc = append(cs.PerSvc, canonSvcUse{Svc: svc, Down: use.Down, Up: use.Up})
		}
		c.Subs = append(c.Subs, cs)
	}

	for _, svc := range sortedServices(d.ServiceBytes) {
		c.ServiceBytes = append(c.ServiceBytes, canonSvcBytes{Svc: svc, Val: d.ServiceBytes[svc]})
	}
	for _, svc := range sortedServices(d.RTTMinMs) {
		c.RTT = append(c.RTT, canonRTT{Svc: svc, Ms: d.RTTMinMs[svc]})
	}

	addrs := make([]wire.Addr, 0, len(d.ServerIPs))
	for a := range d.ServerIPs {
		addrs = append(addrs, a)
	}
	sort.Slice(addrs, func(i, j int) bool { return bytes.Compare(addrs[i][:], addrs[j][:]) < 0 })
	for _, a := range addrs {
		info := d.ServerIPs[a]
		ci := canonIP{Addr: a, Bytes: info.Bytes}
		for _, svc := range sortedServices(info.Services) {
			if info.Services[svc] {
				ci.Services = append(ci.Services, svc)
			}
		}
		c.ServerIPs = append(c.ServerIPs, ci)
	}

	for _, svc := range sortedServices(d.DomainBytes) {
		doms := d.DomainBytes[svc]
		cd := canonDomain{Svc: svc}
		names := make([]string, 0, len(doms))
		for n := range doms {
			names = append(names, n)
		}
		sort.Strings(names)
		for _, n := range names {
			cd.Domains = append(cd.Domains, canonKV{Key: n, Val: doms[n]})
		}
		c.DomainBytes = append(c.DomainBytes, cd)
	}

	vers := make([]string, 0, len(d.QUICVersions))
	for v := range d.QUICVersions {
		vers = append(vers, v)
	}
	sort.Strings(vers)
	for _, v := range vers {
		c.QUICVersions = append(c.QUICVersions, canonKV{Key: v, Val: d.QUICVersions[v]})
	}

	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(&c); err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}
