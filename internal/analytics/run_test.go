package analytics

import (
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/flowrec"
)

// TestRunBoundedWorkers verifies Run uses a fixed worker pool: with W
// workers over many days, no more than W aggregations run at once —
// and, regression for the goroutine-per-day version, no more than W+1
// goroutines are ever created for the work.
func TestRunBoundedWorkers(t *testing.T) {
	const workers, nDays = 3, 64
	var days []time.Time
	for i := 0; i < nDays; i++ {
		days = append(days, testDay.AddDate(0, 0, i))
	}
	var inFlight, peak atomic.Int64
	src := FuncSource(func(day time.Time, fn func(*flowrec.Record)) error {
		cur := inFlight.Add(1)
		defer inFlight.Add(-1)
		for {
			p := peak.Load()
			if cur <= p || peak.CompareAndSwap(p, cur) {
				break
			}
		}
		time.Sleep(time.Millisecond) // widen the overlap window
		fn(mkRec(1, flowrec.TechADSL, "example.org", 1000, 100))
		return nil
	})
	aggs, err := Run(src, days, nil, workers)
	if err != nil {
		t.Fatal(err)
	}
	if len(aggs) != nDays {
		t.Fatalf("aggregated %d days, want %d", len(aggs), nDays)
	}
	if p := peak.Load(); p > workers {
		t.Errorf("peak concurrent aggregations = %d, want <= %d", p, workers)
	}
}

// TestRunConcurrentCallers runs several Run invocations over the same
// source at once — the -race guard for stage one under contention.
func TestRunConcurrentCallers(t *testing.T) {
	var days []time.Time
	for i := 0; i < 8; i++ {
		days = append(days, testDay.AddDate(0, 0, i))
	}
	src := FuncSource(func(day time.Time, fn func(*flowrec.Record)) error {
		for s := uint32(1); s <= 20; s++ {
			fn(mkRec(s, flowrec.TechADSL, "example.org", 50000, 10000))
		}
		return nil
	})
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			aggs, err := Run(src, days, nil, 3)
			if err != nil {
				t.Error(err)
				return
			}
			if len(aggs) != len(days) {
				t.Errorf("got %d aggs, want %d", len(aggs), len(days))
			}
		}()
	}
	wg.Wait()
}

// TestRunSkipsOutageDays keeps the probe-outage contract under the
// pool implementation: ErrNoData days leave gaps, not failures.
func TestRunSkipsOutageDays(t *testing.T) {
	var days []time.Time
	for i := 0; i < 6; i++ {
		days = append(days, testDay.AddDate(0, 0, i))
	}
	src := FuncSource(func(day time.Time, fn func(*flowrec.Record)) error {
		if day.Day()%2 == 0 {
			return ErrNoData
		}
		fn(mkRec(1, flowrec.TechADSL, "example.org", 1000, 100))
		return nil
	})
	aggs, err := Run(src, days, nil, 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(aggs) != 3 {
		t.Fatalf("got %d aggs, want 3 (odd days only)", len(aggs))
	}
	for i := 1; i < len(aggs); i++ {
		if !aggs[i-1].Day.Before(aggs[i].Day) {
			t.Errorf("aggs not sorted: %v before %v", aggs[i-1].Day, aggs[i].Day)
		}
	}
}
