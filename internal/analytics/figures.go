package analytics

import (
	"sort"
	"time"

	"repro/internal/asn"
	"repro/internal/classify"
	"repro/internal/flowrec"
	"repro/internal/stats"
)

// Stage two: figure-level computations over slices of per-day
// aggregates. Each function names the paper figure it regenerates.

// Dir selects a traffic direction.
type Dir uint8

// Directions.
const (
	Down Dir = iota
	Up
)

// String names the direction.
func (d Dir) String() string {
	if d == Up {
		return "upload"
	}
	return "download"
}

// techIndex maps a technology to 0 (ADSL) / 1 (FTTH).
func techIndex(t flowrec.AccessTech) int {
	if t == flowrec.TechFTTH {
		return 1
	}
	return 0
}

// --- Figure 2: CCDF of per-active-subscriber daily traffic ---------------

// DailyVolumeDist builds the distribution of daily traffic per active
// subscriber over the given days, for one technology and direction —
// the ingredient of Figure 2's CCDFs.
func DailyVolumeDist(aggs []*DayAgg, tech flowrec.AccessTech, dir Dir) *stats.ECDF {
	var e stats.ECDF
	for _, agg := range aggs {
		for _, sd := range agg.Subs {
			if sd.Tech != tech || !sd.Active() {
				continue
			}
			v := sd.Down
			if dir == Up {
				v = sd.Up
			}
			e.Add(float64(v))
		}
	}
	return &e
}

// --- Figure 3: average per-subscription daily traffic ---------------------

// MonthlyMean is one month of Figure 3: the mean daily bytes per
// monitored subscription, split by technology and direction.
type MonthlyMean struct {
	Month time.Time
	// [tech][dir] mean bytes; NaN-free: months with no subscribers of
	// a tech report 0.
	Mean [2][2]float64
	Days int
}

// MonthlySeries reduces day aggregates to Figure 3's monthly series.
func MonthlySeries(aggs []*DayAgg) []MonthlyMean {
	type acc struct {
		sum  [2][2]float64
		subs [2]int
		days int
	}
	byMonth := make(map[time.Time]*acc)
	for _, agg := range aggs {
		m := asn.MonthStart(agg.Day)
		a := byMonth[m]
		if a == nil {
			a = &acc{}
			byMonth[m] = a
		}
		a.days++
		for _, sd := range agg.Subs {
			ti := techIndex(sd.Tech)
			a.sum[ti][Down] += float64(sd.Down)
			a.sum[ti][Up] += float64(sd.Up)
			a.subs[ti]++
		}
	}
	out := make([]MonthlyMean, 0, len(byMonth))
	for m, a := range byMonth {
		mm := MonthlyMean{Month: m, Days: a.days}
		for ti := 0; ti < 2; ti++ {
			if a.subs[ti] > 0 {
				mm.Mean[ti][Down] = a.sum[ti][Down] / float64(a.subs[ti])
				mm.Mean[ti][Up] = a.sum[ti][Up] / float64(a.subs[ti])
			}
		}
		out = append(out, mm)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Month.Before(out[j].Month) })
	return out
}

// --- Figure 4: hour-of-day growth ratio -----------------------------------

// HourlyRatio computes, per 10-minute bin, the ratio of mean
// per-subscriber downloaded bytes between two periods (numerator over
// denominator), Bézier-smoothed like the paper's plot. Bins where the
// denominator is empty carry a ratio of 0. With no aggregates in
// either period there is no curve at all: the result is empty, never
// a smoothed row of NaN or zero points masquerading as data.
func HourlyRatio(num, den []*DayAgg, tech flowrec.AccessTech, smooth int) []stats.Point {
	if len(num) == 0 && len(den) == 0 {
		return nil
	}
	perBin := func(aggs []*DayAgg) [TimeBinCount]float64 {
		var bins [TimeBinCount]float64
		var subDays float64
		ti := techIndex(tech)
		for _, agg := range aggs {
			for b := 0; b < TimeBinCount; b++ {
				bins[b] += float64(agg.DownBins[ti][b])
			}
			a, f := agg.ObservedSubs()
			if ti == 0 {
				subDays += float64(a)
			} else {
				subDays += float64(f)
			}
		}
		if subDays > 0 {
			for b := range bins {
				bins[b] /= subDays
			}
		}
		return bins
	}
	nb, db := perBin(num), perBin(den)
	curve := make([]stats.Point, TimeBinCount)
	for b := 0; b < TimeBinCount; b++ {
		hour := float64(b) / 6
		r := 0.0
		if db[b] > 0 {
			r = nb[b] / db[b]
		}
		curve[b] = stats.Point{X: hour, Y: r}
	}
	if smooth > 1 {
		return stats.Bezier(curve, smooth)
	}
	return curve
}

// --- Figures 5, 6, 7, 9: service popularity and volumes -------------------

// SvcDayPoint is one day of a service's story: the share of active
// subscribers using it and the mean daily volume per using subscriber,
// split by technology.
type SvcDayPoint struct {
	Day time.Time
	// PopPct[tech] is the percentage of that technology's active
	// subscribers that visited the service (per the section 4.1
	// byte threshold).
	PopPct [2]float64
	// VolPerUser[tech] is mean exchanged bytes (down+up) per visiting
	// subscriber.
	VolPerUser [2]float64
	// DownPerUser[tech] is the download-only mean.
	DownPerUser [2]float64
}

// ServiceSeries extracts one service's daily series (Figures 6, 7 and,
// restricted to 2014, Figure 9).
func ServiceSeries(aggs []*DayAgg, svc classify.Service) []SvcDayPoint {
	thr := classify.VisitThreshold(svc)
	out := make([]SvcDayPoint, 0, len(aggs))
	for _, agg := range aggs {
		p := SvcDayPoint{Day: agg.Day}
		var active [2]float64
		var users [2]float64
		var vol, down [2]float64
		for _, sd := range agg.Subs {
			if !sd.Active() {
				continue
			}
			ti := techIndex(sd.Tech)
			active[ti]++
			use := sd.PerSvc[svc]
			if use == nil || use.Down+use.Up < thr {
				continue
			}
			users[ti]++
			vol[ti] += float64(use.Down + use.Up)
			down[ti] += float64(use.Down)
		}
		for ti := 0; ti < 2; ti++ {
			if active[ti] > 0 {
				p.PopPct[ti] = 100 * users[ti] / active[ti]
			}
			if users[ti] > 0 {
				p.VolPerUser[ti] = vol[ti] / users[ti]
				p.DownPerUser[ti] = down[ti] / users[ti]
			}
		}
		out = append(out, p)
	}
	return out
}

// ShareDayPoint is one day of Figure 5b: a service's share of all
// downloaded bytes.
type ShareDayPoint struct {
	Day      time.Time
	SharePct float64
}

// ServiceByteShare extracts a service's share of downloaded bytes per
// day (Figure 5b).
func ServiceByteShare(aggs []*DayAgg, svc classify.Service) []ShareDayPoint {
	out := make([]ShareDayPoint, 0, len(aggs))
	for _, agg := range aggs {
		p := ShareDayPoint{Day: agg.Day}
		if agg.TotalDown > 0 {
			p.SharePct = 100 * float64(agg.ServiceBytes[svc]) / float64(agg.TotalDown)
		}
		out = append(out, p)
	}
	return out
}

// --- Figure 8: web protocol breakdown --------------------------------------

// webProtos are the protocols of Figure 8, in stacking order.
var webProtos = []flowrec.WebProto{
	flowrec.WebHTTP, flowrec.WebQUIC, flowrec.WebTLS,
	flowrec.WebHTTP2, flowrec.WebSPDY, flowrec.WebFBZero,
}

// WebProtos exposes Figure 8's protocol list for reports.
func WebProtos() []flowrec.WebProto { return append([]flowrec.WebProto(nil), webProtos...) }

// ProtoSharePoint is one month of Figure 8.
type ProtoSharePoint struct {
	Month time.Time
	// SharePct maps each web protocol to its percentage of web bytes.
	SharePct map[flowrec.WebProto]float64
}

// ProtocolShares reduces aggregates to monthly web-protocol shares
// (Figure 8). Only web protocols participate; P2P/DNS/other are not
// part of the web mix.
func ProtocolShares(aggs []*DayAgg) []ProtoSharePoint {
	type acc struct {
		bytes map[flowrec.WebProto]uint64
	}
	byMonth := make(map[time.Time]*acc)
	for _, agg := range aggs {
		m := asn.MonthStart(agg.Day)
		a := byMonth[m]
		if a == nil {
			a = &acc{bytes: make(map[flowrec.WebProto]uint64)}
			byMonth[m] = a
		}
		for _, p := range webProtos {
			a.bytes[p] += agg.ProtoBytes[p]
		}
	}
	out := make([]ProtoSharePoint, 0, len(byMonth))
	for m, a := range byMonth {
		var total uint64
		for _, v := range a.bytes {
			total += v
		}
		p := ProtoSharePoint{Month: m, SharePct: make(map[flowrec.WebProto]float64, len(webProtos))}
		for _, proto := range webProtos {
			if total > 0 {
				p.SharePct[proto] = 100 * float64(a.bytes[proto]) / float64(total)
			}
		}
		out = append(out, p)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Month.Before(out[j].Month) })
	return out
}

// --- Figure 10: RTT CDFs ----------------------------------------------------

// RTTDist pools the per-flow minimum RTT samples (milliseconds) of a
// service over the given days (Figure 10 uses one month per curve).
func RTTDist(aggs []*DayAgg, svc classify.Service) *stats.ECDF {
	var e stats.ECDF
	for _, agg := range aggs {
		e.AddAll(agg.RTTMinMs[svc])
	}
	return &e
}

// --- Figure 11: infrastructure evolution ------------------------------------

// FootprintPoint is one day of Figure 11a-c: how many distinct server
// addresses a service used, split into dedicated (only that service)
// and shared (seen with other services too).
type FootprintPoint struct {
	Day       time.Time
	Dedicated int
	Shared    int
}

// ServerFootprint computes the per-day address inventory of a service.
func ServerFootprint(aggs []*DayAgg, svc classify.Service) []FootprintPoint {
	out := make([]FootprintPoint, 0, len(aggs))
	for _, agg := range aggs {
		p := FootprintPoint{Day: agg.Day}
		for _, info := range agg.ServerIPs {
			if !info.Services[svc] {
				continue
			}
			if len(info.Services) > 1 {
				p.Shared++
			} else {
				p.Dedicated++
			}
		}
		out = append(out, p)
	}
	return out
}

// ASNPoint is one day of Figure 11d-f: the service's address count per
// organisation.
type ASNPoint struct {
	Day   time.Time
	ByOrg map[asn.Org]int
}

// ASNBreakdown resolves a service's daily addresses against the RIB of
// their epoch.
func ASNBreakdown(aggs []*DayAgg, svc classify.Service, ribs *asn.RIBSet) []ASNPoint {
	out := make([]ASNPoint, 0, len(aggs))
	for _, agg := range aggs {
		p := ASNPoint{Day: agg.Day, ByOrg: make(map[asn.Org]int)}
		for addr, info := range agg.ServerIPs {
			if !info.Services[svc] {
				continue
			}
			p.ByOrg[ribs.OrgLookup(agg.Day, addr)]++
		}
		out = append(out, p)
	}
	return out
}

// DomainPoint is one month of Figure 11g-i: byte share per
// second-level domain.
type DomainPoint struct {
	Month    time.Time
	SharePct map[string]float64
}

// DomainShares computes a service's monthly traffic share per
// second-level domain.
func DomainShares(aggs []*DayAgg, svc classify.Service) []DomainPoint {
	byMonth := make(map[time.Time]map[string]uint64)
	for _, agg := range aggs {
		m := asn.MonthStart(agg.Day)
		acc := byMonth[m]
		if acc == nil {
			acc = make(map[string]uint64)
			byMonth[m] = acc
		}
		for dom, bytes := range agg.DomainBytes[svc] {
			acc[dom] += bytes
		}
	}
	out := make([]DomainPoint, 0, len(byMonth))
	for m, acc := range byMonth {
		var total uint64
		for _, v := range acc {
			total += v
		}
		p := DomainPoint{Month: m, SharePct: make(map[string]float64, len(acc))}
		for dom, v := range acc {
			if total > 0 {
				p.SharePct[dom] = 100 * float64(v) / float64(total)
			}
		}
		out = append(out, p)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Month.Before(out[j].Month) })
	return out
}

// --- Section 3 headline: active subscriber share ----------------------------

// ActivePoint is one day's activity summary.
type ActivePoint struct {
	Day       time.Time
	ActivePct float64
	Active    int
	Observed  int
}

// ActiveSeries computes the share of observed subscriptions passing
// the section 3 activity filter, per day.
func ActiveSeries(aggs []*DayAgg) []ActivePoint {
	out := make([]ActivePoint, 0, len(aggs))
	for _, agg := range aggs {
		aA, aF := agg.ActiveSubs()
		oA, oF := agg.ObservedSubs()
		p := ActivePoint{Day: agg.Day, Active: aA + aF, Observed: oA + oF}
		if p.Observed > 0 {
			p.ActivePct = 100 * float64(p.Active) / float64(p.Observed)
		}
		out = append(out, p)
	}
	return out
}
