package analytics

import "repro/internal/flowrec"

// Column requirements of stage one. Each experiment declares the
// column set its aggregates actually consume; a columnar (v2) store
// then decodes only those columns and never touches the rest. The
// sets here are a correctness contract, not a hint: the aggregator
// gates its accumulators on the same set (see NewAggregatorCols), so
// a v1 store — which always decodes every field — produces
// byte-identical aggregates to a pruned v2 scan. An under-declared
// set therefore fails loudly (a missing accumulator) rather than
// silently aggregating zeros.

// BaseAggColumns is what every aggregate needs regardless of gating:
// totals and protocol/service byte shares (BytesUp/BytesDown, Web,
// ServerName for classification, Tech for the per-tech splits) plus
// Client, which the shard fan-out hashes. NormalizeCols always adds
// these.
const BaseAggColumns = flowrec.ColumnSet(1<<flowrec.ColClient |
	1<<flowrec.ColTech |
	1<<flowrec.ColWeb |
	1<<flowrec.ColServerName |
	1<<flowrec.ColBytesUp |
	1<<flowrec.ColBytesDown)

// Per-consumer sets, named for what they unlock in the DayAgg.
const (
	// ColsSubscribers unlocks the per-subscription map (Subs):
	// active-subscriber counts, per-sub volumes, per-sub service usage.
	// Figures 2, 3, 5, 6, 7, 9, the active series and the weekly
	// extension all live off it.
	ColsSubscribers = BaseAggColumns | 1<<flowrec.ColSubID

	// ColsProtocols is the protocol byte-share view (Figure 8):
	// nothing beyond the base.
	ColsProtocols = BaseAggColumns

	// ColsTimeBins adds the 10-minute down-bins (Figure 4); the figure
	// also reads observed-subscriber counts, hence ColsSubscribers.
	ColsTimeBins = ColsSubscribers | 1<<flowrec.ColStart

	// ColsRTT unlocks the per-service RTT reservoirs (Figure 10). The
	// deterministic bottom-k sample hashes flow identity — Client,
	// Server, ports, SubID, Start (flowSampleHash) — so every hashed
	// field must be decoded for the sample, and hence the figure, to be
	// byte-identical across formats.
	ColsRTT = BaseAggColumns |
		1<<flowrec.ColServer |
		1<<flowrec.ColCliPort |
		1<<flowrec.ColSrvPort |
		1<<flowrec.ColSubID |
		1<<flowrec.ColStart |
		1<<flowrec.ColRTTMin |
		1<<flowrec.ColRTTSamples

	// ColsInfra unlocks the server-address inventory and the domain
	// drill-down (Figure 11).
	ColsInfra = BaseAggColumns | 1<<flowrec.ColServer

	// ColsQUIC unlocks the QUIC version counters (the quicver
	// extension).
	ColsQUIC = BaseAggColumns | 1<<flowrec.ColQUICVer
)

// AggregateColumns is the union every Aggregator accumulator needs —
// the widest set stage one ever asks a store for. Still 14 of 22
// columns: ports aside (the RTT sample hash), no aggregate reads
// Proto, NameSrc, Duration, packet counts, ALPN, or the RTT avg/max.
const AggregateColumns = ColsSubscribers | ColsTimeBins | ColsRTT | ColsInfra | ColsQUIC

// NormalizeCols maps a requested column set onto what the aggregator
// will actually be fed: zero (no preference) means every column, and
// any explicit set is widened by the base columns no aggregate can do
// without.
func NormalizeCols(cols flowrec.ColumnSet) flowrec.ColumnSet {
	if cols == 0 {
		return flowrec.AllColumns
	}
	return (cols | BaseAggColumns).Norm()
}
