package analytics

// Sharded stage one: one day's records fan out over K concurrent
// shard aggregators keyed by a hash of the anonymized client address
// (flowrec.ShardKey), and the K partials merge into a result
// byte-identical to the serial fold — the within-day parallelism the
// paper's Hadoop reduction provides, for the straggler case where
// days outnumber neither workers nor cores. Sharding by client keeps
// every record of a subscription on one shard, so per-subscription
// accumulators never straddle shards; the merge rules in merge.go
// make the grouping invisible in the output.

import (
	"context"
	"runtime"
	"sync"
	"time"

	"repro/internal/classify"
	"repro/internal/flowrec"
	"repro/internal/metrics"
)

// Sharding observability: merges performed, and how unbalanced the
// record fan-out was (worst shard's excess over the mean, percent —
// 0 is perfect balance).
var (
	mShardMerges    = metrics.GetCounter("analytics.shard_merges")
	mShardImbalance = metrics.GetGauge("analytics.shard_imbalance")
)

// maxAutoShards caps auto-sized sharding: past this the per-record
// fan-out cost outweighs any remaining parallelism.
const maxAutoShards = 16

// ResolveShards turns a RunConfig.ShardsPerDay setting into an
// effective shard count. Explicit values (>= 1) pass through.
// 0 auto-sizes to the cores the day-level pool leaves idle,
// GOMAXPROCS/workers — when days already saturate the machine the
// auto answer is 1 and the serial fold runs unchanged. The choice
// never affects results, only wall-clock: any K produces
// byte-identical aggregates.
func ResolveShards(shards, workers int) int {
	if shards >= 1 {
		return shards
	}
	if workers < 1 {
		workers = 1
	}
	k := runtime.GOMAXPROCS(0) / workers
	if k < 1 {
		k = 1
	}
	if k > maxAutoShards {
		k = maxAutoShards
	}
	return k
}

// shardBatch is the fan-out granularity: records are copied out of
// the source's reusable decode buffer into batches this long, so a
// channel hop is paid per batch, not per record.
const shardBatch = 512

// shardDay aggregates one day across shards concurrent aggregators
// and merges the partials. onPartials, when non-nil, sees the
// unmerged partials first (the cache hook) — unless the run spilled,
// in which case the in-memory partials are an incomplete set and the
// hook is skipped. cols is the run's column contract: the source scan
// projects to it, and the v2 store's block decode reuses the shard
// workers' parallelism budget (the fan-out consumer is otherwise the
// serial bottleneck). sp, when non-nil, bounds each shard worker's
// live memory: a worker over its budget share spills its partial and
// restarts empty.
func shardDay(ctx context.Context, src Source, day time.Time, cls *classify.Classifier, shards int, onPartials func(time.Time, []*Partial), cols flowrec.ColumnSet, sketch bool, sp *spiller) (*DayAgg, error) {
	if cls == nil {
		cls = classify.Default()
	}
	finals := make([]*Partial, shards)
	chans := make([]chan []flowrec.Record, shards)
	var wg sync.WaitGroup
	for i := range chans {
		chans[i] = make(chan []flowrec.Record, 4)
		wg.Add(1)
		go func(idx int, in <-chan []flowrec.Record) {
			defer wg.Done()
			a := NewAggregatorCols(day, cls, cols)
			if sketch {
				a.EnableSketches()
			}
			for batch := range in {
				for j := range batch {
					a.Add(&batch[j])
				}
				// Budget check per fan-out batch, not per record: the
				// estimate walk is O(services), a batch is 512 records.
				if sp.over(a) {
					sp.spill(a.Partial())
					a = NewAggregatorCols(day, cls, cols)
					if sketch {
						a.EnableSketches()
					}
				}
			}
			finals[idx] = a.Partial()
		}(i, chans[i])
	}

	counts := make([]uint64, shards)
	bufs := make([][]flowrec.Record, shards)
	flush := func(k int) {
		if len(bufs[k]) == 0 {
			return
		}
		chans[k] <- bufs[k]
		bufs[k] = nil
	}
	err := recordsCols(ctx, src, day, scanFor(cols, shards), func(r *flowrec.Record) {
		k := r.Shard(shards)
		counts[k]++
		if bufs[k] == nil {
			bufs[k] = make([]flowrec.Record, 0, shardBatch)
		}
		// Copy the record: the store decoder reuses its buffer, and
		// the shard aggregator reads it on another goroutine.
		bufs[k] = append(bufs[k], *r)
		if len(bufs[k]) == shardBatch {
			flush(k)
		}
	})
	// Drain and join the shard workers even on error — goroutines
	// must not outlive the call.
	for k := range chans {
		flush(k)
		close(chans[k])
	}
	wg.Wait()
	if err != nil {
		return nil, err
	}

	var total, max uint64
	for _, c := range counts {
		total += c
		if c > max {
			max = c
		}
	}
	if mean := float64(total) / float64(shards); mean > 0 {
		mShardImbalance.Set(int64((float64(max) - mean) / mean * 100))
	}

	if err := sp.firstErr(); err != nil {
		return nil, err
	}
	if sp.spilled() {
		// The in-memory finals are only the tail of each shard; the
		// partial-cache hook must not see an incomplete set.
		return sp.merge(day, finals)
	}
	if onPartials != nil {
		onPartials(day, finals)
	}
	return MergePartials(day, finals)
}

// MergePartials folds a day's shard partials into the final DayAgg —
// the stage-one reduce step, shared by the live sharded path and the
// agg cache's partial-replay path. The inputs are never mutated or
// aliased (Merge deep-copies), so cached partials stay reusable.
func MergePartials(day time.Time, parts []*Partial) (*DayAgg, error) {
	merged := NewPartial(day)
	for _, p := range parts {
		if err := merged.Merge(p); err != nil {
			return nil, err
		}
		mShardMerges.Inc()
	}
	return merged.Finish(), nil
}
