package analytics

// Multi-resolution rollups. Every figure so far is a fold over ~1,800
// per-day aggregates; the paper's headline results are 5-year trends,
// so the same days are re-folded by every query. A rollup is that fold
// done once per calendar window and persisted: week, month or year of
// days reduced through the Partial merge monoid (merge.go), plus a
// per-source-day row of the scalar counters the monthly/daily figures
// group by. The two layers answer different shapes of question:
//
//   - Rollup.Agg is the cross-day coarse merge — window totals, the
//     pooled RTT samples, and (in sketch mode) the window's mergeable
//     sketches. Day identity is gone; this is the "how big was 2016"
//     layer.
//   - Rollup.Stats keeps one small DayStat per source day, because
//     Figure 3 and Figure 8 group by *month* and ActiveSeries by day —
//     a year-grain merge would collapse exactly the axis those figures
//     plot. DayStats are ~200 bytes/day, so a year rollup still reads
//     in one file instead of ~365.
//
// The *FromStats folds reproduce the corresponding figures.go
// arithmetic exactly — same grouping, same accumulation order per day,
// same divisions — so in exact mode a figure computed from rollups is
// byte-identical to the flat day fold (asserted by the
// rollup-equivalence test tier). The one caveat: equality of the
// float64 means relies on byte sums staying below 2^53, where float64
// addition of integers is exact and order-free; at 2^53 bytes per month
// (~9 PB) both paths would drift together anyway.

import (
	"fmt"
	"sort"
	"time"

	"repro/internal/asn"
	"repro/internal/classify"
	"repro/internal/flowrec"
)

// Grain is a rollup resolution.
type Grain string

// Grains, coarsest last.
const (
	GrainWeek  Grain = "week"
	GrainMonth Grain = "month"
	GrainYear  Grain = "year"
)

// Grains lists the rollup grains coarsest-first — the order tier
// selection tries them in.
func Grains() []Grain { return []Grain{GrainYear, GrainMonth, GrainWeek} }

// WindowStart returns the start of the g-window containing day: the
// Monday of its ISO week, the first of its month, or January 1st.
func WindowStart(g Grain, day time.Time) time.Time {
	y, m, d := day.UTC().Date()
	day = time.Date(y, m, d, 0, 0, 0, 0, time.UTC)
	switch g {
	case GrainWeek:
		wd := (int(day.Weekday()) + 6) % 7 // Monday=0 … Sunday=6
		return day.AddDate(0, 0, -wd)
	case GrainMonth:
		return time.Date(y, m, 1, 0, 0, 0, 0, time.UTC)
	case GrainYear:
		return time.Date(y, 1, 1, 0, 0, 0, 0, time.UTC)
	}
	return day
}

// NextWindow returns the start of the window after start.
func NextWindow(g Grain, start time.Time) time.Time {
	switch g {
	case GrainWeek:
		return start.AddDate(0, 0, 7)
	case GrainMonth:
		return start.AddDate(0, 1, 0)
	case GrainYear:
		return start.AddDate(1, 0, 0)
	}
	return start.AddDate(0, 0, 1)
}

// DayStat is one source day's scalar row inside a rollup: exactly the
// counters the monthly and per-day series figures consume, kept at day
// resolution so a coarse rollup can still group by month or day.
type DayStat struct {
	Day time.Time
	// Observed / Active subscription counts per tech (0 ADSL, 1 FTTH).
	Observed [2]int
	Active   [2]int
	// SubDown/SubUp sum per-subscription daily bytes per tech — the
	// numerators of Figure 3's monthly means.
	SubDown [2]uint64
	SubUp   [2]uint64
	// ProtoBytes mirrors DayAgg.ProtoBytes (Figure 8's input).
	ProtoBytes [flowrec.WebProtoCount]uint64
	// Whole-day totals.
	TotalDown, TotalUp, Flows uint64
}

// NewDayStat projects one day aggregate onto its rollup row.
func NewDayStat(agg *DayAgg) DayStat {
	s := DayStat{
		Day:        agg.Day,
		ProtoBytes: agg.ProtoBytes,
		TotalDown:  agg.TotalDown,
		TotalUp:    agg.TotalUp,
		Flows:      agg.Flows,
	}
	for _, sd := range agg.Subs {
		ti := techIndex(sd.Tech)
		s.Observed[ti]++
		if sd.Active() {
			s.Active[ti]++
		}
		s.SubDown[ti] += sd.Down
		s.SubUp[ti] += sd.Up
	}
	return s
}

// Rollup is one persisted window: the manifest (Requested/SourceDays),
// the per-day stat rows, and the coarse cross-day merge.
type Rollup struct {
	Grain Grain
	// Start is the window's first calendar day.
	Start time.Time
	// Requested is the manifest: the exact day list this rollup folded,
	// gaps excluded at build time but grid preserved — a query with a
	// different stride or span must not reuse it (CoversExactly).
	Requested []time.Time
	// SourceDays are the requested days that actually had data.
	SourceDays []time.Time
	// Stats holds one row per source day, ascending.
	Stats []DayStat
	// Agg is the coarse merge of the source days, Day = Start. Its
	// RTTMinMs pools the source days' samples in day order; in sketch
	// mode it carries the window's merged SketchSet.
	Agg *DayAgg
}

// BuildRollup folds the day aggregates for one window. aggs must be
// ascending by day, each inside [start, NextWindow(g, start)), and be
// the aggregates of exactly the requested days that had data.
func BuildRollup(g Grain, start time.Time, requested []time.Time, aggs []*DayAgg) (*Rollup, error) {
	end := NextWindow(g, start)
	r := &Rollup{Grain: g, Start: start}
	for _, d := range requested {
		r.Requested = append(r.Requested, d.UTC().Truncate(24*time.Hour))
	}
	merged := NewPartial(start)
	for i, agg := range aggs {
		if agg.Day.Before(start) || !agg.Day.Before(end) {
			return nil, fmt.Errorf("analytics: day %s outside %s window %s",
				agg.Day.Format("2006-01-02"), g, start.Format("2006-01-02"))
		}
		if i > 0 && !aggs[i-1].Day.Before(agg.Day) {
			return nil, fmt.Errorf("analytics: rollup days not ascending at %s",
				agg.Day.Format("2006-01-02"))
		}
		r.SourceDays = append(r.SourceDays, agg.Day)
		r.Stats = append(r.Stats, NewDayStat(agg))
		// Cross-day merge: Merge only reads its argument and requires
		// equal days, so a shallow copy with Day forced to the window
		// start folds the day in without touching the original.
		shallow := *agg
		shallow.Day = start
		if err := merged.Merge(&Partial{Agg: &shallow}); err != nil {
			return nil, err
		}
	}
	r.Agg = merged.Finish()
	// Finish materialises RTTMinMs from reservoir partials, which the
	// shallow copies did not carry (reservoir state lives only in live
	// Partials). Pool the source days' samples directly, in day order —
	// the same sequence RTTDist sees folding the flat day list.
	r.Agg.RTTMinMs = make(map[classify.Service][]float64)
	for _, agg := range aggs {
		for svc, ms := range agg.RTTMinMs {
			r.Agg.RTTMinMs[svc] = append(r.Agg.RTTMinMs[svc], ms...)
		}
	}
	// In sketch mode the window drops the unbounded exact pools the
	// sketches summarise — RTT sample pools (t-digests), the server-IP
	// inventory (HLL) and per-domain bytes (SpaceSaving). That is the
	// compression half of the sketch trade: day aggregates stay exact
	// and full-width (they are the rebuild source), only the coarse
	// window compacts.
	if r.Agg.Sketches != nil {
		r.Agg.RTTMinMs = nil
		r.Agg.ServerIPs = nil
		r.Agg.DomainBytes = nil
	}
	return r, nil
}

// CoversExactly reports whether this rollup was built from exactly the
// given requested-day list — the manifest check that keeps a rollup
// from answering a query with a different stride or span.
func (r *Rollup) CoversExactly(days []time.Time) bool {
	if len(days) != len(r.Requested) {
		return false
	}
	for i, d := range days {
		y, m, dd := d.UTC().Date()
		if !time.Date(y, m, dd, 0, 0, 0, 0, time.UTC).Equal(r.Requested[i]) {
			return false
		}
	}
	return true
}

// MonthlyFromStats is MonthlySeries over rollup rows: identical
// grouping and divisions, with the per-subscription float64 sums
// replaced by the rows' exact uint64 day sums (equal below 2^53).
func MonthlyFromStats(rows []DayStat) []MonthlyMean {
	type acc struct {
		sum  [2][2]uint64
		subs [2]int
		days int
	}
	byMonth := make(map[time.Time]*acc)
	var order []time.Time
	for _, s := range rows {
		m := asn.MonthStart(s.Day)
		a := byMonth[m]
		if a == nil {
			a = &acc{}
			byMonth[m] = a
			order = append(order, m)
		}
		a.days++
		for ti := 0; ti < 2; ti++ {
			a.sum[ti][Down] += s.SubDown[ti]
			a.sum[ti][Up] += s.SubUp[ti]
			a.subs[ti] += s.Observed[ti]
		}
	}
	sortTimes(order)
	out := make([]MonthlyMean, 0, len(order))
	for _, m := range order {
		a := byMonth[m]
		mm := MonthlyMean{Month: m, Days: a.days}
		for ti := 0; ti < 2; ti++ {
			if a.subs[ti] > 0 {
				mm.Mean[ti][Down] = float64(a.sum[ti][Down]) / float64(a.subs[ti])
				mm.Mean[ti][Up] = float64(a.sum[ti][Up]) / float64(a.subs[ti])
			}
		}
		out = append(out, mm)
	}
	return out
}

// ActiveFromStats is ActiveSeries over rollup rows.
func ActiveFromStats(rows []DayStat) []ActivePoint {
	out := make([]ActivePoint, 0, len(rows))
	for _, s := range rows {
		p := ActivePoint{
			Day:      s.Day,
			Active:   s.Active[0] + s.Active[1],
			Observed: s.Observed[0] + s.Observed[1],
		}
		if p.Observed > 0 {
			p.ActivePct = 100 * float64(p.Active) / float64(p.Observed)
		}
		out = append(out, p)
	}
	return out
}

// ProtoSharesFromStats is ProtocolShares over rollup rows.
func ProtoSharesFromStats(rows []DayStat) []ProtoSharePoint {
	byMonth := make(map[time.Time]map[flowrec.WebProto]uint64)
	var order []time.Time
	for _, s := range rows {
		m := asn.MonthStart(s.Day)
		a := byMonth[m]
		if a == nil {
			a = make(map[flowrec.WebProto]uint64)
			byMonth[m] = a
			order = append(order, m)
		}
		for _, p := range webProtos {
			a[p] += s.ProtoBytes[p]
		}
	}
	sortTimes(order)
	out := make([]ProtoSharePoint, 0, len(order))
	for _, m := range order {
		a := byMonth[m]
		var total uint64
		for _, v := range a {
			total += v
		}
		p := ProtoSharePoint{Month: m, SharePct: make(map[flowrec.WebProto]float64, len(webProtos))}
		for _, proto := range webProtos {
			if total > 0 {
				p.SharePct[proto] = 100 * float64(a[proto]) / float64(total)
			}
		}
		out = append(out, p)
	}
	return out
}

func sortTimes(ts []time.Time) {
	sort.Slice(ts, func(i, j int) bool { return ts[i].Before(ts[j]) })
}
