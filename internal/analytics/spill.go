package analytics

// Bounded-memory stage one. A day at production scale (10⁵–10⁶ lines)
// can hold more live accumulator state — per-subscription counters,
// the server-address inventory, RTT reservoirs — than the machine has
// RAM. The merge monoid (merge.go) already makes any grouping of a
// day's records equivalent, so when the live estimate crosses a
// configured budget the aggregator seals its state into a Partial,
// spills it to disk (parts-*.gob.gz, the same gob+gzip encoding the
// shard-partial cache uses) and restarts empty. Spilled partials merge
// back in bounded fan-in passes, so aggregation memory is O(budget +
// final aggregate), not O(day's working state) — and because the merge
// is the same associative fold the sharded path uses, the result is
// byte-identical to the unbounded in-memory run.

import (
	"encoding/gob"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/metrics"
	"repro/internal/zpool"
)

// Spill observability: partials written, bytes they occupied on disk,
// and extra merge passes the fan-in bound forced.
var (
	mSpills         = metrics.GetCounter("analytics.spills")
	mSpillBytes     = metrics.GetCounter("analytics.spill_bytes")
	mSpillMergePass = metrics.GetCounter("analytics.spill_merge_passes")
)

// spillCheckEvery is how many records the serial fold accumulates
// between budget checks (the sharded path checks per fan-out batch).
const spillCheckEvery = 2048

// defaultSpillFanIn bounds how many spill files one merge pass opens.
const defaultSpillFanIn = 8

// LiveBytes estimates the aggregator's live accumulator footprint in
// bytes. It is an accounting model, not a heap measurement: per-entry
// costs approximate Go's map/pointer overhead, and the point is a
// deterministic, cheap signal that grows with the real footprint so a
// budget comparison lands in the right order of magnitude. O(services)
// per call, so callers sample it every few thousand records.
func (a *Aggregator) LiveBytes() int64 {
	const (
		subCost  = 96 // subAcc + map entry + pointer
		svcCost  = 24 // one svcUse slot in a subscription's dense slice
		ipCost   = 72 // ipAcc + map entry
		memoCost = 56 // interned name + ID + map entry
		domCost  = 48 // domain key + counter + map entry
		rttCost  = 16 // one (hash, ms) sample
	)
	n := int64(len(a.subs)) * (subCost + int64(a.nsvc)*svcCost)
	n += int64(len(a.ips)) * ipCost
	n += int64(len(a.memo)) * memoCost
	for _, m := range a.domainBytes {
		n += int64(len(m)) * domCost
	}
	for _, r := range a.rtt {
		if r != nil {
			n += int64(len(r.heap)) * rttCost
		}
	}
	if a.agg != nil {
		n += int64(len(a.agg.QUICVersions)) * domCost
	}
	return n
}

// spiller owns one day-attempt's spill state: a private temp directory
// of partial files, the per-aggregator budget share, and the fan-in
// for merge passes. Safe for concurrent spill calls from shard
// workers; merge runs after they join.
type spiller struct {
	dir    string
	budget int64
	fanIn  int
	seq    atomic.Int64
	n      atomic.Int64

	mu  sync.Mutex
	err error
}

// newSpiller builds a spiller for one day attempt, or nil when the
// config sets no budget (the unbounded path pays nothing). shares is
// how many concurrent aggregators split the budget.
func newSpiller(cfg RunConfig, day time.Time, shares int) (*spiller, error) {
	if cfg.MemBudget <= 0 {
		return nil, nil
	}
	base := cfg.SpillDir
	if base == "" {
		base = os.TempDir()
	} else if err := os.MkdirAll(base, 0o755); err != nil {
		return nil, fmt.Errorf("analytics: spill dir: %w", err)
	}
	dir, err := os.MkdirTemp(base, "spill-"+day.UTC().Format("20060102")+"-")
	if err != nil {
		return nil, fmt.Errorf("analytics: spill dir: %w", err)
	}
	if shares < 1 {
		shares = 1
	}
	budget := cfg.MemBudget / int64(shares)
	if budget < 1 {
		budget = 1
	}
	fanIn := cfg.SpillFanIn
	if fanIn < 2 {
		fanIn = defaultSpillFanIn
	}
	return &spiller{dir: dir, budget: budget, fanIn: fanIn}, nil
}

// over reports whether an aggregator's live estimate crossed the
// per-aggregator budget share.
func (sp *spiller) over(a *Aggregator) bool {
	return sp != nil && a.LiveBytes() > sp.budget
}

// spill writes one sealed partial to disk. Failures are remembered
// (first wins) and reported by firstErr after the scan; the caller
// keeps aggregating either way, so a failed spill degrades to more
// memory, never to wrong results.
func (sp *spiller) spill(p *Partial) {
	path := sp.nextPath()
	n, err := writeSpill(path, p)
	if err != nil {
		os.Remove(path)
		sp.mu.Lock()
		if sp.err == nil {
			sp.err = err
		}
		sp.mu.Unlock()
		return
	}
	sp.n.Add(1)
	mSpills.Inc()
	mSpillBytes.Add(uint64(n))
}

// nextPath names the next spill file; zero-padded so the lexical sort
// in files() is the write order.
func (sp *spiller) nextPath() string {
	return filepath.Join(sp.dir, fmt.Sprintf("parts-%06d.gob.gz", sp.seq.Add(1)))
}

// spilled reports whether any partial reached disk.
func (sp *spiller) spilled() bool { return sp != nil && sp.n.Load() > 0 }

// firstErr returns the first spill failure, if any.
func (sp *spiller) firstErr() error {
	if sp == nil {
		return nil
	}
	sp.mu.Lock()
	defer sp.mu.Unlock()
	return sp.err
}

// cleanup removes the attempt's spill directory. Idempotent.
func (sp *spiller) cleanup() {
	if sp != nil {
		os.RemoveAll(sp.dir)
	}
}

// files lists the attempt's spill files in write order.
func (sp *spiller) files() ([]string, error) {
	ents, err := os.ReadDir(sp.dir)
	if err != nil {
		return nil, fmt.Errorf("analytics: listing spills: %w", err)
	}
	var out []string
	for _, e := range ents {
		if !e.IsDir() {
			out = append(out, filepath.Join(sp.dir, e.Name()))
		}
	}
	sort.Strings(out)
	return out, nil
}

// merge folds every spilled partial plus the still-in-memory finals
// into the day's aggregate. While more than fanIn files remain, groups
// of fanIn merge into new spill files — each pass holds one group's
// accumulator plus a single loaded partial, keeping the peak at
// O(budget + merged output) however many partials a day produced. The
// fold is Partial.Merge throughout, so the result is byte-identical
// to MergePartials over an in-memory run.
func (sp *spiller) merge(day time.Time, finals []*Partial) (*DayAgg, error) {
	files, err := sp.files()
	if err != nil {
		return nil, err
	}
	for len(files) > sp.fanIn {
		var next []string
		for i := 0; i < len(files); i += sp.fanIn {
			g := files[i:min(i+sp.fanIn, len(files))]
			if len(g) == 1 {
				next = append(next, g[0])
				continue
			}
			acc := NewPartial(day)
			for _, path := range g {
				p, err := readSpill(path)
				if err != nil {
					return nil, err
				}
				if err := acc.Merge(p); err != nil {
					return nil, err
				}
				mShardMerges.Inc()
			}
			out := sp.nextPath()
			if _, err := writeSpill(out, acc); err != nil {
				return nil, err
			}
			for _, path := range g {
				os.Remove(path)
			}
			next = append(next, out)
		}
		files = next
		mSpillMergePass.Inc()
	}
	acc := NewPartial(day)
	for _, path := range files {
		p, err := readSpill(path)
		if err != nil {
			return nil, err
		}
		if err := acc.Merge(p); err != nil {
			return nil, err
		}
		mShardMerges.Inc()
	}
	for _, p := range finals {
		if err := acc.Merge(p); err != nil {
			return nil, err
		}
		mShardMerges.Inc()
	}
	return acc.Finish(), nil
}

// writeSpill persists one partial as gob+gzip, returning the on-disk
// size.
func writeSpill(path string, p *Partial) (int64, error) {
	f, err := os.Create(path)
	if err != nil {
		return 0, fmt.Errorf("analytics: writing spill: %w", err)
	}
	gz := zpool.GzipWriter(f)
	err = gob.NewEncoder(gz).Encode(p)
	if cerr := gz.Close(); err == nil {
		err = cerr
	}
	zpool.PutGzipWriter(gz)
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		return 0, fmt.Errorf("analytics: writing spill: %w", err)
	}
	st, err := os.Stat(path)
	if err != nil {
		return 0, nil
	}
	return st.Size(), nil
}

// readSpill loads one spilled partial.
func readSpill(path string) (*Partial, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("analytics: reading spill: %w", err)
	}
	defer f.Close()
	gz, err := zpool.GzipReader(f)
	if err != nil {
		return nil, fmt.Errorf("analytics: reading spill: %w", err)
	}
	defer zpool.PutGzipReader(gz)
	var p Partial
	if err := gob.NewDecoder(gz).Decode(&p); err != nil {
		gz.Close()
		return nil, fmt.Errorf("analytics: reading spill: %w", err)
	}
	if err := gz.Close(); err != nil {
		return nil, fmt.Errorf("analytics: reading spill: %w", err)
	}
	return &p, nil
}
