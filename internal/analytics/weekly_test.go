package analytics

import (
	"testing"
	"time"

	"repro/internal/flowrec"
)

// buildWeek builds 7 consecutive day aggregates where sub 1 visits
// Netflix every day, sub 2 only on day 3, and sub 3 never. All three
// are active every day.
func buildWeek(t *testing.T) []*DayAgg {
	t.Helper()
	start := time.Date(2017, 10, 2, 0, 0, 0, 0, time.UTC)
	var aggs []*DayAgg
	for i := 0; i < 7; i++ {
		day := start.AddDate(0, 0, i)
		a := NewAggregator(day, nil)
		mk := func(sub uint32, name string, down uint64) *flowrec.Record {
			r := mkRec(sub, flowrec.TechFTTH, name, down, 1<<20)
			r.Start = day.Add(20 * time.Hour)
			return r
		}
		feed(a, mk(1, "occ-0.nflxvideo.net", 500<<20), 12)
		if i == 3 {
			feed(a, mk(2, "occ-0.nflxvideo.net", 400<<20), 12)
		} else {
			feed(a, mk(2, "other.example", 50<<20), 12)
		}
		feed(a, mk(3, "other.example", 50<<20), 12)
		aggs = append(aggs, a.Result())
	}
	return aggs
}

func TestWeeklyPopularityGap(t *testing.T) {
	pts := WeeklyPopularity(buildWeek(t), "Netflix")
	if len(pts) != 1 {
		t.Fatalf("windows = %d, want 1", len(pts))
	}
	p := pts[0]
	// Daily: day 3 has 2/3 users, other days 1/3 → mean = (6*33.3 + 66.7)/7.
	wantDaily := (6*100.0/3 + 200.0/3) / 7
	if diff := p.DailyPct[1] - wantDaily; diff > 0.01 || diff < -0.01 {
		t.Errorf("DailyPct = %v, want %v", p.DailyPct[1], wantDaily)
	}
	// Weekly: subs 1 and 2 visited at least once → 2/3.
	if diff := p.WeeklyPct[1] - 200.0/3; diff > 0.01 || diff < -0.01 {
		t.Errorf("WeeklyPct = %v, want %v", p.WeeklyPct[1], 200.0/3)
	}
	if p.WeeklyPct[1] <= p.DailyPct[1] {
		t.Error("weekly reach should exceed daily reach")
	}
}

func TestWeeklyPopularityDropsPartialWindows(t *testing.T) {
	aggs := buildWeek(t)
	if pts := WeeklyPopularity(aggs[:6], "Netflix"); len(pts) != 0 {
		t.Errorf("partial window produced %d points", len(pts))
	}
	// 13 days: one full window only.
	more := append(aggs, buildWeek(t)[:6]...)
	if pts := WeeklyPopularity(more, "Netflix"); len(pts) != 1 {
		t.Errorf("13 days produced %d windows, want 1", len(pts))
	}
}

// TestWeeklyPopularityLakeGap is the regression test for the
// slice-index windowing bug: with 15 consecutive days where day 3 is
// missing (a quarantined/outage day), the old code packed the
// remaining 14 aggregates into two 7-slot windows, silently spanning
// 8 calendar days each. Date-cut windows must instead skip the week
// containing the gap and keep the second week on its calendar
// boundary.
func TestWeeklyPopularityLakeGap(t *testing.T) {
	start := time.Date(2017, 10, 2, 0, 0, 0, 0, time.UTC)
	week1 := buildWeek(t) // Oct 2 – Oct 8
	var aggs []*DayAgg
	for i, a := range week1 {
		if i == 3 {
			continue // the lake gap
		}
		aggs = append(aggs, a)
	}
	// Second calendar week, Oct 9 – Oct 15: complete.
	for i := 7; i < 14; i++ {
		day := start.AddDate(0, 0, i)
		a := NewAggregator(day, nil)
		r := mkRec(1, flowrec.TechFTTH, "occ-0.nflxvideo.net", 500<<20, 1<<20)
		r.Start = day.Add(20 * time.Hour)
		feed(a, r, 12)
		r2 := mkRec(2, flowrec.TechFTTH, "other.example", 50<<20, 1<<20)
		r2.Start = day.Add(20 * time.Hour)
		feed(a, r2, 12)
		aggs = append(aggs, a.Result())
	}
	// One more trailing day so the old code would have formed a second
	// mis-aligned 7-slot window (6 leftover + 1 = 7 aggs).
	day := start.AddDate(0, 0, 14)
	a := NewAggregator(day, nil)
	r := mkRec(1, flowrec.TechFTTH, "other.example", 50<<20, 1<<20)
	r.Start = day.Add(20 * time.Hour)
	feed(a, r, 12)
	aggs = append(aggs, a.Result())

	pts := WeeklyPopularity(aggs, "Netflix")
	if len(pts) != 1 {
		t.Fatalf("windows = %d, want 1 (gapped week skipped, no shifted windows)", len(pts))
	}
	if want := start.AddDate(0, 0, 7); !pts[0].WeekStart.Equal(want) {
		t.Errorf("WeekStart = %v, want calendar-aligned %v", pts[0].WeekStart, want)
	}
	// In the surviving week sub 1 visits daily, sub 2 never: 1/2 reach.
	if diff := pts[0].WeeklyPct[1] - 50; diff > 0.01 || diff < -0.01 {
		t.Errorf("WeeklyPct = %v, want 50", pts[0].WeeklyPct[1])
	}
	if diff := pts[0].DailyPct[1] - 50; diff > 0.01 || diff < -0.01 {
		t.Errorf("DailyPct = %v, want 50", pts[0].DailyPct[1])
	}
}

// TestWeeklyPopularityUnordered feeds the same days shuffled; date-cut
// windows must not care about slice order.
func TestWeeklyPopularityUnordered(t *testing.T) {
	aggs := buildWeek(t)
	shuffled := []*DayAgg{aggs[4], aggs[0], aggs[6], aggs[2], aggs[1], aggs[5], aggs[3]}
	want := WeeklyPopularity(aggs, "Netflix")
	got := WeeklyPopularity(shuffled, "Netflix")
	if len(got) != 1 || len(want) != 1 || got[0] != want[0] {
		t.Errorf("shuffled input changed the result: %+v vs %+v", got, want)
	}
}

func TestQUICVersionShare(t *testing.T) {
	a := NewAggregator(testDay, nil)
	q := mkRec(1, flowrec.TechADSL, "www.google.com", 1<<20, 1<<10)
	q.Web = flowrec.WebQUIC
	q.QUICVer = "Q039"
	a.Add(q)
	q2 := *q
	q2.QUICVer = "Q035"
	a.Add(&q2)
	q3 := *q
	a.Add(&q3) // Q039 again
	notQuic := mkRec(1, flowrec.TechADSL, "x.example", 1<<20, 1<<10)
	notQuic.QUICVer = "Q039" // bogus field on a TLS flow: ignored
	a.Add(notQuic)

	share := QUICVersionShare([]*DayAgg{a.Result()})
	if share["Q039"] != 2 || share["Q035"] != 1 {
		t.Errorf("share = %v", share)
	}
	if len(share) != 2 {
		t.Errorf("versions = %v", share)
	}
}
