package sketch

import (
	"math"
	"sort"
)

// TDigest is a merging t-digest (Dunning & Ertl): a quantile summary
// whose centroid sizes shrink toward the distribution tails, so
// extreme quantiles stay sharp while the middle compresses. It is the
// sketch-mode alternative to the exact bottom-k RTT reservoir: an RTT
// day folds its samples into at most ~delta centroids, and rollups merge
// per-day digests instead of concatenating sample slices. Accuracy is
// empirical, not worst-case bounded like HLL's sigma; the
// rollup-equivalence tier asserts the documented tolerance (quantiles
// within a few percent of the exact pooled distribution at delta=100)
// against the golden corpus.

// Centroid is one weighted cluster.
type Centroid struct {
	Mean   float64
	Weight float64
}

// TDigest accumulates samples. All state is exported, so a gob
// round-trip (inside the aggregate cache or a rollup file) loses
// nothing — unmerged points ride along as weight-1 centroids until the
// next compression.
type TDigest struct {
	// Compression is delta: higher keeps more centroids. 0 means 100.
	Compression float64
	// Total is the summed weight of every sample offered.
	Total float64
	// Min and Max are the exact extremes (meaningful when Total > 0),
	// kept outside the centroids so Quantile(0) and Quantile(1) never
	// pay clustering error.
	Min, Max float64
	// Centroids holds clusters plus not-yet-compressed points; sorted
	// only right after a compression pass.
	Centroids []Centroid
}

// NewTDigest returns an empty digest at the given compression
// (<=0 defaults to 100).
func NewTDigest(compression float64) *TDigest {
	if compression <= 0 {
		compression = 100
	}
	return &TDigest{Compression: compression}
}

func (t *TDigest) compression() float64 {
	if t.Compression <= 0 {
		return 100
	}
	return t.Compression
}

// Add observes one sample.
func (t *TDigest) Add(x float64) {
	if t.Total == 0 || x < t.Min {
		t.Min = x
	}
	if t.Total == 0 || x > t.Max {
		t.Max = x
	}
	t.Centroids = append(t.Centroids, Centroid{Mean: x, Weight: 1})
	t.Total++
	if float64(len(t.Centroids)) > 8*t.compression() {
		t.compress()
	}
}

// Merge folds o into t. o is not modified.
func (t *TDigest) Merge(o *TDigest) {
	if o == nil || len(o.Centroids) == 0 {
		return
	}
	if t.Total == 0 || o.Min < t.Min {
		t.Min = o.Min
	}
	if t.Total == 0 || o.Max > t.Max {
		t.Max = o.Max
	}
	t.Centroids = append(t.Centroids, o.Centroids...)
	t.Total += o.Total
	t.compress()
}

// Clone returns an independent copy. A nil receiver clones to nil.
func (t *TDigest) Clone() *TDigest {
	if t == nil {
		return nil
	}
	c := &TDigest{Compression: t.Compression, Total: t.Total, Min: t.Min, Max: t.Max}
	c.Centroids = append([]Centroid(nil), t.Centroids...)
	return c
}

// compress sorts the centroids and re-clusters them greedily under the
// k1 scale function k(q) = delta/(2*pi)*asin(2q-1): a cluster may not
// span more than one k-unit. The k-range is delta/2 and adjacent
// clusters must jointly exceed one unit, so at most ~delta centroids
// survive, sized small at the tails and large in the middle.
// Deterministic: stable sort by mean, sequential scan.
func (t *TDigest) compress() {
	if len(t.Centroids) == 0 {
		return
	}
	cs := t.Centroids
	sort.SliceStable(cs, func(i, j int) bool { return cs[i].Mean < cs[j].Mean })
	total := 0.0
	for _, c := range cs {
		total += c.Weight
	}
	delta := t.compression()
	k := func(q float64) float64 {
		if q < 0 {
			q = 0
		} else if q > 1 {
			q = 1
		}
		return delta / (2 * math.Pi) * math.Asin(2*q-1)
	}
	out := cs[:0]
	cur := cs[0]
	done := 0.0 // weight fully emitted before cur
	kLeft := k(0)
	for _, c := range cs[1:] {
		if k((done+cur.Weight+c.Weight)/total)-kLeft <= 1 {
			w := cur.Weight + c.Weight
			cur.Mean += (c.Mean - cur.Mean) * c.Weight / w
			cur.Weight = w
			continue
		}
		done += cur.Weight
		out = append(out, cur)
		kLeft = k(done / total)
		cur = c
	}
	out = append(out, cur)
	t.Centroids = out
}

// Quantile returns the q-quantile (0 <= q <= 1) by linear
// interpolation between centroid means. NaN when empty.
func (t *TDigest) Quantile(q float64) float64 {
	t.compress()
	cs := t.Centroids
	if len(cs) == 0 {
		return math.NaN()
	}
	if q <= 0 {
		return t.Min
	}
	if q >= 1 {
		return t.Max
	}
	target := q * t.Total
	cum := 0.0
	for i, c := range cs {
		mid := cum + c.Weight/2
		if target < mid {
			if i == 0 {
				return c.Mean
			}
			prev := cs[i-1]
			prevMid := cum - prev.Weight/2
			frac := (target - prevMid) / (mid - prevMid)
			return prev.Mean + frac*(c.Mean-prev.Mean)
		}
		cum += c.Weight
	}
	return cs[len(cs)-1].Mean
}

// Count returns the total sample weight.
func (t *TDigest) Count() float64 { return t.Total }
