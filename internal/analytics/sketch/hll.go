// Package sketch implements the three mergeable summaries the rollup
// tier carries when exact cross-day merging would not scale to the
// paper's full deployment: a HyperLogLog for distinct-count questions
// (clients, server addresses), a SpaceSaving heavy-hitter summary for
// per-service and per-domain byte shares, and a merging t-digest as an
// approximate alternative to the bottom-k RTT reservoir. All three are
// gob-encodable (exported fields only), deterministic for a fixed
// input order, and closed under Merge — the same monoid discipline as
// analytics.Partial, which is what lets week/month/year rollups fold
// them alongside the exact counters. None of them participate in
// CanonicalBytes: sketches are an approximation layer, never part of
// the byte-identity contract.
package sketch

import (
	"math"
	"math/bits"
)

// hllP is the HyperLogLog precision: 2^hllP registers. p=12 gives
// m=4096 registers (4 KiB) and a relative standard error of
// 1.04/sqrt(4096) ≈ 1.63%.
const (
	hllP = 12
	hllM = 1 << hllP
)

// HLL is a HyperLogLog distinct counter over 64-bit hashes. The zero
// value is empty and usable; registers allocate on first Add.
type HLL struct {
	// Reg holds the 2^12 registers, each the maximum leading-zero rank
	// observed for hashes routed to it. Nil means empty.
	Reg []uint8
}

// NewHLL returns an empty HyperLogLog.
func NewHLL() *HLL { return &HLL{} }

// AddHash observes one 64-bit hash. Callers hash their keys with
// Hash64/HashString (or any well-mixed 64-bit function).
func (h *HLL) AddHash(x uint64) {
	if h.Reg == nil {
		h.Reg = make([]uint8, hllM)
	}
	idx := x >> (64 - hllP)
	rank := uint8(64-hllP) + 1
	if w := x << hllP; w != 0 {
		rank = uint8(bits.LeadingZeros64(w)) + 1
	}
	if rank > h.Reg[idx] {
		h.Reg[idx] = rank
	}
}

// Merge folds o into h: elementwise register maximum. The merge is
// exact — merging per-day HLLs yields the same registers as a single
// HLL over the union — so rollup distinct counts carry no extra error
// beyond the sketch's own.
func (h *HLL) Merge(o *HLL) {
	if o == nil || o.Reg == nil {
		return
	}
	if h.Reg == nil {
		h.Reg = make([]uint8, hllM)
	}
	for i, r := range o.Reg {
		if r > h.Reg[i] {
			h.Reg[i] = r
		}
	}
}

// Clone returns an independent copy. A nil receiver clones to nil.
func (h *HLL) Clone() *HLL {
	if h == nil {
		return nil
	}
	c := &HLL{}
	if h.Reg != nil {
		c.Reg = append([]uint8(nil), h.Reg...)
	}
	return c
}

// Estimate returns the estimated distinct count, with the standard
// small-range (linear counting) correction.
func (h *HLL) Estimate() float64 {
	if h.Reg == nil {
		return 0
	}
	alpha := 0.7213 / (1 + 1.079/float64(hllM))
	var sum float64
	zeros := 0
	for _, r := range h.Reg {
		sum += math.Ldexp(1, -int(r))
		if r == 0 {
			zeros++
		}
	}
	e := alpha * hllM * hllM / sum
	if e <= 2.5*hllM && zeros > 0 {
		return hllM * math.Log(float64(hllM)/float64(zeros))
	}
	return e
}

// RelErr is the sketch's relative standard error (one sigma):
// 1.04/sqrt(m) ≈ 1.63% at p=12. Documented in DESIGN.md §12 and
// asserted (at three sigma) by the rollup-equivalence tier.
func (h *HLL) RelErr() float64 { return 1.04 / math.Sqrt(hllM) }

// Hash64 mixes raw bytes into a well-avalanched 64-bit hash (FNV-1a
// followed by a murmur-style finalizer, so the high bits HLL indexes
// by are as mixed as the low ones).
func Hash64(b []byte) uint64 {
	const (
		offset = 14695981039346656037
		prime  = 1099511628211
	)
	h := uint64(offset)
	for _, c := range b {
		h ^= uint64(c)
		h *= prime
	}
	return mix64(h)
}

// HashString is Hash64 over a string without copying.
func HashString(s string) uint64 {
	const (
		offset = 14695981039346656037
		prime  = 1099511628211
	)
	h := uint64(offset)
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= prime
	}
	return mix64(h)
}

// HashUint64 mixes an integer key.
func HashUint64(x uint64) uint64 { return mix64(x + 0x9e3779b97f4a7c15) }

// mix64 is the 64-bit murmur3 finalizer.
func mix64(h uint64) uint64 {
	h ^= h >> 33
	h *= 0xff51afd7ed558ccd
	h ^= h >> 33
	h *= 0xc4ceb9fe1a85ec53
	h ^= h >> 33
	return h
}
