package sketch

import (
	"bytes"
	"encoding/gob"
	"fmt"
	"math"
	"math/rand"
	"sort"
	"testing"
)

// --- HLL ---

func TestHLLEstimateWithinBound(t *testing.T) {
	for _, n := range []int{100, 5000, 200000} {
		h := NewHLL()
		for i := 0; i < n; i++ {
			h.AddHash(HashUint64(uint64(i)))
		}
		est := h.Estimate()
		tol := 3 * h.RelErr() * float64(n)
		if tol < 3 { // tiny-n: linear counting is near exact
			tol = 3
		}
		if math.Abs(est-float64(n)) > tol {
			t.Errorf("n=%d: estimate %.0f off by more than 3 sigma (%.0f)", n, est, tol)
		}
	}
}

func TestHLLMergeEqualsUnion(t *testing.T) {
	a, b, u := NewHLL(), NewHLL(), NewHLL()
	for i := 0; i < 10000; i++ {
		h := HashUint64(uint64(i))
		if i%2 == 0 {
			a.AddHash(h)
		}
		if i%3 == 0 || i%2 == 0 { // overlaps a
			b.AddHash(h)
		}
		if i%2 == 0 || i%3 == 0 {
			u.AddHash(h)
		}
	}
	a.Merge(b)
	if !bytes.Equal(a.Reg, u.Reg) {
		t.Fatal("merged registers differ from union registers; HLL merge must be exact")
	}
}

func TestHLLMergeIntoEmpty(t *testing.T) {
	b := NewHLL()
	b.AddHash(HashString("x"))
	a := NewHLL()
	a.Merge(b)
	if a.Estimate() < 0.5 {
		t.Fatal("merge into empty lost the element")
	}
	// Merging an empty (nil-register) sketch must be a no-op.
	before := append([]uint8(nil), a.Reg...)
	a.Merge(NewHLL())
	a.Merge(nil)
	if !bytes.Equal(a.Reg, before) {
		t.Fatal("merging empty sketch changed registers")
	}
}

// --- SpaceSaving ---

func TestSpaceSavingExactWhenUnderK(t *testing.T) {
	s := NewSpaceSaving(8)
	truth := map[string]uint64{"a": 100, "b": 50, "c": 10}
	for k, v := range truth {
		s.Add(k, v)
	}
	for k, v := range truth {
		if got := s.Count(k); got != v {
			t.Errorf("Count(%s)=%d want %d", k, got, v)
		}
	}
	if top := s.Top(1); len(top) != 1 || top[0].Key != "a" {
		t.Errorf("Top(1)=%v want [a]", top)
	}
}

func TestSpaceSavingErrorBound(t *testing.T) {
	// Zipf-ish stream over 1000 keys with K=64: every tracked key's
	// Count must bracket the truth within N/K.
	rng := rand.New(rand.NewSource(1))
	truth := make(map[string]uint64)
	s := NewSpaceSaving(64)
	var n uint64
	for i := 0; i < 200000; i++ {
		key := fmt.Sprintf("k%d", int(math.Floor(math.Pow(rng.Float64(), 3)*1000)))
		truth[key]++
		s.Add(key, 1)
		n++
	}
	bound := n / 64
	for _, c := range s.Counters {
		f := truth[c.Key]
		if c.Count < f || c.Count-c.Err > f {
			t.Errorf("key %s: truth %d outside [%d,%d]", c.Key, f, c.Count-c.Err, c.Count)
		}
		if c.Err > bound {
			t.Errorf("key %s: err %d exceeds N/K=%d", c.Key, c.Err, bound)
		}
	}
}

func TestSpaceSavingMergeBounds(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	truth := make(map[string]uint64)
	parts := make([]*SpaceSaving, 4)
	for p := range parts {
		parts[p] = NewSpaceSaving(64)
	}
	var n uint64
	for i := 0; i < 100000; i++ {
		key := fmt.Sprintf("k%d", int(math.Floor(math.Pow(rng.Float64(), 3)*500)))
		truth[key]++
		parts[i%4].Add(key, 1)
		n++
	}
	m := NewSpaceSaving(64)
	for _, p := range parts {
		m.Merge(p)
	}
	if m.N != n {
		t.Fatalf("merged N=%d want %d", m.N, n)
	}
	// Upper bounds must hold after merging, and the heaviest true key
	// must still be tracked.
	var heavy string
	var heavyW uint64
	for k, v := range truth {
		if v > heavyW {
			heavy, heavyW = k, v
		}
	}
	if got := m.Count(heavy); got < heavyW {
		t.Errorf("heaviest key %s: merged count %d below truth %d", heavy, got, heavyW)
	}
	for _, c := range m.Counters {
		if c.Count < truth[c.Key] {
			t.Errorf("key %s: merged count %d below truth %d", c.Key, c.Count, truth[c.Key])
		}
	}
}

func TestSpaceSavingMergeDeterministic(t *testing.T) {
	build := func() *SpaceSaving {
		a, b := NewSpaceSaving(4), NewSpaceSaving(4)
		for i := 0; i < 40; i++ {
			a.Add(fmt.Sprintf("a%d", i%6), uint64(i))
			b.Add(fmt.Sprintf("b%d", i%6), uint64(i))
		}
		a.Merge(b)
		return a
	}
	x, y := build(), build()
	if !sort.SliceIsSorted(x.Counters, func(i, j int) bool {
		if x.Counters[i].Count != x.Counters[j].Count {
			return x.Counters[i].Count > x.Counters[j].Count
		}
		return x.Counters[i].Key < x.Counters[j].Key
	}) {
		t.Fatal("merged counters not canonically sorted")
	}
	for i := range x.Counters {
		if x.Counters[i] != y.Counters[i] {
			t.Fatalf("merge not deterministic: %v vs %v", x.Counters, y.Counters)
		}
	}
}

// --- TDigest ---

func TestTDigestQuantiles(t *testing.T) {
	d := NewTDigest(100)
	for i := 1; i <= 10000; i++ {
		d.Add(float64(i))
	}
	for _, q := range []float64{0.01, 0.25, 0.5, 0.75, 0.99} {
		got := d.Quantile(q)
		want := q * 10000
		if math.Abs(got-want) > 0.02*10000 {
			t.Errorf("q=%.2f: got %.1f want %.1f (±200)", q, got, want)
		}
	}
	if got := d.Quantile(0); got != 1 {
		t.Errorf("q=0: got %.1f want 1", got)
	}
	if got := d.Quantile(1); got != 10000 {
		t.Errorf("q=1: got %.1f want 10000", got)
	}
}

func TestTDigestMergeMatchesPooled(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	pooled := NewTDigest(100)
	parts := make([]*TDigest, 8)
	for i := range parts {
		parts[i] = NewTDigest(100)
	}
	var all []float64
	for i := 0; i < 80000; i++ {
		x := rng.ExpFloat64() * 50 // RTT-like skew
		all = append(all, x)
		pooled.Add(x)
		parts[i%8].Add(x)
	}
	merged := NewTDigest(100)
	for _, p := range parts {
		merged.Merge(p)
	}
	sort.Float64s(all)
	for _, q := range []float64{0.1, 0.5, 0.9} {
		exact := all[int(q*float64(len(all)))]
		for name, d := range map[string]*TDigest{"pooled": pooled, "merged": merged} {
			got := d.Quantile(q)
			if math.Abs(got-exact) > 0.05*exact+1 {
				t.Errorf("%s q=%.1f: got %.2f want ~%.2f", name, q, got, exact)
			}
		}
	}
	if merged.Count() != 80000 {
		t.Errorf("merged count %.0f want 80000", merged.Count())
	}
}

func TestTDigestCompressionBoundsCentroids(t *testing.T) {
	d := NewTDigest(100)
	rng := rand.New(rand.NewSource(4))
	for i := 0; i < 100000; i++ {
		d.Add(rng.Float64() * 1000)
	}
	d.compress()
	if len(d.Centroids) > 2*int(d.Compression)+10 {
		t.Errorf("%d centroids after compress; want <= ~2*delta", len(d.Centroids))
	}
}

// --- gob round-trips: sketches travel inside cached aggregates and
// rollup files, so encode/decode must preserve answers exactly. ---

func TestGobRoundTrips(t *testing.T) {
	h := NewHLL()
	s := NewSpaceSaving(16)
	d := NewTDigest(100)
	for i := 0; i < 5000; i++ {
		h.AddHash(HashUint64(uint64(i)))
		s.Add(fmt.Sprintf("k%d", i%40), uint64(i%7+1))
		d.Add(float64(i % 300))
	}
	var buf bytes.Buffer
	type trio struct {
		H *HLL
		S *SpaceSaving
		D *TDigest
	}
	if err := gob.NewEncoder(&buf).Encode(trio{h, s, d}); err != nil {
		t.Fatal(err)
	}
	var got trio
	if err := gob.NewDecoder(&buf).Decode(&got); err != nil {
		t.Fatal(err)
	}
	if got.H.Estimate() != h.Estimate() {
		t.Error("HLL estimate changed over gob")
	}
	// Probe a key that is certainly tracked (the heaviest one).
	heavy := s.Top(1)[0].Key
	if got.S.Count(heavy) != s.Count(heavy) || got.S.N != s.N {
		t.Error("SpaceSaving counts changed over gob")
	}
	// A decoded SpaceSaving must keep absorbing adds (index rebuilds).
	got.S.Add(heavy, 5)
	if got.S.Count(heavy) != s.Count(heavy)+5 {
		t.Error("SpaceSaving unusable after gob decode")
	}
	if got.D.Quantile(0.5) != d.Quantile(0.5) {
		t.Error("TDigest quantile changed over gob")
	}
}

func TestClonesAreIndependent(t *testing.T) {
	h := NewHLL()
	h.AddHash(HashString("a"))
	h2 := h.Clone()
	h2.AddHash(HashString("zzz-different"))
	if bytes.Equal(h.Reg, h2.Reg) {
		t.Error("HLL clone shares registers")
	}
	s := NewSpaceSaving(4)
	s.Add("a", 1)
	s2 := s.Clone()
	s2.Add("a", 1)
	if s.Count("a") != 1 || s2.Count("a") != 2 {
		t.Error("SpaceSaving clone not independent")
	}
	d := NewTDigest(50)
	d.Add(1)
	d2 := d.Clone()
	d2.Add(2)
	if d.Count() != 1 || d2.Count() != 2 {
		t.Error("TDigest clone not independent")
	}
	var nilH *HLL
	var nilS *SpaceSaving
	var nilD *TDigest
	if nilH.Clone() != nil || nilS.Clone() != nil || nilD.Clone() != nil {
		t.Error("nil clones must be nil")
	}
}
