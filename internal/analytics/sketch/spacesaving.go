package sketch

import "sort"

// SpaceSaving is the Metwally et al. heavy-hitter summary: at most K
// weighted counters, evicting the minimum on overflow while charging
// the evicted count as the newcomer's error. For any key, the true
// weight f satisfies Count-Err <= f <= Count, and Err is bounded by
// N/K of the weight the summary absorbed — with K=64 counters a
// service's byte share is off by at most ~1.6% of total bytes, and is
// exact whenever the key universe fits in K (true for the service mix
// of the reproduction; the bound matters for the open domain universe).

// Counter is one tracked key.
type Counter struct {
	Key string
	// Count is the upper-bound weight estimate; Err its uncertainty
	// (Count-Err is the lower bound).
	Count, Err uint64
}

// SpaceSaving holds up to K counters. The zero value is unusable; use
// NewSpaceSaving (gob round-trips of a live sketch are fine — only the
// lookup index is rebuilt lazily).
type SpaceSaving struct {
	K int
	// N is the total weight offered to the sketch.
	N uint64
	// Counters is the tracked set, in no particular order.
	Counters []Counter

	// idx maps key to Counters offset; rebuilt after gob decode or
	// clone (unexported fields do not survive encoding).
	idx map[string]int
}

// NewSpaceSaving returns an empty sketch tracking at most k keys
// (k <= 0 defaults to 64).
func NewSpaceSaving(k int) *SpaceSaving {
	if k <= 0 {
		k = 64
	}
	return &SpaceSaving{K: k}
}

func (s *SpaceSaving) reindex() {
	s.idx = make(map[string]int, len(s.Counters))
	for i, c := range s.Counters {
		s.idx[c.Key] = i
	}
}

// Add offers weight w for key.
func (s *SpaceSaving) Add(key string, w uint64) {
	if s.idx == nil || len(s.idx) != len(s.Counters) {
		s.reindex()
	}
	s.N += w
	if i, ok := s.idx[key]; ok {
		s.Counters[i].Count += w
		return
	}
	if len(s.Counters) < s.K {
		s.idx[key] = len(s.Counters)
		s.Counters = append(s.Counters, Counter{Key: key, Count: w})
		return
	}
	// Evict the minimum counter; first minimum wins, which is
	// deterministic for a fixed insertion order.
	min := 0
	for i := 1; i < len(s.Counters); i++ {
		if s.Counters[i].Count < s.Counters[min].Count {
			min = i
		}
	}
	old := s.Counters[min]
	delete(s.idx, old.Key)
	s.Counters[min] = Counter{Key: key, Count: old.Count + w, Err: old.Count}
	s.idx[key] = min
}

// minCount is the smallest tracked count — the weight bound for any
// untracked key — or 0 while the sketch is not yet full.
func (s *SpaceSaving) minCount() uint64 {
	if len(s.Counters) < s.K {
		return 0
	}
	min := s.Counters[0].Count
	for _, c := range s.Counters[1:] {
		if c.Count < min {
			min = c.Count
		}
	}
	return min
}

// Merge folds o into s (the Agarwal et al. mergeable-summaries rule):
// counts of shared keys add; a key tracked on only one side is charged
// the other side's minimum count as additional error (an untracked key
// can hide at most that much weight there); the union then trims back
// to the K largest counts. Error bounds add across a merge tree, so a
// rollup folded from D day sketches keeps per-key error within the sum
// of the days' N_i/K — i.e. still N/K of the merged total.
func (s *SpaceSaving) Merge(o *SpaceSaving) {
	if o == nil || len(o.Counters) == 0 {
		if o != nil {
			s.N += o.N
		}
		return
	}
	sMin, oMin := s.minCount(), o.minCount()
	merged := make(map[string]Counter, len(s.Counters)+len(o.Counters))
	for _, c := range s.Counters {
		merged[c.Key] = c
	}
	for _, c := range o.Counters {
		if m, ok := merged[c.Key]; ok {
			m.Count += c.Count
			m.Err += c.Err
			merged[c.Key] = m
		} else {
			merged[c.Key] = Counter{Key: c.Key, Count: c.Count + sMin, Err: c.Err + sMin}
		}
	}
	for key, m := range merged {
		if _, inO := findKey(o.Counters, key); !inO {
			m.Count += oMin
			m.Err += oMin
			merged[key] = m
		}
	}
	out := make([]Counter, 0, len(merged))
	for _, c := range merged {
		out = append(out, c)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Count != out[j].Count {
			return out[i].Count > out[j].Count
		}
		return out[i].Key < out[j].Key
	})
	if len(out) > s.K {
		out = out[:s.K]
	}
	s.Counters = out
	s.N += o.N
	s.reindex()
}

func findKey(cs []Counter, key string) (Counter, bool) {
	for _, c := range cs {
		if c.Key == key {
			return c, true
		}
	}
	return Counter{}, false
}

// Clone returns an independent copy. A nil receiver clones to nil.
func (s *SpaceSaving) Clone() *SpaceSaving {
	if s == nil {
		return nil
	}
	c := &SpaceSaving{K: s.K, N: s.N}
	c.Counters = append([]Counter(nil), s.Counters...)
	return c
}

// Top returns the n largest counters, sorted by count descending with
// key ties ascending — deterministic however the counters are stored.
func (s *SpaceSaving) Top(n int) []Counter {
	out := append([]Counter(nil), s.Counters...)
	sort.Slice(out, func(i, j int) bool {
		if out[i].Count != out[j].Count {
			return out[i].Count > out[j].Count
		}
		return out[i].Key < out[j].Key
	})
	if n > 0 && len(out) > n {
		out = out[:n]
	}
	return out
}

// Count returns the (upper-bound) weight estimate for key, 0 when
// untracked.
func (s *SpaceSaving) Count(key string) uint64 {
	if c, ok := findKey(s.Counters, key); ok {
		return c.Count
	}
	return 0
}
