package analytics

import (
	"math"
	"reflect"
	"testing"
	"time"

	"repro/internal/classify"
)

// genAggForDay aggregates a deterministic synthetic day (seed varies
// with the date, so days differ) anchored at day instead of testDay.
func genAggForDay(day time.Time, n int, sketch bool) *DayAgg {
	recs := genDayRecords(uint64(day.Unix()), n)
	shift := day.Sub(testDay)
	a := NewAggregator(day, nil)
	if sketch {
		a.EnableSketches()
	}
	for i := range recs {
		r := recs[i]
		r.Start = r.Start.Add(shift)
		a.Add(&r)
	}
	return a.Result()
}

func consecutiveDays(start time.Time, n int) []time.Time {
	out := make([]time.Time, n)
	for i := range out {
		out[i] = start.AddDate(0, 0, i)
	}
	return out
}

func TestWindowStart(t *testing.T) {
	cases := []struct {
		g    Grain
		day  string
		want string
	}{
		{GrainWeek, "2016-05-10", "2016-05-09"}, // Tuesday → Monday
		{GrainWeek, "2016-05-09", "2016-05-09"}, // Monday fixed point
		{GrainWeek, "2016-05-15", "2016-05-09"}, // Sunday → previous Monday
		{GrainMonth, "2016-05-10", "2016-05-01"},
		{GrainYear, "2016-05-10", "2016-01-01"},
	}
	for _, c := range cases {
		day, _ := time.Parse("2006-01-02", c.day)
		if got := WindowStart(c.g, day).Format("2006-01-02"); got != c.want {
			t.Errorf("WindowStart(%s, %s) = %s want %s", c.g, c.day, got, c.want)
		}
	}
	if got := NextWindow(GrainMonth, time.Date(2016, 12, 1, 0, 0, 0, 0, time.UTC)); got.Year() != 2017 || got.Month() != 1 {
		t.Errorf("NextWindow(month, 2016-12-01) = %v", got)
	}
	if got := NextWindow(GrainWeek, time.Date(2016, 5, 9, 0, 0, 0, 0, time.UTC)); !got.Equal(time.Date(2016, 5, 16, 0, 0, 0, 0, time.UTC)) {
		t.Errorf("NextWindow(week) = %v", got)
	}
}

// TestFromStatsEquivalence is the heart of the rollup contract: the
// *FromStats folds over DayStat rows must equal the figures.go folds
// over the day aggregates — exactly, including the float64 divisions.
func TestFromStatsEquivalence(t *testing.T) {
	// Span a month boundary so the monthly grouping is exercised.
	days := consecutiveDays(time.Date(2016, 4, 20, 0, 0, 0, 0, time.UTC), 20)
	var aggs []*DayAgg
	var rows []DayStat
	for _, d := range days {
		agg := genAggForDay(d, 800, false)
		aggs = append(aggs, agg)
		rows = append(rows, NewDayStat(agg))
	}

	if got, want := MonthlyFromStats(rows), MonthlySeries(aggs); !reflect.DeepEqual(got, want) {
		t.Errorf("MonthlyFromStats differs from MonthlySeries:\n got %+v\nwant %+v", got, want)
	}
	if got, want := ActiveFromStats(rows), ActiveSeries(aggs); !reflect.DeepEqual(got, want) {
		t.Errorf("ActiveFromStats differs from ActiveSeries:\n got %+v\nwant %+v", got, want)
	}
	if got, want := ProtoSharesFromStats(rows), ProtocolShares(aggs); !reflect.DeepEqual(got, want) {
		t.Errorf("ProtoSharesFromStats differs from ProtocolShares:\n got %+v\nwant %+v", got, want)
	}
}

func TestBuildRollupWindow(t *testing.T) {
	start := time.Date(2016, 5, 2, 0, 0, 0, 0, time.UTC) // a Monday
	days := consecutiveDays(start, 7)
	var aggs []*DayAgg
	for _, d := range days {
		aggs = append(aggs, genAggForDay(d, 500, false))
	}
	r, err := BuildRollup(GrainWeek, start, days, aggs)
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Stats) != 7 || len(r.SourceDays) != 7 {
		t.Fatalf("stats=%d sources=%d want 7", len(r.Stats), len(r.SourceDays))
	}
	if !r.CoversExactly(days) {
		t.Error("CoversExactly(same days) = false")
	}
	if r.CoversExactly(days[:6]) {
		t.Error("CoversExactly(shorter list) = true")
	}
	other := append(append([]time.Time(nil), days[:3]...), days[4:]...)
	if r.CoversExactly(other) {
		t.Error("CoversExactly(different grid) = true")
	}

	// Coarse merge: totals add, RTT samples pool in day order.
	var wantDown, wantFlows uint64
	wantRTT := map[string]int{}
	for _, a := range aggs {
		wantDown += a.TotalDown
		wantFlows += a.Flows
		for svc, ms := range a.RTTMinMs {
			wantRTT[string(svc)] += len(ms)
		}
	}
	if r.Agg.TotalDown != wantDown || r.Agg.Flows != wantFlows {
		t.Errorf("coarse totals: down=%d flows=%d want %d/%d",
			r.Agg.TotalDown, r.Agg.Flows, wantDown, wantFlows)
	}
	if !r.Agg.Day.Equal(start) {
		t.Errorf("coarse agg day %v want %v", r.Agg.Day, start)
	}
	for svc, n := range wantRTT {
		if got := len(r.Agg.RTTMinMs[classify.Service(svc)]); got != n {
			t.Errorf("pooled RTT %s: %d samples want %d", svc, got, n)
		}
	}

	// A day outside the window must refuse to fold.
	if _, err := BuildRollup(GrainWeek, start, days, []*DayAgg{genAggForDay(start.AddDate(0, 0, 7), 100, false)}); err == nil {
		t.Error("BuildRollup accepted a day outside the window")
	}
}

// TestRollupSketchMode folds sketch-built day aggregates and checks the
// window sketches survive the merge with their documented accuracy.
func TestRollupSketchMode(t *testing.T) {
	start := time.Date(2016, 5, 2, 0, 0, 0, 0, time.UTC)
	days := consecutiveDays(start, 7)
	var aggs []*DayAgg
	distinct := map[uint32]bool{}
	svcBytes := map[string]uint64{}
	for _, d := range days {
		agg := genAggForDay(d, 800, true)
		if agg.Sketches == nil {
			t.Fatal("sketch-mode day aggregate carries no sketches")
		}
		aggs = append(aggs, agg)
		for id := range agg.Subs {
			distinct[id] = true
		}
		for svc, b := range agg.ServiceBytes {
			svcBytes[string(svc)] += b
		}
	}
	r, err := BuildRollup(GrainWeek, start, days, aggs)
	if err != nil {
		t.Fatal(err)
	}
	sk := r.Agg.Sketches
	if sk == nil {
		t.Fatal("rollup of sketch-mode days lost the sketches")
	}
	est := sk.Clients.Estimate()
	n := float64(len(distinct))
	if tol := 3*sk.Clients.RelErr()*n + 3; math.Abs(est-n) > tol {
		t.Errorf("window distinct clients: estimate %.0f truth %.0f (tol %.0f)", est, n, tol)
	}
	// The heaviest service by bytes must be a tracked heavy hitter with
	// an upper-bound count at or above the truth.
	var heavy string
	var heavyB uint64
	for s, b := range svcBytes {
		if b > heavyB {
			heavy, heavyB = s, b
		}
	}
	if got := sk.Services.Count(heavy); got < heavyB {
		t.Errorf("heavy hitter %s: sketch count %d below truth %d", heavy, got, heavyB)
	}

	// Exact-mode rollups must not conjure sketches.
	exact, err := BuildRollup(GrainWeek, start, days[:2], []*DayAgg{
		genAggForDay(days[0], 300, false), genAggForDay(days[1], 300, false)})
	if err != nil {
		t.Fatal(err)
	}
	if exact.Agg.Sketches != nil {
		t.Error("exact-mode rollup carries sketches")
	}
}
