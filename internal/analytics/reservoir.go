package analytics

import (
	"sort"

	"repro/internal/flowrec"
)

// Deterministic RTT sampling. Storing every per-flow minimum RTT of a
// service-day is unbounded at production scale, but keeping "the first
// rttCap samples" biases Figure 10's CDFs toward early-morning flows
// (whatever the probe exported first). Instead each flow gets a
// seed-free 64-bit hash of its identity, and a service-day keeps the
// rttCap flows with the *smallest* hashes — a bottom-k reservoir. The
// hash is independent of the RTT value and uniform over flows, so the
// kept set is an unbiased uniform sample; and because it depends only
// on flow identity, the same records produce the same sample in any
// arrival order, on any worker count, on every run.

// rttSample pairs a flow's sampling hash with its RTT value.
type rttSample struct {
	hash uint64
	ms   float64
}

// less orders samples by (hash, ms) so the reservoir is total-ordered
// even across hash collisions.
func (a rttSample) less(b rttSample) bool {
	if a.hash != b.hash {
		return a.hash < b.hash
	}
	return a.ms < b.ms
}

// rttReservoir is a bottom-k reservoir: a max-heap of the cap smallest
// samples seen so far.
type rttReservoir struct {
	cap  int
	heap []rttSample // max-heap by (hash, ms)
	seen uint64
}

func newRTTReservoir(cap int) *rttReservoir {
	return &rttReservoir{cap: cap}
}

// add offers one sample.
func (r *rttReservoir) add(s rttSample) {
	r.seen++
	if len(r.heap) < r.cap {
		r.heap = append(r.heap, s)
		r.up(len(r.heap) - 1)
		return
	}
	if !s.less(r.heap[0]) {
		return // larger than the current worst kept sample
	}
	r.heap[0] = s
	r.down(0)
}

func (r *rttReservoir) up(i int) {
	for i > 0 {
		parent := (i - 1) / 2
		if !r.heap[parent].less(r.heap[i]) {
			return
		}
		r.heap[parent], r.heap[i] = r.heap[i], r.heap[parent]
		i = parent
	}
}

func (r *rttReservoir) down(i int) {
	n := len(r.heap)
	for {
		l, rr := 2*i+1, 2*i+2
		big := i
		if l < n && r.heap[big].less(r.heap[l]) {
			big = l
		}
		if rr < n && r.heap[big].less(r.heap[rr]) {
			big = rr
		}
		if big == i {
			return
		}
		r.heap[i], r.heap[big] = r.heap[big], r.heap[i]
		i = big
	}
}

// values returns the kept RTTs sorted by (hash, ms) — a canonical
// order, so the output is byte-identical regardless of record order.
// The heap is consumed: the reservoir must not be offered samples
// afterwards.
func (r *rttReservoir) values() []float64 {
	sort.Slice(r.heap, func(i, j int) bool { return r.heap[i].less(r.heap[j]) })
	out := make([]float64, len(r.heap))
	for i, s := range r.heap {
		out[i] = s.ms
	}
	return out
}

// partial exports the reservoir as its mergeable form: parallel
// (hash, ms) arrays in canonical (hash, ms) order, plus cap and the
// offered-sample count. The heap is consumed, like values.
func (r *rttReservoir) partial() *RTTPartial {
	sort.Slice(r.heap, func(i, j int) bool { return r.heap[i].less(r.heap[j]) })
	p := &RTTPartial{
		Cap:  r.cap,
		Seen: r.seen,
		Hash: make([]uint64, len(r.heap)),
		Ms:   make([]float64, len(r.heap)),
	}
	for i, s := range r.heap {
		p.Hash[i] = s.hash
		p.Ms[i] = s.ms
	}
	return p
}

// flowSampleHash derives the seed-free sampling hash from a record's
// flow identity, packed into three words with a murmur-style
// finalizer round between each. Every field is part of what makes a
// flow distinct; none correlates with its RTT, which is what makes
// the sample fair.
func flowSampleHash(rec *flowrec.Record) uint64 {
	cli := uint64(rec.Client[0])<<24 | uint64(rec.Client[1])<<16 | uint64(rec.Client[2])<<8 | uint64(rec.Client[3])
	srv := uint64(rec.Server[0])<<24 | uint64(rec.Server[1])<<16 | uint64(rec.Server[2])<<8 | uint64(rec.Server[3])
	h := 0x9e3779b97f4a7c15 ^ (cli<<32 | srv)
	h *= 0xff51afd7ed558ccd
	h ^= h >> 33
	h ^= uint64(rec.CliPort)<<48 | uint64(rec.SrvPort)<<32 | uint64(rec.SubID)
	h *= 0xc4ceb9fe1a85ec53
	h ^= h >> 33
	h ^= uint64(rec.Start.UnixMilli())
	h *= 0xff51afd7ed558ccd
	h ^= h >> 33
	return h
}
