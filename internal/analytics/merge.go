package analytics

// Mergeable day aggregates. The paper's stage one is a parallel
// reduction over 247 billion records on a Hadoop cluster — which only
// works because the per-day summary is a monoid: any subset of a day's
// records can be reduced independently and the partial results merged,
// in any order and any grouping, into the same final aggregate. This
// file is that monoid for DayAgg: NewPartial is the identity, Merge
// the associative operation, Finish the projection onto the exported
// DayAgg schema. Every merge rule is order-independent by
// construction — counters add, key sets union, the RTT bottom-k
// reservoir re-trims after concatenation (bottom-k of a union is a
// function of the per-part bottom-ks) — so a K-shard reduction is
// byte-identical to the 1-shard fold. merge_test.go holds the property
// tests.

import (
	"fmt"
	"math/bits"
	"time"

	"repro/internal/classify"
	"repro/internal/wire"
)

// RTTPartial is the mergeable form of one service-day's RTT bottom-k
// reservoir. DayAgg.RTTMinMs alone cannot merge — once two shards are
// both at cap, deciding which samples survive needs the sampling
// hashes — so the partial carries them: parallel Hash/Ms arrays sorted
// by (hash, ms), trimmed to Cap. Seen counts every sample offered,
// kept or not.
type RTTPartial struct {
	Cap  int
	Seen uint64
	Hash []uint64
	Ms   []float64
}

// merge folds q into p: concatenate (both sides sorted), re-sort by
// merging, trim to cap. q is not modified.
func (p *RTTPartial) merge(q *RTTPartial) {
	p.Seen += q.Seen
	// Mixed caps only arise from hand-built partials; the merged
	// reservoir can only be as selective as its most selective input.
	if q.Cap > 0 && (p.Cap == 0 || q.Cap < p.Cap) {
		p.Cap = q.Cap
	}
	if len(q.Hash) == 0 {
		return
	}
	hash := make([]uint64, 0, len(p.Hash)+len(q.Hash))
	ms := make([]float64, 0, len(p.Hash)+len(q.Hash))
	i, j := 0, 0
	for i < len(p.Hash) && j < len(q.Hash) {
		if p.Hash[i] < q.Hash[j] || (p.Hash[i] == q.Hash[j] && p.Ms[i] <= q.Ms[j]) {
			hash, ms = append(hash, p.Hash[i]), append(ms, p.Ms[i])
			i++
		} else {
			hash, ms = append(hash, q.Hash[j]), append(ms, q.Ms[j])
			j++
		}
	}
	hash = append(hash, p.Hash[i:]...)
	ms = append(ms, p.Ms[i:]...)
	hash = append(hash, q.Hash[j:]...)
	ms = append(ms, q.Ms[j:]...)
	if p.Cap > 0 && len(hash) > p.Cap {
		hash, ms = hash[:p.Cap], ms[:p.Cap]
	}
	p.Hash, p.Ms = hash, ms
}

func (p *RTTPartial) clone() *RTTPartial {
	c := &RTTPartial{Cap: p.Cap, Seen: p.Seen}
	c.Hash = append([]uint64(nil), p.Hash...)
	c.Ms = append([]float64(nil), p.Ms...)
	return c
}

// Partial is one shard's share of a day: a DayAgg plus the reservoir
// state a byte-identical merge needs. It is gob-encodable, so the agg
// cache can persist shard partials and an incremental re-run merges
// them instead of re-reading the day.
type Partial struct {
	// Agg carries every DayAgg field except RTTMinMs, which only
	// Finish materialises (the merged reservoir defines it).
	Agg *DayAgg
	// RTT holds the per-service mergeable reservoirs.
	RTT map[classify.Service]*RTTPartial
}

// NewPartial returns the identity partial for day: merging it changes
// nothing, and Finish on it yields an empty (but fully materialised)
// DayAgg.
func NewPartial(day time.Time) *Partial {
	y, m, d := day.UTC().Date()
	return &Partial{Agg: &DayAgg{Day: time.Date(y, m, d, 0, 0, 0, 0, time.UTC)}}
}

// Partial finalises the aggregator into its mergeable form. Like
// Result, it materialises the internal ID-indexed accumulators — once
// per day, not per record — but keeps the RTT reservoirs as mergeable
// (hash, ms) pairs instead of projecting them to values. The
// aggregator is consumed: use either Partial or Result, not both
// (Result is Partial().Finish()).
func (a *Aggregator) Partial() *Partial {
	if a.finished {
		panic("analytics: Partial after Result")
	}
	a.finished = true
	agg := a.agg

	// Subscriptions: batch-allocate the SubDay and SvcUse backing
	// arrays, then size each PerSvc map to its exact touched count.
	agg.Subs = make(map[uint32]*SubDay, len(a.subs))
	subDays := make([]SubDay, len(a.subs))
	nUse := 0
	for _, sa := range a.subs {
		for id := range sa.perSvc {
			if sa.perSvc[id].touched {
				nUse++
			}
		}
	}
	uses := make([]SvcUse, nUse)
	si, ui := 0, 0
	for subID, sa := range a.subs {
		sd := &subDays[si]
		si++
		sd.Tech = sa.tech
		sd.Flows = sa.flows
		sd.Down = sa.down
		sd.Up = sa.up
		n := 0
		for id := range sa.perSvc {
			if sa.perSvc[id].touched {
				n++
			}
		}
		sd.PerSvc = make(map[classify.Service]*SvcUse, n)
		for id := range sa.perSvc {
			if u := &sa.perSvc[id]; u.touched {
				use := &uses[ui]
				ui++
				use.Down = u.down
				use.Up = u.up
				sd.PerSvc[a.cls.ServiceName(classify.ServiceID(id))] = use
			}
		}
		agg.Subs[subID] = sd
	}
	a.subs = nil

	// Per-service byte totals: every service any record classified to,
	// Unknown included.
	agg.ServiceBytes = make(map[classify.Service]uint64, a.nsvc)
	for id, touched := range a.svcTouched {
		if touched {
			agg.ServiceBytes[a.cls.ServiceName(classify.ServiceID(id))] = a.svcBytes[id]
		}
	}

	// Server inventory: expand each address's service bitset.
	agg.ServerIPs = make(map[wire.Addr]*IPInfo, len(a.ips))
	infos := make([]IPInfo, len(a.ips))
	ii := 0
	for addr, acc := range a.ips {
		info := &infos[ii]
		ii++
		info.Bytes = acc.bytes
		info.Services = make(map[classify.Service]bool, bits.OnesCount64(acc.svcs)+len(acc.over))
		for set := acc.svcs; set != 0; set &= set - 1 {
			id := classify.ServiceID(bits.TrailingZeros64(set))
			info.Services[a.cls.ServiceName(id)] = true
		}
		for id := range acc.over {
			info.Services[a.cls.ServiceName(id)] = true
		}
		agg.ServerIPs[addr] = info
	}
	a.ips = nil

	// Domain drill-down: the internal per-ID maps become the exported
	// inner maps directly — no copying.
	agg.DomainBytes = make(map[classify.Service]map[string]uint64, 8)
	for id, m := range a.domainBytes {
		if m != nil {
			agg.DomainBytes[a.cls.ServiceName(classify.ServiceID(id))] = m
		}
	}
	a.domainBytes = nil

	agg.Cols = a.cols
	agg.Sketches = a.sk
	a.sk = nil
	p := &Partial{Agg: agg}
	for id, res := range a.rtt {
		if res != nil {
			if p.RTT == nil {
				p.RTT = make(map[classify.Service]*RTTPartial, 6)
			}
			p.RTT[a.cls.ServiceName(classify.ServiceID(id))] = res.partial()
		}
	}
	a.rtt = nil
	return p
}

// Merge folds q into p. Both must describe the same day. q is never
// modified and p never aliases q's maps or slices afterwards, so a
// merged result stays valid when q is separately persisted or merged
// again. Merge is associative and commutative in every field except
// SubDay.Tech, where the first writer wins — irrelevant in practice
// because a subscription's records carry one technology, and sharding
// by client address keeps a subscription on one shard anyway.
func (p *Partial) Merge(q *Partial) error {
	if q == nil || q.Agg == nil {
		return nil
	}
	if p.Agg == nil {
		p.Agg = &DayAgg{Day: q.Agg.Day}
	}
	a, b := p.Agg, q.Agg
	if a.Day.IsZero() {
		a.Day = b.Day
	}
	if !b.Day.IsZero() && !a.Day.Equal(b.Day) {
		return fmt.Errorf("analytics: merge day mismatch: %s vs %s",
			a.Day.Format("2006-01-02"), b.Day.Format("2006-01-02"))
	}

	if len(b.Subs) > 0 && a.Subs == nil {
		a.Subs = make(map[uint32]*SubDay, len(b.Subs))
	}
	for id, sd := range b.Subs {
		dst := a.Subs[id]
		if dst == nil {
			dst = &SubDay{Tech: sd.Tech}
			a.Subs[id] = dst
		}
		dst.Flows += sd.Flows
		dst.Down += sd.Down
		dst.Up += sd.Up
		for svc, use := range sd.PerSvc {
			if dst.PerSvc == nil {
				dst.PerSvc = make(map[classify.Service]*SvcUse, len(sd.PerSvc))
			}
			du := dst.PerSvc[svc]
			if du == nil {
				du = &SvcUse{}
				dst.PerSvc[svc] = du
			}
			du.Down += use.Down
			du.Up += use.Up
		}
	}

	for i, v := range b.ProtoBytes {
		a.ProtoBytes[i] += v
	}
	for t := range b.DownBins {
		for i, v := range b.DownBins[t] {
			a.DownBins[t][i] += v
		}
	}

	if len(b.ServiceBytes) > 0 && a.ServiceBytes == nil {
		a.ServiceBytes = make(map[classify.Service]uint64, len(b.ServiceBytes))
	}
	for svc, v := range b.ServiceBytes {
		a.ServiceBytes[svc] += v
	}

	if len(b.ServerIPs) > 0 && a.ServerIPs == nil {
		a.ServerIPs = make(map[wire.Addr]*IPInfo, len(b.ServerIPs))
	}
	for addr, info := range b.ServerIPs {
		dst := a.ServerIPs[addr]
		if dst == nil {
			dst = &IPInfo{Services: make(map[classify.Service]bool, len(info.Services))}
			a.ServerIPs[addr] = dst
		}
		dst.Bytes += info.Bytes
		if dst.Services == nil && len(info.Services) > 0 {
			dst.Services = make(map[classify.Service]bool, len(info.Services))
		}
		for svc, ok := range info.Services {
			if ok {
				dst.Services[svc] = true
			}
		}
	}

	if len(b.DomainBytes) > 0 && a.DomainBytes == nil {
		a.DomainBytes = make(map[classify.Service]map[string]uint64, len(b.DomainBytes))
	}
	for svc, doms := range b.DomainBytes {
		dst := a.DomainBytes[svc]
		if dst == nil {
			dst = make(map[string]uint64, len(doms))
			a.DomainBytes[svc] = dst
		}
		for dom, v := range doms {
			dst[dom] += v
		}
	}

	if len(b.QUICVersions) > 0 && a.QUICVersions == nil {
		a.QUICVersions = make(map[string]uint64, len(b.QUICVersions))
	}
	for ver, n := range b.QUICVersions {
		a.QUICVersions[ver] += n
	}

	// Sketches merge ahead of the scalar adds because the identity
	// rules need the pre-add Flows counts to tell an empty shard from a
	// non-empty exact one.
	switch {
	case b.Sketches == nil && b.Flows == 0:
		// Merging an identity/empty partial changes nothing.
	case a.Sketches == nil && a.Flows == 0:
		// An identity partial adopts the other side's mode.
		a.Sketches = b.Sketches.Clone()
	case a.Sketches != nil && b.Sketches != nil:
		a.Sketches.Merge(b.Sketches)
	default:
		// One non-empty side is exact, the other sketched: the union
		// cannot be summarised faithfully, so drop the sketches rather
		// than silently under-count.
		a.Sketches = nil
	}

	a.TotalDown += b.TotalDown
	a.TotalUp += b.TotalUp
	a.Flows += b.Flows
	// The merged aggregate is only as wide as its narrowest input
	// (zero means all columns — the identity partial narrows nothing).
	a.Cols = a.Cols.Norm() & b.Cols.Norm()

	for svc, rq := range q.RTT {
		if p.RTT == nil {
			p.RTT = make(map[classify.Service]*RTTPartial, len(q.RTT))
		}
		rp := p.RTT[svc]
		if rp == nil {
			p.RTT[svc] = rq.clone()
			continue
		}
		rp.merge(rq)
	}
	return nil
}

// Finish projects the partial onto the exported DayAgg schema:
// reservoirs materialise into RTTMinMs and every map is non-nil, so a
// merged (or gob round-tripped) partial yields the same shape the
// single-fold Result produces. The partial is consumed — its Agg is
// returned, not copied.
func (p *Partial) Finish() *DayAgg {
	agg := p.Agg
	if agg == nil {
		agg = &DayAgg{}
		p.Agg = agg
	}
	if agg.Subs == nil {
		agg.Subs = make(map[uint32]*SubDay)
	}
	if agg.ServiceBytes == nil {
		agg.ServiceBytes = make(map[classify.Service]uint64)
	}
	if agg.ServerIPs == nil {
		agg.ServerIPs = make(map[wire.Addr]*IPInfo)
	}
	if agg.DomainBytes == nil {
		agg.DomainBytes = make(map[classify.Service]map[string]uint64)
	}
	if agg.QUICVersions == nil {
		agg.QUICVersions = make(map[string]uint64)
	}
	agg.RTTMinMs = make(map[classify.Service][]float64, len(p.RTT))
	for svc, r := range p.RTT {
		ms := make([]float64, len(r.Ms))
		copy(ms, r.Ms)
		agg.RTTMinMs[svc] = ms
	}
	return agg
}
