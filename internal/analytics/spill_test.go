package analytics

import (
	"bytes"
	"context"
	"os"
	"strings"
	"testing"
	"time"
)

// Bounded-memory external merge tests: a tiny budget must force
// spills (and, with a tiny fan-in, multi-pass merges) while the final
// aggregate stays byte-identical to the unbounded in-memory run —
// serial and sharded alike. Spill failures must surface as day
// errors, never as silently different numbers.

func TestSpillEquivalence(t *testing.T) {
	recs := genDayRecords(17, 4*spillCheckEvery+500)
	want := canon(t, foldSerial(recs))

	for _, tc := range []struct {
		name   string
		shards int
		budget int64
		fanIn  int
	}{
		{"serial tiny budget", 1, 1, 2}, // spill at every check, fan-in 2 forces passes
		{"serial small budget", 1, 16 << 10, 0},
		{"sharded tiny budget", 3, 1, 2},
		{"sharded small budget", 3, 16 << 10, 0},
	} {
		t.Run(tc.name, func(t *testing.T) {
			spills0, passes0 := mSpills.Load(), mSpillMergePass.Load()
			aggs, dayErrs, err := RunReport(context.Background(), sliceSource{recs},
				[]time.Time{testDay}, nil, RunConfig{
					ShardsPerDay: tc.shards,
					MemBudget:    tc.budget,
					SpillDir:     t.TempDir(),
					SpillFanIn:   tc.fanIn,
				})
			if err != nil || len(dayErrs) > 0 {
				t.Fatalf("RunReport: err=%v dayErrs=%v", err, dayErrs)
			}
			if len(aggs) != 1 {
				t.Fatalf("got %d aggs, want 1", len(aggs))
			}
			if got := canon(t, aggs[0]); !bytes.Equal(got, want) {
				t.Error("spilled aggregate differs from the in-memory run")
			}
			if mSpills.Load() == spills0 {
				t.Error("budget never forced a spill; the test exercised nothing")
			}
			if tc.fanIn == 2 && mSpillMergePass.Load() == passes0 {
				t.Error("fan-in 2 never forced a multi-pass merge")
			}
		})
	}
}

// TestSpillSketchEquivalence: the spill path must carry sketches
// through gob like the shard-partial cache does.
func TestSpillSketchEquivalence(t *testing.T) {
	recs := genDayRecords(19, 4000)
	base, dayErrs, err := RunReport(context.Background(), sliceSource{recs},
		[]time.Time{testDay}, nil, RunConfig{Sketch: true})
	if err != nil || len(dayErrs) > 0 || len(base) != 1 {
		t.Fatalf("baseline: err=%v dayErrs=%v n=%d", err, dayErrs, len(base))
	}
	want := canon(t, base[0])

	spilled, dayErrs, err := RunReport(context.Background(), sliceSource{recs},
		[]time.Time{testDay}, nil, RunConfig{
			Sketch: true, MemBudget: 8 << 10, SpillDir: t.TempDir(), SpillFanIn: 2,
		})
	if err != nil || len(dayErrs) > 0 || len(spilled) != 1 {
		t.Fatalf("spilled: err=%v dayErrs=%v n=%d", err, dayErrs, len(spilled))
	}
	if got := canon(t, spilled[0]); !bytes.Equal(got, want) {
		t.Error("spilled sketch aggregate differs from the in-memory run")
	}
}

// TestSpillCleansUp: the per-attempt temp directories vanish after the
// run, success or not — a five-year pipeline must not leak a spill
// directory per day.
func TestSpillCleansUp(t *testing.T) {
	dir := t.TempDir()
	recs := genDayRecords(21, 4000)
	_, dayErrs, err := RunReport(context.Background(), sliceSource{recs},
		[]time.Time{testDay}, nil, RunConfig{
			MemBudget: 1, SpillDir: dir, ShardsPerDay: 2,
		})
	if err != nil || len(dayErrs) > 0 {
		t.Fatalf("RunReport: err=%v dayErrs=%v", err, dayErrs)
	}
	ents, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(ents) != 0 {
		t.Errorf("spill dir not cleaned up: %d entries remain", len(ents))
	}
}

// TestSpillDirFailureIsDayError: an unusable spill root fails the day
// loudly (a budget the machine cannot honour must not silently become
// an unbounded run).
func TestSpillDirFailureIsDayError(t *testing.T) {
	bad := t.TempDir() + "/not-a-dir"
	if err := os.WriteFile(bad, []byte("file, not dir"), 0o644); err != nil {
		t.Fatal(err)
	}
	recs := genDayRecords(23, 500)
	_, dayErrs, err := RunReport(context.Background(), sliceSource{recs},
		[]time.Time{testDay}, nil, RunConfig{MemBudget: 1, SpillDir: bad})
	if err != nil {
		t.Fatal(err)
	}
	if len(dayErrs) != 1 || !strings.Contains(dayErrs[0].Err.Error(), "spill dir") {
		t.Fatalf("dayErrs = %v, want one spill-dir failure", dayErrs)
	}
}

// TestLiveBytesGrows: the accounting estimate must increase as records
// accumulate — it is the budget signal, so a flat estimate would make
// spilling never (or always) fire.
func TestLiveBytesGrows(t *testing.T) {
	recs := genDayRecords(25, 3000)
	a := NewAggregator(testDay, nil)
	if a.LiveBytes() != 0 {
		t.Errorf("empty aggregator estimates %d bytes, want 0", a.LiveBytes())
	}
	var prev int64
	for i := range recs {
		a.Add(&recs[i])
		if i == len(recs)/10 {
			prev = a.LiveBytes()
			if prev <= 0 {
				t.Fatalf("estimate after %d records is %d, want > 0", i+1, prev)
			}
		}
	}
	if got := a.LiveBytes(); got <= prev {
		t.Errorf("estimate did not grow: %d after 10%% of records, %d after all", prev, got)
	}
}
