package analytics

import (
	"errors"
	"testing"
	"time"

	"repro/internal/asn"
	"repro/internal/classify"
	"repro/internal/flowrec"
	"repro/internal/wire"
)

var testDay = time.Date(2016, 5, 10, 0, 0, 0, 0, time.UTC)

// mkRec builds a minimal record for aggregation tests.
func mkRec(sub uint32, tech flowrec.AccessTech, name string, down, up uint64) *flowrec.Record {
	return &flowrec.Record{
		Client:     wire.AddrFrom(10, 0, byte(sub>>8), byte(sub)),
		Server:     wire.AddrFrom(93, 1, byte(sub>>8), byte(sub)),
		SubID:      sub,
		Tech:       tech,
		Proto:      flowrec.ProtoTCP,
		Web:        flowrec.WebTLS,
		ServerName: name,
		NameSrc:    flowrec.NameSNI,
		Start:      testDay.Add(12 * time.Hour),
		BytesDown:  down,
		BytesUp:    up,
	}
}

// feed pushes n copies of a record through an aggregator, bumping the
// client port so each is a distinct flow.
func feed(a *Aggregator, rec *flowrec.Record, n int) {
	for i := 0; i < n; i++ {
		r := *rec
		r.CliPort = uint16(40000 + i)
		a.Add(&r)
	}
}

func TestActivityFilter(t *testing.T) {
	a := NewAggregator(testDay, nil)
	// Sub 1: clearly active (12 flows, lots of bytes).
	feed(a, mkRec(1, flowrec.TechADSL, "example.org", 10<<20, 1<<20), 12)
	// Sub 2: enough bytes but too few flows.
	feed(a, mkRec(2, flowrec.TechADSL, "example.org", 10<<20, 1<<20), 5)
	// Sub 3: enough flows but too few bytes down.
	feed(a, mkRec(3, flowrec.TechADSL, "example.org", 1000, 1000), 15)
	// Sub 4: enough flows and down, not enough up.
	feed(a, mkRec(4, flowrec.TechFTTH, "example.org", 10<<20, 100), 15)
	agg := a.Result()
	adsl, ftth := agg.ActiveSubs()
	if adsl != 1 || ftth != 0 {
		t.Errorf("active = %d/%d, want 1/0", adsl, ftth)
	}
	oa, of := agg.ObservedSubs()
	if oa != 3 || of != 1 {
		t.Errorf("observed = %d/%d, want 3/1", oa, of)
	}
	pts := ActiveSeries([]*DayAgg{agg})
	if len(pts) != 1 || pts[0].Active != 1 || pts[0].Observed != 4 {
		t.Errorf("ActiveSeries = %+v", pts)
	}
	if pts[0].ActivePct != 25 {
		t.Errorf("ActivePct = %v", pts[0].ActivePct)
	}
}

func TestServiceOfP2PWithoutName(t *testing.T) {
	rec := mkRec(1, flowrec.TechADSL, "", 1000, 1000)
	rec.Web = flowrec.WebP2P
	if got := ServiceOf(classify.Default(), rec); got != P2PService {
		t.Errorf("ServiceOf P2P = %q", got)
	}
}

func TestServiceSeriesThresholds(t *testing.T) {
	a := NewAggregator(testDay, nil)
	// Sub 1 visits Netflix heavily; sub 2 touches a Netflix beacon only.
	feed(a, mkRec(1, flowrec.TechFTTH, "occ-0.nflxvideo.net", 100<<20, 5<<20), 12)
	feed(a, mkRec(2, flowrec.TechFTTH, "netflix.com", 1<<10, 512), 3)
	feed(a, mkRec(2, flowrec.TechFTTH, "other.example", 30<<20, 2<<20), 12)
	series := ServiceSeries([]*DayAgg{a.Result()}, "Netflix")
	if len(series) != 1 {
		t.Fatal("missing day")
	}
	p := series[0]
	// 2 active FTTH subs; only one passes the Netflix visit threshold.
	if p.PopPct[1] != 50 {
		t.Errorf("PopPct = %v, want 50", p.PopPct[1])
	}
	wantVol := float64(12 * (100<<20 + 5<<20))
	if p.VolPerUser[1] != wantVol {
		t.Errorf("VolPerUser = %v, want %v", p.VolPerUser[1], wantVol)
	}
}

func TestServiceByteShare(t *testing.T) {
	a := NewAggregator(testDay, nil)
	feed(a, mkRec(1, flowrec.TechADSL, "r1.googlevideo.com", 75<<20, 1<<20), 12)
	feed(a, mkRec(2, flowrec.TechADSL, "unclassified.example", 25<<20, 1<<20), 12)
	share := ServiceByteShare([]*DayAgg{a.Result()}, "YouTube")
	if len(share) != 1 || share[0].SharePct != 75 {
		t.Errorf("share = %+v, want 75%%", share)
	}
}

func TestMonthlySeriesGrouping(t *testing.T) {
	var aggs []*DayAgg
	for _, day := range []time.Time{
		time.Date(2014, 4, 2, 0, 0, 0, 0, time.UTC),
		time.Date(2014, 4, 20, 0, 0, 0, 0, time.UTC),
		time.Date(2014, 5, 3, 0, 0, 0, 0, time.UTC),
	} {
		a := NewAggregator(day, nil)
		rec := mkRec(1, flowrec.TechADSL, "x.example", 100<<20, 10<<20)
		rec.Start = day.Add(10 * time.Hour)
		feed(a, rec, 12)
		aggs = append(aggs, a.Result())
	}
	ms := MonthlySeries(aggs)
	if len(ms) != 2 {
		t.Fatalf("months = %d, want 2", len(ms))
	}
	if ms[0].Days != 2 || ms[1].Days != 1 {
		t.Errorf("days per month = %d,%d", ms[0].Days, ms[1].Days)
	}
	want := float64(12 * 100 << 20)
	if ms[0].Mean[0][Down] != want {
		t.Errorf("April mean = %v, want %v", ms[0].Mean[0][Down], want)
	}
	if ms[0].Mean[0][Up] != float64(12*10<<20) {
		t.Errorf("April upload mean = %v", ms[0].Mean[0][Up])
	}
}

func TestHourlyRatio(t *testing.T) {
	mk := func(day time.Time, hour int, bytes uint64) *DayAgg {
		a := NewAggregator(day, nil)
		rec := mkRec(1, flowrec.TechADSL, "x.example", bytes, 1000)
		rec.Start = day.Add(time.Duration(hour) * time.Hour)
		a.Add(rec)
		return a.Result()
	}
	d14 := time.Date(2014, 4, 2, 0, 0, 0, 0, time.UTC)
	d17 := time.Date(2017, 4, 2, 0, 0, 0, 0, time.UTC)
	den := []*DayAgg{mk(d14, 10, 50<<20)}
	num := []*DayAgg{mk(d17, 10, 150<<20)}
	curve := HourlyRatio(num, den, flowrec.TechADSL, 0)
	if len(curve) != TimeBinCount {
		t.Fatalf("curve length = %d", len(curve))
	}
	bin := 10 * 6
	if curve[bin].Y != 3 {
		t.Errorf("ratio at 10:00 = %v, want 3", curve[bin].Y)
	}
	if curve[0].Y != 0 {
		t.Errorf("empty bin ratio = %v, want 0", curve[0].Y)
	}
	smoothed := HourlyRatio(num, den, flowrec.TechADSL, 100)
	if len(smoothed) != 100 {
		t.Errorf("smoothed length = %d", len(smoothed))
	}
}

func TestProtocolShares(t *testing.T) {
	a := NewAggregator(testDay, nil)
	http := mkRec(1, flowrec.TechADSL, "x.example", 60<<20, 0)
	http.Web = flowrec.WebHTTP
	a.Add(http)
	tls := mkRec(1, flowrec.TechADSL, "y.example", 40<<20, 0)
	tls.Web = flowrec.WebTLS
	a.Add(tls)
	p2p := mkRec(1, flowrec.TechADSL, "", 500<<20, 0)
	p2p.Web = flowrec.WebP2P
	a.Add(p2p) // must NOT count toward web shares
	shares := ProtocolShares([]*DayAgg{a.Result()})
	if len(shares) != 1 {
		t.Fatal("missing month")
	}
	s := shares[0].SharePct
	if s[flowrec.WebHTTP] != 60 || s[flowrec.WebTLS] != 40 {
		t.Errorf("shares = %v", s)
	}
}

func TestRTTDist(t *testing.T) {
	a := NewAggregator(testDay, nil)
	rec := mkRec(1, flowrec.TechADSL, "scontent.xx.fbcdn.net", 1<<20, 1<<10)
	rec.RTTMin = 3 * time.Millisecond
	rec.RTTSamples = 5
	a.Add(rec)
	rec2 := mkRec(1, flowrec.TechADSL, "scontent.xx.fbcdn.net", 1<<20, 1<<10)
	rec2.RTTMin = 110 * time.Millisecond
	rec2.RTTSamples = 2
	a.Add(rec2)
	noRTT := mkRec(1, flowrec.TechADSL, "scontent.xx.fbcdn.net", 1<<20, 1<<10)
	a.Add(noRTT) // zero samples: excluded
	dist := RTTDist([]*DayAgg{a.Result()}, "Facebook")
	if dist.N() != 2 {
		t.Fatalf("samples = %d, want 2", dist.N())
	}
	if got := dist.P(10); got != 0.5 {
		t.Errorf("P(10ms) = %v, want 0.5", got)
	}
}

func TestServerFootprintSharedVsDedicated(t *testing.T) {
	a := NewAggregator(testDay, nil)
	shared := wire.AddrFrom(23, 62, 1, 1)
	fb := mkRec(1, flowrec.TechADSL, "fbstatic-a.akamaihd.net", 1<<20, 1<<10)
	fb.Server = shared
	a.Add(fb)
	other := mkRec(2, flowrec.TechADSL, "cdn.unrelated.example", 1<<20, 1<<10)
	other.Server = shared // same address serves something else
	a.Add(other)
	dedicated := mkRec(1, flowrec.TechADSL, "scontent.xx.fbcdn.net", 1<<20, 1<<10)
	dedicated.Server = wire.AddrFrom(31, 13, 64, 7)
	a.Add(dedicated)

	fp := ServerFootprint([]*DayAgg{a.Result()}, "Facebook")
	if len(fp) != 1 {
		t.Fatal("missing day")
	}
	if fp[0].Shared != 1 || fp[0].Dedicated != 1 {
		t.Errorf("footprint = %+v, want 1 shared + 1 dedicated", fp[0])
	}
}

func TestASNBreakdown(t *testing.T) {
	a := NewAggregator(testDay, nil)
	fb := mkRec(1, flowrec.TechADSL, "scontent.xx.fbcdn.net", 1<<20, 1<<10)
	fb.Server = wire.AddrFrom(31, 13, 64, 7)
	a.Add(fb)
	fb2 := mkRec(1, flowrec.TechADSL, "fbstatic-a.akamaihd.net", 1<<20, 1<<10)
	fb2.Server = wire.AddrFrom(23, 62, 1, 1)
	a.Add(fb2)

	var table asn.Table
	p1, _ := asn.ParsePrefix("31.13.64.0/18")
	p2, _ := asn.ParsePrefix("23.62.0.0/16")
	table.Insert(p1, asn.ASFacebook)
	table.Insert(p2, asn.ASAkamai)
	var ribs asn.RIBSet
	ribs.Add(time.Date(2013, 7, 1, 0, 0, 0, 0, time.UTC), &table)

	pts := ASNBreakdown([]*DayAgg{a.Result()}, "Facebook", &ribs)
	if len(pts) != 1 {
		t.Fatal("missing day")
	}
	if pts[0].ByOrg[asn.OrgFacebook] != 1 || pts[0].ByOrg[asn.OrgAkamai] != 1 {
		t.Errorf("breakdown = %v", pts[0].ByOrg)
	}
}

func TestDomainShares(t *testing.T) {
	a := NewAggregator(testDay, nil)
	feed(a, mkRec(1, flowrec.TechADSL, "r1---sn.googlevideo.com", 80<<20, 1<<10), 1)
	feed(a, mkRec(1, flowrec.TechADSL, "www.youtube.com", 20<<20, 1<<10), 1)
	shares := DomainShares([]*DayAgg{a.Result()}, "YouTube")
	if len(shares) != 1 {
		t.Fatal("missing month")
	}
	s := shares[0].SharePct
	if s["googlevideo.com"] != 80 || s["youtube.com"] != 20 {
		t.Errorf("domain shares = %v", s)
	}
}

func TestSecondLevelDomain(t *testing.T) {
	cases := map[string]string{
		"scontent.xx.fbcdn.net":   "fbcdn.net",
		"fbcdn.net":               "fbcdn.net",
		"localhost":               "localhost",
		"fbstatic-a.akamaihd.net": "akamaihd.net",
		"WWW.YouTube.COM.":        "youtube.com",
	}
	for in, want := range cases {
		if got := SecondLevelDomain(in); got != want {
			t.Errorf("SecondLevelDomain(%q) = %q, want %q", in, got, want)
		}
	}
}

func TestDailyVolumeDist(t *testing.T) {
	a := NewAggregator(testDay, nil)
	feed(a, mkRec(1, flowrec.TechADSL, "x.example", 10<<20, 1<<20), 12)
	feed(a, mkRec(2, flowrec.TechADSL, "x.example", 50<<20, 1<<20), 12)
	feed(a, mkRec(3, flowrec.TechFTTH, "x.example", 90<<20, 1<<20), 12)
	dist := DailyVolumeDist([]*DayAgg{a.Result()}, flowrec.TechADSL, Down)
	if dist.N() != 2 {
		t.Fatalf("samples = %d, want 2 (ADSL only)", dist.N())
	}
	// Per-sub daily totals: 12×10 MB = 120 MB and 12×50 MB = 600 MB.
	if got := dist.CCDF(float64(200 << 20)); got != 0.5 {
		t.Errorf("CCDF(200MB) = %v, want 0.5", got)
	}
	up := DailyVolumeDist([]*DayAgg{a.Result()}, flowrec.TechADSL, Up)
	if up.Median() != float64(12<<20) {
		t.Errorf("upload median = %v", up.Median())
	}
}

// fakeSource serves canned records and outages.
type fakeSource struct {
	data map[time.Time][]*flowrec.Record
}

func (f fakeSource) Records(day time.Time, fn func(*flowrec.Record)) error {
	recs, ok := f.data[day]
	if !ok {
		return ErrNoData
	}
	for _, r := range recs {
		fn(r)
	}
	return nil
}

func TestRunParallelAndOutages(t *testing.T) {
	d1 := time.Date(2015, 1, 1, 0, 0, 0, 0, time.UTC)
	d2 := time.Date(2015, 1, 2, 0, 0, 0, 0, time.UTC)
	d3 := time.Date(2015, 1, 3, 0, 0, 0, 0, time.UTC)
	rec := mkRec(1, flowrec.TechADSL, "x.example", 1<<20, 1<<10)
	src := fakeSource{data: map[time.Time][]*flowrec.Record{
		d1: {rec}, d3: {rec, rec},
	}}
	aggs, err := Run(src, []time.Time{d3, d2, d1}, nil, 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(aggs) != 2 {
		t.Fatalf("aggs = %d, want 2 (one outage)", len(aggs))
	}
	if !aggs[0].Day.Equal(d1) || !aggs[1].Day.Equal(d3) {
		t.Errorf("days out of order: %v, %v", aggs[0].Day, aggs[1].Day)
	}
	if aggs[1].Flows != 2 {
		t.Errorf("d3 flows = %d", aggs[1].Flows)
	}
}

type errSource struct{}

func (errSource) Records(time.Time, func(*flowrec.Record)) error {
	return errors.New("disk on fire")
}

func TestRunPropagatesErrors(t *testing.T) {
	_, err := Run(errSource{}, []time.Time{testDay}, nil, 2)
	if err == nil {
		t.Fatal("error swallowed")
	}
}

func TestStoreSourceRoundTrip(t *testing.T) {
	store, err := flowrec.OpenStore(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	w, err := store.CreateDay(testDay)
	if err != nil {
		t.Fatal(err)
	}
	rec := mkRec(5, flowrec.TechFTTH, "occ-0.nflxvideo.net", 42<<20, 2<<20)
	if err := w.Write(rec); err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	aggs, err := Run(StoreSource{Store: store}, []time.Time{testDay, testDay.AddDate(0, 0, 1)}, nil, 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(aggs) != 1 {
		t.Fatalf("aggs = %d", len(aggs))
	}
	if aggs[0].ServiceBytes["Netflix"] != 42<<20 {
		t.Errorf("Netflix bytes = %d", aggs[0].ServiceBytes["Netflix"])
	}
}

func BenchmarkAggregatorAdd(b *testing.B) {
	a := NewAggregator(testDay, nil)
	rec := mkRec(1, flowrec.TechADSL, "r3---sn-hpa7kn7s.googlevideo.com", 40<<20, 1<<20)
	rec.RTTMin = 3 * time.Millisecond
	rec.RTTSamples = 10
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		rec.SubID = uint32(i % 300)
		a.Add(rec)
	}
}
