package analytics

import (
	"math"
	"testing"
	"time"

	"repro/internal/flowrec"
	"repro/internal/wire"
)

// rttRec builds a distinct RTT-carrying record toward an rttServices
// subject ("Facebook" via facebook.com), with i woven into the flow
// identity so every record hashes differently.
func rttRec(i int, rtt time.Duration) *flowrec.Record {
	return &flowrec.Record{
		Client:     wire.AddrFrom(10, 0, byte(i>>8), byte(i)),
		Server:     wire.AddrFrom(31, 13, 64, 1),
		CliPort:    uint16(20000 + i%40000),
		SrvPort:    443,
		SubID:      uint32(i),
		Tech:       flowrec.TechADSL,
		Proto:      flowrec.ProtoTCP,
		Web:        flowrec.WebTLS,
		ServerName: "www.facebook.com",
		NameSrc:    flowrec.NameSNI,
		Start:      testDay.Add(time.Duration(i) * time.Second),
		BytesDown:  1000,
		BytesUp:    100,
		RTTMin:     rtt,
		RTTSamples: 3,
	}
}

// aggregateRTT runs records through a fresh aggregator and returns the
// materialised Facebook sample.
func aggregateRTT(recs []*flowrec.Record) []float64 {
	a := NewAggregator(testDay, nil)
	for _, r := range recs {
		a.Add(r)
	}
	return a.Result().RTTMinMs["Facebook"]
}

func TestReservoirKeepsEverythingUnderCap(t *testing.T) {
	var recs []*flowrec.Record
	for i := 0; i < 100; i++ {
		recs = append(recs, rttRec(i, time.Duration(i+1)*time.Millisecond))
	}
	got := aggregateRTT(recs)
	if len(got) != 100 {
		t.Fatalf("kept %d samples, want all 100", len(got))
	}
	var sum float64
	for _, v := range got {
		sum += v
	}
	if want := 100.0 * 101 / 2; sum != want {
		t.Errorf("sample sum = %v, want %v (values altered)", sum, want)
	}
}

func TestReservoirDeterministicAcrossOrderings(t *testing.T) {
	const n = 500
	res := newRTTReservoir(50)
	for i := 0; i < n; i++ {
		r := rttRec(i, time.Duration(i+1)*time.Millisecond)
		res.add(rttSample{hash: flowSampleHash(r), ms: float64(i + 1)})
	}
	forward := res.values()
	if len(forward) != 50 {
		t.Fatalf("kept %d, want 50", len(forward))
	}

	// Same records, reversed and interleaved orders: identical sample.
	for name, order := range map[string]func(i int) int{
		"reversed":    func(i int) int { return n - 1 - i },
		"interleaved": func(i int) int { return (i * 7) % n },
	} {
		res := newRTTReservoir(50)
		for i := 0; i < n; i++ {
			j := order(i)
			r := rttRec(j, time.Duration(j+1)*time.Millisecond)
			res.add(rttSample{hash: flowSampleHash(r), ms: float64(j + 1)})
		}
		got := res.values()
		if len(got) != len(forward) {
			t.Fatalf("%s: kept %d, want %d", name, len(got), len(forward))
		}
		for i := range got {
			if got[i] != forward[i] {
				t.Fatalf("%s: sample[%d] = %v, want %v", name, i, got[i], forward[i])
			}
		}
	}
}

// TestReservoirNotPrefixBiased is the regression for the bug this
// replaces: with values fed in ascending arrival order, a keep-first
// policy would retain exactly the lowest cap values. The hash-based
// reservoir must mix early and late arrivals.
func TestReservoirNotPrefixBiased(t *testing.T) {
	const n, cap = 2000, 100
	res := newRTTReservoir(cap)
	for i := 0; i < n; i++ {
		r := rttRec(i, time.Duration(i+1)*time.Millisecond)
		res.add(rttSample{hash: flowSampleHash(r), ms: float64(i)})
	}
	got := res.values()
	if len(got) != cap {
		t.Fatalf("kept %d, want %d", len(got), cap)
	}
	late := 0
	var mean float64
	for _, v := range got {
		if v >= n/2 {
			late++
		}
		mean += v
	}
	mean /= float64(len(got))
	if late == 0 {
		t.Error("no samples from the second half of the stream: prefix-biased")
	}
	// A uniform sample of 0..1999 has mean ~1000; allow a generous
	// band — catching truncation (mean ~50), not hash quality.
	if math.Abs(mean-float64(n)/2) > float64(n)/5 {
		t.Errorf("sample mean = %v, want ~%v for an unbiased sample", mean, n/2)
	}
}

func TestAggregatorRTTSampleDeterministicAcrossOrder(t *testing.T) {
	var fwd, rev []*flowrec.Record
	for i := 0; i < 300; i++ {
		fwd = append(fwd, rttRec(i, time.Duration(i%40+1)*time.Millisecond))
	}
	for i := len(fwd) - 1; i >= 0; i-- {
		rev = append(rev, fwd[i])
	}
	a, b := aggregateRTT(fwd), aggregateRTT(rev)
	if len(a) != 300 || len(b) != 300 {
		t.Fatalf("kept %d/%d, want 300 each", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("order-dependent aggregate: sample[%d] %v vs %v", i, a[i], b[i])
		}
	}
}
