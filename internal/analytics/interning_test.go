package analytics

import (
	"reflect"
	"strings"
	"testing"
	"time"

	"repro/internal/classify"
	"repro/internal/flowrec"
	"repro/internal/simnet"
	"repro/internal/wire"
)

// The service-ID interning refactor must be invisible from outside:
// the ID-indexed Aggregator has to produce exactly the DayAgg the
// string-keyed implementation produced — same values AND same map key
// sets — and the hot-path helpers must not allocate.

// referenceDayAgg is the pre-interning aggregation, kept as the test
// oracle: plain string-keyed maps filled record by record.
func referenceDayAgg(day time.Time, cls *classify.Classifier, recs []*flowrec.Record) *DayAgg {
	y, m, d := day.UTC().Date()
	agg := &DayAgg{
		Day:          time.Date(y, m, d, 0, 0, 0, 0, time.UTC),
		Subs:         make(map[uint32]*SubDay),
		ServiceBytes: make(map[classify.Service]uint64),
		RTTMinMs:     make(map[classify.Service][]float64),
		ServerIPs:    make(map[wire.Addr]*IPInfo),
		DomainBytes:  make(map[classify.Service]map[string]uint64),
		QUICVersions: make(map[string]uint64),
	}
	rtt := make(map[classify.Service]*rttReservoir)
	for _, rec := range recs {
		svc := ServiceOf(cls, rec)
		sd := agg.Subs[rec.SubID]
		if sd == nil {
			sd = &SubDay{Tech: rec.Tech, PerSvc: make(map[classify.Service]*SvcUse)}
			agg.Subs[rec.SubID] = sd
		}
		sd.Flows++
		sd.Down += rec.BytesDown
		sd.Up += rec.BytesUp
		if svc != classify.Unknown {
			use := sd.PerSvc[svc]
			if use == nil {
				use = &SvcUse{}
				sd.PerSvc[svc] = use
			}
			use.Down += rec.BytesDown
			use.Up += rec.BytesUp
		}
		agg.TotalDown += rec.BytesDown
		agg.TotalUp += rec.BytesUp
		agg.Flows++
		agg.ProtoBytes[rec.Web] += rec.BytesDown + rec.BytesUp
		agg.ServiceBytes[svc] += rec.BytesDown
		if rec.Web == flowrec.WebQUIC && rec.QUICVer != "" {
			agg.QUICVersions[rec.QUICVer]++
		}
		bin := timeBin(rec.Start)
		tech := 0
		if rec.Tech == flowrec.TechFTTH {
			tech = 1
		}
		agg.DownBins[tech][bin] += rec.BytesDown
		if rec.RTTSamples > 0 && rttServices[svc] {
			res := rtt[svc]
			if res == nil {
				res = newRTTReservoir(rttCap)
				rtt[svc] = res
			}
			res.add(rttSample{hash: flowSampleHash(rec), ms: float64(rec.RTTMin) / float64(time.Millisecond)})
		}
		if svc != P2PService && rec.Web != flowrec.WebDNS && rec.Web != flowrec.WebOther {
			info := agg.ServerIPs[rec.Server]
			if info == nil {
				info = &IPInfo{Services: make(map[classify.Service]bool, 2)}
				agg.ServerIPs[rec.Server] = info
			}
			info.Services[svc] = true
			info.Bytes += rec.BytesDown
			if svc != classify.Unknown && rec.ServerName != "" {
				dom := SecondLevelDomain(rec.ServerName)
				m := agg.DomainBytes[svc]
				if m == nil {
					m = make(map[string]uint64, 4)
					agg.DomainBytes[svc] = m
				}
				m[dom] += rec.BytesDown
			}
		}
	}
	for svc, res := range rtt {
		agg.RTTMinMs[svc] = res.values()
	}
	return agg
}

// TestAggregatorMatchesReference drives both implementations with a
// full simulated day — P2P, QUIC, DNS, gateway noise, RTT samples, the
// works — and requires identical aggregates, exported key sets
// included.
func TestAggregatorMatchesReference(t *testing.T) {
	day := time.Date(2016, 11, 20, 0, 0, 0, 0, time.UTC) // post-FBZero: every protocol present
	w := simnet.NewWorld(7, simnet.Scale{ADSL: 24, FTTH: 12})
	var recs []*flowrec.Record
	w.EmitDay(day, func(r *flowrec.Record) {
		c := *r
		recs = append(recs, &c)
	})
	if len(recs) == 0 {
		t.Fatal("no records emitted")
	}

	cls := classify.Default()
	a := NewAggregator(day, cls)
	for _, r := range recs {
		a.Add(r)
	}
	got := a.Result()
	want := referenceDayAgg(day, cls, recs)

	if got.TotalDown != want.TotalDown || got.TotalUp != want.TotalUp || got.Flows != want.Flows {
		t.Fatalf("totals: got %d/%d/%d, want %d/%d/%d",
			got.TotalDown, got.TotalUp, got.Flows, want.TotalDown, want.TotalUp, want.Flows)
	}
	if got.ProtoBytes != want.ProtoBytes {
		t.Errorf("ProtoBytes differ: %v vs %v", got.ProtoBytes, want.ProtoBytes)
	}
	if got.DownBins != want.DownBins {
		t.Error("DownBins differ")
	}
	if !reflect.DeepEqual(got.ServiceBytes, want.ServiceBytes) {
		t.Errorf("ServiceBytes differ:\n got %v\nwant %v", got.ServiceBytes, want.ServiceBytes)
	}
	if !reflect.DeepEqual(got.QUICVersions, want.QUICVersions) {
		t.Errorf("QUICVersions differ: %v vs %v", got.QUICVersions, want.QUICVersions)
	}
	if !reflect.DeepEqual(got.RTTMinMs, want.RTTMinMs) {
		t.Error("RTTMinMs differ")
	}
	if !reflect.DeepEqual(got.DomainBytes, want.DomainBytes) {
		t.Errorf("DomainBytes differ:\n got %v\nwant %v", got.DomainBytes, want.DomainBytes)
	}
	if len(got.Subs) != len(want.Subs) {
		t.Fatalf("Subs: %d vs %d", len(got.Subs), len(want.Subs))
	}
	for id, wsd := range want.Subs {
		gsd := got.Subs[id]
		if gsd == nil {
			t.Fatalf("sub %d missing", id)
		}
		if !reflect.DeepEqual(gsd, wsd) {
			t.Errorf("sub %d differs:\n got %+v\nwant %+v", id, gsd, wsd)
		}
	}
	if len(got.ServerIPs) != len(want.ServerIPs) {
		t.Fatalf("ServerIPs: %d vs %d", len(got.ServerIPs), len(want.ServerIPs))
	}
	for addr, winfo := range want.ServerIPs {
		ginfo := got.ServerIPs[addr]
		if ginfo == nil {
			t.Fatalf("server %v missing", addr)
		}
		if !reflect.DeepEqual(ginfo, winfo) {
			t.Errorf("server %v differs:\n got %+v\nwant %+v", addr, ginfo, winfo)
		}
	}
}

// TestSecondLevelDomainEquivalence pins the zero-alloc scan to the
// old Split/Join implementation.
func TestSecondLevelDomainEquivalence(t *testing.T) {
	old := func(host string) string {
		host = strings.TrimSuffix(strings.ToLower(host), ".")
		labels := strings.Split(host, ".")
		if len(labels) <= 2 {
			return host
		}
		return strings.Join(labels[len(labels)-2:], ".")
	}
	hosts := []string{
		"scontent.xx.fbcdn.net", "www.google.com", "r3---sn-hpa7kn7s.googlevideo.com",
		"netflix.com", "localhost", "", "a.b", "a.b.c.d.e.f",
		"WWW.Example.COM", "trailing.dot.example.", "a..b", ".", "..",
	}
	for _, h := range hosts {
		if got, want := SecondLevelDomain(h), old(h); got != want {
			t.Errorf("SecondLevelDomain(%q) = %q, want %q", h, got, want)
		}
	}
}

func TestSecondLevelDomainZeroAlloc(t *testing.T) {
	if allocs := testing.AllocsPerRun(200, func() {
		SecondLevelDomain("scontent.xx.fbcdn.net")
	}); allocs != 0 {
		t.Errorf("SecondLevelDomain allocates %.1f per call, want 0", allocs)
	}
}

// BenchmarkAggregatorDay measures stage one over a full simulated day
// of records, complementing the single-record BenchmarkAggregatorAdd.
func BenchmarkAggregatorDay(b *testing.B) {
	day := time.Date(2016, 5, 10, 0, 0, 0, 0, time.UTC)
	w := simnet.NewWorld(3, simnet.Scale{ADSL: 24, FTTH: 12})
	var recs []*flowrec.Record
	w.EmitDay(day, func(r *flowrec.Record) {
		c := *r
		recs = append(recs, &c)
	})
	cls := classify.Default()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		a := NewAggregator(day, cls)
		for _, r := range recs {
			a.Add(r)
		}
		if a.Result().Flows == 0 {
			b.Fatal("empty aggregate")
		}
	}
	b.ReportMetric(float64(len(recs)), "records/op")
}
