// Package analytics implements the paper's two-stage processing
// (section 2.2): stage one reduces each day's raw flow records to a
// compact per-day aggregate — per-subscription counters, per-service
// counters, protocol bytes, RTT samples, server-address inventories —
// and stage two (figures.go) turns slices of those aggregates into
// every table and figure of the evaluation. Days are independent, so
// stage one runs them in parallel, standing in for the Hadoop/Spark
// cluster.
package analytics

import (
	"errors"
	"fmt"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/classify"
	"repro/internal/flowrec"
	"repro/internal/metrics"
	"repro/internal/wire"
)

// P2PService is the label used for peer-to-peer traffic, which carries
// no domain and is recognised by the probe's payload heuristics.
const P2PService classify.Service = "Peer-To-Peer"

// Activity thresholds of section 3: a subscriber is active on a day
// when it generated at least 10 flows, downloaded more than 15 kB and
// uploaded more than 5 kB.
const (
	ActiveMinFlows = 10
	ActiveMinDown  = 15 << 10
	ActiveMinUp    = 5 << 10
)

// SubDay is one subscription's day.
type SubDay struct {
	Tech  flowrec.AccessTech
	Flows int
	Down  uint64
	Up    uint64
	// PerSvc accumulates the subscriber's traffic toward each
	// classified service.
	PerSvc map[classify.Service]*SvcUse
}

// SvcUse is a subscriber's daily traffic with one service.
type SvcUse struct {
	Down, Up uint64
}

// Active applies the section 3 filter.
func (s *SubDay) Active() bool {
	return s.Flows >= ActiveMinFlows && s.Down > ActiveMinDown && s.Up > ActiveMinUp
}

// TimeBinCount is the number of 10-minute bins per day (Figure 4).
const TimeBinCount = 144

// IPInfo tracks which services touched a server address on a day.
type IPInfo struct {
	Services map[classify.Service]bool
	Bytes    uint64
}

// rttCap bounds stored RTT samples per service-day. Over-cap days keep
// a deterministic hash-based uniform sample (see reservoir.go), not
// the first rttCap flows.
const rttCap = 60000

// DayAgg is the stage-one output for one day.
type DayAgg struct {
	Day  time.Time
	Subs map[uint32]*SubDay

	// ProtoBytes sums two-way bytes per probe protocol label.
	ProtoBytes [flowrec.WebProtoCount]uint64

	// DownBins holds downloaded bytes per 10-minute bin, per tech
	// (index 0 ADSL, 1 FTTH).
	DownBins [2][TimeBinCount]uint64

	// ServiceBytes sums downloaded bytes per service (Unknown keyed
	// by the empty service).
	ServiceBytes map[classify.Service]uint64

	// RTTMinMs holds per-flow minimum RTT samples in milliseconds for
	// the services Figure 10 examines.
	RTTMinMs map[classify.Service][]float64

	// ServerIPs inventories the day's server addresses (Figure 11).
	ServerIPs map[wire.Addr]*IPInfo

	// DomainBytes sums downloaded bytes per (service, second-level
	// domain) for Figure 11g-i.
	DomainBytes map[classify.Service]map[string]uint64

	// QUICVersions counts QUIC flows per gQUIC version tag (the
	// per-protocol drill-down the paper leaves out for brevity).
	QUICVersions map[string]uint64

	// TotalDown/TotalUp are whole-day byte sums.
	TotalDown, TotalUp uint64
	Flows              uint64
}

// rttServices are the Figure 10 subjects.
var rttServices = map[classify.Service]bool{
	"Facebook": true, "Instagram": true, "YouTube": true, "Google": true,
	"Netflix": true, "WhatsApp": true,
}

// Aggregator reduces one day's records. Not safe for concurrent use;
// the Runner gives each day its own.
type Aggregator struct {
	cls *classify.Classifier
	agg *DayAgg

	// rtt holds the per-service sampling reservoirs; Result
	// materialises them into agg.RTTMinMs.
	rtt map[classify.Service]*rttReservoir
}

// NewAggregator starts an aggregation for day using classifier cls
// (nil means classify.Default()).
func NewAggregator(day time.Time, cls *classify.Classifier) *Aggregator {
	if cls == nil {
		cls = classify.Default()
	}
	y, m, d := day.UTC().Date()
	return &Aggregator{
		cls: cls,
		rtt: make(map[classify.Service]*rttReservoir),
		agg: &DayAgg{
			Day:          time.Date(y, m, d, 0, 0, 0, 0, time.UTC),
			Subs:         make(map[uint32]*SubDay),
			ServiceBytes: make(map[classify.Service]uint64),
			RTTMinMs:     make(map[classify.Service][]float64),
			ServerIPs:    make(map[wire.Addr]*IPInfo),
			DomainBytes:  make(map[classify.Service]map[string]uint64),
			QUICVersions: make(map[string]uint64),
		},
	}
}

// ServiceOf classifies a record: P2P by probe label, everything else
// by server name.
func ServiceOf(cls *classify.Classifier, rec *flowrec.Record) classify.Service {
	if rec.Web == flowrec.WebP2P {
		return P2PService
	}
	return cls.Lookup(rec.ServerName)
}

// Add accumulates one record.
func (a *Aggregator) Add(rec *flowrec.Record) {
	agg := a.agg
	svc := ServiceOf(a.cls, rec)

	sd := agg.Subs[rec.SubID]
	if sd == nil {
		sd = &SubDay{Tech: rec.Tech, PerSvc: make(map[classify.Service]*SvcUse)}
		agg.Subs[rec.SubID] = sd
	}
	sd.Flows++
	sd.Down += rec.BytesDown
	sd.Up += rec.BytesUp
	if svc != classify.Unknown {
		use := sd.PerSvc[svc]
		if use == nil {
			use = &SvcUse{}
			sd.PerSvc[svc] = use
		}
		use.Down += rec.BytesDown
		use.Up += rec.BytesUp
	}

	agg.TotalDown += rec.BytesDown
	agg.TotalUp += rec.BytesUp
	agg.Flows++
	agg.ProtoBytes[rec.Web] += rec.BytesDown + rec.BytesUp
	agg.ServiceBytes[svc] += rec.BytesDown

	if rec.Web == flowrec.WebQUIC && rec.QUICVer != "" {
		agg.QUICVersions[rec.QUICVer]++
	}

	bin := timeBin(rec.Start)
	tech := 0
	if rec.Tech == flowrec.TechFTTH {
		tech = 1
	}
	agg.DownBins[tech][bin] += rec.BytesDown

	if rec.RTTSamples > 0 && rttServices[svc] {
		res := a.rtt[svc]
		if res == nil {
			res = newRTTReservoir(rttCap)
			a.rtt[svc] = res
		}
		res.add(rttSample{
			hash: flowSampleHash(rec),
			ms:   float64(rec.RTTMin) / float64(time.Millisecond),
		})
	}

	// Server inventory: only classified, non-P2P services are worth
	// tracking (P2P "servers" are other households), but unknown
	// services still mark addresses as shared.
	if svc != P2PService && rec.Web != flowrec.WebDNS && rec.Web != flowrec.WebOther {
		info := agg.ServerIPs[rec.Server]
		if info == nil {
			info = &IPInfo{Services: make(map[classify.Service]bool, 2)}
			agg.ServerIPs[rec.Server] = info
		}
		info.Services[svc] = true
		info.Bytes += rec.BytesDown

		if svc != classify.Unknown && rec.ServerName != "" {
			dom := SecondLevelDomain(rec.ServerName)
			m := agg.DomainBytes[svc]
			if m == nil {
				m = make(map[string]uint64, 4)
				agg.DomainBytes[svc] = m
			}
			m[dom] += rec.BytesDown
		}
	}
}

// Result finalises and returns the aggregate: the RTT reservoirs
// materialise into RTTMinMs in canonical (hash) order, so equal
// record sets yield byte-identical aggregates whatever the order they
// arrived in.
func (a *Aggregator) Result() *DayAgg {
	for svc, res := range a.rtt {
		a.agg.RTTMinMs[svc] = res.values()
	}
	a.rtt = nil
	return a.agg
}

// timeBin maps a timestamp to its 10-minute bin.
func timeBin(t time.Time) int {
	t = t.UTC()
	return (t.Hour()*60 + t.Minute()) / 10
}

// SecondLevelDomain trims a host name to its registrable-ish tail:
// the last two labels ("scontent.xx.fbcdn.net" → "fbcdn.net"). The
// handful of two-level public suffixes in our data (co.uk-style) do
// not occur, so two labels suffice, as in the paper's Figure 11g-i.
func SecondLevelDomain(host string) string {
	host = strings.TrimSuffix(strings.ToLower(host), ".")
	labels := strings.Split(host, ".")
	if len(labels) <= 2 {
		return host
	}
	return strings.Join(labels[len(labels)-2:], ".")
}

// ActiveSubs counts subscriptions passing the activity filter, per
// technology.
func (d *DayAgg) ActiveSubs() (adsl, ftth int) {
	for _, sd := range d.Subs {
		if !sd.Active() {
			continue
		}
		if sd.Tech == flowrec.TechFTTH {
			ftth++
		} else {
			adsl++
		}
	}
	return
}

// ObservedSubs counts all subscriptions seen, per technology.
func (d *DayAgg) ObservedSubs() (adsl, ftth int) {
	for _, sd := range d.Subs {
		if sd.Tech == flowrec.TechFTTH {
			ftth++
		} else {
			adsl++
		}
	}
	return
}

// Source supplies raw records for a day. Implementations: the on-disk
// store, or a simulation world directly (wired in core).
type Source interface {
	// Records streams one day's records. A day with no data returns
	// ErrNoData (probe outage); stage one skips it.
	Records(day time.Time, fn func(*flowrec.Record)) error
}

// ErrNoData marks a missing day — the probe outages of section 2.3.
var ErrNoData = errors.New("analytics: no data for day")

// Stage-one observability: per-day wall times, throughput and the
// occupancy of the worker pool. These are what let an operator spot
// the straggler day or the shrinking pool the paper's section 2.3
// outages would cause.
var (
	mStage1DayWall   = metrics.GetTimer("stage1.day_wall")
	mStage1Days      = metrics.GetCounter("stage1.days_done")
	mStage1Skipped   = metrics.GetCounter("stage1.days_skipped")
	mStage1Records   = metrics.GetCounter("stage1.records")
	mStage1Workers   = metrics.GetGauge("stage1.workers")
	mStage1Occupancy = metrics.GetGauge("stage1.occupancy_pct")
)

// Run aggregates the given days with a bounded pool of workers
// goroutines (<=0 means 4) pulling from a shared day index — the pool
// is the only goroutine cost no matter how many days are asked for
// (a Stride:1 full span is ~1975 of them). Days with no data are
// silently skipped — exactly how the paper's plots carry gaps across
// probe outages. The result is sorted by day.
func Run(src Source, days []time.Time, cls *classify.Classifier, workers int) ([]*DayAgg, error) {
	if workers <= 0 {
		workers = 4
	}
	if workers > len(days) {
		workers = len(days)
	}
	if len(days) == 0 {
		return nil, nil
	}
	type result struct {
		agg *DayAgg
		err error
	}
	results := make([]result, len(days))
	busy := make([]time.Duration, workers)

	mStage1Workers.Set(int64(workers))
	start := time.Now()
	var next atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= len(days) {
					return
				}
				day := days[i]
				t0 := time.Now()
				a := NewAggregator(day, cls)
				err := src.Records(day, a.Add)
				elapsed := time.Since(t0)
				busy[w] += elapsed
				mStage1DayWall.ObserveDuration(elapsed)
				if err != nil {
					if errors.Is(err, ErrNoData) {
						mStage1Skipped.Inc() // probe outage: leave the gap
						continue
					}
					results[i] = result{err: fmt.Errorf("analytics: day %s: %w", day.Format("2006-01-02"), err)}
					continue
				}
				agg := a.Result()
				mStage1Days.Inc()
				mStage1Records.Add(agg.Flows)
				results[i] = result{agg: agg}
			}
		}(w)
	}
	wg.Wait()

	// Occupancy: how much of the pool's wall-clock capacity did real
	// aggregation work fill. Low numbers mean stragglers or an
	// undersized day list, not a faster run.
	if wall := time.Since(start); wall > 0 {
		var total time.Duration
		for _, b := range busy {
			total += b
		}
		mStage1Occupancy.Set(int64(float64(total) / (float64(wall) * float64(workers)) * 100))
	}

	var out []*DayAgg
	for _, r := range results {
		if r.err != nil {
			return nil, r.err
		}
		if r.agg != nil {
			out = append(out, r.agg)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Day.Before(out[j].Day) })
	return out, nil
}
