// Package analytics implements the paper's two-stage processing
// (section 2.2): stage one reduces each day's raw flow records to a
// compact per-day aggregate — per-subscription counters, per-service
// counters, protocol bytes, RTT samples, server-address inventories —
// and stage two (figures.go) turns slices of those aggregates into
// every table and figure of the evaluation. Days are independent, so
// stage one runs them in parallel, standing in for the Hadoop/Spark
// cluster.
package analytics

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/classify"
	"repro/internal/flowrec"
	"repro/internal/metrics"
	"repro/internal/retry"
	"repro/internal/wire"
)

// P2PService is the label used for peer-to-peer traffic, which carries
// no domain and is recognised by the probe's payload heuristics.
const P2PService = classify.P2P

// Activity thresholds of section 3: a subscriber is active on a day
// when it generated at least 10 flows, downloaded more than 15 kB and
// uploaded more than 5 kB.
const (
	ActiveMinFlows = 10
	ActiveMinDown  = 15 << 10
	ActiveMinUp    = 5 << 10
)

// SubDay is one subscription's day.
type SubDay struct {
	Tech  flowrec.AccessTech
	Flows int
	Down  uint64
	Up    uint64
	// PerSvc accumulates the subscriber's traffic toward each
	// classified service.
	PerSvc map[classify.Service]*SvcUse
}

// SvcUse is a subscriber's daily traffic with one service.
type SvcUse struct {
	Down, Up uint64
}

// Active applies the section 3 filter.
func (s *SubDay) Active() bool {
	return s.Flows >= ActiveMinFlows && s.Down > ActiveMinDown && s.Up > ActiveMinUp
}

// TimeBinCount is the number of 10-minute bins per day (Figure 4).
const TimeBinCount = 144

// IPInfo tracks which services touched a server address on a day.
type IPInfo struct {
	Services map[classify.Service]bool
	Bytes    uint64
}

// rttCap bounds stored RTT samples per service-day. Over-cap days keep
// a deterministic hash-based uniform sample (see reservoir.go), not
// the first rttCap flows.
const rttCap = 60000

// DayAgg is the stage-one output for one day.
type DayAgg struct {
	Day  time.Time
	Subs map[uint32]*SubDay

	// ProtoBytes sums two-way bytes per probe protocol label.
	ProtoBytes [flowrec.WebProtoCount]uint64

	// DownBins holds downloaded bytes per 10-minute bin, per tech
	// (index 0 ADSL, 1 FTTH).
	DownBins [2][TimeBinCount]uint64

	// ServiceBytes sums downloaded bytes per service (Unknown keyed
	// by the empty service).
	ServiceBytes map[classify.Service]uint64

	// RTTMinMs holds per-flow minimum RTT samples in milliseconds for
	// the services Figure 10 examines.
	RTTMinMs map[classify.Service][]float64

	// ServerIPs inventories the day's server addresses (Figure 11).
	ServerIPs map[wire.Addr]*IPInfo

	// DomainBytes sums downloaded bytes per (service, second-level
	// domain) for Figure 11g-i.
	DomainBytes map[classify.Service]map[string]uint64

	// QUICVersions counts QUIC flows per gQUIC version tag (the
	// per-protocol drill-down the paper leaves out for brevity).
	QUICVersions map[string]uint64

	// TotalDown/TotalUp are whole-day byte sums.
	TotalDown, TotalUp uint64
	Flows              uint64

	// Cols records the column set this aggregate was built from (zero
	// means all columns — aggregates predating column gating). A cached
	// aggregate satisfies a request only when its Cols cover the
	// requested set; see core's aggregate cache. Cols is bookkeeping,
	// not data: CanonicalBytes deliberately excludes it.
	Cols flowrec.ColumnSet

	// Sketches carries the approximate summaries when the run was in
	// sketch mode, nil otherwise (exact mode — the default). Like Cols
	// it is excluded from CanonicalBytes: byte-identity is an
	// exact-state contract.
	Sketches *SketchSet
}

// rttServices are the Figure 10 subjects.
var rttServices = map[classify.Service]bool{
	"Facebook": true, "Instagram": true, "YouTube": true, "Google": true,
	"Netflix": true, "WhatsApp": true,
}

// memoCap bounds the per-aggregator name→ID memo. A day file repeats a
// few hundred distinct server names across millions of records; the
// cap only matters against adversarial name churn.
const memoCap = 1 << 16

// subAcc is the internal per-subscription accumulator: service usage
// lives in a dense ID-indexed slice instead of a map.
type subAcc struct {
	tech     flowrec.AccessTech
	flows    int
	down, up uint64
	perSvc   []svcUse
}

// svcUse mirrors SvcUse plus a touched bit, so Result can reproduce
// the exact key set map-based accumulation would have created (a key
// appears once any flow classifies to the service, even at 0 bytes).
type svcUse struct {
	down, up uint64
	touched  bool
}

// ipAcc is the internal per-server-address accumulator. The service
// set is a bitset for IDs < 64 — which covers any realistic rule set —
// with a lazily-allocated spill map beyond that, so the common case
// costs no allocation at all.
type ipAcc struct {
	bytes uint64
	svcs  uint64
	over  map[classify.ServiceID]struct{}
}

// Aggregator reduces one day's records. Not safe for concurrent use;
// the Runner gives each day its own — which is exactly why it can keep
// a private, unsynchronized name→ID memo and never touch the
// classifier's global RWMutex on the per-record path.
type Aggregator struct {
	cls  *classify.Classifier
	agg  *DayAgg
	nsvc int

	p2pID classify.ServiceID
	memo  map[string]classify.ServiceID // raw ServerName → ID, no locks

	subs        map[uint32]*subAcc
	svcBytes    []uint64
	svcTouched  []bool
	domainBytes []map[string]uint64
	ips         map[wire.Addr]ipAcc

	// rtt holds the per-service sampling reservoirs; Result
	// materialises them into agg.RTTMinMs.
	rtt      []*rttReservoir
	rttWant  []bool
	finished bool

	// sk, when non-nil, shadows the exact accumulators with mergeable
	// sketches (EnableSketches).
	sk *SketchSet

	// cols is the column contract this aggregator was built for;
	// accumulators whose input columns are outside it stay off (see
	// the want* gates). Always normalised: never zero.
	cols flowrec.ColumnSet
	// Per-accumulator gates, derived from cols once at construction so
	// Add pays plain bool tests, not bit arithmetic.
	wantSubs, wantBins, wantRTT, wantIPs, wantQUIC bool
}

// NewAggregator starts an aggregation for day using classifier cls
// (nil means classify.Default()), with every accumulator on.
func NewAggregator(day time.Time, cls *classify.Classifier) *Aggregator {
	return NewAggregatorCols(day, cls, 0)
}

// NewAggregatorCols starts an aggregation that only feeds the
// accumulators whose input columns are inside cols (zero means all
// columns). Gating is the column-pruning contract's other half: a
// record decoded from a pruned v2 scan carries zero values in the
// unrequested fields, and a v1 record carries real ones — gating off
// the accumulators that would read them makes the two byte-identical.
func NewAggregatorCols(day time.Time, cls *classify.Classifier, cols flowrec.ColumnSet) *Aggregator {
	if cls == nil {
		cls = classify.Default()
	}
	y, m, d := day.UTC().Date()
	nsvc := cls.NumServices()
	a := &Aggregator{
		cls:         cls,
		nsvc:        nsvc,
		memo:        make(map[string]classify.ServiceID, 512),
		subs:        make(map[uint32]*subAcc),
		svcBytes:    make([]uint64, nsvc),
		svcTouched:  make([]bool, nsvc),
		domainBytes: make([]map[string]uint64, nsvc),
		ips:         make(map[wire.Addr]ipAcc),
		rtt:         make([]*rttReservoir, nsvc),
		rttWant:     make([]bool, nsvc),
		agg: &DayAgg{
			Day: time.Date(y, m, d, 0, 0, 0, 0, time.UTC),
		},
	}
	a.p2pID, _ = cls.IDOf(classify.P2P) // always interned
	for svc := range rttServices {
		if id, ok := cls.IDOf(svc); ok {
			a.rttWant[id] = true
		}
	}
	a.cols = NormalizeCols(cols)
	a.wantSubs = a.cols.Has(flowrec.ColSubID)
	a.wantBins = a.cols.Has(flowrec.ColStart)
	a.wantRTT = a.cols.Covers(ColsRTT)
	a.wantIPs = a.cols.Has(flowrec.ColServer)
	a.wantQUIC = a.cols.Has(flowrec.ColQUICVer)
	return a
}

// EnableSketches turns on sketch mode for this aggregation: records
// additionally feed a SketchSet that rides in the resulting DayAgg.
// Must be called before the first Add.
func (a *Aggregator) EnableSketches() {
	if a.sk == nil {
		a.sk = NewSketchSet()
	}
}

// ServiceOf classifies a record: P2P by probe label, everything else
// by server name.
func ServiceOf(cls *classify.Classifier, rec *flowrec.Record) classify.Service {
	if rec.Web == flowrec.WebP2P {
		return P2PService
	}
	return cls.Lookup(rec.ServerName)
}

// serviceIDOf is ServiceOf on the memoized fast path.
func (a *Aggregator) serviceIDOf(rec *flowrec.Record) classify.ServiceID {
	if rec.Web == flowrec.WebP2P {
		return a.p2pID
	}
	if rec.ServerName == "" {
		return classify.UnknownID
	}
	if id, ok := a.memo[rec.ServerName]; ok {
		return id
	}
	id := a.cls.LookupID(rec.ServerName)
	if len(a.memo) < memoCap {
		a.memo[rec.ServerName] = id
	}
	return id
}

// Add accumulates one record. Accumulators whose input columns are
// outside the aggregator's column contract are skipped — their inputs
// may be pruned-away zero values, and half-real accumulation would be
// silently wrong rather than obviously absent.
func (a *Aggregator) Add(rec *flowrec.Record) {
	agg := a.agg
	id := a.serviceIDOf(rec)

	if a.sk != nil {
		a.sk.observe(a, rec, a.cls.ServiceName(id), id)
	}

	if a.wantSubs {
		sa := a.subs[rec.SubID]
		if sa == nil {
			sa = &subAcc{tech: rec.Tech}
			sa.perSvc = make([]svcUse, a.nsvc)
			a.subs[rec.SubID] = sa
		}
		sa.flows++
		sa.down += rec.BytesDown
		sa.up += rec.BytesUp
		if id != classify.UnknownID {
			use := &sa.perSvc[id]
			use.touched = true
			use.down += rec.BytesDown
			use.up += rec.BytesUp
		}
	}

	agg.TotalDown += rec.BytesDown
	agg.TotalUp += rec.BytesUp
	agg.Flows++
	agg.ProtoBytes[rec.Web] += rec.BytesDown + rec.BytesUp
	a.svcBytes[id] += rec.BytesDown
	a.svcTouched[id] = true

	if a.wantQUIC && rec.Web == flowrec.WebQUIC && rec.QUICVer != "" {
		if agg.QUICVersions == nil {
			agg.QUICVersions = make(map[string]uint64)
		}
		agg.QUICVersions[rec.QUICVer]++
	}

	if a.wantBins {
		bin := timeBin(rec.Start)
		tech := 0
		if rec.Tech == flowrec.TechFTTH {
			tech = 1
		}
		agg.DownBins[tech][bin] += rec.BytesDown
	}

	if a.wantRTT && rec.RTTSamples > 0 && a.rttWant[id] {
		res := a.rtt[id]
		if res == nil {
			res = newRTTReservoir(rttCap)
			a.rtt[id] = res
		}
		res.add(rttSample{
			hash: flowSampleHash(rec),
			ms:   float64(rec.RTTMin) / float64(time.Millisecond),
		})
	}

	// Server inventory: only classified, non-P2P services are worth
	// tracking (P2P "servers" are other households), but unknown
	// services still mark addresses as shared.
	if a.wantIPs && id != a.p2pID && rec.Web != flowrec.WebDNS && rec.Web != flowrec.WebOther {
		acc := a.ips[rec.Server]
		if id < 64 {
			acc.svcs |= 1 << id
		} else {
			if acc.over == nil {
				acc.over = make(map[classify.ServiceID]struct{}, 1)
			}
			acc.over[id] = struct{}{}
		}
		acc.bytes += rec.BytesDown
		a.ips[rec.Server] = acc

		if id != classify.UnknownID && rec.ServerName != "" {
			dom := SecondLevelDomain(rec.ServerName)
			m := a.domainBytes[id]
			if m == nil {
				m = make(map[string]uint64, 4)
				a.domainBytes[id] = m
			}
			m[dom] += rec.BytesDown
		}
	}
}

// Result finalises and returns the aggregate. The ID-indexed internal
// accumulators materialise here — once per day, not once per record —
// into the exported string-keyed DayAgg maps, with exactly the key
// sets map-based accumulation produced, so figures, the gob agg-cache
// and CSV export see an unchanged schema. RTT reservoirs materialise
// in canonical (hash) order, so equal record sets yield byte-identical
// aggregates whatever the order they arrived in. Result is the
// 1-shard special case of the mergeable form: Partial().Finish()
// (see merge.go).
func (a *Aggregator) Result() *DayAgg {
	if a.finished {
		return a.agg
	}
	return a.Partial().Finish()
}

// timeBin maps a timestamp to its 10-minute bin.
func timeBin(t time.Time) int {
	t = t.UTC()
	return (t.Hour()*60 + t.Minute()) / 10
}

// SecondLevelDomain trims a host name to its registrable-ish tail:
// the last two labels ("scontent.xx.fbcdn.net" → "fbcdn.net"). The
// handful of two-level public suffixes in our data (co.uk-style) do
// not occur, so two labels suffice, as in the paper's Figure 11g-i.
// The result is a substring of the (lowercased) input: zero
// allocations on the already-lowercase names probes export.
func SecondLevelDomain(host string) string {
	host = strings.TrimSuffix(strings.ToLower(host), ".")
	last := strings.LastIndexByte(host, '.')
	if last < 0 {
		return host
	}
	prev := strings.LastIndexByte(host[:last], '.')
	if prev < 0 {
		return host
	}
	return host[prev+1:]
}

// ActiveSubs counts subscriptions passing the activity filter, per
// technology.
func (d *DayAgg) ActiveSubs() (adsl, ftth int) {
	for _, sd := range d.Subs {
		if !sd.Active() {
			continue
		}
		if sd.Tech == flowrec.TechFTTH {
			ftth++
		} else {
			adsl++
		}
	}
	return
}

// ObservedSubs counts all subscriptions seen, per technology.
func (d *DayAgg) ObservedSubs() (adsl, ftth int) {
	for _, sd := range d.Subs {
		if sd.Tech == flowrec.TechFTTH {
			ftth++
		} else {
			adsl++
		}
	}
	return
}

// Source supplies raw records for a day. Implementations: the on-disk
// store, or a simulation world directly (wired in core).
type Source interface {
	// Records streams one day's records. A day with no data returns
	// ErrNoData (probe outage); stage one skips it.
	Records(day time.Time, fn func(*flowrec.Record)) error
}

// ErrNoData marks a missing day — the probe outages of section 2.3.
var ErrNoData = errors.New("analytics: no data for day")

// Stage-one observability: per-day wall times, throughput and the
// occupancy of the worker pool. These are what let an operator spot
// the straggler day or the shrinking pool the paper's section 2.3
// outages would cause.
var (
	mStage1DayWall   = metrics.GetTimer("stage1.day_wall")
	mStage1Days      = metrics.GetCounter("stage1.days_done")
	mStage1Skipped   = metrics.GetCounter("stage1.days_skipped")
	mStage1Failed    = metrics.GetCounter("stage1.days_failed")
	mStage1Records   = metrics.GetCounter("stage1.records")
	mStage1Workers   = metrics.GetGauge("stage1.workers")
	mStage1Occupancy = metrics.GetGauge("stage1.occupancy_pct")
)

// DayError pairs one day with the error that kept it out of a result —
// the per-day error report a degraded run hands back instead of dying.
type DayError struct {
	Day time.Time
	Err error
}

func (d DayError) Error() string {
	return fmt.Sprintf("%s: %v", d.Day.Format("2006-01-02"), d.Err)
}

// Unwrap lets errors.Is/As see through to the cause.
func (d DayError) Unwrap() error { return d.Err }

// RunConfig parameterises RunReport beyond the day list.
type RunConfig struct {
	// Workers bounds pool parallelism; <=0 means 4.
	Workers int
	// ShardsPerDay splits each day's records across this many
	// concurrent shard aggregators (hash of the anonymized client
	// address) and merges the partials — the within-day parallelism
	// the paper gets from its Hadoop reduction. The merged result is
	// byte-identical to the 1-shard fold for any value. 0 auto-sizes
	// from GOMAXPROCS and the worker count (ResolveShards); 1 keeps
	// the serial fold.
	ShardsPerDay int
	// Retry re-runs a day whose source failed transiently (fresh
	// aggregator per attempt — a half-fed aggregator is never
	// reused). The zero policy tries each day exactly once.
	Retry retry.Policy
	// DayTimeout caps one day's aggregation (all its attempts
	// together). Zero means no per-day deadline.
	DayTimeout time.Duration
	// OnDayPartials, when set and a day was sharded, receives each
	// day's shard partials after aggregation succeeds and before they
	// merge — the agg cache hook. The callback must not mutate the
	// partials (the merge never does) and may run concurrently from
	// several day workers.
	OnDayPartials func(day time.Time, parts []*Partial)
	// Cols is the column contract for the run: sources that support
	// column projection (a columnar store) decode only these columns,
	// and the aggregator gates its accumulators to match, so results
	// are byte-identical whether or not the source actually prunes.
	// Zero means all columns.
	Cols flowrec.ColumnSet
	// Sketch additionally feeds mergeable sketches (DayAgg.Sketches)
	// during aggregation. Exact accumulators still run; figures stay
	// byte-identical. Off by default.
	Sketch bool
	// MemBudget caps the live accumulator footprint of one day's
	// aggregation, in bytes (split across its shard aggregators). When
	// an aggregator's LiveBytes estimate crosses its share, it seals
	// its state into a Partial, spills it to disk and restarts empty;
	// the spilled partials merge back in bounded fan-in passes. The
	// result is byte-identical to the unbounded run for any budget.
	// 0 means unbounded (no spilling).
	MemBudget int64
	// SpillDir is where spilled partials land while a budgeted day is
	// in flight (a private temp directory per day attempt). Empty means
	// the OS temp dir.
	SpillDir string
	// SpillFanIn bounds how many spill files one merge pass opens;
	// values below 2 mean 8.
	SpillFanIn int
}

// Run aggregates the given days with a bounded pool of workers
// goroutines (<=0 means 4) pulling from a shared day index — the pool
// is the only goroutine cost no matter how many days are asked for
// (a Stride:1 full span is ~1975 of them). Days with no data are
// silently skipped — exactly how the paper's plots carry gaps across
// probe outages. The result is sorted by day. Any day error fails the
// whole call; RunReport is the degrading variant.
func Run(src Source, days []time.Time, cls *classify.Classifier, workers int) ([]*DayAgg, error) {
	aggs, dayErrs, err := RunReport(context.Background(), src, days, cls, RunConfig{Workers: workers})
	if err != nil {
		return nil, err
	}
	if len(dayErrs) > 0 {
		return nil, dayErrs[0].Err
	}
	return aggs, nil
}

// RunReport is stage one hardened for a five-year unattended run: days
// aggregate in parallel under ctx, each day retried per cfg.Retry when
// its source fails transiently and bounded by cfg.DayTimeout. A day
// that still fails is reported in the second return value while every
// other day completes — the caller chooses between strict (treat any
// DayError as fatal) and degraded (partial figures plus the report)
// semantics. The error return is reserved for ctx itself: when the
// parent context is cancelled the whole run aborts and no partial
// result is returned.
func RunReport(ctx context.Context, src Source, days []time.Time, cls *classify.Classifier, cfg RunConfig) ([]*DayAgg, []DayError, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	workers := cfg.Workers
	if workers <= 0 {
		workers = 4
	}
	if workers > len(days) {
		workers = len(days)
	}
	if len(days) == 0 {
		return nil, nil, ctx.Err()
	}
	shards := ResolveShards(cfg.ShardsPerDay, workers)
	type result struct {
		agg *DayAgg
		err error
	}
	results := make([]result, len(days))
	busy := make([]time.Duration, workers)

	mStage1Workers.Set(int64(workers))
	start := time.Now()
	var next atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for {
				if ctx.Err() != nil {
					return // cancelled: stop pulling days
				}
				i := int(next.Add(1)) - 1
				if i >= len(days) {
					return
				}
				day := days[i]
				t0 := time.Now()
				agg, err := runDay(ctx, src, day, cls, cfg, shards)
				elapsed := time.Since(t0)
				busy[w] += elapsed
				mStage1DayWall.ObserveDuration(elapsed)
				if err != nil {
					if errors.Is(err, ErrNoData) {
						mStage1Skipped.Inc() // probe outage: leave the gap
						continue
					}
					mStage1Failed.Inc()
					results[i] = result{err: fmt.Errorf("analytics: day %s: %w", day.Format("2006-01-02"), err)}
					continue
				}
				mStage1Days.Inc()
				mStage1Records.Add(agg.Flows)
				results[i] = result{agg: agg}
			}
		}(w)
	}
	wg.Wait()

	// Occupancy: how much of the pool's wall-clock capacity did real
	// aggregation work fill. Low numbers mean stragglers or an
	// undersized day list, not a faster run.
	if wall := time.Since(start); wall > 0 {
		var total time.Duration
		for _, b := range busy {
			total += b
		}
		mStage1Occupancy.Set(int64(float64(total) / (float64(wall) * float64(workers)) * 100))
	}
	if err := ctx.Err(); err != nil {
		return nil, nil, err
	}

	var out []*DayAgg
	var dayErrs []DayError
	for i, r := range results {
		if r.err != nil {
			dayErrs = append(dayErrs, DayError{Day: days[i], Err: r.err})
			continue
		}
		if r.agg != nil {
			out = append(out, r.agg)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Day.Before(out[j].Day) })
	sort.Slice(dayErrs, func(i, j int) bool { return dayErrs[i].Day.Before(dayErrs[j].Day) })
	return out, dayErrs, nil
}

// runDay aggregates one day under its deadline and retry policy. Every
// attempt starts fresh aggregators: a partially-fed one must never
// leak half a day into the result.
func runDay(ctx context.Context, src Source, day time.Time, cls *classify.Classifier, cfg RunConfig, shards int) (*DayAgg, error) {
	dctx := ctx
	if cfg.DayTimeout > 0 {
		var cancel context.CancelFunc
		dctx, cancel = context.WithTimeout(ctx, cfg.DayTimeout)
		defer cancel()
	}
	var agg *DayAgg
	err := cfg.Retry.Do(dctx, uint64(day.Unix()), func() error {
		// Each attempt gets a fresh spill directory: a half-spilled
		// attempt must never leak partials into the next one.
		sp, serr := newSpiller(cfg, day, shards)
		if serr != nil {
			return serr
		}
		defer sp.cleanup()
		if shards > 1 {
			a, rerr := shardDay(dctx, src, day, cls, shards, cfg.OnDayPartials, cfg.Cols, cfg.Sketch, sp)
			if rerr != nil {
				return rerr
			}
			agg = a
			return nil
		}
		a := NewAggregatorCols(day, cls, cfg.Cols)
		if cfg.Sketch {
			a.EnableSketches()
		}
		add := a.Add
		if sp != nil {
			n := 0
			add = func(r *flowrec.Record) {
				a.Add(r)
				if n++; n%spillCheckEvery == 0 && sp.over(a) {
					// Partial consumes the aggregator, so a fresh one
					// starts regardless of whether the spill landed.
					sp.spill(a.Partial())
					a = NewAggregatorCols(day, cls, cfg.Cols)
					if cfg.Sketch {
						a.EnableSketches()
					}
				}
			}
		}
		if rerr := recordsCols(dctx, src, day, scanFor(cfg.Cols, 1), add); rerr != nil {
			return rerr
		}
		if rerr := sp.firstErr(); rerr != nil {
			return rerr
		}
		if sp.spilled() {
			merged, rerr := sp.merge(day, []*Partial{a.Partial()})
			if rerr != nil {
				return rerr
			}
			agg = merged
			return nil
		}
		agg = a.Result()
		return nil
	})
	if err != nil {
		// A blown per-day deadline is this day's failure, not the whole
		// run's — unless the parent is what actually died.
		if ctx.Err() != nil {
			return nil, ctx.Err()
		}
		return nil, err
	}
	return agg, nil
}
