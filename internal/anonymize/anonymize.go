// Package anonymize implements the consistent client-address
// anonymization the probes apply before any record leaves the capture
// host (section 2.1 of the paper: "Customers are assigned fixed IP
// addresses, that the probes immediately anonymize in a consistent
// way").
//
// The mapper is a keyed 4-round Feistel permutation over the host
// bits, keeping the topmost octet intact so that operators can still
// tell customer ranges from server ranges in the logs. Being a
// permutation it is collision-free: two distinct subscribers never
// merge, which the per-subscriber analyses of sections 3-4 depend on.
package anonymize

import (
	"crypto/hmac"
	"crypto/sha256"
	"encoding/binary"
	"sync"

	"repro/internal/wire"
)

// Mapper anonymizes IPv4 addresses under a secret key. It is safe for
// concurrent use; lookups after the first for an address are served
// from a bounded cache.
type Mapper struct {
	key [32]byte

	mu    sync.RWMutex
	cache map[wire.Addr]wire.Addr
}

// cacheLimit bounds the memo table; beyond it the mapper recomputes.
// 1<<20 entries ≈ 12 MB, far more than the subscriber population of a
// PoP.
const cacheLimit = 1 << 20

// New returns a Mapper keyed by key. The same key always produces the
// same mapping, so logs collected across five years remain joinable —
// the property the longitudinal analyses need.
func New(key []byte) *Mapper {
	m := &Mapper{cache: make(map[wire.Addr]wire.Addr)}
	sum := sha256.Sum256(key)
	m.key = sum
	return m
}

// Anon returns the anonymized counterpart of addr. The first octet is
// preserved; the lower 24 bits are permuted by a keyed Feistel network.
func (m *Mapper) Anon(addr wire.Addr) wire.Addr {
	m.mu.RLock()
	out, ok := m.cache[addr]
	m.mu.RUnlock()
	if ok {
		return out
	}
	out = m.permute(addr, false)
	m.mu.Lock()
	if len(m.cache) < cacheLimit {
		m.cache[addr] = out
	}
	m.mu.Unlock()
	return out
}

// Deanon inverts Anon. It exists for validation and tests only; a
// deployed probe would not ship the key with the logs.
func (m *Mapper) Deanon(addr wire.Addr) wire.Addr {
	return m.permute(addr, true)
}

// permute runs the Feistel network over the low 24 bits of addr.
// The 24-bit block is split into 12-bit halves.
func (m *Mapper) permute(addr wire.Addr, invert bool) wire.Addr {
	v := addr.Uint32()
	hi := v & 0xFF000000
	block := v & 0x00FFFFFF
	l := (block >> 12) & 0xFFF
	r := block & 0xFFF

	const rounds = 4
	if !invert {
		for i := 0; i < rounds; i++ {
			l, r = r, l^m.roundF(r, uint8(i))
		}
	} else {
		for i := rounds - 1; i >= 0; i-- {
			l, r = r^m.roundF(l, uint8(i)), l
		}
	}
	return wire.AddrFromUint32(hi | l<<12 | r)
}

// roundF is the keyed round function: 12 bits of HMAC-SHA256 output.
func (m *Mapper) roundF(half uint32, round uint8) uint32 {
	mac := hmac.New(sha256.New, m.key[:])
	var msg [5]byte
	binary.BigEndian.PutUint32(msg[:4], half)
	msg[4] = round
	mac.Write(msg[:])
	sum := mac.Sum(nil)
	return uint32(binary.BigEndian.Uint16(sum[:2])) & 0xFFF
}
