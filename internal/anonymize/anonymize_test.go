package anonymize

import (
	"sync"
	"testing"
	"testing/quick"

	"repro/internal/wire"
)

func TestConsistent(t *testing.T) {
	m := New([]byte("probe-key"))
	a := wire.AddrFrom(10, 21, 33, 44)
	first := m.Anon(a)
	for i := 0; i < 5; i++ {
		if got := m.Anon(a); got != first {
			t.Fatalf("Anon not consistent: %v then %v", first, got)
		}
	}
	// A second mapper with the same key agrees (cross-probe property).
	if got := New([]byte("probe-key")).Anon(a); got != first {
		t.Errorf("same key, different mapping: %v vs %v", got, first)
	}
}

func TestDifferentKeysDiffer(t *testing.T) {
	a := wire.AddrFrom(10, 21, 33, 44)
	m1, m2 := New([]byte("key-1")), New([]byte("key-2"))
	if m1.Anon(a) == m2.Anon(a) {
		t.Error("different keys produced the same mapping (possible but wildly unlikely)")
	}
}

func TestFirstOctetPreserved(t *testing.T) {
	m := New([]byte("k"))
	f := func(v uint32) bool {
		a := wire.AddrFromUint32(v)
		return m.Anon(a)[0] == a[0]
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestPermutationInvertible(t *testing.T) {
	m := New([]byte("round-trip"))
	f := func(v uint32) bool {
		a := wire.AddrFromUint32(v)
		return m.Deanon(m.Anon(a)) == a
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func TestNoCollisionsWithinSubnet(t *testing.T) {
	// Exhaustively check a /16 slice: a permutation cannot collide.
	m := New([]byte("collision-check"))
	seen := make(map[wire.Addr]wire.Addr, 1<<12)
	for i := 0; i < 1<<12; i++ {
		a := wire.AddrFrom(10, 7, byte(i>>8), byte(i))
		out := m.Anon(a)
		if prev, dup := seen[out]; dup {
			t.Fatalf("collision: %v and %v both map to %v", prev, a, out)
		}
		seen[out] = a
	}
}

func TestActuallyChangesAddresses(t *testing.T) {
	// A permutation technically may fix some points, but fixing many
	// would mean broken keying. Count fixed points over 4096 addresses.
	m := New([]byte("fixed-points"))
	fixed := 0
	for i := 0; i < 4096; i++ {
		a := wire.AddrFrom(10, 0, byte(i>>8), byte(i))
		if m.Anon(a) == a {
			fixed++
		}
	}
	if fixed > 8 {
		t.Errorf("%d fixed points in 4096 addresses", fixed)
	}
}

func TestConcurrentUse(t *testing.T) {
	m := New([]byte("race"))
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				a := wire.AddrFrom(10, byte(g), byte(i>>4), byte(i))
				_ = m.Anon(a)
			}
		}(g)
	}
	wg.Wait()
	// Spot-check consistency after the storm.
	a := wire.AddrFrom(10, 3, 2, 1)
	if m.Anon(a) != m.Anon(a) {
		t.Error("inconsistent after concurrent use")
	}
}

func BenchmarkAnonCached(b *testing.B) {
	m := New([]byte("bench"))
	a := wire.AddrFrom(10, 1, 2, 3)
	m.Anon(a)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		m.Anon(a)
	}
}

func BenchmarkAnonCold(b *testing.B) {
	m := New([]byte("bench"))
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		m.Deanon(wire.AddrFromUint32(uint32(i))) // Deanon skips the cache
	}
}
