package faultinject

import (
	"errors"
	"testing"
	"time"

	"repro/internal/retry"
)

// TestParseIngestOps pins the grammar extension for the ingest
// daemon's fault sites.
func TestParseIngestOps(t *testing.T) {
	p, err := Parse("checkpoint:p=0.5,transient;seal:p=1,fails=2,transient")
	if err != nil {
		t.Fatal(err)
	}
	if !p.HasOp(OpCheckpoint) || !p.HasOp(OpSeal) {
		t.Fatalf("parsed plan misses ingest ops: %s", p)
	}
	if p.HasOp(OpReadDay) {
		t.Fatalf("parsed plan grew unrelated ops: %s", p)
	}
	// The spec round-trips through String, like every other op.
	rt, err := Parse(p.String())
	if err != nil {
		t.Fatalf("re-parsing %q: %v", p.String(), err)
	}
	if rt.String() != p.String() {
		t.Fatalf("spec did not round-trip: %q vs %q", rt.String(), p.String())
	}
	if _, err := Parse("checkponit:p=1"); err == nil {
		t.Fatal("typo op parsed")
	}
}

// TestOpFaultDeterministicAndRetryable: OpFault is deterministic in
// (seed, op, day, attempt), counts attempts so fails=N clears, and
// its transient faults satisfy the retry package's convention.
func TestOpFaultDeterministicAndRetryable(t *testing.T) {
	day := time.Date(2015, 6, 1, 0, 0, 0, 0, time.UTC)

	mk := func() *Plan {
		p, err := Parse("seal:p=1,fails=2,transient,seed=42")
		if err != nil {
			t.Fatal(err)
		}
		return p
	}

	// Two fresh plans agree attempt by attempt.
	a, b := mk(), mk()
	for i := 0; i < 4; i++ {
		ea, eb := a.OpFault(OpSeal, day), b.OpFault(OpSeal, day)
		if (ea == nil) != (eb == nil) {
			t.Fatalf("attempt %d: plans disagree (%v vs %v)", i+1, ea, eb)
		}
		if i < 2 && ea == nil {
			t.Fatalf("attempt %d: fails=2 fault did not fire", i+1)
		}
		if i >= 2 && ea != nil {
			t.Fatalf("attempt %d: fails=2 fault did not clear: %v", i+1, ea)
		}
		if ea != nil && !retry.Transient(ea) {
			t.Fatalf("transient fault not retryable: %v", ea)
		}
		var f *Fault
		if ea != nil && !errors.As(ea, &f) {
			t.Fatalf("OpFault returned a non-Fault error: %T", ea)
		}
	}

	// An op with no rules — and a nil plan — never fault.
	if err := mk().OpFault(OpCheckpoint, day); err != nil {
		t.Fatalf("ruleless op faulted: %v", err)
	}
	var nilPlan *Plan
	if err := nilPlan.OpFault(OpSeal, day); err != nil {
		t.Fatalf("nil plan faulted: %v", err)
	}
}
