package faultinject

import (
	"time"

	"repro/internal/analytics"
	"repro/internal/flowrec"
)

// Storage is the pipeline's storage surface, redeclared here so the
// wrapper can sit in front of any implementation without importing
// core (core imports simnet, which reuses this package's Plan — the
// structural interface breaks the cycle). It is method-for-method
// identical to core.Storage, so a *FaultyStorage satisfies both.
type Storage interface {
	// ReadDay streams one day's flow records; fn errors abort the read.
	ReadDay(day time.Time, fn func(*flowrec.Record) error) error
	// ReadDayCols is ReadDay with a column projection and predicate
	// pushdown (see core.Storage).
	ReadDayCols(day time.Time, sc flowrec.ColScan, fn func(*flowrec.Record) error) error
	// WriteDay materialises one day: emit receives a write callback
	// and the record count is returned.
	WriteDay(day time.Time, emit func(write func(*flowrec.Record) error) error) (uint64, error)
	// HasDay reports whether a day's log exists.
	HasDay(day time.Time) bool
	// Days lists stored days ascending.
	Days() ([]time.Time, error)
	// QuarantineDay moves a damaged day out of the read path.
	QuarantineDay(day time.Time) error
	// LoadAgg and SaveAgg access the per-day aggregate cache.
	LoadAgg(day time.Time) (*analytics.DayAgg, error)
	SaveAgg(agg *analytics.DayAgg) error
	// LoadPartials and SavePartials access the shard-partial side of
	// the aggregate cache (sharded stage-one runs persist unmerged
	// shard partials; incremental re-runs merge them back).
	LoadPartials(day time.Time) ([]*analytics.Partial, error)
	SavePartials(day time.Time, parts []*analytics.Partial) error
	// LoadRollup, SaveRollup and InvalidateRollups access the
	// multi-resolution rollup tier (see core.Storage).
	LoadRollup(g analytics.Grain, start time.Time) (*analytics.Rollup, error)
	SaveRollup(r *analytics.Rollup) error
	InvalidateRollups(day time.Time) error
	// Generation and BumpGeneration expose the lake generation counter
	// (see core.Storage).
	Generation() uint64
	BumpGeneration() uint64
}

// FaultyStorage injects the plan's faults in front of an inner
// Storage. A nil plan passes everything through untouched.
type FaultyStorage struct {
	inner Storage
	plan  *Plan
}

// Wrap builds a FaultyStorage over inner.
func Wrap(inner Storage, plan *Plan) *FaultyStorage {
	return &FaultyStorage{inner: inner, plan: plan}
}

// ReadDay injects read faults: transient/permanent I/O errors fail the
// call upfront; bitflip and truncate deliver a deterministic prefix of
// the day's records and then fail like a damaged gzip (wrapping
// flowrec.ErrCorrupt).
func (s *FaultyStorage) ReadDay(day time.Time, fn func(*flowrec.Record) error) error {
	attempt := s.plan.next(OpReadDay, day)
	f := s.plan.fault(OpReadDay, day, attempt)
	if f == nil {
		return s.inner.ReadDay(day, fn)
	}
	if !f.IsCorruption() {
		return f
	}
	// Corruption: the stream decodes up to the damage point, then the
	// decoder surfaces the fault — exactly how a flipped bit or a
	// truncated tail reads back.
	limit := s.plan.truncPoint(day)
	n := 0
	var ferr error = f
	err := s.inner.ReadDay(day, func(r *flowrec.Record) error {
		if n >= limit {
			return ferr
		}
		n++
		return fn(r)
	})
	if err == nil {
		// Fewer records than the damage point: the fault lands on the
		// trailer instead.
		return f
	}
	return err
}

// ReadDayCols injects the same read faults as ReadDay — a projected
// read of a day is the same physical operation as a full read, so it
// draws from the same fault schedule (OpReadDay) and corruption
// delivers the same deterministic record prefix before failing.
func (s *FaultyStorage) ReadDayCols(day time.Time, sc flowrec.ColScan, fn func(*flowrec.Record) error) error {
	attempt := s.plan.next(OpReadDay, day)
	f := s.plan.fault(OpReadDay, day, attempt)
	if f == nil {
		return s.inner.ReadDayCols(day, sc, fn)
	}
	if !f.IsCorruption() {
		return f
	}
	limit := s.plan.truncPoint(day)
	n := 0
	var ferr error = f
	err := s.inner.ReadDayCols(day, sc, func(r *flowrec.Record) error {
		if n >= limit {
			return ferr
		}
		n++
		return fn(r)
	})
	if err == nil {
		return f
	}
	return err
}

// WriteDay injects write faults: transient/permanent errors fail the
// call before any byte lands; torn writes cut the stream after a
// deterministic number of records, leaving a short day behind.
func (s *FaultyStorage) WriteDay(day time.Time, emit func(write func(*flowrec.Record) error) error) (uint64, error) {
	attempt := s.plan.next(OpWriteDay, day)
	f := s.plan.fault(OpWriteDay, day, attempt)
	if f == nil {
		return s.inner.WriteDay(day, emit)
	}
	if f.Kind != "torn write" {
		return 0, f
	}
	limit := s.plan.truncPoint(day)
	return s.inner.WriteDay(day, func(write func(*flowrec.Record) error) error {
		n := 0
		return emit(func(r *flowrec.Record) error {
			if n >= limit {
				return f
			}
			n++
			return write(r)
		})
	})
}

// HasDay passes through.
func (s *FaultyStorage) HasDay(day time.Time) bool { return s.inner.HasDay(day) }

// Days passes through.
func (s *FaultyStorage) Days() ([]time.Time, error) { return s.inner.Days() }

// QuarantineDay passes through: quarantine is the recovery path and
// must stay reliable for the degradation story to hold.
func (s *FaultyStorage) QuarantineDay(day time.Time) error { return s.inner.QuarantineDay(day) }

// LoadAgg injects cache-load faults.
func (s *FaultyStorage) LoadAgg(day time.Time) (*analytics.DayAgg, error) {
	attempt := s.plan.next(OpLoadAgg, day)
	if f := s.plan.fault(OpLoadAgg, day, attempt); f != nil {
		return nil, f
	}
	return s.inner.LoadAgg(day)
}

// SaveAgg injects cache-save faults.
func (s *FaultyStorage) SaveAgg(agg *analytics.DayAgg) error {
	attempt := s.plan.next(OpSaveAgg, agg.Day)
	if f := s.plan.fault(OpSaveAgg, agg.Day, attempt); f != nil {
		return f
	}
	return s.inner.SaveAgg(agg)
}

// LoadPartials injects cache-load faults: the partial cache is the
// same failure domain as the final-aggregate cache, so loadagg rules
// cover both.
func (s *FaultyStorage) LoadPartials(day time.Time) ([]*analytics.Partial, error) {
	attempt := s.plan.next(OpLoadAgg, day)
	if f := s.plan.fault(OpLoadAgg, day, attempt); f != nil {
		return nil, f
	}
	return s.inner.LoadPartials(day)
}

// SavePartials injects cache-save faults, under the saveagg rules.
func (s *FaultyStorage) SavePartials(day time.Time, parts []*analytics.Partial) error {
	attempt := s.plan.next(OpSaveAgg, day)
	if f := s.plan.fault(OpSaveAgg, day, attempt); f != nil {
		return f
	}
	return s.inner.SavePartials(day, parts)
}

// LoadRollup injects cache-load faults keyed by the window start: a
// rollup file is the same failure domain as the aggregate cache.
func (s *FaultyStorage) LoadRollup(g analytics.Grain, start time.Time) (*analytics.Rollup, error) {
	attempt := s.plan.next(OpLoadAgg, start)
	if f := s.plan.fault(OpLoadAgg, start, attempt); f != nil {
		return nil, f
	}
	return s.inner.LoadRollup(g, start)
}

// SaveRollup injects cache-save faults under the saveagg rules.
func (s *FaultyStorage) SaveRollup(r *analytics.Rollup) error {
	attempt := s.plan.next(OpSaveAgg, r.Start)
	if f := s.plan.fault(OpSaveAgg, r.Start, attempt); f != nil {
		return f
	}
	return s.inner.SaveRollup(r)
}

// InvalidateRollups passes through: like QuarantineDay, invalidation
// is the recovery path — faulting it would turn every injected
// corruption into a permanent stale-rollup hazard.
func (s *FaultyStorage) InvalidateRollups(day time.Time) error {
	return s.inner.InvalidateRollups(day)
}

// Generation passes through: the counter is bookkeeping, not I/O —
// faulting it would only decouple caches from the lake they mirror.
func (s *FaultyStorage) Generation() uint64 { return s.inner.Generation() }

// BumpGeneration passes through, like Generation.
func (s *FaultyStorage) BumpGeneration() uint64 { return s.inner.BumpGeneration() }

// IsCorruption reports whether the fault damages data (bitflip or
// truncation) rather than failing the operation outright.
func (f *Fault) IsCorruption() bool {
	return f.Kind == "bitflip" || f.Kind == "truncate"
}
