// Package faultinject is the deterministic fault layer of the chaos
// suite: it parses a compact fault-spec string into a Plan and decides
// — reproducibly, from a seed — where I/O errors, bit flips, gzip
// truncations, torn writes, injected latency and probe outages strike.
// The Plan drives two consumers: the Storage wrapper (storage.go),
// which corrupts the read/write path of the flow store and the
// aggregate cache, and simnet's EmitDayFaults, which suppresses whole
// days (outages) or drops individual records at emission time.
//
// Spec grammar (see the README for the full table):
//
//	spec    := clause (";" clause)*
//	clause  := op ":" param ("," param)*
//	op      := readday | writeday | loadagg | saveagg | emit | outage
//	         | checkpoint | seal
//	param   := "p=" float | "fails=" int | "seed=" uint
//	         | "latency=" duration | "transient" | "permanent"
//	         | "bitflip" | "truncate" | "torn"
//
// Example: "readday:p=0.01,transient;writeday:p=0.005,torn".
//
// Decisions hash (seed, op, day, attempt): the same spec over the same
// days always injects the same faults, so a chaos failure replays.
package faultinject

import (
	"fmt"
	"strconv"
	"strings"
	"sync"
	"time"

	"repro/internal/flowrec"
	"repro/internal/metrics"
)

// mInjected counts every injected fault (errors, corruptions, drops
// and latency hits alike) — the chaos suite's ground truth that the
// plan actually fired.
var mInjected = metrics.GetCounter("fault.injected")

// Op names a fault site.
type Op uint8

const (
	// OpReadDay faults flow-store day reads.
	OpReadDay Op = iota
	// OpWriteDay faults flow-store day writes.
	OpWriteDay
	// OpLoadAgg faults aggregate-cache loads.
	OpLoadAgg
	// OpSaveAgg faults aggregate-cache saves.
	OpSaveAgg
	// OpEmit drops individual records at emission time.
	OpEmit
	// OpOutage suppresses whole emitted days — the probe outages of
	// the paper's section 2.3.
	OpOutage
	// OpCheckpoint faults the ingest daemon's incremental partial
	// checkpoints (the hot-day snapshots edged persists mid-day).
	OpCheckpoint
	// OpSeal faults the ingest daemon's day seal — the WAL→sealed-day
	// rewrite at rollover.
	OpSeal
	opCount
)

var opNames = [opCount]string{"readday", "writeday", "loadagg", "saveagg", "emit", "outage", "checkpoint", "seal"}

func (o Op) String() string {
	if int(o) < len(opNames) {
		return opNames[o]
	}
	return fmt.Sprintf("op(%d)", uint8(o))
}

// Rule is one clause of a fault spec.
type Rule struct {
	Op Op
	// P is the fault probability per decision, in [0, 1].
	P float64
	// Transient marks the injected error retryable: a retry that
	// re-rolls the dice models a fault that clears on its own.
	Transient bool
	// BitFlip and Truncate corrupt the data stream instead of failing
	// the call: records flow until a deterministic point, then the
	// read errors like a damaged gzip would (wrapping
	// flowrec.ErrCorrupt, so quarantine logic engages).
	BitFlip  bool
	Truncate bool
	// Torn fails a write partway through — the short write of a full
	// disk or a killed process.
	Torn bool
	// Latency stalls the operation without failing it.
	Latency time.Duration
	// Fails bounds how many attempts of a selected day fail before
	// the fault clears (0 = the fault never clears by attempt count).
	// With Transient set this makes backoff convergence deterministic.
	Fails int
}

// Plan is a parsed, seeded fault spec. The zero Plan (and a nil Plan)
// injects nothing. Plan is safe for concurrent use.
type Plan struct {
	Seed  uint64
	rules [opCount][]Rule

	mu       sync.Mutex
	attempts map[attemptKey]int
}

type attemptKey struct {
	op  Op
	day int64
}

// Parse builds a Plan from a fault-spec string. An empty spec returns
// a nil Plan (inject nothing).
func Parse(spec string) (*Plan, error) {
	spec = strings.TrimSpace(spec)
	if spec == "" {
		return nil, nil
	}
	p := &Plan{Seed: 1, attempts: make(map[attemptKey]int)}
	for _, clause := range strings.Split(spec, ";") {
		clause = strings.TrimSpace(clause)
		if clause == "" {
			continue
		}
		op, params, ok := strings.Cut(clause, ":")
		if !ok {
			return nil, fmt.Errorf("faultinject: clause %q: want op:params", clause)
		}
		r := Rule{P: 1}
		switch strings.TrimSpace(op) {
		case "readday":
			r.Op = OpReadDay
		case "writeday":
			r.Op = OpWriteDay
		case "loadagg":
			r.Op = OpLoadAgg
		case "saveagg":
			r.Op = OpSaveAgg
		case "emit":
			r.Op = OpEmit
		case "outage":
			r.Op = OpOutage
		case "checkpoint":
			r.Op = OpCheckpoint
		case "seal":
			r.Op = OpSeal
		default:
			return nil, fmt.Errorf("faultinject: unknown op %q (want readday|writeday|loadagg|saveagg|emit|outage|checkpoint|seal)", op)
		}
		for _, param := range strings.Split(params, ",") {
			param = strings.TrimSpace(param)
			if param == "" {
				continue
			}
			key, val, hasVal := strings.Cut(param, "=")
			switch key {
			case "p":
				f, err := strconv.ParseFloat(val, 64)
				if err != nil || !hasVal || f < 0 || f > 1 {
					return nil, fmt.Errorf("faultinject: bad probability %q (want p=0..1)", param)
				}
				r.P = f
			case "fails":
				n, err := strconv.Atoi(val)
				if err != nil || !hasVal || n < 0 {
					return nil, fmt.Errorf("faultinject: bad attempt bound %q (want fails=N)", param)
				}
				r.Fails = n
			case "seed":
				n, err := strconv.ParseUint(val, 10, 64)
				if err != nil || !hasVal {
					return nil, fmt.Errorf("faultinject: bad seed %q (want seed=N)", param)
				}
				p.Seed = n
			case "latency":
				d, err := time.ParseDuration(val)
				if err != nil || !hasVal || d < 0 {
					return nil, fmt.Errorf("faultinject: bad latency %q (want latency=duration)", param)
				}
				r.Latency = d
			case "transient":
				r.Transient = true
			case "permanent":
				r.Transient = false
			case "bitflip":
				r.BitFlip = true
			case "truncate":
				r.Truncate = true
			case "torn":
				r.Torn = true
			default:
				return nil, fmt.Errorf("faultinject: unknown parameter %q in clause %q", param, clause)
			}
		}
		p.rules[r.Op] = append(p.rules[r.Op], r)
	}
	return p, nil
}

// String renders the plan back as a spec (for logs and -stats output).
func (p *Plan) String() string {
	if p == nil {
		return ""
	}
	var parts []string
	for op := Op(0); op < opCount; op++ {
		for _, r := range p.rules[op] {
			s := fmt.Sprintf("%s:p=%g", op, r.P)
			if r.Transient {
				s += ",transient"
			}
			if r.BitFlip {
				s += ",bitflip"
			}
			if r.Truncate {
				s += ",truncate"
			}
			if r.Torn {
				s += ",torn"
			}
			if r.Latency > 0 {
				s += ",latency=" + r.Latency.String()
			}
			if r.Fails > 0 {
				s += fmt.Sprintf(",fails=%d", r.Fails)
			}
			parts = append(parts, s)
		}
	}
	return strings.Join(parts, ";")
}

// next returns the 1-based attempt number for (op, day); the storage
// wrapper calls it once per operation so fails=N and per-attempt
// transient rolls see retries.
func (p *Plan) next(op Op, day time.Time) int {
	if p == nil {
		return 1
	}
	k := attemptKey{op, day.Unix()}
	p.mu.Lock()
	p.attempts[k]++
	n := p.attempts[k]
	p.mu.Unlock()
	return n
}

// roll returns a uniform [0,1) deterministic in (seed, op, day, salt).
func (p *Plan) roll(op Op, day time.Time, salt uint64) float64 {
	x := mix(p.Seed ^ uint64(op)<<56 ^ uint64(day.Unix()) ^ mix(salt))
	return float64(x>>11) / float64(1<<53)
}

// fires decides whether rule r strikes (op, day) on this attempt.
func (p *Plan) fires(r Rule, day time.Time, attempt int) bool {
	switch {
	case r.Fails > 0:
		// Selected days fail their first Fails attempts, then clear.
		return attempt <= r.Fails && p.roll(r.Op, day, 0) < r.P
	case r.Transient:
		// Independent roll per attempt: the fault clears on its own,
		// so backoff converges for p << 1.
		return p.roll(r.Op, day, uint64(attempt)) < r.P
	default:
		// Permanent faults (I/O errors, corruption) strike the same
		// days on every attempt.
		return p.roll(r.Op, day, 0) < r.P
	}
}

// fault returns the fault to inject for (op, day, attempt), or nil.
// Latency-only rules stall the caller here and return nil.
func (p *Plan) fault(op Op, day time.Time, attempt int) *Fault {
	if p == nil {
		return nil
	}
	for _, r := range p.rules[op] {
		if !p.fires(r, day, attempt) {
			continue
		}
		if r.Latency > 0 {
			mInjected.Inc()
			time.Sleep(r.Latency)
			continue // latency stalls but does not fail
		}
		mInjected.Inc()
		f := &Fault{Op: op, Day: day, Attempt: attempt, IsTransient: r.Transient}
		switch {
		case r.BitFlip:
			f.Kind = "bitflip"
			f.wrapped = flowrec.ErrCorrupt
		case r.Truncate:
			f.Kind = "truncate"
			f.wrapped = flowrec.ErrCorrupt
		case r.Torn:
			f.Kind = "torn write"
		case r.Transient:
			f.Kind = "transient i/o"
		default:
			f.Kind = "i/o"
		}
		return f
	}
	return nil
}

// truncPoint returns how many records a corrupted read delivers before
// failing — deterministic per day, small enough to matter.
func (p *Plan) truncPoint(day time.Time) int {
	return 1 + int(mix(p.Seed^uint64(day.Unix())^0x7472756e63)%255)
}

// DayOutage reports whether an "outage" rule suppresses day entirely.
// It implements simnet.FaultPlan; nil-safe.
func (p *Plan) DayOutage(day time.Time) bool {
	if p == nil {
		return false
	}
	for _, r := range p.rules[OpOutage] {
		if p.roll(OpOutage, day, 0) < r.P {
			mInjected.Inc()
			return true
		}
	}
	return false
}

// DropRecord reports whether an "emit" rule drops record idx of day.
// It implements simnet.FaultPlan; nil-safe and cheap (one hash).
func (p *Plan) DropRecord(day time.Time, idx uint64) bool {
	if p == nil {
		return false
	}
	for _, r := range p.rules[OpEmit] {
		if p.roll(OpEmit, day, idx+1) < r.P {
			mInjected.Inc()
			return true
		}
	}
	return false
}

// HasOp reports whether the plan has any rule for op.
func (p *Plan) HasOp(op Op) bool {
	return p != nil && len(p.rules[op]) > 0
}

// OpFault rolls the plan for one attempt of (op, day) and returns the
// injected fault, or nil. It is the hook for fault sites that live
// outside the storage wrapper — the ingest daemon consults it on
// every checkpoint and seal, with the same (seed, op, day, attempt)
// determinism as the wrapped I/O path. Nil-safe.
func (p *Plan) OpFault(op Op, day time.Time) error {
	if p == nil {
		return nil
	}
	if f := p.fault(op, day, p.next(op, day)); f != nil {
		return f
	}
	return nil
}

// Fault is an injected failure. Corruption faults wrap
// flowrec.ErrCorrupt so the pipeline's quarantine logic engages;
// transient faults satisfy retry.Transient.
type Fault struct {
	Op          Op
	Day         time.Time
	Attempt     int
	Kind        string
	IsTransient bool
	wrapped     error
}

func (f *Fault) Error() string {
	return fmt.Sprintf("faultinject: %s fault on %s %s (attempt %d)",
		f.Kind, f.Op, f.Day.UTC().Format("2006-01-02"), f.Attempt)
}

// Transient implements the retry package's transient-error convention.
func (f *Fault) Transient() bool { return f.IsTransient }

// Unwrap exposes the wrapped sentinel (flowrec.ErrCorrupt for
// corruption faults), or nil.
func (f *Fault) Unwrap() error { return f.wrapped }

// mix is SplitMix64's output scramble.
func mix(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}
