package faultinject

import (
	"errors"
	"fmt"
	"testing"
	"time"

	"repro/internal/analytics"
	"repro/internal/flowrec"
	"repro/internal/retry"
)

func day(d int) time.Time { return time.Date(2016, 4, d, 0, 0, 0, 0, time.UTC) }

func TestParseRoundTrip(t *testing.T) {
	cases := []string{
		"readday:p=0.01,transient",
		"readday:p=0.3,bitflip",
		"writeday:p=0.1,torn",
		"readday:p=0.05,transient;saveagg:p=0.2,transient",
		"outage:p=0.1",
		"emit:p=0.001",
		"readday:p=1,transient,fails=2",
		"loadagg:p=0.5,latency=2ms",
	}
	for _, spec := range cases {
		p, err := Parse(spec)
		if err != nil {
			t.Fatalf("Parse(%q): %v", spec, err)
		}
		if p.String() != spec {
			t.Errorf("Parse(%q).String() = %q", spec, p.String())
		}
	}
}

func TestParseEmptyAndErrors(t *testing.T) {
	if p, err := Parse("  "); err != nil || p != nil {
		t.Errorf("empty spec: plan=%v err=%v, want nil,nil", p, err)
	}
	for _, spec := range []string{
		"frobday:p=0.1",     // unknown op
		"readday",           // missing params
		"readday:p=1.5",     // probability out of range
		"readday:p=x",       // non-numeric
		"readday:fails=-1",  // negative bound
		"readday:latency=x", // bad duration
		"readday:wibble",    // unknown flag
	} {
		if _, err := Parse(spec); err == nil {
			t.Errorf("Parse(%q): expected error", spec)
		}
	}
}

func TestSeedParam(t *testing.T) {
	p, err := Parse("outage:p=0.5,seed=99")
	if err != nil {
		t.Fatal(err)
	}
	if p.Seed != 99 {
		t.Fatalf("Seed = %d, want 99", p.Seed)
	}
}

// TestDeterministicDecisions: same plan, same days, same faults —
// chaos failures must replay.
func TestDeterministicDecisions(t *testing.T) {
	mk := func() *Plan {
		p, err := Parse("outage:p=0.3;emit:p=0.1")
		if err != nil {
			t.Fatal(err)
		}
		return p
	}
	a, b := mk(), mk()
	var outages int
	for d := 1; d <= 30; d++ {
		if a.DayOutage(day(d)) != b.DayOutage(day(d)) {
			t.Fatalf("day %d: outage decision differs between identical plans", d)
		}
		if a.DayOutage(day(d)) {
			outages++
		}
		for idx := uint64(0); idx < 50; idx++ {
			if a.DropRecord(day(d), idx) != b.DropRecord(day(d), idx) {
				t.Fatalf("day %d idx %d: drop decision differs", d, idx)
			}
		}
	}
	if outages == 0 || outages == 30 {
		t.Errorf("p=0.3 over 30 days hit %d outages; the roll looks degenerate", outages)
	}

	// A different seed must make different picks somewhere.
	c, err := Parse("outage:p=0.3,seed=7")
	if err != nil {
		t.Fatal(err)
	}
	same := true
	for d := 1; d <= 30; d++ {
		if a.DayOutage(day(d)) != c.DayOutage(day(d)) {
			same = false
			break
		}
	}
	if same {
		t.Error("seed=1 and seed=7 selected identical outage days over a month")
	}
}

// TestTransientRerolls: a transient rule rolls per attempt, so with
// p=0.5 some attempts fail and some succeed for the same day.
func TestTransientRerolls(t *testing.T) {
	p, err := Parse("readday:p=0.5,transient")
	if err != nil {
		t.Fatal(err)
	}
	var hit, miss bool
	for attempt := 1; attempt <= 64; attempt++ {
		if p.fault(OpReadDay, day(1), attempt) != nil {
			hit = true
		} else {
			miss = true
		}
	}
	if !hit || !miss {
		t.Fatalf("64 attempts at p=0.5: hit=%v miss=%v, want both", hit, miss)
	}
}

// TestFailsClears: fails=2 fails exactly the first two attempts.
func TestFailsClears(t *testing.T) {
	p, err := Parse("readday:p=1,fails=2,transient")
	if err != nil {
		t.Fatal(err)
	}
	for attempt := 1; attempt <= 4; attempt++ {
		f := p.fault(OpReadDay, day(1), attempt)
		if attempt <= 2 && f == nil {
			t.Fatalf("attempt %d: want fault", attempt)
		}
		if attempt > 2 && f != nil {
			t.Fatalf("attempt %d: want success, got %v", attempt, f)
		}
	}
}

func TestFaultErrorContract(t *testing.T) {
	p, _ := Parse("readday:p=1,transient")
	f := p.fault(OpReadDay, day(1), 1)
	if f == nil {
		t.Fatal("p=1 did not fire")
	}
	if !retry.Transient(f) {
		t.Error("transient fault not recognised by retry.Transient")
	}
	if errors.Is(f, flowrec.ErrCorrupt) {
		t.Error("plain transient fault should not read as corruption")
	}

	p2, _ := Parse("readday:p=1,bitflip")
	f2 := p2.fault(OpReadDay, day(1), 1)
	if f2 == nil {
		t.Fatal("bitflip p=1 did not fire")
	}
	if !errors.Is(f2, flowrec.ErrCorrupt) {
		t.Error("bitflip fault must wrap flowrec.ErrCorrupt")
	}
	if retry.Transient(f2) {
		t.Error("bitflip fault must not be transient")
	}
}

// --- the Storage wrapper over an in-memory fake -----------------------------

type memStorage struct {
	days     map[time.Time][]*flowrec.Record
	aggs     map[time.Time]*analytics.DayAgg
	quarant  []time.Time
	writeErr error
	gen      uint64
}

func newMemStorage() *memStorage {
	return &memStorage{
		days: make(map[time.Time][]*flowrec.Record),
		aggs: make(map[time.Time]*analytics.DayAgg),
	}
}

func (m *memStorage) ReadDay(d time.Time, fn func(*flowrec.Record) error) error {
	recs, ok := m.days[d]
	if !ok {
		return fmt.Errorf("%w: %s", flowrec.ErrNoDay, d.Format("2006-01-02"))
	}
	for _, r := range recs {
		if err := fn(r); err != nil {
			return err
		}
	}
	return nil
}

func (m *memStorage) ReadDayCols(d time.Time, sc flowrec.ColScan, fn func(*flowrec.Record) error) error {
	return m.ReadDay(d, func(r *flowrec.Record) error {
		if !sc.Pred.Match(r) {
			return nil
		}
		return fn(r)
	})
}

func (m *memStorage) WriteDay(d time.Time, emit func(write func(*flowrec.Record) error) error) (uint64, error) {
	if m.writeErr != nil {
		return 0, m.writeErr
	}
	var recs []*flowrec.Record
	err := emit(func(r *flowrec.Record) error {
		c := *r
		recs = append(recs, &c)
		return nil
	})
	// Like a real truncating rewrite: a failed write leaves the partial
	// day behind, a retry starts over.
	m.days[d] = recs
	if err != nil {
		return uint64(len(recs)), err
	}
	return uint64(len(recs)), nil
}

func (m *memStorage) HasDay(d time.Time) bool { _, ok := m.days[d]; return ok }

func (m *memStorage) Days() ([]time.Time, error) {
	var out []time.Time
	for d := range m.days {
		out = append(out, d)
	}
	return out, nil
}

func (m *memStorage) QuarantineDay(d time.Time) error {
	delete(m.days, d)
	m.quarant = append(m.quarant, d)
	return nil
}

func (m *memStorage) LoadAgg(d time.Time) (*analytics.DayAgg, error) { return m.aggs[d], nil }

func (m *memStorage) SaveAgg(a *analytics.DayAgg) error { m.aggs[a.Day] = a; return nil }

func (m *memStorage) LoadPartials(time.Time) ([]*analytics.Partial, error) { return nil, nil }

func (m *memStorage) SavePartials(time.Time, []*analytics.Partial) error { return nil }

func (m *memStorage) LoadRollup(analytics.Grain, time.Time) (*analytics.Rollup, error) {
	return nil, nil
}

func (m *memStorage) SaveRollup(*analytics.Rollup) error { return nil }

func (m *memStorage) InvalidateRollups(time.Time) error { return nil }

func (m *memStorage) Generation() uint64 { return m.gen }

func (m *memStorage) BumpGeneration() uint64 { m.gen++; return m.gen }

func fillDay(m *memStorage, d time.Time, n int) {
	for i := 0; i < n; i++ {
		m.days[d] = append(m.days[d], &flowrec.Record{
			Start:     d.Add(time.Duration(i) * time.Second),
			Proto:     flowrec.ProtoTCP,
			BytesDown: uint64(1000 + i),
		})
	}
}

func TestWrapperReadFaultUpfront(t *testing.T) {
	m := newMemStorage()
	fillDay(m, day(1), 10)
	plan, _ := Parse("readday:p=1,transient")
	s := Wrap(m, plan)
	n := 0
	err := s.ReadDay(day(1), func(*flowrec.Record) error { n++; return nil })
	if err == nil || n != 0 {
		t.Fatalf("err=%v n=%d, want upfront failure with zero records", err, n)
	}
	if !retry.Transient(err) {
		t.Error("injected transient read error lost its transience")
	}
}

func TestWrapperCorruptionDeliversPrefix(t *testing.T) {
	m := newMemStorage()
	fillDay(m, day(1), 1000)
	plan, _ := Parse("readday:p=1,truncate")
	s := Wrap(m, plan)
	n := 0
	err := s.ReadDay(day(1), func(*flowrec.Record) error { n++; return nil })
	if !errors.Is(err, flowrec.ErrCorrupt) {
		t.Fatalf("err = %v, want ErrCorrupt wrap", err)
	}
	if n == 0 || n >= 1000 {
		t.Errorf("delivered %d records, want a proper prefix (0 < n < 1000)", n)
	}
	// Short days fail on the "trailer" instead of succeeding silently.
	m2 := newMemStorage()
	fillDay(m2, day(2), 1)
	s2 := Wrap(m2, plan)
	if err := s2.ReadDay(day(2), func(*flowrec.Record) error { return nil }); !errors.Is(err, flowrec.ErrCorrupt) {
		t.Errorf("1-record day under truncation: err = %v, want ErrCorrupt", err)
	}
}

func TestWrapperTornWrite(t *testing.T) {
	m := newMemStorage()
	plan, _ := Parse("writeday:p=1,torn")
	s := Wrap(m, plan)
	_, err := s.WriteDay(day(1), func(write func(*flowrec.Record) error) error {
		for i := 0; i < 1000; i++ {
			if werr := write(&flowrec.Record{Start: day(1)}); werr != nil {
				return werr
			}
		}
		return nil
	})
	if err == nil {
		t.Fatal("torn write reported success")
	}
	if got := len(m.days[day(1)]); got == 0 || got >= 1000 {
		t.Errorf("torn write left %d records, want a proper prefix", got)
	}
}

func TestWrapperLatencyOnly(t *testing.T) {
	m := newMemStorage()
	fillDay(m, day(1), 3)
	plan, _ := Parse("readday:p=1,latency=1ms")
	s := Wrap(m, plan)
	t0 := time.Now()
	n := 0
	if err := s.ReadDay(day(1), func(*flowrec.Record) error { n++; return nil }); err != nil {
		t.Fatalf("latency-only rule failed the read: %v", err)
	}
	if n != 3 {
		t.Errorf("read %d records, want 3", n)
	}
	if time.Since(t0) < time.Millisecond {
		t.Error("no latency was injected")
	}
}

func TestWrapperPassThrough(t *testing.T) {
	m := newMemStorage()
	fillDay(m, day(1), 5)
	s := Wrap(m, nil) // nil plan: everything passes through
	n := 0
	if err := s.ReadDay(day(1), func(*flowrec.Record) error { n++; return nil }); err != nil || n != 5 {
		t.Fatalf("nil plan: err=%v n=%d", err, n)
	}
	if wn, err := s.WriteDay(day(2), func(write func(*flowrec.Record) error) error {
		return write(&flowrec.Record{Start: day(2)})
	}); err != nil || wn != 1 {
		t.Fatalf("nil plan write: n=%d err=%v", wn, err)
	}
	if !s.HasDay(day(2)) {
		t.Error("HasDay lost the written day")
	}
	if err := s.QuarantineDay(day(1)); err != nil || len(m.quarant) != 1 {
		t.Fatalf("quarantine pass-through: err=%v moved=%d", err, len(m.quarant))
	}
}

// TestTransientReadConvergesUnderRetry: p=0.05 transient faults, read
// every day of a month under the shared retry policy — everything
// converges, which is the tentpole's acceptance scenario in miniature.
func TestTransientReadConvergesUnderRetry(t *testing.T) {
	m := newMemStorage()
	for d := 1; d <= 30; d++ {
		fillDay(m, day(d), 8)
	}
	plan, _ := Parse("readday:p=0.3,transient") // high p: retries certain
	s := Wrap(m, plan)
	pol := retry.Policy{Attempts: 6, Base: time.Microsecond, Max: time.Microsecond, Seed: 1,
		Sleep: func(time.Duration) {}}
	for d := 1; d <= 30; d++ {
		dd := day(d)
		err := pol.Do(nil, uint64(dd.Unix()), func() error {
			return s.ReadDay(dd, func(*flowrec.Record) error { return nil })
		})
		if err != nil {
			t.Fatalf("day %d did not converge under retry: %v", d, err)
		}
	}
}
