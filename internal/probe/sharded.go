package probe

import (
	"sync"
	"sync/atomic"

	"repro/internal/wire"
)

// Sharded fans packets out to N independent probes by symmetric flow
// hash, the way the real deployment spreads a multi-10Gb/s link across
// DPDK queues and worker cores: both directions of a flow always land
// on the same worker, so per-flow state never needs locks.
type Sharded struct {
	workers []*worker
	parsers sync.Pool // *wire.LayerParser; Feed may run concurrently
	wg      sync.WaitGroup

	// fallback counts packets that could not be flow-hashed (non-IP,
	// malformed, or IPv4 carrying neither TCP nor UDP); they go to
	// shard 0, which counts the parse error.
	fallback atomic.Uint64
}

type worker struct {
	in    chan Packet
	probe *Probe
}

// shardQueueDepth is each worker's input buffer; deep enough to ride
// out scheduling hiccups, small enough to bound memory.
const shardQueueDepth = 1024

// NewSharded builds n probes from cfg. The OnRecord callback may be
// invoked concurrently from different workers; give it its own
// synchronisation if it shares state.
func NewSharded(n int, cfg Config) *Sharded {
	if n < 1 {
		n = 1
	}
	s := &Sharded{
		parsers: sync.Pool{New: func() any {
			return wire.NewLayerParser(wire.LayerEthernet)
		}},
	}
	for i := 0; i < n; i++ {
		w := &worker{
			in:    make(chan Packet, shardQueueDepth),
			probe: New(cfg),
		}
		s.workers = append(s.workers, w)
		s.wg.Add(1)
		go func(w *worker) {
			defer s.wg.Done()
			for pkt := range w.in {
				w.probe.Feed(pkt)
			}
			w.probe.Flush()
		}(w)
	}
	return s
}

// Feed routes one packet to its flow's worker. The packet data must
// not be reused by the caller after Feed returns (it crosses a
// goroutine boundary); hand each packet its own buffer. Feed is safe
// to call from multiple goroutines (each call grabs its own parser),
// though concurrent feeders forfeit packet ordering within a flow.
func (s *Sharded) Feed(pkt Packet) {
	shard := 0
	parser := s.parsers.Get().(*wire.LayerParser)
	if d, err := parser.Parse(pkt.Data); err == nil && d.Has(wire.LayerIPv4) {
		switch {
		case d.Has(wire.LayerTCP):
			key, _ := wire.NewFlowKey(wire.IPProtoTCP,
				wire.Endpoint{Addr: d.IP.Src, Port: d.TCP.SrcPort},
				wire.Endpoint{Addr: d.IP.Dst, Port: d.TCP.DstPort})
			shard = int(key.FastHash() % uint64(len(s.workers)))
		case d.Has(wire.LayerUDP):
			key, _ := wire.NewFlowKey(wire.IPProtoUDP,
				wire.Endpoint{Addr: d.IP.Src, Port: d.UDP.SrcPort},
				wire.Endpoint{Addr: d.IP.Dst, Port: d.UDP.DstPort})
			shard = int(key.FastHash() % uint64(len(s.workers)))
		default:
			// Not flow-hashable: shard 0, as documented on fallback.
			s.fallback.Add(1)
			mShardFallback.Inc()
		}
	} else {
		s.fallback.Add(1)
		mShardFallback.Inc()
	}
	s.parsers.Put(parser)
	w := s.workers[shard]
	mShardQueue.Observe(int64(len(w.in)))
	w.in <- pkt
}

// Close drains the queues, flushes every worker's open flows and waits
// for all records to be delivered.
func (s *Sharded) Close() {
	for _, w := range s.workers {
		close(w.in)
	}
	s.wg.Wait()
}

// Stats sums the workers' counters. Call after Close.
func (s *Sharded) Stats() Stats {
	var total Stats
	for _, w := range s.workers {
		st := w.probe.Stats
		total.Packets += st.Packets
		total.Bytes += st.Bytes
		total.NonIP += st.NonIP
		total.ParseErrors += st.ParseErrors
		total.FlowsExported += st.FlowsExported
		total.DNSResponses += st.DNSResponses
		total.FlowsCreated += st.FlowsCreated
		total.FlowsIdleExpired += st.FlowsIdleExpired
		total.FlowsFlushed += st.FlowsFlushed
		total.ReasmBufferedSegs += st.ReasmBufferedSegs
		total.ReasmGaps += st.ReasmGaps
	}
	total.ShardFallback = s.fallback.Load()
	return total
}
