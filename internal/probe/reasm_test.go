package probe

import (
	"testing"
	"time"

	"repro/internal/dpi/httpx"
	"repro/internal/dpi/tlsx"
	"repro/internal/flowrec"
	"repro/internal/wire"
)

// TestSplitClientHelloReassembled: a ClientHello spanning two TCP
// segments must still yield the SNI and the protocol label.
func TestSplitClientHelloReassembled(t *testing.T) {
	p, records := newTestProbe(t)
	s := newTCPSession(wire.Endpoint{Addr: testClient, Port: 40100}, wire.Endpoint{Addr: testServer, Port: 443})
	ts := testT0
	p.Feed(s.packet(t, ts, true, wire.TCPSyn, nil))
	p.Feed(s.packet(t, ts.Add(time.Millisecond), false, wire.TCPSyn|wire.TCPAck, nil))
	hello := tlsx.AppendClientHello(nil, tlsx.HelloSpec{SNI: "very-long-server-name.cdninstagram.com", ALPN: []string{"h2"}})
	cut := 60
	p.Feed(s.packet(t, ts.Add(2*time.Millisecond), true, wire.TCPAck, hello[:cut]))
	p.Feed(s.packet(t, ts.Add(3*time.Millisecond), true, wire.TCPAck|wire.TCPPsh, hello[cut:]))
	p.Feed(s.packet(t, ts.Add(4*time.Millisecond), true, wire.TCPRst, nil))
	if len(*records) != 1 {
		t.Fatalf("%d records", len(*records))
	}
	r := (*records)[0]
	if r.ServerName != "very-long-server-name.cdninstagram.com" {
		t.Errorf("SNI lost on split hello: %q", r.ServerName)
	}
	if r.Web != flowrec.WebHTTP2 {
		t.Errorf("web = %v, want HTTP/2", r.Web)
	}
}

// TestSplitHelloWithRetransmission: the first fragment is retransmitted
// before the second arrives; the duplicate must not corrupt the buffer.
func TestSplitHelloWithRetransmission(t *testing.T) {
	p, records := newTestProbe(t)
	s := newTCPSession(wire.Endpoint{Addr: testClient, Port: 40101}, wire.Endpoint{Addr: testServer, Port: 443})
	ts := testT0
	p.Feed(s.packet(t, ts, true, wire.TCPSyn, nil))
	hello := tlsx.AppendClientHello(nil, tlsx.HelloSpec{SNI: "www.netflix.com"})
	cut := 70
	firstSeq := s.seqC
	p.Feed(s.packet(t, ts.Add(time.Millisecond), true, wire.TCPAck, hello[:cut]))
	// Hand-craft a retransmission of the first fragment.
	var b wire.Builder
	ip := wire.IPv4{Src: testClient, Dst: testServer}
	tcp := wire.TCP{SrcPort: 40101, DstPort: 443, Seq: firstSeq, Flags: wire.TCPAck}
	raw, err := b.TCPPacket(&ip, &tcp, hello[:cut])
	if err != nil {
		t.Fatal(err)
	}
	p.Feed(Packet{TS: ts.Add(2 * time.Millisecond), Data: append([]byte(nil), raw...)})
	p.Feed(s.packet(t, ts.Add(3*time.Millisecond), true, wire.TCPAck|wire.TCPPsh, hello[cut:]))
	p.Flush()
	if len(*records) != 1 {
		t.Fatalf("%d records", len(*records))
	}
	if (*records)[0].ServerName != "www.netflix.com" {
		t.Errorf("SNI = %q after retransmission", (*records)[0].ServerName)
	}
}

// TestSequenceGapSettles: a hole in the first flight makes the probe
// classify what it has instead of waiting forever.
func TestSequenceGapSettles(t *testing.T) {
	p, records := newTestProbe(t)
	s := newTCPSession(wire.Endpoint{Addr: testClient, Port: 40102}, wire.Endpoint{Addr: testServer, Port: 443})
	ts := testT0
	p.Feed(s.packet(t, ts, true, wire.TCPSyn, nil))
	hello := tlsx.AppendClientHello(nil, tlsx.HelloSpec{SNI: "x.example"})
	p.Feed(s.packet(t, ts.Add(time.Millisecond), true, wire.TCPAck, hello[:40]))
	// Skip ahead: simulate a lost middle fragment.
	s.seqC += 500
	p.Feed(s.packet(t, ts.Add(2*time.Millisecond), true, wire.TCPAck, []byte("unrelated later bytes")))
	p.Flush()
	if len(*records) != 1 {
		t.Fatalf("%d records", len(*records))
	}
	// The truncated hello still sniffs as TLS (record header intact)
	// even though the SNI never arrived.
	r := (*records)[0]
	if r.Web != flowrec.WebTLS {
		t.Errorf("web = %v, want TLS from truncated hello", r.Web)
	}
	if r.ServerName != "" {
		t.Errorf("name = %q from a hole-ridden hello", r.ServerName)
	}
}

// TestServerALPNOverridesClientOffer: client offers h2, server picks
// http/1.1 — the session is TLS, not HTTP/2.
func TestServerALPNOverridesClientOffer(t *testing.T) {
	p, records := newTestProbe(t)
	s := newTCPSession(wire.Endpoint{Addr: testClient, Port: 40103}, wire.Endpoint{Addr: testServer, Port: 443})
	ts := testT0
	p.Feed(s.packet(t, ts, true, wire.TCPSyn, nil))
	p.Feed(s.packet(t, ts.Add(time.Millisecond), false, wire.TCPSyn|wire.TCPAck, nil))
	hello := tlsx.AppendClientHello(nil, tlsx.HelloSpec{SNI: "api.example.com", ALPN: []string{"h2", "http/1.1"}})
	p.Feed(s.packet(t, ts.Add(2*time.Millisecond), true, wire.TCPAck|wire.TCPPsh, hello))
	srv := tlsx.AppendServerHello(nil, 0, "http/1.1")
	p.Feed(s.packet(t, ts.Add(4*time.Millisecond), false, wire.TCPAck|wire.TCPPsh, srv))
	p.Flush()
	if len(*records) != 1 {
		t.Fatalf("%d records", len(*records))
	}
	r := (*records)[0]
	if r.Web != flowrec.WebTLS {
		t.Errorf("web = %v, want TLS (server declined h2)", r.Web)
	}
	if r.ALPN != "http/1.1" {
		t.Errorf("alpn = %q", r.ALPN)
	}
}

// TestServerALPNUpgradesToSPDY: client offered spdy first; server
// confirms; a probe after the visibility epoch reports SPDY.
func TestServerALPNConfirmsSPDY(t *testing.T) {
	p, records := newTestProbe(t)
	s := newTCPSession(wire.Endpoint{Addr: testClient, Port: 40104}, wire.Endpoint{Addr: testServer, Port: 443})
	ts := testT0
	p.Feed(s.packet(t, ts, true, wire.TCPSyn, nil))
	hello := tlsx.AppendClientHello(nil, tlsx.HelloSpec{SNI: "www.google.com", ALPN: []string{"spdy/3.1", "http/1.1"}})
	p.Feed(s.packet(t, ts.Add(time.Millisecond), true, wire.TCPAck|wire.TCPPsh, hello))
	srv := tlsx.AppendServerHello(nil, 0, "spdy/3.1")
	p.Feed(s.packet(t, ts.Add(2*time.Millisecond), false, wire.TCPAck|wire.TCPPsh, srv))
	p.Flush()
	if len(*records) != 1 {
		t.Fatalf("%d records", len(*records))
	}
	if (*records)[0].Web != flowrec.WebSPDY {
		t.Errorf("web = %v, want SPDY", (*records)[0].Web)
	}
}

// TestSplitHTTPRequestHead: request head across two segments.
func TestSplitHTTPRequestHead(t *testing.T) {
	p, records := newTestProbe(t)
	s := newTCPSession(wire.Endpoint{Addr: testClient, Port: 40105}, wire.Endpoint{Addr: testServer, Port: 80})
	ts := testT0
	p.Feed(s.packet(t, ts, true, wire.TCPSyn, nil))
	req := httpx.AppendRequest(nil, "GET", "img.service.example", "/a/very/long/path/to/an/image.jpg", "Mozilla/5.0 (compatible)")
	cut := 30 // inside the request line
	p.Feed(s.packet(t, ts.Add(time.Millisecond), true, wire.TCPAck, req[:cut]))
	p.Feed(s.packet(t, ts.Add(2*time.Millisecond), true, wire.TCPAck|wire.TCPPsh, req[cut:]))
	p.Flush()
	if len(*records) != 1 {
		t.Fatalf("%d records", len(*records))
	}
	r := (*records)[0]
	if r.Web != flowrec.WebHTTP || r.ServerName != "img.service.example" {
		t.Errorf("web=%v name=%q", r.Web, r.ServerName)
	}
}

// TestReassemblyCapGivesUp: an endless unclassifiable first flight
// stops consuming memory at the cap.
func TestReassemblyCapGivesUp(t *testing.T) {
	p, records := newTestProbe(t)
	s := newTCPSession(wire.Endpoint{Addr: testClient, Port: 40106}, wire.Endpoint{Addr: testServer, Port: 443})
	ts := testT0
	p.Feed(s.packet(t, ts, true, wire.TCPSyn, nil))
	// A TLS record header claiming 16 KB, never completed.
	head := []byte{0x16, 0x03, 0x01, 0x40, 0x00}
	p.Feed(s.packet(t, ts.Add(time.Millisecond), true, wire.TCPAck, head))
	chunk := make([]byte, 1400)
	for i := 0; i < 8; i++ {
		p.Feed(s.packet(t, ts.Add(time.Duration(2+i)*time.Millisecond), true, wire.TCPAck, chunk))
	}
	p.Flush()
	if len(*records) != 1 {
		t.Fatalf("%d records", len(*records))
	}
	// Classification settled (as best it could) without unbounded
	// buffering; the record is exported rather than stuck.
	if (*records)[0].BytesUp == 0 {
		t.Error("flow lost its counters")
	}
}
