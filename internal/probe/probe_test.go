package probe

import (
	"fmt"
	"testing"
	"time"

	"repro/internal/dpi/dnsx"
	"repro/internal/dpi/httpx"
	"repro/internal/dpi/quicx"
	"repro/internal/dpi/tlsx"
	"repro/internal/flowrec"
	"repro/internal/wire"
)

// testClient is inside the monitored customer range 10.0.0.0/8.
var (
	testClient = wire.AddrFrom(10, 1, 2, 3)
	testServer = wire.AddrFrom(93, 184, 216, 34)
	testT0     = time.Date(2016, 4, 10, 12, 0, 0, 0, time.UTC)
)

// newTestProbe wires a probe that treats 10/8 as subscribers (ADSL
// below 10.128, FTTH above) and collects records.
func newTestProbe(t *testing.T) (*Probe, *[]*flowrec.Record) {
	t.Helper()
	var records []*flowrec.Record
	p := New(Config{
		Subscriber: func(a wire.Addr) (SubscriberInfo, bool) {
			if a[0] != 10 {
				return SubscriberInfo{}, false
			}
			tech := flowrec.TechADSL
			if a[1] >= 128 {
				tech = flowrec.TechFTTH
			}
			return SubscriberInfo{ID: uint32(a[1])<<16 | uint32(a[2])<<8 | uint32(a[3]), Tech: tech}, true
		},
		AnonKey:  []byte("test-key"),
		OnRecord: func(r *flowrec.Record) { records = append(records, r) },
	})
	return p, &records
}

// tcpSession crafts packets of one TCP connection for tests.
type tcpSession struct {
	b          wire.Builder
	cli, srv   wire.Endpoint
	seqC, seqS uint32
}

func newTCPSession(cli, srv wire.Endpoint) *tcpSession {
	return &tcpSession{cli: cli, srv: srv, seqC: 1000, seqS: 50000}
}

func (s *tcpSession) packet(t *testing.T, ts time.Time, fromClient bool, flags uint8, payload []byte) Packet {
	t.Helper()
	var ip wire.IPv4
	var tcp wire.TCP
	if fromClient {
		ip = wire.IPv4{Src: s.cli.Addr, Dst: s.srv.Addr}
		tcp = wire.TCP{SrcPort: s.cli.Port, DstPort: s.srv.Port, Seq: s.seqC, Ack: s.seqS, Flags: flags}
		s.seqC += uint32(len(payload))
		if flags&wire.TCPSyn != 0 || flags&wire.TCPFin != 0 {
			s.seqC++
		}
	} else {
		ip = wire.IPv4{Src: s.srv.Addr, Dst: s.cli.Addr}
		tcp = wire.TCP{SrcPort: s.srv.Port, DstPort: s.cli.Port, Seq: s.seqS, Ack: s.seqC, Flags: flags}
		s.seqS += uint32(len(payload))
		if flags&wire.TCPSyn != 0 || flags&wire.TCPFin != 0 {
			s.seqS++
		}
	}
	raw, err := s.b.TCPPacket(&ip, &tcp, payload)
	if err != nil {
		t.Fatalf("building packet: %v", err)
	}
	data := make([]byte, len(raw))
	copy(data, raw)
	return Packet{TS: ts, Data: data}
}

// runTLSFlow drives a complete HTTPS-ish connection through p.
func runTLSFlow(t *testing.T, p *Probe, spec tlsx.HelloSpec, downBytes int) {
	t.Helper()
	s := newTCPSession(
		wire.Endpoint{Addr: testClient, Port: 40000},
		wire.Endpoint{Addr: testServer, Port: 443},
	)
	ts := testT0
	step := func(d time.Duration) time.Time { ts = ts.Add(d); return ts }
	p.Feed(s.packet(t, ts, true, wire.TCPSyn, nil))
	p.Feed(s.packet(t, step(3*time.Millisecond), false, wire.TCPSyn|wire.TCPAck, nil))
	hello := tlsx.AppendClientHello(nil, spec)
	p.Feed(s.packet(t, step(time.Millisecond), true, wire.TCPAck|wire.TCPPsh, hello))
	p.Feed(s.packet(t, step(3*time.Millisecond), false, wire.TCPAck, make([]byte, downBytes)))
	p.Feed(s.packet(t, step(time.Millisecond), true, wire.TCPFin|wire.TCPAck, nil))
	p.Feed(s.packet(t, step(3*time.Millisecond), false, wire.TCPFin|wire.TCPAck, nil))
}

func TestTLSFlowExport(t *testing.T) {
	p, records := newTestProbe(t)
	runTLSFlow(t, p, tlsx.HelloSpec{SNI: "www.netflix.com", ALPN: []string{"h2"}}, 1200)
	if len(*records) != 1 {
		t.Fatalf("%d records, want 1 (FIN both ways closes)", len(*records))
	}
	r := (*records)[0]
	if r.ServerName != "www.netflix.com" || r.NameSrc != flowrec.NameSNI {
		t.Errorf("name = %q src %v", r.ServerName, r.NameSrc)
	}
	if r.Web != flowrec.WebHTTP2 {
		t.Errorf("web = %v, want HTTP/2 (h2 ALPN)", r.Web)
	}
	if r.Tech != flowrec.TechADSL {
		t.Errorf("tech = %v", r.Tech)
	}
	if r.Client == testClient {
		t.Error("client address not anonymized")
	}
	if r.Server != testServer {
		t.Error("server address must stay real (it feeds Fig 11)")
	}
	if r.BytesDown != 1200 {
		t.Errorf("bytes down = %d", r.BytesDown)
	}
	if r.PktsUp != 3 || r.PktsDown != 3 {
		t.Errorf("pkts = %d/%d, want 3/3", r.PktsUp, r.PktsDown)
	}
	if r.RTTSamples == 0 {
		t.Fatal("no RTT samples")
	}
	if r.RTTMin != 3*time.Millisecond {
		t.Errorf("rtt min = %v, want 3ms", r.RTTMin)
	}
	if r.Duration != 11*time.Millisecond {
		t.Errorf("duration = %v", r.Duration)
	}
}

func TestPlainTLSAndSPDYEpoch(t *testing.T) {
	// Before the SPDY-visibility update, spdy/3.1 flows are TLS; after
	// it they are SPDY (event C of Figure 8).
	cut := testT0.Add(24 * time.Hour)
	var records []*flowrec.Record
	p := New(Config{
		Subscriber: func(a wire.Addr) (SubscriberInfo, bool) {
			return SubscriberInfo{ID: 1}, a[0] == 10
		},
		AnonKey:          []byte("k"),
		SPDYVisibleSince: cut,
		OnRecord:         func(r *flowrec.Record) { records = append(records, r) },
	})
	runTLSFlow(t, p, tlsx.HelloSpec{SNI: "www.google.com", ALPN: []string{"spdy/3.1"}}, 100)
	if len(records) != 1 || records[0].Web != flowrec.WebTLS {
		t.Fatalf("pre-update spdy labelled %v, want TLS", records[0].Web)
	}
	// Re-run after the cut; the helper always starts at testT0, so run
	// a manual session a day later.
	s := newTCPSession(wire.Endpoint{Addr: testClient, Port: 41000}, wire.Endpoint{Addr: testServer, Port: 443})
	ts := cut.Add(time.Hour)
	p.Feed(s.packet(t, ts, true, wire.TCPSyn, nil))
	hello := tlsx.AppendClientHello(nil, tlsx.HelloSpec{SNI: "www.google.com", ALPN: []string{"spdy/3.1"}})
	p.Feed(s.packet(t, ts.Add(time.Millisecond), true, wire.TCPAck, hello))
	p.Feed(s.packet(t, ts.Add(2*time.Millisecond), true, wire.TCPRst, nil))
	if len(records) != 2 || records[1].Web != flowrec.WebSPDY {
		t.Fatalf("post-update spdy labelled %v, want SPDY", records[1].Web)
	}
	if records[1].ALPN != "spdy/3.1" {
		t.Errorf("alpn = %q", records[1].ALPN)
	}
}

func TestFBZeroFlow(t *testing.T) {
	p, records := newTestProbe(t)
	runTLSFlow(t, p, tlsx.HelloSpec{SNI: "graph.facebook.com", FBZero: true}, 500)
	if len(*records) != 1 {
		t.Fatalf("%d records", len(*records))
	}
	if (*records)[0].Web != flowrec.WebFBZero {
		t.Errorf("web = %v, want FB-ZERO", (*records)[0].Web)
	}
}

func TestHTTPFlow(t *testing.T) {
	p, records := newTestProbe(t)
	s := newTCPSession(wire.Endpoint{Addr: testClient, Port: 40001}, wire.Endpoint{Addr: testServer, Port: 80})
	ts := testT0
	p.Feed(s.packet(t, ts, true, wire.TCPSyn, nil))
	p.Feed(s.packet(t, ts.Add(time.Millisecond), false, wire.TCPSyn|wire.TCPAck, nil))
	req := httpx.AppendRequest(nil, "GET", "www.Repubblica.IT", "/", "Mozilla/5.0")
	p.Feed(s.packet(t, ts.Add(2*time.Millisecond), true, wire.TCPAck|wire.TCPPsh, req))
	resp := httpx.AppendResponse(nil, 200, 5000)
	p.Feed(s.packet(t, ts.Add(5*time.Millisecond), false, wire.TCPAck, resp))
	p.Feed(s.packet(t, ts.Add(6*time.Millisecond), true, wire.TCPRst, nil))
	if len(*records) != 1 {
		t.Fatalf("%d records, want 1 (RST closes)", len(*records))
	}
	r := (*records)[0]
	if r.Web != flowrec.WebHTTP {
		t.Errorf("web = %v", r.Web)
	}
	if r.ServerName != "www.repubblica.it" || r.NameSrc != flowrec.NameHTTPHost {
		t.Errorf("name = %q src %v", r.ServerName, r.NameSrc)
	}
}

func TestDNHunterAnnotatesQUIC(t *testing.T) {
	p, records := newTestProbe(t)
	resolver := wire.AddrFrom(8, 8, 8, 8)
	videoSrv := wire.AddrFrom(173, 194, 4, 10)

	// 1. Client resolves r1.googlevideo.com → videoSrv.
	var b wire.Builder
	dnsResp, err := dnsx.AppendResponse(nil, 7, "r1.googlevideo.com", [4]byte(videoSrv), 300)
	if err != nil {
		t.Fatal(err)
	}
	ip := wire.IPv4{Src: resolver, Dst: testClient}
	udp := wire.UDP{SrcPort: 53, DstPort: 33999}
	raw, err := b.UDPPacket(&ip, &udp, dnsResp)
	if err != nil {
		t.Fatal(err)
	}
	p.Feed(Packet{TS: testT0, Data: append([]byte(nil), raw...)})

	// 2. Client opens a QUIC session to videoSrv.
	quicPayload := quicx.AppendGQUIC(nil, "Q039", 777, 200)
	ip = wire.IPv4{Src: testClient, Dst: videoSrv}
	udp = wire.UDP{SrcPort: 40500, DstPort: 443}
	raw, err = b.UDPPacket(&ip, &udp, quicPayload)
	if err != nil {
		t.Fatal(err)
	}
	p.Feed(Packet{TS: testT0.Add(time.Second), Data: append([]byte(nil), raw...)})
	p.Flush()

	var quicRec *flowrec.Record
	for _, r := range *records {
		if r.Web == flowrec.WebQUIC {
			quicRec = r
		}
	}
	if quicRec == nil {
		t.Fatalf("no QUIC record among %d", len(*records))
	}
	if quicRec.ServerName != "r1.googlevideo.com" || quicRec.NameSrc != flowrec.NameDNS {
		t.Errorf("name = %q src %v, want DN-Hunter annotation", quicRec.ServerName, quicRec.NameSrc)
	}
	if quicRec.QUICVer != "Q039" {
		t.Errorf("quic version = %q", quicRec.QUICVer)
	}
	if p.Stats.DNSResponses != 1 {
		t.Errorf("dns responses = %d", p.Stats.DNSResponses)
	}
}

func TestBitTorrentDetection(t *testing.T) {
	p, records := newTestProbe(t)
	s := newTCPSession(wire.Endpoint{Addr: testClient, Port: 51413}, wire.Endpoint{Addr: wire.AddrFrom(78, 1, 2, 3), Port: 51413})
	hs := append([]byte{19}, []byte("BitTorrent protocol")...)
	hs = append(hs, make([]byte, 48)...)
	p.Feed(s.packet(t, testT0, true, wire.TCPAck|wire.TCPPsh, hs))
	p.Flush()
	if len(*records) != 1 || (*records)[0].Web != flowrec.WebP2P {
		t.Fatalf("records = %v", *records)
	}
}

func TestP2PUDPDetection(t *testing.T) {
	p, records := newTestProbe(t)
	var b wire.Builder
	ip := wire.IPv4{Src: testClient, Dst: wire.AddrFrom(78, 5, 6, 7)}
	udp := wire.UDP{SrcPort: 4672, DstPort: 4672}
	raw, err := b.UDPPacket(&ip, &udp, []byte{0xE3, 0x01, 0x02, 0x03})
	if err != nil {
		t.Fatal(err)
	}
	p.Feed(Packet{TS: testT0, Data: append([]byte(nil), raw...)})
	p.Flush()
	if len(*records) != 1 || (*records)[0].Web != flowrec.WebP2P {
		t.Fatalf("udp p2p not detected: %v", *records)
	}
}

func TestNonSubscriberIgnored(t *testing.T) {
	p, records := newTestProbe(t)
	s := newTCPSession(wire.Endpoint{Addr: wire.AddrFrom(185, 1, 2, 3), Port: 40000}, wire.Endpoint{Addr: testServer, Port: 443})
	p.Feed(s.packet(t, testT0, true, wire.TCPSyn, nil))
	p.Flush()
	if len(*records) != 0 {
		t.Fatalf("transit flow exported: %v", *records)
	}
}

func TestServerFirstOrientation(t *testing.T) {
	// First observed packet travels server→client; the subscriber side
	// must still be the client of the record.
	p, records := newTestProbe(t)
	s := newTCPSession(wire.Endpoint{Addr: testClient, Port: 40002}, wire.Endpoint{Addr: testServer, Port: 443})
	p.Feed(s.packet(t, testT0, false, wire.TCPAck, make([]byte, 700))) // downlink first
	p.Feed(s.packet(t, testT0.Add(time.Millisecond), true, wire.TCPAck, make([]byte, 20)))
	p.Flush()
	if len(*records) != 1 {
		t.Fatalf("%d records", len(*records))
	}
	r := (*records)[0]
	if r.BytesDown != 700 || r.BytesUp != 20 {
		t.Errorf("bytes up/down = %d/%d, want 20/700", r.BytesUp, r.BytesDown)
	}
	if r.SrvPort != 443 {
		t.Errorf("server port = %d", r.SrvPort)
	}
}

func TestIdleTimeoutExpiry(t *testing.T) {
	var records []*flowrec.Record
	p := New(Config{
		Subscriber: func(a wire.Addr) (SubscriberInfo, bool) {
			return SubscriberInfo{ID: 9}, a[0] == 10
		},
		AnonKey:        []byte("k"),
		TCPIdleTimeout: 30 * time.Second,
		OnRecord:       func(r *flowrec.Record) { records = append(records, r) },
	})
	s := newTCPSession(wire.Endpoint{Addr: testClient, Port: 40003}, wire.Endpoint{Addr: testServer, Port: 443})
	p.Feed(s.packet(t, testT0, true, wire.TCPSyn, nil))
	if p.OpenFlows() != 1 {
		t.Fatalf("open flows = %d", p.OpenFlows())
	}
	// An unrelated packet a minute later triggers the sweep.
	s2 := newTCPSession(wire.Endpoint{Addr: wire.AddrFrom(10, 9, 9, 9), Port: 40004}, wire.Endpoint{Addr: testServer, Port: 443})
	p.Feed(s2.packet(t, testT0.Add(time.Minute), true, wire.TCPSyn, nil))
	if len(records) != 1 {
		t.Fatalf("idle flow not expired: %d records, %d open", len(records), p.OpenFlows())
	}
	if records[0].CliPort != 40003 {
		t.Errorf("wrong flow expired: %+v", records[0])
	}
}

func TestAnonymizationConsistentAcrossFlows(t *testing.T) {
	p, records := newTestProbe(t)
	runTLSFlow(t, p, tlsx.HelloSpec{SNI: "a.example"}, 10)
	runTLSFlow(t, p, tlsx.HelloSpec{SNI: "b.example"}, 10)
	if len(*records) != 2 {
		t.Fatalf("%d records", len(*records))
	}
	if (*records)[0].Client != (*records)[1].Client {
		t.Error("same subscriber anonymized inconsistently")
	}
}

func TestGarbageResilience(t *testing.T) {
	p, records := newTestProbe(t)
	p.Feed(Packet{TS: testT0, Data: []byte{1, 2, 3}})
	p.Feed(Packet{TS: testT0, Data: nil})
	junk := make([]byte, 90)
	for i := range junk {
		junk[i] = byte(i * 31)
	}
	p.Feed(Packet{TS: testT0, Data: junk})
	p.Flush()
	if len(*records) != 0 {
		t.Errorf("garbage produced records: %v", *records)
	}
	if p.Stats.ParseErrors == 0 && p.Stats.NonIP == 0 {
		t.Error("garbage not counted")
	}
}

func TestRTTEstimatorKarn(t *testing.T) {
	var r rttEstimator
	t0 := testT0
	r.sent(t0, 100)
	r.sent(t0.Add(time.Millisecond), 100) // retransmission of same seq
	r.acked(t0.Add(10*time.Millisecond), 100)
	if _, _, _, n := r.summary(); n != 0 {
		t.Errorf("retransmitted segment sampled: n=%d", n)
	}
	// A fresh, unambiguous exchange still measures.
	r.sent(t0.Add(20*time.Millisecond), 200)
	r.acked(t0.Add(23*time.Millisecond), 200)
	min, avg, max, n := r.summary()
	if n != 1 || min != 3*time.Millisecond || avg != min || max != min {
		t.Errorf("summary = %v/%v/%v n=%d", min, avg, max, n)
	}
}

func TestRTTEstimatorCumulativeAck(t *testing.T) {
	var r rttEstimator
	t0 := testT0
	r.sent(t0, 100)
	r.sent(t0.Add(time.Millisecond), 200)
	r.acked(t0.Add(9*time.Millisecond), 250) // covers both
	min, _, max, n := r.summary()
	if n != 2 {
		t.Fatalf("n = %d, want 2", n)
	}
	if min != 8*time.Millisecond || max != 9*time.Millisecond {
		t.Errorf("min/max = %v/%v", min, max)
	}
}

func TestRTTEstimatorSeqWraparound(t *testing.T) {
	var r rttEstimator
	t0 := testT0
	r.sent(t0, 0xFFFFFF00)
	r.acked(t0.Add(4*time.Millisecond), 0x00000010) // wrapped past zero
	if _, _, _, n := r.summary(); n != 1 {
		t.Errorf("wraparound ack not matched: n=%d", n)
	}
}

func TestRTTEstimatorOverflowBounded(t *testing.T) {
	var r rttEstimator
	for i := 0; i < 100; i++ {
		r.sent(testT0, uint32(1000+i*100))
	}
	if r.n > rttPendingMax {
		t.Errorf("pending grew to %d", r.n)
	}
}

func BenchmarkProbeTCPFlow(b *testing.B) {
	p := New(Config{
		Subscriber: func(a wire.Addr) (SubscriberInfo, bool) {
			return SubscriberInfo{ID: 1}, a[0] == 10
		},
		AnonKey:  []byte("bench"),
		OnRecord: func(*flowrec.Record) {},
	})
	hello := tlsx.AppendClientHello(nil, tlsx.HelloSpec{SNI: "www.netflix.com", ALPN: []string{"h2"}})
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s := newTCPSession(
			wire.Endpoint{Addr: wire.AddrFrom(10, byte(i>>16), byte(i>>8), byte(i)), Port: uint16(20000 + i%20000)},
			wire.Endpoint{Addr: testServer, Port: 443},
		)
		ts := testT0.Add(time.Duration(i) * time.Microsecond)
		var tt testing.T
		p.Feed(s.packet(&tt, ts, true, wire.TCPSyn, nil))
		p.Feed(s.packet(&tt, ts.Add(time.Millisecond), false, wire.TCPSyn|wire.TCPAck, nil))
		p.Feed(s.packet(&tt, ts.Add(2*time.Millisecond), true, wire.TCPAck, hello))
		p.Feed(s.packet(&tt, ts.Add(3*time.Millisecond), false, wire.TCPAck, make([]byte, 1200)))
		p.Feed(s.packet(&tt, ts.Add(4*time.Millisecond), true, wire.TCPRst, nil))
	}
}

func TestIPv6CountedAsNonIP(t *testing.T) {
	// The access network is IPv4; stray v6 frames must be accounted,
	// not crash the probe or fabricate flows.
	p, records := newTestProbe(t)
	pkt := make([]byte, wire.EthernetHeaderLen+wire.IPv6HeaderLen)
	eth := wire.Ethernet{EtherType: wire.EtherTypeIPv6}
	if _, err := eth.EncodeTo(pkt); err != nil {
		t.Fatal(err)
	}
	ip := wire.IPv6{NextHeader: wire.IPProtoTCP, HopLimit: 64}
	if _, err := ip.EncodeTo(pkt[wire.EthernetHeaderLen:]); err != nil {
		t.Fatal(err)
	}
	p.Feed(Packet{TS: testT0, Data: pkt})
	p.Flush()
	if len(*records) != 0 {
		t.Errorf("v6 frame produced records")
	}
	if p.Stats.NonIP != 1 {
		t.Errorf("NonIP = %d, want 1", p.Stats.NonIP)
	}
}

// feedUDPFlow feeds one single-packet UDP flow from the given client
// port at the given timestamp.
func feedUDPFlow(t *testing.T, p *Probe, b *wire.Builder, port uint16, ts time.Time) {
	t.Helper()
	ip := wire.IPv4{Src: testClient, Dst: testServer}
	udp := wire.UDP{SrcPort: port, DstPort: 9999}
	raw, err := b.UDPPacket(&ip, &udp, []byte("payload"))
	if err != nil {
		t.Fatalf("building packet: %v", err)
	}
	data := make([]byte, len(raw))
	copy(data, raw)
	p.Feed(Packet{TS: ts, Data: data})
}

// TestSweepExportDeterministic is the regression test for the
// map-iteration export order: idle expiry used to range over the flow
// map, so identical input produced differently-ordered day logs run to
// run. Exports must come out ordered by last activity (ties broken by
// start, then flow key) and be byte-identical across runs.
func TestSweepExportDeterministic(t *testing.T) {
	run := func() []string {
		p, records := newTestProbe(t)
		var b wire.Builder
		// 40 flows; timestamps cycle so several flows share a last-seen
		// instant, and the port sequence is decorrelated from time so a
		// map-order bug cannot accidentally look sorted.
		for i := 0; i < 40; i++ {
			port := uint16(20000 + (i*17)%40)
			ts := testT0.Add(time.Duration(i%7) * time.Second)
			feedUDPFlow(t, p, &b, port, ts)
		}
		// Ten minutes later a packet triggers the idle sweep; every
		// earlier flow is far past the UDP idle timeout.
		feedUDPFlow(t, p, &b, 30000, testT0.Add(10*time.Minute))
		if p.Stats.FlowsIdleExpired != 40 {
			t.Fatalf("FlowsIdleExpired = %d, want 40", p.Stats.FlowsIdleExpired)
		}
		p.Flush()
		if len(*records) != 41 {
			t.Fatalf("%d records, want 41", len(*records))
		}
		out := make([]string, 0, len(*records))
		for _, r := range *records {
			out = append(out, fmt.Sprintf("%d@%s", r.CliPort, r.Start.Format(time.RFC3339)))
		}
		return out
	}

	first := run()
	// Expired flows (the first 40) must be ordered by last activity,
	// then flow key — here each flow is one packet, so last == start
	// and ties sort by client port.
	prev := first[0]
	for i := 1; i < 40; i++ {
		var p1, p2 int
		var t1, t2 string
		if _, err := fmt.Sscanf(prev, "%d@%s", &p1, &t1); err != nil {
			t.Fatal(err)
		}
		if _, err := fmt.Sscanf(first[i], "%d@%s", &p2, &t2); err != nil {
			t.Fatal(err)
		}
		if t2 < t1 || (t2 == t1 && p2 <= p1) {
			t.Fatalf("export %d out of order: %s then %s", i, prev, first[i])
		}
		prev = first[i]
	}
	for round := 0; round < 3; round++ {
		again := run()
		for i := range first {
			if first[i] != again[i] {
				t.Fatalf("round %d: export %d differs: %s vs %s", round, i, first[i], again[i])
			}
		}
	}
}
