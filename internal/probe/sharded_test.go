package probe

import (
	"sync"
	"testing"
	"time"

	"repro/internal/dpi/tlsx"
	"repro/internal/flowrec"
	"repro/internal/wire"
)

// shardedConfig builds a config whose OnRecord is concurrency-safe.
func shardedConfig(mu *sync.Mutex, records *[]*flowrec.Record) Config {
	return Config{
		Subscriber: func(a wire.Addr) (SubscriberInfo, bool) {
			if a[0] != 10 {
				return SubscriberInfo{}, false
			}
			return SubscriberInfo{ID: uint32(a[1])<<16 | uint32(a[2])<<8 | uint32(a[3])}, true
		},
		AnonKey: []byte("shard-test"),
		OnRecord: func(r *flowrec.Record) {
			c := *r
			mu.Lock()
			*records = append(*records, &c)
			mu.Unlock()
		},
	}
}

// feedFlows pushes n complete TLS flows through feed, one per client.
func feedFlows(t *testing.T, feed func(Packet), n int) {
	t.Helper()
	feedFlowsFrom(t, feed, 0, n)
}

// feedFlowsFrom pushes n complete TLS flows with client identities
// starting at base, so concurrent feeders can use disjoint flows.
func feedFlowsFrom(t *testing.T, feed func(Packet), base, n int) {
	t.Helper()
	hello := tlsx.AppendClientHello(nil, tlsx.HelloSpec{SNI: "www.netflix.com", ALPN: []string{"h2"}})
	for j := 0; j < n; j++ {
		i := base + j
		cli := wire.Endpoint{Addr: wire.AddrFrom(10, byte(i>>8), byte(i), 7), Port: uint16(30000 + i)}
		srv := wire.Endpoint{Addr: testServer, Port: 443}
		s := newTCPSession(cli, srv)
		ts := testT0.Add(time.Duration(i) * time.Millisecond)
		feed(s.packet(t, ts, true, wire.TCPSyn, nil))
		feed(s.packet(t, ts.Add(time.Millisecond), false, wire.TCPSyn|wire.TCPAck, nil))
		feed(s.packet(t, ts.Add(2*time.Millisecond), true, wire.TCPAck|wire.TCPPsh, hello))
		feed(s.packet(t, ts.Add(3*time.Millisecond), false, wire.TCPAck, make([]byte, 900)))
		feed(s.packet(t, ts.Add(4*time.Millisecond), true, wire.TCPFin|wire.TCPAck, nil))
		feed(s.packet(t, ts.Add(5*time.Millisecond), false, wire.TCPFin|wire.TCPAck, nil))
	}
}

func TestShardedMatchesSingle(t *testing.T) {
	const flows = 200

	var muS sync.Mutex
	var single []*flowrec.Record
	p := New(shardedConfig(&muS, &single))
	feedFlows(t, p.Feed, flows)
	p.Flush()

	var muM sync.Mutex
	var merged []*flowrec.Record
	sh := NewSharded(4, shardedConfig(&muM, &merged))
	feedFlows(t, sh.Feed, flows)
	sh.Close()

	if len(single) != flows || len(merged) != flows {
		t.Fatalf("records: single %d, sharded %d, want %d", len(single), len(merged), flows)
	}
	// Same per-flow results regardless of sharding: compare as sets
	// keyed by client+port.
	type key struct {
		cli  wire.Addr
		port uint16
	}
	bySingle := make(map[key]*flowrec.Record, flows)
	for _, r := range single {
		bySingle[key{r.Client, r.CliPort}] = r
	}
	for _, r := range merged {
		want := bySingle[key{r.Client, r.CliPort}]
		if want == nil {
			t.Fatalf("sharded produced unknown flow %v:%d", r.Client, r.CliPort)
		}
		if r.Web != want.Web || r.ServerName != want.ServerName ||
			r.BytesDown != want.BytesDown || r.BytesUp != want.BytesUp ||
			r.RTTMin != want.RTTMin {
			t.Fatalf("flow %v:%d differs: %+v vs %+v", r.Client, r.CliPort, r, want)
		}
	}
	st := sh.Stats()
	if st.FlowsExported != flows {
		t.Errorf("sharded stats flows = %d", st.FlowsExported)
	}
	if st.Packets != uint64(flows*6) {
		t.Errorf("sharded stats packets = %d", st.Packets)
	}
}

func TestShardedDistributesWork(t *testing.T) {
	var mu sync.Mutex
	var records []*flowrec.Record
	sh := NewSharded(4, shardedConfig(&mu, &records))
	feedFlows(t, sh.Feed, 400)
	sh.Close()
	busy := 0
	for _, w := range sh.workers {
		if w.probe.Stats.Packets > 0 {
			busy++
		}
	}
	if busy < 3 {
		t.Errorf("only %d/4 shards saw traffic", busy)
	}
}

func TestShardedGarbageGoesToShardZero(t *testing.T) {
	var mu sync.Mutex
	var records []*flowrec.Record
	sh := NewSharded(2, shardedConfig(&mu, &records))
	sh.Feed(Packet{TS: testT0, Data: []byte{1, 2, 3}})
	sh.Close()
	if sh.Stats().ParseErrors != 1 {
		t.Errorf("parse errors = %d", sh.Stats().ParseErrors)
	}
	if len(records) != 0 {
		t.Errorf("garbage produced records")
	}
}

// icmpPacket renders an Ethernet+IPv4 frame whose protocol is neither
// TCP nor UDP — flow-hashable by nobody.
func icmpPacket(t *testing.T, host byte) []byte {
	t.Helper()
	payload := []byte{8, 0, 0, 0, 0, 1, 0, 1} // echo request
	ip := wire.IPv4{
		Version:  4,
		TTL:      64,
		Protocol: wire.IPProtoICMP,
		Src:      wire.AddrFrom(10, 0, 0, host),
		Dst:      wire.AddrFrom(93, 184, 216, 34),
	}
	ip.SetLengths(len(payload))
	buf := make([]byte, wire.EthernetHeaderLen+ip.HeaderLen()+len(payload))
	eth := wire.Ethernet{EtherType: wire.EtherTypeIPv4}
	n, err := eth.EncodeTo(buf)
	if err != nil {
		t.Fatal(err)
	}
	in, err := ip.EncodeTo(buf[n:])
	if err != nil {
		t.Fatal(err)
	}
	copy(buf[n+in:], payload)
	return buf
}

// TestShardedFallbackGoesToShardZero is the regression test for the
// routing bug where non-TCP/UDP IPv4 packets were hashed through a
// zero-value FlowKey instead of landing on shard 0 as documented.
func TestShardedFallbackGoesToShardZero(t *testing.T) {
	var mu sync.Mutex
	var records []*flowrec.Record
	const shards, pkts = 8, 32
	sh := NewSharded(shards, shardedConfig(&mu, &records))
	for i := 0; i < pkts; i++ {
		sh.Feed(Packet{TS: testT0.Add(time.Duration(i) * time.Millisecond), Data: icmpPacket(t, byte(i))})
	}
	sh.Close()
	if got := sh.workers[0].probe.Stats.Packets; got != pkts {
		t.Errorf("shard 0 saw %d packets, want all %d", got, pkts)
	}
	for i := 1; i < shards; i++ {
		if got := sh.workers[i].probe.Stats.Packets; got != 0 {
			t.Errorf("shard %d saw %d fallback packets, want 0", i, got)
		}
	}
	st := sh.Stats()
	if st.ShardFallback != pkts {
		t.Errorf("ShardFallback = %d, want %d", st.ShardFallback, pkts)
	}
	if st.NonIP != pkts {
		t.Errorf("NonIP = %d, want %d (shard 0 accounts the oddballs)", st.NonIP, pkts)
	}
}

// TestShardedConcurrentFeed drives Feed from several goroutines at
// once (disjoint flows each) — the -race guard for the shared parser
// pool, the fallback counter and the concurrent OnRecord fan-in.
func TestShardedConcurrentFeed(t *testing.T) {
	var mu sync.Mutex
	var records []*flowrec.Record
	sh := NewSharded(4, shardedConfig(&mu, &records))

	const feeders, flowsEach = 4, 50
	var wg sync.WaitGroup
	for g := 0; g < feeders; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			feedFlowsFrom(t, sh.Feed, g*flowsEach, flowsEach)
			// Interleave unhashable packets to stress the fallback path.
			sh.Feed(Packet{TS: testT0, Data: icmpPacket(t, byte(g))})
		}(g)
	}
	wg.Wait()
	sh.Close()

	if len(records) != feeders*flowsEach {
		t.Errorf("records = %d, want %d", len(records), feeders*flowsEach)
	}
	st := sh.Stats()
	if st.FlowsExported != feeders*flowsEach {
		t.Errorf("FlowsExported = %d, want %d", st.FlowsExported, feeders*flowsEach)
	}
	if st.ShardFallback != feeders {
		t.Errorf("ShardFallback = %d, want %d", st.ShardFallback, feeders)
	}
}

func BenchmarkShardedProbe4(b *testing.B) {
	hello := tlsx.AppendClientHello(nil, tlsx.HelloSpec{SNI: "www.netflix.com", ALPN: []string{"h2"}})
	var tt testing.T
	// Pre-build a packet batch: 64 flows of 6 packets.
	var batch []Packet
	for i := 0; i < 64; i++ {
		s := newTCPSession(
			wire.Endpoint{Addr: wire.AddrFrom(10, 1, byte(i), 7), Port: uint16(30000 + i)},
			wire.Endpoint{Addr: testServer, Port: 443})
		ts := testT0
		batch = append(batch,
			s.packet(&tt, ts, true, wire.TCPSyn, nil),
			s.packet(&tt, ts, false, wire.TCPSyn|wire.TCPAck, nil),
			s.packet(&tt, ts, true, wire.TCPAck|wire.TCPPsh, hello),
			s.packet(&tt, ts, false, wire.TCPAck, make([]byte, 1200)),
			s.packet(&tt, ts, true, wire.TCPFin|wire.TCPAck, nil),
			s.packet(&tt, ts, false, wire.TCPFin|wire.TCPAck, nil),
		)
	}
	cfg := Config{
		Subscriber: func(a wire.Addr) (SubscriberInfo, bool) { return SubscriberInfo{ID: 1}, a[0] == 10 },
		AnonKey:    []byte("bench"),
		OnRecord:   func(*flowrec.Record) {},
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sh := NewSharded(4, cfg)
		for _, p := range batch {
			sh.Feed(p)
		}
		sh.Close()
	}
}
