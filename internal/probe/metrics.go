package probe

import "repro/internal/metrics"

// Registry wiring. Handles are resolved once at package init; the
// per-packet counters stay in Probe.Stats (plain fields, no atomics)
// and are published as deltas when a probe flushes, so the packet hot
// path pays nothing for observability. Only the shard router touches
// a metric per packet (its queue-depth histogram), because queue
// pressure is invisible after the fact.
var (
	mPackets       = metrics.GetCounter("probe.packets")
	mBytes         = metrics.GetCounter("probe.bytes")
	mNonIP         = metrics.GetCounter("probe.non_ip")
	mParseErrors   = metrics.GetCounter("probe.parse_errors")
	mFlowsCreated  = metrics.GetCounter("probe.flows_created")
	mFlowsIdle     = metrics.GetCounter("probe.flows_idle_expired")
	mFlowsFlushed  = metrics.GetCounter("probe.flows_flushed")
	mFlowsExported = metrics.GetCounter("probe.flows_exported")
	mReasmBuffered = metrics.GetCounter("probe.reasm_buffered_segs")
	mReasmGaps     = metrics.GetCounter("probe.reasm_gaps")
	mDNSResponses  = metrics.GetCounter("probe.dns_responses")
	mShardFallback = metrics.GetCounter("probe.shard_fallback")
	mShardQueue    = metrics.GetHistogram("probe.shard_queue_depth", "", metrics.DepthBuckets())
)

// publishMetrics pushes the delta between the probe's current Stats
// and what it last published into the process-wide registry. Called
// from Flush so that per-day probe runs accumulate correctly and a
// probe flushed twice publishes each event once.
func (p *Probe) publishMetrics() {
	cur, prev := p.Stats, p.published
	mPackets.Add(cur.Packets - prev.Packets)
	mBytes.Add(cur.Bytes - prev.Bytes)
	mNonIP.Add(cur.NonIP - prev.NonIP)
	mParseErrors.Add(cur.ParseErrors - prev.ParseErrors)
	mFlowsCreated.Add(cur.FlowsCreated - prev.FlowsCreated)
	mFlowsIdle.Add(cur.FlowsIdleExpired - prev.FlowsIdleExpired)
	mFlowsFlushed.Add(cur.FlowsFlushed - prev.FlowsFlushed)
	mFlowsExported.Add(cur.FlowsExported - prev.FlowsExported)
	mReasmBuffered.Add(cur.ReasmBufferedSegs - prev.ReasmBufferedSegs)
	mReasmGaps.Add(cur.ReasmGaps - prev.ReasmGaps)
	mDNSResponses.Add(cur.DNSResponses - prev.DNSResponses)
	p.published = cur
}
