package probe

import (
	"time"

	"repro/internal/dpi/btx"
	"repro/internal/dpi/httpx"
	"repro/internal/dpi/quicx"
	"repro/internal/dpi/tlsx"
	"repro/internal/flowrec"
	"repro/internal/wire"
)

// flowState tracks one bidirectional stream between a subscriber and a
// server.
type flowState struct {
	key        wire.FlowKey
	proto      flowrec.Proto
	client     wire.Endpoint
	server     wire.Endpoint
	sub        SubscriberInfo
	clientIsLo bool

	start time.Time
	last  time.Time

	pktsUp, pktsDown   uint32
	bytesUp, bytesDown uint64

	// TCP teardown tracking.
	finUp, finDown bool
	rstSeen        bool
	done           bool

	// DPI results.
	web      flowrec.WebProto
	webFinal bool // classification settled, stop inspecting payloads
	name     string
	nameSrc  flowrec.NameSource
	alpn     string
	quicVer  string
	sawSPDY  bool // ALPN was spdy/* (label depends on probe epoch)

	// First-flight reassembly: the client's opening bytes, collected
	// in order until the DPI can classify them. A ClientHello happily
	// spans TCP segments in the wild; Tstat reassembles, so do we.
	reasm    []byte
	reasmSeq uint32 // next expected client sequence number
	reasmOn  bool
	srvDone  bool // server-side ALPN refinement consumed

	rtt rttEstimator
}

// reasmCap bounds the reassembly buffer; an unclassifiable first
// flight longer than this is opaque application data.
const reasmCap = 8 << 10

// addTCP accounts one TCP segment.
func (f *flowState) addTCP(ts time.Time, fromClient bool, d *wire.Decoded, p *Probe) {
	f.touch(ts, fromClient, len(d.Payload))
	t := d.TCP

	// Teardown.
	if t.Flags&wire.TCPRst != 0 {
		f.rstSeen = true
		f.done = true
	}
	if t.Flags&wire.TCPFin != 0 {
		if fromClient {
			f.finUp = true
		} else {
			f.finDown = true
		}
		if f.finUp && f.finDown {
			f.done = true
		}
	}

	// RTT: client segments arm the estimator; server ACKs resolve it.
	// SYN consumes one sequence number, so its expected ack is seq+1.
	if fromClient {
		expected := t.Seq + uint32(len(d.Payload))
		if t.Flags&wire.TCPSyn != 0 {
			expected = t.Seq + 1
		}
		if expected != t.Seq {
			f.rtt.sent(ts, expected)
		}
	} else if t.Flags&wire.TCPAck != 0 {
		f.rtt.acked(ts, t.Ack)
	}

	if fromClient && len(d.Payload) > 0 && !f.webFinal {
		f.feedFirstFlight(t.Seq, d.Payload, p)
	}
	if !fromClient && len(d.Payload) > 0 && !f.srvDone {
		f.refineFromServer(d.Payload)
	}
}

// feedFirstFlight accumulates in-order client payload and runs DPI on
// the accumulated bytes. Out-of-order or gapped arrivals settle for
// what is buffered — a probe classifies what it sees.
func (f *flowState) feedFirstFlight(seq uint32, payload []byte, p *Probe) {
	switch {
	case !f.reasmOn:
		f.reasmOn = true
		f.reasmSeq = seq + uint32(len(payload))
		f.reasm = append(f.reasm, payload...)
	case seq == f.reasmSeq:
		p.Stats.ReasmBufferedSegs++
		f.reasm = append(f.reasm, payload...)
		f.reasmSeq += uint32(len(payload))
	case int32(seq-f.reasmSeq) < 0:
		return // retransmission of bytes we already hold
	default:
		// Sequence gap: classification proceeds on what we have.
		p.Stats.ReasmGaps++
		f.inspectTCPPayload(f.reasm, p, true)
		f.reasm = nil
		f.webFinal = true
		return
	}
	force := len(f.reasm) >= reasmCap
	f.inspectTCPPayload(f.reasm, p, force)
	if f.webFinal || force {
		f.reasm = nil // settled (or gave up): stop buffering
		f.webFinal = true
	}
}

// refineFromServer reads the server's ServerHello, whose selected ALPN
// is authoritative for the session's protocol: a client may offer
// h2+http/1.1 and get neither.
func (f *flowState) refineFromServer(payload []byte) {
	f.srvDone = true
	switch f.web {
	case flowrec.WebTLS, flowrec.WebSPDY, flowrec.WebHTTP2:
	default:
		return
	}
	hello, err := tlsx.ParseServerHello(payload)
	if err != nil || hello.ALPN == "" {
		return
	}
	f.alpn = hello.ALPN
	switch {
	case hello.ALPN == "h2":
		f.web = flowrec.WebHTTP2
	case len(hello.ALPN) >= 4 && hello.ALPN[:4] == "spdy":
		f.web = flowrec.WebSPDY
		f.sawSPDY = true
	default:
		f.web = flowrec.WebTLS
	}
}

// addUDP accounts one UDP datagram.
func (f *flowState) addUDP(ts time.Time, fromClient bool, d *wire.Decoded, p *Probe) {
	f.touch(ts, fromClient, len(d.Payload))
	if f.webFinal {
		return
	}
	switch {
	case f.server.Port == 53 || f.client.Port == 53:
		f.web = flowrec.WebDNS
		f.webFinal = true
	// QUIC only runs on UDP/443; gating on the port avoids tagging
	// P2P datagrams whose first byte happens to look like a long
	// header (0xE3 eMule vs IETF QUIC is genuinely ambiguous).
	case f.server.Port == 443 && quicx.Sniff(d.Payload):
		if h, err := quicx.Parse(d.Payload); err == nil {
			f.web = flowrec.WebQUIC
			f.quicVer = h.Version
			f.webFinal = true
		}
	case btx.ClassifyUDP(d.Payload, f.server.Port) != btx.UDPNone:
		f.web = flowrec.WebP2P
		f.webFinal = true
	}
}

// touch updates counters and liveness.
func (f *flowState) touch(ts time.Time, fromClient bool, payloadLen int) {
	if ts.After(f.last) {
		f.last = ts
	}
	if ts.Before(f.start) {
		f.start = ts
	}
	if fromClient {
		f.pktsUp++
		f.bytesUp += uint64(payloadLen)
	} else {
		f.pktsDown++
		f.bytesDown += uint64(payloadLen)
	}
}

// inspectTCPPayload runs the DPI chain on the reassembled first
// flight. When force is false it may defer classification until more
// bytes arrive (split ClientHello / incomplete request head).
func (f *flowState) inspectTCPPayload(payload []byte, p *Probe, force bool) {
	switch {
	case tlsx.Sniff(payload):
		if _, complete := tlsx.RecordLen(payload); !complete && !force {
			return // hello spans segments: wait for the rest
		}
		hello, err := tlsx.ParseClientHello(payload)
		if err != nil {
			return // not actually a hello; retry with more bytes
		}
		f.name, f.nameSrc = hello.SNI, flowrec.NameSNI
		if hello.SNI == "" {
			f.nameSrc = flowrec.NameNone
		}
		switch {
		case hello.FBZero:
			f.web = flowrec.WebFBZero
		case hello.ALPNContains("h2"):
			f.web, f.alpn = flowrec.WebHTTP2, "h2"
		case hasSPDY(hello.ALPN):
			f.sawSPDY = true
			f.alpn = firstSPDY(hello.ALPN)
			f.web = flowrec.WebSPDY
		default:
			f.web = flowrec.WebTLS
			if len(hello.ALPN) > 0 {
				f.alpn = hello.ALPN[0]
			}
		}
		f.webFinal = true
	case httpx.SniffRequest(payload):
		if !headComplete(payload) && !force {
			return // request head still arriving
		}
		req, err := httpx.ParseRequest(payload)
		if err != nil {
			return
		}
		f.web = flowrec.WebHTTP
		if req.Host != "" {
			f.name, f.nameSrc = req.Host, flowrec.NameHTTPHost
		}
		f.webFinal = true
	case btx.SniffHandshake(payload):
		f.web = flowrec.WebP2P
		f.webFinal = true
	}
}

// record converts the flow to its exported record, filling DN-Hunter
// names, applying the probe's protocol-visibility epoch, and
// anonymizing the client.
func (f *flowState) record(p *Probe) *flowrec.Record {
	// DN-Hunter: flows without an in-band name get the last name the
	// client resolved for the server address (section 2.1).
	name, src := f.name, f.nameSrc
	if name == "" {
		if n, ok := p.dns.lookup(f.client.Addr, f.server.Addr); ok {
			name, src = n, flowrec.NameDNS
		}
	}

	// SPDY visibility epoch (event C of Figure 8): before the probe
	// update, spdy/* flows were reported as generic HTTPS.
	web := f.web
	if web == flowrec.WebSPDY && !p.cfg.SPDYVisibleSince.IsZero() &&
		f.start.Before(p.cfg.SPDYVisibleSince) {
		web = flowrec.WebTLS
	}

	min, avg, max, n := f.rtt.summary()
	return &flowrec.Record{
		Client:     p.anon.Anon(f.client.Addr),
		Server:     f.server.Addr,
		CliPort:    f.client.Port,
		SrvPort:    f.server.Port,
		Proto:      f.proto,
		Tech:       f.sub.Tech,
		SubID:      f.sub.ID,
		Start:      f.start,
		Duration:   f.last.Sub(f.start),
		PktsUp:     f.pktsUp,
		PktsDown:   f.pktsDown,
		BytesUp:    f.bytesUp,
		BytesDown:  f.bytesDown,
		Web:        web,
		ServerName: name,
		NameSrc:    src,
		ALPN:       f.alpn,
		QUICVer:    f.quicVer,
		RTTMin:     min,
		RTTAvg:     avg,
		RTTMax:     max,
		RTTSamples: n,
	}
}

func hasSPDY(alpn []string) bool { return firstSPDY(alpn) != "" }

func firstSPDY(alpn []string) string {
	for _, a := range alpn {
		if len(a) >= 4 && a[:4] == "spdy" {
			return a
		}
	}
	return ""
}

// headComplete reports whether an HTTP request head terminator has
// arrived.
func headComplete(payload []byte) bool {
	for i := 0; i+3 < len(payload); i++ {
		if payload[i] == '\r' && payload[i+1] == '\n' && payload[i+2] == '\r' && payload[i+3] == '\n' {
			return true
		}
	}
	return false
}

// rttEstimator matches client segments with the server ACKs covering
// them, yielding probe→server round-trip samples (section 2.1 of the
// paper, after [Mellia et al. ICC'06]). Retransmission ambiguity is
// handled Karn-style: re-arming an already-armed sequence invalidates
// the sample.
type rttEstimator struct {
	pending [rttPendingMax]rttPending
	n       int

	min, max, sum time.Duration
	samples       uint32
}

type rttPending struct {
	expectedAck uint32
	at          time.Time
	invalid     bool
}

// rttPendingMax bounds in-flight tracked segments per flow; more than
// a handful in flight adds nothing to min-RTT accuracy.
const rttPendingMax = 8

// sent arms the estimator for a client segment expecting expectedAck.
func (r *rttEstimator) sent(ts time.Time, expectedAck uint32) {
	for i := 0; i < r.n; i++ {
		if r.pending[i].expectedAck == expectedAck {
			r.pending[i].invalid = true // retransmission: Karn
			return
		}
	}
	if r.n == len(r.pending) {
		return
	}
	r.pending[r.n] = rttPending{expectedAck: expectedAck, at: ts}
	r.n++
}

// acked resolves every pending segment cumulatively covered by ack.
func (r *rttEstimator) acked(ts time.Time, ack uint32) {
	w := 0
	for i := 0; i < r.n; i++ {
		pend := r.pending[i]
		// Sequence-space comparison tolerant of wraparound.
		if int32(ack-pend.expectedAck) >= 0 {
			if !pend.invalid {
				r.observe(ts.Sub(pend.at))
			}
			continue
		}
		r.pending[w] = pend
		w++
	}
	r.n = w
}

func (r *rttEstimator) observe(d time.Duration) {
	if d < 0 {
		return
	}
	if r.samples == 0 || d < r.min {
		r.min = d
	}
	if d > r.max {
		r.max = d
	}
	r.sum += d
	r.samples++
}

// summary returns min/avg/max and the sample count.
func (r *rttEstimator) summary() (min, avg, max time.Duration, n uint32) {
	if r.samples == 0 {
		return 0, 0, 0, 0
	}
	return r.min, r.sum / time.Duration(r.samples), r.max, r.samples
}
