package probe

import (
	"fmt"
	"testing"

	"repro/internal/wire"
)

func TestDNHunterLearnLookup(t *testing.T) {
	d := newDNHunter()
	cli := wire.AddrFrom(10, 0, 0, 1)
	srv := wire.AddrFrom(173, 194, 1, 9)

	if _, ok := d.lookup(cli, srv); ok {
		t.Fatal("empty cache returned a name")
	}
	d.learn(cli, srv, "r1.googlevideo.com")
	name, ok := d.lookup(cli, srv)
	if !ok || name != "r1.googlevideo.com" {
		t.Fatalf("lookup = %q, %v", name, ok)
	}
	// Later resolution overwrites: the *last* name wins, as in the
	// DN-Hunter paper.
	d.learn(cli, srv, "r2.googlevideo.com")
	if name, _ := d.lookup(cli, srv); name != "r2.googlevideo.com" {
		t.Errorf("lookup = %q, want updated name", name)
	}
}

func TestDNHunterScopedPerClient(t *testing.T) {
	d := newDNHunter()
	srv := wire.AddrFrom(23, 62, 1, 1) // shared CDN address
	d.learn(wire.AddrFrom(10, 0, 0, 1), srv, "fbstatic-a.akamaihd.net")
	d.learn(wire.AddrFrom(10, 0, 0, 2), srv, "instagramstatic-a.akamaihd.net")

	n1, _ := d.lookup(wire.AddrFrom(10, 0, 0, 1), srv)
	n2, _ := d.lookup(wire.AddrFrom(10, 0, 0, 2), srv)
	if n1 != "fbstatic-a.akamaihd.net" || n2 != "instagramstatic-a.akamaihd.net" {
		t.Errorf("cross-client pollution: %q / %q", n1, n2)
	}
	if _, ok := d.lookup(wire.AddrFrom(10, 0, 0, 3), srv); ok {
		t.Error("third client sees someone else's resolution")
	}
}

func TestDNHunterIgnoresEmptyNames(t *testing.T) {
	d := newDNHunter()
	cli, srv := wire.AddrFrom(10, 1, 1, 1), wire.AddrFrom(9, 9, 9, 9)
	d.learn(cli, srv, "")
	if _, ok := d.lookup(cli, srv); ok {
		t.Error("empty name was cached")
	}
}

func TestDNHunterEntryCounting(t *testing.T) {
	d := newDNHunter()
	cli := wire.AddrFrom(10, 1, 1, 1)
	for i := 0; i < 100; i++ {
		d.learn(cli, wire.AddrFrom(9, 9, byte(i>>8), byte(i)), fmt.Sprintf("h%d.example", i))
	}
	if d.entries != 100 {
		t.Errorf("entries = %d, want 100", d.entries)
	}
	// Re-learning the same binding must not double-count.
	d.learn(cli, wire.AddrFrom(9, 9, 0, 0), "h0-renamed.example")
	if d.entries != 100 {
		t.Errorf("entries = %d after overwrite, want 100", d.entries)
	}
}
