// Package probe implements the passive traffic analyzer at the heart
// of the paper's measurement infrastructure (their tool is Tstat,
// section 2.1). A Probe consumes timestamped packets from a mirrored
// link and exports one flow record per TCP/UDP stream, carrying:
//
//   - per-direction packet and byte counters,
//   - the application protocol label (HTTP, TLS, SPDY, HTTP/2, QUIC,
//     FB-Zero, P2P, DNS — the categories of Figure 8),
//   - the server domain name from the HTTP Host header, the TLS SNI,
//     or a preceding DNS resolution (DN-Hunter, [Bermudez et al.]),
//   - the TCP round-trip-time estimate from the probe to the server
//     (min/avg/max and sample count), obtained by matching client
//     segments with the server ACKs that cover them,
//   - the subscriber identity (anonymized) and access technology.
//
// Flows expire on RST, on FIN in both directions, or by idle timeout;
// time advances only with packet timestamps, never the wall clock, so
// replaying a trace gives identical output every run.
package probe

import (
	"fmt"
	"sort"
	"time"

	"repro/internal/anonymize"
	"repro/internal/dpi/dnsx"
	"repro/internal/flowrec"
	"repro/internal/wire"
)

// Packet is one captured frame with its capture timestamp.
type Packet struct {
	TS   time.Time
	Data []byte
}

// SubscriberInfo identifies a monitored customer line.
type SubscriberInfo struct {
	ID   uint32
	Tech flowrec.AccessTech
}

// Config parameterises a Probe.
type Config struct {
	// Subscriber resolves a client address to a subscription. Flows
	// where neither endpoint resolves are not exported (transit noise).
	Subscriber func(wire.Addr) (SubscriberInfo, bool)

	// AnonKey keys the client-address anonymizer. Required.
	AnonKey []byte

	// TCPIdleTimeout and UDPIdleTimeout expire silent flows. Zero
	// values default to 5 minutes and 2 minutes (Tstat-like).
	TCPIdleTimeout time.Duration
	UDPIdleTimeout time.Duration

	// SPDYVisibleSince models the June 2015 probe software update that
	// started reporting SPDY explicitly (event C in Figure 8): flows
	// with a spdy/* ALPN before this instant are labelled plain TLS,
	// exactly as the real probes mislabelled them. Zero means SPDY is
	// always visible.
	SPDYVisibleSince time.Time

	// OnRecord receives each exported flow record. Required.
	OnRecord func(*flowrec.Record)
}

// Probe is the flow meter. Not safe for concurrent use: a deployment
// shards packets across probes by flow hash (wire.FlowKey.FastHash),
// mirroring the multi-queue DPDK capture of the real system.
type Probe struct {
	cfg    Config
	parser *wire.LayerParser
	anon   *anonymize.Mapper
	flows  map[wire.FlowKey]*flowState
	dns    *dnHunter
	now    time.Time // latest packet timestamp seen

	// sweep bookkeeping: expiry scans are amortised.
	lastSweep time.Time

	// Stats counts what the probe saw; cheap enough to always keep.
	Stats Stats

	// published remembers the Stats values already pushed to the
	// metrics registry, so Flush publishes deltas.
	published Stats
}

// Stats aggregates probe-level counters.
type Stats struct {
	Packets       uint64
	Bytes         uint64
	NonIP         uint64
	ParseErrors   uint64
	FlowsExported uint64
	DNSResponses  uint64

	// Flow lifecycle: creations, idle-timeout expiries, end-of-trace
	// flushes. Exported = terminated (FIN/RST) + idle + flushed.
	FlowsCreated     uint64
	FlowsIdleExpired uint64
	FlowsFlushed     uint64

	// First-flight reassembly: segments buffered beyond a flow's first
	// payload, and sequence gaps that forced early classification.
	ReasmBufferedSegs uint64
	ReasmGaps         uint64

	// ShardFallback counts packets the sharded front-end could not
	// flow-hash (routed to shard 0). Only Sharded.Stats fills it.
	ShardFallback uint64
}

// sweepEvery bounds how often the idle-expiry scan runs.
const sweepEvery = 10 * time.Second

// New builds a probe. It panics on a nil OnRecord or Subscriber: both
// are wiring, not runtime conditions.
func New(cfg Config) *Probe {
	if cfg.OnRecord == nil {
		panic("probe: Config.OnRecord is required")
	}
	if cfg.Subscriber == nil {
		panic("probe: Config.Subscriber is required")
	}
	if cfg.TCPIdleTimeout == 0 {
		cfg.TCPIdleTimeout = 5 * time.Minute
	}
	if cfg.UDPIdleTimeout == 0 {
		cfg.UDPIdleTimeout = 2 * time.Minute
	}
	return &Probe{
		cfg:    cfg,
		parser: wire.NewLayerParser(wire.LayerEthernet),
		anon:   anonymize.New(cfg.AnonKey),
		flows:  make(map[wire.FlowKey]*flowState),
		dns:    newDNHunter(),
	}
}

// Feed processes one packet. Malformed packets are counted and
// dropped, never fatal — a passive probe must survive anything the
// wire carries.
func (p *Probe) Feed(pkt Packet) {
	p.Stats.Packets++
	p.Stats.Bytes += uint64(len(pkt.Data))
	if pkt.TS.After(p.now) {
		p.now = pkt.TS
	}

	d, err := p.parser.Parse(pkt.Data)
	if err != nil {
		// IPv6 frames are accounted as non-IP(v4) traffic even when
		// their transport payload is short: the access network under
		// study is IPv4, and v6 chatter is not an error condition.
		if d != nil && d.Has(wire.LayerIPv6) {
			p.Stats.NonIP++
		} else {
			p.Stats.ParseErrors++
		}
		return
	}
	if !d.Has(wire.LayerIPv4) {
		p.Stats.NonIP++
		return
	}

	switch {
	case d.Has(wire.LayerTCP):
		p.feedTCP(pkt.TS, d)
	case d.Has(wire.LayerUDP):
		p.feedUDP(pkt.TS, d)
	default:
		p.Stats.NonIP++
	}

	if p.now.Sub(p.lastSweep) >= sweepEvery {
		p.sweep()
		p.lastSweep = p.now
	}
}

// feedTCP updates or creates the flow for a TCP segment.
func (p *Probe) feedTCP(ts time.Time, d *wire.Decoded) {
	src := wire.Endpoint{Addr: d.IP.Src, Port: d.TCP.SrcPort}
	dst := wire.Endpoint{Addr: d.IP.Dst, Port: d.TCP.DstPort}
	key, fwd := wire.NewFlowKey(wire.IPProtoTCP, src, dst)
	f := p.flows[key]
	if f == nil {
		f = p.newFlow(ts, key, flowrec.ProtoTCP, src, dst, d.TCP.Flags)
		if f == nil {
			return // neither endpoint is a subscriber
		}
		p.Stats.FlowsCreated++
		p.flows[key] = f
	}
	fromClient := fwd == f.clientIsLo
	f.addTCP(ts, fromClient, d, p)
	if f.done {
		p.export(f)
		delete(p.flows, key)
	}
}

// feedUDP updates or creates the flow for a UDP datagram.
func (p *Probe) feedUDP(ts time.Time, d *wire.Decoded) {
	src := wire.Endpoint{Addr: d.IP.Src, Port: d.UDP.SrcPort}
	dst := wire.Endpoint{Addr: d.IP.Dst, Port: d.UDP.DstPort}

	// DNS responses feed DN-Hunter before any flow bookkeeping: the
	// annotation must be in place when the first data flow starts.
	if src.Port == 53 {
		if msg, err := dnsx.Decode(d.Payload); err == nil && msg.Response {
			p.Stats.DNSResponses++
			for _, a := range msg.ARecords() {
				p.dns.learn(dst.Addr, wire.Addr(a.IP), a.Name)
			}
		}
	}

	key, fwd := wire.NewFlowKey(wire.IPProtoUDP, src, dst)
	f := p.flows[key]
	if f == nil {
		f = p.newFlow(ts, key, flowrec.ProtoUDP, src, dst, 0)
		if f == nil {
			return
		}
		p.Stats.FlowsCreated++
		p.flows[key] = f
	}
	fromClient := fwd == f.clientIsLo
	f.addUDP(ts, fromClient, d, p)
}

// newFlow decides flow orientation (who is the subscriber) and
// allocates state. Returns nil when neither side is monitored.
func (p *Probe) newFlow(ts time.Time, key wire.FlowKey, proto flowrec.Proto, src, dst wire.Endpoint, tcpFlags uint8) *flowState {
	var client, server wire.Endpoint
	var sub SubscriberInfo
	if info, ok := p.cfg.Subscriber(src.Addr); ok {
		client, server, sub = src, dst, info
	} else if info, ok := p.cfg.Subscriber(dst.Addr); ok {
		// First packet seen was server→client (downlink mirror races
		// are routine); orientation still follows the subscriber.
		client, server, sub = dst, src, info
	} else {
		return nil
	}
	f := &flowState{
		key:        key,
		proto:      proto,
		client:     client,
		server:     server,
		sub:        sub,
		start:      ts,
		last:       ts,
		clientIsLo: client == key.Lo,
	}
	return f
}

// sweep exports flows idle past their timeout.
func (p *Probe) sweep() {
	// Collect first, export in deterministic order: ranging over
	// p.flows directly made the export order (and thus the record
	// order in day logs) vary run to run with Go's map iteration —
	// identical input traces produced differently-ordered output.
	var expired []*flowState
	for key, f := range p.flows {
		timeout := p.cfg.TCPIdleTimeout
		if f.proto == flowrec.ProtoUDP {
			timeout = p.cfg.UDPIdleTimeout
		}
		if p.now.Sub(f.last) >= timeout {
			expired = append(expired, f)
			delete(p.flows, key)
		}
	}
	sortFlows(expired)
	for _, f := range expired {
		p.Stats.FlowsIdleExpired++
		p.export(f)
	}
}

// Flush exports every open flow (in deterministic order, see sweep)
// and publishes counter deltas to the metrics registry; call at end of
// trace (or day).
func (p *Probe) Flush() {
	open := make([]*flowState, 0, len(p.flows))
	for key, f := range p.flows {
		open = append(open, f)
		delete(p.flows, key)
	}
	sortFlows(open)
	for _, f := range open {
		p.Stats.FlowsFlushed++
		p.export(f)
	}
	p.publishMetrics()
}

// sortFlows orders flows by last activity, then start, then flow key —
// a total order, so equal-timestamp flows still export identically
// every run.
func sortFlows(flows []*flowState) {
	sort.Slice(flows, func(i, j int) bool {
		a, b := flows[i], flows[j]
		if !a.last.Equal(b.last) {
			return a.last.Before(b.last)
		}
		if !a.start.Equal(b.start) {
			return a.start.Before(b.start)
		}
		return keyLess(a.key, b.key)
	})
}

// keyLess is a total order on flow keys.
func keyLess(a, b wire.FlowKey) bool {
	if a.Lo.Addr != b.Lo.Addr {
		return a.Lo.Addr.Uint32() < b.Lo.Addr.Uint32()
	}
	if a.Lo.Port != b.Lo.Port {
		return a.Lo.Port < b.Lo.Port
	}
	if a.Hi.Addr != b.Hi.Addr {
		return a.Hi.Addr.Uint32() < b.Hi.Addr.Uint32()
	}
	if a.Hi.Port != b.Hi.Port {
		return a.Hi.Port < b.Hi.Port
	}
	return a.Proto < b.Proto
}

// export converts flow state to a record and hands it out.
func (p *Probe) export(f *flowState) {
	rec := f.record(p)
	p.Stats.FlowsExported++
	p.cfg.OnRecord(rec)
}

// OpenFlows reports the number of currently tracked flows.
func (p *Probe) OpenFlows() int { return len(p.flows) }

// String summarises probe counters.
func (s Stats) String() string {
	return fmt.Sprintf("packets=%d bytes=%d flows=%d parse_errors=%d non_ip=%d dns=%d",
		s.Packets, s.Bytes, s.FlowsExported, s.ParseErrors, s.NonIP, s.DNSResponses)
}
