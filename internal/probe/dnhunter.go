package probe

import "repro/internal/wire"

// dnHunter implements the DN-Hunter mechanism (section 2.1 of the
// paper, after [Bermudez et al. IMC'12]): the probe observes all DNS
// traffic and remembers, per client, the last name each server address
// resolved from. Flows lacking an in-band server name (QUIC, TLS
// without SNI, raw TCP) are annotated from this cache.
type dnHunter struct {
	// byClient maps client → (server address → name). Scoping by
	// client matters: two customers can resolve the same CDN address
	// from different names, and the name says what *they* wanted.
	byClient map[wire.Addr]map[wire.Addr]string
	entries  int
}

// dnHunterMaxEntries bounds total cached bindings; on overflow the
// cache resets, which costs a few unnamed flows right after — the same
// trade the fixed-size cache of a real probe makes.
const dnHunterMaxEntries = 1 << 20

func newDNHunter() *dnHunter {
	return &dnHunter{byClient: make(map[wire.Addr]map[wire.Addr]string)}
}

// learn records that client resolved name to server.
func (d *dnHunter) learn(client, server wire.Addr, name string) {
	if name == "" {
		return
	}
	m := d.byClient[client]
	if m == nil {
		m = make(map[wire.Addr]string)
		d.byClient[client] = m
	}
	if _, exists := m[server]; !exists {
		d.entries++
		if d.entries > dnHunterMaxEntries {
			d.byClient = make(map[wire.Addr]map[wire.Addr]string)
			d.entries = 1
			m = make(map[wire.Addr]string)
			d.byClient[client] = m
		}
	}
	m[server] = name
}

// lookup returns the name client last resolved for server.
func (d *dnHunter) lookup(client, server wire.Addr) (string, bool) {
	m := d.byClient[client]
	if m == nil {
		return "", false
	}
	name, ok := m[server]
	return name, ok
}
