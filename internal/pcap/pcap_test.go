package pcap

import (
	"bytes"
	"encoding/binary"
	"errors"
	"io"
	"testing"
	"time"
)

func TestRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	w, err := NewWriter(&buf, 0)
	if err != nil {
		t.Fatal(err)
	}
	base := time.Date(2016, 11, 5, 10, 20, 30, 123456000, time.UTC)
	packets := [][]byte{
		{0x01},
		bytes.Repeat([]byte{0xAB}, 1500),
		{},
	}
	for i, p := range packets {
		if err := w.WritePacket(base.Add(time.Duration(i)*time.Second), p); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}

	r, err := NewReader(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if r.LinkType != LinkTypeEthernet {
		t.Errorf("link type = %d", r.LinkType)
	}
	for i, want := range packets {
		ts, data, err := r.ReadPacket()
		if err != nil {
			t.Fatalf("packet %d: %v", i, err)
		}
		if !bytes.Equal(data, want) {
			t.Errorf("packet %d data mismatch (%d vs %d bytes)", i, len(data), len(want))
		}
		wantTS := base.Add(time.Duration(i) * time.Second)
		if ts.Sub(wantTS) > time.Microsecond || wantTS.Sub(ts) > time.Microsecond {
			t.Errorf("packet %d ts = %v, want %v", i, ts, wantTS)
		}
	}
	if _, _, err := r.ReadPacket(); !errors.Is(err, io.EOF) {
		t.Errorf("after last packet: %v, want EOF", err)
	}
}

func TestSnapLenTruncation(t *testing.T) {
	var buf bytes.Buffer
	w, err := NewWriter(&buf, 100)
	if err != nil {
		t.Fatal(err)
	}
	big := bytes.Repeat([]byte{0x42}, 300)
	if err := w.WritePacket(time.Unix(1, 0), big); err != nil {
		t.Fatal(err)
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	r, err := NewReader(&buf)
	if err != nil {
		t.Fatal(err)
	}
	_, data, err := r.ReadPacket()
	if err != nil {
		t.Fatal(err)
	}
	if len(data) != 100 {
		t.Errorf("captured %d bytes, want snaplen 100", len(data))
	}
}

func TestReaderRejectsGarbage(t *testing.T) {
	if _, err := NewReader(bytes.NewReader(make([]byte, 24))); !errors.Is(err, ErrBadMagic) {
		t.Errorf("zero header: %v", err)
	}
	if _, err := NewReader(bytes.NewReader([]byte("short"))); err == nil {
		t.Error("short header accepted")
	}
}

func TestReaderBigEndianAndNano(t *testing.T) {
	// Hand-build a big-endian nanosecond file with one packet.
	var buf bytes.Buffer
	hdr := make([]byte, 24)
	binary.BigEndian.PutUint32(hdr[0:4], magicNano)
	binary.BigEndian.PutUint16(hdr[4:6], 2)
	binary.BigEndian.PutUint16(hdr[6:8], 4)
	binary.BigEndian.PutUint32(hdr[16:20], 65535)
	binary.BigEndian.PutUint32(hdr[20:24], LinkTypeEthernet)
	buf.Write(hdr)
	pkt := []byte{1, 2, 3, 4}
	ph := make([]byte, 16)
	binary.BigEndian.PutUint32(ph[0:4], 1000)
	binary.BigEndian.PutUint32(ph[4:8], 42) // 42 ns
	binary.BigEndian.PutUint32(ph[8:12], uint32(len(pkt)))
	binary.BigEndian.PutUint32(ph[12:16], uint32(len(pkt)))
	buf.Write(ph)
	buf.Write(pkt)

	r, err := NewReader(&buf)
	if err != nil {
		t.Fatal(err)
	}
	ts, data, err := r.ReadPacket()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(data, pkt) {
		t.Error("data mismatch")
	}
	if ts.Nanosecond() != 42 {
		t.Errorf("nanoseconds = %d, want 42", ts.Nanosecond())
	}
}

func TestReaderRejectsHugeCapLen(t *testing.T) {
	var buf bytes.Buffer
	w, err := NewWriter(&buf, 0)
	if err != nil {
		t.Fatal(err)
	}
	w.WritePacket(time.Unix(0, 0), []byte{1})
	w.Flush()
	raw := buf.Bytes()
	binary.LittleEndian.PutUint32(raw[24+8:24+12], 1<<30) // capLen field
	r, err := NewReader(bytes.NewReader(raw))
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := r.ReadPacket(); !errors.Is(err, ErrCorrupt) {
		t.Errorf("err = %v, want ErrCorrupt", err)
	}
}

func TestTruncatedMidPacket(t *testing.T) {
	var buf bytes.Buffer
	w, err := NewWriter(&buf, 0)
	if err != nil {
		t.Fatal(err)
	}
	w.WritePacket(time.Unix(0, 0), bytes.Repeat([]byte{7}, 64))
	w.Flush()
	raw := buf.Bytes()
	r, err := NewReader(bytes.NewReader(raw[:len(raw)-10]))
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := r.ReadPacket(); err == nil || errors.Is(err, io.EOF) {
		t.Errorf("truncated packet: err = %v, want a real error", err)
	}
}
