// Package pcap reads and writes the classic libpcap capture format
// (the .pcap files tcpdump produces). The probe consumes packets from
// any source; with this package it can replay real captures, and the
// simulator's packet stream can be exported for inspection with
// standard tools — the interchange format every measurement system
// ends up needing.
//
// Only the original format (magic 0xa1b2c3d4, microsecond timestamps,
// and its nanosecond variant 0xa1b23c4d) is implemented; pcapng is out
// of scope. Both byte orders are read; writing uses little-endian
// microseconds, the most widely understood flavour.
package pcap

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"time"
)

// LinkTypeEthernet is the only link type the probe understands.
const LinkTypeEthernet = 1

// Magic numbers.
const (
	magicMicro = 0xa1b2c3d4
	magicNano  = 0xa1b23c4d
)

// Errors returned by the reader.
var (
	ErrBadMagic  = errors.New("pcap: not a pcap file")
	ErrCorrupt   = errors.New("pcap: corrupt packet header")
	ErrWrongLink = errors.New("pcap: unsupported link type")
)

// maxSnapLen bounds a sane packet length; anything above is damage.
const maxSnapLen = 256 << 10

// Writer emits a pcap stream.
type Writer struct {
	w       *bufio.Writer
	snapLen uint32
}

// NewWriter writes the file header. snapLen 0 defaults to 65535.
func NewWriter(w io.Writer, snapLen uint32) (*Writer, error) {
	if snapLen == 0 {
		snapLen = 65535
	}
	bw := bufio.NewWriterSize(w, 1<<16)
	var hdr [24]byte
	binary.LittleEndian.PutUint32(hdr[0:4], magicMicro)
	binary.LittleEndian.PutUint16(hdr[4:6], 2) // version major
	binary.LittleEndian.PutUint16(hdr[6:8], 4) // version minor
	// thiszone (4) and sigfigs (4) stay zero.
	binary.LittleEndian.PutUint32(hdr[16:20], snapLen)
	binary.LittleEndian.PutUint32(hdr[20:24], LinkTypeEthernet)
	if _, err := bw.Write(hdr[:]); err != nil {
		return nil, fmt.Errorf("pcap: writing file header: %w", err)
	}
	return &Writer{w: bw, snapLen: snapLen}, nil
}

// WritePacket appends one packet, truncating data to the snap length.
func (w *Writer) WritePacket(ts time.Time, data []byte) error {
	origLen := uint32(len(data))
	if origLen > w.snapLen {
		data = data[:w.snapLen]
	}
	var hdr [16]byte
	binary.LittleEndian.PutUint32(hdr[0:4], uint32(ts.Unix()))
	binary.LittleEndian.PutUint32(hdr[4:8], uint32(ts.Nanosecond()/1000))
	binary.LittleEndian.PutUint32(hdr[8:12], uint32(len(data)))
	binary.LittleEndian.PutUint32(hdr[12:16], origLen)
	if _, err := w.w.Write(hdr[:]); err != nil {
		return fmt.Errorf("pcap: writing packet header: %w", err)
	}
	if _, err := w.w.Write(data); err != nil {
		return fmt.Errorf("pcap: writing packet data: %w", err)
	}
	return nil
}

// Flush pushes buffered bytes down.
func (w *Writer) Flush() error { return w.w.Flush() }

// Reader consumes a pcap stream.
type Reader struct {
	r       *bufio.Reader
	order   binary.ByteOrder
	nano    bool
	snapLen uint32
	// LinkType is the capture's link layer (LinkTypeEthernet for
	// probe-compatible files).
	LinkType uint32
}

// NewReader parses the file header.
func NewReader(r io.Reader) (*Reader, error) {
	br := bufio.NewReaderSize(r, 1<<16)
	var hdr [24]byte
	if _, err := io.ReadFull(br, hdr[:]); err != nil {
		return nil, fmt.Errorf("pcap: reading file header: %w", err)
	}
	rd := &Reader{r: br}
	magicLE := binary.LittleEndian.Uint32(hdr[0:4])
	magicBE := binary.BigEndian.Uint32(hdr[0:4])
	switch {
	case magicLE == magicMicro:
		rd.order = binary.LittleEndian
	case magicLE == magicNano:
		rd.order, rd.nano = binary.LittleEndian, true
	case magicBE == magicMicro:
		rd.order = binary.BigEndian
	case magicBE == magicNano:
		rd.order, rd.nano = binary.BigEndian, true
	default:
		return nil, ErrBadMagic
	}
	rd.snapLen = rd.order.Uint32(hdr[16:20])
	rd.LinkType = rd.order.Uint32(hdr[20:24])
	return rd, nil
}

// ReadPacket returns the next packet. It returns io.EOF cleanly at the
// end of the stream. The data slice is freshly allocated per call and
// safe to retain.
func (r *Reader) ReadPacket() (ts time.Time, data []byte, err error) {
	var hdr [16]byte
	if _, err := io.ReadFull(r.r, hdr[:]); err != nil {
		if errors.Is(err, io.EOF) {
			return time.Time{}, nil, io.EOF
		}
		return time.Time{}, nil, fmt.Errorf("pcap: reading packet header: %w", err)
	}
	sec := r.order.Uint32(hdr[0:4])
	frac := r.order.Uint32(hdr[4:8])
	capLen := r.order.Uint32(hdr[8:12])
	if capLen > maxSnapLen {
		return time.Time{}, nil, fmt.Errorf("pcap: captured length %d: %w", capLen, ErrCorrupt)
	}
	nanos := int64(frac) * 1000
	if r.nano {
		nanos = int64(frac)
	}
	ts = time.Unix(int64(sec), nanos).UTC()
	data = make([]byte, capLen)
	if _, err := io.ReadFull(r.r, data); err != nil {
		return time.Time{}, nil, fmt.Errorf("pcap: reading packet data: %w", err)
	}
	return ts, data, nil
}
