package flowrec

import (
	"errors"
	"math/rand"
	"os"
	"reflect"
	"testing"
	"time"
)

// v3 (per-block compression) tests: round-trip fidelity, the pushdown
// contract — skipped blocks are never inflated, so damage inside them
// is invisible to a selective scan — damage detection on consumed
// bytes, parallel decode ordering, and the compaction path that
// rewrites sealed days between formats.

func TestV3StoreRoundTrip(t *testing.T) {
	s, err := OpenStoreFormat(t.TempDir(), FormatV3)
	if err != nil {
		t.Fatal(err)
	}
	if s.Format() != FormatV3 {
		t.Fatalf("Format() = %v", s.Format())
	}
	// Straddle block boundaries: full blocks plus a short final one.
	want := dayRecords(rand.New(rand.NewSource(31)), colTestDay, 2*colBlockRows+123)
	writeDayRecords(t, s, colTestDay, want)

	var got []Record
	err = s.ReadDay(colTestDay, func(r *Record) error { // auto-detects v3
		got = append(got, *r)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(want) {
		t.Fatalf("read %d records, want %d", len(got), len(want))
	}
	for i := range want {
		if !reflect.DeepEqual(got[i], want[i]) {
			t.Fatalf("record %d mismatch:\n got %+v\nwant %+v", i, got[i], want[i])
		}
	}
}

// TestV3MixedLake: v1, v2 and v3 days coexist in one directory and all
// read through one handle by per-file magic.
func TestV3MixedLake(t *testing.T) {
	dir := t.TempDir()
	rng := rand.New(rand.NewSource(32))
	days := make(map[Format]time.Time)
	recs := make(map[Format][]Record)
	for i, format := range []Format{FormatV1, FormatV2, FormatV3} {
		s, err := OpenStoreFormat(dir, format)
		if err != nil {
			t.Fatal(err)
		}
		day := colTestDay.AddDate(0, 0, i)
		days[format] = day
		recs[format] = dayRecords(rng, day, 300)
		writeDayRecords(t, s, day, recs[format])
	}
	s, err := OpenStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	for format, day := range days {
		got := readAll(t, s, day, ColScan{})
		if !reflect.DeepEqual(got, recs[format]) {
			t.Errorf("%s day did not round-trip through the mixed lake", format)
		}
	}
}

// TestV3PushdownSkipsWithoutInflate is the point of the format: a
// Start-range predicate must skip excluded blocks on their plain-text
// stats without inflating their payloads. The proof is adversarial —
// corrupt a byte deep inside the first (excluded) block and the
// selective scan must still succeed, because bytes it never inflates
// are bytes it never checks; the full scan over the same file must
// fail loudly on the damage.
func TestV3PushdownSkipsWithoutInflate(t *testing.T) {
	s, err := OpenStoreFormat(t.TempDir(), FormatV3)
	if err != nil {
		t.Fatal(err)
	}
	recs := dayRecords(rand.New(rand.NewSource(33)), colTestDay, 2*colBlockRows+1000)
	writeDayRecords(t, s, colTestDay, recs)

	pred := &Pred{StartMin: colTestDay.Add(23 * time.Hour)}
	var want []Record
	for i := range recs {
		if pred.Match(&recs[i]) {
			want = append(want, recs[i])
		}
	}
	if len(want) == 0 || len(want) == len(recs) {
		t.Fatalf("degenerate predicate: %d of %d match", len(want), len(recs))
	}

	// Flip a byte well inside the first block's column payloads. The
	// offset is far past the magic and block header but a small
	// fraction of the first block's footprint, so it lands in payload
	// bytes, not framing.
	path := s.dayPath(colTestDay)
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	data[10_000] ^= 0xFF
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}

	skipped0, pruned0 := mBlocksSkipped.Load(), mBytesPruned.Load()
	got := readAll(t, s, colTestDay, ColScan{Pred: pred})
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("v3 predicate scan: %d records, want %d (or content mismatch)", len(got), len(want))
	}
	if d := mBlocksSkipped.Load() - skipped0; d < 2 {
		t.Errorf("blocks_skipped advanced by %d, want >= 2 (records are time-ordered)", d)
	}
	if mBytesPruned.Load() == pruned0 {
		t.Error("pruned_bytes did not advance on a pushdown scan")
	}

	// The same damage is fatal to a scan that consumes the block.
	corrupt0 := mCorruptRecords.Load()
	err = s.ReadDay(colTestDay, func(*Record) error { return nil })
	if !errors.Is(err, ErrCorrupt) {
		t.Fatalf("full scan over damaged block: err = %v, want ErrCorrupt", err)
	}
	if mCorruptRecords.Load() == corrupt0 {
		t.Error("corrupt_records did not advance")
	}
}

// TestV3ParallelOrder: any worker count delivers the same records in
// the same order as the serial scan — the reorder buffer applies to
// per-block inflation too.
func TestV3ParallelOrder(t *testing.T) {
	s, err := OpenStoreFormat(t.TempDir(), FormatV3)
	if err != nil {
		t.Fatal(err)
	}
	recs := dayRecords(rand.New(rand.NewSource(34)), colTestDay, 3*colBlockRows+77)
	writeDayRecords(t, s, colTestDay, recs)

	serial := readAll(t, s, colTestDay, ColScan{Workers: 1})
	for _, workers := range []int{2, 4, 8} {
		par := readAll(t, s, colTestDay, ColScan{Workers: workers})
		if !reflect.DeepEqual(par, serial) {
			t.Fatalf("workers=%d delivered different records or order", workers)
		}
	}
}

// TestV3DamagedFileFailsLoudly: truncation anywhere — mid-block, mid-
// terminator, or cleanly at a block boundary (where v1/v2 relied on
// the gzip trailer) — and corruption of consumed bytes surface as
// errors, never as silently short record streams.
func TestV3DamagedFileFailsLoudly(t *testing.T) {
	cases := []struct {
		name   string
		damage func([]byte) []byte
	}{
		{"truncated mid-block", func(b []byte) []byte { return b[:len(b)/2] }},
		{"truncated terminator", func(b []byte) []byte { return b[:len(b)-2] }},
		{"payload bitflip", func(b []byte) []byte { b[len(b)/2] ^= 0x40; return b }},
		{"trailing data", func(b []byte) []byte { return append(b, 0xde, 0xad) }},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			s, err := OpenStoreFormat(t.TempDir(), FormatV3)
			if err != nil {
				t.Fatal(err)
			}
			writeDayRecords(t, s, colTestDay, dayRecords(rand.New(rand.NewSource(35)), colTestDay, 2000))
			path := s.dayPath(colTestDay)
			data, err := os.ReadFile(path)
			if err != nil {
				t.Fatal(err)
			}
			if err := os.WriteFile(path, tc.damage(data), 0o644); err != nil {
				t.Fatal(err)
			}
			read0, corrupt0 := mDaysRead.Load(), mCorruptRecords.Load()
			err = s.ReadDay(colTestDay, func(*Record) error { return nil })
			if err == nil {
				t.Fatal("damaged v3 log read without error")
			}
			if mDaysRead.Load() != read0 {
				t.Error("days_read advanced on a failed read")
			}
			if mCorruptRecords.Load() == corrupt0 {
				t.Error("corrupt_records did not advance")
			}
		})
	}
}

// TestCompactDay: compaction rewrites a sealed day into another format
// with the logical record stream unchanged, atomically, covering every
// source→target pair around v3.
func TestCompactDay(t *testing.T) {
	pairs := []struct{ from, to Format }{
		{FormatV1, FormatV3},
		{FormatV2, FormatV3},
		{FormatV3, FormatV2},
		{FormatV3, FormatV1},
	}
	for _, pair := range pairs {
		t.Run(pair.from.String()+"_to_"+pair.to.String(), func(t *testing.T) {
			dir := t.TempDir()
			s, err := OpenStoreFormat(dir, pair.from)
			if err != nil {
				t.Fatal(err)
			}
			want := dayRecords(rand.New(rand.NewSource(36)), colTestDay, colBlockRows+500)
			writeDayRecords(t, s, colTestDay, want)

			days0, bytes0 := mCompactedDays.Load(), mCompactedBytes.Load()
			n, err := s.CompactDay(colTestDay, pair.to)
			if err != nil {
				t.Fatal(err)
			}
			if n != uint64(len(want)) {
				t.Fatalf("compacted %d records, want %d", n, len(want))
			}
			if mCompactedDays.Load() != days0+1 {
				t.Error("compacted_days did not advance")
			}
			if mCompactedBytes.Load() == bytes0 {
				t.Error("compacted_bytes did not advance")
			}

			got := readAll(t, s, colTestDay, ColScan{})
			if !reflect.DeepEqual(got, want) {
				t.Fatal("compacted day does not match the original records")
			}
		})
	}

	t.Run("missing day", func(t *testing.T) {
		s, err := OpenStore(t.TempDir())
		if err != nil {
			t.Fatal(err)
		}
		if _, err := s.CompactDay(colTestDay, FormatV3); !errors.Is(err, ErrNoDay) {
			t.Fatalf("err = %v, want ErrNoDay", err)
		}
	})
}

// TestCompactStore: the parallel sweep rewrites every listed day and
// totals records; reads after compaction are unchanged.
func TestCompactStore(t *testing.T) {
	s, err := OpenStoreFormat(t.TempDir(), FormatV1)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(37))
	const nDays = 5
	want := make(map[time.Time][]Record, nDays)
	var days []time.Time
	var total uint64
	for i := 0; i < nDays; i++ {
		day := colTestDay.AddDate(0, 0, i)
		recs := dayRecords(rng, day, 200+50*i)
		writeDayRecords(t, s, day, recs)
		want[day] = recs
		days = append(days, day)
		total += uint64(len(recs))
	}

	nd, nr, err := s.CompactStore(days, FormatV3, 3)
	if err != nil {
		t.Fatal(err)
	}
	if nd != nDays || nr != total {
		t.Fatalf("compacted %d days / %d records, want %d / %d", nd, nr, nDays, total)
	}
	for day, recs := range want {
		if got := readAll(t, s, day, ColScan{}); !reflect.DeepEqual(got, recs) {
			t.Errorf("day %s changed across compaction", day.Format("2006-01-02"))
		}
	}
}
