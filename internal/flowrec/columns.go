package flowrec

import "time"

// Column identity for the v2 columnar day format and for read-side
// projection. Every Record field has a fixed column ID; the IDs are
// part of the on-disk v2 layout (blocks store columns in ID order), so
// they must never be renumbered — append only.

// Column identifies one Record field.
type Column uint8

// The 22 record columns, in v2 block order.
const (
	ColClient Column = iota
	ColServer
	ColCliPort
	ColSrvPort
	ColProto
	ColTech
	ColWeb
	ColNameSrc
	ColSubID
	ColStart
	ColDuration
	ColPktsUp
	ColPktsDown
	ColBytesUp
	ColBytesDown
	ColServerName
	ColALPN
	ColQUICVer
	ColRTTMin
	ColRTTAvg
	ColRTTMax
	ColRTTSamples

	// NumColumns is the column count of the current schema.
	NumColumns = int(iota)
)

// ColumnSet is a bitmask of Columns. The zero value means "no
// projection requested" and readers treat it as AllColumns, so a
// zero-valued ColScan degrades to a full-width read.
type ColumnSet uint32

// AllColumns selects every column.
const AllColumns ColumnSet = 1<<NumColumns - 1

// Cols builds a ColumnSet from columns.
func Cols(cols ...Column) ColumnSet {
	var s ColumnSet
	for _, c := range cols {
		s |= 1 << c
	}
	return s
}

// Has reports whether c is in the set.
func (s ColumnSet) Has(c Column) bool { return s&(1<<c) != 0 }

// With returns the union of s and t.
func (s ColumnSet) With(t ColumnSet) ColumnSet { return s | t }

// Norm maps the zero set to AllColumns — the reader-side convention
// that "nothing requested" means "everything".
func (s ColumnSet) Norm() ColumnSet {
	if s == 0 {
		return AllColumns
	}
	return s & AllColumns
}

// Covers reports whether s (normalised) contains every column of t
// (normalised).
func (s ColumnSet) Covers(t ColumnSet) bool {
	return s.Norm()&t.Norm() == t.Norm()
}

// Pred is a predicate pushed down into a day read. A v2 reader skips
// whole blocks whose per-block min/max stats cannot intersect it and
// then re-checks every surviving record, so fn only ever sees matching
// records; a v1 reader applies the same per-record check after decode.
// The zero Pred matches everything.
type Pred struct {
	// StartMin/StartMax bound Record.Start inclusively; a zero time
	// leaves that side open.
	StartMin, StartMax time.Time

	// SrvPortLo/SrvPortHi bound Record.SrvPort inclusively when
	// HasSrvPort is set.
	HasSrvPort           bool
	SrvPortLo, SrvPortHi uint16

	// Proto matches Record.Proto exactly when HasProto is set.
	HasProto bool
	Proto    Proto

	// Tech matches Record.Tech exactly when HasTech is set.
	HasTech bool
	Tech    AccessTech
}

// Columns returns the columns the predicate reads — a v2 reader adds
// them to the decode set so Match sees real values even when the
// caller's projection omits them.
func (p *Pred) Columns() ColumnSet {
	if p == nil {
		return 0
	}
	var s ColumnSet
	if !p.StartMin.IsZero() || !p.StartMax.IsZero() {
		s |= 1 << ColStart
	}
	if p.HasSrvPort {
		s |= 1 << ColSrvPort
	}
	if p.HasProto {
		s |= 1 << ColProto
	}
	if p.HasTech {
		s |= 1 << ColTech
	}
	return s
}

// Match reports whether r satisfies the predicate.
func (p *Pred) Match(r *Record) bool {
	if p == nil {
		return true
	}
	if !p.StartMin.IsZero() && r.Start.Before(p.StartMin) {
		return false
	}
	if !p.StartMax.IsZero() && r.Start.After(p.StartMax) {
		return false
	}
	if p.HasSrvPort && (r.SrvPort < p.SrvPortLo || r.SrvPort > p.SrvPortHi) {
		return false
	}
	if p.HasProto && r.Proto != p.Proto {
		return false
	}
	if p.HasTech && r.Tech != p.Tech {
		return false
	}
	return true
}

// matchStats reports whether any record in a block with these stats
// could satisfy the predicate. Conservative: true on any doubt.
func (p *Pred) matchStats(st *blockStats) bool {
	if p == nil {
		return true
	}
	if !p.StartMin.IsZero() && st.startMax < p.StartMin.UnixMilli() {
		return false
	}
	if !p.StartMax.IsZero() && st.startMin > p.StartMax.UnixMilli() {
		return false
	}
	if p.HasSrvPort && (uint64(p.SrvPortHi) < st.srvPortMin || uint64(p.SrvPortLo) > st.srvPortMax) {
		return false
	}
	if p.HasProto && (uint64(p.Proto) < st.protoMin || uint64(p.Proto) > st.protoMax) {
		return false
	}
	if p.HasTech && (uint64(p.Tech) < st.techMin || uint64(p.Tech) > st.techMax) {
		return false
	}
	return true
}

// ColScan parameterises a column-projected day read.
type ColScan struct {
	// Cols is the projection: only these columns are guaranteed to be
	// populated in the records fn receives (a reader may deliver more —
	// v1 files always deliver all 22). Zero means all columns.
	Cols ColumnSet
	// Pred filters records; on v2 files it also skips whole blocks on
	// their min/max stats. Nil matches everything.
	Pred *Pred
	// Workers >1 decodes v2 blocks on that many goroutines (delivery
	// order is still the file's record order). <=1 decodes serially.
	// v1 files always decode serially.
	Workers int
}
