package flowrec

import (
	"compress/gzip"
	"errors"
	"os"
	"path/filepath"
	"testing"
	"time"
)

// Failure injection: a data lake accumulates damage over five years —
// truncated copies, bad blocks, stray files. The reader must fail
// loudly on damage and ignore impostors, never return garbage records.

func writeOneDay(t *testing.T, s *Store, day time.Time) string {
	t.Helper()
	w, err := s.CreateDay(day)
	if err != nil {
		t.Fatal(err)
	}
	rec := sampleRecord()
	rec.Start = day.Add(2 * time.Hour)
	for i := 0; i < 20; i++ {
		if err := w.Write(&rec); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	return filepath.Join(s.Root(),
		day.Format("2006"), day.Format("01"),
		"flows-"+day.Format("20060102")+".efl.gz")
}

func TestReadDayTruncatedGzip(t *testing.T) {
	s, err := OpenStore(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	day := time.Date(2015, 2, 3, 0, 0, 0, 0, time.UTC)
	path := writeOneDay(t, s, day)

	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, data[:len(data)/2], 0o644); err != nil {
		t.Fatal(err)
	}
	n := 0
	err = s.ReadDay(day, func(*Record) error { n++; return nil })
	if err == nil {
		t.Fatal("truncated log read without error")
	}
}

// TestReadDayDamagedGzipTail regresses the swallowed gzip.Reader.Close
// error: a file whose flate stream decodes every record but whose gzip
// trailer is truncated or checksum-damaged must fail loudly and count
// as corruption, not read as a clean day.
func TestReadDayDamagedGzipTail(t *testing.T) {
	cases := []struct {
		name   string
		damage func([]byte) []byte
	}{
		{"truncated trailer", func(b []byte) []byte { return b[:len(b)-4] }},
		{"bad checksum", func(b []byte) []byte {
			b[len(b)-8] ^= 0xFF // first CRC32 byte of the trailer
			return b
		}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			s, err := OpenStore(t.TempDir())
			if err != nil {
				t.Fatal(err)
			}
			day := time.Date(2015, 2, 3, 0, 0, 0, 0, time.UTC)
			path := writeOneDay(t, s, day)
			data, err := os.ReadFile(path)
			if err != nil {
				t.Fatal(err)
			}
			if err := os.WriteFile(path, tc.damage(data), 0o644); err != nil {
				t.Fatal(err)
			}
			before := mCorruptRecords.Load()
			if err := s.ReadDay(day, func(*Record) error { return nil }); err == nil {
				t.Fatal("damaged gzip tail read without error")
			}
			if after := mCorruptRecords.Load(); after == before {
				t.Error("store.corrupt_records not incremented for damaged gzip tail")
			}
		})
	}
}

func TestReadDayGarbageFile(t *testing.T) {
	s, err := OpenStore(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	day := time.Date(2015, 2, 3, 0, 0, 0, 0, time.UTC)
	path := writeOneDay(t, s, day)
	if err := os.WriteFile(path, []byte("this is not a flow log"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := s.ReadDay(day, func(*Record) error { return nil }); err == nil {
		t.Fatal("garbage file read without error")
	}
}

func TestReadDayWrongInnerMagic(t *testing.T) {
	s, err := OpenStore(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	day := time.Date(2015, 2, 3, 0, 0, 0, 0, time.UTC)
	path := writeOneDay(t, s, day)

	// Valid gzip, wrong payload.
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	gz := gzip.NewWriter(f)
	gz.Write([]byte("EVIL payload that is not a flow log at all"))
	gz.Close()
	f.Close()

	err = s.ReadDay(day, func(*Record) error { return nil })
	if err == nil {
		t.Fatal("wrong-magic payload read without error")
	}
}

func TestDaysIgnoresStrayFiles(t *testing.T) {
	s, err := OpenStore(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	day := time.Date(2016, 8, 9, 0, 0, 0, 0, time.UTC)
	writeOneDay(t, s, day)
	// Stray files a real lake accumulates.
	os.WriteFile(filepath.Join(s.Root(), "README"), []byte("x"), 0o644)
	os.MkdirAll(filepath.Join(s.Root(), "2016", "08", "tmp"), 0o755)
	os.WriteFile(filepath.Join(s.Root(), "2016", "08", "notes.txt"), []byte("y"), 0o644)

	days, err := s.Days()
	if err != nil {
		t.Fatal(err)
	}
	if len(days) != 1 || !days[0].Equal(day) {
		t.Errorf("Days = %v, want just %v", days, day)
	}
}

// TestQuarantineDay: a damaged day moved to quarantine reads back as a
// missing day (an outage), disappears from Days(), and bumps the
// store.quarantined_days counter.
func TestQuarantineDay(t *testing.T) {
	s, err := OpenStore(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	day := time.Date(2016, 4, 9, 0, 0, 0, 0, time.UTC)
	other := time.Date(2016, 4, 10, 0, 0, 0, 0, time.UTC)
	path := writeOneDay(t, s, day)
	writeOneDay(t, s, other)

	before := mQuarantined.Load()
	if err := s.QuarantineDay(day); err != nil {
		t.Fatal(err)
	}
	if got := mQuarantined.Load() - before; got != 1 {
		t.Errorf("store.quarantined_days moved by %d, want 1", got)
	}
	if _, err := os.Stat(path); !os.IsNotExist(err) {
		t.Errorf("day file still present after quarantine: %v", err)
	}
	moved := filepath.Join(s.Root(), ".quarantine", filepath.Base(path))
	if _, err := os.Stat(moved); err != nil {
		t.Errorf("quarantined copy missing: %v", err)
	}
	if err := s.ReadDay(day, func(*Record) error { return nil }); !errors.Is(err, ErrNoDay) {
		t.Errorf("quarantined day reads as %v, want ErrNoDay", err)
	}
	days, err := s.Days()
	if err != nil {
		t.Fatal(err)
	}
	if len(days) != 1 || !days[0].Equal(other) {
		t.Errorf("Days() = %v, want just %s", days, other.Format("2006-01-02"))
	}
	if s.HasDay(day) {
		t.Error("HasDay still true after quarantine")
	}
	// Quarantining a missing day is a no-op, not an error.
	if err := s.QuarantineDay(time.Date(2012, 1, 1, 0, 0, 0, 0, time.UTC)); err != nil {
		t.Errorf("quarantining a missing day: %v", err)
	}
}
