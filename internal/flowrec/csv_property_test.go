package flowrec_test

import (
	"bytes"
	"math"
	"reflect"
	"testing"
	"time"

	"repro/internal/flowrec"
	"repro/internal/simnet"
	"repro/internal/wire"
)

// canon projects a record onto the precision both codecs store: Start
// and Duration at milliseconds, RTTs at microseconds. Everything else
// round-trips exactly. A record already on this grid is a fixed point,
// which is the property the round-trip test checks.
func canon(r flowrec.Record) flowrec.Record {
	r.Start = time.UnixMilli(r.Start.UnixMilli()).UTC()
	r.Duration = r.Duration / time.Millisecond * time.Millisecond
	r.RTTMin = r.RTTMin / time.Microsecond * time.Microsecond
	r.RTTAvg = r.RTTAvg / time.Microsecond * time.Microsecond
	r.RTTMax = r.RTTMax / time.Microsecond * time.Microsecond
	return r
}

// CSV <-> binary codec equivalence, fed by the simulation rather than
// a synthetic generator: every record the world emits must decode to
// its canonical form through the binary codec and survive a CSV
// write/read unchanged. The hand-built records cover corners a
// simulated day never produces: empty and non-ASCII names, separator
// and quote characters inside fields, and counters at the top of the
// varint range.
func TestCSVBinaryEquivalenceFromSimnet(t *testing.T) {
	world := simnet.NewWorld(11, simnet.Scale{ADSL: 10, FTTH: 5})
	day := time.Date(2016, 11, 12, 0, 0, 0, 0, time.UTC)
	var records []flowrec.Record
	world.EmitDay(day, func(r *flowrec.Record) {
		if len(records) < 4000 {
			records = append(records, *r)
		}
	})
	if len(records) < 100 {
		t.Fatalf("simulated day emitted only %d records", len(records))
	}
	// Durations aligned to the codec grid so these are canon fixed
	// points; the counters use the full varint range.
	maxMs := time.Duration(math.MaxInt64/int64(time.Millisecond)) * time.Millisecond
	maxUs := time.Duration(math.MaxInt64/int64(time.Microsecond)) * time.Microsecond
	records = append(records,
		flowrec.Record{ // zero-ish: every optional field empty
			Client: wire.AddrFrom(10, 0, 0, 1),
			Start:  time.UnixMilli(0).UTC(),
		},
		flowrec.Record{ // UTF-8 and CSV metacharacters in string fields
			Client:     wire.AddrFrom(10, 0, 0, 2),
			Server:     wire.AddrFrom(192, 0, 2, 7),
			Proto:      flowrec.ProtoUDP,
			Tech:       flowrec.TechFTTH,
			Start:      day.Add(3 * time.Hour),
			ServerName: "bücher.example, \"quoted\".例え.xn--test",
			ALPN:       "h3-29,draft\n",
			QUICVer:    "Q043",
			NameSrc:    flowrec.NameSNI,
			Web:        flowrec.WebQUIC,
		},
		flowrec.Record{ // counters at the top of the varint range
			Client:     wire.AddrFrom(10, 0, 0, 3),
			Server:     wire.AddrFrom(203, 0, 113, 9),
			CliPort:    65535,
			SrvPort:    65535,
			Proto:      flowrec.ProtoTCP,
			Tech:       flowrec.TechADSL,
			SubID:      math.MaxUint32,
			Start:      day.Add(23*time.Hour + 59*time.Minute),
			Duration:   maxMs,
			PktsUp:     math.MaxUint32,
			PktsDown:   math.MaxUint32,
			BytesUp:    math.MaxUint64,
			BytesDown:  math.MaxUint64,
			Web:        flowrec.WebOther,
			ServerName: "max.example",
			NameSrc:    flowrec.NameDNS,
			RTTMin:     maxUs,
			RTTAvg:     maxUs,
			RTTMax:     maxUs,
			RTTSamples: math.MaxUint32,
		},
	)

	// Binary round trip: decode must land exactly on the canonical form.
	var bin bytes.Buffer
	enc, err := flowrec.NewEncoder(&bin)
	if err != nil {
		t.Fatal(err)
	}
	for i := range records {
		if err := enc.Encode(&records[i]); err != nil {
			t.Fatalf("record %d: binary encode: %v", i, err)
		}
	}
	if err := enc.Flush(); err != nil {
		t.Fatal(err)
	}
	dec, err := flowrec.NewDecoder(&bin)
	if err != nil {
		t.Fatal(err)
	}
	fromBin := make([]flowrec.Record, len(records))
	for i := range fromBin {
		if err := dec.Decode(&fromBin[i]); err != nil {
			t.Fatalf("record %d: binary decode: %v", i, err)
		}
		if want := canon(records[i]); !reflect.DeepEqual(fromBin[i], want) {
			t.Fatalf("record %d changed across the binary codec:\n got %+v\nwant %+v",
				i, fromBin[i], want)
		}
	}

	// CSV round trip of the canonical records must be the identity.
	var csv bytes.Buffer
	w, err := flowrec.NewCSVWriter(&csv)
	if err != nil {
		t.Fatal(err)
	}
	for i := range fromBin {
		if err := w.Write(&fromBin[i]); err != nil {
			t.Fatalf("record %d: csv write: %v", i, err)
		}
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	r, err := flowrec.NewCSVReader(&csv)
	if err != nil {
		t.Fatal(err)
	}
	for i := range fromBin {
		var got flowrec.Record
		if err := r.Read(&got); err != nil {
			t.Fatalf("record %d: csv read: %v", i, err)
		}
		if !reflect.DeepEqual(got, fromBin[i]) {
			t.Fatalf("record %d changed across the CSV codec:\n got %+v\nwant %+v",
				i, got, fromBin[i])
		}
	}
}
