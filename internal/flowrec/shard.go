package flowrec

// Shard-key derivation for parallel stage-one aggregation. A day's
// records split across K shard aggregators by a hash of the anonymized
// client address, so every record of a subscription lands on the same
// shard — per-subscription accumulators never straddle shards, and the
// sharded reduction merges back into exactly the single-fold result.
// The hash must be seed-free and stable across runs, machines and
// worker counts: the shard assignment is part of what makes a sharded
// run reproducible.

// ShardKey returns the record's stable shard-assignment hash, derived
// from the anonymized client address only. Records of one subscriber
// always share a key; the key is uniform over subscribers and
// independent of everything the aggregates measure.
func (r *Record) ShardKey() uint64 {
	cli := uint64(r.Client[0])<<24 | uint64(r.Client[1])<<16 |
		uint64(r.Client[2])<<8 | uint64(r.Client[3])
	// splitmix64-style finalizer: full avalanche from the 32 address
	// bits so taking the key modulo small K stays balanced.
	h := cli + 0x9e3779b97f4a7c15
	h = (h ^ h>>30) * 0xbf58476d1ce4e5b9
	h = (h ^ h>>27) * 0x94d049bb133111eb
	return h ^ h>>31
}

// Shard maps the record onto one of k shards. k must be >= 1.
func (r *Record) Shard(k int) int {
	if k <= 1 {
		return 0
	}
	return int(r.ShardKey() % uint64(k))
}
