package flowrec

import (
	"errors"
	"os"
	"path/filepath"
	"testing"
	"time"
)

// sealedTestRecord builds a minimal valid record for day.
func sealedTestRecord(day time.Time) *Record {
	return &Record{
		Proto:     ProtoTCP,
		Tech:      TechADSL,
		SubID:     1,
		Start:     day.Add(10 * time.Hour),
		Duration:  3 * time.Second,
		BytesUp:   100,
		BytesDown: 2000,
		PktsUp:    4,
		PktsDown:  6,
		Web:       WebTLS,
	}
}

// TestHalfWrittenDayInvisible is the regression test for the
// WAL-split invariant: a day log that has been created and written
// but never sealed (Close) — a crashed or still-running writer — must
// be invisible to every batch read surface. Before the atomic-create
// fix, CreateDay wrote straight to the final path, so a crash between
// create and close left a truncated file that Days() listed and
// ReadDay half-read as if it were a sealed day.
func TestHalfWrittenDayInvisible(t *testing.T) {
	dir := t.TempDir()
	s, err := OpenStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	day := time.Date(2015, 3, 10, 0, 0, 0, 0, time.UTC)

	w, err := s.CreateDay(day)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 50; i++ {
		if err := w.Write(sealedTestRecord(day)); err != nil {
			t.Fatal(err)
		}
	}
	// No Close: the writer is mid-flight (or its process just died).

	if s.HasDay(day) {
		t.Error("HasDay sees an unsealed day")
	}
	days, err := s.Days()
	if err != nil {
		t.Fatal(err)
	}
	if len(days) != 0 {
		t.Errorf("Days() lists an unsealed day: %v", days)
	}
	if err := s.ReadDay(day, func(*Record) error { return nil }); !errors.Is(err, ErrNoDay) {
		t.Errorf("ReadDay on unsealed day = %v, want ErrNoDay", err)
	}

	// Sealing publishes it everywhere, with every record intact.
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	if !s.HasDay(day) {
		t.Fatal("HasDay misses a sealed day")
	}
	var n int
	if err := s.ReadDay(day, func(*Record) error { n++; return nil }); err != nil {
		t.Fatal(err)
	}
	if n != 50 {
		t.Fatalf("sealed day read %d records, want 50", n)
	}
}

// TestDayWriterAbort: an aborted writer leaves nothing behind — no
// final file and no temp litter anywhere under the store.
func TestDayWriterAbort(t *testing.T) {
	dir := t.TempDir()
	s, err := OpenStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	day := time.Date(2015, 3, 10, 0, 0, 0, 0, time.UTC)
	w, err := s.CreateDay(day)
	if err != nil {
		t.Fatal(err)
	}
	if err := w.Write(sealedTestRecord(day)); err != nil {
		t.Fatal(err)
	}
	w.Abort()
	if s.HasDay(day) {
		t.Error("aborted day exists")
	}
	var files []string
	err = filepath.WalkDir(dir, func(path string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if !d.IsDir() {
			files = append(files, path)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(files) != 0 {
		t.Errorf("aborted writer left files: %v", files)
	}
}

// TestDaysSkipsWALDir: the ingest daemon keeps its write-ahead
// segments under <root>/.wal; nothing there may ever surface as a
// sealed day to batch readers, whatever the file is named.
func TestDaysSkipsWALDir(t *testing.T) {
	dir := t.TempDir()
	s, err := OpenStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	wal := filepath.Join(dir, WALDirName)
	if err := os.MkdirAll(wal, 0o755); err != nil {
		t.Fatal(err)
	}
	// Worst case: a file inside .wal that carries a canonical sealed
	// day name.
	if err := os.WriteFile(filepath.Join(wal, "flows-20150310.efl.gz"), []byte("junk"), 0o644); err != nil {
		t.Fatal(err)
	}
	days, err := s.Days()
	if err != nil {
		t.Fatal(err)
	}
	if len(days) != 0 {
		t.Errorf("Days() lists WAL-dir contents as sealed days: %v", days)
	}
}
