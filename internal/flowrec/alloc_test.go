package flowrec

import (
	"math/rand"
	"testing"
)

// Alloc budgets for the pooled codec paths. The zpool-backed readers
// and writers exist so a warm scan allocates O(blocks), not
// O(records): flate/gzip state, scratch buffers and column slabs are
// all reused across calls. These tests pin that property with hard
// ceilings — far above run-to-run jitter, an order of magnitude below
// what any per-record or per-string allocation would cost at this row
// count. A regression to per-record allocation (the pre-pool codecs
// allocated one []byte per string cell) blows the budget by ~50×.

// scanAllocsPerRecord measures steady-state allocations of a narrow
// scan over the store's day, amortised per record.
func scanAllocsPerRecord(t *testing.T, s *Store, n int, sc ColScan) float64 {
	t.Helper()
	scan := func() {
		if err := s.ReadDayCols(colTestDay, sc, func(*Record) error { return nil }); err != nil {
			t.Fatal(err)
		}
	}
	scan() // warm the pools: first scan pays pool population
	return testing.AllocsPerRun(5, scan) / float64(n)
}

func TestScanAllocBudget(t *testing.T) {
	const n = 3*colBlockRows + 500
	recs := dayRecords(rand.New(rand.NewSource(41)), colTestDay, n)
	// Narrow projection: the Figure-3 shape these budgets guard.
	sc := ColScan{Cols: ColumnSet(1<<ColSubID | 1<<ColBytesUp | 1<<ColBytesDown).Norm()}

	// Budgets are allocs per *record*. Unpooled string decoding alone
	// costs >=1 alloc/record; the pooled columnar paths sit well under
	// 0.1 even with block framing, slab growth and callback overhead.
	for _, c := range []struct {
		format Format
		budget float64
	}{
		{FormatV2, 0.1},
		{FormatV3, 0.1},
	} {
		t.Run(c.format.String(), func(t *testing.T) {
			s, err := OpenStoreFormat(t.TempDir(), c.format)
			if err != nil {
				t.Fatal(err)
			}
			writeDayRecords(t, s, colTestDay, recs)
			got := scanAllocsPerRecord(t, s, n, sc)
			t.Logf("%s narrow scan: %.4f allocs/record", c.format, got)
			if got > c.budget {
				t.Errorf("%s narrow scan allocates %.4f/record, budget %.4f — a codec stopped pooling",
					c.format, got, c.budget)
			}
		})
	}
}

// TestV1ScanAllocBudget pins the pooled gzip reader on the v1 row
// path: decompressor state and scratch stay pooled across reads, so
// a warm full-decode scan amortises to well under one allocation per
// record. Unpooled gzip setup alone costs several allocations per
// ReadDay, and per-record string copies cost one each — either
// regression lands far above this budget.
func TestV1ScanAllocBudget(t *testing.T) {
	const n = 3*colBlockRows + 500
	recs := dayRecords(rand.New(rand.NewSource(42)), colTestDay, n)
	s, err := OpenStoreFormat(t.TempDir(), FormatV1)
	if err != nil {
		t.Fatal(err)
	}
	writeDayRecords(t, s, colTestDay, recs)
	got := scanAllocsPerRecord(t, s, n, ColScan{})
	t.Logf("v1 full scan: %.4f allocs/record", got)
	if got > 0.5 {
		t.Errorf("v1 scan allocates %.4f/record, budget 0.5 — row codec framing stopped pooling", got)
	}
}
