package flowrec

import (
	"bufio"
	"bytes"
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"
	"time"

	"repro/internal/zpool"
)

// The v2/v3 columnar codec. A v2 day file is gzip(magic "eflc" |
// block*), each block ~colBlockRows records transposed into
// per-column streams:
//
//	block := rowCount uvarint            (1..maxBlockRows)
//	         stats                       (min/max footer, see blockStats)
//	         colCount uvarint            (= NumColumns)
//	         colCount × (len uvarint, payload)
//
// Columns appear in Column ID order. Fixed-width columns (addresses,
// ports, enum bytes) are raw row-major arrays; counters are plain
// uvarints; Start is a zigzag delta varint chain (records arrive in
// near-sorted time order, so deltas are tiny); ServerName/ALPN/QUICVer
// are per-block dictionaries (uvarint entry count, length-prefixed
// entries, one uvarint index per row). The stats lead the block so a
// reader can skip the entire payload — every column — when a pushed-
// down predicate cannot match, and skip any column the projection
// does not ask for.
//
// v3 (magic "efl3") keeps the block structure but moves compression
// INSIDE the column framing and drops the file-level gzip entirely:
//
//	file  := "efl3" | block* | terminator
//	block := rowCount uvarint            (1..maxBlockRows)
//	         stats                       (plain — readable without inflate)
//	         colCount uvarint            (= NumColumns)
//	         colCount × (totalLen uvarint, body)
//	body  := crc32c (4 bytes LE, over the rest of the body)
//	         [dictLen uvarint, dict]     (dictionary columns only, plain)
//	         rawLen uvarint              (inflated payload size)
//	         compLen uvarint             (0 = payload stored raw)
//	         payload                     (flate if compLen>0, else raw)
//	terminator := 0 uvarint | blockCount uvarint | totalRows uvarint
//
// Keeping the stats and dictionaries outside the compressed payload
// means predicate pushdown skips a block — and projection skips a
// column — by Discarding totalLen bytes without ever inflating them,
// and because each column inflates independently the read path can fan
// block decompression out over workers instead of queuing behind one
// gzip stream. The per-column crc32c (Castagnoli) replaces the gzip
// trailer checksum for the bytes a scan actually consumes; pruned
// bytes are deliberately unverified — damage there cannot affect the
// result. The terminator replaces the gzip trailer's length check so
// a truncated v3 file still classifies as stream damage.

// colMagic identifies a v2 stream (v1 uses "efl1"); readers
// auto-detect by peeking these four bytes after the gzip header.
// colMagicV3 identifies a v3 file — peeked raw, since v3 files are
// not gzip-wrapped.
var (
	colMagic   = [4]byte{'e', 'f', 'l', 'c'}
	colMagicV3 = [4]byte{'e', 'f', 'l', '3'}
)

// crcTab is the Castagnoli table shared by the v3 write and read
// paths (hardware-accelerated on amd64/arm64).
var crcTab = crc32.MakeTable(crc32.Castagnoli)

const (
	// colBlockRows is the writer's rows-per-block target.
	colBlockRows = 8192
	// maxBlockRows bounds a decoded block; larger row counts are
	// corruption, not data.
	maxBlockRows = 1 << 20
	// maxColumnBytes bounds one column payload (the writer stays far
	// below: 8k rows × ~10 bytes).
	maxColumnBytes = 1 << 26
	// maxDictEntryLen bounds one dictionary string, mirroring the v1
	// per-record bound: a hostile server name must fail at write time,
	// not poison the day for readers.
	maxDictEntryLen = 1 << 15
	// colCompressMin is the smallest column payload worth deflating;
	// below it the flate header overhead beats any win.
	colCompressMin = 64
)

// blockStats is the per-block min/max footer for the predicate
// columns. Start bounds are signed (UnixMilli) varints; the rest are
// uvarints.
type blockStats struct {
	startMin, startMax     int64 // UnixMilli
	srvPortMin, srvPortMax uint64
	protoMin, protoMax     uint64
	techMin, techMax       uint64
}

func (st *blockStats) observe(r *Record) {
	ms := r.Start.UnixMilli()
	if ms < st.startMin {
		st.startMin = ms
	}
	if ms > st.startMax {
		st.startMax = ms
	}
	if v := uint64(r.SrvPort); v < st.srvPortMin {
		st.srvPortMin = v
	}
	if v := uint64(r.SrvPort); v > st.srvPortMax {
		st.srvPortMax = v
	}
	if v := uint64(r.Proto); v < st.protoMin {
		st.protoMin = v
	}
	if v := uint64(r.Proto); v > st.protoMax {
		st.protoMax = v
	}
	if v := uint64(r.Tech); v < st.techMin {
		st.techMin = v
	}
	if v := uint64(r.Tech); v > st.techMax {
		st.techMax = v
	}
}

// reset prepares the stats for a fresh block.
func (st *blockStats) reset() {
	*st = blockStats{
		startMin: 1<<63 - 1, startMax: -(1 << 63),
		srvPortMin: 1<<64 - 1,
		protoMin:   1<<64 - 1,
		techMin:    1<<64 - 1,
	}
}

func (st *blockStats) append(b []byte) []byte {
	b = binary.AppendVarint(b, st.startMin)
	b = binary.AppendVarint(b, st.startMax)
	b = binary.AppendUvarint(b, st.srvPortMin)
	b = binary.AppendUvarint(b, st.srvPortMax)
	b = binary.AppendUvarint(b, st.protoMin)
	b = binary.AppendUvarint(b, st.protoMax)
	b = binary.AppendUvarint(b, st.techMin)
	b = binary.AppendUvarint(b, st.techMax)
	return b
}

func (st *blockStats) read(br *bufio.Reader) error {
	var err error
	read := func(dst *uint64) {
		if err != nil {
			return
		}
		*dst, err = binary.ReadUvarint(br)
	}
	readS := func(dst *int64) {
		if err != nil {
			return
		}
		*dst, err = binary.ReadVarint(br)
	}
	readS(&st.startMin)
	readS(&st.startMax)
	read(&st.srvPortMin)
	read(&st.srvPortMax)
	read(&st.protoMin)
	read(&st.protoMax)
	read(&st.techMin)
	read(&st.techMax)
	return err
}

// dictCols maps the dictionary-encoded columns to their slot in the
// encoder's dictionary state.
func dictSlot(c Column) int {
	switch c {
	case ColServerName:
		return 0
	case ColALPN:
		return 1
	case ColQUICVer:
		return 2
	}
	return -1
}

// colEncoder writes the v2/v3 columnar stream. It satisfies the same
// surface DayWriter needs from the v1 Encoder.
type colEncoder struct {
	w      *bufio.Writer
	count  uint64
	rows   int
	blocks uint64
	v3     bool
	sealed bool // v3 terminator written; further Flushes are bufio-only

	cols      [NumColumns][]byte // per-column row streams
	dicts     [3]map[string]uint64
	dictEnts  [3][]byte // length-prefixed entry stream, insertion order
	dictN     [3]uint64
	prevStart int64
	stats     blockStats

	pre  []byte       // v3 scratch: column body head (crc+dict+lengths)
	comp appendWriter // v3 scratch: deflated column payload
}

// newColEncoder writes the stream header and returns an encoder; v3
// selects per-block compression (the caller must then NOT wrap w in
// gzip).
func newColEncoder(w io.Writer, v3 bool) (*colEncoder, error) {
	bw := bufio.NewWriterSize(w, 1<<16)
	magic := colMagic
	if v3 {
		magic = colMagicV3
	}
	if _, err := bw.Write(magic[:]); err != nil {
		return nil, fmt.Errorf("flowrec: writing magic: %w", err)
	}
	e := &colEncoder{w: bw, v3: v3}
	e.resetBlock()
	return e, nil
}

func (e *colEncoder) resetBlock() {
	e.rows = 0
	e.prevStart = 0
	e.stats.reset()
	for i := range e.cols {
		e.cols[i] = e.cols[i][:0]
	}
	for i := range e.dicts {
		// Keep the allocated map and drop its entries: a day writes
		// thousands of blocks, and re-making three maps per block was a
		// measurable slice of the encode allocation profile.
		clear(e.dicts[i])
		e.dictEnts[i] = e.dictEnts[i][:0]
		e.dictN[i] = 0
	}
}

// appendWriter is an io.Writer that appends into a reusable slice —
// the deflate sink for v3 column payloads.
type appendWriter struct{ b []byte }

func (w *appendWriter) Write(p []byte) (int, error) {
	w.b = append(w.b, p...)
	return len(p), nil
}

// Count reports how many records were encoded.
func (e *colEncoder) Count() uint64 { return e.count }

// dictIndex interns s in dictionary slot j and returns its index.
func (e *colEncoder) dictIndex(j int, s string) uint64 {
	if e.dicts[j] == nil {
		e.dicts[j] = make(map[string]uint64, 64)
	}
	if idx, ok := e.dicts[j][s]; ok {
		return idx
	}
	idx := e.dictN[j]
	e.dicts[j][s] = idx
	e.dictN[j] = idx + 1
	e.dictEnts[j] = binary.AppendUvarint(e.dictEnts[j], uint64(len(s)))
	e.dictEnts[j] = append(e.dictEnts[j], s...)
	return idx
}

// Encode appends one record to the current block, flushing the block
// when it reaches colBlockRows. Oversized strings are rejected at
// write time (ErrOversize) — the v1 decoder would quarantine the
// whole day over them, so they must never reach disk.
func (e *colEncoder) Encode(r *Record) error {
	if len(r.ServerName) > maxDictEntryLen || len(r.ALPN) > maxDictEntryLen || len(r.QUICVer) > maxDictEntryLen {
		mOversizeRecords.Inc()
		return fmt.Errorf("flowrec: record string field over %d bytes: %w", maxDictEntryLen, ErrOversize)
	}
	e.cols[ColClient] = append(e.cols[ColClient], r.Client[:]...)
	e.cols[ColServer] = append(e.cols[ColServer], r.Server[:]...)
	e.cols[ColCliPort] = binary.BigEndian.AppendUint16(e.cols[ColCliPort], r.CliPort)
	e.cols[ColSrvPort] = binary.BigEndian.AppendUint16(e.cols[ColSrvPort], r.SrvPort)
	e.cols[ColProto] = append(e.cols[ColProto], byte(r.Proto))
	e.cols[ColTech] = append(e.cols[ColTech], byte(r.Tech))
	e.cols[ColWeb] = append(e.cols[ColWeb], byte(r.Web))
	e.cols[ColNameSrc] = append(e.cols[ColNameSrc], byte(r.NameSrc))
	e.cols[ColSubID] = binary.AppendUvarint(e.cols[ColSubID], uint64(r.SubID))
	ms := r.Start.UnixMilli()
	e.cols[ColStart] = binary.AppendVarint(e.cols[ColStart], ms-e.prevStart)
	e.prevStart = ms
	e.cols[ColDuration] = binary.AppendUvarint(e.cols[ColDuration], uint64(r.Duration/time.Millisecond))
	e.cols[ColPktsUp] = binary.AppendUvarint(e.cols[ColPktsUp], uint64(r.PktsUp))
	e.cols[ColPktsDown] = binary.AppendUvarint(e.cols[ColPktsDown], uint64(r.PktsDown))
	e.cols[ColBytesUp] = binary.AppendUvarint(e.cols[ColBytesUp], r.BytesUp)
	e.cols[ColBytesDown] = binary.AppendUvarint(e.cols[ColBytesDown], r.BytesDown)
	e.cols[ColServerName] = binary.AppendUvarint(e.cols[ColServerName], e.dictIndex(0, r.ServerName))
	e.cols[ColALPN] = binary.AppendUvarint(e.cols[ColALPN], e.dictIndex(1, r.ALPN))
	e.cols[ColQUICVer] = binary.AppendUvarint(e.cols[ColQUICVer], e.dictIndex(2, r.QUICVer))
	e.cols[ColRTTMin] = binary.AppendUvarint(e.cols[ColRTTMin], uint64(r.RTTMin/time.Microsecond))
	e.cols[ColRTTAvg] = binary.AppendUvarint(e.cols[ColRTTAvg], uint64(r.RTTAvg/time.Microsecond))
	e.cols[ColRTTMax] = binary.AppendUvarint(e.cols[ColRTTMax], uint64(r.RTTMax/time.Microsecond))
	e.cols[ColRTTSamples] = binary.AppendUvarint(e.cols[ColRTTSamples], uint64(r.RTTSamples))
	e.stats.observe(r)
	e.rows++
	e.count++
	if e.rows >= colBlockRows {
		return e.flushBlock()
	}
	return nil
}

// flushBlock writes the buffered rows as one block.
func (e *colEncoder) flushBlock() error {
	if e.rows == 0 {
		return nil
	}
	var hdr []byte
	hdr = binary.AppendUvarint(hdr, uint64(e.rows))
	hdr = e.stats.append(hdr)
	hdr = binary.AppendUvarint(hdr, uint64(NumColumns))
	if _, err := e.w.Write(hdr); err != nil {
		return fmt.Errorf("flowrec: writing block header: %w", err)
	}
	var lenBuf [binary.MaxVarintLen64]byte
	for c := 0; c < NumColumns; c++ {
		if e.v3 {
			if err := e.writeColV3(Column(c), lenBuf[:]); err != nil {
				return err
			}
			continue
		}
		payload := e.cols[c]
		if j := dictSlot(Column(c)); j >= 0 {
			// Dictionary column: entry count + entries + row indexes.
			pre := e.pre[:0]
			pre = binary.AppendUvarint(pre, e.dictN[j])
			pre = append(pre, e.dictEnts[j]...)
			pre = append(pre, payload...)
			e.pre = pre
			payload = pre
		}
		n := binary.PutUvarint(lenBuf[:], uint64(len(payload)))
		if _, err := e.w.Write(lenBuf[:n]); err != nil {
			return fmt.Errorf("flowrec: writing column length: %w", err)
		}
		if _, err := e.w.Write(payload); err != nil {
			return fmt.Errorf("flowrec: writing column: %w", err)
		}
	}
	e.blocks++
	e.resetBlock()
	return nil
}

// writeColV3 writes one column in the v3 framing: length-prefixed
// body of crc | [dict] | rawLen | compLen | payload, with the payload
// deflated only when that actually shrinks it.
func (e *colEncoder) writeColV3(col Column, lenBuf []byte) error {
	raw := e.cols[col]
	// Body head, with 4 bytes reserved up front for the crc.
	pre := append(e.pre[:0], 0, 0, 0, 0)
	if j := dictSlot(col); j >= 0 {
		dictLen := uvarintLen(e.dictN[j]) + len(e.dictEnts[j])
		pre = binary.AppendUvarint(pre, uint64(dictLen))
		pre = binary.AppendUvarint(pre, e.dictN[j])
		pre = append(pre, e.dictEnts[j]...)
	}
	stored := raw
	pre = binary.AppendUvarint(pre, uint64(len(raw)))
	if comp := e.compress(raw); comp != nil {
		pre = binary.AppendUvarint(pre, uint64(len(comp)))
		stored = comp
	} else {
		pre = binary.AppendUvarint(pre, 0) // stored raw
	}
	e.pre = pre
	crc := crc32.Update(crc32.Checksum(pre[4:], crcTab), crcTab, stored)
	binary.LittleEndian.PutUint32(pre[:4], crc)
	n := binary.PutUvarint(lenBuf, uint64(len(pre)+len(stored)))
	if _, err := e.w.Write(lenBuf[:n]); err != nil {
		return fmt.Errorf("flowrec: writing column length: %w", err)
	}
	if _, err := e.w.Write(pre); err != nil {
		return fmt.Errorf("flowrec: writing column: %w", err)
	}
	if _, err := e.w.Write(stored); err != nil {
		return fmt.Errorf("flowrec: writing column: %w", err)
	}
	return nil
}

// compress deflates raw into the encoder's scratch, returning nil when
// storing raw is at least as small (or the payload is too tiny to be
// worth the flate header).
func (e *colEncoder) compress(raw []byte) []byte {
	if len(raw) < colCompressMin {
		return nil
	}
	e.comp.b = e.comp.b[:0]
	fw := zpool.FlateWriter(&e.comp)
	_, werr := fw.Write(raw)
	cerr := fw.Close()
	zpool.PutFlateWriter(fw)
	if werr != nil || cerr != nil || len(e.comp.b) >= len(raw) {
		return nil
	}
	return e.comp.b
}

// uvarintLen returns the encoded size of v as a uvarint.
func uvarintLen(v uint64) int {
	n := 1
	for v >= 0x80 {
		v >>= 7
		n++
	}
	return n
}

// Flush seals the current block — and, for v3, the stream: the
// terminator's block/row counts are what lets a reader distinguish a
// clean end from a truncated tail without a gzip trailer.
func (e *colEncoder) Flush() error {
	if err := e.flushBlock(); err != nil {
		return err
	}
	if e.v3 && !e.sealed {
		e.sealed = true
		var t []byte
		t = binary.AppendUvarint(t, 0)
		t = binary.AppendUvarint(t, e.blocks)
		t = binary.AppendUvarint(t, e.count)
		if _, err := e.w.Write(t); err != nil {
			return fmt.Errorf("flowrec: writing terminator: %w", err)
		}
	}
	return e.w.Flush()
}

// colBlock is one raw block read off a v2/v3 stream: the stats, plus
// the payload of every column the scan needs (nil entries were
// pruned). Column payloads live in pooled buffers; release returns
// them once the block is decoded.
type colBlock struct {
	rows  int
	v3    bool
	stats blockStats
	data  [NumColumns][]byte
	bufs  [NumColumns]*[]byte
}

// release returns the block's pooled column buffers. The caller must
// be done with data — decodeBlock copies everything it materialises,
// so after it returns the block is safe to release.
func (b *colBlock) release() {
	for i := range b.bufs {
		if b.bufs[i] != nil {
			zpool.PutBuf(b.bufs[i])
			b.bufs[i] = nil
		}
		b.data[i] = nil
	}
}

// colReader reads raw blocks off a v2/v3 stream, pruning columns and
// skipping stat-excluded blocks. It also accumulates the scan-level
// byte accounting the store publishes.
type colReader struct {
	br   *bufio.Reader
	need ColumnSet
	pred *Pred
	v3   bool

	rowsSeen                  uint64 // all blocks, skipped included (v3 terminator check)
	blocksRead, blocksSkipped uint64
	bytesDecoded, bytesPruned uint64
}

// corruptf wraps a structural v2 decode failure as ErrCorrupt.
func corruptf(format string, args ...any) error {
	return fmt.Errorf("flowrec: "+format+": %w", append(args, ErrCorrupt)...)
}

// blockEOF maps an EOF inside a block to ErrUnexpectedEOF so a
// truncated file classifies as stream damage, like the v1 decoder.
func blockEOF(err error) error {
	if err == io.EOF {
		return fmt.Errorf("flowrec: truncated block: %w", io.ErrUnexpectedEOF)
	}
	return err
}

// next returns the next block the scan needs. Blocks excluded by the
// predicate stats are consumed, counted and skipped internally —
// for v3 that means Discarding their compressed bytes without ever
// inflating them. A clean end of stream returns (nil, io.EOF).
func (cr *colReader) next() (*colBlock, error) {
	for {
		rows, err := binary.ReadUvarint(cr.br)
		if err != nil {
			if err == io.EOF {
				if cr.v3 {
					// A v3 stream must end with its terminator; a bare
					// EOF at a block boundary is a truncated file.
					return nil, fmt.Errorf("flowrec: missing v3 terminator: %w", io.ErrUnexpectedEOF)
				}
				return nil, io.EOF // clean block boundary
			}
			return nil, blockEOF(err)
		}
		if rows == 0 {
			if cr.v3 {
				return nil, cr.readTerminator()
			}
			return nil, corruptf("block of %d rows", rows)
		}
		if rows > maxBlockRows {
			return nil, corruptf("block of %d rows", rows)
		}
		b := &colBlock{rows: int(rows), v3: cr.v3}
		if err := b.stats.read(cr.br); err != nil {
			b.release()
			return nil, blockEOF(err)
		}
		ncols, err := binary.ReadUvarint(cr.br)
		if err != nil {
			b.release()
			return nil, blockEOF(err)
		}
		if int(ncols) != NumColumns {
			b.release()
			return nil, corruptf("block with %d columns", ncols)
		}
		skipAll := cr.pred != nil && !cr.pred.matchStats(&b.stats)
		for c := 0; c < NumColumns; c++ {
			n, err := binary.ReadUvarint(cr.br)
			if err != nil {
				b.release()
				return nil, blockEOF(err)
			}
			if n > maxColumnBytes {
				b.release()
				return nil, corruptf("column %d of %d bytes", c, n)
			}
			if skipAll || !cr.need.Has(Column(c)) {
				if _, err := cr.br.Discard(int(n)); err != nil {
					b.release()
					return nil, blockEOF(err)
				}
				cr.bytesPruned += n
				continue
			}
			bp := zpool.Buf(int(n))
			if _, err := io.ReadFull(cr.br, *bp); err != nil {
				zpool.PutBuf(bp)
				b.release()
				return nil, blockEOF(err)
			}
			b.data[c] = *bp
			b.bufs[c] = bp
			if cr.v3 {
				// Count the bytes this column will materialise (dict
				// part + inflated payload), keeping decoded_bytes
				// comparable with the v2 metric.
				dn, derr := v3DecodedSize(Column(c), *bp)
				if derr != nil {
					b.release()
					return nil, derr
				}
				cr.bytesDecoded += dn
			} else {
				cr.bytesDecoded += n
			}
		}
		cr.rowsSeen += rows
		if skipAll {
			b.release()
			cr.blocksSkipped++
			continue
		}
		cr.blocksRead++
		return b, nil
	}
}

// readTerminator validates the v3 end-of-stream marker against what
// the scan actually consumed, then requires a hard EOF. It returns
// io.EOF on a clean end.
func (cr *colReader) readTerminator() error {
	blocks, err := binary.ReadUvarint(cr.br)
	if err != nil {
		return blockEOF(err)
	}
	rows, err := binary.ReadUvarint(cr.br)
	if err != nil {
		return blockEOF(err)
	}
	if got := cr.blocksRead + cr.blocksSkipped; blocks != got || rows != cr.rowsSeen {
		return corruptf("terminator claims %d blocks/%d rows, stream had %d/%d",
			blocks, rows, got, cr.rowsSeen)
	}
	switch _, err := cr.br.ReadByte(); err {
	case io.EOF:
		return io.EOF // clean
	case nil:
		return corruptf("trailing data after terminator")
	default:
		return blockEOF(err)
	}
}

// v3DecodedSize reports how many bytes a v3 column body materialises
// when decoded: the plain dictionary part plus the inflated payload.
func v3DecodedSize(col Column, body []byte) (uint64, error) {
	if len(body) < 4 {
		return 0, corruptf("column %d: short body", col)
	}
	body = body[4:] // crc
	var total uint64
	if dictSlot(col) >= 0 {
		dl, n := binary.Uvarint(body)
		if n <= 0 || dl > uint64(len(body)-n) {
			return 0, corruptf("column %d: bad dict length", col)
		}
		total += dl
		body = body[n+int(dl):]
	}
	rawLen, n := binary.Uvarint(body)
	if n <= 0 || rawLen > maxColumnBytes {
		return 0, corruptf("column %d: bad raw length", col)
	}
	return total + rawLen, nil
}

// colInflater is one decode worker's reusable v3 state: a flate
// source reader and the scratch the inflated column lands in. Each
// column is fully consumed before the next, so one scratch per worker
// suffices; everything materialised out of it is copied or interned.
type colInflater struct {
	br  bytes.Reader
	out []byte
}

// column verifies and unpacks one v3 column body into the v2 payload
// layout ([dict] + rows), inflating when the payload was deflated and
// returning the stored bytes zero-copy when it was not.
func (inf *colInflater) column(col Column, body []byte) ([]byte, error) {
	c := int(col)
	if len(body) < 4 {
		return nil, corruptf("column %d: short body", c)
	}
	want := binary.LittleEndian.Uint32(body)
	body = body[4:]
	if crc32.Checksum(body, crcTab) != want {
		return nil, corruptf("column %d: checksum mismatch", c)
	}
	out := inf.out[:0]
	if dictSlot(col) >= 0 {
		dl, n := binary.Uvarint(body)
		if n <= 0 || dl > uint64(len(body)-n) {
			return nil, corruptf("column %d: bad dict length", c)
		}
		body = body[n:]
		out = append(out, body[:dl]...)
		body = body[dl:]
	}
	rawLen, n := binary.Uvarint(body)
	if n <= 0 || rawLen > maxColumnBytes {
		return nil, corruptf("column %d: bad raw length", c)
	}
	body = body[n:]
	compLen, n := binary.Uvarint(body)
	if n <= 0 {
		return nil, corruptf("column %d: bad compressed length", c)
	}
	body = body[n:]
	if compLen == 0 { // stored raw
		if uint64(len(body)) != rawLen {
			return nil, corruptf("column %d: stored %d bytes, want %d", c, len(body), rawLen)
		}
		if len(out) == 0 {
			return body, nil // non-dict column: hand back the stored bytes directly
		}
		out = append(out, body...)
		inf.out = out
		return out, nil
	}
	if uint64(len(body)) != compLen {
		return nil, corruptf("column %d: compressed %d bytes, want %d", c, len(body), compLen)
	}
	head := len(out)
	if cap(out) < head+int(rawLen) {
		grown := make([]byte, head+int(rawLen))
		copy(grown, out)
		out = grown
	} else {
		out = out[:head+int(rawLen)]
	}
	inf.br.Reset(body)
	fr := zpool.FlateReader(&inf.br)
	_, err := io.ReadFull(fr, out[head:])
	if err == nil {
		var one [1]byte
		if n, _ := fr.Read(one[:]); n != 0 {
			err = fmt.Errorf("stream longer than rawLen")
		}
	}
	zpool.PutFlateReader(fr)
	if err != nil {
		return nil, corruptf("column %d: inflate: %v", c, err)
	}
	inf.out = out
	return out, nil
}

// decodeBlock materialises the needed columns of b into recs, which
// must have length b.rows. Unneeded fields keep their zero values.
// strs interns dictionary strings across blocks; inf is the worker's
// v3 inflater (may be nil for v2 blocks).
func decodeBlock(b *colBlock, need ColumnSet, recs []Record, strs map[string]string, inf *colInflater) error {
	rows := b.rows
	for c := 0; c < NumColumns; c++ {
		col := Column(c)
		if !need.Has(col) {
			continue
		}
		p := b.data[c]
		if b.v3 {
			var err error
			if p, err = inf.column(col, p); err != nil {
				return err
			}
		}
		switch col {
		case ColClient, ColServer:
			if len(p) != rows*4 {
				return corruptf("column %d: %d bytes for %d rows", c, len(p), rows)
			}
			for i := 0; i < rows; i++ {
				if col == ColClient {
					copy(recs[i].Client[:], p[i*4:])
				} else {
					copy(recs[i].Server[:], p[i*4:])
				}
			}
		case ColCliPort, ColSrvPort:
			if len(p) != rows*2 {
				return corruptf("column %d: %d bytes for %d rows", c, len(p), rows)
			}
			for i := 0; i < rows; i++ {
				v := binary.BigEndian.Uint16(p[i*2:])
				if col == ColCliPort {
					recs[i].CliPort = v
				} else {
					recs[i].SrvPort = v
				}
			}
		case ColProto, ColTech, ColWeb, ColNameSrc:
			if len(p) != rows {
				return corruptf("column %d: %d bytes for %d rows", c, len(p), rows)
			}
			for i := 0; i < rows; i++ {
				switch col {
				case ColProto:
					recs[i].Proto = Proto(p[i])
				case ColTech:
					recs[i].Tech = AccessTech(p[i])
				case ColWeb:
					recs[i].Web = WebProto(p[i])
				case ColNameSrc:
					recs[i].NameSrc = NameSource(p[i])
				}
			}
		case ColStart:
			var prev int64
			for i := 0; i < rows; i++ {
				d, n := binary.Varint(p)
				if n <= 0 {
					return corruptf("column %d: bad varint", c)
				}
				p = p[n:]
				prev += d
				recs[i].Start = time.UnixMilli(prev).UTC()
			}
			if len(p) != 0 {
				return corruptf("column %d: %d trailing bytes", c, len(p))
			}
		case ColServerName, ColALPN, ColQUICVer:
			entries, rest, err := decodeDict(c, p, rows, strs)
			if err != nil {
				return err
			}
			p = rest
			for i := 0; i < rows; i++ {
				idx, n := binary.Uvarint(p)
				if n <= 0 {
					return corruptf("column %d: bad varint", c)
				}
				p = p[n:]
				if idx >= uint64(len(entries)) {
					return corruptf("column %d: dict index %d of %d", c, idx, len(entries))
				}
				switch col {
				case ColServerName:
					recs[i].ServerName = entries[idx]
				case ColALPN:
					recs[i].ALPN = entries[idx]
				case ColQUICVer:
					recs[i].QUICVer = entries[idx]
				}
			}
			if len(p) != 0 {
				return corruptf("column %d: %d trailing bytes", c, len(p))
			}
		default: // plain uvarint counters
			for i := 0; i < rows; i++ {
				v, n := binary.Uvarint(p)
				if n <= 0 {
					return corruptf("column %d: bad varint", c)
				}
				p = p[n:]
				switch col {
				case ColSubID:
					recs[i].SubID = uint32(v)
				case ColDuration:
					recs[i].Duration = time.Duration(v) * time.Millisecond
				case ColPktsUp:
					recs[i].PktsUp = uint32(v)
				case ColPktsDown:
					recs[i].PktsDown = uint32(v)
				case ColBytesUp:
					recs[i].BytesUp = v
				case ColBytesDown:
					recs[i].BytesDown = v
				case ColRTTMin:
					recs[i].RTTMin = time.Duration(v) * time.Microsecond
				case ColRTTAvg:
					recs[i].RTTAvg = time.Duration(v) * time.Microsecond
				case ColRTTMax:
					recs[i].RTTMax = time.Duration(v) * time.Microsecond
				case ColRTTSamples:
					recs[i].RTTSamples = uint32(v)
				}
			}
			if len(p) != 0 {
				return corruptf("column %d: %d trailing bytes", c, len(p))
			}
		}
	}
	return nil
}

// decodeDict reads a column's per-block dictionary, interning entries
// in strs, and returns the entries plus the remaining (row index)
// payload.
func decodeDict(c int, p []byte, rows int, strs map[string]string) ([]string, []byte, error) {
	n, w := binary.Uvarint(p)
	if w <= 0 {
		return nil, nil, corruptf("column %d: bad dict count", c)
	}
	p = p[w:]
	if n > uint64(rows) {
		return nil, nil, corruptf("column %d: dict of %d entries for %d rows", c, n, rows)
	}
	entries := make([]string, n)
	for i := range entries {
		l, w := binary.Uvarint(p)
		if w <= 0 {
			return nil, nil, corruptf("column %d: bad dict entry length", c)
		}
		p = p[w:]
		if l > maxDictEntryLen || uint64(len(p)) < l {
			return nil, nil, corruptf("column %d: dict entry of %d bytes", c, l)
		}
		if l > 0 {
			if hit, ok := strs[string(p[:l])]; ok {
				entries[i] = hit
			} else {
				s := string(p[:l])
				if len(strs) < internCap {
					strs[s] = s
				}
				entries[i] = s
			}
		}
		p = p[l:]
	}
	return entries, p, nil
}
