package flowrec

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"time"
)

// The v2 columnar codec. A day file is gzip(magic "eflc" | block*),
// each block ~colBlockRows records transposed into per-column streams:
//
//	block := rowCount uvarint            (1..maxBlockRows)
//	         stats                       (min/max footer, see blockStats)
//	         colCount uvarint            (= NumColumns)
//	         colCount × (len uvarint, payload)
//
// Columns appear in Column ID order. Fixed-width columns (addresses,
// ports, enum bytes) are raw row-major arrays; counters are plain
// uvarints; Start is a zigzag delta varint chain (records arrive in
// near-sorted time order, so deltas are tiny); ServerName/ALPN/QUICVer
// are per-block dictionaries (uvarint entry count, length-prefixed
// entries, one uvarint index per row). The stats lead the block so a
// reader can skip the entire payload — every column — when a pushed-
// down predicate cannot match, and skip any column the projection
// does not ask for.

// colMagic identifies a v2 stream (v1 uses "efl1"); readers
// auto-detect by peeking these four bytes after the gzip header.
var colMagic = [4]byte{'e', 'f', 'l', 'c'}

const (
	// colBlockRows is the writer's rows-per-block target.
	colBlockRows = 8192
	// maxBlockRows bounds a decoded block; larger row counts are
	// corruption, not data.
	maxBlockRows = 1 << 20
	// maxColumnBytes bounds one column payload (the writer stays far
	// below: 8k rows × ~10 bytes).
	maxColumnBytes = 1 << 26
	// maxDictEntryLen bounds one dictionary string, mirroring the v1
	// per-record bound: a hostile server name must fail at write time,
	// not poison the day for readers.
	maxDictEntryLen = 1 << 15
)

// blockStats is the per-block min/max footer for the predicate
// columns. Start bounds are signed (UnixMilli) varints; the rest are
// uvarints.
type blockStats struct {
	startMin, startMax     int64 // UnixMilli
	srvPortMin, srvPortMax uint64
	protoMin, protoMax     uint64
	techMin, techMax       uint64
}

func (st *blockStats) observe(r *Record) {
	ms := r.Start.UnixMilli()
	if ms < st.startMin {
		st.startMin = ms
	}
	if ms > st.startMax {
		st.startMax = ms
	}
	if v := uint64(r.SrvPort); v < st.srvPortMin {
		st.srvPortMin = v
	}
	if v := uint64(r.SrvPort); v > st.srvPortMax {
		st.srvPortMax = v
	}
	if v := uint64(r.Proto); v < st.protoMin {
		st.protoMin = v
	}
	if v := uint64(r.Proto); v > st.protoMax {
		st.protoMax = v
	}
	if v := uint64(r.Tech); v < st.techMin {
		st.techMin = v
	}
	if v := uint64(r.Tech); v > st.techMax {
		st.techMax = v
	}
}

// reset prepares the stats for a fresh block.
func (st *blockStats) reset() {
	*st = blockStats{
		startMin: 1<<63 - 1, startMax: -(1 << 63),
		srvPortMin: 1<<64 - 1,
		protoMin:   1<<64 - 1,
		techMin:    1<<64 - 1,
	}
}

func (st *blockStats) append(b []byte) []byte {
	b = binary.AppendVarint(b, st.startMin)
	b = binary.AppendVarint(b, st.startMax)
	b = binary.AppendUvarint(b, st.srvPortMin)
	b = binary.AppendUvarint(b, st.srvPortMax)
	b = binary.AppendUvarint(b, st.protoMin)
	b = binary.AppendUvarint(b, st.protoMax)
	b = binary.AppendUvarint(b, st.techMin)
	b = binary.AppendUvarint(b, st.techMax)
	return b
}

func (st *blockStats) read(br *bufio.Reader) error {
	var err error
	read := func(dst *uint64) {
		if err != nil {
			return
		}
		*dst, err = binary.ReadUvarint(br)
	}
	readS := func(dst *int64) {
		if err != nil {
			return
		}
		*dst, err = binary.ReadVarint(br)
	}
	readS(&st.startMin)
	readS(&st.startMax)
	read(&st.srvPortMin)
	read(&st.srvPortMax)
	read(&st.protoMin)
	read(&st.protoMax)
	read(&st.techMin)
	read(&st.techMax)
	return err
}

// dictCols maps the dictionary-encoded columns to their slot in the
// encoder's dictionary state.
func dictSlot(c Column) int {
	switch c {
	case ColServerName:
		return 0
	case ColALPN:
		return 1
	case ColQUICVer:
		return 2
	}
	return -1
}

// colEncoder writes the v2 columnar stream. It satisfies the same
// surface DayWriter needs from the v1 Encoder.
type colEncoder struct {
	w     *bufio.Writer
	count uint64
	rows  int

	cols      [NumColumns][]byte // per-column row streams
	dicts     [3]map[string]uint64
	dictEnts  [3][]byte // length-prefixed entry stream, insertion order
	dictN     [3]uint64
	prevStart int64
	stats     blockStats
}

// newColEncoder writes the v2 stream header and returns an encoder.
func newColEncoder(w io.Writer) (*colEncoder, error) {
	bw := bufio.NewWriterSize(w, 1<<16)
	if _, err := bw.Write(colMagic[:]); err != nil {
		return nil, fmt.Errorf("flowrec: writing magic: %w", err)
	}
	e := &colEncoder{w: bw}
	e.resetBlock()
	return e, nil
}

func (e *colEncoder) resetBlock() {
	e.rows = 0
	e.prevStart = 0
	e.stats.reset()
	for i := range e.cols {
		e.cols[i] = e.cols[i][:0]
	}
	for i := range e.dicts {
		e.dicts[i] = nil
		e.dictEnts[i] = e.dictEnts[i][:0]
		e.dictN[i] = 0
	}
}

// Count reports how many records were encoded.
func (e *colEncoder) Count() uint64 { return e.count }

// dictIndex interns s in dictionary slot j and returns its index.
func (e *colEncoder) dictIndex(j int, s string) uint64 {
	if e.dicts[j] == nil {
		e.dicts[j] = make(map[string]uint64, 64)
	}
	if idx, ok := e.dicts[j][s]; ok {
		return idx
	}
	idx := e.dictN[j]
	e.dicts[j][s] = idx
	e.dictN[j] = idx + 1
	e.dictEnts[j] = binary.AppendUvarint(e.dictEnts[j], uint64(len(s)))
	e.dictEnts[j] = append(e.dictEnts[j], s...)
	return idx
}

// Encode appends one record to the current block, flushing the block
// when it reaches colBlockRows. Oversized strings are rejected at
// write time (ErrOversize) — the v1 decoder would quarantine the
// whole day over them, so they must never reach disk.
func (e *colEncoder) Encode(r *Record) error {
	if len(r.ServerName) > maxDictEntryLen || len(r.ALPN) > maxDictEntryLen || len(r.QUICVer) > maxDictEntryLen {
		mOversizeRecords.Inc()
		return fmt.Errorf("flowrec: record string field over %d bytes: %w", maxDictEntryLen, ErrOversize)
	}
	e.cols[ColClient] = append(e.cols[ColClient], r.Client[:]...)
	e.cols[ColServer] = append(e.cols[ColServer], r.Server[:]...)
	e.cols[ColCliPort] = binary.BigEndian.AppendUint16(e.cols[ColCliPort], r.CliPort)
	e.cols[ColSrvPort] = binary.BigEndian.AppendUint16(e.cols[ColSrvPort], r.SrvPort)
	e.cols[ColProto] = append(e.cols[ColProto], byte(r.Proto))
	e.cols[ColTech] = append(e.cols[ColTech], byte(r.Tech))
	e.cols[ColWeb] = append(e.cols[ColWeb], byte(r.Web))
	e.cols[ColNameSrc] = append(e.cols[ColNameSrc], byte(r.NameSrc))
	e.cols[ColSubID] = binary.AppendUvarint(e.cols[ColSubID], uint64(r.SubID))
	ms := r.Start.UnixMilli()
	e.cols[ColStart] = binary.AppendVarint(e.cols[ColStart], ms-e.prevStart)
	e.prevStart = ms
	e.cols[ColDuration] = binary.AppendUvarint(e.cols[ColDuration], uint64(r.Duration/time.Millisecond))
	e.cols[ColPktsUp] = binary.AppendUvarint(e.cols[ColPktsUp], uint64(r.PktsUp))
	e.cols[ColPktsDown] = binary.AppendUvarint(e.cols[ColPktsDown], uint64(r.PktsDown))
	e.cols[ColBytesUp] = binary.AppendUvarint(e.cols[ColBytesUp], r.BytesUp)
	e.cols[ColBytesDown] = binary.AppendUvarint(e.cols[ColBytesDown], r.BytesDown)
	e.cols[ColServerName] = binary.AppendUvarint(e.cols[ColServerName], e.dictIndex(0, r.ServerName))
	e.cols[ColALPN] = binary.AppendUvarint(e.cols[ColALPN], e.dictIndex(1, r.ALPN))
	e.cols[ColQUICVer] = binary.AppendUvarint(e.cols[ColQUICVer], e.dictIndex(2, r.QUICVer))
	e.cols[ColRTTMin] = binary.AppendUvarint(e.cols[ColRTTMin], uint64(r.RTTMin/time.Microsecond))
	e.cols[ColRTTAvg] = binary.AppendUvarint(e.cols[ColRTTAvg], uint64(r.RTTAvg/time.Microsecond))
	e.cols[ColRTTMax] = binary.AppendUvarint(e.cols[ColRTTMax], uint64(r.RTTMax/time.Microsecond))
	e.cols[ColRTTSamples] = binary.AppendUvarint(e.cols[ColRTTSamples], uint64(r.RTTSamples))
	e.stats.observe(r)
	e.rows++
	e.count++
	if e.rows >= colBlockRows {
		return e.flushBlock()
	}
	return nil
}

// flushBlock writes the buffered rows as one block.
func (e *colEncoder) flushBlock() error {
	if e.rows == 0 {
		return nil
	}
	var hdr []byte
	hdr = binary.AppendUvarint(hdr, uint64(e.rows))
	hdr = e.stats.append(hdr)
	hdr = binary.AppendUvarint(hdr, uint64(NumColumns))
	if _, err := e.w.Write(hdr); err != nil {
		return fmt.Errorf("flowrec: writing block header: %w", err)
	}
	var lenBuf [binary.MaxVarintLen64]byte
	for c := 0; c < NumColumns; c++ {
		payload := e.cols[c]
		if j := dictSlot(Column(c)); j >= 0 {
			// Dictionary column: entry count + entries + row indexes.
			var pre []byte
			pre = binary.AppendUvarint(pre, e.dictN[j])
			pre = append(pre, e.dictEnts[j]...)
			pre = append(pre, payload...)
			payload = pre
		}
		n := binary.PutUvarint(lenBuf[:], uint64(len(payload)))
		if _, err := e.w.Write(lenBuf[:n]); err != nil {
			return fmt.Errorf("flowrec: writing column length: %w", err)
		}
		if _, err := e.w.Write(payload); err != nil {
			return fmt.Errorf("flowrec: writing column: %w", err)
		}
	}
	e.resetBlock()
	return nil
}

// Flush seals the current block and pushes buffered bytes down.
func (e *colEncoder) Flush() error {
	if err := e.flushBlock(); err != nil {
		return err
	}
	return e.w.Flush()
}

// colBlock is one raw block read off a v2 stream: the stats, plus the
// payload of every column the scan needs (nil entries were pruned).
type colBlock struct {
	rows  int
	stats blockStats
	data  [NumColumns][]byte
}

// colReader reads raw blocks off a v2 stream, pruning columns and
// skipping stat-excluded blocks. It also accumulates the scan-level
// byte accounting the store publishes.
type colReader struct {
	br   *bufio.Reader
	need ColumnSet
	pred *Pred

	blocksRead, blocksSkipped uint64
	bytesDecoded, bytesPruned uint64
}

// corruptf wraps a structural v2 decode failure as ErrCorrupt.
func corruptf(format string, args ...any) error {
	return fmt.Errorf("flowrec: "+format+": %w", append(args, ErrCorrupt)...)
}

// blockEOF maps an EOF inside a block to ErrUnexpectedEOF so a
// truncated file classifies as stream damage, like the v1 decoder.
func blockEOF(err error) error {
	if err == io.EOF {
		return fmt.Errorf("flowrec: truncated block: %w", io.ErrUnexpectedEOF)
	}
	return err
}

// next returns the next block the scan needs. Blocks excluded by the
// predicate stats are consumed, counted and skipped internally. A
// clean end of stream returns (nil, io.EOF).
func (cr *colReader) next() (*colBlock, error) {
	for {
		rows, err := binary.ReadUvarint(cr.br)
		if err != nil {
			if err == io.EOF {
				return nil, io.EOF // clean block boundary
			}
			return nil, blockEOF(err)
		}
		if rows == 0 || rows > maxBlockRows {
			return nil, corruptf("block of %d rows", rows)
		}
		b := &colBlock{rows: int(rows)}
		if err := b.stats.read(cr.br); err != nil {
			return nil, blockEOF(err)
		}
		ncols, err := binary.ReadUvarint(cr.br)
		if err != nil {
			return nil, blockEOF(err)
		}
		if int(ncols) != NumColumns {
			return nil, corruptf("block with %d columns", ncols)
		}
		skipAll := cr.pred != nil && !cr.pred.matchStats(&b.stats)
		for c := 0; c < NumColumns; c++ {
			n, err := binary.ReadUvarint(cr.br)
			if err != nil {
				return nil, blockEOF(err)
			}
			if n > maxColumnBytes {
				return nil, corruptf("column %d of %d bytes", c, n)
			}
			if skipAll || !cr.need.Has(Column(c)) {
				if _, err := cr.br.Discard(int(n)); err != nil {
					return nil, blockEOF(err)
				}
				cr.bytesPruned += n
				continue
			}
			buf := make([]byte, n)
			if _, err := io.ReadFull(cr.br, buf); err != nil {
				return nil, blockEOF(err)
			}
			cr.bytesDecoded += n
			b.data[c] = buf
		}
		if skipAll {
			cr.blocksSkipped++
			continue
		}
		cr.blocksRead++
		return b, nil
	}
}

// decodeBlock materialises the needed columns of b into recs, which
// must have length b.rows. Unneeded fields keep their zero values.
// strs interns dictionary strings across blocks.
func decodeBlock(b *colBlock, need ColumnSet, recs []Record, strs map[string]string) error {
	rows := b.rows
	for c := 0; c < NumColumns; c++ {
		col := Column(c)
		if !need.Has(col) {
			continue
		}
		p := b.data[c]
		switch col {
		case ColClient, ColServer:
			if len(p) != rows*4 {
				return corruptf("column %d: %d bytes for %d rows", c, len(p), rows)
			}
			for i := 0; i < rows; i++ {
				if col == ColClient {
					copy(recs[i].Client[:], p[i*4:])
				} else {
					copy(recs[i].Server[:], p[i*4:])
				}
			}
		case ColCliPort, ColSrvPort:
			if len(p) != rows*2 {
				return corruptf("column %d: %d bytes for %d rows", c, len(p), rows)
			}
			for i := 0; i < rows; i++ {
				v := binary.BigEndian.Uint16(p[i*2:])
				if col == ColCliPort {
					recs[i].CliPort = v
				} else {
					recs[i].SrvPort = v
				}
			}
		case ColProto, ColTech, ColWeb, ColNameSrc:
			if len(p) != rows {
				return corruptf("column %d: %d bytes for %d rows", c, len(p), rows)
			}
			for i := 0; i < rows; i++ {
				switch col {
				case ColProto:
					recs[i].Proto = Proto(p[i])
				case ColTech:
					recs[i].Tech = AccessTech(p[i])
				case ColWeb:
					recs[i].Web = WebProto(p[i])
				case ColNameSrc:
					recs[i].NameSrc = NameSource(p[i])
				}
			}
		case ColStart:
			var prev int64
			for i := 0; i < rows; i++ {
				d, n := binary.Varint(p)
				if n <= 0 {
					return corruptf("column %d: bad varint", c)
				}
				p = p[n:]
				prev += d
				recs[i].Start = time.UnixMilli(prev).UTC()
			}
			if len(p) != 0 {
				return corruptf("column %d: %d trailing bytes", c, len(p))
			}
		case ColServerName, ColALPN, ColQUICVer:
			entries, rest, err := decodeDict(c, p, rows, strs)
			if err != nil {
				return err
			}
			p = rest
			for i := 0; i < rows; i++ {
				idx, n := binary.Uvarint(p)
				if n <= 0 {
					return corruptf("column %d: bad varint", c)
				}
				p = p[n:]
				if idx >= uint64(len(entries)) {
					return corruptf("column %d: dict index %d of %d", c, idx, len(entries))
				}
				switch col {
				case ColServerName:
					recs[i].ServerName = entries[idx]
				case ColALPN:
					recs[i].ALPN = entries[idx]
				case ColQUICVer:
					recs[i].QUICVer = entries[idx]
				}
			}
			if len(p) != 0 {
				return corruptf("column %d: %d trailing bytes", c, len(p))
			}
		default: // plain uvarint counters
			for i := 0; i < rows; i++ {
				v, n := binary.Uvarint(p)
				if n <= 0 {
					return corruptf("column %d: bad varint", c)
				}
				p = p[n:]
				switch col {
				case ColSubID:
					recs[i].SubID = uint32(v)
				case ColDuration:
					recs[i].Duration = time.Duration(v) * time.Millisecond
				case ColPktsUp:
					recs[i].PktsUp = uint32(v)
				case ColPktsDown:
					recs[i].PktsDown = uint32(v)
				case ColBytesUp:
					recs[i].BytesUp = v
				case ColBytesDown:
					recs[i].BytesDown = v
				case ColRTTMin:
					recs[i].RTTMin = time.Duration(v) * time.Microsecond
				case ColRTTAvg:
					recs[i].RTTAvg = time.Duration(v) * time.Microsecond
				case ColRTTMax:
					recs[i].RTTMax = time.Duration(v) * time.Microsecond
				case ColRTTSamples:
					recs[i].RTTSamples = uint32(v)
				}
			}
			if len(p) != 0 {
				return corruptf("column %d: %d trailing bytes", c, len(p))
			}
		}
	}
	return nil
}

// decodeDict reads a column's per-block dictionary, interning entries
// in strs, and returns the entries plus the remaining (row index)
// payload.
func decodeDict(c int, p []byte, rows int, strs map[string]string) ([]string, []byte, error) {
	n, w := binary.Uvarint(p)
	if w <= 0 {
		return nil, nil, corruptf("column %d: bad dict count", c)
	}
	p = p[w:]
	if n > uint64(rows) {
		return nil, nil, corruptf("column %d: dict of %d entries for %d rows", c, n, rows)
	}
	entries := make([]string, n)
	for i := range entries {
		l, w := binary.Uvarint(p)
		if w <= 0 {
			return nil, nil, corruptf("column %d: bad dict entry length", c)
		}
		p = p[w:]
		if l > maxDictEntryLen || uint64(len(p)) < l {
			return nil, nil, corruptf("column %d: dict entry of %d bytes", c, l)
		}
		if l > 0 {
			if hit, ok := strs[string(p[:l])]; ok {
				entries[i] = hit
			} else {
				s := string(p[:l])
				if len(strs) < internCap {
					strs[s] = s
				}
				entries[i] = s
			}
		}
		p = p[l:]
	}
	return entries, p, nil
}
