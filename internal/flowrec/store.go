package flowrec

import (
	"compress/gzip"
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"time"

	"repro/internal/metrics"
	"repro/internal/zpool"
)

// Store observability: record and (compressed) byte throughput in both
// directions, plus the damage counters a five-year lake accumulates.
// Per-record counts are batched per day-file, so the decode loop pays
// no atomics.
var (
	mRecordsWritten = metrics.GetCounter("store.records_written")
	mBytesWritten   = metrics.GetCounter("store.bytes_written")
	mRecordsRead    = metrics.GetCounter("store.records_read")
	mBytesRead      = metrics.GetCounter("store.bytes_read")
	mCorruptRecords = metrics.GetCounter("store.corrupt_records")
	mDaysWritten    = metrics.GetCounter("store.days_written")
	mDaysRead       = metrics.GetCounter("store.days_read")
	mDaysMissing    = metrics.GetCounter("store.days_missing")
	mQuarantined    = metrics.GetCounter("store.quarantined_days")
	// mOversizeRecords counts records rejected at encode time for
	// exceeding the codec's wire-size bound — data the lake refused,
	// not data it lost.
	mOversizeRecords = metrics.GetCounter("store.oversize_records")
)

// countingWriter tracks compressed bytes leaving a DayWriter.
type countingWriter struct {
	w io.Writer
	n uint64
}

func (c *countingWriter) Write(p []byte) (int, error) {
	n, err := c.w.Write(p)
	c.n += uint64(n)
	return n, err
}

// Store is the data lake of the reproduction: a directory of
// day-partitioned, gzip-compressed flow logs, mirroring the paper's
// "daily, logs are copied into a long-term storage" workflow
// (section 2.2). File layout: <root>/YYYY/MM/flows-YYYYMMDD.efl.gz.
// Each file is either row-oriented v1 or columnar v2 (see Format);
// readers auto-detect per file, so both coexist in one lake.
type Store struct {
	root   string
	format Format // what CreateDay writes; reads auto-detect
}

// OpenStore opens (creating if needed) a store rooted at dir.
func OpenStore(dir string) (*Store, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("flowrec: opening store: %w", err)
	}
	return &Store{root: dir}, nil
}

// Root returns the store directory.
func (s *Store) Root() string { return s.root }

// dayPath returns the log path for a UTC day.
func (s *Store) dayPath(day time.Time) string {
	day = day.UTC()
	return filepath.Join(s.root,
		fmt.Sprintf("%04d", day.Year()),
		fmt.Sprintf("%02d", int(day.Month())),
		fmt.Sprintf("flows-%04d%02d%02d.efl.gz", day.Year(), int(day.Month()), day.Day()))
}

// dayEncoder is the record-sink surface a DayWriter needs; both the
// v1 row Encoder and the v2 columnar encoder provide it.
type dayEncoder interface {
	Encode(*Record) error
	Flush() error
	Count() uint64
}

// DayWriter appends records to one day's log. Records must all belong
// to the day it was opened for; Write enforces this because a
// mis-partitioned lake silently corrupts every per-day aggregate.
type DayWriter struct {
	day     time.Time
	f       *os.File
	cw      *countingWriter
	gz      *gzip.Writer // nil for v3 (compression lives inside the blocks)
	enc     dayEncoder
	path    string
	final   string // when set, Close publishes path→final atomically
	compact bool   // publishing to the compaction counters, not throughput
}

// openTmpSuffix marks an in-flight day log. The suffix keeps the file
// outside the day-name pattern, so Days()/HasDay/ReadDay never see a
// writer that has not sealed (Close renames it away atomically).
const openTmpSuffix = ".open.tmp"

// CreateDay creates the log for day. The write is atomic: records
// accumulate in a temp sibling, and only a successful Close publishes
// the final path. A writer that crashes — or a day the ingest daemon
// is still filling — is invisible to every batch read surface; it can
// never be picked up as a sealed day.
func (s *Store) CreateDay(day time.Time) (*DayWriter, error) {
	final := s.dayPath(day)
	w, err := s.createDayAt(final+openTmpSuffix, day, s.format)
	if err != nil {
		return nil, err
	}
	w.final = final
	return w, nil
}

// createDayAt opens a day writer on an explicit path in an explicit
// format — CreateDay's engine, shared with compaction (which writes a
// sibling temp file before renaming over the original).
func (s *Store) createDayAt(path string, day time.Time, format Format) (*DayWriter, error) {
	if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
		return nil, fmt.Errorf("flowrec: creating day dir: %w", err)
	}
	f, err := os.Create(path)
	if err != nil {
		return nil, fmt.Errorf("flowrec: creating day log: %w", err)
	}
	cw := &countingWriter{w: f}
	var enc dayEncoder
	var gz *gzip.Writer
	if format == FormatV3 {
		// v3 compresses inside the block framing; a file-level gzip
		// layer would serialise block decompression again.
		enc, err = newColEncoder(cw, true)
	} else {
		gz = zpool.GzipWriterSpeed(cw)
		if format == FormatV2 {
			enc, err = newColEncoder(gz, false)
		} else {
			enc, err = NewEncoder(gz)
		}
	}
	if err != nil {
		if gz != nil {
			gz.Close()
			zpool.PutGzipWriterSpeed(gz)
		}
		f.Close()
		return nil, err
	}
	y, m, d := day.UTC().Date()
	return &DayWriter{
		day: time.Date(y, m, d, 0, 0, 0, 0, time.UTC),
		f:   f, cw: cw, gz: gz, enc: enc, path: path,
	}, nil
}

// Day returns the UTC midnight this writer covers.
func (w *DayWriter) Day() time.Time { return w.day }

// Count returns the number of records written so far.
func (w *DayWriter) Count() uint64 { return w.enc.Count() }

// Write appends one record, validating its partition.
func (w *DayWriter) Write(r *Record) error {
	if !r.Day().Equal(w.day) {
		return fmt.Errorf("flowrec: record of %s written to log of %s",
			r.Day().Format("2006-01-02"), w.day.Format("2006-01-02"))
	}
	return w.enc.Encode(r)
}

// Close flushes, seals and publishes the log (for a CreateDay writer,
// the atomic rename onto the day path happens here), then publishes
// throughput counters. On any error the temp file is removed: a day
// either seals completely or leaves nothing at its path.
func (w *DayWriter) Close() error {
	var firstErr error
	if err := w.enc.Flush(); err != nil {
		firstErr = err
	}
	if w.gz != nil { // v3 writes raw; there is no file-level gzip layer
		if err := w.gz.Close(); err != nil && firstErr == nil {
			firstErr = err
		}
		zpool.PutGzipWriterSpeed(w.gz)
		w.gz = nil
	}
	if err := w.f.Close(); err != nil && firstErr == nil {
		firstErr = err
	}
	if w.final != "" {
		if firstErr != nil {
			os.Remove(w.path)
			return firstErr
		}
		if err := os.Rename(w.path, w.final); err != nil {
			os.Remove(w.path)
			return fmt.Errorf("flowrec: sealing day log: %w", err)
		}
	} else if firstErr != nil {
		return firstErr
	}
	if w.compact {
		mCompactedDays.Inc()
		mCompactedBytes.Add(w.cw.n)
	} else {
		mRecordsWritten.Add(w.enc.Count())
		mBytesWritten.Add(w.cw.n)
		mDaysWritten.Inc()
	}
	return firstErr
}

// Abort closes and discards the writer without sealing: no file is
// published and no throughput is counted. The emit-failure path of a
// day write uses it so a failed write leaves no file at the day path.
func (w *DayWriter) Abort() {
	if w.gz != nil {
		w.gz.Close()
		zpool.PutGzipWriterSpeed(w.gz)
		w.gz = nil
	}
	w.f.Close()
	os.Remove(w.path)
}

// ErrNoDay reports a missing day partition — a probe outage in the
// paper's terms (section 2.3); callers skip and carry on.
var ErrNoDay = errors.New("flowrec: no log for day")

// ReadDay streams every record of one day to fn. Iteration stops early
// if fn returns a non-nil error, which is then returned. The file's
// format (v1 row stream or v2 columnar) is auto-detected by magic.
// store.days_read counts only days whose stream ended cleanly — a day
// that fails mid-read never inflates read-throughput metrics.
func (s *Store) ReadDay(day time.Time, fn func(*Record) error) error {
	return s.ReadDayCols(day, ColScan{}, fn)
}

// isGzipDamage classifies transport-level stream damage — a truncated
// file or a failed checksum — as corruption, like codec-level damage.
func isGzipDamage(err error) bool {
	return errors.Is(err, gzip.ErrChecksum) ||
		errors.Is(err, gzip.ErrHeader) ||
		errors.Is(err, io.ErrUnexpectedEOF)
}

// countingReader tracks compressed bytes entering a day read.
type countingReader struct {
	r io.Reader
	n uint64
}

func (c *countingReader) Read(p []byte) (int, error) {
	n, err := c.r.Read(p)
	c.n += uint64(n)
	return n, err
}

// quarantineDirName is where QuarantineDay parks damaged day logs,
// directly under the store root. Days() skips it, so a quarantined day
// reads as a probe outage (ErrNoDay) instead of a recurring failure.
const quarantineDirName = ".quarantine"

// WALDirName is where the ingest daemon keeps its write-ahead
// segments, directly under the store root. Days() skips the whole
// subtree: WAL segments are by definition unsealed data, whatever
// their file names look like.
const WALDirName = ".wal"

// QuarantineDay moves a damaged day's log into <root>/.quarantine/,
// taking it out of the read path: later reads see ErrNoDay (an
// outage), not the same corrupt bytes again. The evidence is kept for
// offline inspection rather than deleted. Quarantining a day with no
// log is a no-op.
func (s *Store) QuarantineDay(day time.Time) error {
	src := s.dayPath(day)
	if _, err := os.Stat(src); err != nil {
		if os.IsNotExist(err) {
			return nil
		}
		return fmt.Errorf("flowrec: quarantining day: %w", err)
	}
	qdir := filepath.Join(s.root, quarantineDirName)
	if err := os.MkdirAll(qdir, 0o755); err != nil {
		return fmt.Errorf("flowrec: quarantining day: %w", err)
	}
	if err := os.Rename(src, filepath.Join(qdir, filepath.Base(src))); err != nil {
		return fmt.Errorf("flowrec: quarantining day: %w", err)
	}
	mQuarantined.Inc()
	return nil
}

// Days lists every day with a log, sorted ascending. Quarantined logs
// are not listed.
func (s *Store) Days() ([]time.Time, error) {
	var days []time.Time
	err := filepath.WalkDir(s.root, func(path string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if d.IsDir() {
			// Dot-dirs are operational state, not lake data: the
			// quarantine, the ingest daemon's WAL, its checkpoint
			// cache when colocated under the root.
			if path != s.root && strings.HasPrefix(d.Name(), ".") {
				return filepath.SkipDir
			}
			return nil
		}
		var y, m, dd int
		base := filepath.Base(path)
		if _, err := fmt.Sscanf(base, "flows-%4d%2d%2d.efl.gz", &y, &m, &dd); err != nil {
			return nil // not a log file
		}
		// Sscanf matches prefixes, so temp siblings of in-flight
		// writes ("….efl.gz.open.tmp", "….efl.gz.compact.tmp") would
		// parse too — and list a half-written day as sealed. Only the
		// exact canonical name is a sealed day.
		if base != fmt.Sprintf("flows-%04d%02d%02d.efl.gz", y, m, dd) {
			return nil // trailing garbage: an unsealed temp, not a log
		}
		// Sscanf accepts impossible dates (month 0, day 32) from stray
		// matching names, and time.Date silently normalises them into
		// some other day — which would then read as missing or, worse,
		// alias a real day. Only canonical names list: the parsed
		// components must round-trip through time.Date unchanged.
		day := time.Date(y, time.Month(m), dd, 0, 0, 0, 0, time.UTC)
		if gy, gm, gd := day.Date(); gy != y || gm != time.Month(m) || gd != dd {
			return nil // non-canonical date: not a log file
		}
		days = append(days, day)
		return nil
	})
	if err != nil {
		return nil, fmt.Errorf("flowrec: listing days: %w", err)
	}
	sort.Slice(days, func(i, j int) bool { return days[i].Before(days[j]) })
	return days, nil
}

// HasDay reports whether a log exists for day.
func (s *Store) HasDay(day time.Time) bool {
	_, err := os.Stat(s.dayPath(day))
	return err == nil
}
