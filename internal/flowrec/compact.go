package flowrec

import (
	"fmt"
	"os"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/metrics"
)

// Compaction observability: sealed days rewritten into another format,
// and the compressed bytes the rewrites produced.
var (
	mCompactedDays  = metrics.GetCounter("store.compacted_days")
	mCompactedBytes = metrics.GetCounter("store.compacted_bytes")
)

// CompactDay rewrites one sealed day's log into the given format,
// replacing the file atomically (write to a sibling temp file, then
// rename). The logical record stream is unchanged — readers see either
// the old or the new file, never a partial one — so derived caches
// (aggregates, rollups) stay valid. Returns the number of records
// rewritten; a missing day returns ErrNoDay.
func (s *Store) CompactDay(day time.Time, format Format) (uint64, error) {
	path := s.dayPath(day)
	if _, err := os.Stat(path); err != nil {
		if os.IsNotExist(err) {
			return 0, fmt.Errorf("%w: %s", ErrNoDay, day.UTC().Format("2006-01-02"))
		}
		return 0, fmt.Errorf("flowrec: compacting day: %w", err)
	}
	tmp := path + ".compact.tmp"
	w, err := s.createDayAt(tmp, day, format)
	if err != nil {
		return 0, err
	}
	w.compact = true
	fail := func(err error) (uint64, error) {
		w.Close()
		os.Remove(tmp)
		return 0, err
	}
	if err := s.ReadDay(day, func(r *Record) error { return w.Write(r) }); err != nil {
		return fail(err)
	}
	n := w.Count()
	if err := w.Close(); err != nil {
		os.Remove(tmp)
		return 0, err
	}
	if err := os.Rename(tmp, path); err != nil {
		os.Remove(tmp)
		return 0, fmt.Errorf("flowrec: compacting day: %w", err)
	}
	return n, nil
}

// CompactStore rewrites every listed day into format across workers
// parallel rewriters (0 means GOMAXPROCS), returning the days and
// records compacted. Days are independent files, so compaction
// parallelises trivially; the first failure is remembered and returned
// after all in-flight days finish, with every completed day already
// atomically replaced (compaction is resumable, not transactional).
func (s *Store) CompactStore(days []time.Time, format Format, workers int) (int, uint64, error) {
	if workers < 1 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(days) {
		workers = len(days)
	}
	var (
		next, done atomic.Int64
		recs       atomic.Uint64
		mu         sync.Mutex
		firstErr   error
		wg         sync.WaitGroup
	)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= len(days) {
					return
				}
				n, err := s.CompactDay(days[i], format)
				if err != nil {
					mu.Lock()
					if firstErr == nil {
						firstErr = fmt.Errorf("%s: %w", days[i].UTC().Format("2006-01-02"), err)
					}
					mu.Unlock()
					continue
				}
				done.Add(1)
				recs.Add(n)
			}
		}()
	}
	wg.Wait()
	return int(done.Load()), recs.Load(), firstErr
}
