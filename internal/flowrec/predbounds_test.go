package flowrec

import (
	"reflect"
	"testing"
	"time"

	"repro/internal/metrics"
)

// Pushdown-boundary regression tests. Pred documents every range as
// inclusive, and matchStats must keep a block whose min/max stats
// merely *touch* the predicate — a strict comparison in the wrong
// direction silently drops exactly the records sitting on the bound,
// and only on v2 (block-skipping) reads, so v1 and v2 would disagree.
// These tests pin the inclusive contract on records and block stats
// placed exactly on the boundaries, for every predicate dimension, and
// assert v1-fallback/v2-pushdown identity around each bound.

// boundaryRecords builds 3 full blocks of ms-granular, Start-ascending
// records whose per-block stats are fully controlled:
//
//	block 0: SrvPort [   0,  999], ProtoTCP, TechADSL
//	block 1: SrvPort [1000, 1999], ProtoUDP, TechADSL
//	block 2: SrvPort [2000, 2999], ProtoTCP, TechFTTH
//
// so each dimension has a block boundary to land predicates on.
func boundaryRecords(day time.Time) []Record {
	n := 3 * colBlockRows
	recs := make([]Record, n)
	for i := range recs {
		b := i / colBlockRows
		r := &recs[i]
		r.Start = day.Add(time.Duration(3*i) * time.Millisecond)
		r.SrvPort = uint16(1000*b + i%1000)
		r.Proto = ProtoTCP
		if b == 1 {
			r.Proto = ProtoUDP
		}
		r.Tech = TechADSL
		if b == 2 {
			r.Tech = TechFTTH
		}
		r.SubID = uint32(i)
		r.BytesDown = 1 << 10
		r.BytesUp = 1 << 9
		r.PktsUp, r.PktsDown = 1, 1
	}
	return recs
}

// boundaryStores writes the same record set as one v1 and one v2 day.
func boundaryStores(t *testing.T) (v1, v2 *Store, recs []Record) {
	t.Helper()
	recs = boundaryRecords(colTestDay)
	s1, err := OpenStoreFormat(t.TempDir(), FormatV1)
	if err != nil {
		t.Fatal(err)
	}
	s2, err := OpenStoreFormat(t.TempDir(), FormatV2)
	if err != nil {
		t.Fatal(err)
	}
	writeDayRecords(t, s1, colTestDay, recs)
	writeDayRecords(t, s2, colTestDay, recs)
	return s1, s2, recs
}

// expect filters recs by an independent restatement of the inclusive
// contract — deliberately not via Pred.Match, so a bug there cannot
// vouch for itself.
func expect(recs []Record, keep func(*Record) bool) []Record {
	var out []Record
	for i := range recs {
		if keep(&recs[i]) {
			out = append(out, recs[i])
		}
	}
	return out
}

func assertSame(t *testing.T, name string, got, want []Record) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("%s: %d records, want %d", name, len(got), len(want))
	}
	for i := range want {
		if !reflect.DeepEqual(got[i], want[i]) {
			t.Fatalf("%s: record %d mismatch:\n got %+v\nwant %+v", name, i, got[i], want[i])
		}
	}
}

// TestPredStartBoundaryInclusive: StartMin equal to the last Start of a
// block (its stats startMax) and StartMax equal to the first Start of a
// later block (its stats startMin) must keep both edge blocks and
// deliver both boundary records, on v1 and v2 alike.
func TestPredStartBoundaryInclusive(t *testing.T) {
	s1, s2, recs := boundaryStores(t)
	lo := recs[colBlockRows-1].Start // block 0's max
	hi := recs[2*colBlockRows].Start // block 2's min
	pred := &Pred{StartMin: lo, StartMax: hi}
	want := expect(recs, func(r *Record) bool {
		return !r.Start.Before(lo) && !r.Start.After(hi)
	})
	if len(want) != colBlockRows+2 {
		t.Fatalf("test geometry broken: %d expected records", len(want))
	}
	for _, s := range []struct {
		name  string
		store *Store
	}{{"v1", s1}, {"v2", s2}} {
		got := readAll(t, s.store, colTestDay, ColScan{Pred: pred})
		assertSame(t, s.name, got, want)
		if !got[0].Start.Equal(lo) || !got[len(got)-1].Start.Equal(hi) {
			t.Errorf("%s: boundary records missing: first=%v last=%v", s.name, got[0].Start, got[len(got)-1].Start)
		}
	}

	// One millisecond past the bound excludes exactly the boundary
	// records (the grid is 3ms, so nothing else moves).
	tight := &Pred{StartMin: lo.Add(time.Millisecond), StartMax: hi.Add(-time.Millisecond)}
	for _, s := range []struct {
		name  string
		store *Store
	}{{"v1", s1}, {"v2", s2}} {
		got := readAll(t, s.store, colTestDay, ColScan{Pred: tight})
		if len(got) != colBlockRows {
			t.Errorf("%s: ±1ms pred matched %d records, want %d", s.name, len(got), colBlockRows)
		}
	}
}

// TestPredSrvPortBoundaryInclusive: a port range ending exactly on a
// block's min/max stats keeps the block; ports equal to Lo and Hi
// match. Non-touching blocks must actually be skipped (the pushdown is
// real, not a full scan that happens to filter right).
func TestPredSrvPortBoundaryInclusive(t *testing.T) {
	_, s2, recs := boundaryStores(t)
	pred := &Pred{HasSrvPort: true, SrvPortLo: 1000, SrvPortHi: 1999}
	want := expect(recs, func(r *Record) bool { return r.SrvPort >= 1000 && r.SrvPort <= 1999 })
	if len(want) != colBlockRows {
		t.Fatalf("test geometry broken: %d expected records", len(want))
	}
	skipped0 := metrics.GetCounter("store.blocks_skipped").Load()
	got := readAll(t, s2, colTestDay, ColScan{Pred: pred})
	assertSame(t, "v2", got, want)
	if d := metrics.GetCounter("store.blocks_skipped").Load() - skipped0; d < 2 {
		t.Errorf("blocks_skipped advanced by %d, want >= 2 (blocks 0 and 2 cannot match)", d)
	}

	// Straddling a block edge: [999, 1000] touches block 0's srvPortMax
	// and block 1's srvPortMin; both bounds are inclusive.
	edge := &Pred{HasSrvPort: true, SrvPortLo: 999, SrvPortHi: 1000}
	wantEdge := expect(recs, func(r *Record) bool { return r.SrvPort >= 999 && r.SrvPort <= 1000 })
	if len(wantEdge) == 0 {
		t.Fatal("test geometry broken: no records on the port edge")
	}
	assertSame(t, "v2-edge", readAll(t, s2, colTestDay, ColScan{Pred: edge}), wantEdge)
}

// TestPredProtoTechBoundary: exact-match dimensions at block-stat
// boundaries — a homogeneous block whose protoMin==protoMax equals the
// predicate value must be kept, all-different blocks skipped.
func TestPredProtoTechBoundary(t *testing.T) {
	s1, s2, recs := boundaryStores(t)
	cases := []struct {
		name string
		pred *Pred
		keep func(*Record) bool
	}{
		{"proto", &Pred{HasProto: true, Proto: ProtoUDP},
			func(r *Record) bool { return r.Proto == ProtoUDP }},
		{"tech", &Pred{HasTech: true, Tech: TechFTTH},
			func(r *Record) bool { return r.Tech == TechFTTH }},
	}
	for _, c := range cases {
		want := expect(recs, c.keep)
		if len(want) != colBlockRows {
			t.Fatalf("%s: test geometry broken: %d expected records", c.name, len(want))
		}
		assertSame(t, c.name+"-v1", readAll(t, s1, colTestDay, ColScan{Pred: c.pred}), want)
		assertSame(t, c.name+"-v2", readAll(t, s2, colTestDay, ColScan{Pred: c.pred}), want)
	}
}

// TestPredV1V2IdentityAroundBounds sweeps predicates one step either
// side of every boundary and requires the v1 per-record fallback and
// the v2 block-skipping pushdown to return byte-identical record
// streams — the invariant the pushdown must never trade away.
func TestPredV1V2IdentityAroundBounds(t *testing.T) {
	s1, s2, recs := boundaryStores(t)
	b0max := recs[colBlockRows-1].Start
	b1min := recs[colBlockRows].Start
	preds := []*Pred{
		{StartMin: b0max}, {StartMin: b0max.Add(time.Millisecond)}, {StartMin: b0max.Add(-time.Millisecond)},
		{StartMax: b1min}, {StartMax: b1min.Add(time.Millisecond)}, {StartMax: b1min.Add(-time.Millisecond)},
		{HasSrvPort: true, SrvPortLo: 999, SrvPortHi: 999},
		{HasSrvPort: true, SrvPortLo: 1000, SrvPortHi: 1000},
		{HasSrvPort: true, SrvPortLo: 1999, SrvPortHi: 2000},
		{HasSrvPort: true, SrvPortLo: 2999, SrvPortHi: 65535},
		{HasProto: true, Proto: ProtoTCP},
		{HasTech: true, Tech: TechADSL},
		{StartMin: b0max, StartMax: b1min, HasSrvPort: true, SrvPortLo: 0, SrvPortHi: 1999,
			HasProto: true, Proto: ProtoUDP, HasTech: true, Tech: TechADSL},
	}
	for i, pred := range preds {
		got1 := readAll(t, s1, colTestDay, ColScan{Pred: pred})
		got2 := readAll(t, s2, colTestDay, ColScan{Pred: pred})
		if len(got1) != len(got2) {
			t.Fatalf("pred %d: v1=%d v2=%d records", i, len(got1), len(got2))
		}
		for j := range got1 {
			if !reflect.DeepEqual(got1[j], got2[j]) {
				t.Fatalf("pred %d: record %d differs between v1 and v2:\n v1 %+v\n v2 %+v", i, j, got1[j], got2[j])
			}
		}
	}
}
