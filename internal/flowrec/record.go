// Package flowrec defines the flow record — the single unit of data
// the probes export, one entry per TCP/UDP stream (section 2.1 of the
// paper) — and a day-partitioned on-disk log store with a compact
// gzip-compressed binary codec and a CSV codec for interoperability.
package flowrec

import (
	"fmt"
	"time"

	"repro/internal/wire"
)

// Proto is the transport protocol of a flow.
type Proto uint8

// Transport protocols.
const (
	ProtoTCP Proto = 6
	ProtoUDP Proto = 17
)

// String names the protocol.
func (p Proto) String() string {
	switch p {
	case ProtoTCP:
		return "tcp"
	case ProtoUDP:
		return "udp"
	default:
		return fmt.Sprintf("proto(%d)", uint8(p))
	}
}

// WebProto is the application protocol label the probe assigns to a
// flow — the categories of Figure 8 of the paper.
type WebProto uint8

// Application protocol labels. Order matters: it is the stacking order
// of Figure 8 and the wire encoding.
const (
	WebOther  WebProto = iota
	WebHTTP            // clear-text HTTP/1.x
	WebTLS             // HTTPS (TLS without a newer ALPN)
	WebSPDY            // TLS with spdy/* ALPN
	WebHTTP2           // TLS with h2 ALPN
	WebQUIC            // gQUIC / IETF QUIC over UDP
	WebFBZero          // Facebook Zero protocol
	WebP2P             // BitTorrent / eMule and variants
	WebDNS             // DNS over UDP/53
	webProtoCount
)

// String names the protocol as the paper's figures do.
func (w WebProto) String() string {
	switch w {
	case WebHTTP:
		return "HTTP"
	case WebTLS:
		return "TLS"
	case WebSPDY:
		return "SPDY"
	case WebHTTP2:
		return "HTTP/2"
	case WebQUIC:
		return "QUIC"
	case WebFBZero:
		return "FB-ZERO"
	case WebP2P:
		return "P2P"
	case WebDNS:
		return "DNS"
	default:
		return "OTHER"
	}
}

// WebProtoCount is the number of distinct labels (for share arrays).
const WebProtoCount = int(webProtoCount)

// NameSource records where the server name of a flow came from,
// mirroring Tstat: the HTTP Host header, the TLS SNI, or a preceding
// DNS resolution (DN-Hunter).
type NameSource uint8

// Name sources.
const (
	NameNone NameSource = iota
	NameHTTPHost
	NameSNI
	NameDNS
)

// String names the source.
func (s NameSource) String() string {
	switch s {
	case NameHTTPHost:
		return "http-host"
	case NameSNI:
		return "sni"
	case NameDNS:
		return "dns"
	default:
		return "none"
	}
}

// AccessTech is the subscriber's access technology.
type AccessTech uint8

// Access technologies monitored by the two PoPs of the paper.
const (
	TechADSL AccessTech = iota
	TechFTTH
)

// String names the technology.
func (t AccessTech) String() string {
	if t == TechFTTH {
		return "FTTH"
	}
	return "ADSL"
}

// Record is one exported flow record. Field set follows the Tstat log
// described in section 2.1: the 5-tuple (client address anonymized),
// packet/byte counters per direction, timestamps, the server name and
// its source, the application protocol, and the TCP RTT estimate.
type Record struct {
	// Identity.
	Client  wire.Addr // anonymized subscriber address
	Server  wire.Addr
	CliPort uint16
	SrvPort uint16
	Proto   Proto
	Tech    AccessTech
	SubID   uint32 // stable anonymized subscription index

	// Time. Start is the first packet; Duration spans to the last.
	Start    time.Time
	Duration time.Duration

	// Counters. Down = server→client, Up = client→server.
	PktsUp    uint32
	PktsDown  uint32
	BytesUp   uint64
	BytesDown uint64

	// Application layer.
	Web        WebProto
	ServerName string // domain from Host/SNI/DN-Hunter; "" if unknown
	NameSrc    NameSource
	ALPN       string // raw ALPN token when present
	QUICVer    string // gQUIC version tag when Web == WebQUIC

	// TCP RTT estimate, probe→server (section 2.1: access delay excluded).
	RTTMin     time.Duration
	RTTAvg     time.Duration
	RTTMax     time.Duration
	RTTSamples uint32
}

// Day returns the UTC day the flow started, truncated to midnight —
// the partitioning key of the log store.
func (r *Record) Day() time.Time {
	y, m, d := r.Start.UTC().Date()
	return time.Date(y, m, d, 0, 0, 0, 0, time.UTC)
}

// TotalBytes returns the two-way byte count.
func (r *Record) TotalBytes() uint64 { return r.BytesUp + r.BytesDown }

// Quantize truncates the record's time fields to the precision every
// store codec keeps (millisecond start and duration, microsecond
// RTTs), making the record equal to its own encode/decode round-trip.
// Live aggregation quantizes before folding so that an aggregate of
// in-flight records is byte-identical to the same aggregate computed
// from the sealed day file.
func (r *Record) Quantize() {
	r.Start = time.UnixMilli(r.Start.UnixMilli()).UTC()
	r.Duration = r.Duration.Truncate(time.Millisecond)
	r.RTTMin = r.RTTMin.Truncate(time.Microsecond)
	r.RTTAvg = r.RTTAvg.Truncate(time.Microsecond)
	r.RTTMax = r.RTTMax.Truncate(time.Microsecond)
}

// String renders a one-line summary for logs and debugging.
func (r *Record) String() string {
	return fmt.Sprintf("%s %s:%d -> %s:%d %s name=%q up=%dB down=%dB rtt=%s",
		r.Proto, r.Client, r.CliPort, r.Server, r.SrvPort, r.Web,
		r.ServerName, r.BytesUp, r.BytesDown, r.RTTMin)
}
