package flowrec

import (
	"testing"

	"repro/internal/wire"
)

// TestShardKeyStable pins the shard hash: it is part of the sharded
// run's reproducibility contract, so a change here is a breaking
// change to every cached shard partial.
func TestShardKeyStable(t *testing.T) {
	r := sampleRecord()
	k1 := r.ShardKey()
	if k2 := r.ShardKey(); k2 != k1 {
		t.Fatalf("ShardKey not deterministic: %x vs %x", k1, k2)
	}
	// Same client, completely different flow → same key.
	q := sampleRecord()
	q.Server = wire.AddrFrom(8, 8, 8, 8)
	q.SrvPort = 53
	q.Web = WebDNS
	q.BytesDown = 1
	if q.ShardKey() != k1 {
		t.Fatal("ShardKey depends on non-client fields")
	}
	// Different client → (overwhelmingly) different key.
	o := sampleRecord()
	o.Client = wire.AddrFrom(10, 55, 2, 4)
	if o.ShardKey() == k1 {
		t.Fatal("adjacent clients collide on the full 64-bit key")
	}
}

func TestShardRange(t *testing.T) {
	r := sampleRecord()
	for _, k := range []int{-3, 0, 1} {
		if s := r.Shard(k); s != 0 {
			t.Errorf("Shard(%d) = %d, want 0", k, s)
		}
	}
	for _, k := range []int{2, 3, 8, 17} {
		if s := r.Shard(k); s < 0 || s >= k {
			t.Errorf("Shard(%d) = %d out of range", k, s)
		}
	}
}

// TestShardBalance: sequential client addresses (how simnet allocates
// subscribers) must spread close to uniformly — the finalizer has to
// break the low-bit structure of adjacent addresses.
func TestShardBalance(t *testing.T) {
	const clients, k = 4096, 8
	counts := make([]int, k)
	r := sampleRecord()
	for i := 0; i < clients; i++ {
		r.Client = wire.AddrFromUint32(0x0a000000 + uint32(i))
		counts[r.Shard(k)]++
	}
	mean := clients / k
	for s, c := range counts {
		if c < mean*7/10 || c > mean*13/10 {
			t.Errorf("shard %d holds %d of %d clients (mean %d): imbalance >30%%", s, c, clients, mean)
		}
	}
}
