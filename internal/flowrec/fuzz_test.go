package flowrec_test

import (
	"bytes"
	"errors"
	"io"
	"testing"
	"time"

	"repro/internal/flowrec"
	"repro/internal/simnet"
)

// FuzzDecodeRecord drives the binary codec with arbitrary byte streams.
// The decoder is the first thing that touches bytes off disk, after
// gzip — torn writes, bit flips and truncation all surface here — so it
// must reject damage with an error (ideally ErrCorrupt) and never
// panic, over-allocate, or loop.
func FuzzDecodeRecord(f *testing.F) {
	// Seed with a genuine day log: encode a slice of simulator output so
	// the fuzzer starts from structurally valid streams and mutates
	// inward from there.
	w := simnet.NewWorld(5, simnet.Scale{ADSL: 8, FTTH: 4})
	day := time.Date(2016, 4, 12, 0, 0, 0, 0, time.UTC)
	var buf bytes.Buffer
	enc, err := flowrec.NewEncoder(&buf)
	if err != nil {
		f.Fatal(err)
	}
	n := 0
	w.EmitDay(day, func(r *flowrec.Record) {
		if n < 64 {
			if err := enc.Encode(r); err != nil {
				f.Fatal(err)
			}
			n++
		}
	})
	if err := enc.Flush(); err != nil {
		f.Fatal(err)
	}
	if n == 0 {
		f.Fatal("simulator emitted no records to seed from")
	}
	valid := buf.Bytes()
	f.Add(valid)
	f.Add(valid[:len(valid)/2]) // torn write
	f.Add(valid[:4])            // header only
	f.Add([]byte{})
	f.Add([]byte("efl1"))
	f.Add([]byte("not a flow log"))

	f.Fuzz(func(t *testing.T, data []byte) {
		dec, err := flowrec.NewDecoder(bytes.NewReader(data))
		if err != nil {
			return // bad magic / short header: rejection is correct
		}
		var rec flowrec.Record
		for {
			err := dec.Decode(&rec)
			if errors.Is(err, io.EOF) {
				return
			}
			if err != nil {
				return // any explicit decode error is acceptable
			}
		}
	})
}
