package flowrec

import (
	"bytes"
	"errors"
	"io"
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"
	"time"

	"repro/internal/wire"
)

// sampleRecord builds a representative record.
func sampleRecord() Record {
	return Record{
		Client:     wire.AddrFrom(10, 55, 2, 3),
		Server:     wire.AddrFrom(31, 13, 86, 36),
		CliPort:    51342,
		SrvPort:    443,
		Proto:      ProtoTCP,
		Tech:       TechFTTH,
		SubID:      1234,
		Start:      time.Date(2016, 11, 12, 21, 4, 5, 0, time.UTC).Add(250 * time.Millisecond),
		Duration:   92 * time.Second,
		PktsUp:     120,
		PktsDown:   800,
		BytesUp:    15000,
		BytesDown:  1200000,
		Web:        WebFBZero,
		ServerName: "scontent.xx.fbcdn.net",
		NameSrc:    NameSNI,
		ALPN:       "h2",
		RTTMin:     2900 * time.Microsecond,
		RTTAvg:     3400 * time.Microsecond,
		RTTMax:     9100 * time.Microsecond,
		RTTSamples: 310,
	}
}

// randomRecord draws a record with rng-controlled fields for property
// tests.
func randomRecord(rng *rand.Rand) Record {
	names := []string{"", "netflix.com", "googlevideo.com", "scontent.cdninstagram.com", "very-long-host-name.example.org"}
	return Record{
		Client:     wire.AddrFromUint32(rng.Uint32()),
		Server:     wire.AddrFromUint32(rng.Uint32()),
		CliPort:    uint16(rng.Uint32()),
		SrvPort:    uint16(rng.Uint32()),
		Proto:      []Proto{ProtoTCP, ProtoUDP}[rng.Intn(2)],
		Tech:       AccessTech(rng.Intn(2)),
		SubID:      rng.Uint32() >> 8,
		Start:      time.UnixMilli(1356998400000 + rng.Int63n(5*365*24*3600*1000)).UTC(),
		Duration:   time.Duration(rng.Int63n(3600_000)) * time.Millisecond,
		PktsUp:     rng.Uint32() >> 10,
		PktsDown:   rng.Uint32() >> 10,
		BytesUp:    uint64(rng.Int63n(1 << 34)),
		BytesDown:  uint64(rng.Int63n(1 << 34)),
		Web:        WebProto(rng.Intn(WebProtoCount)),
		ServerName: names[rng.Intn(len(names))],
		NameSrc:    NameSource(rng.Intn(4)),
		ALPN:       []string{"", "h2", "spdy/3.1", "http/1.1"}[rng.Intn(4)],
		QUICVer:    []string{"", "Q039"}[rng.Intn(2)],
		RTTMin:     time.Duration(rng.Int63n(200_000)) * time.Microsecond,
		RTTAvg:     time.Duration(rng.Int63n(200_000)) * time.Microsecond,
		RTTMax:     time.Duration(rng.Int63n(200_000)) * time.Microsecond,
		RTTSamples: rng.Uint32() >> 16,
	}
}

func TestBinaryRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	enc, err := NewEncoder(&buf)
	if err != nil {
		t.Fatal(err)
	}
	want := sampleRecord()
	if err := enc.Encode(&want); err != nil {
		t.Fatal(err)
	}
	if err := enc.Flush(); err != nil {
		t.Fatal(err)
	}
	if enc.Count() != 1 {
		t.Errorf("Count = %d", enc.Count())
	}
	dec, err := NewDecoder(&buf)
	if err != nil {
		t.Fatal(err)
	}
	var got Record
	if err := dec.Decode(&got); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("round trip:\n got %+v\nwant %+v", got, want)
	}
	if err := dec.Decode(&got); !errors.Is(err, io.EOF) {
		t.Errorf("second decode err = %v, want EOF", err)
	}
}

func TestBinaryRoundTripProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	var buf bytes.Buffer
	enc, err := NewEncoder(&buf)
	if err != nil {
		t.Fatal(err)
	}
	const n = 500
	records := make([]Record, n)
	for i := range records {
		records[i] = randomRecord(rng)
		if err := enc.Encode(&records[i]); err != nil {
			t.Fatal(err)
		}
	}
	if err := enc.Flush(); err != nil {
		t.Fatal(err)
	}
	dec, err := NewDecoder(&buf)
	if err != nil {
		t.Fatal(err)
	}
	for i := range records {
		var got Record
		if err := dec.Decode(&got); err != nil {
			t.Fatalf("record %d: %v", i, err)
		}
		if !reflect.DeepEqual(got, records[i]) {
			t.Fatalf("record %d mismatch:\n got %+v\nwant %+v", i, got, records[i])
		}
	}
}

func TestDecoderRejectsBadMagic(t *testing.T) {
	if _, err := NewDecoder(bytes.NewReader([]byte("nope...."))); !errors.Is(err, ErrBadMagic) {
		t.Errorf("err = %v, want ErrBadMagic", err)
	}
}

func TestDecoderRejectsHugeRecord(t *testing.T) {
	var buf bytes.Buffer
	buf.Write(codecMagic[:])
	buf.Write([]byte{0xFF, 0xFF, 0xFF, 0x7F}) // huge varint length
	dec, err := NewDecoder(&buf)
	if err != nil {
		t.Fatal(err)
	}
	var r Record
	if err := dec.Decode(&r); !errors.Is(err, ErrCorrupt) {
		t.Errorf("err = %v, want ErrCorrupt", err)
	}
}

func TestDecodeBodyNeverPanics(t *testing.T) {
	d := &Decoder{strs: make(map[string]string)}
	f := func(data []byte) bool {
		var r Record
		d.decodeBody(data, &r) // must not panic
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 1000}); err != nil {
		t.Error(err)
	}
}

func TestCSVRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	var buf bytes.Buffer
	w, err := NewCSVWriter(&buf)
	if err != nil {
		t.Fatal(err)
	}
	records := make([]Record, 100)
	for i := range records {
		records[i] = randomRecord(rng)
		if err := w.Write(&records[i]); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	r, err := NewCSVReader(&buf)
	if err != nil {
		t.Fatal(err)
	}
	for i := range records {
		var got Record
		if err := r.Read(&got); err != nil {
			t.Fatalf("row %d: %v", i, err)
		}
		if !reflect.DeepEqual(got, records[i]) {
			t.Fatalf("row %d mismatch:\n got %+v\nwant %+v", i, got, records[i])
		}
	}
	var extra Record
	if err := r.Read(&extra); !errors.Is(err, io.EOF) {
		t.Errorf("after last row err = %v, want EOF", err)
	}
}

func TestCSVRejectsWrongHeader(t *testing.T) {
	if _, err := NewCSVReader(bytes.NewReader([]byte("a,b,c\n"))); err == nil {
		t.Error("bad header accepted")
	}
}

func TestRecordDay(t *testing.T) {
	r := Record{Start: time.Date(2015, 6, 12, 23, 59, 59, 0, time.UTC)}
	want := time.Date(2015, 6, 12, 0, 0, 0, 0, time.UTC)
	if !r.Day().Equal(want) {
		t.Errorf("Day() = %v, want %v", r.Day(), want)
	}
}

func TestWebProtoStrings(t *testing.T) {
	cases := map[WebProto]string{
		WebHTTP: "HTTP", WebTLS: "TLS", WebSPDY: "SPDY", WebHTTP2: "HTTP/2",
		WebQUIC: "QUIC", WebFBZero: "FB-ZERO", WebP2P: "P2P", WebDNS: "DNS", WebOther: "OTHER",
	}
	for w, want := range cases {
		if got := w.String(); got != want {
			t.Errorf("%d.String() = %q, want %q", w, got, want)
		}
	}
}

func TestStoreWriteReadDay(t *testing.T) {
	s, err := OpenStore(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	day := time.Date(2014, 4, 2, 0, 0, 0, 0, time.UTC)
	w, err := s.CreateDay(day)
	if err != nil {
		t.Fatal(err)
	}
	rec := sampleRecord()
	rec.Start = day.Add(10 * time.Hour)
	const n = 50
	for i := 0; i < n; i++ {
		rec.SubID = uint32(i)
		if err := w.Write(&rec); err != nil {
			t.Fatal(err)
		}
	}
	if w.Count() != n {
		t.Errorf("Count = %d, want %d", w.Count(), n)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}

	var got int
	err = s.ReadDay(day, func(r *Record) error {
		if r.SubID != uint32(got) {
			t.Errorf("record %d: SubID = %d", got, r.SubID)
		}
		got++
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if got != n {
		t.Errorf("read %d records, want %d", got, n)
	}
}

func TestStoreRejectsWrongDay(t *testing.T) {
	s, err := OpenStore(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	day := time.Date(2014, 4, 2, 0, 0, 0, 0, time.UTC)
	w, err := s.CreateDay(day)
	if err != nil {
		t.Fatal(err)
	}
	defer w.Close()
	rec := sampleRecord()
	rec.Start = day.Add(25 * time.Hour) // next day
	if err := w.Write(&rec); err == nil {
		t.Error("cross-day write accepted")
	}
}

func TestStoreMissingDay(t *testing.T) {
	s, err := OpenStore(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	day := time.Date(2014, 4, 2, 0, 0, 0, 0, time.UTC)
	err = s.ReadDay(day, func(*Record) error { return nil })
	if !errors.Is(err, ErrNoDay) {
		t.Errorf("err = %v, want ErrNoDay", err)
	}
	if s.HasDay(day) {
		t.Error("HasDay true for missing day")
	}
}

func TestStoreDaysSorted(t *testing.T) {
	s, err := OpenStore(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	want := []time.Time{
		time.Date(2013, 7, 1, 0, 0, 0, 0, time.UTC),
		time.Date(2014, 4, 2, 0, 0, 0, 0, time.UTC),
		time.Date(2017, 12, 31, 0, 0, 0, 0, time.UTC),
	}
	// Create out of order.
	for _, d := range []time.Time{want[1], want[2], want[0]} {
		w, err := s.CreateDay(d)
		if err != nil {
			t.Fatal(err)
		}
		rec := sampleRecord()
		rec.Start = d.Add(time.Hour)
		if err := w.Write(&rec); err != nil {
			t.Fatal(err)
		}
		if err := w.Close(); err != nil {
			t.Fatal(err)
		}
	}
	days, err := s.Days()
	if err != nil {
		t.Fatal(err)
	}
	if len(days) != len(want) {
		t.Fatalf("Days() = %v", days)
	}
	for i := range want {
		if !days[i].Equal(want[i]) {
			t.Errorf("days[%d] = %v, want %v", i, days[i], want[i])
		}
	}
	for _, d := range want {
		if !s.HasDay(d) {
			t.Errorf("HasDay(%v) = false", d)
		}
	}
}

func TestReadDayStopsOnCallbackError(t *testing.T) {
	s, err := OpenStore(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	day := time.Date(2016, 1, 1, 0, 0, 0, 0, time.UTC)
	w, err := s.CreateDay(day)
	if err != nil {
		t.Fatal(err)
	}
	rec := sampleRecord()
	rec.Start = day.Add(time.Hour)
	for i := 0; i < 10; i++ {
		if err := w.Write(&rec); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	sentinel := errors.New("stop here")
	count := 0
	err = s.ReadDay(day, func(*Record) error {
		count++
		if count == 3 {
			return sentinel
		}
		return nil
	})
	if !errors.Is(err, sentinel) {
		t.Errorf("err = %v, want sentinel", err)
	}
	if count != 3 {
		t.Errorf("callback ran %d times, want 3", count)
	}
}

func BenchmarkEncode(b *testing.B) {
	enc, err := NewEncoder(io.Discard)
	if err != nil {
		b.Fatal(err)
	}
	rec := sampleRecord()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if err := enc.Encode(&rec); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkDecode(b *testing.B) {
	var buf bytes.Buffer
	enc, err := NewEncoder(&buf)
	if err != nil {
		b.Fatal(err)
	}
	rec := sampleRecord()
	for i := 0; i < 1000; i++ {
		if err := enc.Encode(&rec); err != nil {
			b.Fatal(err)
		}
	}
	if err := enc.Flush(); err != nil {
		b.Fatal(err)
	}
	data := buf.Bytes()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		dec, err := NewDecoder(bytes.NewReader(data))
		if err != nil {
			b.Fatal(err)
		}
		var r Record
		for {
			if err := dec.Decode(&r); err != nil {
				if errors.Is(err, io.EOF) {
					break
				}
				b.Fatal(err)
			}
		}
	}
}

// BenchmarkCodecDecode decodes a stream with the string variety a real
// day has — a handful of distinct server names, ALPNs and QUIC
// versions repeated across many records — so it exercises the
// decoder's intern table rather than a single cached string.
func BenchmarkCodecDecode(b *testing.B) {
	names := []string{
		"www.netflix.com", "r3---sn-hpa7kn7s.googlevideo.com",
		"scontent.xx.fbcdn.net", "api.whatsapp.com", "www.bing.com",
	}
	alpns := []string{"h2", "http/1.1", "spdy/3.1"}
	vers := []string{"Q035", "Q039", ""}
	var buf bytes.Buffer
	enc, err := NewEncoder(&buf)
	if err != nil {
		b.Fatal(err)
	}
	rec := sampleRecord()
	const nrec = 1000
	for i := 0; i < nrec; i++ {
		rec.ServerName = names[i%len(names)]
		rec.ALPN = alpns[i%len(alpns)]
		rec.QUICVer = vers[i%len(vers)]
		if err := enc.Encode(&rec); err != nil {
			b.Fatal(err)
		}
	}
	if err := enc.Flush(); err != nil {
		b.Fatal(err)
	}
	data := buf.Bytes()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		dec, err := NewDecoder(bytes.NewReader(data))
		if err != nil {
			b.Fatal(err)
		}
		var r Record
		n := 0
		for {
			if err := dec.Decode(&r); err != nil {
				if errors.Is(err, io.EOF) {
					break
				}
				b.Fatal(err)
			}
			n++
		}
		if n != nrec {
			b.Fatalf("decoded %d records", n)
		}
	}
	b.ReportMetric(nrec, "records/op")
}
