package flowrec

import (
	"errors"
	"io"
	"math/rand"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"
	"time"
)

// v2 columnar store tests: round-trip fidelity, format auto-detection,
// column pruning, predicate pushdown (block skipping), parallel decode
// ordering, and damage handling — the contract ReadDayCols promises.

var colTestDay = time.Date(2016, 11, 12, 0, 0, 0, 0, time.UTC)

// dayRecords draws n random records pinned inside day, with Start
// increasing — the natural order a probe writes, which is what makes
// per-block Start stats selective. Starts are millisecond-granular,
// the codecs' wire precision.
func dayRecords(rng *rand.Rand, day time.Time, n int) []Record {
	recs := make([]Record, n)
	stepMs := (24 * time.Hour).Milliseconds() / int64(n+1)
	for i := range recs {
		recs[i] = randomRecord(rng)
		recs[i].Start = day.Add(time.Duration(int64(i)*stepMs+rng.Int63n(stepMs)) * time.Millisecond)
	}
	return recs
}

// writeDayRecords materialises recs as one day log in a store.
func writeDayRecords(t *testing.T, s *Store, day time.Time, recs []Record) {
	t.Helper()
	w, err := s.CreateDay(day)
	if err != nil {
		t.Fatal(err)
	}
	for i := range recs {
		if err := w.Write(&recs[i]); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
}

// readAll collects a day's records through the given scan.
func readAll(t *testing.T, s *Store, day time.Time, sc ColScan) []Record {
	t.Helper()
	var out []Record
	err := s.ReadDayCols(day, sc, func(r *Record) error {
		out = append(out, *r)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	return out
}

func TestV2StoreRoundTrip(t *testing.T) {
	s, err := OpenStoreFormat(t.TempDir(), FormatV2)
	if err != nil {
		t.Fatal(err)
	}
	if s.Format() != FormatV2 {
		t.Fatalf("Format() = %v", s.Format())
	}
	want := dayRecords(rand.New(rand.NewSource(1)), colTestDay, 1000)
	writeDayRecords(t, s, colTestDay, want)

	var got []Record
	err = s.ReadDay(colTestDay, func(r *Record) error { // auto-detects v2
		got = append(got, *r)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(want) {
		t.Fatalf("read %d records, want %d", len(got), len(want))
	}
	for i := range want {
		if !reflect.DeepEqual(got[i], want[i]) {
			t.Fatalf("record %d mismatch:\n got %+v\nwant %+v", i, got[i], want[i])
		}
	}
}

func TestV2MultiBlockRoundTrip(t *testing.T) {
	s, err := OpenStoreFormat(t.TempDir(), FormatV2)
	if err != nil {
		t.Fatal(err)
	}
	// Straddle two block boundaries so flush/decode of both full and
	// short final blocks is exercised.
	want := dayRecords(rand.New(rand.NewSource(2)), colTestDay, 2*colBlockRows+123)
	writeDayRecords(t, s, colTestDay, want)

	got := readAll(t, s, colTestDay, ColScan{})
	if len(got) != len(want) {
		t.Fatalf("read %d records, want %d", len(got), len(want))
	}
	for i := range want {
		if !reflect.DeepEqual(got[i], want[i]) {
			t.Fatalf("record %d mismatch:\n got %+v\nwant %+v", i, got[i], want[i])
		}
	}
}

// TestAutoDetectMixedLake: one lake directory holding a v1 day and a
// v2 day reads transparently through the same store handle.
func TestAutoDetectMixedLake(t *testing.T) {
	dir := t.TempDir()
	s1, err := OpenStoreFormat(dir, FormatV1)
	if err != nil {
		t.Fatal(err)
	}
	s2, err := OpenStoreFormat(dir, FormatV2)
	if err != nil {
		t.Fatal(err)
	}
	day1 := colTestDay
	day2 := colTestDay.AddDate(0, 0, 1)
	rng := rand.New(rand.NewSource(3))
	recs1 := dayRecords(rng, day1, 200)
	recs2 := dayRecords(rng, day2, 200)
	writeDayRecords(t, s1, day1, recs1)
	writeDayRecords(t, s2, day2, recs2)

	for _, c := range []struct {
		day  time.Time
		want []Record
	}{{day1, recs1}, {day2, recs2}} {
		got := readAll(t, s1, c.day, ColScan{}) // either handle reads both
		if len(got) != len(c.want) {
			t.Fatalf("%s: read %d records, want %d", c.day.Format("2006-01-02"), len(got), len(c.want))
		}
		for i := range c.want {
			if !reflect.DeepEqual(got[i], c.want[i]) {
				t.Fatalf("%s: record %d mismatch", c.day.Format("2006-01-02"), i)
			}
		}
	}
}

// TestReadDayColsPrunesUnrequested: a narrow projection yields records
// whose unrequested fields are zero — those columns were never decoded.
func TestReadDayColsPrunesUnrequested(t *testing.T) {
	s, err := OpenStoreFormat(t.TempDir(), FormatV2)
	if err != nil {
		t.Fatal(err)
	}
	full := dayRecords(rand.New(rand.NewSource(4)), colTestDay, 500)
	writeDayRecords(t, s, colTestDay, full)

	pruned0, decoded0 := mBytesPruned.Load(), mBytesDecoded.Load()
	got := readAll(t, s, colTestDay, ColScan{Cols: Cols(ColSubID, ColBytesDown)})
	if len(got) != len(full) {
		t.Fatalf("read %d records, want %d", len(got), len(full))
	}
	for i := range full {
		want := Record{SubID: full[i].SubID, BytesDown: full[i].BytesDown}
		if !reflect.DeepEqual(got[i], want) {
			t.Fatalf("record %d not pruned to projection:\n got %+v\nwant %+v", i, got[i], want)
		}
	}
	if d := mBytesPruned.Load() - pruned0; d == 0 {
		t.Error("pruned_bytes did not advance on a narrow scan")
	}
	if mBytesDecoded.Load()-decoded0 >= mBytesPruned.Load()-pruned0 {
		t.Error("narrow 2-column scan decoded more bytes than it pruned")
	}
}

// TestReadDayColsPredPushdown: a Start-range predicate skips whole
// blocks on their min/max stats, and the surviving records are exactly
// the full scan filtered per record. The same predicate on a v1 file
// yields the identical record set (filtered after decode).
func TestReadDayColsPredPushdown(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	recs := dayRecords(rng, colTestDay, 2*colBlockRows+1000)
	dirV2, dirV1 := t.TempDir(), t.TempDir()
	sv2, err := OpenStoreFormat(dirV2, FormatV2)
	if err != nil {
		t.Fatal(err)
	}
	sv1, err := OpenStoreFormat(dirV1, FormatV1)
	if err != nil {
		t.Fatal(err)
	}
	writeDayRecords(t, sv2, colTestDay, recs)
	writeDayRecords(t, sv1, colTestDay, recs)

	pred := &Pred{StartMin: colTestDay.Add(21 * time.Hour)}
	var want []Record
	for i := range recs {
		if pred.Match(&recs[i]) {
			want = append(want, recs[i])
		}
	}
	if len(want) == 0 || len(want) == len(recs) {
		t.Fatalf("degenerate predicate: %d of %d match", len(want), len(recs))
	}

	skipped0 := mBlocksSkipped.Load()
	got := readAll(t, sv2, colTestDay, ColScan{Pred: pred})
	if d := mBlocksSkipped.Load() - skipped0; d < 1 {
		t.Errorf("blocks_skipped advanced by %d, want >= 1 (records are time-ordered)", d)
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("v2 predicate scan: %d records, want %d (or content mismatch)", len(got), len(want))
	}

	gotV1 := readAll(t, sv1, colTestDay, ColScan{Pred: pred})
	if !reflect.DeepEqual(gotV1, want) {
		t.Fatalf("v1 predicate scan: %d records, want %d (or content mismatch)", len(gotV1), len(want))
	}

	// Predicate columns populate even when the projection omits them:
	// SrvPort must carry real values or Match would see zeros.
	portPred := &Pred{HasSrvPort: true, SrvPortLo: 0, SrvPortHi: 65535}
	narrow := readAll(t, sv2, colTestDay, ColScan{Cols: Cols(ColSubID), Pred: portPred})
	if len(narrow) != len(recs) {
		t.Fatalf("full-range port predicate dropped records: %d of %d", len(narrow), len(recs))
	}
}

// TestReadDayColsParallelOrder: any worker count delivers the same
// records in the same (file) order as the serial scan.
func TestReadDayColsParallelOrder(t *testing.T) {
	s, err := OpenStoreFormat(t.TempDir(), FormatV2)
	if err != nil {
		t.Fatal(err)
	}
	recs := dayRecords(rand.New(rand.NewSource(6)), colTestDay, 3*colBlockRows+77)
	writeDayRecords(t, s, colTestDay, recs)

	serial := readAll(t, s, colTestDay, ColScan{Workers: 1})
	for _, workers := range []int{2, 4, 8} {
		par := readAll(t, s, colTestDay, ColScan{Workers: workers})
		if !reflect.DeepEqual(par, serial) {
			t.Fatalf("workers=%d delivered different records or order", workers)
		}
	}
}

// TestV2FnErrorsPropagateUnwrapped: like ReadDay always has, a
// callback error returns verbatim (callers compare sentinels) and
// stops the scan early — serial and parallel alike.
func TestV2FnErrorsPropagateUnwrapped(t *testing.T) {
	s, err := OpenStoreFormat(t.TempDir(), FormatV2)
	if err != nil {
		t.Fatal(err)
	}
	writeDayRecords(t, s, colTestDay, dayRecords(rand.New(rand.NewSource(7)), colTestDay, colBlockRows+50))
	sentinel := errors.New("stop here")
	for _, workers := range []int{1, 4} {
		n := 0
		err := s.ReadDayCols(colTestDay, ColScan{Workers: workers}, func(*Record) error {
			n++
			if n == 5 {
				return sentinel
			}
			return nil
		})
		if err != sentinel {
			t.Errorf("workers=%d: err = %v, want the sentinel, unwrapped", workers, err)
		}
		if n != 5 {
			t.Errorf("workers=%d: callback ran %d times, want 5", workers, n)
		}
	}
}

// TestV2DamagedFileFailsLoudly: truncation and bitflips surface as
// errors (classified corrupt), never as silently short or garbled
// record streams; days_read stays untouched.
func TestV2DamagedFileFailsLoudly(t *testing.T) {
	cases := []struct {
		name   string
		damage func([]byte) []byte
	}{
		{"truncated", func(b []byte) []byte { return b[:len(b)/2] }},
		{"bitflip", func(b []byte) []byte { b[len(b)/2] ^= 0x40; return b }},
		{"truncated trailer", func(b []byte) []byte { return b[:len(b)-4] }},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			s, err := OpenStoreFormat(t.TempDir(), FormatV2)
			if err != nil {
				t.Fatal(err)
			}
			writeDayRecords(t, s, colTestDay, dayRecords(rand.New(rand.NewSource(8)), colTestDay, 2000))
			path := s.dayPath(colTestDay)
			data, err := os.ReadFile(path)
			if err != nil {
				t.Fatal(err)
			}
			if err := os.WriteFile(path, tc.damage(data), 0o644); err != nil {
				t.Fatal(err)
			}
			read0, corrupt0 := mDaysRead.Load(), mCorruptRecords.Load()
			err = s.ReadDay(colTestDay, func(*Record) error { return nil })
			if err == nil {
				t.Fatal("damaged v2 log read without error")
			}
			if mDaysRead.Load() != read0 {
				t.Error("days_read advanced on a failed read")
			}
			if mCorruptRecords.Load() == corrupt0 {
				t.Error("corrupt_records did not advance")
			}
		})
	}
}

// TestV2OversizeStringRejected: the columnar encoder applies the same
// write-time bound the row codec does — an absurd string field is
// refused (counted), not persisted for every future reader to choke on.
func TestV2OversizeStringRejected(t *testing.T) {
	s, err := OpenStoreFormat(t.TempDir(), FormatV2)
	if err != nil {
		t.Fatal(err)
	}
	w, err := s.CreateDay(colTestDay)
	if err != nil {
		t.Fatal(err)
	}
	defer w.Close()
	rec := sampleRecord()
	rec.Start = colTestDay.Add(time.Hour)
	rec.ServerName = strings.Repeat("x", maxDictEntryLen+1)
	over0 := mOversizeRecords.Load()
	if err := w.Write(&rec); !errors.Is(err, ErrOversize) {
		t.Fatalf("err = %v, want ErrOversize", err)
	}
	if mOversizeRecords.Load() != over0+1 {
		t.Error("oversize_records did not advance")
	}
}

// TestEncodeOversizeBoundary pins the v1 encode-time bound exactly: the
// largest record the codec accepts round-trips, one byte more is
// ErrOversize — enforced at write time, where the bad record still has
// a name, instead of at read time five years later.
func TestEncodeOversizeBoundary(t *testing.T) {
	encodes := func(nameLen int) error {
		enc, err := NewEncoder(io.Discard)
		if err != nil {
			t.Fatal(err)
		}
		rec := sampleRecord()
		rec.ServerName = strings.Repeat("n", nameLen)
		return enc.Encode(&rec)
	}
	// Binary search the largest accepted name length; the encoded size
	// grows by exactly one byte per name byte in this region.
	lo, hi := 0, maxEncodedRecord+1 // lo accepted, hi rejected
	if encodes(lo) != nil || encodes(hi) == nil {
		t.Fatal("search bounds do not bracket the boundary")
	}
	for hi-lo > 1 {
		mid := (lo + hi) / 2
		if encodes(mid) == nil {
			lo = mid
		} else {
			hi = mid
		}
	}
	over0 := mOversizeRecords.Load()
	if err := encodes(hi); !errors.Is(err, ErrOversize) {
		t.Fatalf("one past the boundary: err = %v, want ErrOversize", err)
	}
	if mOversizeRecords.Load() == over0 {
		t.Error("oversize_records did not advance")
	}

	// The boundary record itself must round-trip: encode enforces the
	// same bound decode checks, so the accepted maximum is readable.
	var buf strings.Builder
	enc, err := NewEncoder(&buf)
	if err != nil {
		t.Fatal(err)
	}
	want := sampleRecord()
	want.ServerName = strings.Repeat("n", lo)
	if err := enc.Encode(&want); err != nil {
		t.Fatalf("boundary record rejected: %v", err)
	}
	if err := enc.Flush(); err != nil {
		t.Fatal(err)
	}
	dec, err := NewDecoder(strings.NewReader(buf.String()))
	if err != nil {
		t.Fatal(err)
	}
	var got Record
	if err := dec.Decode(&got); err != nil {
		t.Fatalf("boundary record does not decode: %v", err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Error("boundary record round-trip mismatch")
	}
}

// TestDaysReadCountsCleanEOFOnly documents the read-metric semantics
// for both formats: store.days_read advances only when a day's stream
// ends cleanly (records + gzip trailer intact), while store.bytes_read
// counts the compressed bytes actually consumed — it advances even on
// a read that fails partway, because those bytes were paid for.
func TestDaysReadCountsCleanEOFOnly(t *testing.T) {
	for _, format := range []Format{FormatV1, FormatV2} {
		t.Run(format.String(), func(t *testing.T) {
			s, err := OpenStoreFormat(t.TempDir(), format)
			if err != nil {
				t.Fatal(err)
			}
			writeDayRecords(t, s, colTestDay, dayRecords(rand.New(rand.NewSource(9)), colTestDay, 3000))

			read0, bytes0 := mDaysRead.Load(), mBytesRead.Load()
			if err := s.ReadDay(colTestDay, func(*Record) error { return nil }); err != nil {
				t.Fatal(err)
			}
			if d := mDaysRead.Load() - read0; d != 1 {
				t.Errorf("clean read advanced days_read by %d, want 1", d)
			}
			if mBytesRead.Load() == bytes0 {
				t.Error("clean read did not advance bytes_read")
			}

			// Damage the tail: the decode consumes most of the stream and
			// then fails — no days_read, but the consumed bytes count.
			path := s.dayPath(colTestDay)
			data, err := os.ReadFile(path)
			if err != nil {
				t.Fatal(err)
			}
			if err := os.WriteFile(path, data[:len(data)-4], 0o644); err != nil {
				t.Fatal(err)
			}
			read1, bytes1 := mDaysRead.Load(), mBytesRead.Load()
			if err := s.ReadDay(colTestDay, func(*Record) error { return nil }); err == nil {
				t.Fatal("damaged day read cleanly")
			}
			if mDaysRead.Load() != read1 {
				t.Error("failed read advanced days_read")
			}
			if mBytesRead.Load() == bytes1 {
				t.Error("failed read did not account its consumed bytes")
			}
		})
	}
}

// TestDaysSkipsNonCanonicalNames: stray files whose names Sscanf
// happily parses but which are not canonical dates (month 0, Feb 30)
// must not list — time.Date would normalise them onto some other real
// day and alias it.
func TestDaysSkipsNonCanonicalNames(t *testing.T) {
	s, err := OpenStore(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	day := time.Date(2015, 2, 3, 0, 0, 0, 0, time.UTC)
	writeDayRecords(t, s, day, dayRecords(rand.New(rand.NewSource(10)), day, 5))

	dir := filepath.Join(s.Root(), "2015", "02")
	for _, name := range []string{
		"flows-20150230.efl.gz", // Feb 30 → would normalise to Mar 2
		"flows-20150003.efl.gz", // month 0
		"flows-20151332.efl.gz", // month 13, day 32
		"flows-00000000.efl.gz", // all zero
		"notes.txt",             // not a log at all
	} {
		if err := os.WriteFile(filepath.Join(dir, name), []byte("junk"), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	days, err := s.Days()
	if err != nil {
		t.Fatal(err)
	}
	if len(days) != 1 || !days[0].Equal(day) {
		t.Fatalf("Days() = %v, want exactly [%s]", days, day.Format("2006-01-02"))
	}
}
