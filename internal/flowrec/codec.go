package flowrec

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"time"
)

// The binary codec: a stream of length-prefixed records after a small
// magic header. Integers are varint-encoded because flow counters are
// heavily skewed toward small values; this roughly halves log size
// before gzip.

// codecMagic guards against feeding the reader a non-log file.
var codecMagic = [4]byte{'e', 'f', 'l', '1'}

// Errors returned by the codec.
var (
	ErrBadMagic = errors.New("flowrec: not a flow log (bad magic)")
	ErrCorrupt  = errors.New("flowrec: corrupt record")
	// ErrOversize rejects a record at encode time whose wire size
	// exceeds what any decoder would accept. Writers must fail fast:
	// an oversized record that reached disk would make the whole day
	// read as corrupt and get quarantined.
	ErrOversize = errors.New("flowrec: record exceeds max encoded size")
)

// maxEncodedRecord bounds a single record's wire size; anything larger
// is corruption, not data.
const maxEncodedRecord = 1 << 16

// Encoder writes records to an underlying writer in binary format.
type Encoder struct {
	w     *bufio.Writer
	buf   []byte
	count uint64
}

// NewEncoder writes the stream header and returns an encoder.
func NewEncoder(w io.Writer) (*Encoder, error) {
	bw := bufio.NewWriterSize(w, 1<<16)
	if _, err := bw.Write(codecMagic[:]); err != nil {
		return nil, fmt.Errorf("flowrec: writing magic: %w", err)
	}
	return &Encoder{w: bw}, nil
}

// Count reports how many records were encoded.
func (e *Encoder) Count() uint64 { return e.count }

// Encode appends one record to the stream.
func (e *Encoder) Encode(r *Record) error {
	b := e.buf[:0]
	b = append(b, r.Client[:]...)
	b = append(b, r.Server[:]...)
	b = binary.BigEndian.AppendUint16(b, r.CliPort)
	b = binary.BigEndian.AppendUint16(b, r.SrvPort)
	b = append(b, byte(r.Proto), byte(r.Tech), byte(r.Web), byte(r.NameSrc))
	b = binary.AppendUvarint(b, uint64(r.SubID))
	b = binary.AppendUvarint(b, uint64(r.Start.UnixMilli()))
	b = binary.AppendUvarint(b, uint64(r.Duration/time.Millisecond))
	b = binary.AppendUvarint(b, uint64(r.PktsUp))
	b = binary.AppendUvarint(b, uint64(r.PktsDown))
	b = binary.AppendUvarint(b, r.BytesUp)
	b = binary.AppendUvarint(b, r.BytesDown)
	b = appendString(b, r.ServerName)
	b = appendString(b, r.ALPN)
	b = appendString(b, r.QUICVer)
	b = binary.AppendUvarint(b, uint64(r.RTTMin/time.Microsecond))
	b = binary.AppendUvarint(b, uint64(r.RTTAvg/time.Microsecond))
	b = binary.AppendUvarint(b, uint64(r.RTTMax/time.Microsecond))
	b = binary.AppendUvarint(b, uint64(r.RTTSamples))
	e.buf = b

	// Enforce the decoder's bound at write time: an oversized record
	// (a hostile or fuzzed server name) must error here, not write a
	// day log the reader will reject wholesale as corrupt.
	if len(b) > maxEncodedRecord {
		mOversizeRecords.Inc()
		return fmt.Errorf("flowrec: encoded record of %d bytes (max %d): %w",
			len(b), maxEncodedRecord, ErrOversize)
	}

	var lenBuf [binary.MaxVarintLen32]byte
	n := binary.PutUvarint(lenBuf[:], uint64(len(b)))
	if _, err := e.w.Write(lenBuf[:n]); err != nil {
		return fmt.Errorf("flowrec: writing record length: %w", err)
	}
	if _, err := e.w.Write(b); err != nil {
		return fmt.Errorf("flowrec: writing record: %w", err)
	}
	e.count++
	return nil
}

// Flush pushes buffered bytes to the underlying writer.
func (e *Encoder) Flush() error { return e.w.Flush() }

func appendString(b []byte, s string) []byte {
	b = binary.AppendUvarint(b, uint64(len(s)))
	return append(b, s...)
}

// internCap bounds the decoder's string-intern table. A day file
// repeats a few hundred distinct server names / ALPN tags / QUIC
// versions across millions of records; the cap only guards against a
// pathological stream of unique names.
const internCap = 4096

// Decoder reads records written by Encoder.
type Decoder struct {
	r    *bufio.Reader
	buf  []byte
	strs map[string]string // interned ServerName/ALPN/QUICVer values

	// lastSize is the body size of the most recent record, for the
	// store's decoded-byte accounting.
	lastSize uint64
}

// NewDecoder validates the stream header and returns a decoder.
func NewDecoder(r io.Reader) (*Decoder, error) {
	br := bufio.NewReaderSize(r, 1<<16)
	var magic [4]byte
	if _, err := io.ReadFull(br, magic[:]); err != nil {
		return nil, fmt.Errorf("flowrec: reading magic: %w", err)
	}
	if magic != codecMagic {
		return nil, ErrBadMagic
	}
	return &Decoder{r: br, strs: make(map[string]string, 256)}, nil
}

// Decode reads the next record into r. It returns io.EOF cleanly at
// end of stream.
func (d *Decoder) Decode(r *Record) error {
	size, err := binary.ReadUvarint(d.r)
	if err != nil {
		if errors.Is(err, io.EOF) {
			return io.EOF
		}
		return fmt.Errorf("flowrec: reading record length: %w", err)
	}
	if size > maxEncodedRecord {
		return fmt.Errorf("flowrec: record size %d: %w", size, ErrCorrupt)
	}
	d.lastSize = size
	if cap(d.buf) < int(size) {
		d.buf = make([]byte, size)
	}
	b := d.buf[:size]
	if _, err := io.ReadFull(d.r, b); err != nil {
		return fmt.Errorf("flowrec: reading record body: %w", err)
	}
	return d.decodeBody(b, r)
}

func (d *Decoder) decodeBody(b []byte, r *Record) error {
	if len(b) < 16 {
		return fmt.Errorf("flowrec: record body %d bytes: %w", len(b), ErrCorrupt)
	}
	copy(r.Client[:], b[0:4])
	copy(r.Server[:], b[4:8])
	r.CliPort = binary.BigEndian.Uint16(b[8:10])
	r.SrvPort = binary.BigEndian.Uint16(b[10:12])
	r.Proto = Proto(b[12])
	r.Tech = AccessTech(b[13])
	r.Web = WebProto(b[14])
	r.NameSrc = NameSource(b[15])
	b = b[16:]

	var ok bool
	var u uint64
	next := func() uint64 {
		var n int
		u, n = binary.Uvarint(b)
		if n <= 0 {
			ok = false
			return 0
		}
		b = b[n:]
		return u
	}
	ok = true
	r.SubID = uint32(next())
	r.Start = time.UnixMilli(int64(next())).UTC()
	r.Duration = time.Duration(next()) * time.Millisecond
	r.PktsUp = uint32(next())
	r.PktsDown = uint32(next())
	r.BytesUp = next()
	r.BytesDown = next()
	nextStr := func() string {
		l := next()
		if !ok || uint64(len(b)) < l {
			ok = false
			return ""
		}
		var s string
		if l > 0 {
			// The map lookup with a string(bytes) key compiles to a
			// no-allocation probe; only a miss materialises the string.
			if hit, found := d.strs[string(b[:l])]; found {
				s = hit
			} else {
				s = string(b[:l])
				if len(d.strs) < internCap {
					d.strs[s] = s
				}
			}
		}
		b = b[l:]
		return s
	}
	r.ServerName = nextStr()
	r.ALPN = nextStr()
	r.QUICVer = nextStr()
	r.RTTMin = time.Duration(next()) * time.Microsecond
	r.RTTAvg = time.Duration(next()) * time.Microsecond
	r.RTTMax = time.Duration(next()) * time.Microsecond
	r.RTTSamples = uint32(next())
	if !ok {
		return fmt.Errorf("flowrec: varint fields: %w", ErrCorrupt)
	}
	return nil
}
