package flowrec

import (
	"bufio"
	"compress/gzip"
	"errors"
	"fmt"
	"io"
	"os"
	"sync"
	"time"

	"repro/internal/metrics"
	"repro/internal/zpool"
)

// Column-scan observability: how much the v2 read path actually
// prunes. decoded_bytes counts payload bytes materialised into
// records (v1: encoded record bodies; v2: column payloads decoded);
// pruned_bytes counts v2 column payloads skipped without decoding —
// unrequested columns and stat-excluded blocks.
var (
	mBlocksRead    = metrics.GetCounter("store.blocks_read")
	mBlocksSkipped = metrics.GetCounter("store.blocks_skipped")
	mBytesDecoded  = metrics.GetCounter("store.decoded_bytes")
	mBytesPruned   = metrics.GetCounter("store.pruned_bytes")
)

// Format selects the on-disk day-log encoding.
type Format uint8

const (
	// FormatV1 is the row codec: a gzip stream of length-prefixed
	// records (magic "efl1"). The zero value, and the default.
	FormatV1 Format = iota
	// FormatV2 is the columnar codec: gzip blocks of per-column
	// streams with min/max stats (magic "eflc"), readable with column
	// pruning and predicate pushdown via ReadDayCols.
	FormatV2
	// FormatV3 is the columnar codec with per-block compression (magic
	// "efl3", no file-level gzip): pushdown skips blocks without
	// inflating them, and block decompression parallelises across
	// sc.Workers.
	FormatV3
)

// ParseFormat parses "v1", "v2" or "v3".
func ParseFormat(s string) (Format, error) {
	switch s {
	case "v1":
		return FormatV1, nil
	case "v2":
		return FormatV2, nil
	case "v3":
		return FormatV3, nil
	}
	return FormatV1, fmt.Errorf("flowrec: unknown store format %q (want v1, v2 or v3)", s)
}

func (f Format) String() string {
	switch f {
	case FormatV2:
		return "v2"
	case FormatV3:
		return "v3"
	}
	return "v1"
}

// OpenStoreFormat opens (creating if needed) a store rooted at dir
// whose CreateDay writes the given format. Reading auto-detects each
// file's format by magic, so a store may hold a mix of both.
func OpenStoreFormat(dir string, format Format) (*Store, error) {
	s, err := OpenStore(dir)
	if err != nil {
		return nil, err
	}
	s.format = format
	return s, nil
}

// Format returns the format CreateDay writes.
func (s *Store) Format() Format { return s.format }

// ReadDayCols streams one day's records through a column-projected,
// predicate-filtered scan. Only the columns in sc.Cols (plus those the
// predicate reads) are guaranteed populated — on v2 files the rest are
// never decoded, and blocks whose min/max stats cannot satisfy sc.Pred
// are skipped wholesale. fn only sees records matching sc.Pred. On v1
// files the scan degrades to a full decode with a per-record filter,
// so the records fn observes are identical for either format. Like
// ReadDay, iteration stops at fn's first error, which is returned.
func (s *Store) ReadDayCols(day time.Time, sc ColScan, fn func(*Record) error) error {
	path := s.dayPath(day)
	f, err := os.Open(path)
	if err != nil {
		if os.IsNotExist(err) {
			mDaysMissing.Inc()
			return fmt.Errorf("%w: %s", ErrNoDay, day.UTC().Format("2006-01-02"))
		}
		return fmt.Errorf("flowrec: opening day log: %w", err)
	}
	defer f.Close()
	// Per-day counts accumulate locally and publish once: the decode
	// loop is the stage-one hot path. days_read is deliberately NOT
	// part of this deferred publish — a day counts as read only when
	// its stream ends cleanly (see the EOF paths below), so corrupt
	// days never inflate read-throughput metrics.
	var nRecs, nBytes uint64
	defer func() {
		mRecordsRead.Add(nRecs)
		mBytesRead.Add(nBytes)
	}()
	cr := &countingReader{r: f}
	defer func() { nBytes = cr.n }()
	// v1/v2 files are gzip-wrapped whole; v3 files are raw so their
	// blocks can inflate independently. Peek the physical leading bytes
	// to pick the path: gzip magic vs "efl3".
	raw := bufio.NewReaderSize(cr, 1<<16)
	head, err := raw.Peek(4)
	if err != nil {
		mCorruptRecords.Inc()
		if err == io.EOF && len(head) > 0 {
			err = io.ErrUnexpectedEOF
		}
		return fmt.Errorf("flowrec: %s: %w", path, err)
	}
	if [4]byte(head) == colMagicV3 {
		err = s.readDayV3(raw, sc, fn, &nRecs)
		return wrapScanErr(path, err)
	}
	if head[0] != 0x1f || head[1] != 0x8b {
		// Neither a v3 file nor a gzip stream: the same damage class
		// gzip.NewReader used to classify for us.
		mCorruptRecords.Inc()
		return fmt.Errorf("flowrec: %s: %w", path, gzip.ErrHeader)
	}
	gz, err := zpool.GzipReader(raw)
	if err != nil {
		mCorruptRecords.Inc()
		return fmt.Errorf("flowrec: %s: %w", path, err)
	}
	closed := false
	defer func() {
		if !closed {
			gz.Close()
		}
		zpool.PutGzipReader(gz)
	}()
	br := bufio.NewReaderSize(gz, 1<<16)
	magic, err := br.Peek(4)
	if err != nil {
		if err == io.EOF && len(magic) > 0 {
			err = io.ErrUnexpectedEOF
		}
		if isGzipDamage(err) {
			mCorruptRecords.Inc()
		}
		return fmt.Errorf("flowrec: %s: reading magic: %w", path, err)
	}
	switch {
	case [4]byte(magic) == colMagic:
		err = s.readDayV2(br, sc, fn, &nRecs, &closed, gz)
	case [4]byte(magic) == codecMagic:
		err = s.readDayV1(br, sc.Pred, fn, &nRecs, &closed, gz)
	default:
		return fmt.Errorf("flowrec: %s: %w", path, ErrBadMagic)
	}
	return wrapScanErr(path, err)
}

// wrapScanErr adds the file-path context to stream-level failures;
// fn's own errors pass through verbatim, as ReadDay always has
// (callers compare against their own sentinels).
func wrapScanErr(path string, err error) error {
	if err == nil {
		return nil
	}
	var fe fnErr
	if errors.As(err, &fe) {
		return fe.err
	}
	return fmt.Errorf("flowrec: %s: %w", path, err)
}

// fnErr marks an error returned by the caller's fn, which must
// propagate unwrapped (callers compare against their own sentinels).
type fnErr struct{ err error }

func (e fnErr) Error() string { return e.err.Error() }
func (e fnErr) Unwrap() error { return e.err }

// readDayV1 is the row-codec scan: full decode, per-record predicate.
func (s *Store) readDayV1(br *bufio.Reader, pred *Pred, fn func(*Record) error, nRecs *uint64, closed *bool, gz *gzip.Reader) error {
	dec, err := NewDecoder(br)
	if err != nil {
		return err
	}
	var payload uint64
	defer func() { mBytesDecoded.Add(payload) }()
	var rec Record
	for {
		rec = Record{}
		if err := dec.Decode(&rec); err != nil {
			if errors.Is(err, io.EOF) {
				// The records decoded cleanly, but a clean stream must
				// also end with an intact gzip trailer: Close is where
				// a truncated or checksum-damaged tail surfaces, and
				// swallowing it would let a corrupt day read as whole.
				*closed = true
				if cerr := gz.Close(); cerr != nil {
					mCorruptRecords.Inc()
					return fmt.Errorf("gzip trailer: %w", cerr)
				}
				mDaysRead.Inc()
				return nil
			}
			if errors.Is(err, ErrCorrupt) || isGzipDamage(err) {
				mCorruptRecords.Inc()
			}
			return err
		}
		payload += dec.lastSize
		if !pred.Match(&rec) {
			continue
		}
		*nRecs++
		if err := fn(&rec); err != nil {
			return fnErr{err}
		}
	}
}

// readDayV2 is the gzip-wrapped columnar scan: the raw block stream is
// inherently serial behind the one gzip reader, and a clean end of
// stream must also show an intact gzip trailer.
func (s *Store) readDayV2(br *bufio.Reader, sc ColScan, fn func(*Record) error, nRecs *uint64, closed *bool, gz *gzip.Reader) error {
	if _, err := br.Discard(4); err != nil { // the peeked magic
		return err
	}
	need := sc.Cols.Norm() | sc.Pred.Columns()
	cr := &colReader{br: br, need: need, pred: sc.Pred}
	// finish runs at a clean end of stream: every block decoded, gzip
	// trailer intact — only then does the day count as read.
	return s.scanBlocks(cr, sc, fn, nRecs, func() error {
		*closed = true
		if cerr := gz.Close(); cerr != nil {
			mCorruptRecords.Inc()
			return fmt.Errorf("gzip trailer: %w", cerr)
		}
		mDaysRead.Inc()
		return nil
	})
}

// readDayV3 is the per-block-compressed columnar scan. The stream end
// was already validated by the terminator (block and row counts plus
// hard EOF), so there is no trailer left to check.
func (s *Store) readDayV3(br *bufio.Reader, sc ColScan, fn func(*Record) error, nRecs *uint64) error {
	if _, err := br.Discard(4); err != nil { // the peeked magic
		return err
	}
	need := sc.Cols.Norm() | sc.Pred.Columns()
	cr := &colReader{br: br, need: need, pred: sc.Pred, v3: true}
	return s.scanBlocks(cr, sc, fn, nRecs, func() error {
		mDaysRead.Inc()
		return nil
	})
}

// scanBlocks drives a columnar scan over cr: blocks stream serially
// off the reader; decoding (and, for v3, per-block inflation) fans out
// over sc.Workers goroutines when asked, with delivery re-sequenced to
// file order so fn observes the same record order at any worker count.
// finish runs exactly once at a clean end of stream.
func (s *Store) scanBlocks(cr *colReader, sc ColScan, fn func(*Record) error, nRecs *uint64, finish func() error) error {
	defer func() {
		mBlocksRead.Add(cr.blocksRead)
		mBlocksSkipped.Add(cr.blocksSkipped)
		mBytesDecoded.Add(cr.bytesDecoded)
		mBytesPruned.Add(cr.bytesPruned)
	}()
	classify := func(err error) error {
		if errors.Is(err, ErrCorrupt) || isGzipDamage(err) {
			mCorruptRecords.Inc()
		}
		return err
	}
	deliver := func(recs []Record) error {
		for i := range recs {
			if !sc.Pred.Match(&recs[i]) {
				continue
			}
			*nRecs++
			if err := fn(&recs[i]); err != nil {
				return fnErr{err: err}
			}
		}
		return nil
	}

	if sc.Workers <= 1 {
		strs := make(map[string]string, 256)
		var inf colInflater
		var recs []Record
		for {
			b, err := cr.next()
			if err == io.EOF {
				return finish()
			}
			if err != nil {
				return classify(err)
			}
			if cap(recs) < b.rows {
				recs = make([]Record, b.rows)
			}
			recs = recs[:b.rows]
			for i := range recs {
				recs[i] = Record{}
			}
			err = decodeBlock(b, cr.need, recs, strs, &inf)
			b.release()
			if err != nil {
				return classify(err)
			}
			if err := deliver(recs); err != nil {
				return err
			}
		}
	}
	return s.readColsParallel(cr, sc.Workers, deliver, finish, classify)
}

// seqBlock pairs a raw block with its delivery sequence number.
type seqBlock struct {
	seq int
	b   *colBlock
}

// decoded is one worker's output: the block's records (backed by the
// pooled slice rp, returned once delivered), or its error.
type decoded struct {
	seq  int
	recs []Record
	rp   *[]Record
	err  error
}

// prodEnd is the producer's final word: how many blocks it enqueued,
// and the stream-level error (nil means clean EOF + intact trailer).
type prodEnd struct {
	n   int
	err error
}

// recsPool recycles the per-block record slices the parallel scan
// decodes into. fn already observes records by reused pointer (the v1
// decoder reuses one record throughout), so callers copy what they
// keep and recycling the slices is safe.
var recsPool = sync.Pool{New: func() any { s := make([]Record, 0, colBlockRows); return &s }}

// readColsParallel reads raw blocks serially (the v2 gzip stream is
// inherently serial; v3 keeps file order) and fans block decoding —
// for v3, including per-column inflation — out over workers
// goroutines. A reorder buffer on the consuming side delivers records
// in exact file order, so parallelism never changes what fn observes.
// Records decoded before a mid-stream failure are delivered, then the
// failure is returned — the same prefix-delivery contract as the
// serial scan.
func (s *Store) readColsParallel(cr *colReader, workers int, deliver func([]Record) error, finish func() error, classify func(error) error) error {
	jobs := make(chan seqBlock, workers)
	out := make(chan decoded, workers)
	end := make(chan prodEnd, 1)
	done := make(chan struct{})
	var closeDone sync.Once
	abort := func() { closeDone.Do(func() { close(done) }) }
	defer abort()

	go func() { // producer: the only goroutine touching the raw stream
		defer close(jobs)
		seq := 0
		for {
			b, err := cr.next()
			if err == io.EOF {
				end <- prodEnd{n: seq, err: finish()}
				return
			}
			if err != nil {
				end <- prodEnd{n: seq, err: classify(err)}
				return
			}
			select {
			case jobs <- seqBlock{seq: seq, b: b}:
				seq++
			case <-done:
				b.release()
				end <- prodEnd{n: seq, err: nil}
				return
			}
		}
	}()
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			strs := make(map[string]string, 256)
			var inf colInflater
			for j := range jobs {
				rp := recsPool.Get().(*[]Record)
				recs := *rp
				if cap(recs) < j.b.rows {
					recs = make([]Record, j.b.rows)
				}
				recs = recs[:j.b.rows]
				for i := range recs {
					recs[i] = Record{}
				}
				*rp = recs
				err := decodeBlock(j.b, cr.need, recs, strs, &inf)
				j.b.release()
				select {
				case out <- decoded{seq: j.seq, recs: recs, rp: rp, err: err}:
				case <-done:
					return
				}
			}
		}()
	}
	// Consumer: re-sequence decoded blocks to file order.
	pending := make(map[int]decoded)
	next, total := 0, -1
	var endErr error
	drain := func() {
		abort()
		go func() { // unblock any worker mid-send, then reap them
			for range out {
			}
		}()
		wg.Wait()
		close(out)
		if total < 0 {
			<-end // producer's final word was never consumed
		}
	}
	pop := func() (decoded, bool) {
		d, ok := pending[next]
		if ok {
			delete(pending, next)
			next++
		}
		return d, ok
	}
	for total < 0 || next < total {
		if total >= 0 && len(pending) >= total-next {
			break // everything still owed is already buffered
		}
		select {
		case d := <-out:
			if d.err != nil {
				drain()
				return classify(d.err)
			}
			pending[d.seq] = d
		case e := <-end:
			total, endErr = e.n, e.err
		}
		for {
			d, ok := pop()
			if !ok {
				break
			}
			err := deliver(d.recs)
			recsPool.Put(d.rp)
			if err != nil {
				drain()
				return err
			}
		}
	}
	for next < total {
		d, _ := pop()
		err := deliver(d.recs)
		if d.rp != nil {
			recsPool.Put(d.rp)
		}
		if err != nil {
			drain()
			return err
		}
	}
	drain()
	return endErr
}
