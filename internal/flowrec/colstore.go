package flowrec

import (
	"bufio"
	"compress/gzip"
	"errors"
	"fmt"
	"io"
	"os"
	"sync"
	"time"

	"repro/internal/metrics"
)

// Column-scan observability: how much the v2 read path actually
// prunes. decoded_bytes counts payload bytes materialised into
// records (v1: encoded record bodies; v2: column payloads decoded);
// pruned_bytes counts v2 column payloads skipped without decoding —
// unrequested columns and stat-excluded blocks.
var (
	mBlocksRead    = metrics.GetCounter("store.blocks_read")
	mBlocksSkipped = metrics.GetCounter("store.blocks_skipped")
	mBytesDecoded  = metrics.GetCounter("store.decoded_bytes")
	mBytesPruned   = metrics.GetCounter("store.pruned_bytes")
)

// Format selects the on-disk day-log encoding.
type Format uint8

const (
	// FormatV1 is the row codec: a gzip stream of length-prefixed
	// records (magic "efl1"). The zero value, and the default.
	FormatV1 Format = iota
	// FormatV2 is the columnar codec: gzip blocks of per-column
	// streams with min/max stats (magic "eflc"), readable with column
	// pruning and predicate pushdown via ReadDayCols.
	FormatV2
)

// ParseFormat parses "v1" or "v2".
func ParseFormat(s string) (Format, error) {
	switch s {
	case "v1":
		return FormatV1, nil
	case "v2":
		return FormatV2, nil
	}
	return FormatV1, fmt.Errorf("flowrec: unknown store format %q (want v1 or v2)", s)
}

func (f Format) String() string {
	if f == FormatV2 {
		return "v2"
	}
	return "v1"
}

// OpenStoreFormat opens (creating if needed) a store rooted at dir
// whose CreateDay writes the given format. Reading auto-detects each
// file's format by magic, so a store may hold a mix of both.
func OpenStoreFormat(dir string, format Format) (*Store, error) {
	s, err := OpenStore(dir)
	if err != nil {
		return nil, err
	}
	s.format = format
	return s, nil
}

// Format returns the format CreateDay writes.
func (s *Store) Format() Format { return s.format }

// ReadDayCols streams one day's records through a column-projected,
// predicate-filtered scan. Only the columns in sc.Cols (plus those the
// predicate reads) are guaranteed populated — on v2 files the rest are
// never decoded, and blocks whose min/max stats cannot satisfy sc.Pred
// are skipped wholesale. fn only sees records matching sc.Pred. On v1
// files the scan degrades to a full decode with a per-record filter,
// so the records fn observes are identical for either format. Like
// ReadDay, iteration stops at fn's first error, which is returned.
func (s *Store) ReadDayCols(day time.Time, sc ColScan, fn func(*Record) error) error {
	path := s.dayPath(day)
	f, err := os.Open(path)
	if err != nil {
		if os.IsNotExist(err) {
			mDaysMissing.Inc()
			return fmt.Errorf("%w: %s", ErrNoDay, day.UTC().Format("2006-01-02"))
		}
		return fmt.Errorf("flowrec: opening day log: %w", err)
	}
	defer f.Close()
	// Per-day counts accumulate locally and publish once: the decode
	// loop is the stage-one hot path. days_read is deliberately NOT
	// part of this deferred publish — a day counts as read only when
	// its stream ends cleanly (see the EOF paths below), so corrupt
	// days never inflate read-throughput metrics.
	var nRecs, nBytes uint64
	defer func() {
		mRecordsRead.Add(nRecs)
		mBytesRead.Add(nBytes)
	}()
	cr := &countingReader{r: f}
	gz, err := gzip.NewReader(cr)
	if err != nil {
		mCorruptRecords.Inc()
		nBytes = cr.n
		return fmt.Errorf("flowrec: %s: %w", path, err)
	}
	closed := false
	defer func() {
		if !closed {
			gz.Close()
		}
		nBytes = cr.n
	}()
	br := bufio.NewReaderSize(gz, 1<<16)
	magic, err := br.Peek(4)
	if err != nil {
		if err == io.EOF && len(magic) > 0 {
			err = io.ErrUnexpectedEOF
		}
		if isGzipDamage(err) {
			mCorruptRecords.Inc()
		}
		return fmt.Errorf("flowrec: %s: reading magic: %w", path, err)
	}
	switch {
	case [4]byte(magic) == colMagic:
		err = s.readDayV2(br, sc, fn, &nRecs, &closed, gz)
	case [4]byte(magic) == codecMagic:
		err = s.readDayV1(br, sc.Pred, fn, &nRecs, &closed, gz)
	default:
		return fmt.Errorf("flowrec: %s: %w", path, ErrBadMagic)
	}
	if err != nil {
		// fn's own errors pass through verbatim, as ReadDay always has;
		// only stream-level failures get the file-path context.
		var fe fnErr
		if errors.As(err, &fe) {
			return fe.err
		}
		return fmt.Errorf("flowrec: %s: %w", path, err)
	}
	return nil
}

// fnErr marks an error returned by the caller's fn, which must
// propagate unwrapped (callers compare against their own sentinels).
type fnErr struct{ err error }

func (e fnErr) Error() string { return e.err.Error() }
func (e fnErr) Unwrap() error { return e.err }

// readDayV1 is the row-codec scan: full decode, per-record predicate.
func (s *Store) readDayV1(br *bufio.Reader, pred *Pred, fn func(*Record) error, nRecs *uint64, closed *bool, gz *gzip.Reader) error {
	dec, err := NewDecoder(br)
	if err != nil {
		return err
	}
	var payload uint64
	defer func() { mBytesDecoded.Add(payload) }()
	var rec Record
	for {
		rec = Record{}
		if err := dec.Decode(&rec); err != nil {
			if errors.Is(err, io.EOF) {
				// The records decoded cleanly, but a clean stream must
				// also end with an intact gzip trailer: Close is where
				// a truncated or checksum-damaged tail surfaces, and
				// swallowing it would let a corrupt day read as whole.
				*closed = true
				if cerr := gz.Close(); cerr != nil {
					mCorruptRecords.Inc()
					return fmt.Errorf("gzip trailer: %w", cerr)
				}
				mDaysRead.Inc()
				return nil
			}
			if errors.Is(err, ErrCorrupt) || isGzipDamage(err) {
				mCorruptRecords.Inc()
			}
			return err
		}
		payload += dec.lastSize
		if !pred.Match(&rec) {
			continue
		}
		*nRecs++
		if err := fn(&rec); err != nil {
			return fnErr{err}
		}
	}
}

// readDayV2 is the columnar scan. Blocks stream off the gzip reader
// serially; decoding fans out over sc.Workers goroutines when asked,
// with delivery re-sequenced to file order so fn observes the same
// record order at any worker count.
func (s *Store) readDayV2(br *bufio.Reader, sc ColScan, fn func(*Record) error, nRecs *uint64, closed *bool, gz *gzip.Reader) error {
	if _, err := br.Discard(4); err != nil { // the peeked magic
		return err
	}
	need := sc.Cols.Norm() | sc.Pred.Columns()
	cr := &colReader{br: br, need: need, pred: sc.Pred}
	defer func() {
		mBlocksRead.Add(cr.blocksRead)
		mBlocksSkipped.Add(cr.blocksSkipped)
		mBytesDecoded.Add(cr.bytesDecoded)
		mBytesPruned.Add(cr.bytesPruned)
	}()
	// closeTrailer runs at a clean end of stream: every block decoded,
	// gzip trailer intact — only then does the day count as read.
	closeTrailer := func() error {
		*closed = true
		if cerr := gz.Close(); cerr != nil {
			mCorruptRecords.Inc()
			return fmt.Errorf("gzip trailer: %w", cerr)
		}
		mDaysRead.Inc()
		return nil
	}
	classify := func(err error) error {
		if errors.Is(err, ErrCorrupt) || isGzipDamage(err) {
			mCorruptRecords.Inc()
		}
		return err
	}
	deliver := func(recs []Record) error {
		for i := range recs {
			if !sc.Pred.Match(&recs[i]) {
				continue
			}
			*nRecs++
			if err := fn(&recs[i]); err != nil {
				return fnErr{err: err}
			}
		}
		return nil
	}

	if sc.Workers <= 1 {
		strs := make(map[string]string, 256)
		var recs []Record
		for {
			b, err := cr.next()
			if err == io.EOF {
				return closeTrailer()
			}
			if err != nil {
				return classify(err)
			}
			if cap(recs) < b.rows {
				recs = make([]Record, b.rows)
			}
			recs = recs[:b.rows]
			for i := range recs {
				recs[i] = Record{}
			}
			if err := decodeBlock(b, need, recs, strs); err != nil {
				return classify(err)
			}
			if err := deliver(recs); err != nil {
				return err
			}
		}
	}
	return s.readDayV2Parallel(cr, need, sc.Workers, deliver, closeTrailer, classify)
}

// seqBlock pairs a raw block with its delivery sequence number.
type seqBlock struct {
	seq int
	b   *colBlock
}

// decoded is one worker's output: the block's records, or its error.
type decoded struct {
	seq  int
	recs []Record
	err  error
}

// prodEnd is the producer's final word: how many blocks it enqueued,
// and the stream-level error (nil means clean EOF + intact trailer).
type prodEnd struct {
	n   int
	err error
}

// readDayV2Parallel reads raw blocks serially (gzip is inherently
// serial) and fans block decoding out over workers goroutines. A
// reorder buffer on the consuming side delivers records in exact file
// order, so parallelism never changes what fn observes. Records
// decoded before a mid-stream failure are delivered, then the failure
// is returned — the same prefix-delivery contract as the serial scan.
func (s *Store) readDayV2Parallel(cr *colReader, need ColumnSet, workers int, deliver func([]Record) error, closeTrailer func() error, classify func(error) error) error {
	jobs := make(chan seqBlock, workers)
	out := make(chan decoded, workers)
	end := make(chan prodEnd, 1)
	done := make(chan struct{})
	var closeDone sync.Once
	abort := func() { closeDone.Do(func() { close(done) }) }
	defer abort()

	go func() { // producer: the only goroutine touching the gzip stream
		defer close(jobs)
		seq := 0
		for {
			b, err := cr.next()
			if err == io.EOF {
				end <- prodEnd{n: seq, err: closeTrailer()}
				return
			}
			if err != nil {
				end <- prodEnd{n: seq, err: classify(err)}
				return
			}
			select {
			case jobs <- seqBlock{seq: seq, b: b}:
				seq++
			case <-done:
				end <- prodEnd{n: seq, err: nil}
				return
			}
		}
	}()
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			strs := make(map[string]string, 256)
			for j := range jobs {
				recs := make([]Record, j.b.rows)
				err := decodeBlock(j.b, need, recs, strs)
				select {
				case out <- decoded{seq: j.seq, recs: recs, err: err}:
				case <-done:
					return
				}
			}
		}()
	}
	// Consumer: re-sequence decoded blocks to file order.
	pending := make(map[int][]Record)
	next, total := 0, -1
	var endErr error
	drain := func() {
		abort()
		go func() { // unblock any worker mid-send, then reap them
			for range out {
			}
		}()
		wg.Wait()
		close(out)
		if total < 0 {
			<-end // producer's final word was never consumed
		}
	}
	for total < 0 || next < total {
		if total >= 0 && len(pending) >= total-next {
			break // everything still owed is already buffered
		}
		select {
		case d := <-out:
			if d.err != nil {
				drain()
				return classify(d.err)
			}
			pending[d.seq] = d.recs
		case e := <-end:
			total, endErr = e.n, e.err
		}
		for {
			recs, ok := pending[next]
			if !ok {
				break
			}
			delete(pending, next)
			next++
			if err := deliver(recs); err != nil {
				drain()
				return err
			}
		}
	}
	for next < total {
		recs := pending[next]
		delete(pending, next)
		next++
		if err := deliver(recs); err != nil {
			drain()
			return err
		}
	}
	drain()
	return endErr
}
