package flowrec

import (
	"encoding/csv"
	"fmt"
	"io"
	"strconv"
	"time"

	"repro/internal/wire"
)

// CSV codec: one row per flow, Tstat-log style, for interoperability
// with external tooling. The binary codec remains the storage format.

// csvHeader is the column list, stable across versions.
var csvHeader = []string{
	"client", "server", "cli_port", "srv_port", "proto", "tech", "sub_id",
	"start_ms", "duration_ms", "pkts_up", "pkts_down", "bytes_up", "bytes_down",
	"web", "server_name", "name_src", "alpn", "quic_ver",
	"rtt_min_us", "rtt_avg_us", "rtt_max_us", "rtt_samples",
}

// CSVWriter writes records as CSV rows.
type CSVWriter struct {
	w   *csv.Writer
	row []string
}

// NewCSVWriter writes the header row and returns a writer.
func NewCSVWriter(w io.Writer) (*CSVWriter, error) {
	cw := csv.NewWriter(w)
	if err := cw.Write(csvHeader); err != nil {
		return nil, fmt.Errorf("flowrec: writing csv header: %w", err)
	}
	return &CSVWriter{w: cw, row: make([]string, len(csvHeader))}, nil
}

// Write appends one record.
func (c *CSVWriter) Write(r *Record) error {
	row := c.row
	row[0] = r.Client.String()
	row[1] = r.Server.String()
	row[2] = strconv.Itoa(int(r.CliPort))
	row[3] = strconv.Itoa(int(r.SrvPort))
	row[4] = strconv.Itoa(int(r.Proto))
	row[5] = strconv.Itoa(int(r.Tech))
	row[6] = strconv.FormatUint(uint64(r.SubID), 10)
	row[7] = strconv.FormatInt(r.Start.UnixMilli(), 10)
	row[8] = strconv.FormatInt(int64(r.Duration/time.Millisecond), 10)
	row[9] = strconv.FormatUint(uint64(r.PktsUp), 10)
	row[10] = strconv.FormatUint(uint64(r.PktsDown), 10)
	row[11] = strconv.FormatUint(r.BytesUp, 10)
	row[12] = strconv.FormatUint(r.BytesDown, 10)
	row[13] = strconv.Itoa(int(r.Web))
	row[14] = r.ServerName
	row[15] = strconv.Itoa(int(r.NameSrc))
	row[16] = r.ALPN
	row[17] = r.QUICVer
	row[18] = strconv.FormatInt(int64(r.RTTMin/time.Microsecond), 10)
	row[19] = strconv.FormatInt(int64(r.RTTAvg/time.Microsecond), 10)
	row[20] = strconv.FormatInt(int64(r.RTTMax/time.Microsecond), 10)
	row[21] = strconv.FormatUint(uint64(r.RTTSamples), 10)
	return c.w.Write(row)
}

// Flush flushes the underlying csv writer and reports its error.
func (c *CSVWriter) Flush() error {
	c.w.Flush()
	return c.w.Error()
}

// CSVReader reads records written by CSVWriter.
type CSVReader struct {
	r *csv.Reader
}

// NewCSVReader validates the header and returns a reader.
func NewCSVReader(r io.Reader) (*CSVReader, error) {
	cr := csv.NewReader(r)
	cr.FieldsPerRecord = len(csvHeader)
	hdr, err := cr.Read()
	if err != nil {
		return nil, fmt.Errorf("flowrec: reading csv header: %w", err)
	}
	for i, col := range csvHeader {
		if hdr[i] != col {
			return nil, fmt.Errorf("flowrec: csv column %d is %q, want %q: %w", i, hdr[i], col, ErrCorrupt)
		}
	}
	return &CSVReader{r: cr}, nil
}

// Read decodes the next row into rec, returning io.EOF at end.
func (c *CSVReader) Read(rec *Record) error {
	row, err := c.r.Read()
	if err != nil {
		return err
	}
	cli, err := parseAddr(row[0])
	if err != nil {
		return err
	}
	srv, err := parseAddr(row[1])
	if err != nil {
		return err
	}
	rec.Client, rec.Server = cli, srv
	ints := make([]uint64, len(row))
	for _, i := range []int{2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12, 13, 15, 18, 19, 20, 21} {
		v, err := strconv.ParseUint(row[i], 10, 64)
		if err != nil {
			return fmt.Errorf("flowrec: csv column %s: %w", csvHeader[i], err)
		}
		ints[i] = v
	}
	rec.CliPort = uint16(ints[2])
	rec.SrvPort = uint16(ints[3])
	rec.Proto = Proto(ints[4])
	rec.Tech = AccessTech(ints[5])
	rec.SubID = uint32(ints[6])
	rec.Start = time.UnixMilli(int64(ints[7])).UTC()
	rec.Duration = time.Duration(ints[8]) * time.Millisecond
	rec.PktsUp = uint32(ints[9])
	rec.PktsDown = uint32(ints[10])
	rec.BytesUp = ints[11]
	rec.BytesDown = ints[12]
	rec.Web = WebProto(ints[13])
	rec.ServerName = row[14]
	rec.NameSrc = NameSource(ints[15])
	rec.ALPN = row[16]
	rec.QUICVer = row[17]
	rec.RTTMin = time.Duration(ints[18]) * time.Microsecond
	rec.RTTAvg = time.Duration(ints[19]) * time.Microsecond
	rec.RTTMax = time.Duration(ints[20]) * time.Microsecond
	rec.RTTSamples = uint32(ints[21])
	return nil
}

func parseAddr(s string) (wire.Addr, error) {
	var a wire.Addr
	var o [4]int
	if _, err := fmt.Sscanf(s, "%d.%d.%d.%d", &o[0], &o[1], &o[2], &o[3]); err != nil {
		return a, fmt.Errorf("flowrec: address %q: %w", s, err)
	}
	for i, v := range o {
		if v < 0 || v > 255 {
			return a, fmt.Errorf("flowrec: address %q octet out of range: %w", s, ErrCorrupt)
		}
		a[i] = byte(v)
	}
	return a, nil
}
