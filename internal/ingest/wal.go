package ingest

import (
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
	"time"

	"repro/internal/flowrec"
)

// The write-ahead log. Every record the daemon absorbs is appended,
// before aggregation, to a per-day segment file under
// <walDir>/<YYYYMMDD>/seg-NNNNNN.wal. Segments reuse the flowrec v1
// row codec uncompressed — length-prefixed frames behind a magic —
// because the property the WAL needs is exactly the property v1 was
// built with: a torn tail damages only the last frame, and every
// frame before it replays intact. A new segment opens per (day,
// process incarnation), so a crashed writer's torn tail is sealed
// away in its own file and the next incarnation appends cleanly.
//
// Sealing a day is a WAL→lake rewrite (replay the segments, write the
// day through Storage.WriteDay, remove the segments), which makes the
// lake an LSM over the WAL: unsealed data lives only under .wal,
// where batch readers never look (flowrec.Store.Days skips the tree).

// dayDirFormat names a day's segment directory.
const dayDirFormat = "20060102"

// walDayDir returns the segment directory for day.
func walDayDir(walDir string, day time.Time) string {
	return filepath.Join(walDir, day.UTC().Format(dayDirFormat))
}

// walWriter appends one day's records to an open segment.
type walWriter struct {
	f   *os.File
	enc *flowrec.Encoder
}

// openSegment creates the next segment file for day — numbered after
// the existing ones, so replay order is lexical order.
func openSegment(walDir string, day time.Time) (*walWriter, error) {
	dir := walDayDir(walDir, day)
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("ingest: wal: %w", err)
	}
	segs, err := listSegments(dir)
	if err != nil {
		return nil, err
	}
	path := filepath.Join(dir, fmt.Sprintf("seg-%06d.wal", len(segs)))
	f, err := os.OpenFile(path, os.O_CREATE|os.O_EXCL|os.O_WRONLY, 0o644)
	if err != nil {
		return nil, fmt.Errorf("ingest: wal: %w", err)
	}
	enc, err := flowrec.NewEncoder(f)
	if err != nil {
		f.Close()
		os.Remove(path)
		return nil, fmt.Errorf("ingest: wal: %w", err)
	}
	return &walWriter{f: f, enc: enc}, nil
}

// append adds one record to the segment (buffered; Flush makes it
// crash-durable).
func (w *walWriter) append(r *flowrec.Record) error {
	return w.enc.Encode(r)
}

// flush pushes buffered frames to the OS. After flush returns, the
// appended records survive a process kill (the crash model here —
// media durability would add fsync, which the simulated probe skips
// exactly like the paper's real one did for throughput).
func (w *walWriter) flush() error {
	return w.enc.Flush()
}

// close flushes and closes the segment.
func (w *walWriter) close() error {
	err := w.enc.Flush()
	if cerr := w.f.Close(); err == nil {
		err = cerr
	}
	return err
}

// listSegments returns a day directory's segment paths in replay
// order. A missing directory is an empty list.
func listSegments(dir string) ([]string, error) {
	ents, err := os.ReadDir(dir)
	if err != nil {
		if os.IsNotExist(err) {
			return nil, nil
		}
		return nil, fmt.Errorf("ingest: wal: %w", err)
	}
	var segs []string
	for _, e := range ents {
		if !e.IsDir() && filepath.Ext(e.Name()) == ".wal" {
			segs = append(segs, filepath.Join(dir, e.Name()))
		}
	}
	sort.Strings(segs)
	return segs, nil
}

// replayDay streams every intact frame of a day's WAL, in append
// order, to fn. A torn tail — the unflushed last frame of a killed
// writer — ends that segment's replay silently and the next segment
// continues: the lost suffix was never checkpointed (checkpoints
// flush first), so the resumed stream re-delivers it. Returns the
// number of intact frames.
func replayDay(walDir string, day time.Time, fn func(*flowrec.Record) error) (uint64, error) {
	segs, err := listSegments(walDayDir(walDir, day))
	if err != nil {
		return 0, err
	}
	var n uint64
	var rec flowrec.Record
	for _, seg := range segs {
		f, err := os.Open(seg)
		if err != nil {
			return n, fmt.Errorf("ingest: wal replay: %w", err)
		}
		dec, err := flowrec.NewDecoder(f)
		if err != nil {
			// An empty or headerless segment: a writer died before its
			// first flush. Nothing of it was durable; skip.
			f.Close()
			continue
		}
		for {
			if err := dec.Decode(&rec); err != nil {
				if errors.Is(err, io.EOF) {
					break
				}
				// Damage mid-segment can only be a torn tail (segments
				// are append-only); stop this segment, keep the rest.
				break
			}
			if err := fn(&rec); err != nil {
				f.Close()
				return n, err
			}
			n++
		}
		f.Close()
	}
	return n, nil
}

// walDays lists the days that have a WAL directory.
func walDays(walDir string) ([]time.Time, error) {
	ents, err := os.ReadDir(walDir)
	if err != nil {
		if os.IsNotExist(err) {
			return nil, nil
		}
		return nil, fmt.Errorf("ingest: wal: %w", err)
	}
	var days []time.Time
	for _, e := range ents {
		if !e.IsDir() {
			continue
		}
		day, err := time.ParseInLocation(dayDirFormat, e.Name(), time.UTC)
		if err != nil {
			continue
		}
		days = append(days, day)
	}
	sort.Slice(days, func(i, j int) bool { return days[i].Before(days[j]) })
	return days, nil
}

// removeDayWAL deletes a sealed day's segments.
func removeDayWAL(walDir string, day time.Time) error {
	return os.RemoveAll(walDayDir(walDir, day))
}
