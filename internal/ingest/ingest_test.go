package ingest

import (
	"bytes"
	"context"
	"os"
	"path/filepath"
	"testing"
	"time"

	"repro/internal/analytics"
	"repro/internal/classify"
	"repro/internal/core"
	"repro/internal/flowrec"
	"repro/internal/simnet"
)

// The streamed≡batch obligation at the package level: a world's days
// pushed record by record through the live loop — WAL, incremental
// checkpoints, rollover seals, compaction — must leave a lake whose
// per-day canonical aggregates are byte-identical to folding the same
// world's EmitDay output directly. The merge monoid promises it; the
// tests here hold the daemon to it, including across graceful
// restarts. (crash_test.go holds it across ungraceful ones.)

// ingestSeed 7 at these span offsets provably contains flows that end
// past midnight (days 8 and 10 each have one), so the cross-day paths
// are exercised, not vacuous.
const ingestSeed = 7

var ingestScale = simnet.Scale{ADSL: 8, FTTH: 4}

func ingestDays(off, n int) []time.Time {
	days := make([]time.Time, n)
	for i := range days {
		days[i] = simnet.SpanStart.AddDate(0, 0, off+i)
	}
	return days
}

// batchCanon folds one day of the world as the batch pipeline would —
// through a materialised day file, whose codec quantizes times — and
// returns its canonical bytes. Built lazily once per test.
func batchCanon(t *testing.T, w *simnet.World, day time.Time) []byte {
	t.Helper()
	dir := filepath.Join(t.TempDir(), "batch")
	store, err := flowrec.OpenStoreFormat(dir, flowrec.FormatV1)
	if err != nil {
		t.Fatal(err)
	}
	storage := core.NewDiskStorage(store, "")
	if _, err := storage.WriteDay(day, func(write func(*flowrec.Record) error) error {
		var werr error
		w.EmitDay(day, func(r *flowrec.Record) {
			if werr == nil {
				werr = write(r)
			}
		})
		return werr
	}); err != nil {
		t.Fatal(err)
	}
	return lakeCanon(t, storage, day)
}

// lakeCanon reads one sealed day back out of the lake, folds it, and
// returns its canonical bytes.
func lakeCanon(t *testing.T, storage *core.DiskStorage, day time.Time) []byte {
	t.Helper()
	agg := analytics.NewAggregator(day, classify.Default())
	if err := storage.ReadDay(day, func(r *flowrec.Record) error {
		agg.Add(r)
		return nil
	}); err != nil {
		t.Fatalf("reading sealed day %s: %v", day.Format("2006-01-02"), err)
	}
	b, err := analytics.CanonicalBytes(agg.Result())
	if err != nil {
		t.Fatal(err)
	}
	return b
}

// testLake is one ingest target: a v1 store with aggregate cache and
// WAL dir in a temp tree.
type testLake struct {
	store   *flowrec.Store
	storage *core.DiskStorage
	walDir  string
}

func newTestLake(t *testing.T) *testLake {
	t.Helper()
	dir := t.TempDir()
	store, err := flowrec.OpenStoreFormat(filepath.Join(dir, "lake"), flowrec.FormatV1)
	if err != nil {
		t.Fatal(err)
	}
	return &testLake{
		store:   store,
		storage: core.NewDiskStorage(store, filepath.Join(dir, "agg")),
		walDir:  filepath.Join(dir, "lake", flowrec.WALDirName),
	}
}

func (l *testLake) config() Config {
	return Config{
		Storage:         l.storage,
		WALDir:          l.walDir,
		CheckpointEvery: 256, // small: many checkpoints per day at test scale
		Grace:           8 * time.Hour,
		Compactor:       l.store,
		CompactFormat:   flowrec.FormatV3,
		CompactSync:     true,
	}
}

func TestStreamedEqualsBatch(t *testing.T) {
	days := ingestDays(7, 4)
	w := simnet.NewWorld(ingestSeed, ingestScale)
	lake := newTestLake(t)
	ctx := context.Background()

	in, err := Open(lake.config())
	if err != nil {
		t.Fatal(err)
	}
	ckBefore, sealsBefore := mCheckpoints.Load(), mSeals.Load()

	src := w.Stream(days)
	var sr simnet.StreamRecord
	n := 0
	for src.Next(&sr) {
		if err := in.Ingest(ctx, &sr.Rec, sr.At); err != nil {
			t.Fatal(err)
		}
		n++
	}
	if err := in.SealAll(ctx); err != nil {
		t.Fatal(err)
	}
	if err := in.Close(ctx); err != nil {
		t.Fatal(err)
	}

	if got := mSeals.Load() - sealsBefore; got != uint64(len(days)) {
		t.Fatalf("sealed %d days, want %d", got, len(days))
	}
	if mCheckpoints.Load() == ckBefore {
		t.Fatal("no incremental checkpoints happened at CheckpointEvery=256")
	}

	for _, day := range days {
		if !lake.storage.HasDay(day) {
			t.Fatalf("day %s not sealed", day.Format("2006-01-02"))
		}
		if !bytes.Equal(lakeCanon(t, lake.storage, day), batchCanon(t, w, day)) {
			t.Errorf("day %s: streamed lake diverges from batch fold", day.Format("2006-01-02"))
		}
	}

	// Compaction ran synchronously at seal: the day files must carry
	// the columnar magic, not the row format they were sealed as.
	stored, err := lake.store.Days()
	if err != nil {
		t.Fatal(err)
	}
	if len(stored) != len(days) {
		t.Fatalf("lake lists %d days, want %d", len(stored), len(days))
	}

	// The WAL tree is fully drained: no day dirs, no cursor temps.
	ents, err := os.ReadDir(lake.walDir)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range ents {
		if e.IsDir() {
			t.Errorf("sealed WAL tree still holds day dir %s", e.Name())
		}
		if ok, _ := filepath.Match("cursor.tmp-*", e.Name()); ok {
			t.Errorf("leaked cursor temp %s", e.Name())
		}
	}
	if n == 0 {
		t.Fatal("stream delivered zero records")
	}
}

// TestGracefulRestartResumes closes the ingester mid-stream, reopens
// over the same WAL tree, seeks the stream to Resume(), and finishes:
// the lake must come out byte-identical, with the resumed stream's
// re-delivered prefix dropped as duplicates, not double-counted.
func TestGracefulRestartResumes(t *testing.T) {
	days := ingestDays(7, 3)
	w := simnet.NewWorld(ingestSeed, ingestScale)
	lake := newTestLake(t)
	ctx := context.Background()

	in, err := Open(lake.config())
	if err != nil {
		t.Fatal(err)
	}
	src := w.Stream(days)
	var sr simnet.StreamRecord
	var total int
	for src.Next(&sr) {
		total++
	}
	stop := total / 2

	src = w.Stream(days)
	for i := 0; i < stop && src.Next(&sr); i++ {
		if err := in.Ingest(ctx, &sr.Rec, sr.At); err != nil {
			t.Fatal(err)
		}
	}
	if err := in.Close(ctx); err != nil {
		t.Fatal(err)
	}

	in2, err := Open(lake.config())
	if err != nil {
		t.Fatal(err)
	}
	if in2.Resume() == 0 {
		t.Fatal("restart lost the cursor: Resume()==0 after a graceful close mid-stream")
	}
	dupsBefore := mDupsDropped.Load()
	src2 := w.Stream(days)
	src2.Seek(in2.Resume())
	for src2.Next(&sr) {
		if err := in2.Ingest(ctx, &sr.Rec, sr.At); err != nil {
			t.Fatal(err)
		}
	}
	if err := in2.SealAll(ctx); err != nil {
		t.Fatal(err)
	}
	if err := in2.Close(ctx); err != nil {
		t.Fatal(err)
	}
	// Close checkpoints before writing the cursor, so the graceful
	// cursor sits exactly at the stop point: Seek re-delivers nothing
	// and the dup counter stays put. (Crash recovery is where dup
	// dropping earns its keep — crash_test.go watches it move.)
	if d := mDupsDropped.Load() - dupsBefore; d != 0 {
		t.Errorf("graceful resume dropped %d records as duplicates; cursor should have been exact", d)
	}

	for _, day := range days {
		if !bytes.Equal(lakeCanon(t, lake.storage, day), batchCanon(t, w, day)) {
			t.Errorf("day %s: restarted lake diverges from batch fold", day.Format("2006-01-02"))
		}
	}
}

// TestHotPartialsServeOpenDay: before any seal, the checkpoint
// snapshots must already answer for the open day through the ordinary
// partials path — and after CheckpointAll they must equal the batch
// fold exactly, because every absorbed record is covered.
func TestHotPartialsServeOpenDay(t *testing.T) {
	days := ingestDays(7, 1)
	w := simnet.NewWorld(ingestSeed, ingestScale)
	lake := newTestLake(t)
	ctx := context.Background()

	in, err := Open(lake.config())
	if err != nil {
		t.Fatal(err)
	}
	src := w.Stream(days)
	var sr simnet.StreamRecord
	for src.Next(&sr) {
		if err := in.Ingest(ctx, &sr.Rec, sr.At); err != nil {
			t.Fatal(err)
		}
	}
	in.CheckpointAll(ctx)

	if lake.storage.HasDay(days[0]) {
		t.Fatal("day sealed prematurely")
	}
	parts, err := lake.storage.LoadPartials(days[0])
	if err != nil || len(parts) == 0 {
		t.Fatalf("no hot partials for the open day: %v", err)
	}
	hot, err := analytics.MergePartials(days[0], parts)
	if err != nil {
		t.Fatal(err)
	}
	hotBytes, err := analytics.CanonicalBytes(hot)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(hotBytes, batchCanon(t, w, days[0])) {
		t.Error("hot partials diverge from the batch fold of the same records")
	}

	// Sealing afterwards must not change the answer.
	if err := in.SealAll(ctx); err != nil {
		t.Fatal(err)
	}
	if err := in.Close(ctx); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(lakeCanon(t, lake.storage, days[0]), hotBytes) {
		t.Error("sealed day diverges from its own hot-partial answer")
	}
}
