// Package ingest is the live half of the reproduction: the paper's
// pipeline did not replay sealed day files, it watched flows arrive
// at the ISP edge for five years and had to absorb them continuously,
// survive its own crashes, and keep "today so far" queryable while
// today was still happening (sections 2.2–2.3). The Ingester is that
// loop: records enter in export order, land in a per-day write-ahead
// log, fold into a live analytics.Partial that is checkpointed
// incrementally through the same parts-*.gob.gz snapshots the batch
// pipeline's shard cache uses (so Pipeline serves hot days with zero
// extra machinery), and seal into ordinary lake day files at rollover
// — after which background compaction rewrites them columnar. The
// WAL/lake pair is an LSM: unsealed data lives only in the WAL, the
// sealed lake is immutable, and the merge monoid guarantees the
// streamed result is byte-identical to a batch build of the same
// days.
//
// Crash contract: a record is durable once its WAL append has been
// flushed (every checkpoint flushes first). Recovery replays each
// open day's WAL over its last checkpoint — the checkpoint records
// how many leading WAL frames it covers, replay folds the rest — and
// the resume cursor plus per-day stream ordinals make re-delivered
// records exact no-ops. No crash point loses or double-counts a
// record; crash_test.go proves it by killing the loop everywhere.
package ingest

import (
	"context"
	"encoding/gob"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"time"

	"repro/internal/analytics"
	"repro/internal/classify"
	"repro/internal/faultinject"
	"repro/internal/flowrec"
	"repro/internal/metrics"
	"repro/internal/retry"
)

// Ingest observability — the counters the paper's operators would
// have watched across five unattended years.
var (
	mRecords     = metrics.GetCounter("ingest.records")
	mLagSeconds  = metrics.GetGauge("ingest.lag_seconds")
	mCheckpoints = metrics.GetCounter("ingest.checkpoints")
	mSeals       = metrics.GetCounter("ingest.seals")
	mRecoveries  = metrics.GetCounter("ingest.recoveries")

	mOpenDays      = metrics.GetGauge("ingest.open_days")
	mDupsDropped   = metrics.GetCounter("ingest.duplicates_dropped")
	mRecovered     = metrics.GetCounter("ingest.recovered_records")
	mCkptFailures  = metrics.GetCounter("ingest.checkpoint_failures")
	mSealFailures  = metrics.GetCounter("ingest.seal_failures")
	mCompactions   = metrics.GetCounter("ingest.compactions")
	mCompactErrors = metrics.GetCounter("ingest.compaction_failures")
)

// Storage is the slice of the pipeline storage surface the daemon
// writes through: sealed days into the lake, checkpoint partials into
// the aggregate cache. It is structurally satisfied by core's
// DiskStorage and by faultinject's wrapper — declared here so the
// dependency arrow keeps pointing from core to the leaves.
type Storage interface {
	WriteDay(day time.Time, emit func(write func(*flowrec.Record) error) error) (uint64, error)
	HasDay(day time.Time) bool
	SavePartials(day time.Time, parts []*analytics.Partial) error
	LoadPartials(day time.Time) ([]*analytics.Partial, error)
}

// Compactor rewrites a sealed day into another format in place;
// *flowrec.Store satisfies it.
type Compactor interface {
	CompactDay(day time.Time, format flowrec.Format) (uint64, error)
}

// generationBumper is the optional lake-generation surface (see
// core.Storage.BumpGeneration). The Storage interface above stays the
// minimal write slice; when the wired backend also tracks a generation
// (DiskStorage does), the daemon bumps it after checkpoints, recovery
// and compactions so response caches over the shared lake go stale.
// Seals bump implicitly through WriteDay.
type generationBumper interface {
	BumpGeneration() uint64
}

// bumpGeneration advances the lake generation when the backend
// supports it.
func (in *Ingester) bumpGeneration() {
	if b, ok := in.cfg.Storage.(generationBumper); ok {
		b.BumpGeneration()
	}
}

// Config wires an Ingester.
type Config struct {
	// Storage receives sealed days and checkpoint partials. Required.
	Storage Storage
	// WALDir holds the per-day write-ahead segments and the resume
	// cursor. Required. Convention: <lake root>/.wal (which the lake's
	// Days() scan skips).
	WALDir string
	// Classifier drives live aggregation; nil means classify.Default.
	Classifier *classify.Classifier
	// CheckpointEvery checkpoints a day after that many new records
	// (0 = 4096). Checkpoints are also available on demand
	// (CheckpointAll) for interval-based policies.
	CheckpointEvery int
	// Grace is how long past a day's midnight flows of that day may
	// still arrive (flows are exported when they end). A day seals
	// once the stream clock passes end-of-day + Grace. 0 = 8h, which
	// clears simnet's 6h flow-duration cap.
	Grace time.Duration
	// SealEmptyDays seals a valid zero-record day file for calendar
	// days the stream clock crosses without traffic — "probe up, no
	// flows", distinct from an outage gap. Leave off for strided
	// (non-contiguous) ingestion.
	SealEmptyDays bool
	// Compactor, when set, enables background compaction of sealed
	// days into CompactFormat (the LSM's second level). Days seal in
	// the store's native write format either way.
	Compactor     Compactor
	CompactFormat flowrec.Format
	// CompactSync compacts inline during seal instead of in the
	// background worker — deterministic, for tests.
	CompactSync bool
	// Retry absorbs transient checkpoint/seal failures.
	Retry retry.Policy
	// Faults injects deterministic failures on the checkpoint and
	// seal operations (ops "checkpoint", "seal"); storage-level
	// faults come wrapped around Storage itself.
	Faults *faultinject.Plan
	// Logf, when set, receives operational messages (degradations,
	// compaction errors). Default: silent.
	Logf func(format string, args ...interface{})
}

// cursorVersion invalidates old cursor files if the resume schema
// changes.
const cursorVersion = 1

// cursorFile is the durable resume state, written atomically beside
// the WAL segments at every checkpoint: every stream record with
// Seq < Seq is durably absorbed (flushed WAL or sealed day), and
// Days[d] is how many day-d records the stream had delivered at that
// point — the ordinal base that lets a resumed stream drop
// re-delivered records exactly.
type cursorFile struct {
	Version int
	Seq     uint64
	Days    map[int64]uint64
}

// dayState is one open (unsealed) day.
type dayState struct {
	day time.Time
	wal *walWriter // nil until the first append (or after a seal attempt)

	agg  *analytics.Aggregator // live records since the last checkpoint
	base *analytics.Partial    // merged checkpointed partials, nil before the first
	live uint64                // records in agg

	count   uint64 // records absorbed (WAL frames), checkpointed or not
	ordinal uint64 // day records seen in the stream, duplicates included
	walHave uint64 // recovered frames a resumed stream re-delivers as dups

	// retryAfter defers re-sealing after a failed seal until the
	// stream clock has moved on — degradation must not turn into a
	// per-record retry storm.
	retryAfter time.Time
}

// Ingester is the live ingest loop. It is not safe for concurrent
// use: one goroutine feeds it, exactly like one probe fed the
// paper's collector. (Queries run concurrently through the Pipeline,
// which reads the checkpoint snapshots from disk, not this struct.)
type Ingester struct {
	cfg    Config
	cls    *classify.Classifier
	days   map[int64]*dayState
	sealed map[int64]bool // lake-day existence cache

	seq       uint64 // next stream Seq expected
	resume    uint64 // durable cursor (≤ seq)
	watermark time.Time
	wmDay     time.Time // watermark's UTC day (rollover edge detector)
	nextDue   time.Time // earliest open-day seal deadline (zero: none)

	compactCh chan time.Time
	compactWG chan struct{} // closed when the worker drains
}

// Open builds an Ingester over cfg, recovering any state a previous
// incarnation left in the WAL: for every unsealed WAL day it reloads
// the last checkpoint, replays the uncovered WAL suffix into the live
// aggregator, and computes the stream cursor to resume from
// (Resume()). WAL days that already exist in the lake were sealed by
// a crashed incarnation after their WriteDay committed; their
// segments are discarded.
func Open(cfg Config) (*Ingester, error) {
	if cfg.Storage == nil {
		return nil, fmt.Errorf("ingest: Config.Storage is required")
	}
	if cfg.WALDir == "" {
		return nil, fmt.Errorf("ingest: Config.WALDir is required")
	}
	if cfg.CheckpointEvery <= 0 {
		cfg.CheckpointEvery = 4096
	}
	if cfg.Grace <= 0 {
		cfg.Grace = 8 * time.Hour
	}
	if cfg.Logf == nil {
		cfg.Logf = func(string, ...interface{}) {}
	}
	cls := cfg.Classifier
	if cls == nil {
		cls = classify.Default()
	}
	if err := os.MkdirAll(cfg.WALDir, 0o755); err != nil {
		return nil, fmt.Errorf("ingest: %w", err)
	}
	in := &Ingester{
		cfg:    cfg,
		cls:    cls,
		days:   make(map[int64]*dayState),
		sealed: make(map[int64]bool),
	}

	// A kill mid-cursor-write leaves a cursor.tmp-* orphan (the final
	// rename never ran); sweep them so attempts cannot accumulate.
	if tmps, _ := filepath.Glob(filepath.Join(cfg.WALDir, "cursor.tmp-*")); len(tmps) > 0 {
		for _, tmp := range tmps {
			os.Remove(tmp)
		}
	}

	cur := loadCursor(cfg.WALDir)
	in.seq, in.resume = cur.Seq, cur.Seq

	walFound, err := walDays(cfg.WALDir)
	if err != nil {
		return nil, err
	}
	recovered := false
	for _, day := range walFound {
		if cfg.Storage.HasDay(day) {
			// Sealed, then crashed before the segments were removed:
			// WriteDay is atomic, so existence implies completeness.
			if err := removeDayWAL(cfg.WALDir, day); err != nil {
				return nil, err
			}
			in.sealed[day.Unix()] = true
			recovered = true
			continue
		}
		st, err := in.recoverDay(day, cur.Days[day.Unix()])
		if err != nil {
			return nil, err
		}
		in.days[day.Unix()] = st
		recovered = true
	}
	// The watermark restarts at zero and rebuilds from the resumed
	// stream. Guessing it from the WAL would be worse than useless: an
	// overestimate seals a day whose torn-off tail is still pending
	// re-delivery, and the re-delivered records then drop as "already
	// sealed" — silent loss. Export-ordered delivery plus a watermark
	// only records can advance makes that impossible.
	if recovered || cur.Seq > 0 {
		mRecoveries.Inc()
	}
	if recovered {
		// Recovery may have replayed WAL tails into fresh partials;
		// anything cached against the pre-crash lake must revalidate.
		in.bumpGeneration()
	}
	mOpenDays.Set(int64(len(in.days)))
	in.recomputeDue()

	if cfg.Compactor != nil && !cfg.CompactSync {
		in.compactCh = make(chan time.Time, 64)
		in.compactWG = make(chan struct{})
		go in.compactWorker()
	}
	return in, nil
}

// recoverDay rebuilds one open day from checkpoint + WAL replay.
func (in *Ingester) recoverDay(day time.Time, ordinalBase uint64) (*dayState, error) {
	st := &dayState{day: day, agg: analytics.NewAggregator(day, in.cls), ordinal: ordinalBase}

	var covered uint64
	if parts, err := in.cfg.Storage.LoadPartials(day); err == nil && len(parts) > 0 {
		base := analytics.NewPartial(day)
		for _, p := range parts {
			if err := base.Merge(p); err != nil {
				return nil, fmt.Errorf("ingest: recovering %s: %w", day.Format("2006-01-02"), err)
			}
		}
		st.base = base
		covered = base.Agg.Flows
	}

	// Replay the WAL over the checkpoint: skip the covered prefix,
	// fold the rest live. The aggregator counts every record exactly
	// once (Flows), which is what makes "covered" recoverable from
	// the checkpoint itself.
	var seen uint64
	frames, err := replayDay(in.cfg.WALDir, day, func(r *flowrec.Record) error {
		seen++
		if seen <= covered {
			return nil
		}
		st.agg.Add(r)
		st.live++
		return nil
	})
	if err != nil {
		return nil, err
	}
	if covered > frames {
		// The checkpoint claims records the WAL does not have — it can
		// only be stale damage (checkpoints flush the WAL first).
		// The WAL is ground truth: rebuild from it alone.
		in.cfg.Logf("ingest: %s: checkpoint covers %d records but WAL holds %d; rebuilding from WAL",
			day.Format("2006-01-02"), covered, frames)
		st.base = nil
		st.agg = analytics.NewAggregator(day, in.cls)
		st.live = 0
		if _, err := replayDay(in.cfg.WALDir, day, func(r *flowrec.Record) error {
			st.agg.Add(r)
			st.live++
			return nil
		}); err != nil {
			return nil, err
		}
	}
	st.count = frames
	st.walHave = frames
	if st.ordinal > frames {
		// Cursor counted deliveries the WAL lost (it cannot: the
		// cursor is written after the flush). Trust the WAL.
		st.ordinal = frames
	}
	mRecovered.Add(frames)
	return st, nil
}

// Resume returns the stream Seq to seek to before feeding records:
// everything before it is durably absorbed. Records at or after it
// may be re-delivered; the Ingester drops the ones it already has.
func (in *Ingester) Resume() uint64 { return in.resume }

// Watermark returns the stream clock: the export time of the newest
// absorbed record.
func (in *Ingester) Watermark() time.Time { return in.watermark }

// OpenDays returns the currently unsealed days, ascending.
func (in *Ingester) OpenDays() []time.Time {
	out := make([]time.Time, 0, len(in.days))
	for _, st := range in.days {
		out = append(out, st.day)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Before(out[j]) })
	return out
}

// state returns (creating if needed) the open-day state for day.
func (in *Ingester) state(day time.Time) *dayState {
	k := day.Unix()
	st := in.days[k]
	if st == nil {
		st = &dayState{day: day, agg: analytics.NewAggregator(day, in.cls)}
		in.days[k] = st
		mOpenDays.Set(int64(len(in.days)))
		if due := dueTime(day, in.cfg.Grace); in.nextDue.IsZero() || due.Before(in.nextDue) {
			in.nextDue = due
		}
	}
	return st
}

// dueTime is when a day's grace window closes and it should seal.
func dueTime(day time.Time, grace time.Duration) time.Time {
	return day.AddDate(0, 0, 1).Add(grace)
}

// recomputeDue refreshes the earliest seal deadline across open days.
func (in *Ingester) recomputeDue() {
	in.nextDue = time.Time{}
	for _, st := range in.days {
		due := dueTime(st.day, in.cfg.Grace)
		if st.retryAfter.After(due) {
			due = st.retryAfter
		}
		if in.nextDue.IsZero() || due.Before(in.nextDue) {
			in.nextDue = due
		}
	}
}

// Ingest absorbs one record whose flow ended at time at (at is the
// stream clock; it must be non-decreasing across calls). The record
// is cut into its Start day — a flow that straddled midnight lands in
// the day it began, exactly like the batch generator partitions.
// Rollover (sealing due days) and incremental checkpoints happen
// inside. The record is copied; the caller may reuse it.
func (in *Ingester) Ingest(ctx context.Context, rec *flowrec.Record, at time.Time) error {
	day := rec.Day()
	k := day.Unix()

	sealed, known := in.sealed[k]
	if !known {
		sealed = in.days[k] == nil && in.cfg.Storage.HasDay(day)
		in.sealed[k] = sealed
	}
	if sealed {
		// Re-delivered record of a day this (or a previous) incarnation
		// already sealed: the lake has it; absorbing it again would
		// double-count.
		mDupsDropped.Inc()
		in.seq++
		return in.advance(ctx, at)
	}

	st := in.state(day)
	st.ordinal++
	in.seq++
	if st.ordinal <= st.walHave {
		// A resumed stream re-delivering a record the recovered WAL
		// already holds (and replay already folded).
		mDupsDropped.Inc()
		return in.advance(ctx, at)
	}

	if st.wal == nil {
		w, err := openSegment(in.cfg.WALDir, day)
		if err != nil {
			return err
		}
		st.wal = w
	}
	// Fold the record exactly as the codec will persist it, so the
	// live aggregate and the eventual sealed-day fold are the same
	// computation — byte-identical canonical aggregates, hot or
	// sealed.
	q := *rec
	q.Quantize()
	if err := st.wal.append(&q); err != nil {
		return fmt.Errorf("ingest: wal append %s: %w", day.Format("2006-01-02"), err)
	}
	st.agg.Add(&q)
	st.live++
	st.count++
	mRecords.Inc()

	if st.live >= uint64(in.cfg.CheckpointEvery) {
		in.checkpointDay(ctx, st)
	}
	return in.advance(ctx, at)
}

// advance moves the stream clock and runs rollover when it crosses a
// day boundary.
func (in *Ingester) advance(ctx context.Context, at time.Time) error {
	if at.After(in.watermark) {
		in.watermark = at
	}
	wmDay := utcDay(in.watermark)
	if wmDay.Equal(in.wmDay) {
		if !in.nextDue.IsZero() && !in.watermark.Before(in.nextDue) {
			// A grace window closed mid-day: seal without waiting for
			// the next calendar rollover.
			err := in.rollover(ctx)
			in.updateLag()
			return err
		}
		in.updateLag()
		return nil
	}
	if in.cfg.SealEmptyDays && !in.wmDay.IsZero() {
		// Every calendar day the clock crossed exists, traffic or not:
		// a silent probe day seals as an empty (valid) day file,
		// distinguishable from an outage gap.
		for d := in.wmDay.AddDate(0, 0, 1); !d.After(wmDay); d = d.AddDate(0, 0, 1) {
			if !in.sealed[d.Unix()] && !in.cfg.Storage.HasDay(d) {
				in.state(d)
			}
		}
	}
	in.wmDay = wmDay
	err := in.rollover(ctx)
	in.updateLag()
	return err
}

// updateLag publishes how overdue the oldest open day's seal is.
func (in *Ingester) updateLag() {
	var lag time.Duration
	for _, st := range in.days {
		due := st.day.AddDate(0, 0, 1).Add(in.cfg.Grace)
		if d := in.watermark.Sub(due); d > lag {
			lag = d
		}
	}
	mLagSeconds.Set(int64(lag / time.Second))
}

// rollover seals every open day whose grace window the stream clock
// has passed. A failed seal degrades: the day stays open (WAL and
// checkpoints intact, hot queries keep answering) and the next
// rollover retries it.
func (in *Ingester) rollover(ctx context.Context) error {
	var due []*dayState
	for _, st := range in.days {
		if !in.watermark.Before(dueTime(st.day, in.cfg.Grace)) && !in.watermark.Before(st.retryAfter) {
			due = append(due, st)
		}
	}
	sort.Slice(due, func(i, j int) bool { return due[i].day.Before(due[j].day) })
	defer in.recomputeDue()
	var firstErr error
	for _, st := range due {
		if err := in.sealDay(ctx, st); err != nil {
			mSealFailures.Inc()
			st.retryAfter = in.watermark.Add(30 * time.Minute)
			in.cfg.Logf("ingest: seal %s failed (day stays open): %v", st.day.Format("2006-01-02"), err)
			if firstErr == nil {
				firstErr = err
			}
			if ctx != nil && ctx.Err() != nil {
				return firstErr
			}
		}
	}
	return nil
}

// sealDay turns one open day into a sealed lake day: flush WAL →
// WriteDay (atomic; its success drops the day's checkpoint partials
// and covering rollups via the storage's own invalidation) → remove
// WAL → compact in the background.
func (in *Ingester) sealDay(ctx context.Context, st *dayState) error {
	if st.wal != nil {
		if err := st.wal.close(); err != nil {
			return err
		}
		st.wal = nil
	}
	day := st.day
	op := func() error {
		if err := in.cfg.Faults.OpFault(faultinject.OpSeal, day); err != nil {
			return err
		}
		_, err := in.cfg.Storage.WriteDay(day, func(write func(*flowrec.Record) error) error {
			_, rerr := replayDay(in.cfg.WALDir, day, func(r *flowrec.Record) error {
				return write(r)
			})
			return rerr
		})
		return err
	}
	if err := in.cfg.Retry.Do(ctx, uint64(day.Unix()), op); err != nil {
		return err
	}
	if err := removeDayWAL(in.cfg.WALDir, day); err != nil {
		return err
	}
	delete(in.days, day.Unix())
	in.sealed[day.Unix()] = true
	mOpenDays.Set(int64(len(in.days)))
	mSeals.Inc()
	in.compact(day)
	return nil
}

// checkpointDay folds the live aggregator into the day's base partial
// and persists the snapshot. The fold happens first, so a failed save
// degrades to "checkpoint is stale" — the base stays in memory, the
// WAL stays authoritative, and the next checkpoint persists the
// accumulated state.
func (in *Ingester) checkpointDay(ctx context.Context, st *dayState) {
	if st.live == 0 {
		return
	}
	if st.wal != nil {
		if err := st.wal.flush(); err != nil {
			in.cfg.Logf("ingest: wal flush %s: %v", st.day.Format("2006-01-02"), err)
			return // without a durable WAL prefix the snapshot may cover lost records
		}
	}
	p := st.agg.Partial()
	st.agg = analytics.NewAggregator(st.day, in.cls)
	st.live = 0
	if st.base == nil {
		st.base = analytics.NewPartial(st.day)
	}
	if err := st.base.Merge(p); err != nil {
		in.cfg.Logf("ingest: checkpoint merge %s: %v", st.day.Format("2006-01-02"), err)
		return
	}
	day := st.day
	op := func() error {
		if err := in.cfg.Faults.OpFault(faultinject.OpCheckpoint, day); err != nil {
			return err
		}
		return in.cfg.Storage.SavePartials(day, []*analytics.Partial{st.base})
	}
	if err := in.cfg.Retry.Do(ctx, uint64(day.Unix()), op); err != nil {
		mCkptFailures.Inc()
		in.cfg.Logf("ingest: checkpoint %s failed (will retry with next batch): %v",
			day.Format("2006-01-02"), err)
		return
	}
	mCheckpoints.Inc()
	// New partials are now visible to a hot-day reader sharing the agg
	// cache: move the lake generation so its cached responses refetch.
	in.bumpGeneration()
	if err := in.writeCursor(); err != nil {
		in.cfg.Logf("ingest: cursor: %v", err)
	}
}

// CheckpointAll checkpoints every open day — the interval-based
// trigger (edged calls it on a timer) and the graceful-shutdown path.
func (in *Ingester) CheckpointAll(ctx context.Context) {
	for _, st := range in.sortedDays() {
		in.checkpointDay(ctx, st)
	}
}

// SealAll seals every open day regardless of grace — the end-of-
// stream path. Days that fail stay open; the first error is returned
// after all are attempted.
func (in *Ingester) SealAll(ctx context.Context) error {
	var firstErr error
	for _, st := range in.sortedDays() {
		if err := in.sealDay(ctx, st); err != nil {
			mSealFailures.Inc()
			in.cfg.Logf("ingest: seal %s failed: %v", st.day.Format("2006-01-02"), err)
			if firstErr == nil {
				firstErr = err
			}
		}
	}
	in.updateLag()
	return firstErr
}

// Close shuts the Ingester down gracefully without sealing: open days
// are checkpointed, their WAL segments flushed and closed, the resume
// cursor written, and the background compactor drained. A later Open
// over the same WALDir continues exactly where this one stopped.
func (in *Ingester) Close(ctx context.Context) error {
	in.CheckpointAll(ctx)
	var firstErr error
	for _, st := range in.days {
		if st.wal != nil {
			if err := st.wal.close(); err != nil && firstErr == nil {
				firstErr = err
			}
			st.wal = nil
		}
	}
	if err := in.writeCursor(); err != nil && firstErr == nil {
		firstErr = err
	}
	if in.compactCh != nil {
		close(in.compactCh)
		<-in.compactWG
		in.compactCh = nil
	}
	return firstErr
}

// sortedDays returns open-day states ascending by day.
func (in *Ingester) sortedDays() []*dayState {
	out := make([]*dayState, 0, len(in.days))
	for _, st := range in.days {
		out = append(out, st)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].day.Before(out[j].day) })
	return out
}

// compact hands a sealed day to the compaction worker (or compacts
// inline under CompactSync). A failed compaction is not data loss —
// the day stays in its sealed row format, still a valid lake day.
func (in *Ingester) compact(day time.Time) {
	if in.cfg.Compactor == nil {
		return
	}
	if in.cfg.CompactSync || in.compactCh == nil {
		in.compactDay(day)
		return
	}
	in.compactCh <- day
}

func (in *Ingester) compactDay(day time.Time) {
	if _, err := in.cfg.Compactor.CompactDay(day, in.cfg.CompactFormat); err != nil {
		mCompactErrors.Inc()
		in.cfg.Logf("ingest: compact %s: %v", day.Format("2006-01-02"), err)
		return
	}
	mCompactions.Inc()
	// The day's physical bytes changed format; derived readers keyed
	// on the generation must revalidate.
	in.bumpGeneration()
}

func (in *Ingester) compactWorker() {
	defer close(in.compactWG)
	for day := range in.compactCh {
		in.compactDay(day)
	}
}

// cursorPath names the resume-cursor file.
func cursorPath(walDir string) string { return filepath.Join(walDir, "cursor.gob") }

// loadCursor reads the resume cursor; absent or damaged reads as the
// zero cursor (resume from the stream start — recovery dedup makes
// that correct, just slower).
func loadCursor(walDir string) cursorFile {
	var cur cursorFile
	f, err := os.Open(cursorPath(walDir))
	if err != nil {
		return cursorFile{}
	}
	defer f.Close()
	if err := gob.NewDecoder(f).Decode(&cur); err != nil || cur.Version != cursorVersion {
		return cursorFile{}
	}
	return cur
}

// writeCursor flushes every open day's WAL (the durability the cursor
// asserts) and atomically persists the resume state.
func (in *Ingester) writeCursor() error {
	for _, st := range in.days {
		if st.wal != nil {
			if err := st.wal.flush(); err != nil {
				return err
			}
		}
	}
	cur := cursorFile{Version: cursorVersion, Seq: in.seq, Days: make(map[int64]uint64, len(in.days))}
	for k, st := range in.days {
		cur.Days[k] = st.ordinal
	}
	path := cursorPath(in.cfg.WALDir)
	f, err := os.CreateTemp(in.cfg.WALDir, "cursor.tmp-*")
	if err != nil {
		return err
	}
	tmp := f.Name()
	err = gob.NewEncoder(f).Encode(cur)
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	if err == nil {
		err = os.Rename(tmp, path)
	}
	if err != nil {
		os.Remove(tmp)
		return err
	}
	in.resume = cur.Seq
	return nil
}

// utcDay truncates t to its UTC midnight.
func utcDay(t time.Time) time.Time {
	y, m, d := t.UTC().Date()
	return time.Date(y, m, d, 0, 0, 0, 0, time.UTC)
}
