package ingest

import (
	"bytes"
	"context"
	"testing"
	"time"

	"repro/internal/analytics"
	"repro/internal/classify"
	"repro/internal/flowrec"
	"repro/internal/simnet"
)

// Day-rollover boundary behaviour, pinned with hand-built records so
// each edge is explicit rather than hoped-for in simulated traffic:
// a flow that straddles midnight is cut into the day it started, the
// grace window holds a day open while its late flows can still
// arrive, and a calendar day the clock crosses without traffic seals
// as an empty — but valid — day file.

// sampleRecord pulls one real record off a stream so synthetic tests
// inherit a fully-populated record without knowing field invariants.
func sampleRecord(t *testing.T) flowrec.Record {
	t.Helper()
	w := simnet.NewWorld(ingestSeed, ingestScale)
	src := w.Stream(ingestDays(7, 1))
	var sr simnet.StreamRecord
	if !src.Next(&sr) {
		t.Fatal("stream produced no records")
	}
	return sr.Rec
}

// at returns a record's export time.
func exportTime(r *flowrec.Record) time.Time { return r.Start.Add(r.Duration) }

func TestStraddlerCutIntoStartDay(t *testing.T) {
	lake := newTestLake(t)
	cfg := lake.config()
	cfg.Grace = 2 * time.Hour
	in, err := Open(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()

	base := sampleRecord(t)
	dayD := simnet.SpanStart.AddDate(0, 0, 100)
	dayE := dayD.AddDate(0, 0, 1)

	mk := func(start time.Time, dur time.Duration) flowrec.Record {
		r := base
		r.Start, r.Duration = start, dur
		return r
	}

	recA := mk(dayD.Add(22*time.Hour), time.Second)
	recS := mk(dayD.Add(23*time.Hour+30*time.Minute), time.Hour) // ends 00:30 next day
	recB := mk(dayE.Add(time.Hour), time.Second)

	for _, r := range []flowrec.Record{recA, recS, recB} {
		r := r
		if err := in.Ingest(ctx, &r, exportTime(&r)); err != nil {
			t.Fatal(err)
		}
	}

	// The straddler exported after midnight, but it belongs to dayD —
	// and dayD is still open: its grace window (02:00 next day) has
	// not closed at watermark 01:00:01.
	if lake.storage.HasDay(dayD) {
		t.Fatal("dayD sealed inside its grace window")
	}
	if got := in.OpenDays(); len(got) != 2 || !got[0].Equal(dayD) || !got[1].Equal(dayE) {
		t.Fatalf("open days = %v, want [dayD dayE]", got)
	}

	// A record at 03:00 pushes the watermark past dayD's grace
	// deadline mid-day: dayD seals, dayE stays open.
	recC := mk(dayE.Add(3*time.Hour), time.Second)
	if err := in.Ingest(ctx, &recC, exportTime(&recC)); err != nil {
		t.Fatal(err)
	}
	if !lake.storage.HasDay(dayD) {
		t.Fatal("dayD not sealed after its grace window closed")
	}
	if lake.storage.HasDay(dayE) {
		t.Fatal("dayE sealed while current")
	}

	var n, straddlers int
	if err := lake.storage.ReadDay(dayD, func(r *flowrec.Record) error {
		n++
		if exportTime(r).After(dayE) {
			straddlers++
		}
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if n != 2 {
		t.Fatalf("sealed dayD holds %d records, want 2 (recA + straddler)", n)
	}
	if straddlers != 1 {
		t.Fatalf("sealed dayD holds %d midnight straddlers, want 1", straddlers)
	}

	if err := in.SealAll(ctx); err != nil {
		t.Fatal(err)
	}
	if err := in.Close(ctx); err != nil {
		t.Fatal(err)
	}
	n = 0
	if err := lake.storage.ReadDay(dayE, func(*flowrec.Record) error { n++; return nil }); err != nil {
		t.Fatal(err)
	}
	if n != 2 {
		t.Fatalf("sealed dayE holds %d records, want 2 (recB + recC)", n)
	}
}

func TestZeroRecordDaySealsEmptyButValid(t *testing.T) {
	lake := newTestLake(t)
	cfg := lake.config()
	cfg.Grace = 2 * time.Hour
	cfg.SealEmptyDays = true
	in, err := Open(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()

	base := sampleRecord(t)
	dayD := simnet.SpanStart.AddDate(0, 0, 200)
	gap := dayD.AddDate(0, 0, 1)
	dayF := dayD.AddDate(0, 0, 2)

	r1 := base
	r1.Start, r1.Duration = dayD.Add(12*time.Hour), time.Second
	if err := in.Ingest(ctx, &r1, exportTime(&r1)); err != nil {
		t.Fatal(err)
	}
	// The next flow arrives two days later: the probe was up, the
	// line was silent. Crossing the boundary must seal dayD (overdue)
	// and the gap day (empty), leaving only dayF open.
	r2 := base
	r2.Start, r2.Duration = dayF.Add(12*time.Hour), time.Second
	if err := in.Ingest(ctx, &r2, exportTime(&r2)); err != nil {
		t.Fatal(err)
	}

	if !lake.storage.HasDay(dayD) {
		t.Fatal("overdue dayD not sealed")
	}
	if !lake.storage.HasDay(gap) {
		t.Fatal("silent gap day not sealed as an empty day")
	}
	if got := in.OpenDays(); len(got) != 1 || !got[0].Equal(dayF) {
		t.Fatalf("open days = %v, want [dayF]", got)
	}

	// The empty day is valid and readable: zero records, and its
	// canonical aggregate equals a genuinely empty fold of that day.
	n := 0
	if err := lake.storage.ReadDay(gap, func(*flowrec.Record) error { n++; return nil }); err != nil {
		t.Fatalf("reading empty day: %v", err)
	}
	if n != 0 {
		t.Fatalf("empty day holds %d records", n)
	}
	got := lakeCanon(t, lake.storage, gap)
	want, err := analytics.CanonicalBytes(analytics.NewAggregator(gap, classify.Default()).Result())
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, want) {
		t.Error("empty day's canonical aggregate differs from an empty fold")
	}

	days, err := lake.storage.Days()
	if err != nil {
		t.Fatal(err)
	}
	if len(days) != 2 || !days[0].Equal(dayD) || !days[1].Equal(gap) {
		t.Fatalf("lake lists %v, want [dayD gap]", days)
	}
	if err := in.Close(ctx); err != nil {
		t.Fatal(err)
	}
}
