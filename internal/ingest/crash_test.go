package ingest

import (
	"bytes"
	"context"
	"os"
	"path/filepath"
	"testing"
	"time"

	"repro/internal/faultinject"
	"repro/internal/flowrec"
	"repro/internal/retry"
	"repro/internal/simnet"
)

// The crash property: kill the daemon anywhere — between records,
// between checkpoints, during a faulted checkpoint, during a faulted
// seal — restart it over the same WAL tree, seek the stream to its
// resume cursor, and the finished lake must still be byte-identical
// to the batch build. No record lost, none double-counted, no
// leftover attempt state on disk.

// killPoints derives deterministic kill positions from a seed: the
// same storm replays identically run after run.
func killPoints(seed uint64, total, n int) []int {
	x := seed | 1
	pts := make(map[int]bool, n)
	for len(pts) < n {
		// xorshift64
		x ^= x << 13
		x ^= x >> 7
		x ^= x << 17
		p := int(x % uint64(total))
		if p > 0 {
			pts[p] = true
		}
	}
	out := make([]int, 0, n)
	for p := range pts {
		out = append(out, p)
	}
	// Positions are consumed via "kill once past point"; order them.
	for i := 0; i < len(out); i++ {
		for j := i + 1; j < len(out); j++ {
			if out[j] < out[i] {
				out[i], out[j] = out[j], out[i]
			}
		}
	}
	return out
}

// streamTotal counts a world's stream records over days.
func streamTotal(w *simnet.World, days []time.Time) int {
	src := w.Stream(days)
	var sr simnet.StreamRecord
	n := 0
	for src.Next(&sr) {
		n++
	}
	return n
}

// runUntil feeds the ingester from the stream until the stream is
// exhausted or the next record's Seq reaches stop. It never calls
// Close: the caller decides whether this incarnation dies gracefully
// or is abandoned mid-flight like a killed process (buffered WAL
// frames lost, cursor stale, file handles leaked to the OS).
func runUntil(t *testing.T, in *Ingester, w *simnet.World, days []time.Time, stop uint64) {
	t.Helper()
	ctx := context.Background()
	src := w.Stream(days)
	src.Seek(in.Resume())
	var sr simnet.StreamRecord
	for src.Pos() < stop && src.Next(&sr) {
		if err := in.Ingest(ctx, &sr.Rec, sr.At); err != nil {
			t.Fatalf("ingest at seq %d: %v", sr.Seq, err)
		}
	}
}

func TestCrashRecoveryStorm(t *testing.T) {
	days := ingestDays(7, 4)
	w := simnet.NewWorld(ingestSeed, ingestScale)
	total := streamTotal(w, days)
	kills := killPoints(0xEDCE5, total, 6)
	lake := newTestLake(t)
	ctx := context.Background()

	dups0, recov0 := mDupsDropped.Load(), mRecoveries.Load()

	for _, k := range kills {
		in, err := Open(lake.config())
		if err != nil {
			t.Fatalf("reopen before kill point %d: %v", k, err)
		}
		if in.Resume() > uint64(k) {
			continue // an earlier incarnation already durably passed this point
		}
		runUntil(t, in, w, days, uint64(k))
		// Kill: no Close, no flush, no cursor write. Unflushed WAL
		// frames die with the incarnation; flushed ones survive.
	}

	// Plant a stale checkpoint temp — the debris of a SavePartials
	// killed mid-write. Recovery must ignore it: only the exact final
	// path is ever loaded.
	aggDir := filepath.Join(filepath.Dir(lake.walDir), "..", "agg")
	staleDay := days[0]
	staleDir := filepath.Join(aggDir, staleDay.Format("2006"), staleDay.Format("01"))
	os.MkdirAll(staleDir, 0o755)
	stale := filepath.Join(staleDir,
		"parts-"+staleDay.Format("20060102")+"-v2.gob.gz.tmp-666")
	if err := os.WriteFile(stale, []byte("torn checkpoint debris"), 0o644); err != nil {
		t.Fatal(err)
	}

	in, err := Open(lake.config())
	if err != nil {
		t.Fatal(err)
	}
	runUntil(t, in, w, days, uint64(total)+1)
	if err := in.SealAll(ctx); err != nil {
		t.Fatal(err)
	}
	if err := in.Close(ctx); err != nil {
		t.Fatal(err)
	}

	if mRecoveries.Load() == recov0 {
		t.Error("no incarnation reported a recovery")
	}
	if mDupsDropped.Load() == dups0 {
		t.Error("no re-delivered records were deduplicated — the kills were vacuous")
	}

	for _, day := range days {
		if !bytes.Equal(lakeCanon(t, lake.storage, day), batchCanon(t, w, day)) {
			t.Errorf("day %s: lake after %d crashes diverges from batch fold",
				day.Format("2006-01-02"), len(kills))
		}
	}

	// Nothing leaked: the WAL tree holds no day dirs and no cursor
	// temps, and the planted stale checkpoint temp was never promoted.
	ents, err := os.ReadDir(lake.walDir)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range ents {
		if e.IsDir() {
			t.Errorf("leaked WAL day dir %s", e.Name())
		}
		if ok, _ := filepath.Match("cursor.tmp-*", e.Name()); ok {
			t.Errorf("leaked cursor temp %s", e.Name())
		}
	}
	if _, err := os.Stat(stale); err != nil {
		// Sealing invalidates the day's derived caches; the stale temp
		// may be swept with them. Either fate is fine — what matters is
		// that it was never loaded, which the byte-equality above
		// proves (its payload is not even a gzip).
		if !os.IsNotExist(err) {
			t.Fatal(err)
		}
	}
}

// flakyCompactor fails its first CompactDay — the moral equivalent of
// a compaction killed mid-rewrite (CompactDay itself is atomic, so a
// real kill leaves the same observable state: a valid uncompacted
// day).
type flakyCompactor struct {
	inner  Compactor
	failed bool
}

func (f *flakyCompactor) CompactDay(day time.Time, format flowrec.Format) (uint64, error) {
	if !f.failed {
		f.failed = true
		return 0, os.ErrDeadlineExceeded
	}
	return f.inner.CompactDay(day, format)
}

// TestCrashDuringCheckpointSealAndCompaction drives the storm through
// injected checkpoint and seal faults (with kills landing while those
// fault windows are open) and a compactor that dies on its first day.
// Degradation, not data loss: every failure leaves the WAL
// authoritative and the finished lake byte-identical.
func TestCrashDuringCheckpointSealAndCompaction(t *testing.T) {
	days := ingestDays(7, 3)
	w := simnet.NewWorld(ingestSeed, ingestScale)
	total := streamTotal(w, days)
	lake := newTestLake(t)
	ctx := context.Background()

	plan, err := faultinject.Parse("checkpoint:p=1,fails=3,transient,seed=11;seal:p=1,fails=2,transient,seed=11")
	if err != nil {
		t.Fatal(err)
	}
	fc := &flakyCompactor{inner: lake.store}
	cfg := lake.config()
	cfg.Faults = plan
	cfg.Compactor = fc
	// One retry absorbs part of the fault budget; the rest surfaces as
	// degraded checkpoints/seals that later attempts clear.
	cfg.Retry = retry.Policy{Attempts: 2, Sleep: func(time.Duration) {}}

	ckf0, sf0, cpf0 := mCkptFailures.Load(), mSealFailures.Load(), mCompactErrors.Load()

	// Kill twice mid-stream — the first checkpoints of each
	// incarnation fall inside the fault window, so these kills land
	// after failed checkpoints: the crash-during-checkpoint case.
	for _, k := range []int{total / 3, 2 * total / 3} {
		in, err := Open(cfg)
		if err != nil {
			t.Fatal(err)
		}
		if in.Resume() > uint64(k) {
			continue
		}
		runUntil(t, in, w, days, uint64(k))
	}

	in, err := Open(cfg)
	if err != nil {
		t.Fatal(err)
	}
	runUntil(t, in, w, days, uint64(total)+1)
	// Seals may fail while the fault budget lasts; SealAll again until
	// the lake is complete (bounded — the faults are fails=N).
	for i := 0; i < 5; i++ {
		if err := in.SealAll(ctx); err == nil {
			break
		}
	}
	if err := in.Close(ctx); err != nil {
		t.Fatal(err)
	}

	if mCkptFailures.Load() == ckf0 {
		t.Error("checkpoint faults never fired — the crash-during-checkpoint path was vacuous")
	}
	if mSealFailures.Load() == sf0 {
		t.Error("seal faults never fired — the crash-during-seal path was vacuous")
	}
	if mCompactErrors.Load() == cpf0 {
		t.Error("compactor fault never fired")
	}

	for _, day := range days {
		if !lake.storage.HasDay(day) {
			t.Fatalf("day %s never sealed through the fault storm", day.Format("2006-01-02"))
		}
		if !bytes.Equal(lakeCanon(t, lake.storage, day), batchCanon(t, w, day)) {
			t.Errorf("day %s: faulted lake diverges from batch fold", day.Format("2006-01-02"))
		}
	}

	// The day whose compaction failed is still a valid v1 day — and a
	// later compaction pass fixes it up with no ingester involved.
	if _, err := lake.store.CompactDay(days[0], flowrec.FormatV3); err != nil {
		t.Fatalf("re-compacting the degraded day: %v", err)
	}
}

// TestDamagedCursorFallsBackToFullReplay: a corrupt resume cursor must
// read as "resume from the start", with recovery dedup absorbing the
// full re-delivery — slower, never wrong.
func TestDamagedCursorFallsBackToFullReplay(t *testing.T) {
	days := ingestDays(7, 2)
	w := simnet.NewWorld(ingestSeed, ingestScale)
	total := streamTotal(w, days)
	lake := newTestLake(t)
	ctx := context.Background()

	in, err := Open(lake.config())
	if err != nil {
		t.Fatal(err)
	}
	runUntil(t, in, w, days, uint64(total/2))
	if err := in.Close(ctx); err != nil {
		t.Fatal(err)
	}

	if err := os.WriteFile(filepath.Join(lake.walDir, "cursor.gob"),
		[]byte("not a cursor"), 0o644); err != nil {
		t.Fatal(err)
	}

	in2, err := Open(lake.config())
	if err != nil {
		t.Fatal(err)
	}
	if in2.Resume() != 0 {
		t.Fatalf("damaged cursor resumed at %d, want 0", in2.Resume())
	}
	dups0 := mDupsDropped.Load()
	runUntil(t, in2, w, days, uint64(total)+1)
	if err := in2.SealAll(ctx); err != nil {
		t.Fatal(err)
	}
	if err := in2.Close(ctx); err != nil {
		t.Fatal(err)
	}
	if mDupsDropped.Load() == dups0 {
		t.Error("full replay deduplicated nothing — the WAL recovery was vacuous")
	}
	for _, day := range days {
		if !bytes.Equal(lakeCanon(t, lake.storage, day), batchCanon(t, w, day)) {
			t.Errorf("day %s: lake after cursor damage diverges from batch fold", day.Format("2006-01-02"))
		}
	}
}
