package stats

import (
	"sync"
	"testing"
)

// TestECDFConcurrentQueries regresses the lazy-sort data race: the
// first query after a batch of Adds used to sort the sample slice
// unlocked, so two goroutines querying the same freshly-filled ECDF
// concurrently (figure renderers share distributions) both sorted it
// at once. Run under -race this fails loudly on the old code; the
// fix locks the one-shot finalization and lets explicit Finalize()
// pre-sort before fan-out.
func TestECDFConcurrentQueries(t *testing.T) {
	// A serially-queried twin supplies the expected answers, so the
	// assertion does not depend on the quantile convention.
	var ref, e ECDF
	for i := 10_000; i > 0; i-- {
		ref.Add(float64(i % 997))
		e.Add(float64(i % 997))
	}
	wantMedian := ref.Median()
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			// First readers race into the lazy sort; all must agree.
			if got := e.Median(); got != wantMedian {
				t.Errorf("goroutine %d: Median = %v, want %v", g, got, wantMedian)
			}
			if p := e.P(499); p <= 0 || p > 1 {
				t.Errorf("goroutine %d: P(499) = %v", g, p)
			}
			_ = e.Mean()
			_ = e.Quantile(0.9)
		}(g)
	}
	wg.Wait()
}

// TestECDFFinalizeIdempotent: Finalize may run any number of times
// (and concurrently with queries) without changing answers.
func TestECDFFinalizeIdempotent(t *testing.T) {
	var e ECDF
	e.AddAll([]float64{3, 1, 2})
	e.Finalize()
	m1 := e.Median()
	e.Finalize()
	if m2 := e.Median(); m2 != m1 {
		t.Errorf("Median changed across Finalize: %v vs %v", m1, m2)
	}
}
