package stats

import (
	"math"
	"sort"
	"testing"
	"testing/quick"
)

func TestECDFBasics(t *testing.T) {
	var e ECDF
	if e.P(5) != 0 || e.CCDF(5) != 1 {
		t.Error("empty ECDF should be 0/1")
	}
	if e.Quantile(0.5) != 0 || e.Mean() != 0 {
		t.Error("empty ECDF quantile/mean should be 0, never NaN")
	}
	e.AddAll([]float64{1, 2, 3, 4})
	if e.N() != 4 {
		t.Errorf("N = %d", e.N())
	}
	if got := e.P(2); got != 0.5 {
		t.Errorf("P(2) = %v, want 0.5", got)
	}
	if got := e.P(2.5); got != 0.5 {
		t.Errorf("P(2.5) = %v, want 0.5", got)
	}
	if got := e.CCDF(3); got != 0.25 {
		t.Errorf("CCDF(3) = %v, want 0.25", got)
	}
	if got := e.P(0.5); got != 0 {
		t.Errorf("P(0.5) = %v, want 0", got)
	}
	if got := e.P(10); got != 1 {
		t.Errorf("P(10) = %v, want 1", got)
	}
	if got := e.Mean(); got != 2.5 {
		t.Errorf("Mean = %v", got)
	}
}

func TestECDFAddAfterQuery(t *testing.T) {
	var e ECDF
	e.Add(10)
	_ = e.P(10)
	e.Add(1) // must re-sort
	if got := e.Quantile(0); got != 1 {
		t.Errorf("Quantile(0) = %v, want 1", got)
	}
}

func TestQuantileNearestRank(t *testing.T) {
	var e ECDF
	e.AddAll([]float64{10, 20, 30, 40, 50})
	cases := []struct{ q, want float64 }{
		{0, 10}, {0.2, 10}, {0.21, 20}, {0.5, 30}, {0.9, 50}, {1, 50},
	}
	for _, c := range cases {
		if got := e.Quantile(c.q); got != c.want {
			t.Errorf("Quantile(%v) = %v, want %v", c.q, got, c.want)
		}
	}
	if e.Median() != 30 {
		t.Errorf("Median = %v", e.Median())
	}
}

// Property: P is monotone and within [0,1].
func TestECDFMonotoneProperty(t *testing.T) {
	f := func(vs []float64, a, b float64) bool {
		var e ECDF
		for _, v := range vs {
			if !math.IsNaN(v) && !math.IsInf(v, 0) {
				e.Add(v)
			}
		}
		if a > b {
			a, b = b, a
		}
		pa, pb := e.P(a), e.P(b)
		return pa >= 0 && pb <= 1 && pa <= pb
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestCurves(t *testing.T) {
	var e ECDF
	e.AddAll([]float64{1, 10, 100})
	xs := LogSpace(0.1, 1000, 5)
	cdf := e.CDFCurve(xs)
	ccdf := e.CCDFCurve(xs)
	if len(cdf) != 5 || len(ccdf) != 5 {
		t.Fatal("curve lengths wrong")
	}
	for i := range cdf {
		if sum := cdf[i].Y + ccdf[i].Y; math.Abs(sum-1) > 1e-12 {
			t.Errorf("CDF+CCDF = %v at x=%v", sum, cdf[i].X)
		}
	}
	if cdf[0].Y != 0 || cdf[4].Y != 1 {
		t.Errorf("CDF endpoints: %v .. %v", cdf[0].Y, cdf[4].Y)
	}
}

func TestLogSpace(t *testing.T) {
	xs := LogSpace(1, 1000, 4)
	want := []float64{1, 10, 100, 1000}
	for i := range want {
		if math.Abs(xs[i]-want[i])/want[i] > 1e-9 {
			t.Errorf("xs[%d] = %v, want %v", i, xs[i], want[i])
		}
	}
	defer func() {
		if recover() == nil {
			t.Error("LogSpace(0,...) did not panic")
		}
	}()
	LogSpace(0, 10, 3)
}

func TestLinSpace(t *testing.T) {
	xs := LinSpace(0, 10, 11)
	if len(xs) != 11 || xs[0] != 0 || xs[10] != 10 || xs[5] != 5 {
		t.Errorf("LinSpace = %v", xs)
	}
}

func TestBezierEndpoints(t *testing.T) {
	in := []Point{{0, 1}, {1, 5}, {2, 2}, {3, 8}}
	out := Bezier(in, 50)
	if len(out) != 50 {
		t.Fatalf("len = %d", len(out))
	}
	if out[0] != in[0] {
		t.Errorf("first point %v, want %v", out[0], in[0])
	}
	last := out[len(out)-1]
	if math.Abs(last.X-3) > 1e-9 || math.Abs(last.Y-8) > 1e-9 {
		t.Errorf("last point %v, want {3 8}", last)
	}
	// Bézier of a convex-combination stays within the hull.
	for _, p := range out {
		if p.Y < 1-1e-9 || p.Y > 8+1e-9 {
			t.Errorf("point %v escapes the control hull", p)
		}
	}
}

func TestBezierDegenerate(t *testing.T) {
	if out := Bezier(nil, 10); out != nil {
		t.Error("nil input should give nil")
	}
	single := []Point{{1, 2}}
	out := Bezier(single, 10)
	if len(out) != 1 || out[0] != single[0] {
		t.Errorf("single point: %v", out)
	}
}

func TestBezierSmoothsLine(t *testing.T) {
	// A straight control polygon must stay a straight line.
	in := []Point{{0, 0}, {1, 1}, {2, 2}, {3, 3}}
	for _, p := range Bezier(in, 20) {
		if math.Abs(p.Y-p.X) > 1e-9 {
			t.Errorf("point %v off the line", p)
		}
	}
}

func TestHistogram(t *testing.T) {
	h := NewHistogram(0, 10, 10)
	h.Add(0.5)
	h.Add(5.5)
	h.AddN(9.5, 3)
	h.Add(-4)  // clamps to first bin
	h.Add(400) // clamps to last bin
	if h.Total() != 7 {
		t.Errorf("Total = %d", h.Total())
	}
	if h.Counts[0] != 2 || h.Counts[5] != 1 || h.Counts[9] != 4 {
		t.Errorf("Counts = %v", h.Counts)
	}
	if got := h.BinCenter(0); got != 0.5 {
		t.Errorf("BinCenter(0) = %v", got)
	}
	cdf := h.CDF()
	if cdf[9] != 1 {
		t.Errorf("CDF tail = %v", cdf[9])
	}
	if !sort.Float64sAreSorted(cdf) {
		t.Errorf("CDF not monotone: %v", cdf)
	}
}

func TestHistogramMerge(t *testing.T) {
	a, b := NewHistogram(0, 10, 5), NewHistogram(0, 10, 5)
	a.Add(1)
	b.Add(1)
	b.Add(9)
	if err := a.Merge(b); err != nil {
		t.Fatal(err)
	}
	if a.Total() != 3 || a.Counts[0] != 2 || a.Counts[4] != 1 {
		t.Errorf("merged = %v total %d", a.Counts, a.Total())
	}
	c := NewHistogram(0, 5, 5)
	if err := a.Merge(c); err == nil {
		t.Error("incongruent merge accepted")
	}
}

func TestRandDeterminism(t *testing.T) {
	a, b := NewRand(7), NewRand(7)
	for i := 0; i < 100; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatal("same seed diverged")
		}
	}
	if NewRand(7).Uint64() == NewRand(8).Uint64() {
		t.Error("different seeds collided on first draw")
	}
}

func TestMix64(t *testing.T) {
	if Mix64(1, 2) == Mix64(2, 1) {
		t.Error("Mix64 is order-insensitive")
	}
	if Mix64(5) != Mix64(5) {
		t.Error("Mix64 not deterministic")
	}
}

func TestFloat64Range(t *testing.T) {
	r := NewRand(99)
	for i := 0; i < 10000; i++ {
		v := r.Float64()
		if v < 0 || v >= 1 {
			t.Fatalf("Float64 = %v out of [0,1)", v)
		}
	}
}

func TestNormalMoments(t *testing.T) {
	r := NewRand(1234)
	const n = 200000
	var sum, sum2 float64
	for i := 0; i < n; i++ {
		v := r.Normal(10, 2)
		sum += v
		sum2 += v * v
	}
	mean := sum / n
	sd := math.Sqrt(sum2/n - mean*mean)
	if math.Abs(mean-10) > 0.05 {
		t.Errorf("mean = %v, want ~10", mean)
	}
	if math.Abs(sd-2) > 0.05 {
		t.Errorf("sd = %v, want ~2", sd)
	}
}

func TestLogNormalMedian(t *testing.T) {
	r := NewRand(77)
	var e ECDF
	for i := 0; i < 50000; i++ {
		e.Add(r.LogNormal(math.Log(100), 1))
	}
	med := e.Median()
	if med < 90 || med > 110 {
		t.Errorf("lognormal median = %v, want ~100", med)
	}
}

func TestPoissonMean(t *testing.T) {
	r := NewRand(5)
	for _, mean := range []float64{0.5, 5, 80} {
		var sum float64
		const n = 50000
		for i := 0; i < n; i++ {
			sum += float64(r.Poisson(mean))
		}
		got := sum / n
		if math.Abs(got-mean)/mean > 0.05 {
			t.Errorf("Poisson(%v) mean = %v", mean, got)
		}
	}
	if r.Poisson(0) != 0 || r.Poisson(-1) != 0 {
		t.Error("non-positive mean should give 0")
	}
}

func TestExpMean(t *testing.T) {
	r := NewRand(11)
	var sum float64
	const n = 100000
	for i := 0; i < n; i++ {
		sum += r.Exp(42)
	}
	if got := sum / n; math.Abs(got-42) > 1.5 {
		t.Errorf("Exp mean = %v, want ~42", got)
	}
}

func TestZipfSkew(t *testing.T) {
	r := NewRand(3)
	counts := make([]int, 10)
	for i := 0; i < 100000; i++ {
		counts[r.Zipf(10, 1.0)]++
	}
	if counts[0] <= counts[1] || counts[1] <= counts[5] {
		t.Errorf("Zipf counts not decreasing: %v", counts)
	}
	if r.Zipf(1, 1) != 0 || r.Zipf(0, 1) != 0 {
		t.Error("degenerate Zipf should return 0")
	}
}

func TestIntnPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("Intn(0) did not panic")
		}
	}()
	NewRand(1).Intn(0)
}

func TestBool(t *testing.T) {
	r := NewRand(8)
	trues := 0
	for i := 0; i < 10000; i++ {
		if r.Bool(0.25) {
			trues++
		}
	}
	if trues < 2200 || trues > 2800 {
		t.Errorf("Bool(0.25) rate = %v", float64(trues)/10000)
	}
}

func TestLogistic(t *testing.T) {
	if got := Logistic(0, 0, 1, 10); math.Abs(got-5) > 1e-9 {
		t.Errorf("Logistic midpoint = %v, want 5", got)
	}
	if got := Logistic(100, 0, 1, 10); math.Abs(got-10) > 1e-6 {
		t.Errorf("Logistic(+inf) = %v, want 10", got)
	}
	if got := Logistic(-100, 0, 1, 10); got > 1e-6 {
		t.Errorf("Logistic(-inf) = %v, want 0", got)
	}
	// Monotone.
	prev := -1.0
	for x := -5.0; x <= 5; x += 0.5 {
		v := Logistic(x, 0, 2, 1)
		if v <= prev {
			t.Errorf("Logistic not increasing at %v", x)
		}
		prev = v
	}
}

func BenchmarkECDFQuantile(b *testing.B) {
	var e ECDF
	r := NewRand(1)
	for i := 0; i < 100000; i++ {
		e.Add(r.LogNormal(5, 2))
	}
	_ = e.Median() // force the sort once
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = e.Quantile(0.9)
	}
}

func BenchmarkRandLogNormal(b *testing.B) {
	r := NewRand(1)
	for i := 0; i < b.N; i++ {
		_ = r.LogNormal(5, 2)
	}
}
