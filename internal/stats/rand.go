package stats

import "math"

// Rand is a small, fast, deterministic PRNG (splitmix64 core) used by
// the traffic model. Unlike math/rand it can be seeded hierarchically
// and cheaply: the model derives one Rand per (subscriber, day) so any
// slice of the five-year dataset can be generated independently, in
// parallel, and reproducibly.
type Rand struct {
	state uint64
}

// NewRand seeds a generator.
func NewRand(seed uint64) *Rand { return &Rand{state: seed} }

// Mix64 hashes several values into a new seed; the model uses it to
// derive child generators (seed, subscriber, day) → stream.
func Mix64(vs ...uint64) uint64 {
	h := uint64(0x9E3779B97F4A7C15)
	for _, v := range vs {
		h ^= v + 0x9E3779B97F4A7C15 + h<<6 + h>>2
		h = splitmix(h)
	}
	return h
}

// splitmix is the splitmix64 output function.
func splitmix(x uint64) uint64 {
	x += 0x9E3779B97F4A7C15
	z := x
	z = (z ^ z>>30) * 0xBF58476D1CE4E5B9
	z = (z ^ z>>27) * 0x94D049BB133111EB
	return z ^ z>>31
}

// Uint64 returns the next 64 random bits.
func (r *Rand) Uint64() uint64 {
	r.state += 0x9E3779B97F4A7C15
	z := r.state
	z = (z ^ z>>30) * 0xBF58476D1CE4E5B9
	z = (z ^ z>>27) * 0x94D049BB133111EB
	return z ^ z>>31
}

// Float64 returns a uniform value in [0, 1).
func (r *Rand) Float64() float64 {
	return float64(r.Uint64()>>11) / (1 << 53)
}

// Intn returns a uniform int in [0, n). It panics when n <= 0.
func (r *Rand) Intn(n int) int {
	if n <= 0 {
		panic("stats: Intn with non-positive n")
	}
	return int(r.Uint64() % uint64(n))
}

// Bool returns true with probability p.
func (r *Rand) Bool(p float64) bool { return r.Float64() < p }

// Normal returns a sample from N(mu, sigma) via Box-Muller.
func (r *Rand) Normal(mu, sigma float64) float64 {
	u1 := r.Float64()
	for u1 == 0 {
		u1 = r.Float64()
	}
	u2 := r.Float64()
	z := math.Sqrt(-2*math.Log(u1)) * math.Cos(2*math.Pi*u2)
	return mu + sigma*z
}

// LogNormal returns a sample whose logarithm is N(mu, sigma). The
// daily traffic of a subscriber is modelled as a mixture of two
// lognormals (light and heavy days), reproducing the bimodal CCDF of
// Figure 2.
func (r *Rand) LogNormal(mu, sigma float64) float64 {
	return math.Exp(r.Normal(mu, sigma))
}

// Exp returns an exponential sample with the given mean.
func (r *Rand) Exp(mean float64) float64 {
	u := r.Float64()
	for u == 0 {
		u = r.Float64()
	}
	return -mean * math.Log(u)
}

// Poisson returns a Poisson sample with the given mean (Knuth's
// method below 30, normal approximation above — flow counts per day
// reach the hundreds).
func (r *Rand) Poisson(mean float64) int {
	if mean <= 0 {
		return 0
	}
	if mean > 30 {
		v := int(math.Round(r.Normal(mean, math.Sqrt(mean))))
		if v < 0 {
			return 0
		}
		return v
	}
	l := math.Exp(-mean)
	k, p := 0, 1.0
	for {
		p *= r.Float64()
		if p <= l {
			return k
		}
		k++
	}
}

// Zipf returns a sample in [0, n) with probability proportional to
// 1/(i+1)^s — service and content popularity are classically zipfian.
func (r *Rand) Zipf(n int, s float64) int {
	if n <= 1 {
		return 0
	}
	// Inverse-CDF on the harmonic partial sums; n is small (tens) in
	// every caller, so linear search beats precomputation.
	var total float64
	for i := 0; i < n; i++ {
		total += 1 / math.Pow(float64(i+1), s)
	}
	u := r.Float64() * total
	var cum float64
	for i := 0; i < n; i++ {
		cum += 1 / math.Pow(float64(i+1), s)
		if u < cum {
			return i
		}
	}
	return n - 1
}

// Logistic evaluates the logistic curve with midpoint x0 and steepness
// k at x, scaled to [0, max]. Service adoption over years follows
// logistic growth in the model.
func Logistic(x, x0, k, max float64) float64 {
	return max / (1 + math.Exp(-k*(x-x0)))
}
