// Package stats provides the statistical primitives the analytics
// stage uses to turn per-day aggregates into the paper's figures:
// empirical CDFs/CCDFs, quantiles, fixed-width time binning, Bézier
// smoothing (Figure 4 of the paper smooths its hourly ratio curves
// with a Bézier interpolation), and the deterministic samplers the
// traffic model draws from.
package stats

import (
	"fmt"
	"math"
	"sort"
	"sync"
)

// ECDF is an empirical cumulative distribution over float64 samples.
// The zero value is ready to use; Add samples, then query. Queries
// (P, CCDF, Quantile, Median, Mean, the curve renderers) finalise the
// distribution lazily under a mutex, so concurrent readers are safe —
// stage two fans figure rendering out over goroutines that may share
// one distribution. Add/AddAll are writer-side and must not race with
// queries; call Finalize first to hand a filled ECDF to readers.
type ECDF struct {
	mu      sync.Mutex
	samples []float64
	sorted  bool
}

// Add appends one sample.
func (e *ECDF) Add(v float64) {
	e.samples = append(e.samples, v)
	e.sorted = false
}

// AddAll appends many samples.
func (e *ECDF) AddAll(vs []float64) {
	e.samples = append(e.samples, vs...)
	e.sorted = false
}

// N returns the sample count.
func (e *ECDF) N() int { return len(e.samples) }

// Finalize sorts the samples so later queries are read-only. Optional:
// queries finalise lazily (and safely) on their own; calling it once
// after the last Add simply moves the sort off the query path.
func (e *ECDF) Finalize() { e.sort() }

// sort finalises under the lock. The pre-check on sorted is not a
// fast path on purpose: an unsynchronised read of the flag while
// another goroutine sorts was exactly the race this fixes.
func (e *ECDF) sort() {
	e.mu.Lock()
	defer e.mu.Unlock()
	if !e.sorted {
		sort.Float64s(e.samples)
		e.sorted = true
	}
}

// P returns the empirical P(X <= v), 0 for an empty distribution.
func (e *ECDF) P(v float64) float64 {
	if len(e.samples) == 0 {
		return 0
	}
	e.sort()
	i := sort.SearchFloat64s(e.samples, math.Nextafter(v, math.Inf(1)))
	return float64(i) / float64(len(e.samples))
}

// CCDF returns the empirical P(X > v).
func (e *ECDF) CCDF(v float64) float64 { return 1 - e.P(v) }

// Quantile returns the q-quantile (0 <= q <= 1) by the nearest-rank
// method. An empty distribution reports 0 — a zero-active-days figure
// renders as an empty/zero row, never as NaN cells in the tables.
func (e *ECDF) Quantile(q float64) float64 {
	if len(e.samples) == 0 {
		return 0
	}
	e.sort()
	if q <= 0 {
		return e.samples[0]
	}
	if q >= 1 {
		return e.samples[len(e.samples)-1]
	}
	i := int(math.Ceil(q*float64(len(e.samples)))) - 1
	if i < 0 {
		i = 0
	}
	return e.samples[i]
}

// Median is Quantile(0.5).
func (e *ECDF) Median() float64 { return e.Quantile(0.5) }

// Mean returns the arithmetic mean, or 0 when empty (see Quantile).
func (e *ECDF) Mean() float64 {
	if len(e.samples) == 0 {
		return 0
	}
	// Finalise first: summing while another goroutine sorts the shared
	// slice would read mid-swap garbage (and race). The sum is
	// order-independent, so reading the sorted samples changes nothing.
	e.sort()
	var s float64
	for _, v := range e.samples {
		s += v
	}
	return s / float64(len(e.samples))
}

// Point is one (X, Y) coordinate of a rendered curve.
type Point struct{ X, Y float64 }

// CCDFCurve evaluates the CCDF at each x in xs, producing a plottable
// curve like the ones in Figure 2.
func (e *ECDF) CCDFCurve(xs []float64) []Point {
	out := make([]Point, len(xs))
	for i, x := range xs {
		out[i] = Point{X: x, Y: e.CCDF(x)}
	}
	return out
}

// CDFCurve evaluates the CDF at each x in xs (Figure 10 style).
func (e *ECDF) CDFCurve(xs []float64) []Point {
	out := make([]Point, len(xs))
	for i, x := range xs {
		out[i] = Point{X: x, Y: e.P(x)}
	}
	return out
}

// LogSpace returns n points from lo to hi spaced evenly in log10, for
// the log-scaled x axes of Figures 2 and 10.
func LogSpace(lo, hi float64, n int) []float64 {
	if lo <= 0 || hi <= lo || n < 2 {
		panic(fmt.Sprintf("stats: LogSpace(%v, %v, %d)", lo, hi, n))
	}
	out := make([]float64, n)
	l0, l1 := math.Log10(lo), math.Log10(hi)
	for i := range out {
		out[i] = math.Pow(10, l0+(l1-l0)*float64(i)/float64(n-1))
	}
	return out
}

// LinSpace returns n points from lo to hi spaced evenly.
func LinSpace(lo, hi float64, n int) []float64 {
	if n < 2 {
		panic("stats: LinSpace needs n >= 2")
	}
	out := make([]float64, n)
	for i := range out {
		out[i] = lo + (hi-lo)*float64(i)/float64(n-1)
	}
	return out
}

// Bezier resamples curve with a Bézier interpolation using the input
// points as control polygon, evaluated at n parameter values — the
// smoothing gnuplot applies when the paper plots Figure 4. The first
// and last points are preserved exactly.
func Bezier(curve []Point, n int) []Point {
	if len(curve) == 0 || n < 2 {
		return nil
	}
	if len(curve) == 1 {
		return []Point{curve[0]}
	}
	out := make([]Point, n)
	// De Casteljau at each t; O(n·m²) is fine for figure-sized inputs.
	tmp := make([]Point, len(curve))
	for i := 0; i < n; i++ {
		t := float64(i) / float64(n-1)
		copy(tmp, curve)
		for k := len(tmp) - 1; k > 0; k-- {
			for j := 0; j < k; j++ {
				tmp[j].X = tmp[j].X*(1-t) + tmp[j+1].X*t
				tmp[j].Y = tmp[j].Y*(1-t) + tmp[j+1].Y*t
			}
		}
		out[i] = tmp[0]
	}
	return out
}

// Histogram counts values in fixed-width bins over [lo, hi); values
// outside are clamped into the edge bins so totals are preserved.
type Histogram struct {
	Lo, Hi float64
	Counts []uint64
	total  uint64
}

// NewHistogram creates a histogram with n bins spanning [lo, hi).
func NewHistogram(lo, hi float64, n int) *Histogram {
	if hi <= lo || n < 1 {
		panic(fmt.Sprintf("stats: NewHistogram(%v, %v, %d)", lo, hi, n))
	}
	return &Histogram{Lo: lo, Hi: hi, Counts: make([]uint64, n)}
}

// Add counts one value.
func (h *Histogram) Add(v float64) { h.AddN(v, 1) }

// AddN counts a value n times.
func (h *Histogram) AddN(v float64, n uint64) {
	i := int(float64(len(h.Counts)) * (v - h.Lo) / (h.Hi - h.Lo))
	if i < 0 {
		i = 0
	}
	if i >= len(h.Counts) {
		i = len(h.Counts) - 1
	}
	h.Counts[i] += n
	h.total += n
}

// Total returns the number of counted values.
func (h *Histogram) Total() uint64 { return h.total }

// BinCenter returns the midpoint of bin i.
func (h *Histogram) BinCenter(i int) float64 {
	w := (h.Hi - h.Lo) / float64(len(h.Counts))
	return h.Lo + w*(float64(i)+0.5)
}

// Merge adds other's counts into h. The histograms must be congruent.
func (h *Histogram) Merge(other *Histogram) error {
	if h.Lo != other.Lo || h.Hi != other.Hi || len(h.Counts) != len(other.Counts) {
		return fmt.Errorf("stats: merging incongruent histograms [%v,%v)x%d and [%v,%v)x%d",
			h.Lo, h.Hi, len(h.Counts), other.Lo, other.Hi, len(other.Counts))
	}
	for i, c := range other.Counts {
		h.Counts[i] += c
	}
	h.total += other.total
	return nil
}

// CDF returns P(X <= bin upper edge) per bin.
func (h *Histogram) CDF() []float64 {
	out := make([]float64, len(h.Counts))
	var cum uint64
	for i, c := range h.Counts {
		cum += c
		if h.total > 0 {
			out[i] = float64(cum) / float64(h.total)
		}
	}
	return out
}
