package wire

import (
	"bytes"
	"errors"
	"testing"
	"testing/quick"
)

func mkAddr6(last byte) Addr6 {
	var a Addr6
	a[0], a[1] = 0x20, 0x01
	a[15] = last
	return a
}

func TestIPv6RoundTrip(t *testing.T) {
	ip := IPv6{
		TrafficClass: 0x12,
		FlowLabel:    0xABCDE,
		NextHeader:   IPProtoTCP,
		HopLimit:     64,
		Src:          mkAddr6(1),
		Dst:          mkAddr6(2),
	}
	payload := []byte("tcp goes here")
	ip.PayloadLen = uint16(len(payload))
	buf := make([]byte, IPv6HeaderLen+len(payload))
	n, err := ip.EncodeTo(buf)
	if err != nil {
		t.Fatal(err)
	}
	copy(buf[n:], payload)

	var d IPv6
	got, next, err := d.DecodeFrom(buf)
	if err != nil {
		t.Fatal(err)
	}
	if next != LayerTCP {
		t.Errorf("next = %v", next)
	}
	if !bytes.Equal(got, payload) {
		t.Errorf("payload mismatch")
	}
	if d.Src != ip.Src || d.Dst != ip.Dst || d.FlowLabel != ip.FlowLabel ||
		d.TrafficClass != ip.TrafficClass || d.HopLimit != ip.HopLimit {
		t.Errorf("decoded %+v, want %+v", d, ip)
	}
}

func TestIPv6ExtensionHeaderSkipping(t *testing.T) {
	// Fixed header -> hop-by-hop (8 bytes) -> UDP.
	ip := IPv6{NextHeader: 0 /* hop-by-hop */, HopLimit: 1, Src: mkAddr6(3), Dst: mkAddr6(4)}
	inner := []byte{0xAA, 0xBB}
	ext := []byte{IPProtoUDP, 0, 1, 2, 3, 4, 5, 6} // next=UDP, len=0 (8 bytes)
	ip.PayloadLen = uint16(len(ext) + len(inner))
	buf := make([]byte, IPv6HeaderLen+len(ext)+len(inner))
	if _, err := ip.EncodeTo(buf); err != nil {
		t.Fatal(err)
	}
	copy(buf[IPv6HeaderLen:], ext)
	copy(buf[IPv6HeaderLen+len(ext):], inner)

	var d IPv6
	payload, next, err := d.DecodeFrom(buf)
	if err != nil {
		t.Fatal(err)
	}
	if next != LayerUDP {
		t.Errorf("next = %v, want udp after extension skip", next)
	}
	if !bytes.Equal(payload, inner) {
		t.Errorf("payload = %v", payload)
	}
}

func TestIPv6Malformed(t *testing.T) {
	var d IPv6
	if _, _, err := d.DecodeFrom(make([]byte, 10)); !errors.Is(err, ErrTruncated) {
		t.Errorf("short: %v", err)
	}
	buf := make([]byte, IPv6HeaderLen)
	buf[0] = 4 << 4
	if _, _, err := d.DecodeFrom(buf); !errors.Is(err, ErrMalformed) {
		t.Errorf("bad version: %v", err)
	}
	// Truncated extension chain.
	ip := IPv6{NextHeader: 0, PayloadLen: 4, Src: mkAddr6(1), Dst: mkAddr6(2)}
	ebuf := make([]byte, IPv6HeaderLen+4)
	ip.EncodeTo(ebuf)
	if _, _, err := d.DecodeFrom(ebuf); !errors.Is(err, ErrTruncated) {
		t.Errorf("short extension: %v", err)
	}
}

func TestAddr6String(t *testing.T) {
	a := mkAddr6(0x42)
	want := "2001:0000:0000:0000:0000:0000:0000:0042"
	if got := a.String(); got != want {
		t.Errorf("String = %q, want %q", got, want)
	}
}

func TestIPv6FuzzNoPanic(t *testing.T) {
	f := func(data []byte) bool {
		var d IPv6
		d.DecodeFrom(data)
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func TestTCPOptionsRoundTrip(t *testing.T) {
	in := TCPOptions{
		MSS:           1460,
		WindowScale:   7,
		WScalePresent: true,
		SACKPermitted: true,
		TSVal:         0xDEADBEEF,
		TSEcr:         0x01020304,
		TSPresent:     true,
	}
	block := AppendTCPOptions(nil, in)
	if len(block)%4 != 0 {
		t.Errorf("options block %d bytes, not padded", len(block))
	}
	out := ParseTCPOptions(block)
	if out != in {
		t.Errorf("round trip:\n got %+v\nwant %+v", out, in)
	}
}

func TestTCPOptionsPartial(t *testing.T) {
	out := ParseTCPOptions([]byte{TCPOptMSS, 4, 5, 0xb4, TCPOptEnd, TCPOptNop})
	if out.MSS != 1460 {
		t.Errorf("MSS = %d", out.MSS)
	}
	if out.SACKPermitted || out.TSPresent || out.WScalePresent {
		t.Errorf("phantom options: %+v", out)
	}
}

func TestTCPOptionsMalformed(t *testing.T) {
	cases := [][]byte{
		{TCPOptMSS},        // kind without length
		{TCPOptMSS, 1},     // length below minimum
		{TCPOptMSS, 10, 1}, // length beyond buffer
		{TCPOptWScale, 3},  // truncated body
	}
	for i, c := range cases {
		out := ParseTCPOptions(c) // must not panic
		if out.MSS != 0 || out.WScalePresent {
			t.Errorf("case %d: parsed garbage: %+v", i, out)
		}
	}
}

func TestTCPOptionsThroughTCPHeader(t *testing.T) {
	// Options survive the TCP encode/decode path.
	opts := AppendTCPOptions(nil, TCPOptions{MSS: 1400, SACKPermitted: true})
	tcp := TCP{SrcPort: 1, DstPort: 2, Flags: TCPSyn, Options: opts}
	buf := make([]byte, tcp.HeaderLen())
	if _, err := tcp.EncodeTo(buf, AddrFrom(1, 1, 1, 1), AddrFrom(2, 2, 2, 2), nil); err != nil {
		t.Fatal(err)
	}
	var d TCP
	if _, _, err := d.DecodeFrom(buf); err != nil {
		t.Fatal(err)
	}
	parsed := ParseTCPOptions(d.Options)
	if parsed.MSS != 1400 || !parsed.SACKPermitted {
		t.Errorf("through-header options: %+v", parsed)
	}
}

func TestParserEthernetIPv6Stack(t *testing.T) {
	// Build eth + ipv6 + udp by hand.
	eth := Ethernet{EtherType: EtherTypeIPv6}
	ip := IPv6{NextHeader: IPProtoUDP, HopLimit: 64, Src: mkAddr6(9), Dst: mkAddr6(10)}
	payload := []byte{0xCA, 0xFE}
	udpHdr := UDP{SrcPort: 1111, DstPort: 2222}
	udpBuf := make([]byte, UDPHeaderLen+len(payload))
	// IPv6 pseudo-header checksum differs; use zero checksum for the test.
	binaryPut := func(b []byte, v uint16, off int) { b[off] = byte(v >> 8); b[off+1] = byte(v) }
	binaryPut(udpBuf, udpHdr.SrcPort, 0)
	binaryPut(udpBuf, udpHdr.DstPort, 2)
	binaryPut(udpBuf, uint16(len(udpBuf)), 4)
	copy(udpBuf[UDPHeaderLen:], payload)
	ip.PayloadLen = uint16(len(udpBuf))

	pkt := make([]byte, EthernetHeaderLen+IPv6HeaderLen+len(udpBuf))
	if _, err := eth.EncodeTo(pkt); err != nil {
		t.Fatal(err)
	}
	if _, err := ip.EncodeTo(pkt[EthernetHeaderLen:]); err != nil {
		t.Fatal(err)
	}
	copy(pkt[EthernetHeaderLen+IPv6HeaderLen:], udpBuf)

	p := NewLayerParser(LayerEthernet)
	d, err := p.Parse(pkt)
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	if !d.Has(LayerIPv6) || !d.Has(LayerUDP) {
		t.Fatalf("layers = %v", d.Layers)
	}
	if d.Has(LayerIPv4) {
		t.Error("phantom IPv4 layer")
	}
	if d.IP6.Src != mkAddr6(9) {
		t.Errorf("src = %v", d.IP6.Src)
	}
	if d.UDP.DstPort != 2222 {
		t.Errorf("dst port = %d", d.UDP.DstPort)
	}
	if len(d.Payload) != 2 {
		t.Errorf("payload = %v", d.Payload)
	}
}
