// Package wire implements zero-dependency encoding and decoding of the
// packet layers observed at an ISP aggregation link: Ethernet II, IPv4,
// TCP and UDP.
//
// The design follows the decoding-layer idiom popularised by gopacket:
// callers keep preallocated layer structs and feed packets through a
// LayerParser, which fills the structs in place without allocating. The
// inverse direction (building packets) serialises layers in reverse
// order, so each layer can fix up the lengths and checksums that depend
// on its payload.
package wire

import (
	"encoding/binary"
	"errors"
	"fmt"
)

// LayerType identifies one of the protocol layers this package decodes.
type LayerType uint8

// Known layer types.
const (
	LayerNone LayerType = iota
	LayerEthernet
	LayerIPv4
	LayerTCP
	LayerUDP
	LayerPayload
)

// String returns the conventional protocol name.
func (t LayerType) String() string {
	switch t {
	case LayerNone:
		return "none"
	case LayerEthernet:
		return "ethernet"
	case LayerIPv4:
		return "ipv4"
	case LayerTCP:
		return "tcp"
	case LayerUDP:
		return "udp"
	case LayerPayload:
		return "payload"
	default:
		return fmt.Sprintf("layer(%d)", uint8(t))
	}
}

// EtherType values understood by the Ethernet decoder.
const (
	EtherTypeIPv4 uint16 = 0x0800
	EtherTypeARP  uint16 = 0x0806
	EtherTypeIPv6 uint16 = 0x86DD
)

// IP protocol numbers understood by the IPv4 decoder.
const (
	IPProtoICMP uint8 = 1
	IPProtoTCP  uint8 = 6
	IPProtoUDP  uint8 = 17
)

// Errors returned by the decoders. Decode errors wrap ErrTruncated or
// ErrMalformed so that callers can distinguish short captures from
// corrupt headers with errors.Is.
var (
	ErrTruncated   = errors.New("wire: truncated packet")
	ErrMalformed   = errors.New("wire: malformed header")
	ErrUnsupported = errors.New("wire: unsupported layer")
)

// DecodingLayer is implemented by layer structs that can parse themselves
// from the front of a byte slice. DecodeFrom must not retain data beyond
// the returned payload slice, which aliases data.
type DecodingLayer interface {
	// LayerType reports which layer this struct decodes.
	LayerType() LayerType
	// DecodeFrom parses the layer from data, returning the payload
	// (the bytes following this layer) and the type of the next layer,
	// or LayerPayload when the next bytes are opaque application data.
	DecodeFrom(data []byte) (payload []byte, next LayerType, err error)
}

// Ethernet is an Ethernet II frame header.
type Ethernet struct {
	SrcMAC    [6]byte
	DstMAC    [6]byte
	EtherType uint16
}

// EthernetHeaderLen is the length of an Ethernet II header in bytes.
const EthernetHeaderLen = 14

// LayerType implements DecodingLayer.
func (e *Ethernet) LayerType() LayerType { return LayerEthernet }

// DecodeFrom implements DecodingLayer.
func (e *Ethernet) DecodeFrom(data []byte) ([]byte, LayerType, error) {
	if len(data) < EthernetHeaderLen {
		return nil, LayerNone, fmt.Errorf("ethernet: need %d bytes, have %d: %w", EthernetHeaderLen, len(data), ErrTruncated)
	}
	copy(e.DstMAC[:], data[0:6])
	copy(e.SrcMAC[:], data[6:12])
	e.EtherType = binary.BigEndian.Uint16(data[12:14])
	next := LayerPayload
	switch e.EtherType {
	case EtherTypeIPv4:
		next = LayerIPv4
	case EtherTypeIPv6:
		next = LayerIPv6
	}
	return data[EthernetHeaderLen:], next, nil
}

// EncodeTo serialises the header into b, which must have room for
// EthernetHeaderLen bytes. It returns the number of bytes written.
func (e *Ethernet) EncodeTo(b []byte) (int, error) {
	if len(b) < EthernetHeaderLen {
		return 0, fmt.Errorf("ethernet: encode buffer too small: %w", ErrTruncated)
	}
	copy(b[0:6], e.DstMAC[:])
	copy(b[6:12], e.SrcMAC[:])
	binary.BigEndian.PutUint16(b[12:14], e.EtherType)
	return EthernetHeaderLen, nil
}

// IPv4 is an IPv4 header. Options are preserved verbatim.
type IPv4 struct {
	Version    uint8
	IHL        uint8 // header length in 32-bit words
	TOS        uint8
	TotalLen   uint16
	ID         uint16
	Flags      uint8 // 3 bits: reserved, DF, MF
	FragOffset uint16
	TTL        uint8
	Protocol   uint8
	Checksum   uint16
	Src        Addr
	Dst        Addr
	Options    []byte
}

// Addr is an IPv4 address in wire order. It is a comparable value type
// so it can key maps directly.
type Addr [4]byte

// AddrFrom returns the address for the four octets a.b.c.d.
func AddrFrom(a, b, c, d byte) Addr { return Addr{a, b, c, d} }

// AddrFromUint32 converts a big-endian uint32 to an Addr.
func AddrFromUint32(v uint32) Addr {
	var a Addr
	binary.BigEndian.PutUint32(a[:], v)
	return a
}

// Uint32 returns the address as a big-endian uint32.
func (a Addr) Uint32() uint32 { return binary.BigEndian.Uint32(a[:]) }

// String formats the address in dotted-quad notation.
func (a Addr) String() string {
	return fmt.Sprintf("%d.%d.%d.%d", a[0], a[1], a[2], a[3])
}

// IPv4HeaderLen is the length of an option-less IPv4 header.
const IPv4HeaderLen = 20

// IPv4 flag bits (in the 3-bit flags field).
const (
	IPv4DontFragment  uint8 = 0b010
	IPv4MoreFragments uint8 = 0b001
)

// LayerType implements DecodingLayer.
func (ip *IPv4) LayerType() LayerType { return LayerIPv4 }

// DecodeFrom implements DecodingLayer.
func (ip *IPv4) DecodeFrom(data []byte) ([]byte, LayerType, error) {
	if len(data) < IPv4HeaderLen {
		return nil, LayerNone, fmt.Errorf("ipv4: need %d bytes, have %d: %w", IPv4HeaderLen, len(data), ErrTruncated)
	}
	vihl := data[0]
	ip.Version = vihl >> 4
	ip.IHL = vihl & 0x0f
	if ip.Version != 4 {
		return nil, LayerNone, fmt.Errorf("ipv4: version %d: %w", ip.Version, ErrMalformed)
	}
	hdrLen := int(ip.IHL) * 4
	if hdrLen < IPv4HeaderLen {
		return nil, LayerNone, fmt.Errorf("ipv4: IHL %d too small: %w", ip.IHL, ErrMalformed)
	}
	if len(data) < hdrLen {
		return nil, LayerNone, fmt.Errorf("ipv4: header claims %d bytes, have %d: %w", hdrLen, len(data), ErrTruncated)
	}
	ip.TOS = data[1]
	ip.TotalLen = binary.BigEndian.Uint16(data[2:4])
	ip.ID = binary.BigEndian.Uint16(data[4:6])
	ff := binary.BigEndian.Uint16(data[6:8])
	ip.Flags = uint8(ff >> 13)
	ip.FragOffset = ff & 0x1fff
	ip.TTL = data[8]
	ip.Protocol = data[9]
	ip.Checksum = binary.BigEndian.Uint16(data[10:12])
	copy(ip.Src[:], data[12:16])
	copy(ip.Dst[:], data[16:20])
	ip.Options = data[IPv4HeaderLen:hdrLen]
	if int(ip.TotalLen) < hdrLen {
		return nil, LayerNone, fmt.Errorf("ipv4: total length %d < header %d: %w", ip.TotalLen, hdrLen, ErrMalformed)
	}
	end := int(ip.TotalLen)
	if end > len(data) {
		// Short capture: take what we have rather than failing, as a
		// passive probe must (snaplen truncation is routine).
		end = len(data)
	}
	payload := data[hdrLen:end]
	next := LayerPayload
	switch ip.Protocol {
	case IPProtoTCP:
		next = LayerTCP
	case IPProtoUDP:
		next = LayerUDP
	}
	return payload, next, nil
}

// HeaderLen returns the encoded header length in bytes.
func (ip *IPv4) HeaderLen() int { return IPv4HeaderLen + len(ip.Options) }

// EncodeTo serialises the header into b and computes the checksum.
// TotalLen must already account for the payload; SetLengths helps.
func (ip *IPv4) EncodeTo(b []byte) (int, error) {
	hdrLen := ip.HeaderLen()
	if hdrLen%4 != 0 {
		return 0, fmt.Errorf("ipv4: options length %d not multiple of 4: %w", len(ip.Options), ErrMalformed)
	}
	if len(b) < hdrLen {
		return 0, fmt.Errorf("ipv4: encode buffer too small: %w", ErrTruncated)
	}
	b[0] = 4<<4 | uint8(hdrLen/4)
	b[1] = ip.TOS
	binary.BigEndian.PutUint16(b[2:4], ip.TotalLen)
	binary.BigEndian.PutUint16(b[4:6], ip.ID)
	binary.BigEndian.PutUint16(b[6:8], uint16(ip.Flags)<<13|ip.FragOffset&0x1fff)
	b[8] = ip.TTL
	b[9] = ip.Protocol
	b[10], b[11] = 0, 0
	copy(b[12:16], ip.Src[:])
	copy(b[16:20], ip.Dst[:])
	copy(b[20:hdrLen], ip.Options)
	ip.Checksum = Checksum(b[:hdrLen])
	binary.BigEndian.PutUint16(b[10:12], ip.Checksum)
	return hdrLen, nil
}

// SetLengths fills TotalLen for the given payload size.
func (ip *IPv4) SetLengths(payloadLen int) {
	ip.TotalLen = uint16(ip.HeaderLen() + payloadLen)
}

// Checksum computes the RFC 1071 Internet checksum of b.
func Checksum(b []byte) uint16 {
	var sum uint32
	for i := 0; i+1 < len(b); i += 2 {
		sum += uint32(binary.BigEndian.Uint16(b[i : i+2]))
	}
	if len(b)%2 == 1 {
		sum += uint32(b[len(b)-1]) << 8
	}
	for sum > 0xffff {
		sum = sum&0xffff + sum>>16
	}
	return ^uint16(sum)
}

// pseudoHeaderSum computes the partial checksum of the IPv4 pseudo
// header used by TCP and UDP.
func pseudoHeaderSum(src, dst Addr, proto uint8, length int) uint32 {
	var sum uint32
	sum += uint32(binary.BigEndian.Uint16(src[0:2]))
	sum += uint32(binary.BigEndian.Uint16(src[2:4]))
	sum += uint32(binary.BigEndian.Uint16(dst[0:2]))
	sum += uint32(binary.BigEndian.Uint16(dst[2:4]))
	sum += uint32(proto)
	sum += uint32(length)
	return sum
}

// transportChecksum computes the TCP/UDP checksum over the pseudo
// header and segment bytes (header with zeroed checksum + payload).
func transportChecksum(src, dst Addr, proto uint8, segment []byte) uint16 {
	sum := pseudoHeaderSum(src, dst, proto, len(segment))
	for i := 0; i+1 < len(segment); i += 2 {
		sum += uint32(binary.BigEndian.Uint16(segment[i : i+2]))
	}
	if len(segment)%2 == 1 {
		sum += uint32(segment[len(segment)-1]) << 8
	}
	for sum > 0xffff {
		sum = sum&0xffff + sum>>16
	}
	return ^uint16(sum)
}

// TCP flag bits.
const (
	TCPFin uint8 = 1 << iota
	TCPSyn
	TCPRst
	TCPPsh
	TCPAck
	TCPUrg
	TCPEce
	TCPCwr
)

// FlagNames formats a TCP flag byte as e.g. "SYN|ACK".
func FlagNames(flags uint8) string {
	names := []struct {
		bit  uint8
		name string
	}{
		{TCPFin, "FIN"}, {TCPSyn, "SYN"}, {TCPRst, "RST"}, {TCPPsh, "PSH"},
		{TCPAck, "ACK"}, {TCPUrg, "URG"}, {TCPEce, "ECE"}, {TCPCwr, "CWR"},
	}
	out := ""
	for _, n := range names {
		if flags&n.bit != 0 {
			if out != "" {
				out += "|"
			}
			out += n.name
		}
	}
	if out == "" {
		return "none"
	}
	return out
}

// TCP is a TCP segment header.
type TCP struct {
	SrcPort, DstPort uint16
	Seq, Ack         uint32
	DataOffset       uint8 // header length in 32-bit words
	Flags            uint8
	Window           uint16
	Checksum         uint16
	Urgent           uint16
	Options          []byte
}

// TCPHeaderLen is the length of an option-less TCP header.
const TCPHeaderLen = 20

// LayerType implements DecodingLayer.
func (t *TCP) LayerType() LayerType { return LayerTCP }

// DecodeFrom implements DecodingLayer.
func (t *TCP) DecodeFrom(data []byte) ([]byte, LayerType, error) {
	if len(data) < TCPHeaderLen {
		return nil, LayerNone, fmt.Errorf("tcp: need %d bytes, have %d: %w", TCPHeaderLen, len(data), ErrTruncated)
	}
	t.SrcPort = binary.BigEndian.Uint16(data[0:2])
	t.DstPort = binary.BigEndian.Uint16(data[2:4])
	t.Seq = binary.BigEndian.Uint32(data[4:8])
	t.Ack = binary.BigEndian.Uint32(data[8:12])
	t.DataOffset = data[12] >> 4
	t.Flags = data[13]
	t.Window = binary.BigEndian.Uint16(data[14:16])
	t.Checksum = binary.BigEndian.Uint16(data[16:18])
	t.Urgent = binary.BigEndian.Uint16(data[18:20])
	hdrLen := int(t.DataOffset) * 4
	if hdrLen < TCPHeaderLen {
		return nil, LayerNone, fmt.Errorf("tcp: data offset %d too small: %w", t.DataOffset, ErrMalformed)
	}
	if hdrLen > len(data) {
		return nil, LayerNone, fmt.Errorf("tcp: header claims %d bytes, have %d: %w", hdrLen, len(data), ErrTruncated)
	}
	t.Options = data[TCPHeaderLen:hdrLen]
	return data[hdrLen:], LayerPayload, nil
}

// HeaderLen returns the encoded header length in bytes.
func (t *TCP) HeaderLen() int { return TCPHeaderLen + len(t.Options) }

// EncodeTo serialises the header into b. The checksum is computed over
// the pseudo header for src/dst and the given payload.
func (t *TCP) EncodeTo(b []byte, src, dst Addr, payload []byte) (int, error) {
	hdrLen := t.HeaderLen()
	if hdrLen%4 != 0 {
		return 0, fmt.Errorf("tcp: options length %d not multiple of 4: %w", len(t.Options), ErrMalformed)
	}
	if len(b) < hdrLen+len(payload) {
		return 0, fmt.Errorf("tcp: encode buffer too small: %w", ErrTruncated)
	}
	binary.BigEndian.PutUint16(b[0:2], t.SrcPort)
	binary.BigEndian.PutUint16(b[2:4], t.DstPort)
	binary.BigEndian.PutUint32(b[4:8], t.Seq)
	binary.BigEndian.PutUint32(b[8:12], t.Ack)
	b[12] = uint8(hdrLen/4) << 4
	b[13] = t.Flags
	binary.BigEndian.PutUint16(b[14:16], t.Window)
	b[16], b[17] = 0, 0
	binary.BigEndian.PutUint16(b[18:20], t.Urgent)
	copy(b[TCPHeaderLen:hdrLen], t.Options)
	copy(b[hdrLen:], payload)
	t.DataOffset = uint8(hdrLen / 4)
	t.Checksum = transportChecksum(src, dst, IPProtoTCP, b[:hdrLen+len(payload)])
	binary.BigEndian.PutUint16(b[16:18], t.Checksum)
	return hdrLen + len(payload), nil
}

// UDP is a UDP datagram header.
type UDP struct {
	SrcPort, DstPort uint16
	Length           uint16
	Checksum         uint16
}

// UDPHeaderLen is the length of a UDP header.
const UDPHeaderLen = 8

// LayerType implements DecodingLayer.
func (u *UDP) LayerType() LayerType { return LayerUDP }

// DecodeFrom implements DecodingLayer.
func (u *UDP) DecodeFrom(data []byte) ([]byte, LayerType, error) {
	if len(data) < UDPHeaderLen {
		return nil, LayerNone, fmt.Errorf("udp: need %d bytes, have %d: %w", UDPHeaderLen, len(data), ErrTruncated)
	}
	u.SrcPort = binary.BigEndian.Uint16(data[0:2])
	u.DstPort = binary.BigEndian.Uint16(data[2:4])
	u.Length = binary.BigEndian.Uint16(data[4:6])
	u.Checksum = binary.BigEndian.Uint16(data[6:8])
	if int(u.Length) < UDPHeaderLen {
		return nil, LayerNone, fmt.Errorf("udp: length %d < header: %w", u.Length, ErrMalformed)
	}
	end := int(u.Length)
	if end > len(data) {
		end = len(data) // snaplen truncation
	}
	return data[UDPHeaderLen:end], LayerPayload, nil
}

// EncodeTo serialises the header into b, fixing Length and Checksum for
// the given payload.
func (u *UDP) EncodeTo(b []byte, src, dst Addr, payload []byte) (int, error) {
	total := UDPHeaderLen + len(payload)
	if len(b) < total {
		return 0, fmt.Errorf("udp: encode buffer too small: %w", ErrTruncated)
	}
	u.Length = uint16(total)
	binary.BigEndian.PutUint16(b[0:2], u.SrcPort)
	binary.BigEndian.PutUint16(b[2:4], u.DstPort)
	binary.BigEndian.PutUint16(b[4:6], u.Length)
	b[6], b[7] = 0, 0
	copy(b[UDPHeaderLen:], payload)
	u.Checksum = transportChecksum(src, dst, IPProtoUDP, b[:total])
	if u.Checksum == 0 {
		u.Checksum = 0xffff // RFC 768: zero means "no checksum"
	}
	binary.BigEndian.PutUint16(b[6:8], u.Checksum)
	return total, nil
}
