package wire

import (
	"bytes"
	"encoding/binary"
	"errors"
	"strings"
	"testing"
	"testing/quick"
)

func TestAddrString(t *testing.T) {
	a := AddrFrom(192, 168, 1, 42)
	if got, want := a.String(), "192.168.1.42"; got != want {
		t.Errorf("Addr.String() = %q, want %q", got, want)
	}
}

func TestAddrUint32RoundTrip(t *testing.T) {
	f := func(v uint32) bool {
		return AddrFromUint32(v).Uint32() == v
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestEthernetRoundTrip(t *testing.T) {
	e := Ethernet{
		SrcMAC:    [6]byte{1, 2, 3, 4, 5, 6},
		DstMAC:    [6]byte{7, 8, 9, 10, 11, 12},
		EtherType: EtherTypeIPv4,
	}
	buf := make([]byte, EthernetHeaderLen+4)
	n, err := e.EncodeTo(buf)
	if err != nil {
		t.Fatalf("EncodeTo: %v", err)
	}
	if n != EthernetHeaderLen {
		t.Fatalf("EncodeTo wrote %d bytes, want %d", n, EthernetHeaderLen)
	}
	var d Ethernet
	payload, next, err := d.DecodeFrom(buf)
	if err != nil {
		t.Fatalf("DecodeFrom: %v", err)
	}
	if d != e {
		t.Errorf("decoded %+v, want %+v", d, e)
	}
	if next != LayerIPv4 {
		t.Errorf("next = %v, want ipv4", next)
	}
	if len(payload) != 4 {
		t.Errorf("payload length %d, want 4", len(payload))
	}
}

func TestEthernetNonIPv4Payload(t *testing.T) {
	e := Ethernet{EtherType: EtherTypeARP}
	buf := make([]byte, EthernetHeaderLen)
	if _, err := e.EncodeTo(buf); err != nil {
		t.Fatal(err)
	}
	var d Ethernet
	_, next, err := d.DecodeFrom(buf)
	if err != nil {
		t.Fatal(err)
	}
	if next != LayerPayload {
		t.Errorf("next = %v for ARP, want payload", next)
	}
}

func TestEthernetTruncated(t *testing.T) {
	var d Ethernet
	_, _, err := d.DecodeFrom(make([]byte, EthernetHeaderLen-1))
	if !errors.Is(err, ErrTruncated) {
		t.Errorf("err = %v, want ErrTruncated", err)
	}
}

func TestIPv4RoundTrip(t *testing.T) {
	ip := IPv4{
		Version:  4,
		TOS:      0x10,
		ID:       0xbeef,
		Flags:    IPv4DontFragment,
		TTL:      64,
		Protocol: IPProtoTCP,
		Src:      AddrFrom(10, 0, 0, 1),
		Dst:      AddrFrom(93, 184, 216, 34),
	}
	payload := []byte("hello world!")
	ip.SetLengths(len(payload))
	buf := make([]byte, ip.HeaderLen()+len(payload))
	n, err := ip.EncodeTo(buf)
	if err != nil {
		t.Fatalf("EncodeTo: %v", err)
	}
	copy(buf[n:], payload)

	var d IPv4
	got, next, err := d.DecodeFrom(buf)
	if err != nil {
		t.Fatalf("DecodeFrom: %v", err)
	}
	if next != LayerTCP {
		t.Errorf("next = %v, want tcp", next)
	}
	if !bytes.Equal(got, payload) {
		t.Errorf("payload = %q, want %q", got, payload)
	}
	if d.Src != ip.Src || d.Dst != ip.Dst || d.TTL != ip.TTL || d.ID != ip.ID {
		t.Errorf("decoded %+v, want %+v", d, ip)
	}
	if d.Flags != IPv4DontFragment {
		t.Errorf("flags = %03b, want DF", d.Flags)
	}
}

func TestIPv4ChecksumValidates(t *testing.T) {
	ip := IPv4{Version: 4, TTL: 64, Protocol: IPProtoUDP,
		Src: AddrFrom(1, 2, 3, 4), Dst: AddrFrom(5, 6, 7, 8)}
	ip.SetLengths(0)
	buf := make([]byte, ip.HeaderLen())
	if _, err := ip.EncodeTo(buf); err != nil {
		t.Fatal(err)
	}
	// A correct header checksums to zero (after complementing: the
	// checksum over the full header including the checksum field is 0).
	if got := Checksum(buf); got != 0 {
		t.Errorf("checksum over encoded header = %#x, want 0", got)
	}
}

func TestIPv4BadVersion(t *testing.T) {
	buf := make([]byte, IPv4HeaderLen)
	buf[0] = 6<<4 | 5
	var d IPv4
	if _, _, err := d.DecodeFrom(buf); !errors.Is(err, ErrMalformed) {
		t.Errorf("err = %v, want ErrMalformed", err)
	}
}

func TestIPv4BadIHL(t *testing.T) {
	buf := make([]byte, IPv4HeaderLen)
	buf[0] = 4<<4 | 3 // IHL 3 < 5
	var d IPv4
	if _, _, err := d.DecodeFrom(buf); !errors.Is(err, ErrMalformed) {
		t.Errorf("err = %v, want ErrMalformed", err)
	}
}

func TestIPv4SnaplenTruncationTolerated(t *testing.T) {
	ip := IPv4{Version: 4, TTL: 64, Protocol: IPProtoTCP,
		Src: AddrFrom(1, 2, 3, 4), Dst: AddrFrom(5, 6, 7, 8)}
	ip.SetLengths(1000) // claims 1000 payload bytes
	buf := make([]byte, ip.HeaderLen()+10)
	if _, err := ip.EncodeTo(buf); err != nil {
		t.Fatal(err)
	}
	var d IPv4
	payload, _, err := d.DecodeFrom(buf)
	if err != nil {
		t.Fatalf("truncated capture should decode, got %v", err)
	}
	if len(payload) != 10 {
		t.Errorf("payload length = %d, want 10 (what was captured)", len(payload))
	}
}

func TestTCPRoundTrip(t *testing.T) {
	tcp := TCP{
		SrcPort: 43210, DstPort: 443,
		Seq: 0x01020304, Ack: 0x05060708,
		Flags: TCPSyn | TCPAck, Window: 65535,
		Options: []byte{2, 4, 5, 0xb4}, // MSS option
	}
	src, dst := AddrFrom(10, 0, 0, 1), AddrFrom(151, 101, 1, 140)
	payload := []byte("GET / HTTP/1.1\r\n")
	buf := make([]byte, tcp.HeaderLen()+len(payload))
	if _, err := tcp.EncodeTo(buf, src, dst, payload); err != nil {
		t.Fatalf("EncodeTo: %v", err)
	}
	var d TCP
	got, next, err := d.DecodeFrom(buf)
	if err != nil {
		t.Fatalf("DecodeFrom: %v", err)
	}
	if next != LayerPayload {
		t.Errorf("next = %v, want payload", next)
	}
	if !bytes.Equal(got, payload) {
		t.Errorf("payload mismatch")
	}
	if d.SrcPort != tcp.SrcPort || d.DstPort != tcp.DstPort || d.Seq != tcp.Seq ||
		d.Ack != tcp.Ack || d.Flags != tcp.Flags || d.Window != tcp.Window {
		t.Errorf("decoded %+v, want %+v", d, tcp)
	}
	if !bytes.Equal(d.Options, tcp.Options) {
		t.Errorf("options = %v, want %v", d.Options, tcp.Options)
	}
}

func TestTCPChecksumValidates(t *testing.T) {
	tcp := TCP{SrcPort: 1234, DstPort: 80, Flags: TCPAck}
	src, dst := AddrFrom(10, 1, 2, 3), AddrFrom(4, 5, 6, 7)
	payload := []byte("x") // odd length exercises the padding path
	buf := make([]byte, tcp.HeaderLen()+len(payload))
	if _, err := tcp.EncodeTo(buf, src, dst, payload); err != nil {
		t.Fatal(err)
	}
	if got := transportChecksum(src, dst, IPProtoTCP, buf); got != 0 {
		t.Errorf("verify checksum = %#x, want 0", got)
	}
}

func TestTCPBadOptionsLength(t *testing.T) {
	tcp := TCP{Options: []byte{1, 2, 3}} // not a multiple of 4
	buf := make([]byte, 64)
	if _, err := tcp.EncodeTo(buf, Addr{}, Addr{}, nil); !errors.Is(err, ErrMalformed) {
		t.Errorf("err = %v, want ErrMalformed", err)
	}
}

func TestUDPRoundTrip(t *testing.T) {
	udp := UDP{SrcPort: 53124, DstPort: 53}
	src, dst := AddrFrom(10, 0, 0, 9), AddrFrom(8, 8, 8, 8)
	payload := []byte{0xab, 0xcd, 0x01, 0x00}
	buf := make([]byte, UDPHeaderLen+len(payload))
	if _, err := udp.EncodeTo(buf, src, dst, payload); err != nil {
		t.Fatalf("EncodeTo: %v", err)
	}
	var d UDP
	got, next, err := d.DecodeFrom(buf)
	if err != nil {
		t.Fatalf("DecodeFrom: %v", err)
	}
	if next != LayerPayload {
		t.Errorf("next = %v, want payload", next)
	}
	if !bytes.Equal(got, payload) {
		t.Errorf("payload mismatch")
	}
	if d.SrcPort != udp.SrcPort || d.DstPort != udp.DstPort {
		t.Errorf("ports = %d->%d, want %d->%d", d.SrcPort, d.DstPort, udp.SrcPort, udp.DstPort)
	}
	if int(d.Length) != UDPHeaderLen+len(payload) {
		t.Errorf("length = %d, want %d", d.Length, UDPHeaderLen+len(payload))
	}
}

func TestChecksumKnownVector(t *testing.T) {
	// Classic example from RFC 1071 materials.
	b := []byte{0x45, 0x00, 0x00, 0x73, 0x00, 0x00, 0x40, 0x00, 0x40, 0x11,
		0x00, 0x00, 0xc0, 0xa8, 0x00, 0x01, 0xc0, 0xa8, 0x00, 0xc7}
	if got, want := Checksum(b), uint16(0xb861); got != want {
		t.Errorf("Checksum = %#x, want %#x", got, want)
	}
}

func TestChecksumOddLength(t *testing.T) {
	// An odd-length buffer is padded with a zero byte.
	even := Checksum([]byte{0x12, 0x34, 0x56, 0x00})
	odd := Checksum([]byte{0x12, 0x34, 0x56})
	if even != odd {
		t.Errorf("odd-length checksum %#x != padded %#x", odd, even)
	}
}

func TestFlagNames(t *testing.T) {
	cases := []struct {
		flags uint8
		want  string
	}{
		{TCPSyn, "SYN"},
		{TCPSyn | TCPAck, "SYN|ACK"},
		{TCPFin | TCPAck, "FIN|ACK"},
		{0, "none"},
	}
	for _, c := range cases {
		if got := FlagNames(c.flags); got != c.want {
			t.Errorf("FlagNames(%#x) = %q, want %q", c.flags, got, c.want)
		}
	}
}

func TestLayerTypeString(t *testing.T) {
	if !strings.Contains(LayerTCP.String(), "tcp") {
		t.Errorf("LayerTCP.String() = %q", LayerTCP.String())
	}
	if got := LayerType(99).String(); !strings.Contains(got, "99") {
		t.Errorf("unknown layer string = %q", got)
	}
}

// TestTransportChecksumProperty: for random payloads, verifying the
// checksum over the encoded segment yields zero.
func TestTransportChecksumProperty(t *testing.T) {
	f := func(payload []byte, sp, dp uint16, s, d uint32) bool {
		if len(payload) > 1200 {
			payload = payload[:1200]
		}
		udp := UDP{SrcPort: sp, DstPort: dp}
		src, dst := AddrFromUint32(s), AddrFromUint32(d)
		buf := make([]byte, UDPHeaderLen+len(payload))
		if _, err := udp.EncodeTo(buf, src, dst, payload); err != nil {
			return false
		}
		sum := transportChecksum(src, dst, IPProtoUDP, buf)
		// 0 or 0xffff are both "valid" representations when the wire
		// checksum was 0xffff (the 0 substitution rule).
		return sum == 0 || sum == 0xffff
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestTotalLenEncoding(t *testing.T) {
	ip := IPv4{Version: 4, TTL: 1, Protocol: IPProtoUDP,
		Src: AddrFrom(1, 1, 1, 1), Dst: AddrFrom(2, 2, 2, 2)}
	ip.SetLengths(100)
	buf := make([]byte, ip.HeaderLen())
	if _, err := ip.EncodeTo(buf); err != nil {
		t.Fatal(err)
	}
	if got := binary.BigEndian.Uint16(buf[2:4]); got != 120 {
		t.Errorf("TotalLen on wire = %d, want 120", got)
	}
}
