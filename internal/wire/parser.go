package wire

import "fmt"

// Decoded is the result of parsing one packet with a LayerParser. The
// layer structs it points to are owned by the parser and are
// overwritten by the next Parse call.
type Decoded struct {
	Layers  []LayerType // layers decoded, in order
	Eth     *Ethernet
	IP      *IPv4
	IP6     *IPv6
	TCP     *TCP
	UDP     *UDP
	Payload []byte // application bytes (aliases the packet buffer)
}

// Has reports whether t was decoded from the last packet.
func (d *Decoded) Has(t LayerType) bool {
	for _, l := range d.Layers {
		if l == t {
			return true
		}
	}
	return false
}

// LayerParser decodes Ethernet/IPv4/TCP/UDP packet stacks into
// preallocated layer structs, avoiding per-packet allocation. It is the
// moral equivalent of gopacket's DecodingLayerParser specialised to the
// layers an edge probe cares about. A LayerParser is not safe for
// concurrent use; give each goroutine its own.
type LayerParser struct {
	first LayerType
	eth   Ethernet
	ip    IPv4
	ip6   IPv6
	tcp   TCP
	udp   UDP
	dec   Decoded
}

// NewLayerParser returns a parser whose outermost layer is first
// (LayerEthernet for a mirrored link, LayerIPv4 for cooked captures).
func NewLayerParser(first LayerType) *LayerParser {
	if first != LayerEthernet && first != LayerIPv4 {
		panic(fmt.Sprintf("wire: cannot start parsing at %v", first))
	}
	p := &LayerParser{first: first}
	p.dec.Eth = &p.eth
	p.dec.IP = &p.ip
	p.dec.IP6 = &p.ip6
	p.dec.TCP = &p.tcp
	p.dec.UDP = &p.udp
	return p
}

// Parse decodes data. On success the returned Decoded aliases both the
// parser's internal layer structs and data; neither survives the next
// Parse call. On error, the Decoded holds whatever layers were decoded
// before the failure.
func (p *LayerParser) Parse(data []byte) (*Decoded, error) {
	d := &p.dec
	d.Layers = d.Layers[:0]
	d.Payload = nil
	next := p.first
	for {
		var layer DecodingLayer
		switch next {
		case LayerEthernet:
			layer = &p.eth
		case LayerIPv4:
			layer = &p.ip
		case LayerIPv6:
			layer = &p.ip6
		case LayerTCP:
			layer = &p.tcp
		case LayerUDP:
			layer = &p.udp
		case LayerPayload:
			d.Payload = data
			d.Layers = append(d.Layers, LayerPayload)
			return d, nil
		default:
			return d, fmt.Errorf("wire: no decoder for %v: %w", next, ErrUnsupported)
		}
		payload, nxt, err := layer.DecodeFrom(data)
		if err != nil {
			return d, err
		}
		d.Layers = append(d.Layers, next)
		data = payload
		next = nxt
	}
}
