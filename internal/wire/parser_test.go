package wire

import (
	"bytes"
	"errors"
	"testing"
	"testing/quick"
)

func buildTCP(t *testing.T, payload []byte) []byte {
	t.Helper()
	var b Builder
	ip := IPv4{Src: AddrFrom(10, 0, 0, 1), Dst: AddrFrom(93, 184, 216, 34)}
	tcp := TCP{SrcPort: 40000, DstPort: 443, Seq: 1, Flags: TCPAck | TCPPsh}
	pkt, err := b.TCPPacket(&ip, &tcp, payload)
	if err != nil {
		t.Fatalf("TCPPacket: %v", err)
	}
	out := make([]byte, len(pkt))
	copy(out, pkt)
	return out
}

func TestParserTCPStack(t *testing.T) {
	payload := []byte("\x16\x03\x01")
	pkt := buildTCP(t, payload)
	p := NewLayerParser(LayerEthernet)
	d, err := p.Parse(pkt)
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	want := []LayerType{LayerEthernet, LayerIPv4, LayerTCP, LayerPayload}
	if len(d.Layers) != len(want) {
		t.Fatalf("layers = %v, want %v", d.Layers, want)
	}
	for i := range want {
		if d.Layers[i] != want[i] {
			t.Fatalf("layers = %v, want %v", d.Layers, want)
		}
	}
	if !bytes.Equal(d.Payload, payload) {
		t.Errorf("payload = %q, want %q", d.Payload, payload)
	}
	if d.TCP.DstPort != 443 {
		t.Errorf("dst port = %d, want 443", d.TCP.DstPort)
	}
	if d.IP.Dst != AddrFrom(93, 184, 216, 34) {
		t.Errorf("dst addr = %v", d.IP.Dst)
	}
	if !d.Has(LayerTCP) || d.Has(LayerUDP) {
		t.Errorf("Has() wrong: %v", d.Layers)
	}
}

func TestParserUDPStack(t *testing.T) {
	var b Builder
	ip := IPv4{Src: AddrFrom(10, 0, 0, 2), Dst: AddrFrom(8, 8, 4, 4)}
	udp := UDP{SrcPort: 5353, DstPort: 53}
	pkt, err := b.UDPPacket(&ip, &udp, []byte{1, 2, 3})
	if err != nil {
		t.Fatal(err)
	}
	p := NewLayerParser(LayerEthernet)
	d, err := p.Parse(pkt)
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	if !d.Has(LayerUDP) {
		t.Fatalf("layers = %v, want UDP present", d.Layers)
	}
	if d.UDP.DstPort != 53 {
		t.Errorf("dst port = %d, want 53", d.UDP.DstPort)
	}
	if len(d.Payload) != 3 {
		t.Errorf("payload len = %d, want 3", len(d.Payload))
	}
}

func TestParserReuseDoesNotLeakState(t *testing.T) {
	p := NewLayerParser(LayerEthernet)
	first := buildTCP(t, []byte("first payload"))
	if _, err := p.Parse(first); err != nil {
		t.Fatal(err)
	}
	var b Builder
	ip := IPv4{Src: AddrFrom(1, 1, 1, 1), Dst: AddrFrom(2, 2, 2, 2)}
	udp := UDP{SrcPort: 1, DstPort: 2}
	second, err := b.UDPPacket(&ip, &udp, nil)
	if err != nil {
		t.Fatal(err)
	}
	d, err := p.Parse(second)
	if err != nil {
		t.Fatal(err)
	}
	if d.Has(LayerTCP) {
		t.Errorf("second parse still reports TCP: %v", d.Layers)
	}
	if len(d.Payload) != 0 {
		t.Errorf("payload = %q, want empty", d.Payload)
	}
}

func TestParserIPv4First(t *testing.T) {
	pkt := buildTCP(t, []byte("x"))
	p := NewLayerParser(LayerIPv4)
	d, err := p.Parse(pkt[EthernetHeaderLen:])
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	if d.Layers[0] != LayerIPv4 {
		t.Errorf("first layer = %v, want ipv4", d.Layers[0])
	}
}

func TestParserTruncatedMidStack(t *testing.T) {
	pkt := buildTCP(t, []byte("payload"))
	p := NewLayerParser(LayerEthernet)
	// Cut inside the TCP header.
	d, err := p.Parse(pkt[:EthernetHeaderLen+IPv4HeaderLen+4])
	if !errors.Is(err, ErrTruncated) {
		t.Fatalf("err = %v, want ErrTruncated", err)
	}
	// Ethernet and IPv4 were decoded before the failure.
	if !d.Has(LayerEthernet) || !d.Has(LayerIPv4) {
		t.Errorf("partial layers = %v", d.Layers)
	}
}

func TestParserRejectsBadFirstLayer(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("NewLayerParser(LayerTCP) did not panic")
		}
	}()
	NewLayerParser(LayerTCP)
}

func TestFlowKeyCanonical(t *testing.T) {
	a := Endpoint{Addr: AddrFrom(10, 0, 0, 1), Port: 40000}
	b := Endpoint{Addr: AddrFrom(151, 101, 1, 140), Port: 443}
	k1, fwd1 := NewFlowKey(IPProtoTCP, a, b)
	k2, fwd2 := NewFlowKey(IPProtoTCP, b, a)
	if k1 != k2 {
		t.Errorf("keys differ: %v vs %v", k1, k2)
	}
	if fwd1 == fwd2 {
		t.Errorf("both directions report same orientation")
	}
	if k1.FastHash() != k2.FastHash() {
		t.Errorf("FastHash not symmetric")
	}
}

func TestFlowKeySamePortsDifferentAddrs(t *testing.T) {
	a := Endpoint{Addr: AddrFrom(10, 0, 0, 1), Port: 443}
	b := Endpoint{Addr: AddrFrom(10, 0, 0, 2), Port: 443}
	k, fwd := NewFlowKey(IPProtoTCP, a, b)
	if !fwd {
		t.Errorf("lower address should be forward")
	}
	if k.Lo != a || k.Hi != b {
		t.Errorf("key order wrong: %v", k)
	}
}

// Property: FlowKey is direction-independent for arbitrary endpoints.
func TestFlowKeySymmetryProperty(t *testing.T) {
	f := func(sa, da uint32, sp, dp uint16, tcp bool) bool {
		proto := IPProtoUDP
		if tcp {
			proto = IPProtoTCP
		}
		src := Endpoint{Addr: AddrFromUint32(sa), Port: sp}
		dst := Endpoint{Addr: AddrFromUint32(da), Port: dp}
		k1, _ := NewFlowKey(proto, src, dst)
		k2, _ := NewFlowKey(proto, dst, src)
		return k1 == k2 && k1.FastHash() == k2.FastHash()
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: any packet built by Builder parses back with identical
// payload and addresses.
func TestBuildParseRoundTripProperty(t *testing.T) {
	p := NewLayerParser(LayerEthernet)
	var b Builder
	f := func(s, d uint32, sp, dp uint16, payload []byte) bool {
		if len(payload) > 1400 {
			payload = payload[:1400]
		}
		ip := IPv4{Src: AddrFromUint32(s), Dst: AddrFromUint32(d)}
		tcp := TCP{SrcPort: sp, DstPort: dp, Flags: TCPAck}
		pkt, err := b.TCPPacket(&ip, &tcp, payload)
		if err != nil {
			return false
		}
		dec, err := p.Parse(pkt)
		if err != nil {
			return false
		}
		return dec.IP.Src == ip.Src && dec.IP.Dst == ip.Dst &&
			dec.TCP.SrcPort == sp && dec.TCP.DstPort == dp &&
			bytes.Equal(dec.Payload, payload)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func BenchmarkLayerParserTCP(b *testing.B) {
	var bd Builder
	ip := IPv4{Src: AddrFrom(10, 0, 0, 1), Dst: AddrFrom(93, 184, 216, 34)}
	tcp := TCP{SrcPort: 40000, DstPort: 443, Flags: TCPAck}
	pkt, err := bd.TCPPacket(&ip, &tcp, make([]byte, 1200))
	if err != nil {
		b.Fatal(err)
	}
	p := NewLayerParser(LayerEthernet)
	b.SetBytes(int64(len(pkt)))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := p.Parse(pkt); err != nil {
			b.Fatal(err)
		}
	}
}
