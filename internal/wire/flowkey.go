package wire

import "fmt"

// Endpoint is one side of a transport conversation: an IPv4 address and
// a port. It is comparable and suitable as a map key.
type Endpoint struct {
	Addr Addr
	Port uint16
}

// String formats the endpoint as "a.b.c.d:port".
func (e Endpoint) String() string { return fmt.Sprintf("%s:%d", e.Addr, e.Port) }

// FlowKey identifies a bidirectional transport conversation: the
// 5-tuple with endpoints in canonical (sorted) order, so both
// directions of a connection map to the same key. FlowKey is comparable
// and suitable as a map key.
type FlowKey struct {
	Lo, Hi Endpoint // Lo <= Hi in (addr, port) order
	Proto  uint8    // IPProtoTCP or IPProtoUDP
}

// endpointLess orders endpoints by address then port.
func endpointLess(a, b Endpoint) bool {
	au, bu := a.Addr.Uint32(), b.Addr.Uint32()
	if au != bu {
		return au < bu
	}
	return a.Port < b.Port
}

// NewFlowKey builds the canonical key for a packet from src to dst.
// The returned bool is true when src sorts as the Lo endpoint, i.e.
// the packet travels in the key's "forward" orientation.
func NewFlowKey(proto uint8, src, dst Endpoint) (FlowKey, bool) {
	if endpointLess(src, dst) {
		return FlowKey{Lo: src, Hi: dst, Proto: proto}, true
	}
	return FlowKey{Lo: dst, Hi: src, Proto: proto}, false
}

// String formats the key as "proto lo<->hi".
func (k FlowKey) String() string {
	proto := "udp"
	if k.Proto == IPProtoTCP {
		proto = "tcp"
	}
	return fmt.Sprintf("%s %s<->%s", proto, k.Lo, k.Hi)
}

// FastHash returns a non-cryptographic 64-bit hash of the key, suitable
// for load balancing packets across workers. It is symmetric by
// construction: both directions of a flow hash identically because the
// key is canonicalised.
func (k FlowKey) FastHash() uint64 {
	// FNV-1a over the 13 key bytes, unrolled.
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	mix := func(b byte) {
		h ^= uint64(b)
		h *= prime64
	}
	for _, b := range k.Lo.Addr {
		mix(b)
	}
	mix(byte(k.Lo.Port >> 8))
	mix(byte(k.Lo.Port))
	for _, b := range k.Hi.Addr {
		mix(b)
	}
	mix(byte(k.Hi.Port >> 8))
	mix(byte(k.Hi.Port))
	mix(k.Proto)
	return h
}
