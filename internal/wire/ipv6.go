package wire

import (
	"encoding/binary"
	"fmt"
)

// IPv6 support. The monitored access network of the paper's era was
// IPv4-only toward customers, but the mirrored links carry the odd v6
// frame (router chatter, dual-stacked servers); a probe must decode
// them cleanly enough to account for them instead of calling them
// errors.

// Addr6 is an IPv6 address in wire order.
type Addr6 [16]byte

// String formats the address in uncompressed colon-hex form (the
// probe logs addresses for debugging, not beauty).
func (a Addr6) String() string {
	out := make([]byte, 0, 39)
	for i := 0; i < 16; i += 2 {
		if i > 0 {
			out = append(out, ':')
		}
		out = append(out, hexDigits[a[i]>>4], hexDigits[a[i]&0xf],
			hexDigits[a[i+1]>>4], hexDigits[a[i+1]&0xf])
	}
	return string(out)
}

const hexDigits = "0123456789abcdef"

// IPv6 is an IPv6 fixed header. Extension headers other than the
// common skippable ones terminate parsing with the payload untouched.
type IPv6 struct {
	TrafficClass uint8
	FlowLabel    uint32
	PayloadLen   uint16
	NextHeader   uint8
	HopLimit     uint8
	Src, Dst     Addr6
}

// IPv6HeaderLen is the fixed IPv6 header size.
const IPv6HeaderLen = 40

// skippable IPv6 extension headers (hop-by-hop, routing, destination
// options, mobility) share a TLV layout of (next, len-in-8-octets-1).
func skippableExt(h uint8) bool {
	switch h {
	case 0, 43, 60, 135:
		return true
	default:
		return false
	}
}

// LayerType implements DecodingLayer.
func (ip *IPv6) LayerType() LayerType { return LayerIPv6 }

// LayerIPv6 extends the layer enumeration.
const LayerIPv6 LayerType = 16

// DecodeFrom implements DecodingLayer: it parses the fixed header,
// skips the skippable extension chain, and reports the next transport
// layer.
func (ip *IPv6) DecodeFrom(data []byte) ([]byte, LayerType, error) {
	if len(data) < IPv6HeaderLen {
		return nil, LayerNone, fmt.Errorf("ipv6: need %d bytes, have %d: %w", IPv6HeaderLen, len(data), ErrTruncated)
	}
	vtf := binary.BigEndian.Uint32(data[0:4])
	if vtf>>28 != 6 {
		return nil, LayerNone, fmt.Errorf("ipv6: version %d: %w", vtf>>28, ErrMalformed)
	}
	ip.TrafficClass = uint8(vtf >> 20)
	ip.FlowLabel = vtf & 0xFFFFF
	ip.PayloadLen = binary.BigEndian.Uint16(data[4:6])
	ip.NextHeader = data[6]
	ip.HopLimit = data[7]
	copy(ip.Src[:], data[8:24])
	copy(ip.Dst[:], data[24:40])

	payload := data[IPv6HeaderLen:]
	if int(ip.PayloadLen) < len(payload) {
		payload = payload[:ip.PayloadLen]
	}
	next := ip.NextHeader
	for skippableExt(next) {
		if len(payload) < 8 {
			return nil, LayerNone, fmt.Errorf("ipv6: extension header: %w", ErrTruncated)
		}
		extLen := 8 * (int(payload[1]) + 1)
		if len(payload) < extLen {
			return nil, LayerNone, fmt.Errorf("ipv6: extension header length %d: %w", extLen, ErrTruncated)
		}
		next = payload[0]
		payload = payload[extLen:]
	}
	switch next {
	case IPProtoTCP:
		return payload, LayerTCP, nil
	case IPProtoUDP:
		return payload, LayerUDP, nil
	default:
		return payload, LayerPayload, nil
	}
}

// EncodeTo serialises the fixed header (no extension headers).
func (ip *IPv6) EncodeTo(b []byte) (int, error) {
	if len(b) < IPv6HeaderLen {
		return 0, fmt.Errorf("ipv6: encode buffer too small: %w", ErrTruncated)
	}
	binary.BigEndian.PutUint32(b[0:4], 6<<28|uint32(ip.TrafficClass)<<20|ip.FlowLabel&0xFFFFF)
	binary.BigEndian.PutUint16(b[4:6], ip.PayloadLen)
	b[6] = ip.NextHeader
	b[7] = ip.HopLimit
	copy(b[8:24], ip.Src[:])
	copy(b[24:40], ip.Dst[:])
	return IPv6HeaderLen, nil
}
