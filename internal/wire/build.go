package wire

// Builder assembles complete Ethernet/IPv4/TCP|UDP packets into a
// reusable buffer. It fixes up the length and checksum fields that
// depend on inner layers, so callers only set the semantically
// meaningful fields. A Builder is not safe for concurrent use.
type Builder struct {
	buf []byte
}

// defaultMAC addresses used when the caller does not care about L2.
var (
	clientMAC = [6]byte{0x02, 0x00, 0x00, 0x00, 0x00, 0x01}
	routerMAC = [6]byte{0x02, 0x00, 0x00, 0x00, 0x00, 0x02}
)

// grow ensures the internal buffer has at least n bytes and returns it.
func (b *Builder) grow(n int) []byte {
	if cap(b.buf) < n {
		b.buf = make([]byte, n)
	}
	b.buf = b.buf[:n]
	return b.buf
}

// TCPPacket builds an Ethernet+IPv4+TCP packet carrying payload. The
// returned slice is valid until the next call on this Builder.
func (b *Builder) TCPPacket(ip *IPv4, tcp *TCP, payload []byte) ([]byte, error) {
	ip.Protocol = IPProtoTCP
	if ip.Version == 0 {
		ip.Version = 4
	}
	if ip.TTL == 0 {
		ip.TTL = 58
	}
	tcpLen := tcp.HeaderLen() + len(payload)
	ip.SetLengths(tcpLen)
	total := EthernetHeaderLen + ip.HeaderLen() + tcpLen
	buf := b.grow(total)

	eth := Ethernet{SrcMAC: clientMAC, DstMAC: routerMAC, EtherType: EtherTypeIPv4}
	n, err := eth.EncodeTo(buf)
	if err != nil {
		return nil, err
	}
	in, err := ip.EncodeTo(buf[n:])
	if err != nil {
		return nil, err
	}
	if _, err := tcp.EncodeTo(buf[n+in:], ip.Src, ip.Dst, payload); err != nil {
		return nil, err
	}
	return buf, nil
}

// UDPPacket builds an Ethernet+IPv4+UDP packet carrying payload. The
// returned slice is valid until the next call on this Builder.
func (b *Builder) UDPPacket(ip *IPv4, udp *UDP, payload []byte) ([]byte, error) {
	ip.Protocol = IPProtoUDP
	if ip.Version == 0 {
		ip.Version = 4
	}
	if ip.TTL == 0 {
		ip.TTL = 58
	}
	udpLen := UDPHeaderLen + len(payload)
	ip.SetLengths(udpLen)
	total := EthernetHeaderLen + ip.HeaderLen() + udpLen
	buf := b.grow(total)

	eth := Ethernet{SrcMAC: clientMAC, DstMAC: routerMAC, EtherType: EtherTypeIPv4}
	n, err := eth.EncodeTo(buf)
	if err != nil {
		return nil, err
	}
	in, err := ip.EncodeTo(buf[n:])
	if err != nil {
		return nil, err
	}
	if _, err := udp.EncodeTo(buf[n+in:], ip.Src, ip.Dst, payload); err != nil {
		return nil, err
	}
	return buf, nil
}
