package wire

// TCP option parsing. Tstat reports negotiated MSS, window scaling and
// SACK permission per flow; the parser here extracts them from SYN
// options.

// TCP option kinds.
const (
	TCPOptEnd       uint8 = 0
	TCPOptNop       uint8 = 1
	TCPOptMSS       uint8 = 2
	TCPOptWScale    uint8 = 3
	TCPOptSACKPerm  uint8 = 4
	TCPOptTimestamp uint8 = 8
)

// TCPOptions holds the option values a passive probe cares about.
// Zero values mean "not present".
type TCPOptions struct {
	MSS           uint16
	WindowScale   uint8
	WScalePresent bool
	SACKPermitted bool
	TSVal, TSEcr  uint32
	TSPresent     bool
}

// ParseTCPOptions walks a TCP options block. Malformed blocks yield
// whatever was parsed before the damage — a probe keeps what it can.
func ParseTCPOptions(opts []byte) TCPOptions {
	var out TCPOptions
	for len(opts) > 0 {
		kind := opts[0]
		switch kind {
		case TCPOptEnd:
			return out
		case TCPOptNop:
			opts = opts[1:]
			continue
		}
		if len(opts) < 2 {
			return out
		}
		l := int(opts[1])
		if l < 2 || l > len(opts) {
			return out
		}
		body := opts[2:l]
		switch kind {
		case TCPOptMSS:
			if len(body) == 2 {
				out.MSS = uint16(body[0])<<8 | uint16(body[1])
			}
		case TCPOptWScale:
			if len(body) == 1 {
				out.WindowScale = body[0]
				out.WScalePresent = true
			}
		case TCPOptSACKPerm:
			out.SACKPermitted = true
		case TCPOptTimestamp:
			if len(body) == 8 {
				out.TSVal = uint32(body[0])<<24 | uint32(body[1])<<16 | uint32(body[2])<<8 | uint32(body[3])
				out.TSEcr = uint32(body[4])<<24 | uint32(body[5])<<16 | uint32(body[6])<<8 | uint32(body[7])
				out.TSPresent = true
			}
		}
		opts = opts[l:]
	}
	return out
}

// AppendTCPOptions builds an options block (padded to 4 bytes with
// NOPs) for the simulator's SYN packets.
func AppendTCPOptions(dst []byte, o TCPOptions) []byte {
	if o.MSS != 0 {
		dst = append(dst, TCPOptMSS, 4, byte(o.MSS>>8), byte(o.MSS))
	}
	if o.WScalePresent {
		dst = append(dst, TCPOptWScale, 3, o.WindowScale)
	}
	if o.SACKPermitted {
		dst = append(dst, TCPOptSACKPerm, 2)
	}
	if o.TSPresent {
		dst = append(dst, TCPOptTimestamp, 10,
			byte(o.TSVal>>24), byte(o.TSVal>>16), byte(o.TSVal>>8), byte(o.TSVal),
			byte(o.TSEcr>>24), byte(o.TSEcr>>16), byte(o.TSEcr>>8), byte(o.TSEcr))
	}
	for len(dst)%4 != 0 {
		dst = append(dst, TCPOptNop)
	}
	return dst
}
