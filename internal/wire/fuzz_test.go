package wire_test

import (
	"testing"
	"time"

	"repro/internal/probe"
	"repro/internal/simnet"
	"repro/internal/wire"
)

// FuzzParsePacket throws arbitrary frames at the layer parser from both
// entry points (Ethernet for mirrored links, IPv4 for cooked captures).
// A passive probe must survive anything the wire carries: errors are
// fine, panics and out-of-bounds reads are not.
func FuzzParsePacket(f *testing.F) {
	// Seed with real frames from the packet-level simulator so mutation
	// starts from well-formed Ethernet/IPv4/TCP/UDP stacks with live
	// handshake payloads (TLS, HTTP, DNS, QUIC).
	w := simnet.NewWorld(5, simnet.Scale{ADSL: 4, FTTH: 2})
	day := time.Date(2016, 4, 12, 0, 0, 0, 0, time.UTC)
	n := 0
	w.EmitDayPackets(day, simnet.PacketOptions{MaxFlowBytes: 4 << 10}, func(pkt probe.Packet) {
		if n < 64 {
			data := make([]byte, len(pkt.Data))
			copy(data, pkt.Data)
			f.Add(data)
			n++
		}
	})
	if n == 0 {
		f.Fatal("simulator emitted no packets to seed from")
	}
	f.Add([]byte{})
	f.Add([]byte{0x45})

	f.Fuzz(func(t *testing.T, data []byte) {
		// Fresh parsers per input: Decoded aliases parser-owned structs,
		// so reuse across inputs could mask state-dependent crashes.
		if d, err := wire.NewLayerParser(wire.LayerEthernet).Parse(data); err == nil && d == nil {
			t.Fatal("nil Decoded with nil error")
		}
		if d, err := wire.NewLayerParser(wire.LayerIPv4).Parse(data); err == nil && d == nil {
			t.Fatal("nil Decoded with nil error")
		}
	})
}
