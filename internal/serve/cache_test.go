package serve

// The cache-equivalence tier (make cacheequiv): the response cache
// must never change an answer, only its cost. Hits are byte-identical
// to their first computation, every lake mutation path — WriteDay,
// live-ingest checkpoints and seals, admin compaction — moves the
// generation and yields answers equal to a fresh batch pipeline's,
// ETag/If-None-Match revalidation round-trips, and a mid-stream
// damaged day terminates a streamed CSV with the error trailer. Plus
// the serve-contract regressions: the deadline covers queue wait, a
// failed day contributes nothing to scan tallies, /v1/metrics rejects
// unknown formats, and healthz stops listing the lake per probe.

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/analytics"
	"repro/internal/core"
	"repro/internal/flowrec"
	"repro/internal/ingest"
	"repro/internal/simnet"
)

// doReq issues one request with optional headers and drains the body,
// so trailers are populated on return.
func doReq(t *testing.T, method, url string, hdr map[string]string) (*http.Response, []byte) {
	t.Helper()
	req, err := http.NewRequest(method, url, nil)
	if err != nil {
		t.Fatal(err)
	}
	for k, v := range hdr {
		req.Header.Set(k, v)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatalf("%s %s: %v", method, url, err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatalf("%s %s: read body: %v", method, url, err)
	}
	return resp, body
}

// buildLake generates a small real lake (one record stream per day)
// in the given format and returns the store plus its days.
func buildLake(t *testing.T, nDays int, format flowrec.Format) (*flowrec.Store, []time.Time) {
	t.Helper()
	store, err := flowrec.OpenStoreFormat(filepath.Join(t.TempDir(), "lake"), format)
	if err != nil {
		t.Fatal(err)
	}
	days := make([]time.Time, nDays)
	for i := range days {
		days[i] = simnet.SpanStart.AddDate(0, 0, i)
	}
	gen := core.New(servequivConfig())
	if _, err := gen.GenerateStore(context.Background(), core.NewDiskStorage(store, ""), days); err != nil {
		t.Fatal(err)
	}
	return store, days
}

// lakeConfig is the serving config over a generated lake.
func lakeConfig(store *flowrec.Store) core.Config {
	cfg := servequivConfig()
	cfg.Store = store
	return cfg
}

// memLake is an in-memory core.Storage whose days can be damaged at a
// chosen record: reads deliver failAfter records, then fail like a
// torn gzip (wrapping flowrec.ErrCorrupt). daysCalls counts Days()
// listings for the healthz caching test.
type memLake struct {
	recs      map[int64][]flowrec.Record
	failAfter map[int64]int
	gen       atomic.Uint64
	daysCalls atomic.Int64
}

func newMemLake() *memLake {
	return &memLake{recs: make(map[int64][]flowrec.Record), failAfter: make(map[int64]int)}
}

func (m *memLake) addDay(day time.Time, n int, bytesDown, bytesUp uint64) {
	var recs []flowrec.Record
	for i := 0; i < n; i++ {
		recs = append(recs, flowrec.Record{
			Start: day.Add(time.Duration(i) * time.Minute),
			Proto: flowrec.ProtoTCP, Tech: flowrec.TechADSL,
			SubID: uint32(i), BytesDown: bytesDown, BytesUp: bytesUp,
		})
	}
	m.recs[day.Unix()] = recs
}

func (m *memLake) ReadDay(day time.Time, fn func(*flowrec.Record) error) error {
	return m.ReadDayCols(day, flowrec.ColScan{}, fn)
}

func (m *memLake) ReadDayCols(day time.Time, sc flowrec.ColScan, fn func(*flowrec.Record) error) error {
	recs, ok := m.recs[day.Unix()]
	if !ok {
		return fmt.Errorf("%w: %s", flowrec.ErrNoDay, day.Format("2006-01-02"))
	}
	limit, damaged := m.failAfter[day.Unix()]
	for i := range recs {
		if damaged && i >= limit {
			return fmt.Errorf("%w: injected mid-day damage", flowrec.ErrCorrupt)
		}
		if err := fn(&recs[i]); err != nil {
			return err
		}
	}
	return nil
}

func (m *memLake) WriteDay(day time.Time, emit func(write func(*flowrec.Record) error) error) (uint64, error) {
	var recs []flowrec.Record
	err := emit(func(r *flowrec.Record) error { recs = append(recs, *r); return nil })
	if err != nil {
		return uint64(len(recs)), err
	}
	m.recs[day.Unix()] = recs
	m.BumpGeneration()
	return uint64(len(recs)), nil
}

func (m *memLake) HasDay(day time.Time) bool { _, ok := m.recs[day.Unix()]; return ok }

func (m *memLake) Days() ([]time.Time, error) {
	m.daysCalls.Add(1)
	var out []time.Time
	for u := range m.recs {
		out = append(out, time.Unix(u, 0).UTC())
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Before(out[j]) })
	return out, nil
}

func (m *memLake) QuarantineDay(day time.Time) error {
	delete(m.recs, day.Unix())
	m.BumpGeneration()
	return nil
}

func (m *memLake) LoadAgg(time.Time) (*analytics.DayAgg, error)         { return nil, nil }
func (m *memLake) SaveAgg(*analytics.DayAgg) error                      { return nil }
func (m *memLake) LoadPartials(time.Time) ([]*analytics.Partial, error) { return nil, nil }
func (m *memLake) SavePartials(time.Time, []*analytics.Partial) error   { return nil }
func (m *memLake) LoadRollup(analytics.Grain, time.Time) (*analytics.Rollup, error) {
	return nil, nil
}
func (m *memLake) SaveRollup(*analytics.Rollup) error { return nil }
func (m *memLake) InvalidateRollups(time.Time) error  { return nil }
func (m *memLake) Generation() uint64                 { return m.gen.Load() }
func (m *memLake) BumpGeneration() uint64             { return m.gen.Add(1) }

// --- satellite regressions --------------------------------------------------

// TestDeadlineIncludesQueueWait: QueryTimeout is documented as the
// bound on what a client observes, admission wait included. A request
// queued behind a slow slot-holder past the deadline must answer 504
// promptly — not run (and answer 200) whenever the queue drains.
func TestDeadlineIncludesQueueWait(t *testing.T) {
	fake := &fakeStorage{day: fakeDay, entered: make(chan struct{}, 8), release: make(chan struct{})}
	_, ts := newEquivServer(t, core.Config{Storage: fake, Workers: 1},
		Options{Workers: 1, Queue: 4, QueryTimeout: 250 * time.Millisecond})
	url := ts.URL + "/v1/scan?from=2016-04-01"
	timeouts0 := mTimeouts.Load()

	aCh := make(chan int, 1)
	go func() {
		status, _, _ := httpStatus(&http.Client{}, url)
		aCh <- status
	}()
	<-fake.entered // A holds the only worker slot, blocked on release

	t0 := time.Now()
	status, body, err := httpStatus(&http.Client{}, url)
	waited := time.Since(t0)
	if err != nil {
		t.Fatal(err)
	}
	if status != http.StatusGatewayTimeout {
		t.Fatalf("queued request answered %d, want 504: %s", status, body)
	}
	if !strings.Contains(string(body), "deadline") {
		t.Errorf("504 body does not mention the deadline: %s", body)
	}
	// The 504 must arrive around the deadline, not whenever the
	// holder finishes (it is still blocked right now).
	if waited > 5*time.Second {
		t.Errorf("queued 504 took %v, deadline was 250ms", waited)
	}
	if got := mTimeouts.Load(); got != timeouts0+1 {
		t.Errorf("serve.deadline_expired = %d, want %d", got, timeouts0+1)
	}
	close(fake.release)
	<-aCh
}

// TestScanSummaryExcludesFailedDay: a day that fails mid-decode has
// delivered an arbitrary prefix of its records; none of it may leak
// into totals the summary reports as clean.
func TestScanSummaryExcludesFailedDay(t *testing.T) {
	lake := newMemLake()
	d0 := fakeDay
	d1 := fakeDay.AddDate(0, 0, 1)
	d2 := fakeDay.AddDate(0, 0, 2)
	lake.addDay(d0, 5, 100, 10)
	lake.addDay(d1, 7, 1000, 100) // the poisoned middle day:
	lake.failAfter[d1.Unix()] = 3 // 3 records decode, then corruption
	lake.addDay(d2, 2, 100, 10)
	_, ts := newEquivServer(t, core.Config{Storage: lake, Workers: 1}, Options{})

	_, body := doReq(t, http.MethodGet,
		ts.URL+"/v1/scan?from=2016-04-01&to=2016-04-03", nil)
	var resp ScanResponse
	if err := json.Unmarshal(body, &resp); err != nil {
		t.Fatalf("scan response: %v: %s", err, body)
	}
	if resp.ScannedDays != 2 {
		t.Errorf("ScannedDays = %d, want 2", resp.ScannedDays)
	}
	if len(resp.FailedDays) != 1 || resp.FailedDays[0] != "2016-04-02" {
		t.Errorf("FailedDays = %v, want [2016-04-02]", resp.FailedDays)
	}
	// 5 + 2 records from the healthy days; the damaged day's partial
	// prefix (3 records at 1000 bytes each) must not appear anywhere.
	if resp.Scanned != 7 || resp.Matched != 7 {
		t.Errorf("Scanned/Matched = %d/%d, want 7/7 (failed day's prefix leaked)",
			resp.Scanned, resp.Matched)
	}
	if len(resp.Services) != 1 {
		t.Fatalf("Services = %v, want one (unclassified) row", resp.Services)
	}
	if got := resp.Services[0]; got.Flows != 7 || got.DownBytes != 700 || got.UpBytes != 70 {
		t.Errorf("service tally = %+v, want flows=7 down=700 up=70", got)
	}
}

// TestMetricsFormatStrict: /v1/metrics now enforces the same strict
// unknown-value contract as every admitted endpoint.
func TestMetricsFormatStrict(t *testing.T) {
	fake := &fakeStorage{day: fakeDay}
	_, ts := newEquivServer(t, core.Config{Storage: fake, Workers: 1}, Options{})
	for _, c := range []struct {
		query string
		want  int
	}{
		{"", http.StatusOK},
		{"?format=json", http.StatusOK},
		{"?format=text", http.StatusOK},
		{"?format=xml", http.StatusBadRequest},
		{"?format=TEXT", http.StatusBadRequest},
	} {
		resp, body := doReq(t, http.MethodGet, ts.URL+"/v1/metrics"+c.query, nil)
		if resp.StatusCode != c.want {
			t.Errorf("GET /v1/metrics%s: status %d, want %d: %s", c.query, resp.StatusCode, c.want, body)
		}
	}
}

// TestHealthzCachedDayCount: the health probe must not list the lake
// directory per probe — one listing per lake generation.
func TestHealthzCachedDayCount(t *testing.T) {
	lake := newMemLake()
	lake.addDay(fakeDay, 3, 100, 10)
	_, ts := newEquivServer(t, core.Config{Storage: lake, Workers: 1}, Options{})

	var h Health
	for i := 0; i < 3; i++ {
		_, body := doReq(t, http.MethodGet, ts.URL+"/v1/healthz", nil)
		if err := json.Unmarshal(body, &h); err != nil {
			t.Fatal(err)
		}
		if h.LakeDays != 1 {
			t.Fatalf("LakeDays = %d, want 1", h.LakeDays)
		}
	}
	if got := lake.daysCalls.Load(); got != 1 {
		t.Errorf("3 probes did %d lake listings, want 1", got)
	}

	lake.addDay(fakeDay.AddDate(0, 0, 1), 3, 100, 10)
	lake.BumpGeneration() // as a real WriteDay would
	_, body := doReq(t, http.MethodGet, ts.URL+"/v1/healthz", nil)
	if err := json.Unmarshal(body, &h); err != nil {
		t.Fatal(err)
	}
	if h.LakeDays != 2 {
		t.Errorf("LakeDays after mutation = %d, want 2", h.LakeDays)
	}
	if got := lake.daysCalls.Load(); got != 2 {
		t.Errorf("lake listings after mutation = %d, want 2 (one per generation)", got)
	}
	if h.Generation != lake.Generation() {
		t.Errorf("healthz generation = %d, lake = %d", h.Generation, lake.Generation())
	}
}

// --- the response cache -----------------------------------------------------

// TestResponseCacheByteIdentical: concurrent identical queries answer
// byte-for-byte identically, and a repeat is served from the cache.
func TestResponseCacheByteIdentical(t *testing.T) {
	_, ts := newEquivServer(t, servequivConfig(), Options{})
	url := ts.URL + "/v1/figures/fig3"

	first, body1 := doReq(t, http.MethodGet, url, nil)
	if first.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", first.StatusCode, body1)
	}
	if first.Header.Get("X-Cache") != "miss" {
		t.Errorf("first answer X-Cache = %q, want miss", first.Header.Get("X-Cache"))
	}
	if first.Header.Get("ETag") == "" {
		t.Error("no ETag on a figure response")
	}

	var wg sync.WaitGroup
	errs := make(chan string, 8)
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			status, body, err := httpStatus(&http.Client{}, url)
			if err != nil || status != http.StatusOK {
				errs <- fmt.Sprintf("status %d err %v", status, err)
				return
			}
			if !bytes.Equal(body, body1) {
				errs <- "concurrent answer differs from first"
			}
		}()
	}
	wg.Wait()
	close(errs)
	for e := range errs {
		t.Error(e)
	}

	repeat, body2 := doReq(t, http.MethodGet, url, nil)
	if repeat.Header.Get("X-Cache") != "hit" {
		t.Errorf("repeat X-Cache = %q, want hit", repeat.Header.Get("X-Cache"))
	}
	if !bytes.Equal(body2, body1) {
		t.Error("cached answer differs from first computation")
	}
	if repeat.Header.Get("ETag") != first.Header.Get("ETag") {
		t.Error("ETag changed without a lake mutation")
	}
}

// TestETagRoundTrip: 200 with an ETag → 304 on If-None-Match → lake
// mutation → 200 again with a new ETag. The revalidation must also be
// admission-free (it is served from cache).
func TestETagRoundTrip(t *testing.T) {
	store, days := buildLake(t, 1, flowrec.FormatV1)
	srv, ts := newEquivServer(t, lakeConfig(store), Options{})
	day := days[0].Format("2006-01-02")
	url := fmt.Sprintf("%s/v1/scan?from=%s&to=%s", ts.URL, day, day)

	first, body1 := doReq(t, http.MethodGet, url, nil)
	if first.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", first.StatusCode, body1)
	}
	etag1 := first.Header.Get("ETag")
	if etag1 == "" {
		t.Fatal("no ETag on scan response")
	}

	cond, condBody := doReq(t, http.MethodGet, url, map[string]string{"If-None-Match": etag1})
	if cond.StatusCode != http.StatusNotModified {
		t.Fatalf("If-None-Match with current tag: status %d, want 304", cond.StatusCode)
	}
	if len(condBody) != 0 {
		t.Errorf("304 carried a %d-byte body", len(condBody))
	}

	// Rewrite the day: the generation moves, so the held tag is stale.
	gen0 := srv.Pipeline().Generation()
	_, err := srv.Pipeline().Storage().WriteDay(days[0], func(write func(*flowrec.Record) error) error {
		return write(&flowrec.Record{
			Start: days[0].Add(time.Hour), Proto: flowrec.ProtoTCP,
			Tech: flowrec.TechADSL, SubID: 1, BytesDown: 42, BytesUp: 7,
		})
	})
	if err != nil {
		t.Fatal(err)
	}
	if got := srv.Pipeline().Generation(); got <= gen0 {
		t.Fatalf("generation after WriteDay = %d, want > %d", got, gen0)
	}

	after, body3 := doReq(t, http.MethodGet, url, map[string]string{"If-None-Match": etag1})
	if after.StatusCode != http.StatusOK {
		t.Fatalf("post-mutation conditional GET: status %d, want 200 (data changed)", after.StatusCode)
	}
	if after.Header.Get("ETag") == etag1 {
		t.Error("ETag unchanged across a lake mutation")
	}
	if bytes.Equal(body3, body1) {
		t.Error("scan body unchanged after the day was rewritten to one record")
	}
	var resp ScanResponse
	if err := json.Unmarshal(body3, &resp); err != nil {
		t.Fatal(err)
	}
	if resp.Scanned != 1 {
		t.Errorf("post-rewrite scan sees %d records, want 1", resp.Scanned)
	}
}

// TestResponseCacheInvalidationOnIngest: a live ingester sharing the
// server's storage checkpoints and seals a hot day; every generation
// step must yield served answers equal to a *fresh* batch pipeline
// over the same lake — no stale figure, ever.
func TestResponseCacheInvalidationOnIngest(t *testing.T) {
	day := simnet.SpanStart.AddDate(0, 0, 7)
	dir := t.TempDir()
	store, err := flowrec.OpenStoreFormat(filepath.Join(dir, "lake"), flowrec.FormatV1)
	if err != nil {
		t.Fatal(err)
	}
	aggDir := filepath.Join(dir, "agg")
	ds := core.NewDiskStorage(store, aggDir)
	in, err := ingest.Open(ingest.Config{
		Storage:         ds,
		WALDir:          filepath.Join(dir, "lake", flowrec.WALDirName),
		CheckpointEvery: 128,
	})
	if err != nil {
		t.Fatal(err)
	}
	w := simnet.NewWorld(7, simnet.Scale{ADSL: 8, FTTH: 4})
	src := w.Stream([]time.Time{day})
	ctx := context.Background()

	var sr simnet.StreamRecord
	streamN := func(n int) bool {
		for i := 0; i < n; i++ {
			if !src.Next(&sr) {
				return false
			}
			if err := in.Ingest(ctx, &sr.Rec, sr.At); err != nil {
				t.Fatal(err)
			}
		}
		return true
	}
	streamN(256)
	in.CheckpointAll(ctx)

	pcfg := core.Config{Seed: 7, Scale: simnet.Scale{ADSL: 8, FTTH: 4}, Workers: 2,
		Storage: ds, AggCacheDir: aggDir}
	srv, ts := newEquivServer(t, pcfg, Options{})
	path := fmt.Sprintf("/v1/figures/active?from=%s&to=%s",
		day.Format("2006-01-02"), day.Format("2006-01-02"))

	// freshBody computes the same figure on a brand-new batch pipeline
	// over the same lake — the ground truth a cached server must match.
	freshBody := func() []byte {
		fresh := New(core.New(core.Config{Seed: 7, Scale: simnet.Scale{ADSL: 8, FTTH: 4},
			Workers: 2, Store: store, AggCacheDir: aggDir}), Options{})
		rec := httptest.NewRecorder()
		fresh.Handler().ServeHTTP(rec, httptest.NewRequest(http.MethodGet, path, nil))
		if rec.Code != http.StatusOK {
			t.Fatalf("fresh pipeline: status %d: %s", rec.Code, rec.Body.String())
		}
		return rec.Body.Bytes()
	}

	check := func(stage string) {
		resp, body := doReq(t, http.MethodGet, ts.URL+path, nil)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("%s: status %d: %s", stage, resp.StatusCode, body)
		}
		if want := freshBody(); !bytes.Equal(body, want) {
			t.Errorf("%s: served answer diverges from a fresh batch pipeline\nserved: %s\nfresh:  %s",
				stage, body, want)
		}
		// And the (now-current) answer is cached: repeat hits.
		repeat, body2 := doReq(t, http.MethodGet, ts.URL+path, nil)
		if repeat.Header.Get("X-Cache") != "hit" {
			t.Errorf("%s: repeat X-Cache = %q, want hit", stage, repeat.Header.Get("X-Cache"))
		}
		if !bytes.Equal(body2, body) {
			t.Errorf("%s: cache hit differs from its own miss", stage)
		}
	}

	check("after first checkpoint")
	gen1 := srv.Pipeline().Generation()

	streamN(512)
	in.CheckpointAll(ctx)
	if got := srv.Pipeline().Generation(); got <= gen1 {
		t.Fatalf("checkpoint did not move the generation (%d -> %d)", gen1, got)
	}
	check("after more live records + checkpoint")

	for streamN(512) {
	}
	if err := in.SealAll(ctx); err != nil {
		t.Fatal(err)
	}
	check("after seal (day in the lake)")
	if err := in.Close(ctx); err != nil {
		t.Fatal(err)
	}
}

// --- streaming CSV ----------------------------------------------------------

// TestStreamingCSVMatchesBuffered: a healthy streamed export carries
// exactly the buffered export's bytes plus the completion trailer.
func TestStreamingCSVMatchesBuffered(t *testing.T) {
	store, days := buildLake(t, 2, flowrec.FormatV1)
	_, ts := newEquivServer(t, lakeConfig(store), Options{})
	span := fmt.Sprintf("from=%s&to=%s", days[0].Format("2006-01-02"), days[1].Format("2006-01-02"))

	buffered, bufBody := doReq(t, http.MethodGet,
		ts.URL+"/v1/scan?"+span+"&format=csv&limit=1000000", nil)
	if buffered.StatusCode != http.StatusOK {
		t.Fatalf("buffered export: status %d", buffered.StatusCode)
	}
	if buffered.Header.Get("X-Scan-Truncated") != "" {
		t.Fatal("buffered export truncated; enlarge the limit")
	}

	streamed, streamBody := doReq(t, http.MethodGet,
		ts.URL+"/v1/scan?"+span+"&format=csv&stream=true", nil)
	if streamed.StatusCode != http.StatusOK {
		t.Fatalf("streamed export: status %d", streamed.StatusCode)
	}
	if got := streamed.Trailer.Get("X-Scan-Complete"); got != "true" {
		t.Errorf("X-Scan-Complete trailer = %q, want true", got)
	}
	if got := streamed.Trailer.Get("X-Scan-Error"); got != "" {
		t.Errorf("healthy stream carried X-Scan-Error = %q", got)
	}
	if !bytes.Equal(streamBody, bufBody) {
		t.Errorf("streamed bytes differ from buffered export (%d vs %d bytes)",
			len(streamBody), len(bufBody))
	}
	if streamed.Header.Get("ETag") != "" {
		t.Error("streams must not carry ETags (they are never cached)")
	}

	// Parameter discipline: a stream is uncapped CSV by definition.
	for _, bad := range []string{"&stream=true", "&format=csv&stream=true&limit=5", "&stream=yes&format=csv"} {
		resp, _ := doReq(t, http.MethodGet, ts.URL+"/v1/scan?"+span+bad, nil)
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("scan%s: status %d, want 400", bad, resp.StatusCode)
		}
	}
}

// TestStreamingCSVDamagedDay: a day failing mid-decode after the
// stream committed to 200 must terminate with the error trailer — a
// client checking trailers can never mistake the torn export for a
// complete one.
func TestStreamingCSVDamagedDay(t *testing.T) {
	lake := newMemLake()
	d0 := fakeDay
	d1 := fakeDay.AddDate(0, 0, 1)
	lake.addDay(d0, 5, 100, 10)
	lake.addDay(d1, 7, 100, 10)
	lake.failAfter[d1.Unix()] = 3
	_, ts := newEquivServer(t, core.Config{Storage: lake, Workers: 1}, Options{})

	resp, body := doReq(t, http.MethodGet,
		ts.URL+"/v1/scan?from=2016-04-01&to=2016-04-02&format=csv&stream=true", nil)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d (the stream commits to 200 before the damage)", resp.StatusCode)
	}
	if got := resp.Trailer.Get("X-Scan-Error"); !strings.Contains(got, "corrupt") {
		t.Errorf("X-Scan-Error trailer = %q, want the corruption error", got)
	}
	if got := resp.Trailer.Get("X-Scan-Complete"); got != "" {
		t.Errorf("damaged stream carried X-Scan-Complete = %q", got)
	}
	// The healthy day (5 records) and the damaged day's clean prefix
	// (3 records) were flushed before the failure: header + 8 rows.
	if lines := strings.Count(strings.TrimSuffix(string(body), "\n"), "\n"); lines != 8 {
		t.Errorf("torn stream delivered %d data rows, want 8 (5 healthy + 3 prefix)", lines)
	}
}

// --- admin endpoints --------------------------------------------------------

// TestAdminAuthGates: no token configured → 403 for everyone; token
// configured → 401 without/with the wrong one, 409 while another
// admin operation holds the lock, 200 with the right one.
func TestAdminAuthGates(t *testing.T) {
	store, _ := buildLake(t, 2, flowrec.FormatV1)
	cfg := lakeConfig(store)
	cfg.RollupDir = filepath.Join(t.TempDir(), "rollup")

	_, open := newEquivServer(t, cfg, Options{})
	resp, body := doReq(t, http.MethodPost, open.URL+"/v1/admin/rollups/prewarm", nil)
	if resp.StatusCode != http.StatusForbidden {
		t.Errorf("tokenless server: status %d, want 403: %s", resp.StatusCode, body)
	}

	srv, ts := newEquivServer(t, cfg, Options{AdminToken: "sesame"})
	for _, c := range []struct {
		hdr  map[string]string
		want int
	}{
		{nil, http.StatusUnauthorized},
		{map[string]string{"Authorization": "Bearer wrong"}, http.StatusUnauthorized},
		{map[string]string{"Authorization": "Bearer sesame"}, http.StatusOK},
	} {
		resp, body := doReq(t, http.MethodPost, ts.URL+"/v1/admin/rollups/prewarm", c.hdr)
		if resp.StatusCode != c.want {
			t.Errorf("prewarm with %v: status %d, want %d: %s", c.hdr, resp.StatusCode, c.want, body)
		}
	}

	srv.adminMu.Lock()
	resp, body = doReq(t, http.MethodPost, ts.URL+"/v1/admin/rollups/prewarm",
		map[string]string{"Authorization": "Bearer sesame"})
	srv.adminMu.Unlock()
	if resp.StatusCode != http.StatusConflict {
		t.Errorf("concurrent admin op: status %d, want 409: %s", resp.StatusCode, body)
	}

	// Prewarm without a rollup tier is a client error, not a crash.
	bare, bareTS := newEquivServer(t, lakeConfig(store), Options{AdminToken: "sesame"})
	_ = bare
	resp, body = doReq(t, http.MethodPost, bareTS.URL+"/v1/admin/rollups/prewarm",
		map[string]string{"Authorization": "Bearer sesame"})
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("prewarm without rollup tier: status %d, want 400: %s", resp.StatusCode, body)
	}
}

// TestAdminCompactRefreshesCache: compaction rewrites every day file;
// the next answer must be recomputed (new generation, new ETag) yet
// byte-identical — compaction changes encodings, never records.
func TestAdminCompactRefreshesCache(t *testing.T) {
	store, days := buildLake(t, 2, flowrec.FormatV1)
	srv, ts := newEquivServer(t, lakeConfig(store), Options{AdminToken: "sesame"})
	auth := map[string]string{"Authorization": "Bearer sesame"}
	url := fmt.Sprintf("%s/v1/scan?from=%s&to=%s", ts.URL,
		days[0].Format("2006-01-02"), days[1].Format("2006-01-02"))

	first, body1 := doReq(t, http.MethodGet, url, nil)
	if first.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", first.StatusCode, body1)
	}
	etag1 := first.Header.Get("ETag")
	if repeat, _ := doReq(t, http.MethodGet, url, nil); repeat.Header.Get("X-Cache") != "hit" {
		t.Fatalf("scan repeat not cached (X-Cache %q)", repeat.Header.Get("X-Cache"))
	}
	gen0 := srv.Pipeline().Generation()

	resp, body := doReq(t, http.MethodPost, ts.URL+"/v1/admin/compact?format=v3", auth)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("compact: status %d: %s", resp.StatusCode, body)
	}
	var cr CompactResponse
	if err := json.Unmarshal(body, &cr); err != nil {
		t.Fatal(err)
	}
	if cr.DaysCompacted != 2 || cr.Format != "v3" {
		t.Errorf("compact response %+v, want 2 days to v3", cr)
	}
	if cr.Generation <= gen0 {
		t.Errorf("compact left generation at %d (was %d)", cr.Generation, gen0)
	}

	after, body2 := doReq(t, http.MethodGet, url, nil)
	if after.StatusCode != http.StatusOK {
		t.Fatalf("post-compact scan: status %d", after.StatusCode)
	}
	if after.Header.Get("X-Cache") != "miss" {
		t.Errorf("post-compact X-Cache = %q, want miss (old generation entries are stale)",
			after.Header.Get("X-Cache"))
	}
	if !bytes.Equal(body2, body1) {
		t.Error("compaction changed scan results (must only change the encoding)")
	}
	if after.Header.Get("ETag") == etag1 {
		t.Error("ETag survived compaction (generation half must differ)")
	}

	// Strict parameters, and no lake means no compaction.
	for _, bad := range []string{"?format=v9", "?bogus=1"} {
		resp, _ := doReq(t, http.MethodPost, ts.URL+"/v1/admin/compact"+bad, auth)
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("compact%s: status %d, want 400", bad, resp.StatusCode)
		}
	}
	_, simTS := newEquivServer(t, servequivConfig(), Options{AdminToken: "sesame"})
	resp, _ = doReq(t, http.MethodPost, simTS.URL+"/v1/admin/compact", auth)
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("compact without a lake: status %d, want 400", resp.StatusCode)
	}
}
