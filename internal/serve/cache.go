package serve

import (
	"container/list"
	"crypto/sha256"
	"fmt"
	"strings"
	"sync"

	"repro/internal/metrics"
)

// The response cache: a bounded LRU of fully-materialised results
// keyed by (endpoint path, canonical query, lake generation). The
// generation is the whole invalidation story — every lake mutation
// bumps it, a bumped generation changes every key, and the orphaned
// old-generation entries age out of the LRU tail. No entry is ever
// edited or explicitly purged, so a hit can be served with nothing
// but a map read under a short lock.
var (
	mCacheHits      = metrics.GetCounter("serve.cache_hits")
	mCacheMisses    = metrics.GetCounter("serve.cache_misses")
	mCacheEvictions = metrics.GetCounter("serve.cache_evictions")
	mNotModified    = metrics.GetCounter("serve.not_modified")
)

// DefaultCacheBytes bounds the response cache when Options.CacheBytes
// is zero. 64 MiB holds thousands of figure bodies (a five-year figure
// JSON is tens of KiB) while staying irrelevant next to the pipeline's
// own aggregate cache.
const DefaultCacheBytes = 64 << 20

// cacheKey identifies one cacheable response. query is the
// url.Values.Encode() canonical form — sorted by key — so equal
// queries written in different parameter orders share an entry.
type cacheKey struct {
	path  string
	query string
	gen   uint64
}

// cacheEntry is one materialised response plus its strong ETag.
type cacheEntry struct {
	key  cacheKey
	res  *result
	etag string
	size int64
}

// respCache is the LRU. A nil *respCache is a disabled cache: every
// method no-ops, so call sites need no gating.
type respCache struct {
	mu       sync.Mutex
	max      int64 // byte budget over body sizes
	maxEntry int64 // largest single body worth caching
	size     int64
	ll       *list.List // front = most recent; values are *cacheEntry
	items    map[cacheKey]*list.Element
}

// newRespCache sizes a cache; maxBytes <= 0 disables it (returns nil).
func newRespCache(maxBytes int64) *respCache {
	if maxBytes <= 0 {
		return nil
	}
	return &respCache{
		max:      maxBytes,
		maxEntry: maxBytes / 8,
		ll:       list.New(),
		items:    make(map[cacheKey]*list.Element),
	}
}

// get returns the cached entry for key, promoting it to
// most-recently-used.
func (c *respCache) get(key cacheKey) *cacheEntry {
	if c == nil {
		return nil
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	el := c.items[key]
	if el == nil {
		mCacheMisses.Inc()
		return nil
	}
	c.ll.MoveToFront(el)
	mCacheHits.Inc()
	return el.Value.(*cacheEntry)
}

// put inserts a materialised response, evicting from the LRU tail
// while over budget. Oversized bodies are not cached at all — one
// uncapped scan must not wipe the figure working set.
func (c *respCache) put(key cacheKey, res *result, etag string) {
	if c == nil {
		return
	}
	size := int64(len(res.body))
	if size > c.maxEntry {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if el := c.items[key]; el != nil {
		// A concurrent miss computed the same answer; keep the
		// incumbent (byte-identical by determinism) and just promote.
		c.ll.MoveToFront(el)
		return
	}
	el := c.ll.PushFront(&cacheEntry{key: key, res: res, etag: etag, size: size})
	c.items[key] = el
	c.size += size
	for c.size > c.max {
		back := c.ll.Back()
		if back == nil {
			break
		}
		ent := back.Value.(*cacheEntry)
		c.ll.Remove(back)
		delete(c.items, ent.key)
		c.size -= ent.size
		mCacheEvictions.Inc()
	}
}

// etagFor derives the strong ETag of a response body under a lake
// generation: the generation makes staleness visible in the tag
// itself, the hash makes it strong (byte-identical bodies and nothing
// else compare equal).
func etagFor(gen uint64, body []byte) string {
	sum := sha256.Sum256(body)
	return fmt.Sprintf("\"%d-%x\"", gen, sum[:12])
}

// etagMatch reports whether an If-None-Match header value matches
// etag. Weak comparison is fine for If-None-Match per RFC 9110 — our
// tags are strong anyway — so a W/ prefix is stripped before
// comparing.
func etagMatch(header, etag string) bool {
	if header == "" {
		return false
	}
	for _, cand := range strings.Split(header, ",") {
		cand = strings.TrimSpace(cand)
		if cand == "*" {
			return true
		}
		cand = strings.TrimPrefix(cand, "W/")
		if cand == etag {
			return true
		}
	}
	return false
}
