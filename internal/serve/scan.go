package serve

import (
	"bytes"
	"context"
	"errors"
	"net/http"
	"sort"
	"strconv"
	"time"

	"repro/internal/analytics"
	"repro/internal/classify"
	"repro/internal/core"
	"repro/internal/flowrec"
	"repro/internal/metrics"
)

// /v1/scan: the edgequery workload as an endpoint. tech= and srvport=
// compile into a flowrec.Pred the store evaluates during the scan (a
// columnar lake skips whole blocks that cannot match, without even
// inflating them); service= and proto= filter decoded records. The
// JSON answer is the per-service volume summary; format=csv returns
// the matching records themselves, capped by limit= so one curious
// client cannot stream the whole lake through a single response.

var mScanRecords = metrics.GetCounter("serve.scan_records")

// ScanSvcRow is one service's tally.
type ScanSvcRow struct {
	Service   string `json:"service"`
	Flows     uint64 `json:"flows"`
	DownBytes uint64 `json:"down_bytes"`
	UpBytes   uint64 `json:"up_bytes"`
}

// ScanResponse is the JSON summary of a scan.
type ScanResponse struct {
	From        string `json:"from"`
	To          string `json:"to"`
	Days        int    `json:"days"`
	ScannedDays int    `json:"scanned_days"`
	// FailedDays lists days that errored after decode began (damaged
	// files); days simply absent from the lake are outages and count
	// in neither field.
	FailedDays []string     `json:"failed_days,omitempty"`
	Scanned    uint64       `json:"scanned_records"`
	Matched    uint64       `json:"matched_records"`
	Services   []ScanSvcRow `json:"services"`
}

// scanCols is the summary-path projection: classification inputs,
// filter fields and the tallied volumes. Predicate columns are added
// by the reader itself.
var scanCols = flowrec.Cols(
	flowrec.ColClient, flowrec.ColWeb, flowrec.ColServerName,
	flowrec.ColSubID, flowrec.ColBytesDown, flowrec.ColBytesUp,
)

// errStopScan aborts a CSV scan that reached its record limit.
var errStopScan = errors.New("serve: scan record limit reached")

// queryScan answers GET /v1/scan.
func (s *Server) queryScan(ctx context.Context, r *http.Request) (*result, error) {
	q, err := ParseQuery(r.URL.Query())
	if err != nil {
		return nil, err
	}
	if q.From.IsZero() {
		return nil, badf("scan requires from= (and optionally to=)")
	}
	if q.Stride != 0 || q.Points != 0 || len(q.Quantiles) > 0 {
		return nil, badf("stride/points/quantiles do not apply to /v1/scan")
	}
	days := core.RangeDays(q.From, q.To, 1)
	if len(days) > s.opt.MaxScanDays {
		return nil, badf("scan of %d days exceeds the %d-day limit", len(days), s.opt.MaxScanDays)
	}
	st := s.p.Storage()
	if st == nil {
		return nil, badf("this server has no lake to scan (figures are simulation-fed)")
	}

	pred, err := q.pred()
	if err != nil {
		return nil, err
	}
	match := func(svc classify.Service, rec *flowrec.Record) bool {
		if len(q.Services) > 0 {
			ok := false
			for _, want := range q.Services {
				if svc == want {
					ok = true
					break
				}
			}
			if !ok {
				return false
			}
		}
		return q.Proto == "" || rec.Web.String() == q.Proto
	}

	if q.Stream {
		return s.scanStream(st, days, pred, match)
	}
	if q.Format == "csv" {
		return s.scanCSV(ctx, st, days, pred, match, q)
	}
	return s.scanSummary(ctx, st, days, pred, match, q)
}

// pred compiles the pushdown predicate, nil when no pushdown filter
// is set.
func (q Query) pred() (*flowrec.Pred, error) {
	var p flowrec.Pred
	switch q.Tech {
	case "adsl":
		p.HasTech, p.Tech = true, flowrec.TechADSL
	case "ftth":
		p.HasTech, p.Tech = true, flowrec.TechFTTH
	}
	if q.HasSrvPort {
		p.HasSrvPort, p.SrvPortLo, p.SrvPortHi = true, q.SrvPortLo, q.SrvPortHi
	}
	if !p.HasTech && !p.HasSrvPort {
		return nil, nil
	}
	return &p, nil
}

// scanSummary runs the per-service tally over the day range. Days
// execute serially on the request goroutine — across-query
// parallelism comes from the admission pool, and one bounded query
// must not fan out into its own pool on a shared server. The context
// is checked between records, so deadlines and client disconnects
// abort mid-file with no partial response written.
func (s *Server) scanSummary(ctx context.Context, st core.Storage, days []time.Time,
	pred *flowrec.Pred, match func(classify.Service, *flowrec.Record) bool, q Query) (*result, error) {

	resp := ScanResponse{
		From: days[0].Format("2006-01-02"),
		To:   days[len(days)-1].Format("2006-01-02"),
		Days: len(days),
	}
	bySvc := make(map[classify.Service]*ScanSvcRow)
	for _, day := range days {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		// Each day tallies into a staging area merged only on a clean
		// read: a day that fails mid-decode has delivered an arbitrary
		// prefix of its records, and folding that prefix into totals
		// reported as clean would silently mix damaged data in. A
		// failed day contributes its name to FailedDays and nothing
		// else.
		var dayScanned, dayMatched uint64
		daySvc := make(map[classify.Service]ScanSvcRow)
		err := st.ReadDayCols(day, flowrec.ColScan{Cols: scanCols, Pred: pred}, func(rec *flowrec.Record) error {
			dayScanned++
			mScanRecords.Inc()
			if (resp.Scanned+dayScanned)%1024 == 0 {
				if cerr := ctx.Err(); cerr != nil {
					return cerr
				}
			}
			svc := analytics.ServiceOf(s.p.Cls, rec)
			if !match(svc, rec) {
				return nil
			}
			dayMatched++
			row := daySvc[svc]
			row.Flows++
			row.DownBytes += rec.BytesDown
			row.UpBytes += rec.BytesUp
			daySvc[svc] = row
			return nil
		})
		switch {
		case err == nil:
			resp.ScannedDays++
			resp.Scanned += dayScanned
			resp.Matched += dayMatched
			for svc, d := range daySvc {
				row := bySvc[svc]
				if row == nil {
					name := string(svc)
					if name == "" {
						name = "(unclassified)"
					}
					row = &ScanSvcRow{Service: name}
					bySvc[svc] = row
				}
				row.Flows += d.Flows
				row.DownBytes += d.DownBytes
				row.UpBytes += d.UpBytes
			}
		case errors.Is(err, flowrec.ErrNoDay):
			// A lake gap is a probe outage, not a failure.
		case errors.Is(err, context.DeadlineExceeded), errors.Is(err, context.Canceled):
			return nil, err
		default:
			resp.FailedDays = append(resp.FailedDays, day.Format("2006-01-02"))
		}
	}
	for _, row := range bySvc {
		resp.Services = append(resp.Services, *row)
	}
	sort.Slice(resp.Services, func(i, j int) bool {
		if resp.Services[i].DownBytes != resp.Services[j].DownBytes {
			return resp.Services[i].DownBytes > resp.Services[j].DownBytes
		}
		return resp.Services[i].Service < resp.Services[j].Service
	})
	return jsonResult(resp)
}

// scanCSV streams matching records into a buffered CSV body, capped
// at q.Limit records. Record order is lake order (day by day, file
// order within a day), so equal queries answer byte-identically. A
// truncated response carries X-Scan-Truncated: true rather than an
// in-band marker that would corrupt CSV parsers.
func (s *Server) scanCSV(ctx context.Context, st core.Storage, days []time.Time,
	pred *flowrec.Pred, match func(classify.Service, *flowrec.Record) bool, q Query) (*result, error) {

	limit := q.Limit
	if limit <= 0 {
		limit = DefaultCSVRecords
	}
	var buf bytes.Buffer
	cw, err := flowrec.NewCSVWriter(&buf)
	if err != nil {
		return nil, err
	}
	written := 0
	truncated := false
	var scanned uint64
	for _, day := range days {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		if truncated {
			break
		}
		// CSV needs every field, so the scan is full-width; the
		// predicate still prunes blocks on a columnar lake.
		err := st.ReadDayCols(day, flowrec.ColScan{Pred: pred}, func(rec *flowrec.Record) error {
			scanned++
			mScanRecords.Inc()
			if scanned%1024 == 0 {
				if cerr := ctx.Err(); cerr != nil {
					return cerr
				}
			}
			if !match(analytics.ServiceOf(s.p.Cls, rec), rec) {
				return nil
			}
			if written >= limit {
				truncated = true
				return errStopScan
			}
			written++
			return cw.Write(rec)
		})
		switch {
		case err == nil, errors.Is(err, errStopScan), errors.Is(err, flowrec.ErrNoDay):
		case errors.Is(err, context.DeadlineExceeded), errors.Is(err, context.Canceled):
			return nil, err
		default:
			// A damaged day fails the CSV scan outright: unlike the
			// summary, silently dropping rows from a record export
			// would present an incomplete extract as complete.
			return nil, err
		}
	}
	if err := cw.Flush(); err != nil {
		return nil, err
	}
	res := &result{contentType: "text/csv", body: buf.Bytes()}
	if truncated {
		res.header = http.Header{"X-Scan-Truncated": []string{"true"}}
		res.header.Set("X-Scan-Limit", strconv.Itoa(limit))
	}
	return res, nil
}

// scanStream is the uncapped CSV export (stream=true): records go to
// the wire as they decode, flushed at every day boundary so a
// dashboard piping the stream sees steady progress instead of one
// burst at the end. The connection commits to 200 before the first
// record, so correctness travels in trailers: X-Scan-Complete: true
// only after every requested day streamed cleanly, X-Scan-Error with
// the failure otherwise — a mid-stream damaged day terminates the
// export rather than presenting a truncated extract as complete.
// Streams are never cached: they are exports, not dashboard queries,
// and their bodies are exactly what the cache's entry-size bound
// exists to keep out.
func (s *Server) scanStream(st core.Storage, days []time.Time,
	pred *flowrec.Pred, match func(classify.Service, *flowrec.Record) bool) (*result, error) {

	stream := func(ctx context.Context, w http.ResponseWriter) error {
		cw, err := flowrec.NewCSVWriter(w)
		if err != nil {
			return err
		}
		flusher, _ := w.(http.Flusher)
		var scanned uint64
		for _, day := range days {
			if err := ctx.Err(); err != nil {
				return err
			}
			err := st.ReadDayCols(day, flowrec.ColScan{Pred: pred}, func(rec *flowrec.Record) error {
				scanned++
				mScanRecords.Inc()
				if scanned%1024 == 0 {
					if cerr := ctx.Err(); cerr != nil {
						return cerr
					}
				}
				if !match(analytics.ServiceOf(s.p.Cls, rec), rec) {
					return nil
				}
				return cw.Write(rec)
			})
			switch {
			case err == nil, errors.Is(err, flowrec.ErrNoDay):
			default:
				// Push what decoded cleanly so the client sees where the
				// stream died, then fail — the error lands in the trailer.
				_ = cw.Flush()
				return err
			}
			if err := cw.Flush(); err != nil {
				return err
			}
			if flusher != nil {
				flusher.Flush()
			}
		}
		return nil
	}
	return &result{contentType: "text/csv", stream: stream}, nil
}
