package serve

import (
	"context"
	"net/http"
	"strconv"
	"time"

	"repro/internal/analytics"
	"repro/internal/classify"
	"repro/internal/core"
	"repro/internal/flowrec"
)

// The figure endpoints. Each one answers with the same numbers the
// batch edgereport figure renders — the handlers call the exact tier
// functions the experiments call (MonthlySeriesTier, ActiveSeriesTier,
// ProtoSharesTier, AggregateCols + the analytics folds), so tier
// selection, the shared agg cache and hot-day checkpoint serving all
// apply unchanged. The serve-equivalence test tier holds the two
// derivations byte-identical on a golden lake.

// FigureResponse is the JSON envelope of /v1/figures/{name}.
type FigureResponse struct {
	Figure string `json:"figure"`
	Title  string `json:"title"`
	From   string `json:"from"`
	To     string `json:"to"`
	Stride int    `json:"stride"`
	Days   int    `json:"days"`
	// Tier names the read path: "rollup+day" when the rollup tier can
	// answer coarse windows, "day" for the flat per-day fold. Hot
	// (unsealed) days additionally serve from ingest checkpoints on
	// either path.
	Tier string `json:"tier"`
	Rows any    `json:"rows"`
}

// QPoint is one quantile of a served distribution.
type QPoint struct {
	Q float64 `json:"q"`
	V float64 `json:"v"`
}

// csvTable is a figure's CSV rendering.
type csvTable struct {
	headers []string
	rows    [][]string
}

// figureSpec describes one served figure: its parameter surface and
// the query runner producing JSON rows + the CSV table.
type figureSpec struct {
	id, title string
	// tiered figures answer from rollups when the tier is enabled.
	tiered bool
	// fixedRange figures (fig4's Apr-2017/Apr-2014 ratio) reject
	// from/to — a half-overridden comparison window would silently
	// change the figure's meaning.
	fixedRange bool
	// parameter applicability; inapplicable parameters are 400s, not
	// silently ignored.
	allowQuantiles, allowTech, allowService, allowPoints bool

	run func(ctx context.Context, p *core.Pipeline, q Query, days []time.Time) (any, csvTable, error)
}

// figureSpecs is the served-figure registry, keyed by experiment ID.
var figureSpecs = map[string]*figureSpec{
	"active": {
		id: "active", title: "share of active subscribers per day",
		tiered: true, run: runActiveFigure,
	},
	"fig2": {
		id: "fig2", title: "per-active-subscriber daily traffic distribution",
		allowQuantiles: true, allowTech: true, run: runFig2Figure,
	},
	"fig3": {
		id: "fig3", title: "average per-subscription daily traffic by month",
		tiered: true, run: runFig3Figure,
	},
	"fig4": {
		id: "fig4", title: "download growth ratio Apr 2017 / Apr 2014 by time of day",
		fixedRange: true, allowPoints: true, run: runFig4Figure,
	},
	"fig5": {
		id: "fig5", title: "service popularity and byte share per day",
		allowService: true, run: runFig5Figure,
	},
	"fig8": {
		id: "fig8", title: "web protocol share of web bytes, monthly",
		tiered: true, run: runFig8Figure,
	},
	"fig10": {
		id: "fig10", title: "per-flow minimum RTT quantiles by service",
		allowQuantiles: true, allowService: true, run: runFig10Figure,
	},
}

// queryFigure answers GET /v1/figures/{name}.
func (s *Server) queryFigure(ctx context.Context, r *http.Request) (*result, error) {
	name := r.PathValue("name")
	spec := figureSpecs[name]
	if spec == nil {
		if _, known := core.Lookup(name); known {
			return nil, &errNotFound{msg: "experiment " + name + " has no figure endpoint (see /v1/experiments)"}
		}
		return nil, &errNotFound{msg: "unknown figure " + name}
	}
	q, err := ParseQuery(r.URL.Query())
	if err != nil {
		return nil, err
	}
	if err := spec.checkParams(q); err != nil {
		return nil, err
	}

	days, stride := spec.window(s.p, q)
	rows, table, err := spec.run(ctx, s.p, q, days)
	if err != nil {
		return nil, err
	}
	if q.Format == "csv" {
		return csvResult(table.headers, table.rows)
	}
	tier := "day"
	if spec.tiered && s.p.RollupsEnabled() {
		tier = "rollup+day"
	}
	resp := FigureResponse{
		Figure: spec.id,
		Title:  spec.title,
		Stride: stride,
		Days:   len(days),
		Tier:   tier,
		Rows:   rows,
	}
	if len(days) > 0 {
		resp.From = days[0].Format("2006-01-02")
		resp.To = days[len(days)-1].Format("2006-01-02")
	}
	return jsonResult(resp)
}

// checkParams rejects parameters the figure does not consume.
func (s *figureSpec) checkParams(q Query) error {
	switch {
	case s.fixedRange && !q.From.IsZero():
		return badf("%s has a fixed comparison window; from/to do not apply", s.id)
	case len(q.Quantiles) > 0 && !s.allowQuantiles:
		return badf("%s does not take quantiles=", s.id)
	case q.Tech != "" && !s.allowTech:
		return badf("%s does not take tech=", s.id)
	case len(q.Services) > 0 && !s.allowService:
		return badf("%s does not take service=", s.id)
	case q.Points != 0 && !s.allowPoints:
		return badf("%s does not take points=", s.id)
	case q.Proto != "" || q.HasSrvPort || q.Limit != 0 || q.Stream:
		return badf("proto/srvport/limit/stream apply to /v1/scan only")
	}
	return nil
}

// window resolves the figure's day grid: an explicit from/to range at
// the requested stride (default 1), or the experiment's default days
// under the pipeline stride.
func (s *figureSpec) window(p *core.Pipeline, q Query) ([]time.Time, int) {
	if !q.From.IsZero() {
		stride := q.Stride
		if stride <= 0 {
			stride = 1
		}
		return core.RangeDays(q.From, q.To, stride), stride
	}
	e, _ := core.Lookup(s.id)
	return e.Days(p.Stride()), p.Stride()
}

// --- active ------------------------------------------------------------------

// ActiveRow mirrors the batch active-share table.
type ActiveRow struct {
	Day       string  `json:"day"`
	Active    int     `json:"active"`
	Observed  int     `json:"observed"`
	ActivePct float64 `json:"active_pct"`
}

func runActiveFigure(ctx context.Context, p *core.Pipeline, q Query, days []time.Time) (any, csvTable, error) {
	pts, err := p.ActiveSeriesTier(ctx, days, analytics.ColsSubscribers)
	if err != nil {
		return nil, csvTable{}, err
	}
	rows := make([]ActiveRow, 0, len(pts))
	table := csvTable{headers: []string{"day", "active", "observed", "active_pct"}}
	for _, pt := range pts {
		rows = append(rows, ActiveRow{
			Day: pt.Day.Format("2006-01-02"), Active: pt.Active,
			Observed: pt.Observed, ActivePct: pt.ActivePct,
		})
		table.rows = append(table.rows, []string{
			pt.Day.Format("2006-01-02"), strconv.Itoa(pt.Active),
			strconv.Itoa(pt.Observed), fmtFloat(pt.ActivePct),
		})
	}
	return rows, table, nil
}

// --- fig2 --------------------------------------------------------------------

// DistRow is one per-tech, per-direction daily-volume distribution.
type DistRow struct {
	Tech      string   `json:"tech"`
	Dir       string   `json:"dir"`
	N         int      `json:"n"`
	MeanBytes float64  `json:"mean_bytes"`
	Quantiles []QPoint `json:"quantiles"`
}

// defaultVolumeQuantiles parameterise fig2 when quantiles= is absent.
var defaultVolumeQuantiles = []float64{0.5, 0.9, 0.99}

func runFig2Figure(ctx context.Context, p *core.Pipeline, q Query, days []time.Time) (any, csvTable, error) {
	aggs, err := p.AggregateCols(ctx, days, analytics.ColsSubscribers)
	if err != nil {
		return nil, csvTable{}, err
	}
	quantiles := q.Quantiles
	if len(quantiles) == 0 {
		quantiles = defaultVolumeQuantiles
	}
	techs := []flowrec.AccessTech{flowrec.TechADSL, flowrec.TechFTTH}
	if q.Tech == "adsl" {
		techs = techs[:1]
	} else if q.Tech == "ftth" {
		techs = techs[1:]
	}
	var rows []DistRow
	table := csvTable{headers: []string{"tech", "dir", "n", "mean_bytes", "q", "bytes"}}
	for _, tech := range techs {
		for _, dir := range []analytics.Dir{analytics.Down, analytics.Up} {
			dist := analytics.DailyVolumeDist(aggs, tech, dir)
			row := DistRow{Tech: techName(tech), Dir: dir.String(), N: dist.N(), MeanBytes: dist.Mean()}
			for _, qq := range quantiles {
				v := dist.Quantile(qq)
				row.Quantiles = append(row.Quantiles, QPoint{Q: qq, V: v})
				table.rows = append(table.rows, []string{
					row.Tech, row.Dir, strconv.Itoa(row.N),
					fmtFloat(row.MeanBytes), fmtFloat(qq), fmtFloat(v),
				})
			}
			rows = append(rows, row)
		}
	}
	return rows, table, nil
}

func techName(t flowrec.AccessTech) string {
	if t == flowrec.TechFTTH {
		return "FTTH"
	}
	return "ADSL"
}

// --- fig3 --------------------------------------------------------------------

// MonthlyRow mirrors the batch fig3 table in raw bytes.
type MonthlyRow struct {
	Month         string  `json:"month"`
	ADSLDownBytes float64 `json:"adsl_down_bytes"`
	FTTHDownBytes float64 `json:"ftth_down_bytes"`
	ADSLUpBytes   float64 `json:"adsl_up_bytes"`
	FTTHUpBytes   float64 `json:"ftth_up_bytes"`
}

func runFig3Figure(ctx context.Context, p *core.Pipeline, q Query, days []time.Time) (any, csvTable, error) {
	ms, err := p.MonthlySeriesTier(ctx, days, analytics.ColsSubscribers)
	if err != nil {
		return nil, csvTable{}, err
	}
	rows := make([]MonthlyRow, 0, len(ms))
	table := csvTable{headers: []string{"month", "adsl_down_bytes", "ftth_down_bytes", "adsl_up_bytes", "ftth_up_bytes"}}
	for _, m := range ms {
		r := MonthlyRow{
			Month:         m.Month.Format("2006-01"),
			ADSLDownBytes: m.Mean[0][analytics.Down],
			FTTHDownBytes: m.Mean[1][analytics.Down],
			ADSLUpBytes:   m.Mean[0][analytics.Up],
			FTTHUpBytes:   m.Mean[1][analytics.Up],
		}
		rows = append(rows, r)
		table.rows = append(table.rows, []string{
			r.Month, fmtFloat(r.ADSLDownBytes), fmtFloat(r.FTTHDownBytes),
			fmtFloat(r.ADSLUpBytes), fmtFloat(r.FTTHUpBytes),
		})
	}
	return rows, table, nil
}

// --- fig4 --------------------------------------------------------------------

// RatioRow is one smoothed point of the Apr-2017/Apr-2014 hourly
// download ratio.
type RatioRow struct {
	Hour      float64 `json:"hour"`
	ADSLRatio float64 `json:"adsl_ratio"`
	FTTHRatio float64 `json:"ftth_ratio"`
}

func runFig4Figure(ctx context.Context, p *core.Pipeline, q Query, days []time.Time) (any, csvTable, error) {
	points := q.Points
	if points <= 0 {
		points = 25
	}
	adsl, err := core.Fig4Points(ctx, p, flowrec.TechADSL, points)
	if err != nil {
		return nil, csvTable{}, err
	}
	ftth, err := core.Fig4Points(ctx, p, flowrec.TechFTTH, points)
	if err != nil {
		return nil, csvTable{}, err
	}
	table := csvTable{headers: []string{"hour", "adsl_ratio", "ftth_ratio"}}
	var rows []RatioRow
	// Mirrors the batch guard: a fully degraded run with both windows
	// empty yields no curve, not an index panic.
	if len(adsl) >= points && len(ftth) >= points {
		for i := 0; i < points; i++ {
			r := RatioRow{Hour: adsl[i].X, ADSLRatio: adsl[i].Y, FTTHRatio: ftth[i].Y}
			rows = append(rows, r)
			table.rows = append(table.rows, []string{
				fmtFloat(r.Hour), fmtFloat(r.ADSLRatio), fmtFloat(r.FTTHRatio),
			})
		}
	}
	return rows, table, nil
}

// --- fig5 --------------------------------------------------------------------

// SvcPopRow is one day × service popularity sample.
type SvcPopRow struct {
	Day        string  `json:"day"`
	Service    string  `json:"service"`
	ADSLPopPct float64 `json:"adsl_pop_pct"`
	FTTHPopPct float64 `json:"ftth_pop_pct"`
}

// ShareRow is one day × service downloaded-byte share.
type ShareRow struct {
	Day      string  `json:"day"`
	Service  string  `json:"service"`
	SharePct float64 `json:"share_pct"`
}

// Fig5Rows carries the figure's two tables.
type Fig5Rows struct {
	Popularity []SvcPopRow `json:"popularity"`
	ByteShare  []ShareRow  `json:"byte_share"`
}

func runFig5Figure(ctx context.Context, p *core.Pipeline, q Query, days []time.Time) (any, csvTable, error) {
	aggs, err := p.AggregateCols(ctx, days, analytics.ColsSubscribers)
	if err != nil {
		return nil, csvTable{}, err
	}
	svcs := q.Services
	if len(svcs) == 0 {
		svcs = classify.FigureServices
	}
	var rows Fig5Rows
	table := csvTable{headers: []string{"table", "day", "service", "v1", "v2"}}
	for _, svc := range svcs {
		for _, pt := range analytics.ServiceSeries(aggs, svc) {
			rows.Popularity = append(rows.Popularity, SvcPopRow{
				Day: pt.Day.Format("2006-01-02"), Service: string(svc),
				ADSLPopPct: pt.PopPct[0], FTTHPopPct: pt.PopPct[1],
			})
			table.rows = append(table.rows, []string{
				"popularity", pt.Day.Format("2006-01-02"), string(svc),
				fmtFloat(pt.PopPct[0]), fmtFloat(pt.PopPct[1]),
			})
		}
	}
	for _, svc := range svcs {
		for _, pt := range analytics.ServiceByteShare(aggs, svc) {
			rows.ByteShare = append(rows.ByteShare, ShareRow{
				Day: pt.Day.Format("2006-01-02"), Service: string(svc), SharePct: pt.SharePct,
			})
			table.rows = append(table.rows, []string{
				"byte_share", pt.Day.Format("2006-01-02"), string(svc),
				fmtFloat(pt.SharePct), "",
			})
		}
	}
	return rows, table, nil
}

// --- fig8 --------------------------------------------------------------------

// ProtoRow is one month's web-protocol byte shares.
type ProtoRow struct {
	Month    string             `json:"month"`
	SharePct map[string]float64 `json:"share_pct"`
}

func runFig8Figure(ctx context.Context, p *core.Pipeline, q Query, days []time.Time) (any, csvTable, error) {
	shares, err := p.ProtoSharesTier(ctx, days, analytics.ColsProtocols)
	if err != nil {
		return nil, csvTable{}, err
	}
	protos := analytics.WebProtos()
	rows := make([]ProtoRow, 0, len(shares))
	table := csvTable{headers: []string{"month", "protocol", "share_pct"}}
	for _, s := range shares {
		r := ProtoRow{Month: s.Month.Format("2006-01"), SharePct: make(map[string]float64, len(protos))}
		for _, proto := range protos {
			r.SharePct[proto.String()] = s.SharePct[proto]
			table.rows = append(table.rows, []string{
				r.Month, proto.String(), fmtFloat(s.SharePct[proto]),
			})
		}
		rows = append(rows, r)
	}
	return rows, table, nil
}

// --- fig10 -------------------------------------------------------------------

// RTTRow is one service's minimum-RTT distribution over the window.
type RTTRow struct {
	Service     string   `json:"service"`
	N           int      `json:"n"`
	QuantilesMs []QPoint `json:"quantiles_ms"`
}

// defaultRTTServices mirrors the batch figure's curve set.
var defaultRTTServices = []classify.Service{"Facebook", "Instagram", "YouTube", "Google", "WhatsApp"}

// defaultRTTQuantiles parameterise fig10 when quantiles= is absent.
var defaultRTTQuantiles = []float64{0.25, 0.5, 0.75, 0.9, 0.99}

func runFig10Figure(ctx context.Context, p *core.Pipeline, q Query, days []time.Time) (any, csvTable, error) {
	aggs, err := p.AggregateCols(ctx, days, analytics.ColsRTT)
	if err != nil {
		return nil, csvTable{}, err
	}
	svcs := q.Services
	if len(svcs) == 0 {
		svcs = defaultRTTServices
	}
	quantiles := q.Quantiles
	if len(quantiles) == 0 {
		quantiles = defaultRTTQuantiles
	}
	rows := make([]RTTRow, 0, len(svcs))
	table := csvTable{headers: []string{"service", "n", "q", "rtt_ms"}}
	for _, svc := range svcs {
		dist := analytics.RTTDist(aggs, svc)
		row := RTTRow{Service: string(svc), N: dist.N()}
		for _, qq := range quantiles {
			v := dist.Quantile(qq)
			row.QuantilesMs = append(row.QuantilesMs, QPoint{Q: qq, V: v})
			table.rows = append(table.rows, []string{
				row.Service, strconv.Itoa(row.N), fmtFloat(qq), fmtFloat(v),
			})
		}
		rows = append(rows, row)
	}
	return rows, table, nil
}

// fmtFloat renders a CSV float with full round-trip precision, so the
// CSV view carries exactly the JSON numbers.
func fmtFloat(v float64) string { return strconv.FormatFloat(v, 'g', -1, 64) }
