package serve

import (
	"context"
	"encoding/csv"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"runtime"
	"strings"
	"sync"
	"time"

	"repro/internal/core"
	"repro/internal/metrics"
)

// Request-path observability. serve.latency covers admitted queries
// end to end (queue wait included — that is what a client sees);
// serve.shed lives in admit.go next to the mechanism.
var (
	mRequests = metrics.GetCounter("serve.requests")
	mBadReqs  = metrics.GetCounter("serve.bad_requests")
	mErrors   = metrics.GetCounter("serve.errors")
	mTimeouts = metrics.GetCounter("serve.deadline_expired")
	mLatency  = metrics.GetTimer("serve.latency")
)

// Options bounds one Server. The zero value is usable: every field
// defaults sanely in New.
type Options struct {
	// Workers is the number of queries executing at once (default
	// GOMAXPROCS). Each admitted query runs on its request goroutine;
	// this bounds how many hold a slot simultaneously.
	Workers int
	// Queue is how many requests may wait for a slot before new
	// arrivals are shed with 429 (default 2×Workers).
	Queue int
	// QueryTimeout is the per-query deadline, admission wait included
	// (default 30s). Expiry mid-query cancels the pipeline work and
	// answers 504; expiry while still queued answers 504 without the
	// query ever starting.
	QueryTimeout time.Duration
	// MaxScanDays caps a /v1/scan day span (default serve.MaxScanDays).
	MaxScanDays int
	// CacheBytes bounds the response cache over body bytes: 0 means
	// DefaultCacheBytes, negative disables caching entirely.
	CacheBytes int64
	// AdminToken gates the mutating /v1/admin endpoints (bearer
	// token). Empty means the endpoints answer 403: mutation must be
	// opted into, never on by accident.
	AdminToken string
}

// Server wires one pipeline behind the HTTP surface. All queries
// share the pipeline's in-memory day cache, disk agg cache and rollup
// tier; the pipeline's own locking makes that safe, and the admission
// pool makes it bounded.
type Server struct {
	p     *core.Pipeline
	opt   Options
	adm   *admission
	mux   *http.ServeMux
	start time.Time
	cache *respCache

	// adminMu serializes the mutating admin endpoints: compaction and
	// prewarm both rewrite shared on-disk state, and "one at a time,
	// 409 the rest" is a simpler contract than interleaving them.
	adminMu sync.Mutex

	// dayCount caches the healthz lake-day count per generation, so a
	// 1 Hz load-balancer probe does one directory listing per lake
	// mutation instead of one per probe.
	dayMu    sync.Mutex
	dayGen   uint64
	dayN     int
	dayValid bool
}

// New builds a Server around an assembled pipeline.
func New(p *core.Pipeline, opt Options) *Server {
	if opt.Workers <= 0 {
		opt.Workers = runtime.GOMAXPROCS(0)
	}
	if opt.Queue <= 0 {
		opt.Queue = 2 * opt.Workers
	}
	if opt.QueryTimeout <= 0 {
		opt.QueryTimeout = 30 * time.Second
	}
	if opt.MaxScanDays <= 0 {
		opt.MaxScanDays = MaxScanDays
	}
	cacheBytes := opt.CacheBytes
	if cacheBytes == 0 {
		cacheBytes = DefaultCacheBytes
	}
	s := &Server{
		p:     p,
		opt:   opt,
		adm:   newAdmission(opt.Workers, opt.Queue),
		mux:   http.NewServeMux(),
		start: time.Now(),
		cache: newRespCache(cacheBytes),
	}
	// healthz and metrics bypass admission: they are how an operator
	// (or load balancer) sees a saturated server, so they must answer
	// while the pool is full. The admin endpoints bypass it too — an
	// operator compacts *because* the server is struggling — but
	// serialize among themselves behind the token gate.
	s.mux.HandleFunc("GET /v1/healthz", s.handleHealthz)
	s.mux.HandleFunc("GET /v1/metrics", s.handleMetrics)
	s.mux.HandleFunc("GET /v1/experiments", s.handleExperiments)
	s.mux.HandleFunc("GET /v1/figures/{name}", s.admitted(s.queryFigure))
	s.mux.HandleFunc("GET /v1/scan", s.admitted(s.queryScan))
	s.mux.HandleFunc("POST /v1/admin/compact", s.adminEndpoint(s.adminCompact))
	s.mux.HandleFunc("POST /v1/admin/rollups/prewarm", s.adminEndpoint(s.adminPrewarm))
	return s
}

// Handler returns the routed HTTP surface.
func (s *Server) Handler() http.Handler { return s.mux }

// Pipeline returns the shared pipeline (tests reach through it).
func (s *Server) Pipeline() *core.Pipeline { return s.p }

// result is one response. Query handlers normally buffer the whole
// body before a byte is written, so an error mid-query — deadline,
// storage fault, cancelled client — yields a clean error status,
// never a partial scan on the wire. A handler that cannot afford
// buffering (stream=true scans) sets stream instead of body: the
// server then commits to a 200, writes chunks as they come, and
// reports any mid-stream failure out of band via HTTP trailers —
// streamed results are never cached and carry no ETag.
type result struct {
	contentType string
	body        []byte
	header      http.Header // optional extras (e.g. X-Scan-Truncated)
	stream      func(ctx context.Context, w http.ResponseWriter) error
}

// jsonResult marshals v (indented: the bodies double as the golden
// corpus of the serve-equivalence tier, so they stay diffable).
func jsonResult(v any) (*result, error) {
	b, err := json.MarshalIndent(v, "", "  ")
	if err != nil {
		return nil, err
	}
	return &result{contentType: "application/json", body: append(b, '\n')}, nil
}

// csvResult renders a header + rows table.
func csvResult(headers []string, rows [][]string) (*result, error) {
	var sb strings.Builder
	w := csv.NewWriter(&sb)
	if err := w.Write(headers); err != nil {
		return nil, err
	}
	for _, row := range rows {
		if err := w.Write(row); err != nil {
			return nil, err
		}
	}
	w.Flush()
	if err := w.Error(); err != nil {
		return nil, err
	}
	return &result{contentType: "text/csv", body: []byte(sb.String())}, nil
}

// errNotFound marks an unknown figure name (HTTP 404).
type errNotFound struct{ msg string }

func (e *errNotFound) Error() string { return e.msg }

// admitted wraps a query handler with the full request discipline:
// response cache, admission, per-query deadline, latency metrics,
// ETag/If-None-Match handling and error mapping.
func (s *Server) admitted(fn func(ctx context.Context, r *http.Request) (*result, error)) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		mRequests.Inc()
		t0 := time.Now()
		defer func() { mLatency.ObserveSince(t0) }()

		// The cache is consulted before admission: a hit costs a map
		// read, so making it queue behind pipeline-bound queries would
		// throw the whole benefit away. The generation read here pins
		// the lake version the response is valid for.
		gen := s.p.Generation()
		key := cacheKey{path: r.URL.Path, query: r.URL.Query().Encode(), gen: gen}
		if ent := s.cache.get(key); ent != nil {
			s.writeCached(w, r, ent.res, ent.etag, "hit")
			return
		}

		// The deadline starts at arrival and covers the admission
		// wait — QueryTimeout is the bound on what a client observes,
		// and time spent queued is fully observed.
		ctx, cancel := context.WithTimeout(r.Context(), s.opt.QueryTimeout)
		defer cancel()

		release, err := s.adm.acquire(ctx)
		if err != nil {
			switch {
			case errors.Is(err, errShed):
				w.Header().Set("Retry-After", "1")
				s.writeError(w, http.StatusTooManyRequests, "server saturated, retry later")
			case errors.Is(err, context.DeadlineExceeded):
				// The deadline expired while queued: the promised bound
				// applies to queue wait too, so answer 504 rather than
				// running a query whose budget is already spent.
				mTimeouts.Inc()
				s.writeError(w, http.StatusGatewayTimeout,
					fmt.Sprintf("queued past the %s deadline", s.opt.QueryTimeout))
			default:
				// The client vanished while queued; nobody reads an answer.
			}
			return
		}
		defer release()

		res, err := fn(ctx, r)
		if err != nil {
			var bad *BadRequestError
			var nf *errNotFound
			switch {
			case errors.As(err, &bad):
				mBadReqs.Inc()
				s.writeError(w, http.StatusBadRequest, bad.Msg)
			case errors.As(err, &nf):
				s.writeError(w, http.StatusNotFound, nf.msg)
			case errors.Is(err, context.DeadlineExceeded):
				mTimeouts.Inc()
				s.writeError(w, http.StatusGatewayTimeout,
					fmt.Sprintf("query exceeded the %s deadline", s.opt.QueryTimeout))
			case errors.Is(err, context.Canceled):
				// Client disconnect mid-query: nothing to write.
			default:
				mErrors.Inc()
				s.writeError(w, http.StatusInternalServerError, err.Error())
			}
			return
		}
		if res.stream != nil {
			s.writeStream(ctx, w, res)
			return
		}
		etag := etagFor(gen, res.body)
		s.cache.put(key, res, etag)
		s.writeCached(w, r, res, etag, "miss")
	}
}

// writeCached writes a buffered result with its ETag, answering 304
// when the client's If-None-Match already names these bytes.
func (s *Server) writeCached(w http.ResponseWriter, r *http.Request, res *result, etag, xcache string) {
	h := w.Header()
	for k, vs := range res.header {
		for _, v := range vs {
			h.Add(k, v)
		}
	}
	h.Set("ETag", etag)
	h.Set("X-Cache", xcache)
	if etagMatch(r.Header.Get("If-None-Match"), etag) {
		mNotModified.Inc()
		w.WriteHeader(http.StatusNotModified)
		return
	}
	h.Set("Content-Type", res.contentType)
	w.WriteHeader(http.StatusOK)
	w.Write(res.body)
}

// writeStream runs a streaming result: headers and a 200 go out
// first, the body is produced incrementally, and completion status
// travels in declared HTTP trailers — X-Scan-Complete: true on
// success, X-Scan-Error on a mid-stream failure (a damaged day, an
// expired deadline). A client that does not read trailers still
// cannot mistake a torn stream for a complete one as long as it
// checks them; one that can't must fall back to buffered mode.
func (s *Server) writeStream(ctx context.Context, w http.ResponseWriter, res *result) {
	h := w.Header()
	for k, vs := range res.header {
		for _, v := range vs {
			h.Add(k, v)
		}
	}
	h.Set("Content-Type", res.contentType)
	h.Set("Trailer", "X-Scan-Complete, X-Scan-Error")
	w.WriteHeader(http.StatusOK)
	err := res.stream(ctx, w)
	if err != nil {
		if errors.Is(err, context.DeadlineExceeded) {
			mTimeouts.Inc()
		} else if !errors.Is(err, context.Canceled) {
			mErrors.Inc()
		}
		h.Set("X-Scan-Error", err.Error())
		return
	}
	h.Set("X-Scan-Complete", "true")
}

// writeError answers a JSON error envelope.
func (s *Server) writeError(w http.ResponseWriter, status int, msg string) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	body, _ := json.Marshal(map[string]string{"error": msg})
	w.Write(append(body, '\n'))
}

// --- registry, health, metrics ----------------------------------------------

// ExperimentInfo is one /v1/experiments row.
type ExperimentInfo struct {
	ID     string `json:"id"`
	Title  string `json:"title"`
	Days   int    `json:"days"`
	Served bool   `json:"served"` // has a /v1/figures/{id} endpoint
}

func (s *Server) handleExperiments(w http.ResponseWriter, r *http.Request) {
	mRequests.Inc()
	rows := make([]ExperimentInfo, 0, 16)
	for _, e := range core.AllExperiments() {
		rows = append(rows, ExperimentInfo{
			ID:     e.ID,
			Title:  e.Title,
			Days:   len(e.Days(s.p.Stride())),
			Served: figureSpecs[e.ID] != nil,
		})
	}
	res, err := jsonResult(rows)
	if err != nil {
		s.writeError(w, http.StatusInternalServerError, err.Error())
		return
	}
	w.Header().Set("Content-Type", res.contentType)
	w.Write(res.body)
}

// Health is the /v1/healthz body.
type Health struct {
	Status     string `json:"status"`
	UptimeMs   int64  `json:"uptime_ms"`
	Inflight   int64  `json:"inflight"`
	Queued     int64  `json:"queued"`
	LakeDays   int    `json:"lake_days"`
	Rollups    bool   `json:"rollups"`
	Generation uint64 `json:"generation"`
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	mRequests.Inc()
	gen := s.p.Generation()
	h := Health{
		Status:     "ok",
		UptimeMs:   time.Since(s.start).Milliseconds(),
		Inflight:   mInflight.Load(),
		Queued:     mQueuedG.Load(),
		Rollups:    s.p.RollupsEnabled(),
		Generation: gen,
	}
	h.LakeDays = s.lakeDays(gen)
	res, err := jsonResult(h)
	if err != nil {
		s.writeError(w, http.StatusInternalServerError, err.Error())
		return
	}
	w.Header().Set("Content-Type", res.contentType)
	w.Write(res.body)
}

// lakeDays returns the lake-day count, recounting only when the lake
// generation moved since the last count: a health probe is polled
// (load balancers hit it at 1 Hz forever), and a full directory
// listing per probe is O(days) filesystem work for an answer that
// only changes when the lake does. Errors are not cached — a count
// that failed retries on the next probe.
func (s *Server) lakeDays(gen uint64) int {
	st := s.p.Storage()
	if st == nil {
		return 0
	}
	s.dayMu.Lock()
	defer s.dayMu.Unlock()
	if s.dayValid && s.dayGen == gen {
		return s.dayN
	}
	days, err := st.Days()
	if err != nil {
		return 0
	}
	s.dayGen, s.dayN, s.dayValid = gen, len(days), true
	return s.dayN
}

// MetricRow is one /v1/metrics entry (counters and gauges carry
// value; histograms and timers carry the summary fields).
type MetricRow struct {
	Name  string `json:"name"`
	Kind  string `json:"kind"`
	Value int64  `json:"value,omitempty"`
	Count uint64 `json:"count,omitempty"`
	Sum   int64  `json:"sum,omitempty"`
	P50   int64  `json:"p50,omitempty"`
	P90   int64  `json:"p90,omitempty"`
	P99   int64  `json:"p99,omitempty"`
	Max   int64  `json:"max,omitempty"`
	Unit  string `json:"unit,omitempty"`
}

func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	mRequests.Inc()
	// Same strict contract as ParseQuery: an unknown format must not
	// silently answer in a different one than the client asked for.
	switch r.URL.Query().Get("format") {
	case "text":
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		metrics.WriteText(w)
		return
	case "", "json":
	default:
		mBadReqs.Inc()
		s.writeError(w, http.StatusBadRequest,
			fmt.Sprintf("bad format=%q (want json or text)", r.URL.Query().Get("format")))
		return
	}
	snap := metrics.Default.Snapshot()
	rows := make([]MetricRow, 0, len(snap))
	for _, m := range snap {
		rows = append(rows, MetricRow{
			Name: m.Name, Kind: m.Kind.String(), Value: m.Value,
			Count: m.Count, Sum: m.Sum, P50: m.P50, P90: m.P90, P99: m.P99,
			Max: m.Max, Unit: m.Unit,
		})
	}
	res, err := jsonResult(rows)
	if err != nil {
		s.writeError(w, http.StatusInternalServerError, err.Error())
		return
	}
	w.Header().Set("Content-Type", res.contentType)
	w.Write(res.body)
}
