package serve

// The serve-equivalence tier: every /v1/figures/{name} response must
// derive from the same numbers as the edgereport batch figure on the
// same (simulated) lake. Three angles hold that:
//
//  1. a golden corpus of HTTP bodies under testdata/golden, compared
//     byte-for-byte (regenerate with `make servequiv-update`);
//  2. exact numeric equality between a rollup-enabled served pipeline
//     and an independent flat batch pipeline — the served numbers ride
//     PR 7's rollup-equals-day-fold guarantee through HTTP;
//  3. served values, re-formatted exactly the way the batch table
//     formats them, must appear in the batch figure's rendered text.

import (
	"bytes"
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/analytics"
	"repro/internal/core"
	"repro/internal/flowrec"
	"repro/internal/report"
	"repro/internal/simnet"
)

var updateServequiv = flag.Bool("update-servequiv", false, "rewrite testdata/golden from current responses")

// servequivConfig pins the corpus the same way core's golden tier
// does: one seed, a tiny population, sparse stride.
func servequivConfig() core.Config {
	return core.Config{
		Seed: 424242, Scale: simnet.Scale{ADSL: 8, FTTH: 4},
		Stride: 240, Workers: 2,
	}
}

// newEquivServer boots an httptest server over a fresh pipeline.
func newEquivServer(t *testing.T, cfg core.Config, opt Options) (*Server, *httptest.Server) {
	t.Helper()
	s := New(core.New(cfg), opt)
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)
	return s, ts
}

func fetch(t *testing.T, url string) (int, []byte) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatalf("GET %s: %v", url, err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatalf("GET %s: read body: %v", url, err)
	}
	return resp.StatusCode, body
}

func getRows(t *testing.T, url string, rows any) {
	t.Helper()
	status, body := fetch(t, url)
	if status != http.StatusOK {
		t.Fatalf("GET %s: status %d: %s", url, status, body)
	}
	var envelope struct {
		Rows json.RawMessage `json:"rows"`
	}
	if err := json.Unmarshal(body, &envelope); err != nil {
		t.Fatalf("GET %s: %v", url, err)
	}
	if err := json.Unmarshal(envelope.Rows, rows); err != nil {
		t.Fatalf("GET %s: rows: %v", url, err)
	}
}

// TestServeEquivalenceGolden compares every endpoint's body to the
// golden corpus byte-for-byte. The corpus is generated through the
// same HTTP path it is checked through, so the JSON layout, number
// formatting and row order are all pinned.
func TestServeEquivalenceGolden(t *testing.T) {
	_, ts := newEquivServer(t, servequivConfig(), Options{})
	dir := filepath.Join("testdata", "golden")
	cases := []struct {
		name, path, file string
	}{
		{"experiments", "/v1/experiments", "experiments.json"},
		{"active", "/v1/figures/active", "active.json"},
		{"fig2", "/v1/figures/fig2", "fig2.json"},
		{"fig3", "/v1/figures/fig3", "fig3.json"},
		{"fig3-csv", "/v1/figures/fig3?format=csv", "fig3.csv"},
		{"fig4", "/v1/figures/fig4", "fig4.json"},
		{"fig5", "/v1/figures/fig5", "fig5.json"},
		{"fig8", "/v1/figures/fig8", "fig8.json"},
		{"fig10", "/v1/figures/fig10", "fig10.json"},
		{"fig10-quantiles", "/v1/figures/fig10?quantiles=0.5,0.9&service=YouTube", "fig10_params.json"},
	}
	if *updateServequiv {
		if err := os.MkdirAll(dir, 0o755); err != nil {
			t.Fatal(err)
		}
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			status, body := fetch(t, ts.URL+c.path)
			if status != http.StatusOK {
				t.Fatalf("status %d: %s", status, body)
			}
			path := filepath.Join(dir, c.file)
			if *updateServequiv {
				if err := os.WriteFile(path, body, 0o644); err != nil {
					t.Fatal(err)
				}
				return
			}
			want, err := os.ReadFile(path)
			if err != nil {
				t.Fatalf("missing golden file (run `make servequiv-update`): %v", err)
			}
			if !bytes.Equal(body, want) {
				t.Errorf("%s diverges from %s (regenerate with `make servequiv-update` if intentional)\ngot:\n%s", c.path, path, body)
			}
		})
	}
}

// TestServedFiguresMatchBatchNumbers holds the served numbers exactly
// equal to an independent batch derivation. The served pipeline runs
// with the agg cache, rollup tier and sketches enabled — the full
// production read path — while the batch pipeline folds days flat in
// memory. Equality here means tier selection changed nothing on the
// way to the wire.
func TestServedFiguresMatchBatchNumbers(t *testing.T) {
	ctx := context.Background()
	cfg := servequivConfig()
	cfg.AggCacheDir = filepath.Join(t.TempDir(), "agg")
	cfg.RollupDir = filepath.Join(t.TempDir(), "rollup")
	cfg.Sketch = true
	_, ts := newEquivServer(t, cfg, Options{})
	batch := core.New(servequivConfig())

	t.Run("active", func(t *testing.T) {
		var rows []ActiveRow
		getRows(t, ts.URL+"/v1/figures/active", &rows)
		days := core.Lookup0("active").Days(batch.Stride())
		pts, err := batch.ActiveSeriesTier(ctx, days, analytics.ColsSubscribers)
		if err != nil {
			t.Fatal(err)
		}
		if len(rows) != len(pts) || len(rows) == 0 {
			t.Fatalf("served %d rows, batch derived %d", len(rows), len(pts))
		}
		for i, pt := range pts {
			got := rows[i]
			if got.Day != pt.Day.Format("2006-01-02") || got.Active != pt.Active ||
				got.Observed != pt.Observed || got.ActivePct != pt.ActivePct {
				t.Errorf("row %d: served %+v, batch %+v", i, got, pt)
			}
		}
	})

	t.Run("fig3", func(t *testing.T) {
		var rows []MonthlyRow
		getRows(t, ts.URL+"/v1/figures/fig3", &rows)
		days := core.Lookup0("fig3").Days(batch.Stride())
		ms, err := batch.MonthlySeriesTier(ctx, days, analytics.ColsSubscribers)
		if err != nil {
			t.Fatal(err)
		}
		if len(rows) != len(ms) || len(rows) == 0 {
			t.Fatalf("served %d rows, batch derived %d", len(rows), len(ms))
		}
		for i, m := range ms {
			got := rows[i]
			if got.Month != m.Month.Format("2006-01") ||
				got.ADSLDownBytes != m.Mean[0][analytics.Down] ||
				got.FTTHDownBytes != m.Mean[1][analytics.Down] ||
				got.ADSLUpBytes != m.Mean[0][analytics.Up] ||
				got.FTTHUpBytes != m.Mean[1][analytics.Up] {
				t.Errorf("row %d: served %+v, batch %+v", i, got, m)
			}
		}
	})

	t.Run("fig8", func(t *testing.T) {
		var rows []ProtoRow
		getRows(t, ts.URL+"/v1/figures/fig8", &rows)
		days := core.Lookup0("fig8").Days(batch.Stride())
		shares, err := batch.ProtoSharesTier(ctx, days, analytics.ColsProtocols)
		if err != nil {
			t.Fatal(err)
		}
		if len(rows) != len(shares) || len(rows) == 0 {
			t.Fatalf("served %d rows, batch derived %d", len(rows), len(shares))
		}
		for i, s := range shares {
			got := rows[i]
			if got.Month != s.Month.Format("2006-01") {
				t.Fatalf("row %d: served month %s, batch %s", i, got.Month, s.Month.Format("2006-01"))
			}
			for _, proto := range analytics.WebProtos() {
				if got.SharePct[proto.String()] != s.SharePct[proto] {
					t.Errorf("row %d %s: served %v, batch %v",
						i, proto, got.SharePct[proto.String()], s.SharePct[proto])
				}
			}
		}
	})

	t.Run("fig2", func(t *testing.T) {
		var rows []DistRow
		getRows(t, ts.URL+"/v1/figures/fig2", &rows)
		days := core.Lookup0("fig2").Days(batch.Stride())
		aggs, err := batch.AggregateCols(ctx, days, analytics.ColsSubscribers)
		if err != nil {
			t.Fatal(err)
		}
		if len(rows) != 4 {
			t.Fatalf("served %d rows, want 4 (tech x dir)", len(rows))
		}
		dist := analytics.DailyVolumeDist(aggs, flowrec.TechADSL, analytics.Down) // ADSL down = first row
		if rows[0].N != dist.N() || rows[0].MeanBytes != dist.Mean() {
			t.Errorf("ADSL down: served n=%d mean=%v, batch n=%d mean=%v",
				rows[0].N, rows[0].MeanBytes, dist.N(), dist.Mean())
		}
		for _, qp := range rows[0].Quantiles {
			if want := dist.Quantile(qp.Q); qp.V != want {
				t.Errorf("ADSL down q%v: served %v, batch %v", qp.Q, qp.V, want)
			}
		}
	})
}

// TestServedFiguresAppearInBatchText ties the service to the rendered
// batch figure itself: each served row, formatted through the same
// report helpers the batch table uses, must appear on a line of the
// edgereport output.
func TestServedFiguresAppearInBatchText(t *testing.T) {
	_, ts := newEquivServer(t, servequivConfig(), Options{})
	batch := core.New(servequivConfig())
	render := func(id string) []string {
		var buf bytes.Buffer
		if err := core.Lookup0(id).Run(context.Background(), batch, &buf); err != nil {
			t.Fatalf("batch %s: %v", id, err)
		}
		return strings.Split(buf.String(), "\n")
	}
	lineWith := func(lines []string, cells ...string) bool {
		for _, ln := range lines {
			ok := true
			for _, cell := range cells {
				if !strings.Contains(ln, cell) {
					ok = false
					break
				}
			}
			if ok {
				return true
			}
		}
		return false
	}

	t.Run("active", func(t *testing.T) {
		var rows []ActiveRow
		getRows(t, ts.URL+"/v1/figures/active", &rows)
		lines := render("active")
		if len(rows) == 0 {
			t.Fatal("no served rows")
		}
		for _, r := range rows {
			if !lineWith(lines, r.Day, fmt.Sprint(r.Active), fmt.Sprint(r.Observed), report.Pct(r.ActivePct)) {
				t.Errorf("served active row %s (%d/%d, %s) not in batch figure text",
					r.Day, r.Active, r.Observed, report.Pct(r.ActivePct))
			}
		}
	})

	t.Run("fig3", func(t *testing.T) {
		var rows []MonthlyRow
		getRows(t, ts.URL+"/v1/figures/fig3", &rows)
		lines := render("fig3")
		if len(rows) == 0 {
			t.Fatal("no served rows")
		}
		for _, r := range rows {
			if !lineWith(lines, r.Month, report.MB(r.ADSLDownBytes), report.MB(r.FTTHDownBytes),
				report.MB(r.ADSLUpBytes), report.MB(r.FTTHUpBytes)) {
				t.Errorf("served fig3 row %s (%s/%s/%s/%s MB) not in batch figure text",
					r.Month, report.MB(r.ADSLDownBytes), report.MB(r.FTTHDownBytes),
					report.MB(r.ADSLUpBytes), report.MB(r.FTTHUpBytes))
			}
		}
	})
}
