package serve

// The serving-side concurrency contract, run under -race in CI:
// many queries sharing one pipeline's caches, queries against a hot
// day while an ingester checkpoints it, admission control shedding
// 429s at saturation, and per-query deadlines cancelling cleanly
// with no leaked goroutines.

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"path/filepath"
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/analytics"
	"repro/internal/core"
	"repro/internal/flowrec"
	"repro/internal/ingest"
	"repro/internal/simnet"
)

// httpStatus is the goroutine-safe fetch (no t.Fatalf): status + body.
func httpStatus(client *http.Client, url string) (int, []byte, error) {
	resp, err := client.Get(url)
	if err != nil {
		return 0, nil, err
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	return resp.StatusCode, body, err
}

// waitFor polls cond to true within 5s.
func waitFor(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(time.Millisecond)
	}
	t.Fatalf("timed out waiting for %s", what)
}

// fakeStorage is a minimal core.Storage for admission and deadline
// tests: one day whose scan either blocks until released or emits
// records endlessly until the callback aborts it.
type fakeStorage struct {
	day     time.Time
	entered chan struct{} // receives one token per scan started
	release chan struct{} // when non-nil, a scan blocks here first
	endless bool          // emit records until fn returns an error
	gen     atomic.Uint64
}

func (f *fakeStorage) ReadDay(day time.Time, fn func(*flowrec.Record) error) error {
	return f.ReadDayCols(day, flowrec.ColScan{}, fn)
}

func (f *fakeStorage) ReadDayCols(day time.Time, sc flowrec.ColScan, fn func(*flowrec.Record) error) error {
	if !day.Equal(f.day) {
		return flowrec.ErrNoDay
	}
	if f.entered != nil {
		f.entered <- struct{}{}
	}
	if f.release != nil {
		<-f.release
	}
	var rec flowrec.Record
	if f.endless {
		for {
			if err := fn(&rec); err != nil {
				return err
			}
		}
	}
	for i := 0; i < 4; i++ {
		if err := fn(&rec); err != nil {
			return err
		}
	}
	return nil
}

func (f *fakeStorage) WriteDay(time.Time, func(func(*flowrec.Record) error) error) (uint64, error) {
	f.BumpGeneration()
	return 0, nil
}
func (f *fakeStorage) HasDay(day time.Time) bool                    { return day.Equal(f.day) }
func (f *fakeStorage) Days() ([]time.Time, error)                   { return []time.Time{f.day}, nil }
func (f *fakeStorage) QuarantineDay(time.Time) error                { return nil }
func (f *fakeStorage) LoadAgg(time.Time) (*analytics.DayAgg, error) { return nil, nil }
func (f *fakeStorage) SaveAgg(*analytics.DayAgg) error              { return nil }
func (f *fakeStorage) LoadPartials(time.Time) ([]*analytics.Partial, error) {
	return nil, nil
}
func (f *fakeStorage) SavePartials(time.Time, []*analytics.Partial) error { return nil }
func (f *fakeStorage) LoadRollup(analytics.Grain, time.Time) (*analytics.Rollup, error) {
	return nil, nil
}
func (f *fakeStorage) SaveRollup(*analytics.Rollup) error { return nil }
func (f *fakeStorage) InvalidateRollups(time.Time) error  { return nil }
func (f *fakeStorage) Generation() uint64                 { return f.gen.Load() }
func (f *fakeStorage) BumpGeneration() uint64             { return f.gen.Add(1) }

var fakeDay = time.Date(2016, 4, 1, 0, 0, 0, 0, time.UTC)

// TestConcurrentQueriesSharedCaches drives many goroutines through
// the full figure surface of one server — one pipeline, one agg
// cache, one rollup tier, one classifier memo. Every answer must be
// 200, and equal URLs must answer byte-identical bodies no matter
// which goroutine asked or in what interleaving.
func TestConcurrentQueriesSharedCaches(t *testing.T) {
	cfg := servequivConfig()
	cfg.AggCacheDir = filepath.Join(t.TempDir(), "agg")
	cfg.RollupDir = filepath.Join(t.TempDir(), "rollup")
	_, ts := newEquivServer(t, cfg, Options{Workers: 4, Queue: 64})

	urls := []string{
		ts.URL + "/v1/figures/active",
		ts.URL + "/v1/figures/fig3",
		ts.URL + "/v1/figures/fig8",
		ts.URL + "/v1/figures/fig2",
		ts.URL + "/v1/figures/fig10",
		ts.URL + "/v1/experiments",
	}
	const goroutines, rounds = 8, 4
	var mu sync.Mutex
	first := make(map[string][]byte)
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			client := &http.Client{}
			for i := 0; i < rounds*len(urls); i++ {
				url := urls[(g+i)%len(urls)]
				status, body, err := httpStatus(client, url)
				if err != nil || status != http.StatusOK {
					t.Errorf("goroutine %d: GET %s: status %d err %v", g, url, status, err)
					return
				}
				mu.Lock()
				if prev, ok := first[url]; !ok {
					first[url] = body
				} else if string(prev) != string(body) {
					t.Errorf("goroutine %d: %s answered differently across queries", g, url)
				}
				mu.Unlock()
			}
		}(g)
	}
	wg.Wait()
}

// TestServeHotDayDuringIngest queries a hot (unsealed) day over HTTP
// while an edged-style ingester is still absorbing records and
// swapping checkpoints beneath the lake — the serving half of the
// hot-day contract. A fresh pipeline serves each request so every
// query really re-reads the moving checkpoint state.
func TestServeHotDayDuringIngest(t *testing.T) {
	day := simnet.SpanStart.AddDate(0, 0, 7)
	dir := t.TempDir()
	store, err := flowrec.OpenStoreFormat(filepath.Join(dir, "lake"), flowrec.FormatV1)
	if err != nil {
		t.Fatal(err)
	}
	aggDir := filepath.Join(dir, "agg")
	in, err := ingest.Open(ingest.Config{
		Storage:         core.NewDiskStorage(store, aggDir),
		WALDir:          filepath.Join(dir, "lake", flowrec.WALDirName),
		CheckpointEvery: 128,
	})
	if err != nil {
		t.Fatal(err)
	}
	w := simnet.NewWorld(7, simnet.Scale{ADSL: 8, FTTH: 4})
	src := w.Stream([]time.Time{day})
	ctx := context.Background()

	// A first absorbed batch guarantees the readers find a checkpoint.
	var sr simnet.StreamRecord
	for i := 0; i < 256 && src.Next(&sr); i++ {
		if err := in.Ingest(ctx, &sr.Rec, sr.At); err != nil {
			t.Fatal(err)
		}
	}
	in.CheckpointAll(ctx)

	pcfg := core.Config{Seed: 7, Scale: simnet.Scale{ADSL: 8, FTTH: 4}, Workers: 2,
		Store: store, AggCacheDir: aggDir}
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		New(core.New(pcfg), Options{}).Handler().ServeHTTP(w, r)
	}))
	defer ts.Close()
	url := fmt.Sprintf("%s/v1/figures/active?from=%s&to=%s",
		ts.URL, day.Format("2006-01-02"), day.Format("2006-01-02"))

	done := make(chan struct{})
	var wg sync.WaitGroup
	for r := 0; r < 3; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			client := &http.Client{}
			for {
				select {
				case <-done:
					return
				default:
				}
				status, body, err := httpStatus(client, url)
				if err != nil || status != http.StatusOK {
					t.Errorf("hot-day query during ingest: status %d err %v: %s", status, err, body)
					return
				}
				var resp struct {
					Rows []ActiveRow `json:"rows"`
				}
				if jerr := json.Unmarshal(body, &resp); jerr != nil {
					t.Errorf("hot-day response: %v", jerr)
					return
				}
				if len(resp.Rows) != 1 || resp.Rows[0].Observed == 0 {
					t.Errorf("hot-day query served empty figure despite checkpoints: %s", body)
					return
				}
			}
		}()
	}

	n := 0
	for src.Next(&sr) {
		if err := in.Ingest(ctx, &sr.Rec, sr.At); err != nil {
			t.Fatal(err)
		}
		if n++; n%512 == 0 {
			in.CheckpointAll(ctx)
		}
	}
	in.CheckpointAll(ctx)
	close(done)
	wg.Wait()
	if err := in.Close(ctx); err != nil {
		t.Fatal(err)
	}
}

// TestAdmissionShedsWith429 saturates a Workers=1/Queue=1 server: the
// first query holds the slot, the second waits, the third is shed
// with 429 + Retry-After and counted in serve.shed. Releasing the
// slot drains the queue — both held queries answer 200.
func TestAdmissionShedsWith429(t *testing.T) {
	fake := &fakeStorage{day: fakeDay, entered: make(chan struct{}, 8), release: make(chan struct{})}
	_, ts := newEquivServer(t, core.Config{Storage: fake, Workers: 1}, Options{Workers: 1, Queue: 1})
	url := ts.URL + "/v1/scan?from=2016-04-01"
	shed0, queued0 := mShed.Load(), mQueuedG.Load()

	aCh := make(chan int, 1)
	go func() {
		status, _, _ := httpStatus(&http.Client{}, url)
		aCh <- status
	}()
	<-fake.entered // A holds the worker slot inside the scan

	bCh := make(chan int, 1)
	go func() {
		status, _, _ := httpStatus(&http.Client{}, url)
		bCh <- status
	}()
	waitFor(t, "request B to queue", func() bool { return mQueuedG.Load() > queued0 })

	status, body, err := httpStatus(&http.Client{}, url)
	if err != nil {
		t.Fatal(err)
	}
	if status != http.StatusTooManyRequests {
		t.Fatalf("saturated server answered %d, want 429: %s", status, body)
	}
	if got := mShed.Load(); got != shed0+1 {
		t.Errorf("serve.shed = %d, want %d", got, shed0+1)
	}

	close(fake.release)
	if got := <-aCh; got != http.StatusOK {
		t.Errorf("held query A answered %d, want 200", got)
	}
	if got := <-bCh; got != http.StatusOK {
		t.Errorf("queued query B answered %d, want 200", got)
	}
}

// TestDeadlineExpiresCleanly runs a query whose scan never ends
// against a short per-query deadline: the handler must answer 504,
// count serve.deadline_expired, and leak nothing — the goroutine
// count settles back to its pre-query baseline.
func TestDeadlineExpiresCleanly(t *testing.T) {
	fake := &fakeStorage{day: fakeDay, endless: true}
	_, ts := newEquivServer(t, core.Config{Storage: fake, Workers: 1},
		Options{QueryTimeout: 100 * time.Millisecond})
	client := &http.Client{}

	// Warm the connection pool, then take the goroutine baseline.
	if status, _, err := httpStatus(client, ts.URL+"/v1/healthz"); err != nil || status != 200 {
		t.Fatalf("healthz: status %d err %v", status, err)
	}
	client.CloseIdleConnections()
	time.Sleep(50 * time.Millisecond)
	g0 := runtime.NumGoroutine()

	timeouts0 := mTimeouts.Load()
	status, body, err := httpStatus(client, ts.URL+"/v1/scan?from=2016-04-01")
	if err != nil {
		t.Fatal(err)
	}
	if status != http.StatusGatewayTimeout {
		t.Fatalf("expired query answered %d, want 504: %s", status, body)
	}
	if got := mTimeouts.Load(); got != timeouts0+1 {
		t.Errorf("serve.deadline_expired = %d, want %d", got, timeouts0+1)
	}

	client.CloseIdleConnections()
	waitFor(t, "goroutines to settle after deadline expiry", func() bool {
		runtime.GC()
		return runtime.NumGoroutine() <= g0+2
	})
}
