package serve

import (
	"context"
	"crypto/subtle"
	"errors"
	"net/http"
	"runtime"
	"strings"
	"time"

	"repro/internal/core"
	"repro/internal/flowrec"
	"repro/internal/metrics"
)

// The mutating admin surface: POST /v1/admin/compact rewrites lake
// days into a (usually newer) storage format, POST
// /v1/admin/rollups/prewarm builds the rollup tier before queries need
// it. Both are token-gated, bypass admission (an operator acts
// *because* the query pool is saturated) but serialize among
// themselves, run under the request context rather than QueryTimeout
// (compacting a five-year lake legitimately outlives any query
// budget), and bump the lake generation on success so every cached
// response derived from the old bytes revalidates.

var mAdminOps = metrics.GetCounter("serve.admin_ops")

// adminEndpoint wraps a mutating handler with the admin discipline:
// token gate, mutual exclusion, error mapping.
func (s *Server) adminEndpoint(fn func(ctx context.Context, r *http.Request) (*result, error)) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		mRequests.Inc()
		if s.opt.AdminToken == "" {
			s.writeError(w, http.StatusForbidden, "admin endpoints disabled (no admin token configured)")
			return
		}
		if subtle.ConstantTimeCompare([]byte(bearerToken(r)), []byte(s.opt.AdminToken)) != 1 {
			s.writeError(w, http.StatusUnauthorized, "missing or wrong admin token")
			return
		}
		if !s.adminMu.TryLock() {
			w.Header().Set("Retry-After", "5")
			s.writeError(w, http.StatusConflict, "another admin operation is in progress")
			return
		}
		defer s.adminMu.Unlock()
		mAdminOps.Inc()

		res, err := fn(r.Context(), r)
		if err != nil {
			var bad *BadRequestError
			switch {
			case errors.As(err, &bad):
				mBadReqs.Inc()
				s.writeError(w, http.StatusBadRequest, bad.Msg)
			case errors.Is(err, context.Canceled):
				// Operator hung up mid-operation; nobody reads an answer.
			default:
				mErrors.Inc()
				s.writeError(w, http.StatusInternalServerError, err.Error())
			}
			return
		}
		w.Header().Set("Content-Type", res.contentType)
		w.WriteHeader(http.StatusOK)
		w.Write(res.body)
	}
}

// bearerToken extracts the RFC 6750 bearer token, "" when absent.
func bearerToken(r *http.Request) string {
	auth := r.Header.Get("Authorization")
	const prefix = "Bearer "
	if len(auth) <= len(prefix) || !strings.EqualFold(auth[:len(prefix)], prefix) {
		return ""
	}
	return auth[len(prefix):]
}

// CompactResponse is the /v1/admin/compact body.
type CompactResponse struct {
	DaysCompacted int    `json:"days_compacted"`
	Records       uint64 `json:"records"`
	Format        string `json:"format"`
	Generation    uint64 `json:"generation"`
	ElapsedMs     int64  `json:"elapsed_ms"`
}

// adminCompact rewrites every lake day into the requested format
// (format=v1|v2|v3, default v3). Days already in the target format
// are rewritten too — CompactDay is idempotent — which doubles as a
// lake-wide integrity pass.
func (s *Server) adminCompact(ctx context.Context, r *http.Request) (*result, error) {
	var format flowrec.Format = flowrec.FormatV3
	formatName := "v3"
	for key, vals := range r.URL.Query() {
		if key != "format" {
			return nil, badf("unknown parameter %q", key)
		}
		if len(vals) != 1 {
			return nil, badf("parameter %q given %d times", key, len(vals))
		}
		f, err := flowrec.ParseFormat(vals[0])
		if err != nil {
			return nil, badf("bad format=%q (want v1, v2 or v3)", vals[0])
		}
		format, formatName = f, vals[0]
	}
	st := s.p.FlowStore()
	if st == nil {
		return nil, badf("this server has no flow lake to compact")
	}
	days, err := st.Days()
	if err != nil {
		return nil, err
	}
	t0 := time.Now()
	n, recs, err := st.CompactStore(days, format, runtime.GOMAXPROCS(0))
	if err != nil {
		return nil, err
	}
	// The lake's physical bytes changed: invalidate every cached
	// response derived from them.
	gen := s.p.BumpGeneration()
	return jsonResult(CompactResponse{
		DaysCompacted: n,
		Records:       recs,
		Format:        formatName,
		Generation:    gen,
		ElapsedMs:     time.Since(t0).Milliseconds(),
	})
}

// PrewarmResponse is the /v1/admin/rollups/prewarm body.
type PrewarmResponse struct {
	RollupsBuilt int    `json:"rollups_built"`
	Days         int    `json:"days"`
	Generation   uint64 `json:"generation"`
	ElapsedMs    int64  `json:"elapsed_ms"`
}

// adminPrewarm builds the rollup tier over the lake (or an explicit
// from/to window) so the first five-year figure after a restart does
// not pay the build.
func (s *Server) adminPrewarm(ctx context.Context, r *http.Request) (*result, error) {
	var from, to time.Time
	for key, vals := range r.URL.Query() {
		if key != "from" && key != "to" {
			return nil, badf("unknown parameter %q", key)
		}
		if len(vals) != 1 {
			return nil, badf("parameter %q given %d times", key, len(vals))
		}
		d, err := parseDay(vals[0])
		if err != nil {
			return nil, badf("bad %s=%q: want YYYY-MM-DD", key, vals[0])
		}
		if key == "from" {
			from = d
		} else {
			to = d
		}
	}
	if !to.IsZero() && from.IsZero() {
		return nil, badf("to= requires from=")
	}
	if !s.p.RollupsEnabled() {
		return nil, badf("this server has no rollup tier (start it with -rollup)")
	}
	var days []time.Time
	switch {
	case !from.IsZero():
		if to.IsZero() {
			to = from
		}
		if to.Before(from) {
			return nil, badf("empty range: to=%s before from=%s",
				to.Format("2006-01-02"), from.Format("2006-01-02"))
		}
		days = core.RangeDays(from, to, 1)
	default:
		var err error
		if st := s.p.Storage(); st != nil {
			if days, err = st.Days(); err != nil {
				return nil, err
			}
		}
		if len(days) == 0 {
			days = s.p.SpanDays()
		}
	}
	t0 := time.Now()
	built, err := s.p.BuildRollups(ctx, days)
	if err != nil {
		return nil, err
	}
	// Prewarming only *adds* derived state, but the tier selector now
	// answers from rollups where it answered from day aggregates —
	// still byte-identical by the rollup equivalence proofs, yet the
	// conservative contract ("mutating admin op completed → new
	// generation") is cheaper to reason about than an exception.
	gen := s.p.BumpGeneration()
	return jsonResult(PrewarmResponse{
		RollupsBuilt: built,
		Days:         len(days),
		Generation:   gen,
		ElapsedMs:    time.Since(t0).Milliseconds(),
	})
}
