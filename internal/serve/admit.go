package serve

import (
	"context"
	"errors"
	"sync/atomic"

	"repro/internal/metrics"
)

// Admission control: queries run on a bounded worker pool (Workers
// slots) with a bounded wait queue (Queue slots). A request arriving
// with every slot busy and the queue full is shed immediately with
// 429 + Retry-After rather than buffered — under overload the service
// degrades to fast rejections, never to an unbounded pile of
// in-flight aggregations sharing one heap. This is the serving-side
// twin of the pipeline's -memlimit: both bound how much of the lake
// can be in memory at once.
var (
	mInflight = metrics.GetGauge("serve.inflight")
	mQueuedG  = metrics.GetGauge("serve.queued")
	mShed     = metrics.GetCounter("serve.shed")
)

// errShed marks a request rejected by admission control (HTTP 429).
var errShed = errors.New("serve: shed by admission control")

// admission is the pool + queue.
type admission struct {
	sem    chan struct{} // capacity = worker slots
	queue  int64         // max waiters before shedding
	queued atomic.Int64
}

func newAdmission(workers, queue int) *admission {
	return &admission{sem: make(chan struct{}, workers), queue: int64(queue)}
}

// acquire claims a worker slot, waiting in the bounded queue when all
// slots are busy. It returns a release func on success; errShed when
// the queue is full; ctx.Err() when the caller gave up (client
// disconnect, shutdown) while queued.
func (a *admission) acquire(ctx context.Context) (func(), error) {
	select {
	case a.sem <- struct{}{}:
		return a.grant(), nil
	default:
	}
	if a.queued.Add(1) > a.queue {
		a.queued.Add(-1)
		mShed.Inc()
		return nil, errShed
	}
	mQueuedG.Add(1)
	defer func() { a.queued.Add(-1); mQueuedG.Add(-1) }()
	select {
	case a.sem <- struct{}{}:
		return a.grant(), nil
	case <-ctx.Done():
		return nil, ctx.Err()
	}
}

func (a *admission) grant() func() {
	mInflight.Add(1)
	return func() {
		<-a.sem
		mInflight.Add(-1)
	}
}
