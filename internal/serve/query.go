// Package serve is the query service over the lake: a long-running
// HTTP daemon (cmd/edgeserve) exposing the experiment registry, the
// paper's figures and ad-hoc scans as JSON/CSV endpoints. Queries
// execute concurrently over one shared core.Pipeline — the same
// agg/rollup caches, tier selection and hot-day checkpoints the batch
// binaries use — under per-query deadlines and admission control
// (bounded worker pool + bounded queue, 429 shedding), so N concurrent
// readers cannot OOM one lake.
//
// Repeated queries are answered from a bounded in-memory response
// cache keyed by (endpoint, canonical query, lake generation): every
// lake mutation — WriteDay, quarantine, compaction, a live ingester's
// checkpoint — bumps the generation, so a cached body can never
// outlive the data it was derived from. Responses carry strong ETags
// ("<generation>-<body hash>") and honour If-None-Match with 304.
//
// The endpoint surface:
//
//	GET  /v1/healthz                   liveness + lake summary (never queued)
//	GET  /v1/metrics                   the metrics registry (JSON or text)
//	GET  /v1/experiments               the experiment registry
//	GET  /v1/figures/{name}            one figure's data rows (JSON or CSV)
//	GET  /v1/scan                      ad-hoc record scan with pushdown filters
//	POST /v1/admin/compact             rewrite lake days into a columnar format
//	POST /v1/admin/rollups/prewarm     build the rollup tier ahead of queries
//
// Admin endpoints are token-gated (Options.AdminToken), bypass
// admission but serialize among themselves, and bump the lake
// generation on completion.
package serve

import (
	"fmt"
	"net/url"
	"strconv"
	"strings"
	"time"

	"repro/internal/classify"
)

// Query bounds. Every limit exists to keep one request from pinning
// the lake: a five-year stride-1 figure request is ~1,800 day
// aggregations, which is the most any batch experiment asks for.
const (
	// MaxRangeDays caps an explicit from/to span (in calendar days,
	// before the stride thins it).
	MaxRangeDays = 2000
	// MaxScanDays caps a /v1/scan span — scans decode records rather
	// than aggregates, so they get a much smaller budget.
	MaxScanDays = 366
	// MaxQuantiles caps a quantiles= list.
	MaxQuantiles = 16
	// MaxServices caps a service= list.
	MaxServices = 16
	// MaxCSVRecords caps limit= on a CSV record scan.
	MaxCSVRecords = 1_000_000
	// DefaultCSVRecords is the record cap when limit= is absent.
	DefaultCSVRecords = 10_000
)

// BadRequestError is a client error: the handler answers 400 with the
// message and never runs the query. Anything that parses cleanly but
// asks for more than the bounds above is also a BadRequestError — a
// malformed or oversized request must never start a partial scan.
type BadRequestError struct{ Msg string }

// Error implements error.
func (e *BadRequestError) Error() string { return e.Msg }

// badf builds a BadRequestError.
func badf(format string, args ...any) error {
	return &BadRequestError{Msg: fmt.Sprintf(format, args...)}
}

// Query is one parsed, validated request. Zero fields mean "not
// given"; each endpoint applies its own defaults on top.
type Query struct {
	// From/To bound the day range, inclusive; zero means the figure's
	// default window. To is never set without From.
	From, To time.Time
	// Stride thins an explicit From/To range (0 = endpoint default).
	Stride int
	// Services filters per-service figures and scans.
	Services []classify.Service
	// Tech is "", "adsl" or "ftth".
	Tech string
	// Proto filters scan records by web-protocol label (e.g. QUIC).
	Proto string
	// Quantiles parameterises distribution figures; each in (0, 1].
	Quantiles []float64
	// Points is the fig4 smoothing resolution (0 = default).
	Points int
	// SrvPort is an inclusive server-port range pushed down into the
	// scan; HasSrvPort gates it.
	HasSrvPort           bool
	SrvPortLo, SrvPortHi uint16
	// Limit caps CSV scan records (0 = DefaultCSVRecords).
	Limit int
	// Format is "json" (default) or "csv".
	Format string
	// Stream selects chunked CSV streaming on /v1/scan: no record cap,
	// flushed at day boundaries, completion signalled via HTTP
	// trailers. Mutually exclusive with limit=.
	Stream bool
}

// queryKeys is the full accepted parameter vocabulary. Unknown keys
// are rejected rather than ignored: a typo'd filter (servcie=Netflix)
// silently dropped would run a *broader* query than the client asked
// for, which is the exact failure mode admission control exists to
// prevent.
var queryKeys = map[string]bool{
	"from": true, "to": true, "stride": true, "service": true,
	"tech": true, "proto": true, "quantiles": true, "points": true,
	"srvport": true, "limit": true, "format": true, "stream": true,
}

// ParseQuery parses and validates URL query parameters. All errors
// are BadRequestError (HTTP 400); it never panics on any input — the
// FuzzParseQuery fuzzer holds it to that.
func ParseQuery(values url.Values) (Query, error) {
	var q Query
	for key, vals := range values {
		if !queryKeys[key] {
			return q, badf("unknown parameter %q", key)
		}
		if len(vals) != 1 && key != "service" {
			return q, badf("parameter %q given %d times", key, len(vals))
		}
		for _, v := range vals {
			if len(v) > 256 {
				return q, badf("parameter %q too long", key)
			}
		}
	}
	var err error
	if s := values.Get("from"); s != "" {
		if q.From, err = parseDay(s); err != nil {
			return q, badf("bad from=%q: want YYYY-MM-DD", s)
		}
	}
	if s := values.Get("to"); s != "" {
		if q.From.IsZero() {
			return q, badf("to= requires from=")
		}
		if q.To, err = parseDay(s); err != nil {
			return q, badf("bad to=%q: want YYYY-MM-DD", s)
		}
	} else if !q.From.IsZero() {
		q.To = q.From
	}
	if !q.From.IsZero() {
		if q.To.Before(q.From) {
			return q, badf("empty range: to=%s before from=%s",
				q.To.Format("2006-01-02"), q.From.Format("2006-01-02"))
		}
		if days := int(q.To.Sub(q.From).Hours()/24) + 1; days > MaxRangeDays {
			return q, badf("range of %d days exceeds the %d-day limit", days, MaxRangeDays)
		}
	}
	if s := values.Get("stride"); s != "" {
		if q.Stride, err = parseInt(s, 1, 366); err != nil {
			return q, badf("bad stride=%q: %v", s, err)
		}
	}
	for _, raw := range values["service"] {
		for _, name := range strings.Split(raw, ",") {
			if name == "" {
				return q, badf("empty service name")
			}
			if len(name) > 64 || !printable(name) {
				return q, badf("bad service name %q", name)
			}
			q.Services = append(q.Services, classify.Service(name))
			if len(q.Services) > MaxServices {
				return q, badf("more than %d services", MaxServices)
			}
		}
	}
	switch s := values.Get("tech"); s {
	case "", "adsl", "ftth":
		q.Tech = s
	default:
		return q, badf("bad tech=%q (want adsl or ftth)", s)
	}
	if s := values.Get("proto"); s != "" {
		if len(s) > 32 || !printable(s) {
			return q, badf("bad proto=%q", s)
		}
		q.Proto = s
	}
	if s := values.Get("quantiles"); s != "" {
		for _, part := range strings.Split(s, ",") {
			f, ferr := strconv.ParseFloat(part, 64)
			if ferr != nil || f != f /* NaN */ || f <= 0 || f > 1 {
				return q, badf("bad quantile %q: want a number in (0, 1]", part)
			}
			q.Quantiles = append(q.Quantiles, f)
			if len(q.Quantiles) > MaxQuantiles {
				return q, badf("more than %d quantiles", MaxQuantiles)
			}
		}
	}
	if s := values.Get("points"); s != "" {
		if q.Points, err = parseInt(s, 2, 200); err != nil {
			return q, badf("bad points=%q: %v", s, err)
		}
	}
	if s := values.Get("srvport"); s != "" {
		lo, hi, perr := parsePortRange(s)
		if perr != nil {
			return q, perr
		}
		q.HasSrvPort, q.SrvPortLo, q.SrvPortHi = true, lo, hi
	}
	if s := values.Get("limit"); s != "" {
		if q.Limit, err = parseInt(s, 1, MaxCSVRecords); err != nil {
			return q, badf("bad limit=%q: %v", s, err)
		}
	}
	switch s := values.Get("format"); s {
	case "", "json":
		q.Format = "json"
	case "csv":
		q.Format = "csv"
	default:
		return q, badf("bad format=%q (want json or csv)", s)
	}
	switch s := values.Get("stream"); s {
	case "", "false":
	case "true":
		q.Stream = true
	default:
		return q, badf("bad stream=%q (want true or false)", s)
	}
	if q.Stream && q.Format != "csv" {
		return q, badf("stream=true requires format=csv")
	}
	if q.Stream && q.Limit != 0 {
		return q, badf("stream=true and limit= are mutually exclusive (a stream is uncapped)")
	}
	return q, nil
}

// parseDay parses a strict YYYY-MM-DD UTC day.
func parseDay(s string) (time.Time, error) {
	t, err := time.Parse("2006-01-02", s)
	if err != nil {
		return time.Time{}, err
	}
	return t.UTC(), nil
}

// parseInt parses a bounded decimal integer.
func parseInt(s string, lo, hi int) (int, error) {
	v, err := strconv.Atoi(s)
	if err != nil {
		return 0, fmt.Errorf("want an integer")
	}
	if v < lo || v > hi {
		return 0, fmt.Errorf("want %d..%d", lo, hi)
	}
	return v, nil
}

// parsePortRange parses "443" or "6881-6999" — the edgequery -srvport
// grammar, strictly (no whitespace, no signs).
func parsePortRange(s string) (lo, hi uint16, err error) {
	loS, hiS, ranged := strings.Cut(s, "-")
	l, lerr := strconv.ParseUint(loS, 10, 16)
	if lerr != nil {
		return 0, 0, badf("bad srvport=%q (want port or lo-hi)", s)
	}
	h := l
	if ranged {
		if h, err = strconv.ParseUint(hiS, 10, 16); err != nil {
			return 0, 0, badf("bad srvport=%q (want port or lo-hi)", s)
		}
	}
	if h < l {
		return 0, 0, badf("bad srvport=%q: empty range", s)
	}
	return uint16(l), uint16(h), nil
}

// printable rejects control characters and non-ASCII in identifier-ish
// parameters (service and protocol names are ASCII in this dataset).
func printable(s string) bool {
	for i := 0; i < len(s); i++ {
		if s[i] < 0x20 || s[i] > 0x7e {
			return false
		}
	}
	return true
}
