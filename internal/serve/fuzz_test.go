package serve

// FuzzParseQuery holds the query-parameter boundary: whatever arrives
// on the wire, ParseQuery either accepts it into a Query whose fields
// all satisfy their documented bounds, or rejects it with a
// BadRequestError (HTTP 400). It must never panic, and it must never
// hand a handler an out-of-bounds value that would start a partial or
// runaway scan.

import (
	"errors"
	"net/url"
	"testing"
)

func FuzzParseQuery(f *testing.F) {
	seeds := []string{
		"",
		"from=2014-04-01&to=2014-04-30",
		"from=2017-06-10",
		"stride=7&points=25",
		"quantiles=0.5,0.9,0.99",
		"service=YouTube,Netflix&tech=ftth",
		"srvport=443",
		"srvport=6881-6999&proto=QUIC",
		"limit=1000&format=csv",
		"format=json&tech=adsl",
		"from=2014-04-30&to=2014-04-01", // inverted range
		"from=0000-00-00&to=9999-99-99", // degenerate dates
		"quantiles=0,1.5,NaN,-0.5",      // out-of-domain quantiles
		"srvport=99999&limit=-1",        // overflow + negative
		"bogus=1",                       // unknown key
		"service=" + string(rune(0x7f)), // non-printable service
		"from=2014-04-01&to=2999-12-31", // over-long range
		"quantiles=0.5,0.5,0.5,0.5,0.5,0.5,0.5,0.5,0.5,0.5,0.5,0.5,0.5,0.5,0.5,0.5,0.5",
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, raw string) {
		values, err := url.ParseQuery(raw)
		if err != nil {
			return // not a well-formed query string; the mux rejects it upstream
		}
		q, err := ParseQuery(values)
		if err != nil {
			var bad *BadRequestError
			if !errors.As(err, &bad) {
				t.Fatalf("ParseQuery(%q): non-400 error %v", raw, err)
			}
			if bad.Msg == "" {
				t.Fatalf("ParseQuery(%q): 400 with no message", raw)
			}
			return
		}
		// Accepted: every field must be inside its documented bounds.
		if q.To.Before(q.From) {
			t.Errorf("ParseQuery(%q): to %v before from %v", raw, q.To, q.From)
		}
		if q.From.IsZero() != q.To.IsZero() {
			t.Errorf("ParseQuery(%q): half-open range from=%v to=%v", raw, q.From, q.To)
		}
		if !q.From.IsZero() && q.To.Sub(q.From) > MaxRangeDays*24*3600*1e9 {
			t.Errorf("ParseQuery(%q): range %v-%v exceeds MaxRangeDays", raw, q.From, q.To)
		}
		if q.Stride < 0 || q.Stride > 366 {
			t.Errorf("ParseQuery(%q): stride %d out of bounds", raw, q.Stride)
		}
		if q.Points < 0 || (q.Points != 0 && (q.Points < 2 || q.Points > 200)) {
			t.Errorf("ParseQuery(%q): points %d out of bounds", raw, q.Points)
		}
		if len(q.Quantiles) > MaxQuantiles {
			t.Errorf("ParseQuery(%q): %d quantiles exceed the cap", raw, len(q.Quantiles))
		}
		for _, v := range q.Quantiles {
			if !(v > 0 && v <= 1) { // NaN fails this too
				t.Errorf("ParseQuery(%q): quantile %v out of (0,1]", raw, v)
			}
		}
		if len(q.Services) > MaxServices {
			t.Errorf("ParseQuery(%q): %d services exceed the cap", raw, len(q.Services))
		}
		if q.Tech != "" && q.Tech != "adsl" && q.Tech != "ftth" {
			t.Errorf("ParseQuery(%q): tech %q not in vocabulary", raw, q.Tech)
		}
		if q.HasSrvPort && q.SrvPortLo > q.SrvPortHi {
			t.Errorf("ParseQuery(%q): inverted port range %d-%d", raw, q.SrvPortLo, q.SrvPortHi)
		}
		if !q.HasSrvPort && (q.SrvPortLo != 0 || q.SrvPortHi != 0) {
			t.Errorf("ParseQuery(%q): port bounds set without HasSrvPort", raw)
		}
		if q.Limit < 0 || q.Limit > MaxCSVRecords {
			t.Errorf("ParseQuery(%q): limit %d out of bounds", raw, q.Limit)
		}
		if q.Format != "" && q.Format != "json" && q.Format != "csv" {
			t.Errorf("ParseQuery(%q): format %q not in vocabulary", raw, q.Format)
		}
	})
}
