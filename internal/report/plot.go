package report

import (
	"fmt"
	"io"
	"math"
	"strings"
)

// Text plotting: sparklines and heatmaps, enough to see the paper's
// time-series shapes — trends, knees, sudden steps — directly in
// terminal output.

// sparkLevels are the eight block characters of a sparkline.
var sparkLevels = []rune("▁▂▃▄▅▆▇█")

// Spark renders values as a sparkline string, scaled to [min, max] of
// the data. NaNs render as spaces.
func Spark(values []float64) string {
	if len(values) == 0 {
		return ""
	}
	lo, hi := math.Inf(1), math.Inf(-1)
	for _, v := range values {
		if math.IsNaN(v) {
			continue
		}
		lo = math.Min(lo, v)
		hi = math.Max(hi, v)
	}
	if math.IsInf(lo, 1) { // all NaN
		return strings.Repeat(" ", len(values))
	}
	var sb strings.Builder
	for _, v := range values {
		switch {
		case math.IsNaN(v):
			sb.WriteByte(' ')
		case hi == lo:
			sb.WriteRune(sparkLevels[0])
		default:
			i := int((v - lo) / (hi - lo) * float64(len(sparkLevels)-1))
			if i < 0 {
				i = 0
			}
			if i >= len(sparkLevels) {
				i = len(sparkLevels) - 1
			}
			sb.WriteRune(sparkLevels[i])
		}
	}
	return sb.String()
}

// SparkRow writes one labelled sparkline with its range, e.g.
//
//	ADSL down   223.1 ▁▂▃▅▆▇█ 556.2  (MB)
func SparkRow(w io.Writer, label string, values []float64, unit string) error {
	if len(values) == 0 {
		_, err := fmt.Fprintf(w, "%-14s (no data)\n", label)
		return err
	}
	first, last := values[0], values[len(values)-1]
	_, err := fmt.Fprintf(w, "%-14s %8s %s %-8s %s\n", label, F(first), Spark(values), F(last), unit)
	return err
}

// shadeLevels are the heatmap cells from empty to full.
var shadeLevels = []rune(" ░▒▓█")

// Heatmap writes one shaded row per series, all scaled to scaleMax
// (values clamp). It is the text rendering of Figure 5's heatmaps,
// where a common palette cap ("the multi-color palette is set to 10%")
// keeps small services visible.
func Heatmap(w io.Writer, labels []string, rows [][]float64, scaleMax float64, unit string) error {
	width := 0
	for _, l := range labels {
		if len(l) > width {
			width = len(l)
		}
	}
	for i, row := range rows {
		var sb strings.Builder
		for _, v := range row {
			if math.IsNaN(v) {
				sb.WriteByte(' ')
				continue
			}
			f := v / scaleMax
			if f < 0 {
				f = 0
			}
			if f > 1 {
				f = 1
			}
			sb.WriteRune(shadeLevels[int(f*float64(len(shadeLevels)-1)+0.5)])
		}
		label := ""
		if i < len(labels) {
			label = labels[i]
		}
		if _, err := fmt.Fprintf(w, "%-*s |%s|\n", width, label, sb.String()); err != nil {
			return err
		}
	}
	_, err := fmt.Fprintf(w, "%-*s  scale: full block = %s%s\n", width, "", F(scaleMax), unit)
	return err
}
