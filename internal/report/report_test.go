package report

import (
	"bytes"
	"strings"
	"testing"
	"time"
)

func TestTableAlignment(t *testing.T) {
	var buf bytes.Buffer
	err := Table(&buf, []string{"name", "value"}, [][]string{
		{"short", "1"},
		{"a-much-longer-name", "22222"},
	})
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimRight(buf.String(), "\n"), "\n")
	if len(lines) != 4 {
		t.Fatalf("lines = %d: %q", len(lines), buf.String())
	}
	if !strings.HasPrefix(lines[0], "name") {
		t.Errorf("header: %q", lines[0])
	}
	if !strings.Contains(lines[1], "---") {
		t.Errorf("rule: %q", lines[1])
	}
	// The value column starts at the same offset in every row.
	off := strings.Index(lines[2], "1")
	if strings.Index(lines[3], "22222") != off {
		t.Errorf("columns misaligned:\n%s", buf.String())
	}
}

func TestTableShortRow(t *testing.T) {
	var buf bytes.Buffer
	// A row with fewer cells than headers must not panic.
	if err := Table(&buf, []string{"a", "b", "c"}, [][]string{{"x"}}); err != nil {
		t.Fatal(err)
	}
}

func TestFormatters(t *testing.T) {
	if got := MB(10 << 20); got != "10.0" {
		t.Errorf("MB = %q", got)
	}
	if got := Pct(82.88); got != "82.9%" {
		t.Errorf("Pct = %q", got)
	}
	d := time.Date(2016, 11, 5, 10, 0, 0, 0, time.UTC)
	if Day(d) != "2016-11-05" || Month(d) != "2016-11" {
		t.Errorf("Day/Month = %q/%q", Day(d), Month(d))
	}
	cases := map[float64]string{
		0.5:   "0.50",
		123.4: "123",
		1e7:   "1e+07",
		0.001: "0.001",
		0:     "0.00",
	}
	for in, want := range cases {
		if got := F(in); got != want {
			t.Errorf("F(%v) = %q, want %q", in, got, want)
		}
	}
}

func TestSection(t *testing.T) {
	var buf bytes.Buffer
	if err := Section(&buf, "Figure 2"); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "== Figure 2 ==") {
		t.Errorf("section = %q", buf.String())
	}
}
