package report

import (
	"bytes"
	"math"
	"strings"
	"testing"
)

func TestSparkShape(t *testing.T) {
	s := Spark([]float64{0, 1, 2, 3, 4, 5, 6, 7})
	runes := []rune(s)
	if len(runes) != 8 {
		t.Fatalf("length = %d", len(runes))
	}
	if runes[0] != '▁' || runes[7] != '█' {
		t.Errorf("endpoints = %q", s)
	}
	for i := 1; i < len(runes); i++ {
		if runes[i] < runes[i-1] {
			t.Errorf("not monotone: %q", s)
		}
	}
}

func TestSparkEdgeCases(t *testing.T) {
	if Spark(nil) != "" {
		t.Error("empty input")
	}
	if got := Spark([]float64{5, 5, 5}); got != "▁▁▁" {
		t.Errorf("constant = %q", got)
	}
	nan := math.NaN()
	got := Spark([]float64{nan, 1, nan})
	if []rune(got)[0] != ' ' || []rune(got)[2] != ' ' {
		t.Errorf("NaN cells = %q", got)
	}
	if got := Spark([]float64{nan, nan}); strings.TrimSpace(got) != "" {
		t.Errorf("all-NaN = %q", got)
	}
}

func TestSparkRow(t *testing.T) {
	var buf bytes.Buffer
	if err := SparkRow(&buf, "ADSL down", []float64{100, 200, 300}, "MB"); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"ADSL down", "100", "300", "MB"} {
		if !strings.Contains(out, want) {
			t.Errorf("row %q missing %q", out, want)
		}
	}
	buf.Reset()
	if err := SparkRow(&buf, "empty", nil, ""); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "no data") {
		t.Errorf("empty row = %q", buf.String())
	}
}

func TestHeatmap(t *testing.T) {
	var buf bytes.Buffer
	err := Heatmap(&buf,
		[]string{"Google", "Bing"},
		[][]float64{{0, 5, 10, 20}, {10, math.NaN(), 0, 3}},
		10, "%")
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimRight(buf.String(), "\n"), "\n")
	if len(lines) != 3 {
		t.Fatalf("lines = %d: %q", len(lines), buf.String())
	}
	row0 := []rune(strings.Split(lines[0], "|")[1])
	if row0[0] != ' ' {
		t.Errorf("zero cell = %q", string(row0[0]))
	}
	if row0[2] != '█' || row0[3] != '█' {
		t.Errorf("full and clamped cells = %q", string(row0))
	}
	row1 := []rune(strings.Split(lines[1], "|")[1])
	if row1[1] != ' ' {
		t.Errorf("NaN cell = %q", string(row1[1]))
	}
	if !strings.Contains(lines[2], "scale") {
		t.Errorf("scale line = %q", lines[2])
	}
}
