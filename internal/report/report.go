// Package report renders experiment outputs as fixed-width text
// tables and series — the rows the paper's tables and figure captions
// report, suitable for terminals and for EXPERIMENTS.md.
package report

import (
	"fmt"
	"io"
	"strings"
	"time"
)

// Table writes a fixed-width table with a header row and a rule.
func Table(w io.Writer, headers []string, rows [][]string) error {
	widths := make([]int, len(headers))
	for i, h := range headers {
		widths[i] = len(h)
	}
	for _, row := range rows {
		for i, cell := range row {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	line := func(cells []string) string {
		var sb strings.Builder
		for i, cell := range cells {
			if i > 0 {
				sb.WriteString("  ")
			}
			sb.WriteString(pad(cell, widths[i]))
		}
		return strings.TrimRight(sb.String(), " ")
	}
	if _, err := fmt.Fprintln(w, line(headers)); err != nil {
		return err
	}
	var rule []string
	for _, wd := range widths {
		rule = append(rule, strings.Repeat("-", wd))
	}
	if _, err := fmt.Fprintln(w, line(rule)); err != nil {
		return err
	}
	for _, row := range rows {
		if _, err := fmt.Fprintln(w, line(row)); err != nil {
			return err
		}
	}
	return nil
}

func pad(s string, w int) string {
	if len(s) >= w {
		return s
	}
	return s + strings.Repeat(" ", w-len(s))
}

// Section writes a titled section header.
func Section(w io.Writer, title string) error {
	_, err := fmt.Fprintf(w, "\n== %s ==\n\n", title)
	return err
}

// MB formats bytes as megabytes with one decimal.
func MB(v float64) string { return fmt.Sprintf("%.1f", v/(1<<20)) }

// Pct formats a percentage with one decimal.
func Pct(v float64) string { return fmt.Sprintf("%.1f%%", v) }

// Day formats a date.
func Day(t time.Time) string { return t.Format("2006-01-02") }

// Month formats a month.
func Month(t time.Time) string { return t.Format("2006-01") }

// F formats a float compactly.
func F(v float64) string {
	switch {
	case v != 0 && (v < 0.01 || v >= 1e6):
		return fmt.Sprintf("%.3g", v)
	case v >= 100:
		return fmt.Sprintf("%.0f", v)
	default:
		return fmt.Sprintf("%.2f", v)
	}
}
