package classify

import (
	"sync"
	"testing"
)

func TestTable1Associations(t *testing.T) {
	// The exact examples of Table 1 in the paper.
	c := Default()
	cases := []struct {
		domain string
		want   Service
	}{
		{"facebook.com", "Facebook"},
		{"fbcdn.com", "Facebook"},
		{"fbstatic-a.akamaihd.net", "Facebook"}, // the regexp row
		{"netflix.com", "Netflix"},
		{"nflxvideo.net", "Netflix"},
	}
	for _, cse := range cases {
		if got := c.Lookup(cse.domain); got != cse.want {
			t.Errorf("Lookup(%q) = %q, want %q", cse.domain, got, cse.want)
		}
	}
}

func TestSubdomainSuffixMatch(t *testing.T) {
	c := Default()
	cases := map[string]Service{
		"www.netflix.com":                  "Netflix",
		"occ-0-769-768.1.nflxvideo.net":    "Netflix",
		"r3---sn-hpa7kn7s.googlevideo.com": "YouTube",
		"scontent.xx.fbcdn.net":            "Facebook",
		"scontent.cdninstagram.com":        "Instagram",
		"mmx-ds.cdn.whatsapp.net":          "WhatsApp",
		"WWW.GOOGLE.COM":                   "Google", // case folding
		"google.com.":                      "Google", // trailing dot
	}
	for d, want := range cases {
		if got := c.Lookup(d); got != want {
			t.Errorf("Lookup(%q) = %q, want %q", d, got, want)
		}
	}
}

func TestNoFalsePositives(t *testing.T) {
	c := Default()
	for _, d := range []string{
		"",
		"example.com",
		"notfacebook.com",         // suffix must break on label boundary
		"facebook.com.evil.org",   // forged prefix
		"akamaihd.net",            // bare CDN is not Facebook
		"static.akamaihd.net",     // non-fbstatic host on the CDN
		"fbstatic-9.akamaihd.net", // regexp requires [a-z]+
	} {
		if got := c.Lookup(d); got != Unknown {
			t.Errorf("Lookup(%q) = %q, want unknown", d, got)
		}
	}
}

func TestRegexpOnlyWholeMatch(t *testing.T) {
	c := Default()
	if got := c.Lookup("fbstatic-a.akamaihd.net.example.org"); got != Unknown {
		t.Errorf("anchored regexp leaked: %q", got)
	}
}

func TestLongestSuffixWins(t *testing.T) {
	c, err := New([]Rule{
		{Suffix: "example.com", Service: "Generic"},
		{Suffix: "video.example.com", Service: "Video"},
	})
	if err != nil {
		t.Fatal(err)
	}
	if got := c.Lookup("cdn.video.example.com"); got != "Video" {
		t.Errorf("Lookup = %q, want Video", got)
	}
	if got := c.Lookup("www.example.com"); got != "Generic" {
		t.Errorf("Lookup = %q, want Generic", got)
	}
}

func TestSuffixBeatsRegexp(t *testing.T) {
	c, err := New([]Rule{
		{Regexp: `^.*\.example\.com$`, Service: "ByRegexp"},
		{Suffix: "example.com", Service: "BySuffix"},
	})
	if err != nil {
		t.Fatal(err)
	}
	if got := c.Lookup("a.example.com"); got != "BySuffix" {
		t.Errorf("Lookup = %q, want BySuffix", got)
	}
}

func TestNewRejectsBadRules(t *testing.T) {
	bad := [][]Rule{
		{{Service: "X"}}, // empty rule
		{{Suffix: "a.com", Regexp: "^a$", Service: "X"}}, // both set
		{{Regexp: "([", Service: "X"}},                   // bad regexp
		{{Suffix: "...", Service: "X"}},                  // empty after trim
	}
	for i, rules := range bad {
		if _, err := New(rules); err == nil {
			t.Errorf("case %d accepted", i)
		}
	}
}

func TestServicesList(t *testing.T) {
	c := Default()
	services := c.Services()
	set := make(map[Service]bool, len(services))
	for _, s := range services {
		set[s] = true
	}
	for _, want := range FigureServices {
		if !set[want] {
			t.Errorf("rule set missing figure service %q", want)
		}
	}
	for i := 1; i < len(services); i++ {
		if services[i-1] >= services[i] {
			t.Errorf("Services not sorted: %v", services)
		}
	}
}

func TestVisitThreshold(t *testing.T) {
	if VisitThreshold("Facebook") <= VisitThreshold("WhatsApp") {
		t.Error("embed-heavy Facebook should need a larger threshold than WhatsApp")
	}
	if VisitThreshold("NoSuchService") != 10<<10 {
		t.Errorf("default threshold = %d", VisitThreshold("NoSuchService"))
	}
}

func TestMemoConsistencyUnderConcurrency(t *testing.T) {
	c := Default()
	domains := []string{"www.netflix.com", "x.fbcdn.net", "unknown.example", "cdn.spotify.com"}
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				d := domains[i%len(domains)]
				want := c.lookupSlow(d)
				if got := c.Lookup(d); got != want {
					t.Errorf("Lookup(%q) = %q, want %q", d, got, want)
					return
				}
			}
		}()
	}
	wg.Wait()
}

func BenchmarkLookupMemoized(b *testing.B) {
	c := Default()
	c.Lookup("r4---sn-hpa7kn7z.googlevideo.com")
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		c.Lookup("r4---sn-hpa7kn7z.googlevideo.com")
	}
}

func BenchmarkLookupCold(b *testing.B) {
	c := Default()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		c.lookupSlow("r4---sn-hpa7kn7z.googlevideo.com")
	}
}

func TestLookupIDNameRoundTrip(t *testing.T) {
	c := Default()
	if c.NumServices() < 3 {
		t.Fatalf("NumServices = %d", c.NumServices())
	}
	if got := c.ServiceName(UnknownID); got != Unknown {
		t.Errorf("ServiceName(UnknownID) = %q", got)
	}
	for _, svc := range c.Services() {
		id, ok := c.IDOf(svc)
		if !ok {
			t.Fatalf("IDOf(%q) missing", svc)
		}
		if got := c.ServiceName(id); got != svc {
			t.Errorf("ServiceName(IDOf(%q)) = %q", svc, got)
		}
	}
	if _, ok := c.IDOf(Service("NoSuchService")); ok {
		t.Error("IDOf accepted an unknown service")
	}
	if got := c.ServiceName(ServiceID(10000)); got != Unknown {
		t.Errorf("out-of-range ServiceName = %q", got)
	}
	// Lookup and LookupID must agree on every path: exact, regexp, miss.
	for _, name := range []string{"www.netflix.com", "r3---sn-ab12cd34.googlevideo.com", "no-service.example.org", ""} {
		if got, want := c.ServiceName(c.LookupID(name)), c.Lookup(name); got != want {
			t.Errorf("LookupID(%q) -> %q, Lookup -> %q", name, got, want)
		}
	}
}

func TestLookupIDMemoWarmZeroAlloc(t *testing.T) {
	c := Default()
	names := []string{"www.netflix.com", "r3---sn-ab12cd34.googlevideo.com", "scontent.xx.fbcdn.net"}
	for _, n := range names {
		c.LookupID(n) // warm the memo
	}
	if allocs := testing.AllocsPerRun(200, func() {
		for _, n := range names {
			c.LookupID(n)
		}
	}); allocs != 0 {
		t.Errorf("memo-warm LookupID allocates %.1f per run, want 0", allocs)
	}
}

// BenchmarkClassifyLookup is the stage-one hot path: memo-warm ID
// lookups across exact-match, regexp and miss inputs.
func BenchmarkClassifyLookup(b *testing.B) {
	c := Default()
	names := []string{
		"www.netflix.com", "r3---sn-ab12cd34.googlevideo.com",
		"scontent.xx.fbcdn.net", "no-service.example.org",
	}
	for _, n := range names {
		c.LookupID(n)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if id := c.LookupID(names[i&3]); i&3 == 0 && id == UnknownID {
			b.Fatal("netflix unclassified")
		}
	}
}
