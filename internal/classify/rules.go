package classify

// DefaultRules is the reproduction's counterpart of the paper's
// curated domain→service list (Table 1 shows a sample; the full list
// was published alongside the paper). It covers the seventeen
// services of Figure 5 plus the P2P label. The traffic simulator
// draws server names from these same families, so the association is
// exercised exactly the way the paper's pipeline exercises its list.
var DefaultRules = []Rule{
	// Google search & friends (not YouTube).
	{Suffix: "google.com", Service: "Google"},
	{Suffix: "google.it", Service: "Google"},
	{Suffix: "gstatic.com", Service: "Google"},
	{Suffix: "googleapis.com", Service: "Google"},

	// YouTube: the three domain generations of Figure 11i.
	{Suffix: "youtube.com", Service: "YouTube"},
	{Suffix: "ytimg.com", Service: "YouTube"},
	{Suffix: "googlevideo.com", Service: "YouTube"},
	{Suffix: "gvt1.com", Service: "YouTube"},

	// Bing / Microsoft telemetry family.
	{Suffix: "bing.com", Service: "Bing"},
	{Suffix: "bing.net", Service: "Bing"},

	{Suffix: "duckduckgo.com", Service: "DuckDuckGo"},

	// Facebook: own domains, CDN domain, and the Akamai-hosted static
	// farm matched by regexp exactly as in Table 1.
	{Suffix: "facebook.com", Service: "Facebook"},
	{Suffix: "fbcdn.net", Service: "Facebook"},
	{Suffix: "fbcdn.com", Service: "Facebook"},
	{Suffix: "facebook.net", Service: "Facebook"},
	{Regexp: `^fbstatic-[a-z]+\.akamaihd\.net$`, Service: "Facebook"},
	{Regexp: `^fbcdn-[a-z]+-[a-z0-9-]+\.akamaihd\.net$`, Service: "Facebook"},

	// Instagram: own domain, CDN domain, and its Akamai-era hostnames.
	{Suffix: "instagram.com", Service: "Instagram"},
	{Suffix: "cdninstagram.com", Service: "Instagram"},
	{Regexp: `^instagram(static|-)[a-z0-9-]+\.akamaihd\.net$`, Service: "Instagram"},

	{Suffix: "twitter.com", Service: "Twitter"},
	{Suffix: "twimg.com", Service: "Twitter"},

	{Suffix: "linkedin.com", Service: "LinkedIn"},
	{Suffix: "licdn.com", Service: "LinkedIn"},

	// Netflix (Table 1).
	{Suffix: "netflix.com", Service: "Netflix"},
	{Suffix: "nflxvideo.net", Service: "Netflix"},
	{Suffix: "nflximg.net", Service: "Netflix"},

	// Adult aggregate.
	{Suffix: "pornhub.com", Service: "Adult"},
	{Suffix: "xvideos.com", Service: "Adult"},
	{Suffix: "phncdn.com", Service: "Adult"},
	{Suffix: "xhamster.com", Service: "Adult"},

	{Suffix: "spotify.com", Service: "Spotify"},
	{Suffix: "scdn.co", Service: "Spotify"},

	{Suffix: "skype.com", Service: "Skype"},

	{Suffix: "whatsapp.net", Service: "WhatsApp"},
	{Suffix: "whatsapp.com", Service: "WhatsApp"},

	{Suffix: "telegram.org", Service: "Telegram"},
	{Suffix: "t.me", Service: "Telegram"},

	{Suffix: "snapchat.com", Service: "SnapChat"},
	{Suffix: "sc-cdn.net", Service: "SnapChat"},

	{Suffix: "amazon.com", Service: "Amazon"},
	{Suffix: "amazon.it", Service: "Amazon"},
	{Suffix: "ssl-images-amazon.com", Service: "Amazon"},
	{Suffix: "media-amazon.com", Service: "Amazon"},

	{Suffix: "ebay.com", Service: "Ebay"},
	{Suffix: "ebay.it", Service: "Ebay"},
	{Suffix: "ebaystatic.com", Service: "Ebay"},

	// P2P flows carry no domain; the probe labels them by port/payload
	// heuristics and the pipeline maps tracker domains here.
	{Suffix: "thepiratebay.org", Service: "Peer-To-Peer"},
	{Suffix: "emule-project.net", Service: "Peer-To-Peer"},
}

// FigureServices lists the services of Figure 5 in the paper's row
// order (top to bottom).
var FigureServices = []Service{
	"Google", "Bing", "DuckDuckGo",
	"Facebook", "Instagram", "Twitter", "LinkedIn",
	"YouTube", "Netflix", "Adult", "Spotify", "Skype",
	"WhatsApp", "Telegram", "SnapChat",
	"Amazon", "Ebay",
	"Peer-To-Peer",
}

// Default returns a classifier compiled from DefaultRules. It panics
// on error because the rules are a compile-time constant: failure is
// a programming bug, not an input condition.
func Default() *Classifier {
	c, err := New(DefaultRules)
	if err != nil {
		panic(err)
	}
	return c
}
