package classify

import (
	"bufio"
	"fmt"
	"io"
	"strings"
)

// Rules-file support. The paper publishes its full domain→service list
// as a downloadable file; operators curate it continuously (section
// 2.3: "our team has to manually define and update rules"). The format
// here is line-oriented and diff-friendly:
//
//	# comment
//	suffix  netflix.com        Netflix
//	suffix  nflxvideo.net      Netflix
//	regexp  ^fbstatic-[a-z]+\.akamaihd\.net$   Facebook
//
// Fields are whitespace-separated; service names with spaces are not
// supported (none exist).

// ParseRules reads a rule file.
func ParseRules(r io.Reader) ([]Rule, error) {
	var rules []Rule
	sc := bufio.NewScanner(r)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		fields := strings.Fields(line)
		if len(fields) != 3 {
			return nil, fmt.Errorf("classify: rules line %d: want 'kind pattern service', got %q", lineNo, line)
		}
		kind, pattern, service := fields[0], fields[1], Service(fields[2])
		switch kind {
		case "suffix":
			rules = append(rules, Rule{Suffix: pattern, Service: service})
		case "regexp":
			rules = append(rules, Rule{Regexp: pattern, Service: service})
		default:
			return nil, fmt.Errorf("classify: rules line %d: unknown kind %q", lineNo, kind)
		}
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("classify: reading rules: %w", err)
	}
	return rules, nil
}

// WriteRules writes rules in the ParseRules format, so a curated
// ruleset can round-trip through files.
func WriteRules(w io.Writer, rules []Rule) error {
	bw := bufio.NewWriter(w)
	fmt.Fprintln(bw, "# domain-to-service associations (suffix|regexp  pattern  service)")
	for _, r := range rules {
		var err error
		switch {
		case r.Suffix != "":
			_, err = fmt.Fprintf(bw, "suffix\t%s\t%s\n", r.Suffix, r.Service)
		case r.Regexp != "":
			_, err = fmt.Fprintf(bw, "regexp\t%s\t%s\n", r.Regexp, r.Service)
		}
		if err != nil {
			return fmt.Errorf("classify: writing rules: %w", err)
		}
	}
	return bw.Flush()
}
