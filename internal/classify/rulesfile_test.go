package classify

import (
	"bytes"
	"strings"
	"testing"
)

func TestParseRules(t *testing.T) {
	in := `
# the Table 1 sample
suffix	netflix.com	Netflix
suffix  nflxvideo.net   Netflix

regexp	^fbstatic-[a-z]+\.akamaihd\.net$	Facebook
`
	rules, err := ParseRules(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if len(rules) != 3 {
		t.Fatalf("rules = %d, want 3", len(rules))
	}
	c, err := New(rules)
	if err != nil {
		t.Fatal(err)
	}
	if c.Lookup("www.netflix.com") != "Netflix" {
		t.Error("suffix rule not applied")
	}
	if c.Lookup("fbstatic-a.akamaihd.net") != "Facebook" {
		t.Error("regexp rule not applied")
	}
}

func TestParseRulesErrors(t *testing.T) {
	cases := []string{
		"suffix netflix.com",        // missing service
		"sufix netflix.com Netflix", // typo kind
		"suffix a b c d",            // too many fields
	}
	for _, in := range cases {
		if _, err := ParseRules(strings.NewReader(in)); err == nil {
			t.Errorf("accepted %q", in)
		}
	}
}

func TestRulesRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteRules(&buf, DefaultRules); err != nil {
		t.Fatal(err)
	}
	back, err := ParseRules(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(back) != len(DefaultRules) {
		t.Fatalf("round trip: %d rules, want %d", len(back), len(DefaultRules))
	}
	// The round-tripped classifier behaves identically on a probe set.
	orig := Default()
	rt, err := New(back)
	if err != nil {
		t.Fatal(err)
	}
	for _, d := range []string{
		"www.netflix.com", "fbstatic-a.akamaihd.net", "r1.googlevideo.com",
		"unknown.example.org", "scontent.cdninstagram.com", "e3.whatsapp.net",
	} {
		if orig.Lookup(d) != rt.Lookup(d) {
			t.Errorf("divergence on %q: %q vs %q", d, orig.Lookup(d), rt.Lookup(d))
		}
	}
}
