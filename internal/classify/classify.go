// Package classify associates flow records with web services from the
// server domain name — the methodology of section 2.2 of the paper
// (Table 1). Matching is by domain suffix for the common case, with
// regular-expression rules for the tangled ones, plus the per-service
// byte thresholds of section 4.1 that separate intentional visits from
// third-party-embed noise.
package classify

import (
	"fmt"
	"regexp"
	"sort"
	"strings"
	"sync"
)

// Service is a canonical service name ("Facebook", "Netflix", ...).
type Service string

// Unknown is the classification of flows matching no rule.
const Unknown Service = ""

// Rule associates one domain pattern with a service.
type Rule struct {
	// Suffix matches the domain itself and any subdomain, e.g.
	// "netflix.com" matches "netflix.com" and "www.netflix.com".
	// Empty when Regexp is set.
	Suffix string
	// Regexp matches the whole domain when set (Table 1's
	// "^fbstatic-[a-z].akamaihd.net$" case).
	Regexp string
	// Service is the classification the rule yields.
	Service Service
}

// Classifier answers domain → service queries. It is safe for
// concurrent use after construction.
type Classifier struct {
	exact map[string]Service // suffix table keyed by label-sequence
	regex []compiledRule

	mu   sync.RWMutex
	memo map[string]Service
}

type compiledRule struct {
	re      *regexp.Regexp
	service Service
}

// memoLimit bounds the domain-lookup cache.
const memoLimit = 1 << 18

// New compiles a rule set. Suffix rules must be bare domains
// (no leading dot); regexp rules must compile.
func New(rules []Rule) (*Classifier, error) {
	c := &Classifier{
		exact: make(map[string]Service, len(rules)),
		memo:  make(map[string]Service),
	}
	for i, r := range rules {
		switch {
		case r.Suffix != "" && r.Regexp != "":
			return nil, fmt.Errorf("classify: rule %d sets both suffix and regexp", i)
		case r.Suffix != "":
			s := strings.ToLower(strings.Trim(r.Suffix, "."))
			if s == "" {
				return nil, fmt.Errorf("classify: rule %d has empty suffix", i)
			}
			c.exact[s] = r.Service
		case r.Regexp != "":
			re, err := regexp.Compile(r.Regexp)
			if err != nil {
				return nil, fmt.Errorf("classify: rule %d: %w", i, err)
			}
			c.regex = append(c.regex, compiledRule{re: re, service: r.Service})
		default:
			return nil, fmt.Errorf("classify: rule %d is empty", i)
		}
	}
	return c, nil
}

// Lookup classifies a domain. Suffix rules win over regexp rules, and
// longer suffixes win over shorter ones, so "video.netflix.com" can be
// carved out of "netflix.com" if ever needed.
func (c *Classifier) Lookup(domain string) Service {
	domain = strings.ToLower(strings.Trim(domain, "."))
	if domain == "" {
		return Unknown
	}
	c.mu.RLock()
	s, ok := c.memo[domain]
	c.mu.RUnlock()
	if ok {
		return s
	}
	s = c.lookupSlow(domain)
	c.mu.Lock()
	if len(c.memo) < memoLimit {
		c.memo[domain] = s
	}
	c.mu.Unlock()
	return s
}

func (c *Classifier) lookupSlow(domain string) Service {
	// Walk suffixes from most to least specific.
	d := domain
	for {
		if s, ok := c.exact[d]; ok {
			return s
		}
		i := strings.IndexByte(d, '.')
		if i < 0 {
			break
		}
		d = d[i+1:]
	}
	for _, r := range c.regex {
		if r.re.MatchString(domain) {
			return r.service
		}
	}
	return Unknown
}

// Services returns the distinct service names of the rule set, sorted.
func (c *Classifier) Services() []Service {
	set := make(map[Service]bool)
	for _, s := range c.exact {
		set[s] = true
	}
	for _, r := range c.regex {
		set[r.service] = true
	}
	out := make([]Service, 0, len(set))
	for s := range set {
		out = append(out, s)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// VisitThreshold returns the minimum bytes a subscriber must exchange
// with a service in a day before they count as having visited it —
// the section 4.1 heuristic. Services whose social buttons and
// telemetry beacons pollute third-party pages (Facebook, Google, ...)
// get larger thresholds; pure destination services get small ones.
func VisitThreshold(s Service) uint64 {
	if v, ok := visitThresholds[s]; ok {
		return v
	}
	return 10 << 10 // 10 KB default
}

// visitThresholds, in bytes per subscriber per day.
var visitThresholds = map[Service]uint64{
	"Facebook":     200 << 10, // social buttons everywhere
	"Google":       100 << 10, // fonts/analytics/apis
	"Twitter":      100 << 10, // embedded timelines
	"Instagram":    50 << 10,
	"LinkedIn":     50 << 10,
	"Amazon":       50 << 10, // ads and affiliate pixels
	"Bing":         5 << 10,  // Windows telemetry counts as "use"
	"DuckDuckGo":   5 << 10,
	"YouTube":      300 << 10, // embedded players
	"Netflix":      100 << 10,
	"Adult":        50 << 10,
	"Spotify":      50 << 10,
	"Skype":        20 << 10,
	"WhatsApp":     5 << 10,
	"Telegram":     5 << 10,
	"SnapChat":     10 << 10,
	"Ebay":         20 << 10,
	"Peer-To-Peer": 10 << 10,
}
