// Package classify associates flow records with web services from the
// server domain name — the methodology of section 2.2 of the paper
// (Table 1). Matching is by domain suffix for the common case, with
// regular-expression rules for the tangled ones, plus the per-service
// byte thresholds of section 4.1 that separate intentional visits from
// third-party-embed noise.
package classify

import (
	"fmt"
	"regexp"
	"sort"
	"strings"
	"sync"
)

// Service is a canonical service name ("Facebook", "Netflix", ...).
type Service string

// Unknown is the classification of flows matching no rule.
const Unknown Service = ""

// P2P is the label of peer-to-peer traffic. It carries no domain — the
// probe recognises it from payload heuristics — so every classifier
// interns it even when no tracker-domain rule mentions it.
const P2P Service = "Peer-To-Peer"

// ServiceID is a dense, classifier-scoped service index assigned at
// rule-compile time. IDs let the per-record reduce path replace string
// keys with slice indices; they are stable for a given rule list
// (assignment follows rule order) but are NOT portable across
// classifiers — exported data always uses Service names.
type ServiceID uint16

// UnknownID is the ServiceID of Unknown in every classifier.
const UnknownID ServiceID = 0

// Rule associates one domain pattern with a service.
type Rule struct {
	// Suffix matches the domain itself and any subdomain, e.g.
	// "netflix.com" matches "netflix.com" and "www.netflix.com".
	// Empty when Regexp is set.
	Suffix string
	// Regexp matches the whole domain when set (Table 1's
	// "^fbstatic-[a-z].akamaihd.net$" case).
	Regexp string
	// Service is the classification the rule yields.
	Service Service
}

// Classifier answers domain → service queries. It is safe for
// concurrent use after construction.
type Classifier struct {
	exact map[string]ServiceID // suffix table keyed by label-sequence
	regex []compiledRule

	// The ID table, immutable after New: names[id] is the service of
	// id, ids its inverse. names[UnknownID] == Unknown always.
	names []Service
	ids   map[Service]ServiceID

	mu   sync.RWMutex
	memo map[string]ServiceID
}

type compiledRule struct {
	re *regexp.Regexp
	id ServiceID
}

// memoLimit bounds the domain-lookup cache.
const memoLimit = 1 << 18

// New compiles a rule set. Suffix rules must be bare domains
// (no leading dot); regexp rules must compile.
func New(rules []Rule) (*Classifier, error) {
	c := &Classifier{
		exact: make(map[string]ServiceID, len(rules)),
		names: []Service{Unknown},
		ids:   map[Service]ServiceID{Unknown: UnknownID},
		memo:  make(map[string]ServiceID),
	}
	for i, r := range rules {
		switch {
		case r.Suffix != "" && r.Regexp != "":
			return nil, fmt.Errorf("classify: rule %d sets both suffix and regexp", i)
		case r.Suffix != "":
			s := strings.ToLower(strings.Trim(r.Suffix, "."))
			if s == "" {
				return nil, fmt.Errorf("classify: rule %d has empty suffix", i)
			}
			c.exact[s] = c.intern(r.Service)
		case r.Regexp != "":
			re, err := regexp.Compile(r.Regexp)
			if err != nil {
				return nil, fmt.Errorf("classify: rule %d: %w", i, err)
			}
			c.regex = append(c.regex, compiledRule{re: re, id: c.intern(r.Service)})
		default:
			return nil, fmt.Errorf("classify: rule %d is empty", i)
		}
	}
	c.intern(P2P) // always addressable, domain or not
	return c, nil
}

// intern assigns (or returns) the dense ID of a service. Only New may
// call it: the table is immutable once the classifier is shared.
func (c *Classifier) intern(s Service) ServiceID {
	if id, ok := c.ids[s]; ok {
		return id
	}
	id := ServiceID(len(c.names))
	c.names = append(c.names, s)
	c.ids[s] = id
	return id
}

// Lookup classifies a domain. Suffix rules win over regexp rules, and
// longer suffixes win over shorter ones, so "video.netflix.com" can be
// carved out of "netflix.com" if ever needed.
func (c *Classifier) Lookup(domain string) Service {
	return c.names[c.LookupID(domain)]
}

// LookupID classifies a domain to its dense service ID — the form the
// aggregation hot path wants. Already-normalised domains (lowercase,
// no surrounding dots), which is all a probe ever exports, take a
// zero-allocation path.
func (c *Classifier) LookupID(domain string) ServiceID {
	domain = strings.TrimFunc(domain, isDot)
	domain = strings.ToLower(domain) // no-op (and no alloc) when already lower
	if domain == "" {
		return UnknownID
	}
	c.mu.RLock()
	id, ok := c.memo[domain]
	c.mu.RUnlock()
	if ok {
		return id
	}
	id = c.lookupSlowID(domain)
	c.mu.Lock()
	if len(c.memo) < memoLimit {
		c.memo[domain] = id
	}
	c.mu.Unlock()
	return id
}

func isDot(r rune) bool { return r == '.' }

func (c *Classifier) lookupSlow(domain string) Service {
	return c.names[c.lookupSlowID(domain)]
}

func (c *Classifier) lookupSlowID(domain string) ServiceID {
	// Walk suffixes from most to least specific.
	d := domain
	for {
		if id, ok := c.exact[d]; ok {
			return id
		}
		i := strings.IndexByte(d, '.')
		if i < 0 {
			break
		}
		d = d[i+1:]
	}
	for _, r := range c.regex {
		if r.re.MatchString(domain) {
			return r.id
		}
	}
	return UnknownID
}

// ServiceName returns the service of a dense ID. IDs outside this
// classifier's table (which only LookupID/IDOf hand out) map to
// Unknown rather than panicking, so stale IDs degrade gracefully.
func (c *Classifier) ServiceName(id ServiceID) Service {
	if int(id) >= len(c.names) {
		return Unknown
	}
	return c.names[id]
}

// IDOf returns the dense ID of a service, if the classifier knows it.
func (c *Classifier) IDOf(s Service) (ServiceID, bool) {
	id, ok := c.ids[s]
	return id, ok
}

// NumServices returns the size of the dense ID space, Unknown
// included: valid IDs are [0, NumServices).
func (c *Classifier) NumServices() int { return len(c.names) }

// Services returns the distinct service names of the rule set, sorted.
func (c *Classifier) Services() []Service {
	set := make(map[Service]bool)
	for _, id := range c.exact {
		set[c.names[id]] = true
	}
	for _, r := range c.regex {
		set[c.names[r.id]] = true
	}
	out := make([]Service, 0, len(set))
	for s := range set {
		out = append(out, s)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// VisitThreshold returns the minimum bytes a subscriber must exchange
// with a service in a day before they count as having visited it —
// the section 4.1 heuristic. Services whose social buttons and
// telemetry beacons pollute third-party pages (Facebook, Google, ...)
// get larger thresholds; pure destination services get small ones.
func VisitThreshold(s Service) uint64 {
	if v, ok := visitThresholds[s]; ok {
		return v
	}
	return 10 << 10 // 10 KB default
}

// visitThresholds, in bytes per subscriber per day.
var visitThresholds = map[Service]uint64{
	"Facebook":     200 << 10, // social buttons everywhere
	"Google":       100 << 10, // fonts/analytics/apis
	"Twitter":      100 << 10, // embedded timelines
	"Instagram":    50 << 10,
	"LinkedIn":     50 << 10,
	"Amazon":       50 << 10, // ads and affiliate pixels
	"Bing":         5 << 10,  // Windows telemetry counts as "use"
	"DuckDuckGo":   5 << 10,
	"YouTube":      300 << 10, // embedded players
	"Netflix":      100 << 10,
	"Adult":        50 << 10,
	"Spotify":      50 << 10,
	"Skype":        20 << 10,
	"WhatsApp":     5 << 10,
	"Telegram":     5 << 10,
	"SnapChat":     10 << 10,
	"Ebay":         20 << 10,
	"Peer-To-Peer": 10 << 10,
}
