package metrics

import (
	"strings"
	"sync"
	"testing"
	"time"
)

func TestCounterGauge(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("x.count")
	c.Inc()
	c.Add(41)
	if got := c.Load(); got != 42 {
		t.Errorf("counter = %d, want 42", got)
	}
	if r.Counter("x.count") != c {
		t.Error("second lookup returned a different counter")
	}
	g := r.Gauge("x.depth")
	g.Set(7)
	g.Add(-3)
	if got := g.Load(); got != 4 {
		t.Errorf("gauge = %d, want 4", got)
	}
}

func TestHistogramBucketsAndQuantiles(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("x.h", "", []int64{10, 100, 1000})
	for v := int64(1); v <= 100; v++ {
		h.Observe(v) // 10 in (..10], 90 in (10..100]
	}
	h.Observe(5000) // overflow bucket
	if h.Count() != 101 {
		t.Fatalf("count = %d, want 101", h.Count())
	}
	if got := h.Quantile(0.5); got != 100 {
		t.Errorf("p50 = %d, want 100 (bucket bound)", got)
	}
	if got := h.Quantile(1.0); got != 5000 {
		t.Errorf("p100 = %d, want observed max 5000", got)
	}
	if got := h.Quantile(0.01); got != 10 {
		t.Errorf("p1 = %d, want 10", got)
	}
}

func TestHistogramEmptyQuantile(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("x.h", "", DepthBuckets())
	if got := h.Quantile(0.99); got != 0 {
		t.Errorf("empty histogram quantile = %d, want 0", got)
	}
}

func TestTimerUnit(t *testing.T) {
	r := NewRegistry()
	tm := r.Timer("stage.wall")
	tm.ObserveDuration(3 * time.Millisecond)
	if tm.Unit() != "ns" {
		t.Errorf("timer unit = %q", tm.Unit())
	}
	if tm.Sum() != int64(3*time.Millisecond) {
		t.Errorf("timer sum = %d", tm.Sum())
	}
}

func TestKindMismatchPanics(t *testing.T) {
	r := NewRegistry()
	r.Counter("dual")
	defer func() {
		if recover() == nil {
			t.Error("gauge lookup of a counter name did not panic")
		}
	}()
	r.Gauge("dual")
}

func TestSnapshotSortedAndComplete(t *testing.T) {
	r := NewRegistry()
	r.Counter("b.two").Add(2)
	r.Counter("a.one").Add(1)
	r.Gauge("c.three").Set(3)
	r.Timer("d.four").ObserveDuration(time.Second)

	rows := r.Snapshot()
	if len(rows) != 4 {
		t.Fatalf("snapshot has %d rows, want 4", len(rows))
	}
	wantOrder := []string{"a.one", "b.two", "c.three", "d.four"}
	for i, name := range wantOrder {
		if rows[i].Name != name {
			t.Errorf("row %d = %q, want %q", i, rows[i].Name, name)
		}
	}
	if rows[0].Value != 1 || rows[1].Value != 2 || rows[2].Value != 3 {
		t.Errorf("values = %d,%d,%d", rows[0].Value, rows[1].Value, rows[2].Value)
	}
	if rows[3].Kind != KindTimer || rows[3].Count != 1 {
		t.Errorf("timer row = %+v", rows[3])
	}
}

func TestWriteText(t *testing.T) {
	r := NewRegistry()
	r.Counter("probe.packets").Add(123)
	r.Histogram("probe.queue", "", DepthBuckets()).Observe(5)
	r.Timer("stage1.day_wall").ObserveDuration(2 * time.Millisecond)

	var sb strings.Builder
	if err := r.WriteText(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{"probe.packets", "123", "stage1.day_wall", "count=1", "2ms"} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
}

func TestReset(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("x")
	h := r.Timer("y")
	c.Add(5)
	h.ObserveDuration(time.Second)
	r.Reset()
	if c.Load() != 0 || h.Count() != 0 || h.Sum() != 0 {
		t.Errorf("reset left values: c=%d hc=%d hs=%d", c.Load(), h.Count(), h.Sum())
	}
	h.ObserveDuration(time.Millisecond)
	if got := h.Quantile(0.5); got != int64(time.Millisecond) {
		t.Errorf("post-reset p50 = %d (min tracking not restored)", got)
	}
}

// TestConcurrentUpdates exercises the lock-free paths under the race
// detector.
func TestConcurrentUpdates(t *testing.T) {
	r := NewRegistry()
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			c := r.Counter("shared.count")
			h := r.Histogram("shared.h", "", DepthBuckets())
			g := r.Gauge("shared.g")
			for j := 0; j < 1000; j++ {
				c.Inc()
				h.Observe(int64(j % 64))
				g.Add(1)
				g.Add(-1)
			}
		}()
	}
	wg.Wait()
	if got := r.Counter("shared.count").Load(); got != 8000 {
		t.Errorf("count = %d, want 8000", got)
	}
	if got := r.Histogram("shared.h", "", nil).Count(); got != 8000 {
		t.Errorf("hist count = %d, want 8000", got)
	}
	if got := r.Gauge("shared.g").Load(); got != 0 {
		t.Errorf("gauge = %d, want 0", got)
	}
}

func BenchmarkCounterInc(b *testing.B) {
	c := NewRegistry().Counter("bench")
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		c.Inc()
	}
}

func BenchmarkHistogramObserve(b *testing.B) {
	h := NewRegistry().Timer("bench")
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		h.Observe(int64(i) % int64(time.Second))
	}
}
