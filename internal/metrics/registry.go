package metrics

import (
	"fmt"
	"io"
	"sort"
	"strings"
	"sync"
	"time"
)

// Kind discriminates registered metric types.
type Kind uint8

// Metric kinds.
const (
	KindCounter Kind = iota
	KindGauge
	KindHistogram
	KindTimer // a Histogram of nanosecond durations
)

// String names the kind.
func (k Kind) String() string {
	switch k {
	case KindCounter:
		return "counter"
	case KindGauge:
		return "gauge"
	case KindHistogram:
		return "histogram"
	case KindTimer:
		return "timer"
	}
	return "unknown"
}

// entry is one registered metric.
type entry struct {
	kind Kind
	c    *Counter
	g    *Gauge
	h    *Histogram
}

// Registry holds named metrics. Lookup/registration takes a lock;
// returned metric handles are lock-free, so callers fetch them once
// (package init, constructor) and update them on hot paths.
type Registry struct {
	mu sync.Mutex
	m  map[string]*entry
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{m: make(map[string]*entry)}
}

// Default is the process-wide registry every package publishes to and
// the -stats flags render.
var Default = NewRegistry()

// lookup returns the entry for name, creating it with mk on first use.
// A name registered under a different kind is a wiring bug and panics.
func (r *Registry) lookup(name string, kind Kind, mk func() *entry) *entry {
	r.mu.Lock()
	defer r.mu.Unlock()
	e, ok := r.m[name]
	if !ok {
		e = mk()
		r.m[name] = e
		return e
	}
	if e.kind != kind {
		panic(fmt.Sprintf("metrics: %q registered as %v, requested as %v", name, e.kind, kind))
	}
	return e
}

// Counter returns the named counter, registering it on first use.
func (r *Registry) Counter(name string) *Counter {
	return r.lookup(name, KindCounter, func() *entry {
		return &entry{kind: KindCounter, c: &Counter{}}
	}).c
}

// Gauge returns the named gauge, registering it on first use.
func (r *Registry) Gauge(name string) *Gauge {
	return r.lookup(name, KindGauge, func() *entry {
		return &entry{kind: KindGauge, g: &Gauge{}}
	}).g
}

// Histogram returns the named histogram, registering it on first use
// with the given unit and bucket bounds (ignored on later lookups).
func (r *Registry) Histogram(name, unit string, bounds []int64) *Histogram {
	return r.lookup(name, KindHistogram, func() *entry {
		return &entry{kind: KindHistogram, h: newHistogram(unit, bounds)}
	}).h
}

// Timer returns the named duration histogram (unit ns, 1µs–500s
// buckets), registering it on first use.
func (r *Registry) Timer(name string) *Histogram {
	return r.lookup(name, KindTimer, func() *entry {
		return &entry{kind: KindTimer, h: newHistogram("ns", DurationBuckets())}
	}).h
}

// Reset zeroes every registered metric (names stay registered). Used
// between benchmark iterations and tests.
func (r *Registry) Reset() {
	r.mu.Lock()
	defer r.mu.Unlock()
	for _, e := range r.m {
		switch e.kind {
		case KindCounter:
			e.c.v.Store(0)
		case KindGauge:
			e.g.v.Store(0)
		default:
			e.h.reset()
		}
	}
}

// Row is one metric in a snapshot.
type Row struct {
	Name string
	Kind Kind
	Unit string

	// Value carries the counter or gauge reading.
	Value int64

	// Histogram/timer summary.
	Count               uint64
	Sum, Min, Max       int64
	Mean, P50, P90, P99 int64
}

// Snapshot captures every registered metric, sorted by name.
func (r *Registry) Snapshot() []Row {
	r.mu.Lock()
	names := make([]string, 0, len(r.m))
	for name := range r.m {
		names = append(names, name)
	}
	entries := make([]*entry, 0, len(names))
	sort.Strings(names)
	for _, name := range names {
		entries = append(entries, r.m[name])
	}
	r.mu.Unlock()

	rows := make([]Row, 0, len(names))
	for i, name := range names {
		e := entries[i]
		row := Row{Name: name, Kind: e.kind}
		switch e.kind {
		case KindCounter:
			row.Value = int64(e.c.Load())
		case KindGauge:
			row.Value = e.g.Load()
		default:
			h := e.h
			row.Unit = h.unit
			row.Count = h.Count()
			row.Sum = h.Sum()
			if row.Count > 0 {
				row.Min = h.min.Load()
				row.Max = h.max.Load()
				row.Mean = row.Sum / int64(row.Count)
				row.P50 = h.Quantile(0.50)
				row.P90 = h.Quantile(0.90)
				row.P99 = h.Quantile(0.99)
			}
		}
		rows = append(rows, row)
	}
	return rows
}

// WriteText renders the registry as an aligned text table, grouped by
// the dotted name prefix (probe.*, store.*, stage1.*, ...).
func (r *Registry) WriteText(w io.Writer) error {
	rows := r.Snapshot()
	if len(rows) == 0 {
		_, err := fmt.Fprintln(w, "(no metrics registered)")
		return err
	}
	width := 0
	for _, row := range rows {
		if len(row.Name) > width {
			width = len(row.Name)
		}
	}
	if _, err := fmt.Fprintf(w, "%-*s  %-9s  %s\n", width, "metric", "kind", "value"); err != nil {
		return err
	}
	prevGroup := ""
	for _, row := range rows {
		group, _, _ := strings.Cut(row.Name, ".")
		if prevGroup != "" && group != prevGroup {
			if _, err := fmt.Fprintln(w); err != nil {
				return err
			}
		}
		prevGroup = group
		if _, err := fmt.Fprintf(w, "%-*s  %-9s  %s\n", width, row.Name, row.Kind, row.render()); err != nil {
			return err
		}
	}
	return nil
}

// render formats a row's value column.
func (row Row) render() string {
	switch row.Kind {
	case KindCounter, KindGauge:
		return fmt.Sprintf("%d", row.Value)
	}
	if row.Count == 0 {
		return "count=0"
	}
	f := func(v int64) string { return formatValue(v, row.Unit) }
	return fmt.Sprintf("count=%d min=%s p50=%s p90=%s p99=%s max=%s mean=%s",
		row.Count, f(row.Min), f(row.P50), f(row.P90), f(row.P99), f(row.Max), f(row.Mean))
}

// formatValue renders v in the histogram's unit.
func formatValue(v int64, unit string) string {
	switch unit {
	case "ns":
		return time.Duration(v).Round(time.Microsecond).String()
	case "B":
		return formatBytes(v)
	}
	return fmt.Sprintf("%d", v)
}

// formatBytes renders a byte count human-readably.
func formatBytes(v int64) string {
	switch {
	case v >= 1<<30:
		return fmt.Sprintf("%.1fGiB", float64(v)/float64(1<<30))
	case v >= 1<<20:
		return fmt.Sprintf("%.1fMiB", float64(v)/float64(1<<20))
	case v >= 1<<10:
		return fmt.Sprintf("%.1fKiB", float64(v)/float64(1<<10))
	}
	return fmt.Sprintf("%dB", v)
}

// Package-level conveniences over the Default registry.

// GetCounter returns a counter from the default registry.
func GetCounter(name string) *Counter { return Default.Counter(name) }

// GetGauge returns a gauge from the default registry.
func GetGauge(name string) *Gauge { return Default.Gauge(name) }

// GetHistogram returns a histogram from the default registry.
func GetHistogram(name, unit string, bounds []int64) *Histogram {
	return Default.Histogram(name, unit, bounds)
}

// GetTimer returns a duration histogram from the default registry.
func GetTimer(name string) *Histogram { return Default.Timer(name) }

// WriteText renders the default registry.
func WriteText(w io.Writer) error { return Default.WriteText(w) }

// Reset zeroes the default registry.
func Reset() { Default.Reset() }
