// Package metrics is the pipeline's self-monitoring substrate: a
// stdlib-only, allocation-free instrumentation layer of atomic
// counters, gauges and fixed-bucket histograms behind a named
// registry. The paper's operators had to notice probe outages,
// parse-error storms and stage-one stragglers across five years of
// unattended operation (section 2.3 reports the resulting data gaps);
// every layer of this reproduction publishes its health here, and the
// -stats flag on each binary renders the registry as a text table
// after the run.
//
// Hot-path discipline: counter and histogram updates are single atomic
// operations with no allocation, so they are safe to leave enabled in
// production paths. Registration (the only locking, allocating
// operation) happens once, at package init or setup time.
package metrics

import (
	"math"
	"sync/atomic"
	"time"
)

// Counter is a monotonically increasing atomic counter.
type Counter struct {
	v atomic.Uint64
}

// Inc adds one.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n.
func (c *Counter) Add(n uint64) { c.v.Add(n) }

// Load returns the current value.
func (c *Counter) Load() uint64 { return c.v.Load() }

// Gauge is an instantaneous value that can move both ways (queue
// depth, worker occupancy, open flows).
type Gauge struct {
	v atomic.Int64
}

// Set stores v.
func (g *Gauge) Set(v int64) { g.v.Store(v) }

// Add moves the gauge by delta (negative to decrease).
func (g *Gauge) Add(delta int64) { g.v.Add(delta) }

// Load returns the current value.
func (g *Gauge) Load() int64 { return g.v.Load() }

// Histogram counts int64 observations into fixed buckets. Bucket i
// holds observations v <= bounds[i]; one implicit overflow bucket
// catches the rest. Observe is a handful of atomic operations and
// never allocates; bounds are fixed at construction.
type Histogram struct {
	bounds []int64
	counts []atomic.Uint64 // len(bounds)+1, last = overflow
	count  atomic.Uint64
	sum    atomic.Int64
	min    atomic.Int64 // MaxInt64 until first observation
	max    atomic.Int64

	// unit labels rendered values: "ns" formats as durations, "B" as
	// byte sizes, "" as plain integers.
	unit string
}

// newHistogram builds a histogram with the given ascending bounds.
func newHistogram(unit string, bounds []int64) *Histogram {
	h := &Histogram{
		bounds: bounds,
		counts: make([]atomic.Uint64, len(bounds)+1),
		unit:   unit,
	}
	h.min.Store(math.MaxInt64)
	return h
}

// Observe records one value.
func (h *Histogram) Observe(v int64) {
	// Binary search for the first bound >= v; bounds are short (tens
	// of entries), so this is a few cache-hot comparisons.
	lo, hi := 0, len(h.bounds)
	for lo < hi {
		mid := (lo + hi) / 2
		if v <= h.bounds[mid] {
			hi = mid
		} else {
			lo = mid + 1
		}
	}
	h.counts[lo].Add(1)
	h.count.Add(1)
	h.sum.Add(v)
	atomicMin(&h.min, v)
	atomicMax(&h.max, v)
}

// ObserveDuration records a duration (for timer-flavoured histograms,
// whose unit is nanoseconds).
func (h *Histogram) ObserveDuration(d time.Duration) { h.Observe(int64(d)) }

// ObserveSince records the time elapsed since t0.
func (h *Histogram) ObserveSince(t0 time.Time) { h.Observe(int64(time.Since(t0))) }

// Count returns the number of observations.
func (h *Histogram) Count() uint64 { return h.count.Load() }

// Sum returns the sum of all observed values.
func (h *Histogram) Sum() int64 { return h.sum.Load() }

// Unit returns the histogram's value unit ("ns", "B" or "").
func (h *Histogram) Unit() string { return h.unit }

// Quantile estimates the q-quantile (0 < q <= 1) from bucket counts:
// the upper bound of the bucket where the cumulative count crosses
// q*total, clamped to the observed min/max. Zero observations yield 0.
func (h *Histogram) Quantile(q float64) int64 {
	total := h.count.Load()
	if total == 0 {
		return 0
	}
	target := uint64(math.Ceil(q * float64(total)))
	if target == 0 {
		target = 1
	}
	var cum uint64
	est := h.max.Load()
	for i := range h.counts {
		cum += h.counts[i].Load()
		if cum >= target {
			if i < len(h.bounds) {
				est = h.bounds[i]
			}
			break
		}
	}
	if mn := h.min.Load(); est < mn {
		est = mn
	}
	if mx := h.max.Load(); est > mx {
		est = mx
	}
	return est
}

// reset zeroes the histogram.
func (h *Histogram) reset() {
	for i := range h.counts {
		h.counts[i].Store(0)
	}
	h.count.Store(0)
	h.sum.Store(0)
	h.min.Store(math.MaxInt64)
	h.max.Store(0)
}

func atomicMin(a *atomic.Int64, v int64) {
	for {
		cur := a.Load()
		if v >= cur || a.CompareAndSwap(cur, v) {
			return
		}
	}
}

func atomicMax(a *atomic.Int64, v int64) {
	for {
		cur := a.Load()
		if v <= cur || a.CompareAndSwap(cur, v) {
			return
		}
	}
}

// DurationBuckets returns a 1-2-5 series from 1µs to 500s (in
// nanoseconds) — wide enough for packet-level operations and per-day
// stage-one wall times alike.
func DurationBuckets() []int64 {
	var out []int64
	for base := int64(time.Microsecond); base <= int64(100*time.Second); base *= 10 {
		out = append(out, base, 2*base, 5*base)
	}
	return out
}

// DepthBuckets returns power-of-two bounds 0..4096 for queue-depth
// style histograms.
func DepthBuckets() []int64 {
	out := []int64{0}
	for b := int64(1); b <= 4096; b *= 2 {
		out = append(out, b)
	}
	return out
}

// SizeBuckets returns power-of-four byte-size bounds 64B..256MB.
func SizeBuckets() []int64 {
	var out []int64
	for b := int64(64); b <= 256<<20; b *= 4 {
		out = append(out, b)
	}
	return out
}
