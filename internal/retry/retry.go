// Package retry implements the pipeline's shared retry helper: capped
// exponential backoff with deterministic jitter, applied only to
// errors classified as transient. The paper's pipeline ran unattended
// for five years against flaky storage; transient read failures must
// be absorbed by backing off and re-reading, while permanent damage
// (a corrupt gzip, a bad day file) must surface immediately so the
// caller can quarantine and degrade instead of spinning.
package retry

import (
	"context"
	"time"
)

// Policy describes one retry discipline. The zero value performs a
// single attempt with no backoff — retrying is always opt-in.
type Policy struct {
	// Attempts is the total number of tries, including the first.
	// Values below 1 mean exactly one attempt.
	Attempts int
	// Base is the delay before the first re-attempt; each further
	// re-attempt doubles it, capped at Max.
	Base time.Duration
	// Max caps the backoff delay. Zero means no cap.
	Max time.Duration
	// Seed drives the deterministic jitter so the same (seed, key,
	// attempt) always backs off the same amount — reproducible runs
	// stay reproducible under retries.
	Seed uint64
	// Sleep, when set, replaces the context-aware wait between
	// attempts (tests use a no-op to avoid real delays).
	Sleep func(time.Duration)
	// OnRetry, when set, observes each re-attempt before its backoff
	// wait (metrics hooks).
	OnRetry func(attempt int, err error)
}

// Do runs op until it succeeds, returns a non-transient error, the
// attempts are exhausted, or ctx is done. key distinguishes call sites
// working on different items (e.g. a day's Unix timestamp) so their
// jittered delays do not synchronise into a thundering herd.
func (p Policy) Do(ctx context.Context, key uint64, op func() error) error {
	attempts := p.Attempts
	if attempts < 1 {
		attempts = 1
	}
	var err error
	for attempt := 1; attempt <= attempts; attempt++ {
		if attempt > 1 {
			if p.OnRetry != nil {
				p.OnRetry(attempt, err)
			}
			if werr := p.wait(ctx, p.Backoff(key, attempt-1)); werr != nil {
				return werr
			}
		}
		if ctx != nil {
			if cerr := ctx.Err(); cerr != nil {
				return cerr
			}
		}
		if err = op(); err == nil || !Transient(err) {
			return err
		}
	}
	return err
}

// Backoff returns the jittered delay before re-attempt n (n >= 1):
// Base·2^(n-1) capped at Max, scaled into [50%, 100%] by the
// deterministic jitter.
func (p Policy) Backoff(key uint64, n int) time.Duration {
	if p.Base <= 0 {
		return 0
	}
	d := p.Base
	for i := 1; i < n; i++ {
		d *= 2
		if p.Max > 0 && d >= p.Max {
			d = p.Max
			break
		}
	}
	if p.Max > 0 && d > p.Max {
		d = p.Max
	}
	// Jitter in [0.5, 1.0): half the spread keeps the exponential
	// shape visible while de-synchronising concurrent retriers.
	frac := float64(mix(p.Seed^key^uint64(n)))/float64(1<<64-1)*0.5 + 0.5
	return time.Duration(float64(d) * frac)
}

// wait blocks for d or until ctx is done, whichever comes first.
func (p Policy) wait(ctx context.Context, d time.Duration) error {
	if p.Sleep != nil {
		p.Sleep(d)
		return nil
	}
	if d <= 0 {
		return nil
	}
	if ctx == nil {
		time.Sleep(d)
		return nil
	}
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-ctx.Done():
		return ctx.Err()
	case <-t.C:
		return nil
	}
}

// Transient reports whether err is marked retryable anywhere in its
// chain, via the conventional interface{ Transient() bool }.
func Transient(err error) bool {
	for err != nil {
		if t, ok := err.(interface{ Transient() bool }); ok {
			return t.Transient()
		}
		switch u := err.(type) {
		case interface{ Unwrap() error }:
			err = u.Unwrap()
		case interface{ Unwrap() []error }:
			for _, e := range u.Unwrap() {
				if Transient(e) {
					return true
				}
			}
			return false
		default:
			return false
		}
	}
	return false
}

// mix is SplitMix64's output function: a statistically solid 64-bit
// scramble, cheap enough for per-decision use.
func mix(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// errTransient adapts any error to a transient one (test injectors).
type errTransient struct{ err error }

func (e errTransient) Error() string   { return e.err.Error() }
func (e errTransient) Unwrap() error   { return e.err }
func (e errTransient) Transient() bool { return true }

// MarkTransient wraps err so Transient reports true for it.
func MarkTransient(err error) error {
	if err == nil {
		return nil
	}
	return errTransient{err}
}
