package retry

import (
	"context"
	"errors"
	"fmt"
	"testing"
	"time"
)

func TestDoStopsOnSuccess(t *testing.T) {
	calls := 0
	p := Policy{Attempts: 5, Sleep: func(time.Duration) {}}
	err := p.Do(context.Background(), 1, func() error {
		calls++
		if calls < 3 {
			return MarkTransient(errors.New("blip"))
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if calls != 3 {
		t.Errorf("calls = %d, want 3", calls)
	}
}

func TestDoDoesNotRetryPermanent(t *testing.T) {
	calls := 0
	p := Policy{Attempts: 5, Sleep: func(time.Duration) {}}
	boom := errors.New("disk on fire")
	err := p.Do(context.Background(), 1, func() error {
		calls++
		return boom
	})
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v", err)
	}
	if calls != 1 {
		t.Errorf("permanent error retried: %d calls", calls)
	}
}

func TestDoExhaustsAttempts(t *testing.T) {
	calls, retries := 0, 0
	p := Policy{
		Attempts: 4,
		Sleep:    func(time.Duration) {},
		OnRetry:  func(int, error) { retries++ },
	}
	err := p.Do(context.Background(), 1, func() error {
		calls++
		return MarkTransient(errors.New("still down"))
	})
	if err == nil || !Transient(err) {
		t.Fatalf("err = %v", err)
	}
	if calls != 4 || retries != 3 {
		t.Errorf("calls = %d retries = %d, want 4 and 3", calls, retries)
	}
}

func TestDoRespectsCanceledContext(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	calls := 0
	p := Policy{Attempts: 3, Sleep: func(time.Duration) {}}
	err := p.Do(ctx, 1, func() error { calls++; return nil })
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v", err)
	}
	if calls != 0 {
		t.Errorf("op ran under a canceled context")
	}
}

func TestDoCancelDuringBackoff(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	p := Policy{Attempts: 3, Base: time.Hour}
	start := time.Now()
	go func() {
		time.Sleep(10 * time.Millisecond)
		cancel()
	}()
	err := p.Do(ctx, 1, func() error {
		return MarkTransient(errors.New("blip"))
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v", err)
	}
	if elapsed := time.Since(start); elapsed > time.Second {
		t.Errorf("backoff ignored cancellation: waited %v", elapsed)
	}
}

func TestBackoffDeterministicCappedGrowing(t *testing.T) {
	p := Policy{Attempts: 10, Base: 10 * time.Millisecond, Max: 80 * time.Millisecond, Seed: 7}
	var prev time.Duration
	for n := 1; n <= 8; n++ {
		d1 := p.Backoff(42, n)
		d2 := p.Backoff(42, n)
		if d1 != d2 {
			t.Fatalf("jitter not deterministic at n=%d: %v vs %v", n, d1, d2)
		}
		if d1 > p.Max {
			t.Errorf("n=%d: backoff %v above cap %v", n, d1, p.Max)
		}
		if d1 < p.Base/2 {
			t.Errorf("n=%d: backoff %v below half the base", n, d1)
		}
		if n <= 3 && d1 < prev/2 {
			t.Errorf("n=%d: backoff %v not growing (prev %v)", n, d1, prev)
		}
		prev = d1
	}
	if p.Backoff(1, 1) == p.Backoff(2, 1) {
		t.Error("different keys produced identical jitter (herd risk)")
	}
}

func TestTransientChainWalk(t *testing.T) {
	base := MarkTransient(errors.New("flaky"))
	wrapped := fmt.Errorf("day 2016-04-09: %w", base)
	if !Transient(wrapped) {
		t.Error("wrapped transient not detected")
	}
	joined := errors.Join(errors.New("other"), wrapped)
	if !Transient(joined) {
		t.Error("joined transient not detected")
	}
	if Transient(errors.New("plain")) {
		t.Error("plain error reported transient")
	}
	if Transient(nil) {
		t.Error("nil reported transient")
	}
}
