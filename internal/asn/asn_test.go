package asn

import (
	"testing"
	"testing/quick"
	"time"

	"repro/internal/wire"
)

func mustPrefix(t *testing.T, s string) Prefix {
	t.Helper()
	p, err := ParsePrefix(s)
	if err != nil {
		t.Fatalf("ParsePrefix(%q): %v", s, err)
	}
	return p
}

func TestParsePrefix(t *testing.T) {
	p := mustPrefix(t, "31.13.64.0/18")
	if p.Addr != wire.AddrFrom(31, 13, 64, 0) || p.Bits != 18 {
		t.Errorf("parsed %+v", p)
	}
	if p.String() != "31.13.64.0/18" {
		t.Errorf("String = %q", p.String())
	}
	for _, bad := range []string{"", "1.2.3.4", "1.2.3/8", "1.2.3.4/33", "1.2.3.400/8", "x.y.z.w/8"} {
		if _, err := ParsePrefix(bad); err == nil {
			t.Errorf("ParsePrefix(%q) accepted", bad)
		}
	}
}

func TestPrefixContains(t *testing.T) {
	p := mustPrefix(t, "10.16.0.0/12")
	if !p.Contains(wire.AddrFrom(10, 17, 200, 3)) {
		t.Error("10.17.200.3 should be inside 10.16/12")
	}
	if p.Contains(wire.AddrFrom(10, 32, 0, 0)) {
		t.Error("10.32.0.0 should be outside 10.16/12")
	}
	zero := Prefix{}
	if !zero.Contains(wire.AddrFrom(200, 1, 2, 3)) {
		t.Error("/0 should contain everything")
	}
}

func TestTableLongestPrefixMatch(t *testing.T) {
	var tbl Table
	tbl.Insert(mustPrefix(t, "31.0.0.0/8"), ASTeliaNet)
	tbl.Insert(mustPrefix(t, "31.13.0.0/16"), ASAkamai)
	tbl.Insert(mustPrefix(t, "31.13.64.0/18"), ASFacebook)
	if tbl.Len() != 3 {
		t.Errorf("Len = %d", tbl.Len())
	}
	cases := []struct {
		addr wire.Addr
		want ASNum
	}{
		{wire.AddrFrom(31, 13, 86, 36), ASFacebook}, // most specific
		{wire.AddrFrom(31, 13, 200, 1), ASAkamai},   // /16 only
		{wire.AddrFrom(31, 200, 0, 1), ASTeliaNet},  // /8 only
	}
	for _, c := range cases {
		got, ok := tbl.Lookup(c.addr)
		if !ok || got != c.want {
			t.Errorf("Lookup(%v) = %v,%v want %v", c.addr, got, ok, c.want)
		}
	}
	if _, ok := tbl.Lookup(wire.AddrFrom(8, 8, 8, 8)); ok {
		t.Error("unrouted address matched")
	}
}

func TestTableOverwrite(t *testing.T) {
	var tbl Table
	p := mustPrefix(t, "10.0.0.0/8")
	tbl.Insert(p, ASGoogle)
	tbl.Insert(p, ASFacebook)
	if tbl.Len() != 1 {
		t.Errorf("Len = %d after overwrite", tbl.Len())
	}
	if got, _ := tbl.Lookup(wire.AddrFrom(10, 1, 1, 1)); got != ASFacebook {
		t.Errorf("Lookup = %v, want overwritten value", got)
	}
}

func TestTableHostRoute(t *testing.T) {
	var tbl Table
	tbl.Insert(mustPrefix(t, "192.0.2.1/32"), ASISP)
	if got, ok := tbl.Lookup(wire.AddrFrom(192, 0, 2, 1)); !ok || got != ASISP {
		t.Errorf("host route = %v,%v", got, ok)
	}
	if _, ok := tbl.Lookup(wire.AddrFrom(192, 0, 2, 2)); ok {
		t.Error("neighbouring host matched a /32")
	}
}

func TestTableDefaultRoute(t *testing.T) {
	var tbl Table
	tbl.Insert(Prefix{Bits: 0}, ASGTT)
	if got, ok := tbl.Lookup(wire.AddrFrom(1, 2, 3, 4)); !ok || got != ASGTT {
		t.Errorf("default route = %v,%v", got, ok)
	}
}

func TestEmptyTable(t *testing.T) {
	var tbl Table
	if _, ok := tbl.Lookup(wire.AddrFrom(1, 2, 3, 4)); ok {
		t.Error("empty table matched")
	}
	if tbl.OrgLookup(wire.AddrFrom(1, 2, 3, 4)) != OrgOther {
		t.Error("empty table org != OTHER")
	}
}

// Property: Lookup agrees with a linear scan over the inserted routes.
func TestLPMAgainstLinearScan(t *testing.T) {
	type route struct {
		p  Prefix
		as ASNum
	}
	f := func(seeds []uint32, probe uint32) bool {
		if len(seeds) > 40 {
			seeds = seeds[:40]
		}
		var tbl Table
		routes := make([]route, 0, len(seeds))
		for i, s := range seeds {
			p := Prefix{Addr: wire.AddrFromUint32(s &^ 0xFF), Bits: uint8(8 + (s % 25))}
			// Canonicalise: zero the host bits so Contains and Insert agree.
			mask := ^uint32(0) << (32 - uint32(p.Bits))
			p.Addr = wire.AddrFromUint32(p.Addr.Uint32() & mask)
			as := ASNum(i + 1)
			tbl.Insert(p, as)
			routes = append(routes, route{p, as})
		}
		addr := wire.AddrFromUint32(probe)
		// Linear LPM; later inserts win ties (overwrite semantics).
		bestBits := -1
		var bestAS ASNum
		for _, r := range routes {
			if r.p.Contains(addr) && int(r.p.Bits) >= bestBits {
				bestBits, bestAS = int(r.p.Bits), r.as
			}
		}
		got, ok := tbl.Lookup(addr)
		if bestBits < 0 {
			return !ok
		}
		return ok && got == bestAS
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestOrgOf(t *testing.T) {
	cases := map[ASNum]Org{
		ASFacebook: OrgFacebook, ASAkamai: OrgAkamai, ASGoogle: OrgGoogle,
		ASTeliaNet: OrgTeliaNet, ASGTT: OrgGTT, ASISP: OrgISP, 65000: OrgOther,
	}
	for as, want := range cases {
		if got := OrgOf(as); got != want {
			t.Errorf("OrgOf(%d) = %v, want %v", as, got, want)
		}
	}
}

func TestRIBSetMonthSelection(t *testing.T) {
	var set RIBSet
	early, late := new(Table), new(Table)
	early.Insert(Prefix{Bits: 0}, ASAkamai)
	late.Insert(Prefix{Bits: 0}, ASFacebook)
	// Added out of order on purpose.
	set.Add(time.Date(2016, 1, 15, 0, 0, 0, 0, time.UTC), late)
	set.Add(time.Date(2014, 6, 1, 0, 0, 0, 0, time.UTC), early)

	addr := wire.AddrFrom(31, 13, 86, 36)
	if org := set.OrgLookup(time.Date(2015, 3, 10, 12, 0, 0, 0, time.UTC), addr); org != OrgAkamai {
		t.Errorf("2015 lookup = %v, want AKAMAI", org)
	}
	if org := set.OrgLookup(time.Date(2017, 8, 1, 0, 0, 0, 0, time.UTC), addr); org != OrgFacebook {
		t.Errorf("2017 lookup = %v, want FACEBOOK", org)
	}
	// Same month as a snapshot: uses it.
	if org := set.OrgLookup(time.Date(2016, 1, 1, 0, 0, 0, 0, time.UTC), addr); org != OrgFacebook {
		t.Errorf("snapshot month lookup = %v, want FACEBOOK", org)
	}
	// Before any snapshot.
	if _, ok := set.Lookup(time.Date(2013, 1, 1, 0, 0, 0, 0, time.UTC), addr); ok {
		t.Error("lookup before first snapshot succeeded")
	}
	if org := set.OrgLookup(time.Date(2013, 1, 1, 0, 0, 0, 0, time.UTC), addr); org != OrgOther {
		t.Errorf("pre-history org = %v", org)
	}
}

func TestRIBSetReplaceMonth(t *testing.T) {
	var set RIBSet
	t1, t2 := new(Table), new(Table)
	t1.Insert(Prefix{Bits: 0}, ASGoogle)
	t2.Insert(Prefix{Bits: 0}, ASISP)
	when := time.Date(2015, 5, 2, 0, 0, 0, 0, time.UTC)
	set.Add(when, t1)
	set.Add(when.AddDate(0, 0, 10), t2) // same month replaces
	if got := set.At(when); got != t2 {
		t.Error("same-month Add did not replace")
	}
}

func TestMonthStart(t *testing.T) {
	in := time.Date(2016, 11, 28, 13, 14, 15, 0, time.UTC)
	want := time.Date(2016, 11, 1, 0, 0, 0, 0, time.UTC)
	if !MonthStart(in).Equal(want) {
		t.Errorf("MonthStart = %v", MonthStart(in))
	}
}

func BenchmarkLookup(b *testing.B) {
	var tbl Table
	r := uint32(12345)
	for i := 0; i < 500000; i++ {
		r = r*1664525 + 1013904223
		tbl.Insert(Prefix{Addr: wire.AddrFromUint32(r &^ 0x3FF), Bits: 22}, ASNum(i))
	}
	addr := wire.AddrFrom(31, 13, 86, 36)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tbl.Lookup(addr)
	}
}
