// Package asn maps server IP addresses to Autonomous Systems, the way
// the paper does for Figure 11 ("we use the Routing Information Base
// for each month from a major vantage point in the Route Views project
// to map IP addresses to ASNs"). A Table is a binary radix trie doing
// longest-prefix match; a RIBSet holds one Table per month so lookups
// are made against the routing state of the flow's epoch.
package asn

import (
	"fmt"
	"sort"
	"strconv"
	"strings"
	"time"

	"repro/internal/wire"
)

// Org identifies the organisations the paper's Figure 11 breaks
// traffic down by.
type Org string

// Organisations appearing in Figure 11d-f.
const (
	OrgFacebook Org = "FACEBOOK"
	OrgAkamai   Org = "AKAMAI"
	OrgGoogle   Org = "GOOGLE"
	OrgTeliaNet Org = "TELIANET"
	OrgGTT      Org = "GTT"
	OrgISP      Org = "ISP"
	OrgOther    Org = "OTHER"
)

// ASNum is an autonomous system number.
type ASNum uint32

// Well-known AS numbers used by the synthetic RIBs (real values, so
// reports read naturally).
const (
	ASFacebook ASNum = 32934
	ASAkamai   ASNum = 20940
	ASGoogle   ASNum = 15169
	ASTeliaNet ASNum = 1299
	ASGTT      ASNum = 3257
	ASISP      ASNum = 3269 // the monitored ISP's own AS
)

// OrgOf maps the AS numbers this reproduction uses to organisations.
func OrgOf(as ASNum) Org {
	switch as {
	case ASFacebook:
		return OrgFacebook
	case ASAkamai:
		return OrgAkamai
	case ASGoogle:
		return OrgGoogle
	case ASTeliaNet:
		return OrgTeliaNet
	case ASGTT:
		return OrgGTT
	case ASISP:
		return OrgISP
	default:
		return OrgOther
	}
}

// Prefix is an IPv4 CIDR prefix.
type Prefix struct {
	Addr wire.Addr
	Bits uint8
}

// ParsePrefix parses "a.b.c.d/n".
func ParsePrefix(s string) (Prefix, error) {
	ipStr, bitsStr, ok := strings.Cut(s, "/")
	if !ok {
		return Prefix{}, fmt.Errorf("asn: prefix %q missing '/'", s)
	}
	var o [4]int
	if _, err := fmt.Sscanf(ipStr, "%d.%d.%d.%d", &o[0], &o[1], &o[2], &o[3]); err != nil {
		return Prefix{}, fmt.Errorf("asn: prefix %q: %w", s, err)
	}
	bits, err := strconv.Atoi(bitsStr)
	if err != nil || bits < 0 || bits > 32 {
		return Prefix{}, fmt.Errorf("asn: prefix %q has bad length", s)
	}
	var a wire.Addr
	for i, v := range o {
		if v < 0 || v > 255 {
			return Prefix{}, fmt.Errorf("asn: prefix %q octet out of range", s)
		}
		a[i] = byte(v)
	}
	return Prefix{Addr: a, Bits: uint8(bits)}, nil
}

// String formats the prefix in CIDR notation.
func (p Prefix) String() string { return fmt.Sprintf("%s/%d", p.Addr, p.Bits) }

// Contains reports whether addr falls inside the prefix.
func (p Prefix) Contains(addr wire.Addr) bool {
	if p.Bits == 0 {
		return true
	}
	mask := ^uint32(0) << (32 - uint32(p.Bits))
	return addr.Uint32()&mask == p.Addr.Uint32()&mask
}

// Table is a binary radix trie over IPv4 prefixes, answering
// longest-prefix-match lookups. The zero value is an empty table.
type Table struct {
	root *node
	n    int
}

type node struct {
	child [2]*node
	as    ASNum
	set   bool
}

// Insert adds a route. Later inserts of the same prefix overwrite.
func (t *Table) Insert(p Prefix, as ASNum) {
	if t.root == nil {
		t.root = &node{}
	}
	cur := t.root
	v := p.Addr.Uint32()
	for i := 0; i < int(p.Bits); i++ {
		b := v >> (31 - uint32(i)) & 1
		if cur.child[b] == nil {
			cur.child[b] = &node{}
		}
		cur = cur.child[b]
	}
	if !cur.set {
		t.n++
	}
	cur.as = as
	cur.set = true
}

// Len returns the number of routes.
func (t *Table) Len() int { return t.n }

// Lookup returns the AS of the longest matching prefix, or (0, false)
// when no route covers addr.
func (t *Table) Lookup(addr wire.Addr) (ASNum, bool) {
	if t.root == nil {
		return 0, false
	}
	v := addr.Uint32()
	cur := t.root
	var best ASNum
	found := false
	for i := 0; ; i++ {
		if cur.set {
			best, found = cur.as, true
		}
		if i == 32 {
			break
		}
		b := v >> (31 - uint32(i)) & 1
		if cur.child[b] == nil {
			break
		}
		cur = cur.child[b]
	}
	return best, found
}

// OrgLookup resolves addr to an organisation, OrgOther when unrouted.
func (t *Table) OrgLookup(addr wire.Addr) Org {
	as, ok := t.Lookup(addr)
	if !ok {
		return OrgOther
	}
	return OrgOf(as)
}

// RIBSet holds monthly routing snapshots. Lookups pick the snapshot in
// effect at the flow's timestamp (the latest snapshot not after it).
type RIBSet struct {
	months []time.Time // sorted ascending, truncated to month start
	tables []*Table
}

// MonthStart truncates t to the first of its month, UTC.
func MonthStart(t time.Time) time.Time {
	y, m, _ := t.UTC().Date()
	return time.Date(y, m, 1, 0, 0, 0, 0, time.UTC)
}

// Add registers a snapshot for the month containing when. Snapshots
// may be added in any order; Add keeps the set sorted.
func (r *RIBSet) Add(when time.Time, table *Table) {
	month := MonthStart(when)
	i := sort.Search(len(r.months), func(i int) bool { return !r.months[i].Before(month) })
	if i < len(r.months) && r.months[i].Equal(month) {
		r.tables[i] = table
		return
	}
	r.months = append(r.months, time.Time{})
	r.tables = append(r.tables, nil)
	copy(r.months[i+1:], r.months[i:])
	copy(r.tables[i+1:], r.tables[i:])
	r.months[i] = month
	r.tables[i] = table
}

// At returns the snapshot in effect at when, or nil when the set has
// no snapshot that early.
func (r *RIBSet) At(when time.Time) *Table {
	month := MonthStart(when)
	i := sort.Search(len(r.months), func(i int) bool { return r.months[i].After(month) })
	if i == 0 {
		return nil
	}
	return r.tables[i-1]
}

// Lookup resolves addr against the snapshot in effect at when.
func (r *RIBSet) Lookup(when time.Time, addr wire.Addr) (ASNum, bool) {
	t := r.At(when)
	if t == nil {
		return 0, false
	}
	return t.Lookup(addr)
}

// OrgLookup resolves addr to an organisation at when.
func (r *RIBSet) OrgLookup(when time.Time, addr wire.Addr) Org {
	t := r.At(when)
	if t == nil {
		return OrgOther
	}
	return t.OrgLookup(addr)
}
