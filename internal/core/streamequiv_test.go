package core

import (
	"bytes"
	"context"
	"path/filepath"
	"sync"
	"testing"
	"time"

	"repro/internal/analytics"
	"repro/internal/faultinject"
	"repro/internal/flowrec"
	"repro/internal/ingest"
	"repro/internal/retry"
	"repro/internal/simnet"
)

// Streamed≡batch at the experiment tier: a lake built by the live
// ingest loop — record stream, WAL, incremental checkpoints, rollover
// seals, background compaction to v3 — must be indistinguishable from
// a batch-generated lake to every experiment, serial and sharded,
// byte for byte in canonical aggregates. The streamed build here runs
// the full gauntlet on the way: a chaos schedule faulting checkpoint,
// seal and storage writes (absorbed by retries or degraded and
// re-attempted), plus two process kills mid-stream with recovery and
// resume — one of which lands between checkpoints, the
// crash-between-checkpoints case the WAL exists for.

// buildStreamedStore pushes every chaos day of the colsEq world
// through an Ingester into a fresh lake, with the given fault plans
// and seeded kills, and returns the sealed, compacted store.
func buildStreamedStore(t *testing.T, days []time.Time, planSpec, storageSpec string, kills []uint64) *flowrec.Store {
	t.Helper()
	dir := t.TempDir()
	store, err := flowrec.OpenStoreFormat(filepath.Join(dir, "lake"), flowrec.FormatV1)
	if err != nil {
		t.Fatal(err)
	}
	disk := NewDiskStorage(store, filepath.Join(dir, "agg"))

	var storage ingest.Storage = disk
	if storageSpec != "" {
		plan, err := faultinject.Parse(storageSpec)
		if err != nil {
			t.Fatal(err)
		}
		storage = faultinject.Wrap(disk, plan)
	}
	cfg := ingest.Config{
		Storage:         storage,
		WALDir:          filepath.Join(dir, "lake", flowrec.WALDirName),
		CheckpointEvery: 512,
		Compactor:       store,
		CompactFormat:   flowrec.FormatV3,
		CompactSync:     true,
		Retry:           retry.Policy{Attempts: 3, Sleep: func(time.Duration) {}},
	}
	if planSpec != "" {
		if cfg.Faults, err = faultinject.Parse(planSpec); err != nil {
			t.Fatal(err)
		}
	}

	w := simnet.NewWorld(colsEqSeed, colsEqScale)
	ctx := context.Background()
	run := func(stop uint64) {
		in, err := ingest.Open(cfg)
		if err != nil {
			t.Fatal(err)
		}
		src := w.Stream(days)
		src.Seek(in.Resume())
		var sr simnet.StreamRecord
		for src.Pos() < stop && src.Next(&sr) {
			if err := in.Ingest(ctx, &sr.Rec, sr.At); err != nil {
				t.Fatalf("ingest at seq %d: %v", sr.Seq, err)
			}
		}
		if stop != ^uint64(0) {
			return // kill: abandon without Close, like a dead process
		}
		// End of stream: seal everything, retrying days whose seal
		// faults have not yet burned out.
		for i := 0; i < 6; i++ {
			if err := in.SealAll(ctx); err == nil {
				break
			}
		}
		if err := in.Close(ctx); err != nil {
			t.Fatal(err)
		}
	}

	for _, k := range kills {
		run(k)
	}
	run(^uint64(0))
	return store
}

func TestStreamedEqualsBatchExperiments(t *testing.T) {
	days := chaosDays(colsEqStride)
	batch := buildStoreFormat(t, t.TempDir(), flowrec.FormatV1, days)

	// Size the kill points off the real stream length so both land
	// strictly inside it (the second between checkpoints of a late
	// day).
	w := simnet.NewWorld(colsEqSeed, colsEqScale)
	src := w.Stream(days)
	var sr simnet.StreamRecord
	var total uint64
	for src.Next(&sr) {
		total++
	}
	streamed := buildStreamedStore(t, days,
		"checkpoint:p=0.4,transient,seed=5;seal:p=0.6,fails=1,transient,seed=5",
		"saveagg:p=0.3,transient,seed=6;writeday:p=0.4,fails=1,transient,seed=6",
		[]uint64{total * 2 / 5, total * 7 / 10})

	sdays, err := streamed.Days()
	if err != nil {
		t.Fatal(err)
	}
	if len(sdays) != len(days) {
		t.Fatalf("streamed lake holds %d days, batch day set has %d", len(sdays), len(days))
	}

	ctx := context.Background()
	for _, shards := range []int{1, 3} {
		pb := New(Config{Seed: colsEqSeed, Scale: colsEqScale, Stride: colsEqStride,
			Workers: 4, ShardsPerDay: shards, Store: batch})
		ps := New(Config{Seed: colsEqSeed, Scale: colsEqScale, Stride: colsEqStride,
			Workers: 4, ShardsPerDay: shards, Store: streamed})
		for _, e := range AllExperiments() {
			edays := e.Days(colsEqStride)
			if len(edays) == 0 {
				continue
			}
			ab, err := pb.AggregateCols(ctx, edays, e.Cols)
			if err != nil {
				t.Fatalf("%s shards=%d: batch aggregate: %v", e.ID, shards, err)
			}
			as, err := ps.AggregateCols(ctx, edays, e.Cols)
			if err != nil {
				t.Fatalf("%s shards=%d: streamed aggregate: %v", e.ID, shards, err)
			}
			if len(as) != len(ab) {
				t.Fatalf("%s shards=%d: batch has %d days, streamed %d", e.ID, shards, len(ab), len(as))
			}
			for i := range ab {
				wb, err := analytics.CanonicalBytes(ab[i])
				if err != nil {
					t.Fatal(err)
				}
				ws, err := analytics.CanonicalBytes(as[i])
				if err != nil {
					t.Fatal(err)
				}
				if !bytes.Equal(wb, ws) {
					t.Errorf("%s shards=%d: day %s streamed lake diverges from batch",
						e.ID, shards, ab[i].Day.Format("2006-01-02"))
					break
				}
			}
		}
	}
}

// TestHotDayServesFromCheckpoints: a span whose last day is still
// live must answer — the live day served from the ingest daemon's
// checkpointed partials — and the answer must be byte-identical to
// the same query after the day seals.
func TestHotDayServesFromCheckpoints(t *testing.T) {
	days := []time.Time{
		simnet.SpanStart.AddDate(0, 0, 7),
		simnet.SpanStart.AddDate(0, 0, 8),
		simnet.SpanStart.AddDate(0, 0, 9),
	}
	dir := t.TempDir()
	store, err := flowrec.OpenStoreFormat(filepath.Join(dir, "lake"), flowrec.FormatV1)
	if err != nil {
		t.Fatal(err)
	}
	aggDir := filepath.Join(dir, "agg")
	disk := NewDiskStorage(store, aggDir)
	in, err := ingest.Open(ingest.Config{
		Storage:         disk,
		WALDir:          filepath.Join(dir, "lake", flowrec.WALDirName),
		CheckpointEvery: 512,
	})
	if err != nil {
		t.Fatal(err)
	}
	w := simnet.NewWorld(7, simnet.Scale{ADSL: 8, FTTH: 4})
	src := w.Stream(days)
	ctx := context.Background()
	var sr simnet.StreamRecord
	for src.Next(&sr) {
		if err := in.Ingest(ctx, &sr.Rec, sr.At); err != nil {
			t.Fatal(err)
		}
	}
	in.CheckpointAll(ctx) // cover every absorbed record of the live day

	last := days[len(days)-1]
	if disk.HasDay(last) {
		t.Fatal("the last day sealed prematurely; the test needs it live")
	}

	pcfg := Config{Seed: 7, Scale: simnet.Scale{ADSL: 8, FTTH: 4}, Workers: 4,
		Store: store, AggCacheDir: aggDir}
	hot0 := mHotDayServes.Load()
	aggs, err := New(pcfg).AggregateCols(ctx, days, 0)
	if err != nil {
		t.Fatalf("aggregate over live span: %v", err)
	}
	if len(aggs) != len(days) {
		t.Fatalf("got %d day aggregates, want %d", len(aggs), len(days))
	}
	if mHotDayServes.Load() == hot0 {
		t.Error("pipeline.hot_day_serves did not move: the live day was not served from partials")
	}
	hotBytes := make([][]byte, len(aggs))
	for i := range aggs {
		if hotBytes[i], err = analytics.CanonicalBytes(aggs[i]); err != nil {
			t.Fatal(err)
		}
	}

	if err := in.SealAll(ctx); err != nil {
		t.Fatal(err)
	}
	if err := in.Close(ctx); err != nil {
		t.Fatal(err)
	}
	if !disk.HasDay(last) {
		t.Fatal("last day did not seal")
	}

	// Fresh pipeline: no memory cache, and sealing invalidated the
	// partials — the answer now comes from the sealed day file.
	aggs2, err := New(pcfg).AggregateCols(ctx, days, 0)
	if err != nil {
		t.Fatal(err)
	}
	for i := range aggs2 {
		b, err := analytics.CanonicalBytes(aggs2[i])
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(b, hotBytes[i]) {
			t.Errorf("day %s: hot answer differs from post-seal answer",
				aggs2[i].Day.Format("2006-01-02"))
		}
	}
}

// TestHotDayConcurrentReadsDuringIngest runs pipeline queries against
// the live day while the ingester is still absorbing records and
// checkpointing — the -race half of the hot-day contract. Answers
// mid-flight are valid prefixes; what must hold is that no query
// errors and nothing races.
func TestHotDayConcurrentReadsDuringIngest(t *testing.T) {
	day := simnet.SpanStart.AddDate(0, 0, 7)
	dir := t.TempDir()
	store, err := flowrec.OpenStoreFormat(filepath.Join(dir, "lake"), flowrec.FormatV1)
	if err != nil {
		t.Fatal(err)
	}
	aggDir := filepath.Join(dir, "agg")
	disk := NewDiskStorage(store, aggDir)
	in, err := ingest.Open(ingest.Config{
		Storage:         disk,
		WALDir:          filepath.Join(dir, "lake", flowrec.WALDirName),
		CheckpointEvery: 128, // checkpoint often: readers race real snapshot swaps
	})
	if err != nil {
		t.Fatal(err)
	}
	w := simnet.NewWorld(7, simnet.Scale{ADSL: 8, FTTH: 4})
	src := w.Stream([]time.Time{day})
	ctx := context.Background()

	// Absorb a first batch so the readers always find a checkpoint.
	var sr simnet.StreamRecord
	for i := 0; i < 256 && src.Next(&sr); i++ {
		if err := in.Ingest(ctx, &sr.Rec, sr.At); err != nil {
			t.Fatal(err)
		}
	}
	in.CheckpointAll(ctx)

	pcfg := Config{Seed: 7, Scale: simnet.Scale{ADSL: 8, FTTH: 4}, Workers: 2,
		Store: store, AggCacheDir: aggDir}
	done := make(chan struct{})
	var wg sync.WaitGroup
	for r := 0; r < 3; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-done:
					return
				default:
				}
				// A fresh pipeline per query: the memory cache must not
				// hide the moving checkpoint state.
				aggs, err := New(pcfg).AggregateCols(ctx, []time.Time{day}, 0)
				if err != nil {
					t.Errorf("hot-day query during ingest: %v", err)
					return
				}
				if len(aggs) != 1 || aggs[0].Flows == 0 {
					t.Error("hot-day query returned an empty aggregate despite checkpoints")
					return
				}
			}
		}()
	}

	for src.Next(&sr) {
		if err := in.Ingest(ctx, &sr.Rec, sr.At); err != nil {
			t.Fatal(err)
		}
	}
	in.CheckpointAll(ctx)
	close(done)
	wg.Wait()

	if err := in.SealAll(ctx); err != nil {
		t.Fatal(err)
	}
	if err := in.Close(ctx); err != nil {
		t.Fatal(err)
	}
	// Post-seal, the day answers from its sealed file with the full
	// record count the batch emitter would give it.
	var want uint64
	w2 := simnet.NewWorld(7, simnet.Scale{ADSL: 8, FTTH: 4})
	w2.EmitDay(day, func(*flowrec.Record) { want++ })
	aggs, err := New(pcfg).AggregateCols(ctx, []time.Time{day}, 0)
	if err != nil {
		t.Fatal(err)
	}
	if aggs[0].Flows != want {
		t.Fatalf("sealed day aggregates %d flows, want %d", aggs[0].Flows, want)
	}
}
