package core

import (
	"bytes"
	"context"
	"encoding/csv"
	"os"
	"path/filepath"
	"strconv"
	"testing"

	"repro/internal/simnet"
)

func TestExportData(t *testing.T) {
	dir := t.TempDir()
	p := New(Config{Seed: 99, Scale: simnet.Scale{ADSL: 10, FTTH: 5}, Stride: 180, Workers: 4})
	if err := p.ExportData(context.Background(), dir); err != nil {
		t.Fatal(err)
	}
	want := []string{
		"fig3_monthly.csv", "fig5_popularity.csv", "fig5_byteshare.csv",
		"fig6_7_services.csv", "fig8_protocols.csv", "active.csv",
	}
	for _, name := range want {
		f, err := os.Open(filepath.Join(dir, name))
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		rows, err := csv.NewReader(f).ReadAll()
		f.Close()
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if len(rows) < 2 {
			t.Errorf("%s: only %d rows", name, len(rows))
		}
	}

	// Spot-check fig8: per-month shares sum to ~100 (or 0 for months
	// before the web existed in the sample — there are none).
	f, err := os.Open(filepath.Join(dir, "fig8_protocols.csv"))
	if err != nil {
		t.Fatal(err)
	}
	rows, err := csv.NewReader(f).ReadAll()
	f.Close()
	if err != nil {
		t.Fatal(err)
	}
	sums := make(map[string]float64)
	for _, row := range rows[1:] {
		v, err := strconv.ParseFloat(row[2], 64)
		if err != nil {
			t.Fatalf("bad share %q: %v", row[2], err)
		}
		sums[row[0]] += v
	}
	for month, sum := range sums {
		if sum < 99.9 || sum > 100.1 {
			t.Errorf("%s: protocol shares sum to %.2f", month, sum)
		}
	}
}

// TestExportByteIdentical guards the interning refactor's contract:
// two pipelines with the same seed must export byte-for-byte identical
// figure tables — the ID-indexed aggregator may not perturb ordering
// or values anywhere in the output.
func TestExportByteIdentical(t *testing.T) {
	cfg := Config{Seed: 99, Scale: simnet.Scale{ADSL: 10, FTTH: 5}, Stride: 180, Workers: 4}
	dirA, dirB := t.TempDir(), t.TempDir()
	if err := New(cfg).ExportData(context.Background(), dirA); err != nil {
		t.Fatal(err)
	}
	if err := New(cfg).ExportData(context.Background(), dirB); err != nil {
		t.Fatal(err)
	}
	names := []string{
		"fig3_monthly.csv", "fig5_popularity.csv", "fig5_byteshare.csv",
		"fig6_7_services.csv", "fig8_protocols.csv", "active.csv",
	}
	for _, name := range names {
		a, err := os.ReadFile(filepath.Join(dirA, name))
		if err != nil {
			t.Fatal(err)
		}
		b, err := os.ReadFile(filepath.Join(dirB, name))
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(a, b) {
			t.Errorf("%s differs between same-seed runs", name)
		}
	}
}
