package core

import (
	"context"
	"testing"
	"time"

	"repro/internal/faultinject"
	"repro/internal/flowrec"
)

// Property: graceful degradation must not distort what survives. A
// pipeline run under per-day faults yields exactly the fault-free
// aggregates for the days that survive, and the failed days appear in
// the error report — partial output, never wrong output.
func TestDegradedTotalsMatchFaultFreeOnSurvivingDays(t *testing.T) {
	days := MonthDays(2016, time.April)
	base := t.TempDir()
	buildChaosStore(t, base, flowrec.FormatV2, days)

	// Fault-free reference run over its own copy.
	cleanDir := t.TempDir()
	copyTree(t, base, cleanDir)
	cleanStore, err := flowrec.OpenStore(cleanDir)
	if err != nil {
		t.Fatal(err)
	}
	clean := New(Config{Seed: chaosSeed, Scale: chaosScale, Workers: 4, Store: cleanStore})
	cleanAggs, err := clean.Aggregate(context.Background(), days)
	if err != nil {
		t.Fatal(err)
	}
	if len(cleanAggs) != len(days) {
		t.Fatalf("fault-free run returned %d days, want %d", len(cleanAggs), len(days))
	}
	cleanByDay := make(map[time.Time]int, len(cleanAggs))
	for i, a := range cleanAggs {
		cleanByDay[a.Day] = i
	}

	// Degraded run under permanent corruption over a second copy.
	faultDir := t.TempDir()
	copyTree(t, base, faultDir)
	faultStore, err := flowrec.OpenStore(faultDir)
	if err != nil {
		t.Fatal(err)
	}
	plan, err := faultinject.Parse("readday:p=0.3,truncate")
	if err != nil {
		t.Fatal(err)
	}
	faulted := New(Config{Seed: chaosSeed, Scale: chaosScale, Workers: 4,
		Store: faultStore, Degrade: true, Faults: plan, Retry: chaosPolicy()})
	survAggs, err := faulted.Aggregate(context.Background(), days)
	if err != nil {
		t.Fatal(err)
	}
	errs := faulted.DayErrors()
	if len(errs) == 0 {
		t.Fatal("fault plan injected nothing; the property is vacuous")
	}
	if len(survAggs) == 0 {
		t.Fatal("no days survived; the property is vacuous")
	}

	// Accounting: surviving ∪ failed = requested, disjoint.
	if len(survAggs)+len(errs) != len(days) {
		t.Fatalf("%d surviving + %d failed != %d requested: silent loss",
			len(survAggs), len(errs), len(days))
	}
	failed := make(map[time.Time]bool, len(errs))
	for _, de := range errs {
		failed[de.Day] = true
	}
	for _, a := range survAggs {
		if failed[a.Day] {
			t.Errorf("day %s is both surviving and failed", a.Day.Format("2006-01-02"))
		}
	}

	// Equality: each surviving day's totals match the fault-free run.
	for _, a := range survAggs {
		i, ok := cleanByDay[a.Day]
		if !ok {
			t.Errorf("surviving day %s not in fault-free run", a.Day.Format("2006-01-02"))
			continue
		}
		c := cleanAggs[i]
		if a.Flows != c.Flows || a.TotalDown != c.TotalDown || a.TotalUp != c.TotalUp {
			t.Errorf("day %s diverged under faults: flows %d/%d down %d/%d up %d/%d",
				a.Day.Format("2006-01-02"),
				a.Flows, c.Flows, a.TotalDown, c.TotalDown, a.TotalUp, c.TotalUp)
		}
		if len(a.Subs) != len(c.Subs) {
			t.Errorf("day %s subscriber count diverged: %d vs %d",
				a.Day.Format("2006-01-02"), len(a.Subs), len(c.Subs))
		}
	}
}
