package core

import (
	"context"
	"fmt"
	"io"
	"sort"
	"time"

	"repro/internal/analytics"
	"repro/internal/asn"
	"repro/internal/classify"
	"repro/internal/flowrec"
	"repro/internal/report"
	"repro/internal/stats"
)

// Experiment is one reproducible table or figure of the paper.
type Experiment struct {
	// ID is the handle used on the command line and in bench names
	// ("table1", "fig2", ... "fig11", "active").
	ID string
	// Title cites what the paper shows.
	Title string
	// Days lists the days of data the experiment consumes under a
	// given stride.
	Days func(stride int) []time.Time
	// Cols is the experiment's column contract: the record columns its
	// aggregation actually reads. Run passes it to AggregateCols so a
	// columnar store decodes only these columns; zero means the
	// experiment needs full records (or none at all).
	Cols flowrec.ColumnSet
	// Run aggregates (through the pipeline cache) and writes the
	// rendered result. Cancelling ctx aborts mid-aggregation.
	Run func(ctx context.Context, p *Pipeline, w io.Writer) error
}

// Experiments returns the registry in paper order.
func Experiments() []Experiment {
	return []Experiment{
		{
			ID:    "table1",
			Title: "Table 1: domain-to-service associations",
			Days:  func(int) []time.Time { return nil },
			Run:   runTable1,
		},
		{
			ID:    "active",
			Cols:  analytics.ColsSubscribers,
			Title: "Section 3: share of active subscribers per day (~80%)",
			Days:  func(stride int) []time.Time { return RangeDays(date(2016, 4, 1), date(2016, 4, 30), 1) },
			Run:   runActive,
		},
		{
			ID:    "fig2",
			Cols:  analytics.ColsSubscribers,
			Title: "Figure 2: CCDF of per-active-subscriber daily traffic, Apr 2014 vs Apr 2017",
			Days:  aprilDays,
			Run:   runFig2,
		},
		{
			ID:    "fig3",
			Cols:  analytics.ColsSubscribers,
			Title: "Figure 3: average per-subscription daily traffic over 54 months",
			Days:  spanDays,
			Run:   runFig3,
		},
		{
			ID:    "fig4",
			Cols:  analytics.ColsTimeBins,
			Title: "Figure 4: download growth ratio Apr 2017 / Apr 2014 by time of day",
			Days:  aprilDays,
			Run:   runFig4,
		},
		{
			ID:    "fig5",
			Cols:  analytics.ColsSubscribers,
			Title: "Figure 5: service popularity and byte share over time",
			Days:  spanDays,
			Run:   runFig5,
		},
		{
			ID:    "fig6",
			Cols:  analytics.ColsSubscribers,
			Title: "Figure 6: P2P, Netflix, YouTube popularity and volumes",
			Days:  spanDays,
			Run:   runFig6,
		},
		{
			ID:    "fig7",
			Cols:  analytics.ColsSubscribers,
			Title: "Figure 7: SnapChat, WhatsApp, Instagram popularity and volumes",
			Days:  spanDays,
			Run:   runFig7,
		},
		{
			ID:    "fig8",
			Cols:  analytics.ColsProtocols,
			Title: "Figure 8: web protocol breakdown over 5 years (events A-F)",
			Days:  spanDays,
			Run:   runFig8,
		},
		{
			ID:    "fig9",
			Cols:  analytics.ColsSubscribers,
			Title: "Figure 9: Facebook per-user daily traffic through 2014 (video auto-play)",
			Days: func(stride int) []time.Time {
				s := stride / 2
				if s < 1 {
					s = 1
				}
				return RangeDays(date(2014, 1, 1), date(2014, 11, 30), s)
			},
			Run: runFig9,
		},
		{
			ID:    "fig10",
			Cols:  analytics.ColsRTT,
			Title: "Figure 10: RTT CDFs 2014 vs 2017 (Facebook, Instagram, YouTube, Google)",
			Days:  aprilDays,
			Run:   runFig10,
		},
		{
			ID:    "fig11",
			Cols:  analytics.ColsInfra,
			Title: "Figure 11: Facebook, Instagram, YouTube infrastructure evolution",
			Days:  spanDays,
			Run:   runFig11,
		},
	}
}

// AllExperiments returns the paper registry plus the extension
// analyses (weekly reach, QUIC version mix).
func AllExperiments() []Experiment {
	return append(Experiments(), extensionExperiments()...)
}

// Lookup finds an experiment (including extensions) by ID.
func Lookup(id string) (Experiment, bool) {
	for _, e := range AllExperiments() {
		if e.ID == id {
			return e, true
		}
	}
	return Experiment{}, false
}

func date(y int, m time.Month, d int) time.Time {
	return time.Date(y, m, d, 0, 0, 0, 0, time.UTC)
}

func spanDays(stride int) []time.Time {
	return RangeDays(date(2013, 7, 1), date(2017, 12, 31), stride)
}

// aprilDays: the two comparison months of Figures 2, 4 and 10, at
// stride 1 for distributional accuracy (they are only 60 days).
func aprilDays(int) []time.Time {
	return append(MonthDays(2014, time.April), MonthDays(2017, time.April)...)
}

// splitAprils separates the fig2/4/10 window into its two months.
func splitAprils(aggs []*analytics.DayAgg) (a14, a17 []*analytics.DayAgg) {
	for _, a := range aggs {
		if a.Day.Year() == 2014 {
			a14 = append(a14, a)
		} else {
			a17 = append(a17, a)
		}
	}
	return
}

// --- Table 1 ---------------------------------------------------------------

func runTable1(ctx context.Context, p *Pipeline, w io.Writer) error {
	if err := report.Section(w, "Table 1: examples of domain-to-service associations"); err != nil {
		return err
	}
	rows := [][]string{
		{"facebook.com", string(p.Cls.Lookup("facebook.com"))},
		{"fbcdn.com", string(p.Cls.Lookup("fbcdn.com"))},
		{"fbstatic-a.akamaihd.net (regexp)", string(p.Cls.Lookup("fbstatic-a.akamaihd.net"))},
		{"netflix.com", string(p.Cls.Lookup("netflix.com"))},
		{"nflxvideo.net", string(p.Cls.Lookup("nflxvideo.net"))},
		{"r3---sn-hpa7kn7s.googlevideo.com", string(p.Cls.Lookup("r3---sn-hpa7kn7s.googlevideo.com"))},
		{"scontent.cdninstagram.com", string(p.Cls.Lookup("scontent.cdninstagram.com"))},
		{"mmx-ds.cdn.whatsapp.net", string(p.Cls.Lookup("mmx-ds.cdn.whatsapp.net"))},
		{"unclassified.example.org", orDash(string(p.Cls.Lookup("unclassified.example.org")))},
	}
	return report.Table(w, []string{"Domain", "Service"}, rows)
}

func orDash(s string) string {
	if s == "" {
		return "(unknown)"
	}
	return s
}

// --- Section 3: active share ------------------------------------------------

func runActive(ctx context.Context, p *Pipeline, w io.Writer) error {
	pts, err := p.ActiveSeriesTier(ctx, Lookup0("active").Days(p.Stride()), analytics.ColsSubscribers)
	if err != nil {
		return err
	}
	if err := report.Section(w, "Active subscribers (section 3 filter: ≥10 flows, >15 kB down, >5 kB up)"); err != nil {
		return err
	}
	var sum float64
	rows := make([][]string, 0, len(pts))
	for _, pt := range pts {
		sum += pt.ActivePct
		rows = append(rows, []string{report.Day(pt.Day), fmt.Sprint(pt.Active), fmt.Sprint(pt.Observed), report.Pct(pt.ActivePct)})
	}
	if err := report.Table(w, []string{"day", "active", "observed", "active%"}, rows); err != nil {
		return err
	}
	_, err = fmt.Fprintf(w, "\nmean active share: %s (paper: ~80%%)\n", report.Pct(sum/float64(len(pts))))
	return err
}

// Lookup0 is Lookup for known-good IDs (panics otherwise, programming
// error only).
func Lookup0(id string) Experiment {
	e, ok := Lookup(id)
	if !ok {
		panic("core: unknown experiment " + id)
	}
	return e
}

// --- Figure 2 ----------------------------------------------------------------

func runFig2(ctx context.Context, p *Pipeline, w io.Writer) error {
	aggs, err := p.AggregateCols(ctx, aprilDays(0), analytics.ColsSubscribers)
	if err != nil {
		return err
	}
	a14, a17 := splitAprils(aggs)
	if err := report.Section(w, "Figure 2: CCDF of daily traffic per active subscriber"); err != nil {
		return err
	}
	xsDown := []float64{10 << 20, 100 << 20, 500 << 20, 1 << 30, 3 << 30}
	xsUp := []float64{1 << 20, 10 << 20, 100 << 20, 500 << 20, 1 << 30}
	for _, dir := range []analytics.Dir{analytics.Down, analytics.Up} {
		xs := xsDown
		if dir == analytics.Up {
			xs = xsUp
		}
		headers := []string{"curve", "median(MB)"}
		for _, x := range xs {
			headers = append(headers, fmt.Sprintf("P(>%sMB)", report.F(x/(1<<20))))
		}
		var rows [][]string
		for _, c := range []struct {
			label string
			aggs  []*analytics.DayAgg
			tech  flowrec.AccessTech
		}{
			{"ADSL 2014", a14, flowrec.TechADSL},
			{"ADSL 2017", a17, flowrec.TechADSL},
			{"FTTH 2014", a14, flowrec.TechFTTH},
			{"FTTH 2017", a17, flowrec.TechFTTH},
		} {
			dist := analytics.DailyVolumeDist(c.aggs, c.tech, dir)
			row := []string{c.label, report.MB(dist.Median())}
			for _, x := range xs {
				row = append(row, report.F(dist.CCDF(x)))
			}
			rows = append(rows, row)
		}
		if _, err := fmt.Fprintf(w, "%s:\n", dir); err != nil {
			return err
		}
		if err := report.Table(w, headers, rows); err != nil {
			return err
		}
		if _, err := fmt.Fprintln(w); err != nil {
			return err
		}
	}
	return nil
}

// --- Figure 3 ----------------------------------------------------------------

func runFig3(ctx context.Context, p *Pipeline, w io.Writer) error {
	ms, err := p.MonthlySeriesTier(ctx, spanDays(p.Stride()), analytics.ColsSubscribers)
	if err != nil {
		return err
	}
	if err := report.Section(w, "Figure 3: average per-subscription daily traffic (MB)"); err != nil {
		return err
	}
	rows := make([][]string, 0, len(ms))
	series := make([][]float64, 4)
	for _, m := range ms {
		rows = append(rows, []string{
			report.Month(m.Month),
			report.MB(m.Mean[0][analytics.Down]), report.MB(m.Mean[1][analytics.Down]),
			report.MB(m.Mean[0][analytics.Up]), report.MB(m.Mean[1][analytics.Up]),
		})
		series[0] = append(series[0], m.Mean[0][analytics.Down]/(1<<20))
		series[1] = append(series[1], m.Mean[1][analytics.Down]/(1<<20))
		series[2] = append(series[2], m.Mean[0][analytics.Up]/(1<<20))
		series[3] = append(series[3], m.Mean[1][analytics.Up]/(1<<20))
	}
	if err := report.Table(w, []string{"month", "ADSL down", "FTTH down", "ADSL up", "FTTH up"}, rows); err != nil {
		return err
	}
	if _, err := fmt.Fprintln(w, "\ntrends (first ... last month):"); err != nil {
		return err
	}
	for i, label := range []string{"ADSL down", "FTTH down", "ADSL up", "FTTH up"} {
		if err := report.SparkRow(w, label, series[i], "MB"); err != nil {
			return err
		}
	}
	return nil
}

// --- Figure 4 ----------------------------------------------------------------

func runFig4(ctx context.Context, p *Pipeline, w io.Writer) error {
	aggs, err := p.AggregateCols(ctx, aprilDays(0), analytics.ColsTimeBins)
	if err != nil {
		return err
	}
	a14, a17 := splitAprils(aggs)
	if err := report.Section(w, "Figure 4: download ratio Apr 2017 / Apr 2014 by hour (Bezier-smoothed)"); err != nil {
		return err
	}
	const points = 25
	adsl := analytics.HourlyRatio(a17, a14, flowrec.TechADSL, points)
	ftth := analytics.HourlyRatio(a17, a14, flowrec.TechFTTH, points)
	// A fully degraded run can lose both April windows; an empty curve
	// is a report note, not an index panic.
	if len(adsl) < points || len(ftth) < points {
		_, err := fmt.Fprintln(w, "(no data: both comparison periods are empty)")
		return err
	}
	rows := make([][]string, 0, points)
	for i := 0; i < points; i++ {
		rows = append(rows, []string{
			fmt.Sprintf("%05.2f", adsl[i].X),
			report.F(adsl[i].Y),
			report.F(ftth[i].Y),
		})
	}
	return report.Table(w, []string{"hour", "ADSL ratio", "FTTH ratio"}, rows)
}

// --- Figure 5 ----------------------------------------------------------------

func runFig5(ctx context.Context, p *Pipeline, w io.Writer) error {
	aggs, err := p.AggregateCols(ctx, spanDays(p.Stride()), analytics.ColsSubscribers)
	if err != nil {
		return err
	}
	if err := report.Section(w, "Figure 5: yearly mean popularity (% of active ADSL users) and byte share"); err != nil {
		return err
	}
	years := []int{2013, 2014, 2015, 2016, 2017}
	headers := []string{"service"}
	for _, y := range years {
		headers = append(headers, fmt.Sprintf("pop%%%d", y))
	}
	for _, y := range years {
		headers = append(headers, fmt.Sprintf("byte%%%d", y))
	}
	var rows [][]string
	labels := make([]string, 0, len(classify.FigureServices))
	popRows := make([][]float64, 0, len(classify.FigureServices))
	shareRows := make([][]float64, 0, len(classify.FigureServices))
	for _, svc := range classify.FigureServices {
		series := analytics.ServiceSeries(aggs, svc)
		share := analytics.ServiceByteShare(aggs, svcKey(svc))
		row := []string{string(svc)}
		for _, y := range years {
			row = append(row, report.F(yearMean(series, y, func(p analytics.SvcDayPoint) float64 { return p.PopPct[0] })))
		}
		for _, y := range years {
			row = append(row, report.F(yearMeanShare(share, y)))
		}
		rows = append(rows, row)

		labels = append(labels, string(svc))
		var pops, shares []float64
		for _, pt := range series {
			pops = append(pops, pt.PopPct[0])
		}
		for _, pt := range share {
			shares = append(shares, pt.SharePct)
		}
		popRows = append(popRows, pops)
		shareRows = append(shareRows, shares)
	}
	if err := report.Table(w, headers, rows); err != nil {
		return err
	}
	// The heatmaps of Figure 5, one column per sampled day. The byte
	// share palette caps at 10% exactly as the paper's does ("the
	// multi-color palette is set to 10% to improve the visualization").
	if _, err := fmt.Fprintln(w, "\npopularity over time (Fig 5a, palette capped at 50%):"); err != nil {
		return err
	}
	if err := report.Heatmap(w, labels, popRows, 50, "% of active users"); err != nil {
		return err
	}
	if _, err := fmt.Fprintln(w, "\ndownloaded byte share over time (Fig 5b):"); err != nil {
		return err
	}
	return report.Heatmap(w, labels, shareRows, 10, "% of bytes")
}

// svcKey maps figure service labels to aggregation keys (identical,
// but P2P flows classify by probe label).
func svcKey(s classify.Service) classify.Service { return s }

func yearMean(series []analytics.SvcDayPoint, year int, f func(analytics.SvcDayPoint) float64) float64 {
	var sum float64
	var n int
	for _, p := range series {
		if p.Day.Year() == year {
			sum += f(p)
			n++
		}
	}
	if n == 0 {
		return 0
	}
	return sum / float64(n)
}

func yearMeanShare(series []analytics.ShareDayPoint, year int) float64 {
	var sum float64
	var n int
	for _, p := range series {
		if p.Day.Year() == year {
			sum += p.SharePct
			n++
		}
	}
	if n == 0 {
		return 0
	}
	return sum / float64(n)
}

// --- Figures 6, 7, 9 ----------------------------------------------------------

// serviceStory renders one service's popularity/volume series at
// half-year resolution.
func serviceStory(w io.Writer, aggs []*analytics.DayAgg, svc classify.Service, volDir string) error {
	series := analytics.ServiceSeries(aggs, svc)
	type bucket struct {
		pop [2]float64
		vol [2]float64
		n   [2]float64
	}
	buckets := make(map[time.Time]*bucket)
	for _, pt := range series {
		h := halfYear(pt.Day)
		b := buckets[h]
		if b == nil {
			b = &bucket{}
			buckets[h] = b
		}
		for ti := 0; ti < 2; ti++ {
			b.pop[ti] += pt.PopPct[ti]
			v := pt.VolPerUser[ti]
			if volDir == "down" {
				v = pt.DownPerUser[ti]
			}
			b.vol[ti] += v
			b.n[ti]++
		}
	}
	var keys []time.Time
	for k := range buckets {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool { return keys[i].Before(keys[j]) })
	rows := make([][]string, 0, len(keys))
	for _, k := range keys {
		b := buckets[k]
		row := []string{report.Month(k)}
		for ti := 0; ti < 2; ti++ {
			pop, vol := 0.0, 0.0
			if b.n[ti] > 0 {
				pop = b.pop[ti] / b.n[ti]
				vol = b.vol[ti] / b.n[ti]
			}
			row = append(row, report.F(pop), report.MB(vol))
		}
		rows = append(rows, row)
	}
	if _, err := fmt.Fprintf(w, "%s:\n", svc); err != nil {
		return err
	}
	if err := report.Table(w, []string{"half-year", "ADSL pop%", "ADSL MB/user", "FTTH pop%", "FTTH MB/user"}, rows); err != nil {
		return err
	}
	_, err := fmt.Fprintln(w)
	return err
}

func halfYear(d time.Time) time.Time {
	m := time.January
	if d.Month() >= time.July {
		m = time.July
	}
	return time.Date(d.Year(), m, 1, 0, 0, 0, 0, time.UTC)
}

func runFig6(ctx context.Context, p *Pipeline, w io.Writer) error {
	aggs, err := p.AggregateCols(ctx, spanDays(p.Stride()), analytics.ColsSubscribers)
	if err != nil {
		return err
	}
	if err := report.Section(w, "Figure 6: P2P, Netflix, YouTube (popularity %, exchanged MB per user-day)"); err != nil {
		return err
	}
	for _, svc := range []classify.Service{analytics.P2PService, "Netflix", "YouTube"} {
		if err := serviceStory(w, aggs, svc, "total"); err != nil {
			return err
		}
	}
	return nil
}

func runFig7(ctx context.Context, p *Pipeline, w io.Writer) error {
	aggs, err := p.AggregateCols(ctx, spanDays(p.Stride()), analytics.ColsSubscribers)
	if err != nil {
		return err
	}
	if err := report.Section(w, "Figure 7: SnapChat, WhatsApp, Instagram (popularity %, exchanged MB per user-day)"); err != nil {
		return err
	}
	for _, svc := range []classify.Service{"SnapChat", "WhatsApp", "Instagram"} {
		if err := serviceStory(w, aggs, svc, "total"); err != nil {
			return err
		}
	}
	return nil
}

func runFig9(ctx context.Context, p *Pipeline, w io.Writer) error {
	days := Lookup0("fig9").Days(p.Stride())
	aggs, err := p.AggregateCols(ctx, days, analytics.ColsSubscribers)
	if err != nil {
		return err
	}
	series := analytics.ServiceSeries(aggs, "Facebook")
	if err := report.Section(w, "Figure 9: Facebook exchanged MB per user-day through 2014 (auto-play rollout)"); err != nil {
		return err
	}
	type acc struct {
		vol, n float64
	}
	byMonth := make(map[time.Time]*acc)
	for _, pt := range series {
		m := asn.MonthStart(pt.Day)
		a := byMonth[m]
		if a == nil {
			a = &acc{}
			byMonth[m] = a
		}
		// ADSL and FTTH jointly, weighted equally by day.
		a.vol += (pt.VolPerUser[0] + pt.VolPerUser[1]) / 2
		a.n++
	}
	var months []time.Time
	for m := range byMonth {
		months = append(months, m)
	}
	sort.Slice(months, func(i, j int) bool { return months[i].Before(months[j]) })
	rows := make([][]string, 0, len(months))
	for _, m := range months {
		a := byMonth[m]
		rows = append(rows, []string{report.Month(m), report.MB(a.vol / a.n)})
	}
	return report.Table(w, []string{"month", "MB/user/day"}, rows)
}

// --- Figure 8 ----------------------------------------------------------------

func runFig8(ctx context.Context, p *Pipeline, w io.Writer) error {
	shares, err := p.ProtoSharesTier(ctx, spanDays(p.Stride()), analytics.ColsProtocols)
	if err != nil {
		return err
	}
	if err := report.Section(w, "Figure 8: web protocol share of web bytes, monthly"); err != nil {
		return err
	}
	protos := analytics.WebProtos()
	headers := []string{"month"}
	for _, proto := range protos {
		headers = append(headers, proto.String())
	}
	rows := make([][]string, 0, len(shares))
	for _, s := range shares {
		row := []string{report.Month(s.Month)}
		for _, proto := range protos {
			row = append(row, report.F(s.SharePct[proto]))
		}
		rows = append(rows, row)
	}
	if err := report.Table(w, headers, rows); err != nil {
		return err
	}
	if _, err := fmt.Fprintln(w, "\nshares over time:"); err != nil {
		return err
	}
	for _, proto := range protos {
		var vals []float64
		for _, s := range shares {
			vals = append(vals, s.SharePct[proto])
		}
		if err := report.SparkRow(w, proto.String(), vals, "%"); err != nil {
			return err
		}
	}
	_, err = fmt.Fprintln(w, "\nevents: A=2014-01 YouTube->HTTPS  B=2014-10 QUIC on  C=2015-06 SPDY visible\n"+
		"        D=2015-12 QUIC off ~1mo  E=2016-02 SPDY->HTTP/2  F=2016-11 FB-Zero")
	return err
}

// --- Figure 10 -----------------------------------------------------------------

func runFig10(ctx context.Context, p *Pipeline, w io.Writer) error {
	aggs, err := p.AggregateCols(ctx, aprilDays(0), analytics.ColsRTT)
	if err != nil {
		return err
	}
	a14, a17 := splitAprils(aggs)
	if err := report.Section(w, "Figure 10: CDF of per-flow minimum RTT (ms)"); err != nil {
		return err
	}
	xs := []float64{1, 3.5, 11, 22, 33, 100}
	headers := []string{"curve", "N"}
	for _, x := range xs {
		headers = append(headers, fmt.Sprintf("P(<=%sms)", report.F(x)))
	}
	var rows [][]string
	for _, c := range []struct {
		label string
		aggs  []*analytics.DayAgg
		svc   classify.Service
	}{
		{"Facebook 2014", a14, "Facebook"},
		{"Facebook 2017", a17, "Facebook"},
		{"Instagram 2014", a14, "Instagram"},
		{"Instagram 2017", a17, "Instagram"},
		{"YouTube 2014", a14, "YouTube"},
		{"YouTube 2017", a17, "YouTube"},
		{"Google 2014", a14, "Google"},
		{"Google 2017", a17, "Google"},
		{"WhatsApp 2017", a17, "WhatsApp"},
	} {
		dist := analytics.RTTDist(c.aggs, c.svc)
		row := []string{c.label, fmt.Sprint(dist.N())}
		for _, x := range xs {
			row = append(row, report.F(dist.P(x)))
		}
		rows = append(rows, row)
	}
	return report.Table(w, headers, rows)
}

// --- Figure 11 -----------------------------------------------------------------

func runFig11(ctx context.Context, p *Pipeline, w io.Writer) error {
	aggs, err := p.AggregateCols(ctx, spanDays(p.Stride()), analytics.ColsInfra)
	if err != nil {
		return err
	}
	if err := report.Section(w, "Figure 11: infrastructure evolution (per-day server addresses, half-year means)"); err != nil {
		return err
	}
	for _, svc := range []classify.Service{"Facebook", "Instagram", "YouTube"} {
		if err := fig11Service(p, w, aggs, svc); err != nil {
			return err
		}
	}
	return nil
}

func fig11Service(p *Pipeline, w io.Writer, aggs []*analytics.DayAgg, svc classify.Service) error {
	foot := analytics.ServerFootprint(aggs, svc)
	asnPts := analytics.ASNBreakdown(aggs, svc, p.RIBs)
	domains := analytics.DomainShares(aggs, svc)

	type acc struct {
		ded, sh float64
		byOrg   map[asn.Org]float64
		n       float64
	}
	buckets := make(map[time.Time]*acc)
	for i := range foot {
		h := halfYear(foot[i].Day)
		b := buckets[h]
		if b == nil {
			b = &acc{byOrg: make(map[asn.Org]float64)}
			buckets[h] = b
		}
		b.ded += float64(foot[i].Dedicated)
		b.sh += float64(foot[i].Shared)
		for org, n := range asnPts[i].ByOrg {
			b.byOrg[org] += float64(n)
		}
		b.n++
	}
	var keys []time.Time
	for k := range buckets {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool { return keys[i].Before(keys[j]) })

	orgs := []asn.Org{asn.OrgFacebook, asn.OrgAkamai, asn.OrgGoogle, asn.OrgTeliaNet, asn.OrgGTT, asn.OrgISP, asn.OrgOther}
	headers := []string{"half-year", "dedicated/day", "shared/day"}
	for _, o := range orgs {
		headers = append(headers, string(o))
	}
	rows := make([][]string, 0, len(keys))
	for _, k := range keys {
		b := buckets[k]
		row := []string{report.Month(k), report.F(b.ded / b.n), report.F(b.sh / b.n)}
		for _, o := range orgs {
			row = append(row, report.F(b.byOrg[o]/b.n))
		}
		rows = append(rows, row)
	}
	if _, err := fmt.Fprintf(w, "%s servers:\n", svc); err != nil {
		return err
	}
	if err := report.Table(w, headers, rows); err != nil {
		return err
	}

	// Domain shares: top domains by latest-year share.
	if len(domains) > 0 {
		last := domains[len(domains)-1]
		type ds struct {
			dom   string
			share float64
		}
		var list []ds
		seen := make(map[string]bool)
		for _, dp := range domains {
			for dom := range dp.SharePct {
				if !seen[dom] {
					seen[dom] = true
					list = append(list, ds{dom: dom})
				}
			}
		}
		for i := range list {
			list[i].share = last.SharePct[list[i].dom]
		}
		sort.Slice(list, func(i, j int) bool { return list[i].dom < list[j].dom })
		hdr := []string{"month"}
		for _, d := range list {
			hdr = append(hdr, d.dom)
		}
		var drows [][]string
		for _, dp := range domains {
			if dp.Month.Month() != time.January && dp.Month.Month() != time.July {
				continue
			}
			row := []string{report.Month(dp.Month)}
			for _, d := range list {
				row = append(row, report.F(dp.SharePct[d.dom]))
			}
			drows = append(drows, row)
		}
		if _, err := fmt.Fprintf(w, "%s domain byte shares (%%):\n", svc); err != nil {
			return err
		}
		if err := report.Table(w, hdr, drows); err != nil {
			return err
		}
	}
	_, err := fmt.Fprintln(w)
	return err
}

// Fig4Points exposes the smoothed fig4 curves for tests and examples.
func Fig4Points(ctx context.Context, p *Pipeline, tech flowrec.AccessTech, points int) ([]stats.Point, error) {
	aggs, err := p.AggregateCols(ctx, aprilDays(0), analytics.ColsTimeBins)
	if err != nil {
		return nil, err
	}
	a14, a17 := splitAprils(aggs)
	return analytics.HourlyRatio(a17, a14, tech, points), nil
}
