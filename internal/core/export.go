package core

import (
	"context"
	"encoding/csv"
	"fmt"
	"os"
	"path/filepath"
	"strconv"

	"repro/internal/analytics"
	"repro/internal/classify"
	"repro/internal/report"
)

// Data-table export. The paper publishes the numbers behind its
// figures ("Data tables used to generate these figures ... can be
// downloaded from smartdata.polito.it"); ExportData is this
// repository's equivalent: machine-readable CSVs per figure.

// ExportData writes the figure data tables into dir:
//
//	fig3_monthly.csv      month, tech, direction, mean_bytes
//	fig5_popularity.csv   day, service, adsl_pop_pct, ftth_pop_pct
//	fig5_byteshare.csv    day, service, share_pct
//	fig6_7_services.csv   day, service, tech, pop_pct, bytes_per_user
//	fig8_protocols.csv    month, protocol, share_pct
//	active.csv            day, active, observed, active_pct
func (p *Pipeline) ExportData(ctx context.Context, dir string) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return fmt.Errorf("core: export: %w", err)
	}
	aggs, err := p.Aggregate(ctx, spanDays(p.Stride()))
	if err != nil {
		return err
	}

	// fig3
	err = writeCSV(dir, "fig3_monthly.csv",
		[]string{"month", "tech", "direction", "mean_bytes"},
		func(emit func([]string) error) error {
			for _, m := range analytics.MonthlySeries(aggs) {
				for ti, tech := range []string{"ADSL", "FTTH"} {
					for di, dirName := range []string{"down", "up"} {
						err := emit([]string{
							report.Month(m.Month), tech, dirName,
							strconv.FormatFloat(m.Mean[ti][di], 'f', 0, 64),
						})
						if err != nil {
							return err
						}
					}
				}
			}
			return nil
		})
	if err != nil {
		return err
	}

	// fig5 popularity + byte share, fig6/7 per-service series
	err = writeCSV(dir, "fig5_popularity.csv",
		[]string{"day", "service", "adsl_pop_pct", "ftth_pop_pct"},
		func(emit func([]string) error) error {
			for _, svc := range classify.FigureServices {
				for _, pt := range analytics.ServiceSeries(aggs, svc) {
					err := emit([]string{
						report.Day(pt.Day), string(svc),
						fmtF(pt.PopPct[0]), fmtF(pt.PopPct[1]),
					})
					if err != nil {
						return err
					}
				}
			}
			return nil
		})
	if err != nil {
		return err
	}
	err = writeCSV(dir, "fig5_byteshare.csv",
		[]string{"day", "service", "share_pct"},
		func(emit func([]string) error) error {
			for _, svc := range classify.FigureServices {
				for _, pt := range analytics.ServiceByteShare(aggs, svc) {
					if err := emit([]string{report.Day(pt.Day), string(svc), fmtF(pt.SharePct)}); err != nil {
						return err
					}
				}
			}
			return nil
		})
	if err != nil {
		return err
	}
	err = writeCSV(dir, "fig6_7_services.csv",
		[]string{"day", "service", "tech", "pop_pct", "bytes_per_user"},
		func(emit func([]string) error) error {
			for _, svc := range []classify.Service{
				analytics.P2PService, "Netflix", "YouTube", "SnapChat", "WhatsApp", "Instagram",
			} {
				for _, pt := range analytics.ServiceSeries(aggs, svc) {
					for ti, tech := range []string{"ADSL", "FTTH"} {
						err := emit([]string{
							report.Day(pt.Day), string(svc), tech,
							fmtF(pt.PopPct[ti]), fmtF(pt.VolPerUser[ti]),
						})
						if err != nil {
							return err
						}
					}
				}
			}
			return nil
		})
	if err != nil {
		return err
	}

	// fig8
	err = writeCSV(dir, "fig8_protocols.csv",
		[]string{"month", "protocol", "share_pct"},
		func(emit func([]string) error) error {
			for _, pt := range analytics.ProtocolShares(aggs) {
				for _, proto := range analytics.WebProtos() {
					if err := emit([]string{report.Month(pt.Month), proto.String(), fmtF(pt.SharePct[proto])}); err != nil {
						return err
					}
				}
			}
			return nil
		})
	if err != nil {
		return err
	}

	// active
	return writeCSV(dir, "active.csv",
		[]string{"day", "active", "observed", "active_pct"},
		func(emit func([]string) error) error {
			for _, pt := range analytics.ActiveSeries(aggs) {
				err := emit([]string{
					report.Day(pt.Day),
					strconv.Itoa(pt.Active), strconv.Itoa(pt.Observed),
					fmtF(pt.ActivePct),
				})
				if err != nil {
					return err
				}
			}
			return nil
		})
}

func fmtF(v float64) string { return strconv.FormatFloat(v, 'f', 3, 64) }

// writeCSV creates one table under dir.
func writeCSV(dir, name string, header []string, fill func(emit func([]string) error) error) error {
	f, err := os.Create(filepath.Join(dir, name))
	if err != nil {
		return fmt.Errorf("core: export %s: %w", name, err)
	}
	w := csv.NewWriter(f)
	werr := w.Write(header)
	if werr == nil {
		werr = fill(w.Write)
	}
	w.Flush()
	if werr == nil {
		werr = w.Error()
	}
	if cerr := f.Close(); werr == nil {
		werr = cerr
	}
	if werr != nil {
		return fmt.Errorf("core: export %s: %w", name, werr)
	}
	return nil
}
