package core

import (
	"bytes"
	"context"
	"testing"
	"time"

	"repro/internal/analytics"
	"repro/internal/flowrec"
	"repro/internal/simnet"
)

// Store-format equivalence: the columnar formats prune columns and
// skip blocks (v3 additionally inflates per block), so the proof
// obligation is that no experiment can tell v1, v2 and v3 apart —
// same seed, same days, byte-identical canonical aggregates, serial
// and sharded alike. The second test closes the gap
// byte-identity cannot see: a column missing from an experiment's
// declared set would make both formats equally wrong, so each figure
// rendered from its pruned aggregates is compared against the same
// figure rendered from full-width aggregates of the same store.

const colsEqSeed = 99

var colsEqScale = simnet.Scale{ADSL: 8, FTTH: 4}

// colsEqStride keeps the day sets small: span experiments sample ~7
// days, the April figures their fixed 60.
const colsEqStride = 240

// buildStoreFormat materialises days of the colsEq world into dir in
// the given format and returns the opened store.
func buildStoreFormat(t *testing.T, dir string, format flowrec.Format, days []time.Time) *flowrec.Store {
	t.Helper()
	store, err := flowrec.OpenStoreFormat(dir, format)
	if err != nil {
		t.Fatal(err)
	}
	p := New(Config{Seed: colsEqSeed, Scale: colsEqScale, Workers: 8})
	n, err := p.GenerateStore(context.Background(), NewDiskStorage(store, ""), days)
	if err != nil {
		t.Fatal(err)
	}
	if n == 0 {
		t.Fatal("generated zero records")
	}
	return store
}

// colsEqDays is the union of every day any experiment consumes at the
// colsEq stride.
func colsEqDays() []time.Time {
	return chaosDays(colsEqStride)
}

func TestFormatCanonicalEquivalence(t *testing.T) {
	days := colsEqDays()
	formats := []flowrec.Format{flowrec.FormatV1, flowrec.FormatV2, flowrec.FormatV3}
	stores := make([]*flowrec.Store, len(formats))
	for i, format := range formats {
		stores[i] = buildStoreFormat(t, t.TempDir(), format, days)
	}
	ctx := context.Background()

	for _, shards := range []int{1, 3} {
		// One pipeline per store and sharding level: experiments share
		// the day cache exactly as a real report run would, including
		// the union-recompute when column sets widen — identical on
		// every side because the experiment order is identical. v1 is
		// the baseline; every other format must match it byte for byte.
		ps := make([]*Pipeline, len(formats))
		for i := range formats {
			ps[i] = New(Config{Seed: colsEqSeed, Scale: colsEqScale, Stride: colsEqStride,
				Workers: 4, ShardsPerDay: shards, Store: stores[i]})
		}
		for _, e := range AllExperiments() {
			edays := e.Days(colsEqStride)
			if len(edays) == 0 {
				continue
			}
			a1, err := ps[0].AggregateCols(ctx, edays, e.Cols)
			if err != nil {
				t.Fatalf("%s shards=%d: v1 aggregate: %v", e.ID, shards, err)
			}
			want := make([][]byte, len(a1))
			for i := range a1 {
				if want[i], err = analytics.CanonicalBytes(a1[i]); err != nil {
					t.Fatal(err)
				}
			}
			for fi := 1; fi < len(formats); fi++ {
				af, err := ps[fi].AggregateCols(ctx, edays, e.Cols)
				if err != nil {
					t.Fatalf("%s shards=%d: %s aggregate: %v", e.ID, shards, formats[fi], err)
				}
				if len(af) != len(a1) {
					t.Fatalf("%s shards=%d: v1 has %d days, %s has %d",
						e.ID, shards, len(a1), formats[fi], len(af))
				}
				for i := range af {
					bf, err := analytics.CanonicalBytes(af[i])
					if err != nil {
						t.Fatal(err)
					}
					if !bytes.Equal(bf, want[i]) {
						t.Errorf("%s shards=%d: day %s aggregates diverge between v1 and %s",
							e.ID, shards, af[i].Day.Format("2006-01-02"), formats[fi])
						break
					}
				}
			}
		}
	}
}

// TestDeclaredColumnsSufficeForRender renders every experiment twice
// from the same v2 store: once normally (aggregates pruned to the
// experiment's declared column set) and once from a pipeline whose day
// cache was pre-warmed at full width, so the cache serves unpruned
// aggregates to the same run. Any divergence means the experiment
// reads a column its declaration omits — the failure mode v1-vs-v2
// byte-identity is structurally blind to.
func TestDeclaredColumnsSufficeForRender(t *testing.T) {
	days := colsEqDays()
	store := buildStoreFormat(t, t.TempDir(), flowrec.FormatV2, days)
	ctx := context.Background()

	for _, e := range AllExperiments() {
		edays := e.Days(colsEqStride)
		if len(edays) == 0 {
			continue
		}
		// A fresh pipeline per experiment keeps the pruned side strict:
		// a shared cache would leak columns widened by earlier
		// experiments into later ones.
		cfg := Config{Seed: colsEqSeed, Scale: colsEqScale, Stride: colsEqStride,
			Workers: 4, Store: store}
		pruned := New(cfg)
		full := New(cfg)
		if _, err := full.AggregateCols(ctx, edays, flowrec.AllColumns); err != nil {
			t.Fatalf("%s: full-width prewarm: %v", e.ID, err)
		}

		var prunedOut, fullOut bytes.Buffer
		if err := e.Run(ctx, pruned, &prunedOut); err != nil {
			t.Fatalf("%s: pruned render: %v", e.ID, err)
		}
		if err := e.Run(ctx, full, &fullOut); err != nil {
			t.Fatalf("%s: full-width render: %v", e.ID, err)
		}
		if !bytes.Equal(prunedOut.Bytes(), fullOut.Bytes()) {
			t.Errorf("%s: rendering from column-pruned aggregates diverges from full-width aggregates; its Cols declaration is missing a column the figure reads", e.ID)
		}
	}
}
