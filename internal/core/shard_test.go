package core

// Merge-equivalence at the pipeline level: every experiment of the
// paper registry must render byte-identical reports whatever
// ShardsPerDay is, and the shard-partial cache must replay a day
// byte-identically to the run that wrote it.

import (
	"bytes"
	"context"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"repro/internal/analytics"
	"repro/internal/simnet"
)

// shardTestConfig is the smallest population that still exercises
// every figure, on a sparse stride so the full registry stays fast.
func shardTestConfig(shards int) Config {
	return Config{
		Seed: 99, Scale: simnet.Scale{ADSL: 10, FTTH: 5},
		Stride: 180, Workers: 2, ShardsPerDay: shards,
	}
}

// TestShardEquivalenceAllExperiments renders every experiment in
// Experiments() at 1 and 3 shards per day and byte-compares the
// reports — the acceptance property of the merge monoid: sharding is
// invisible in every table and figure.
func TestShardEquivalenceAllExperiments(t *testing.T) {
	p1 := New(shardTestConfig(1))
	p3 := New(shardTestConfig(3))
	for _, e := range Experiments() {
		var b1, b3 bytes.Buffer
		if err := e.Run(context.Background(), p1, &b1); err != nil {
			t.Fatalf("%s (1 shard): %v", e.ID, err)
		}
		if err := e.Run(context.Background(), p3, &b3); err != nil {
			t.Fatalf("%s (3 shards): %v", e.ID, err)
		}
		if !bytes.Equal(b1.Bytes(), b3.Bytes()) {
			t.Errorf("%s: report differs between 1 and 3 shards per day", e.ID)
		}
	}
}

// TestShardEquivalenceAggregates compares the aggregates themselves
// (canonical bytes, stronger than rendered text) across shard counts.
func TestShardEquivalenceAggregates(t *testing.T) {
	days := MonthDays(2017, time.April)[:6]
	p1 := New(shardTestConfig(1))
	p4 := New(shardTestConfig(4))
	a1, err := p1.Aggregate(context.Background(), days)
	if err != nil {
		t.Fatal(err)
	}
	a4, err := p4.Aggregate(context.Background(), days)
	if err != nil {
		t.Fatal(err)
	}
	if len(a1) != len(a4) {
		t.Fatalf("day counts differ: %d vs %d", len(a1), len(a4))
	}
	for i := range a1 {
		b1, err := analytics.CanonicalBytes(a1[i])
		if err != nil {
			t.Fatal(err)
		}
		b4, err := analytics.CanonicalBytes(a4[i])
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(b1, b4) {
			t.Errorf("%s: 4-shard aggregate differs from serial fold", a1[i].Day.Format("2006-01-02"))
		}
	}
}

// TestPartialCacheRoundTrip: a sharded cached run persists per-day
// shard partials; a later pipeline (even one running serial folds)
// must replay them into byte-identical aggregates without re-reading
// the days.
func TestPartialCacheRoundTrip(t *testing.T) {
	dir := t.TempDir()
	days := MonthDays(2014, time.April)[:4]

	cfg := shardTestConfig(3)
	cfg.AggCacheDir = dir
	warm := New(cfg)
	want, err := warm.Aggregate(context.Background(), days)
	if err != nil {
		t.Fatal(err)
	}

	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	var parts, finals int
	for _, e := range entries {
		switch {
		case strings.HasPrefix(e.Name(), "parts-"):
			parts++
		case strings.HasPrefix(e.Name(), "agg-"):
			finals++
		}
	}
	if parts != len(days) {
		t.Fatalf("%d partial files for %d days (finals: %d)", parts, len(days), finals)
	}
	if finals != 0 {
		t.Errorf("%d final agg files written alongside partials", finals)
	}

	// Replay with a serial-fold pipeline over the same cache dir.
	cold := shardTestConfig(1)
	cold.AggCacheDir = dir
	replay := New(cold)
	got, err := replay.Aggregate(context.Background(), days)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(want) {
		t.Fatalf("replayed %d days, want %d", len(got), len(want))
	}
	for i := range want {
		wb, err := analytics.CanonicalBytes(want[i])
		if err != nil {
			t.Fatal(err)
		}
		gb, err := analytics.CanonicalBytes(got[i])
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(wb, gb) {
			t.Errorf("%s: cached-partial replay differs", want[i].Day.Format("2006-01-02"))
		}
	}

	// A damaged partial file must read as a miss, not poison the run.
	bad := filepath.Join(dir, "parts-"+days[0].Format("20060102")+"-v1.gob.gz")
	if err := os.WriteFile(bad, []byte("not gzip"), 0o644); err != nil {
		t.Fatal(err)
	}
	again := shardTestConfig(2)
	again.AggCacheDir = dir
	p := New(again)
	re, err := p.Aggregate(context.Background(), days)
	if err != nil {
		t.Fatal(err)
	}
	if len(re) != len(days) {
		t.Fatalf("damaged partial file lost days: %d of %d", len(re), len(days))
	}
}
